package repro

// Chain-head file tests: the atomic WriteManifestHead/ReadManifestHead
// pair and its typed rejection of rotten heads — a truncated key, a key
// naming a manifest the store lost, bytes that are not a manifest.

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/castore"
)

// headFixture checkpoints a small program into store and returns its
// manifest.
func headFixture(t *testing.T, store BlobStore) *Manifest {
	t.Helper()
	s := mustSession(t, WithMachine(MachineConfig{CPUsPerNode: 2, MergeWorkers: 1}))
	if _, err := s.RunToCheckpoint(arrayProgram(2, 2, 256, -1, nil), 1); err != nil {
		t.Fatal(err)
	}
	m, err := s.SaveTo(store)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestManifestHeadRoundTrip(t *testing.T) {
	store := NewMemStore()
	m := headFixture(t, store)
	path := filepath.Join(t.TempDir(), "MANIFEST")
	if err := WriteManifestHead(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifestHead(store, path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key() != m.Key() || got.Seq() != m.Seq() {
		t.Fatalf("round-tripped head = %s seq %d, want %s seq %d", got.Key(), got.Seq(), m.Key(), m.Seq())
	}
	// Overwrite with a chained head: the rename replaces atomically.
	m2, err := SaveImage(store, mustLoadImage(t, store, m), m)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteManifestHead(path, m2); err != nil {
		t.Fatal(err)
	}
	if got, err = ReadManifestHead(store, path); err != nil || got.Key() != m2.Key() {
		t.Fatalf("rewritten head = %v, %v; want %s", got, err, m2.Key())
	}
	// No temp droppings left beside the head.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("head dir holds %d entries, want only MANIFEST", len(entries))
	}
}

func mustLoadImage(t *testing.T, store BlobStore, m *Manifest) *Image {
	t.Helper()
	img, err := LoadImage(store, m)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestManifestHeadRejectsRot(t *testing.T) {
	store := NewMemStore()
	m := headFixture(t, store)
	dir := t.TempDir()

	wantHeadErr := func(t *testing.T, err error) *HeadError {
		t.Helper()
		var he *HeadError
		if !errors.As(err, &he) {
			t.Fatalf("error %v (%T), want *HeadError", err, err)
		}
		return he
	}

	t.Run("truncated key", func(t *testing.T) {
		// The regression the atomic write prevents: a crashed writer that
		// used plain truncate-and-write leaves half a key.
		path := filepath.Join(dir, "TRUNC")
		if err := os.WriteFile(path, []byte(m.Key().String()[:17]), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := ReadManifestHead(store, path)
		he := wantHeadErr(t, err)
		if he.Path != path {
			t.Errorf("HeadError.Path = %q, want %q", he.Path, path)
		}
	})
	t.Run("garbage key", func(t *testing.T) {
		path := filepath.Join(dir, "GARBAGE")
		if err := os.WriteFile(path, []byte("not hex at all\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := ReadManifestHead(store, path)
		wantHeadErr(t, err)
	})
	t.Run("dangling key", func(t *testing.T) {
		// A syntactically fine key the store does not hold.
		path := filepath.Join(dir, "DANGLING")
		if err := os.WriteFile(path, []byte(strings.Repeat("ab", 32)+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := ReadManifestHead(store, path)
		he := wantHeadErr(t, err)
		if !errors.As(he, new(*ChunkMissingError)) {
			t.Errorf("dangling head does not unwrap to *ChunkMissingError: %v", err)
		}
	})
	t.Run("head names a non-manifest", func(t *testing.T) {
		// Valid chunk, wrong kind: CRC-framed validation must refuse it.
		blob := []byte("just bytes, no manifest framing")
		key := castore.KeyOf(blob)
		if err := store.Put(key, blob); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "NOTMAN")
		if err := os.WriteFile(path, []byte(key.String()+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := ReadManifestHead(store, path)
		wantHeadErr(t, err)
	})
	t.Run("missing file passes through", func(t *testing.T) {
		_, err := ReadManifestHead(store, filepath.Join(dir, "ABSENT"))
		if !os.IsNotExist(err) {
			t.Fatalf("missing head error = %v, want os.IsNotExist", err)
		}
		if errors.As(err, new(*HeadError)) {
			t.Fatal("missing head misreported as *HeadError")
		}
	})
}
