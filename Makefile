# Developer entry points. CI (.github/workflows/ci.yml) runs `make ci`,
# so the pipeline and developers exercise exactly the same commands.

GO ?= go

# Output of `make bench-json`: override per PR / per CI run, e.g.
# `make bench-json BENCH_OUT=BENCH_pr10.json`. CI uploads the file as a
# build artifact so the perf trajectory is downloadable per run.
BENCH_OUT ?= BENCH_pr10.json

.PHONY: build test race bench bench-smoke bench-json vet fmt-check staticcheck detlint ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# GOMAXPROCS is pinned above 1 so the race detector actually sees the
# concurrent collection, parallel merge and WaitChildren pools race
# against each other instead of running effectively serialized.
race:
	GOMAXPROCS=4 $(GO) test -race ./internal/...

# Full-size experiment tables (slow); see also `go run ./cmd/detbench`.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Quick experiments end to end: proves the bench harness still runs,
# the dsched round engine still beats the legacy loop path, the kv
# reconciliation sweep still checksums identically across merge workers,
# the sharded barrier tree still matches the flat collector bit for bit
# while cutting the root's cross-node messages, every checkpoint sweep
# row still resumes bit-identically to its uninterrupted run, the
# serving fabric still bounds resident pages by the cap while serving
# 1024 open sessions (killed-worker failovers asserted bit-equal), and
# the build executor's warm builds still fetch >=90% of results with
# checksums bit-equal to cold.
bench-smoke:
	$(GO) test -bench='Fig4|MergeTable|DschedRound|KVTable|ClusterTable|CkptTable|ServeTable|MakeTable' -benchtime=1x -run='^$$' .

# Machine-readable perf snapshot for the repo's trajectory artifacts
# (BENCH_pr2.json and successors; see BENCH_OUT above).
bench-json:
	$(GO) run ./cmd/detbench -run dsched,merge,kv,cluster,ckpt,serve,make -quick -json > $(BENCH_OUT)

# Mirrors the pinned CI job; requires staticcheck on PATH
# (go install honnef.co/go/tools/cmd/staticcheck@2025.1).
staticcheck:
	staticcheck ./...

# The determinism analyzers (internal/detlint): maporder, walltime,
# globalmut, goroutinepool, errcmp. Exits nonzero on any finding not
# covered by a justified //detlint:allow — see docs/determinism-rules.md.
detlint:
	$(GO) run ./cmd/detlint ./...

ci: build vet fmt-check detlint test race bench-smoke bench-json
	@if command -v staticcheck >/dev/null 2>&1; then \
		$(MAKE) staticcheck; \
	else \
		echo "staticcheck not installed; skipping (CI runs the pinned job)"; \
	fi
