# Developer entry points. CI (.github/workflows/ci.yml) runs `make ci`,
# so the pipeline and developers exercise exactly the same commands.

GO ?= go

.PHONY: build test race bench bench-smoke vet fmt-check ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# Full-size experiment tables (slow); see also `go run ./cmd/detbench`.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# One quick experiment end to end: proves the bench harness still runs.
bench-smoke:
	$(GO) test -bench=Fig4 -benchtime=1x -run='^$$' .

ci: build vet fmt-check test race bench-smoke
