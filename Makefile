# Developer entry points. CI (.github/workflows/ci.yml) runs `make ci`,
# so the pipeline and developers exercise exactly the same commands.

GO ?= go

.PHONY: build test race bench bench-smoke bench-json vet fmt-check ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# GOMAXPROCS is pinned above 1 so the race detector actually sees the
# concurrent collection, parallel merge and WaitChildren pools race
# against each other instead of running effectively serialized.
race:
	GOMAXPROCS=4 $(GO) test -race ./internal/...

# Full-size experiment tables (slow); see also `go run ./cmd/detbench`.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Quick experiments end to end: proves the bench harness still runs and
# the dsched round engine still beats the legacy loop path.
bench-smoke:
	$(GO) test -bench='Fig4|DschedRound' -benchtime=1x -run='^$$' .

# Machine-readable perf snapshot for the repo's trajectory artifacts
# (BENCH_pr2.json and successors).
bench-json:
	$(GO) run ./cmd/detbench -run dsched,merge -quick -json > BENCH_pr2.json

ci: build vet fmt-check test race bench-smoke bench-json
