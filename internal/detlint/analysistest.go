package detlint

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// This file is the golden-test half of the framework: the equivalent of
// golang.org/x/tools/go/analysis/analysistest, driven by `// want`
// comments in fixture files under testdata/src.
//
// A fixture line expecting a diagnostic carries a trailing comment:
//
//	for k := range m { // want "randomized map order"
//
// The quoted string is a regexp matched against the finding message.
// Several `want "..."` patterns may appear in one comment. A comment
// line that contains nothing but want patterns applies to the line
// ABOVE it — needed when the offending line's only comment slot is
// already taken by a //detlint:allow directive under test. Suppressed
// findings (valid //detlint:allow) must NOT be matched by a want — a
// fixture proves suppression by having a flagged pattern with an allow
// and no want. Malformed directives surface as findings of the pseudo
// analyzer "detlint" and are asserted with wants like any other.

// wantRE captures one want clause: the keyword followed by one or more
// quoted regexps (`want "a" "b"`). wantPatRE then splits the patterns.
var (
	wantRE    = regexp.MustCompile(`want ((?:"(?:[^"\\]|\\.)+"\s*)+)`)
	wantPatRE = regexp.MustCompile(`"((?:[^"\\]|\\.)+)"`)
)

// TB is the subset of testing.TB the runner needs (kept as an interface
// so this file doesn't import testing into the non-test build).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

var (
	testLoaderOnce sync.Once
	testLoader     *Loader
	testLoaderMu   sync.Mutex
)

// RunFixture type-checks the fixture directory dir as a package with the
// given import path, runs the analyzer, and asserts the findings match
// the fixture's want comments exactly. importPath matters: scope-gated
// analyzers (walltime, globalmut, goroutinepool) only fire when it names
// a deterministic package, so fixtures choose their scope by choosing
// their path.
func RunFixture(t TB, dir string, a *Analyzer, importPath string) {
	t.Helper()
	testLoaderOnce.Do(func() { testLoader = NewLoader() })
	testLoaderMu.Lock()
	defer testLoaderMu.Unlock()

	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixture files in %s: %v", dir, err)
	}
	sort.Strings(files)
	pkg, err := loadFixture(files, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	findings, err := RunPackage(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	wants := collectWants(t, pkg)
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		key := posKey{f.File, f.Line}
		matched := false
		for i, w := range wants[key] {
			if w != nil && w.MatchString(f.Message) {
				wants[key][i] = nil
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if w != nil {
				t.Errorf("%s:%d: expected finding matching %q, got none", key.file, key.line, w)
			}
		}
	}
}

func loadFixture(files []string, importPath string) (*Package, error) {
	// Fixtures import only the standard library; make those exports
	// available before type-checking.
	imports := map[string]bool{}
	probe := NewLoader()
	var names []string
	for _, f := range files {
		pf, err := probe.parseImportsOnly(f)
		if err != nil {
			return nil, err
		}
		for _, imp := range pf {
			imports[imp] = true
		}
		names = append(names, f)
	}
	var paths []string
	for p := range imports {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	if err := testLoader.EnsureExports(paths); err != nil {
		return nil, err
	}
	return testLoader.Check(importPath, "", names)
}

type posKey struct {
	file string
	line int
}

func collectWants(t TB, pkg *Package) map[posKey][]*regexp.Regexp {
	wants := map[posKey][]*regexp.Regexp{}
	sources := map[string][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ms := wantRE.FindAllStringSubmatch(c.Text, -1)
				if len(ms) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				line := pos.Line
				if standaloneComment(t, sources, pos) {
					line-- // standalone want line: asserts the line above
				}
				for _, m := range ms {
					for _, pm := range wantPatRE.FindAllStringSubmatch(m[1], -1) {
						re, err := regexp.Compile(pm[1])
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, pm[1], err)
						}
						key := posKey{pos.Filename, line}
						wants[key] = append(wants[key], re)
					}
				}
			}
		}
	}
	return wants
}

// standaloneComment reports whether the comment at pos is the only thing
// on its source line (nothing but whitespace before it).
func standaloneComment(t TB, sources map[string][]string, pos token.Position) bool {
	lines, ok := sources[pos.Filename]
	if !ok {
		data, err := os.ReadFile(pos.Filename)
		if err != nil {
			t.Fatalf("reading fixture %s: %v", pos.Filename, err)
		}
		lines = strings.Split(string(data), "\n")
		sources[pos.Filename] = lines
	}
	if pos.Line-1 >= len(lines) || pos.Column < 1 {
		return false
	}
	prefix := lines[pos.Line-1]
	if pos.Column-1 < len(prefix) {
		prefix = prefix[:pos.Column-1]
	}
	return strings.TrimSpace(prefix) == ""
}

// parseImportsOnly returns the import paths of one file.
func (l *Loader) parseImportsOnly(path string) ([]string, error) {
	f, err := parser.ParseFile(l.Fset, path, nil, parser.ImportsOnly)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, imp := range f.Imports {
		p := imp.Path.Value
		out = append(out, p[1:len(p)-1])
	}
	return out, nil
}
