// Positive maporder fixtures: every order-dependent map-range body the
// analyzer must catch.
package fixture

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

func emitBuffer(m map[string]int, buf *bytes.Buffer) {
	for k, v := range m {
		buf.WriteString(k)        // want "WriteString call inside range over a map"
		fmt.Fprintf(buf, "%d", v) // want "fmt.Fprintf inside range over a map"
	}
}

func emitBinary(m map[string]uint32, buf *bytes.Buffer) {
	for _, v := range m {
		_ = binary.Write(buf, binary.LittleEndian, v) // want "binary.Write inside range over a map"
	}
}

func hashValues(m map[string][]byte) uint32 {
	h := crc32.NewIEEE()
	for _, v := range m {
		h.Write(v) // want "Write call inside range over a map"
	}
	return h.Sum32()
}

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside range over a map"
	}
	return keys // never sorted: caller sees randomized order
}

func fanOut(m map[string]int, out chan<- string) {
	for k := range m {
		out <- k // want "send on a channel inside range over a map"
	}
}

func enumerate(m map[string]int, fn func(string, int)) {
	for k, v := range m {
		fn(k, v) // want "callback fn invoked inside range over a map"
	}
}

type walker struct {
	visit func(string)
}

func (w *walker) walk(m map[string]bool) {
	for k := range m {
		w.visit(k) // want "callback field visit invoked inside range over a map"
	}
}

func nestedSliceRange(m map[string][]string, buf *bytes.Buffer) {
	for _, vs := range m {
		for _, v := range vs {
			buf.WriteString(v) // want "WriteString call inside range over a map"
		}
	}
}
