// Negative maporder fixtures: map-range bodies that are order-safe and
// must not be flagged.
package fixture

import (
	"bytes"
	"sort"
)

// The canonical fix: collect keys, sort, then emit over the sorted
// slice. The collecting append is exempt because keys is sorted later
// in the same function.
func collectThenSort(m map[string]int, buf *bytes.Buffer) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		buf.WriteString(k)
	}
}

// sort.Slice with the accumulator nested in the call is recognized too.
func collectThenSortSlice(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Commutative folds don't depend on iteration order.
func fold(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// Loop-local accumulators die with the iteration.
func local(m map[string][]byte) int {
	n := 0
	for _, v := range m {
		var parts []byte
		parts = append(parts, v...)
		n += len(parts)
	}
	return n
}

// Map-to-map copies are order-independent.
func copyMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Ranging a slice is always fine, whatever the body does.
func sliceRange(s []string, buf *bytes.Buffer) {
	for _, v := range s {
		buf.WriteString(v)
	}
}
