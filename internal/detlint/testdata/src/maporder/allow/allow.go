// Suppression fixtures: a justified //detlint:allow silences the
// finding; a reasonless one is itself an error and suppresses nothing.
package fixture

import "bytes"

func allowed(m map[string]int, buf *bytes.Buffer) {
	for k := range m {
		//detlint:allow maporder scratch buffer is re-sorted by the caller before hashing
		buf.WriteString(k)
	}
}

func allowedTrailing(m map[string]int, out chan<- string) {
	for k := range m {
		out <- k //detlint:allow maporder consumer set-folds the keys, order can never reach bytes
	}
}

func reasonless(m map[string]int, buf *bytes.Buffer) {
	for k := range m {
		buf.WriteString(k) //detlint:allow maporder
		// want "needs a reason" "WriteString call inside range over a map"
	}
}

func wrongAnalyzer(m map[string]int, buf *bytes.Buffer) {
	for k := range m {
		buf.WriteString(k) //detlint:allow nosuchrule because I said so
		// want "unknown analyzer" "WriteString call inside range over a map"
	}
}
