// Scope fixture (loaded under repro/internal/bench): host-side packages
// may spawn goroutines freely.
package fixture

func parallelMeasure(fns []func()) {
	done := make(chan struct{})
	for _, fn := range fns {
		go func() {
			fn()
			done <- struct{}{}
		}()
	}
	for range fns {
		<-done
	}
}
