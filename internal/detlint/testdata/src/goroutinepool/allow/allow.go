// Suppression fixture for goroutinepool (loaded under
// repro/internal/kernel).
package fixture

func monitored(fn func(), joined chan struct{}) {
	//detlint:allow goroutinepool joined before the round commits, interleaving can't reach result bytes
	go func() {
		fn()
		close(joined)
	}()
	<-joined
}
