// Negative goroutinepool fixtures (loaded under repro/internal/kernel):
// the approved site "repro/internal/kernel.start" may spawn — including
// from nested function literals, which attribute to the enclosing named
// function.
package fixture

func start(entry func()) {
	go entry()
	defer func() {
		go entry()
	}()
}
