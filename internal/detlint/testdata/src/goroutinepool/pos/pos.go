// Positive goroutinepool fixtures (loaded under repro/internal/kernel):
// bare go statements outside the approved pool sites.
package fixture

import "sync"

func fanOut(work []func()) {
	var wg sync.WaitGroup
	for _, w := range work {
		wg.Add(1)
		go func() { // want "bare go statement in deterministic package"
			defer wg.Done()
			w()
		}()
	}
	wg.Wait()
}

func fireAndForget(ch chan<- int) {
	go send(ch) // want "bare go statement in deterministic package"
}

func send(ch chan<- int) { ch <- 1 }

type runner struct{ done chan struct{} }

func (r *runner) spawnInMethod() {
	go close(r.done) // want "bare go statement in deterministic package"
}
