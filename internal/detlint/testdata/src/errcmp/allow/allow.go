// Suppression fixture for errcmp.
package fixture

import "io"

func identity(err error) bool {
	//detlint:allow errcmp sentinel is produced unwrapped two lines up, identity is intentional here
	return err == io.EOF
}
