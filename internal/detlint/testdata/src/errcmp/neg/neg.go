// Negative errcmp fixtures: nil checks, errors.Is/As, and the Is-method
// protocol itself are all legal.
package fixture

import (
	"errors"
	"io"
)

var ErrNeg = errors.New("fixture: neg")

type codedError struct{ code int }

func (e *codedError) Error() string { return "fixture: coded" }

// Is implements the errors.Is protocol; identity comparison is its job.
func (e *codedError) Is(target error) bool {
	return target == ErrNeg
}

func handle(err error) int {
	if err == nil {
		return 0
	}
	if errors.Is(err, ErrNeg) || errors.Is(err, io.EOF) {
		return 1
	}
	var coded *codedError
	if errors.As(err, &coded) {
		return coded.code
	}
	return -1
}

// Comparing non-error values is out of scope.
func compareInts(a, b int) bool { return a == b }
