// Positive errcmp fixtures: identity comparison against declared error
// sentinels.
package fixture

import (
	"errors"
	"io"
)

var ErrGone = errors.New("fixture: gone")

type decoder struct{ err error }

func classify(err error) int {
	if err == ErrGone { // want "comparing an error to ErrGone"
		return 1
	}
	if err != io.EOF { // want "comparing an error to EOF"
		return 2
	}
	return 0
}

func classifySwitch(err error) int {
	switch err {
	case nil:
		return 0
	case ErrGone: // want "switch on error identity"
		return 1
	case io.ErrUnexpectedEOF: // want "switch on error identity"
		return 2
	}
	return 3
}

func (d *decoder) drained() bool {
	return ErrGone == d.err // want "comparing an error to ErrGone"
}
