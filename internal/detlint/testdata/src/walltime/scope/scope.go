// Scope fixture: the same wall-clock reads as pos/, but the test loads
// this package under repro/internal/bench — outside the deterministic
// scope — so nothing may be reported.
package fixture

import (
	"math/rand"
	"time"
)

func measure() (time.Duration, int) {
	start := time.Now()
	time.Sleep(time.Microsecond)
	return time.Since(start), rand.Intn(4)
}
