// Suppression fixture for walltime (loaded under a deterministic path).
package fixture

import "time"

func bootstrapSeed() int64 {
	//detlint:allow walltime feeds the explicit seed of a device clock, never read again on the replay path
	return time.Now().UnixNano()
}
