// Positive walltime fixtures; the test runs these under a deterministic
// import path (repro/internal/kernel), where host time and the global
// rand source are banned.
package fixture

import (
	"math/rand"
	"time"
)

func stamp() int64 {
	t := time.Now()              // want "time.Now depends on the host wall clock"
	d := time.Since(t)           // want "time.Since depends on the host wall clock"
	time.Sleep(time.Microsecond) // want "time.Sleep depends on the host wall clock"
	return t.UnixNano() + int64(d)
}

func waitThenPick(n int) int {
	<-time.After(time.Millisecond) // want "time.After depends on the host wall clock"
	return rand.Intn(n)            // want "rand.Intn uses the global time-seeded source"
}

func reseed() {
	rand.Seed(42) // want "rand.Seed uses the global time-seeded source"
}

// Seeded constructors and duration arithmetic are legal even here.
func legal() time.Duration {
	r := rand.New(rand.NewSource(42))
	return time.Duration(r.Intn(3)) * time.Millisecond
}
