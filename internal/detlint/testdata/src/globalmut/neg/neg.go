// Negative globalmut fixtures (loaded under repro/internal/vm):
// constants, compile-time assertions and write-once error sentinels are
// exempt.
package fixture

import (
	"errors"
	"io"
)

const limit = 64

var ErrBoom = errors.New("fixture: boom")

var errWrapped = errors.New("fixture: wrapped")

type sigError struct{}

func (*sigError) Error() string { return "fixture: signal" }

var errSignal = &sigError{}

var _ io.Reader = (*fakeReader)(nil)

type fakeReader struct{}

func (*fakeReader) Read([]byte) (int, error) { return 0, errWrapped }

func use() error {
	if false {
		return ErrBoom
	}
	return errSignal
}
