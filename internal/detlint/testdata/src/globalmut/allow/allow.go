// Suppression fixture for globalmut (loaded under repro/internal/vm).
package fixture

//detlint:allow globalmut identity tokens compared only for equality, never serialized
var tokenCounter uint64

var leaky int //detlint:allow globalmut
// want "needs a reason" "package-level var leaky is mutable cross-session state"

func next() uint64 {
	tokenCounter++
	leaky++
	return tokenCounter
}
