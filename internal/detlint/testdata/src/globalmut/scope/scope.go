// Scope fixture: mutable package state is fine outside the
// deterministic packages (loaded under repro/internal/bench).
package fixture

var resultCache = map[string]float64{}

var runs int
