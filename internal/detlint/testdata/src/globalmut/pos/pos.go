// Positive globalmut fixtures (loaded under repro/internal/vm):
// package-level mutable state in a deterministic package.
package fixture

import "sync"

var cache = map[string][]byte{} // want "package-level var cache is mutable cross-session state"

var counter int // want "package-level var counter is mutable cross-session state"

var pool sync.Pool // want "package-level var pool is mutable cross-session state"

var hook func(int) // want "package-level var hook is mutable cross-session state"

var a, b int // want "package-level var a is mutable cross-session state" "package-level var b is mutable cross-session state"
