package detlint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked target package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages without golang.org/x/tools:
// target packages are checked from source, while every import is
// satisfied from compiler export data located via `go list -export`
// (the build cache compiles offline, so this works with no network and
// no pre-installed archives).
type Loader struct {
	Fset    *token.FileSet
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

// NewLoader returns an empty loader. Exports are populated by Load or
// EnsureExports.
func NewLoader() *Loader {
	l := &Loader{
		Fset:    token.NewFileSet(),
		exports: map[string]string{},
	}
	l.imp = importer.ForCompiler(l.Fset, "gc", l.lookup)
	return l
}

func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	f, ok := l.exports[path]
	if !ok || f == "" {
		return nil, fmt.Errorf("detlint: no export data for %q", path)
	}
	return os.Open(f)
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath  string
	Dir         string
	Name        string
	GoFiles     []string
	TestGoFiles []string
	Export      string
	Standard    bool
	Incomplete  bool
	Error       *struct{ Err string }
}

func goList(args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(&out)
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// EnsureExports makes export data available for the given import paths
// and everything they transitively import. Safe to call repeatedly.
func (l *Loader) EnsureExports(patterns []string) error {
	if len(patterns) == 0 {
		return nil
	}
	pkgs, err := goList(append([]string{"-deps", "-export", "-json"}, patterns...)...)
	if err != nil {
		return err
	}
	for _, p := range pkgs {
		// Test-variant entries ("p [q.test]") recompile a package against
		// test code; only record the plain builds.
		if strings.Contains(p.ImportPath, " [") {
			continue
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	return nil
}

// Load expands the go package patterns (e.g. "./..."), type-checks every
// matched package from source, and returns them in deterministic
// (import path) order. With tests set, each package's in-package
// _test.go files are checked alongside its sources; external (_test
// package) files are not analyzed.
func (l *Loader) Load(patterns []string, tests bool) ([]*Package, error) {
	targets, err := goList(append([]string{"-json"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exportArgs := []string{"-deps", "-export", "-json"}
	if tests {
		exportArgs = append([]string{"-test"}, exportArgs...)
	}
	deps, err := goList(append(exportArgs, patterns...)...)
	if err != nil {
		return nil, err
	}
	for _, p := range deps {
		if strings.Contains(p.ImportPath, " [") {
			continue
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}

	var out []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("package %s: %s", t.ImportPath, t.Error.Err)
		}
		files := t.GoFiles
		if tests {
			files = append(append([]string{}, files...), t.TestGoFiles...)
		}
		if len(files) == 0 {
			continue
		}
		pkg, err := l.Check(t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// Check parses the named files of one package rooted at dir and
// type-checks them under importPath, resolving imports from export data.
func (l *Loader) Check(importPath, dir string, files []string) (*Package, error) {
	var parsed []*ast.File
	for _, name := range files {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.Fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		Path: importPath, Dir: dir, Fset: l.Fset,
		Files: parsed, Types: tpkg, Info: info,
	}, nil
}
