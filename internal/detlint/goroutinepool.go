package detlint

import (
	"go/ast"
)

// GoroutinePoolAnalyzer flags bare `go` statements in the deterministic
// packages outside the approved bounded-pool sites. All legal
// concurrency flows through goroutines the kernel accounts for: the
// space runner ((*Space).start, joined through the machine WaitGroup)
// and vm.ParallelFor (the bounded worker pool behind MergeParallel,
// WaitChildren collection and the dsched collectors). An untracked
// goroutine is invisible to the round engine and to virtual time, so
// its interleaving is exactly what the result-invariance sweeps cannot
// cover.
var GoroutinePoolAnalyzer = &Analyzer{
	Name: "goroutinepool",
	Doc: "bare go statements in deterministic packages outside the approved bounded " +
		"pools ((*Space).start, vm.ParallelFor) create untracked nondeterministic " +
		"concurrency; route work through WaitChildren / ParallelFor",
	Run: runGoroutinePool,
}

// ApprovedGoroutineSites lists "pkgpath.funcName" locations allowed to
// spawn goroutines: the accounted concurrency the rest of the system is
// built on. Sites inside function literals are attributed to the
// enclosing named function.
var ApprovedGoroutineSites = map[string]bool{
	// The space runner: every spawn is paired with Machine.wg.Add and
	// joined at shutdown; scheduling is mediated by the deterministic
	// scheduler, never by the host.
	modulePath + "/internal/kernel.start": true,
	// The bounded worker pool used by MergeParallel and the kernel's
	// WaitChildren/dsched collection; workers partition disjoint index
	// ranges and results are recombined in deterministic order.
	modulePath + "/internal/vm.ParallelFor": true,
}

func runGoroutinePool(pass *Pass) error {
	if !DeterministicPackages[pass.Pkg.Path()] {
		return nil
	}
	enclosingFuncs(pass.Files, func(n ast.Node, funcName string, _ *ast.BlockStmt) {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return
		}
		if ApprovedGoroutineSites[pass.Pkg.Path()+"."+funcName] {
			return
		}
		pass.Reportf(g.Pos(), "bare go statement in deterministic package %s (function %s) is untracked concurrency; use vm.ParallelFor / Env.WaitChildren, or add the site to detlint.ApprovedGoroutineSites with a determinism argument", pass.Pkg.Path(), funcName)
	})
	return nil
}
