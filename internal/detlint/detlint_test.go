package detlint

import (
	"path/filepath"
	"strings"
	"testing"
)

// The fixture matrix: every analyzer is exercised with a positive case
// (a failing-then-fixed pattern it must catch), a negative case (safe
// idioms it must not flag), and a suppression case (a justified
// //detlint:allow silences, a reasonless or misspelled one is itself
// reported). Scope-gated analyzers additionally prove they stay quiet
// when the same code is loaded under a non-deterministic import path.
func TestAnalyzersOnFixtures(t *testing.T) {
	detPath := modulePath + "/internal/kernel"
	benchPath := modulePath + "/internal/bench"
	servePath := modulePath + "/internal/serve"
	cases := []struct {
		analyzer *Analyzer
		dir      string
		path     string // import path the fixture is loaded under
	}{
		{MapOrderAnalyzer, "maporder/pos", "fixture/maporder"},
		{MapOrderAnalyzer, "maporder/neg", "fixture/maporder"},
		{MapOrderAnalyzer, "maporder/allow", "fixture/maporder"},

		{WallTimeAnalyzer, "walltime/pos", detPath},
		// The serving fabric and the build executor are wall-clock-banned
		// too, even though the other scope-gated analyzers leave them
		// alone.
		{WallTimeAnalyzer, "walltime/pos", servePath},
		{WallTimeAnalyzer, "walltime/pos", modulePath + "/internal/detmake"},
		{WallTimeAnalyzer, "walltime/scope", benchPath},
		{WallTimeAnalyzer, "walltime/allow", detPath},

		{GlobalMutAnalyzer, "globalmut/pos", modulePath + "/internal/vm"},
		{GlobalMutAnalyzer, "globalmut/neg", modulePath + "/internal/vm"},
		{GlobalMutAnalyzer, "globalmut/scope", benchPath},
		{GlobalMutAnalyzer, "globalmut/scope", servePath},
		{GlobalMutAnalyzer, "globalmut/allow", modulePath + "/internal/vm"},

		{GoroutinePoolAnalyzer, "goroutinepool/pos", detPath},
		{GoroutinePoolAnalyzer, "goroutinepool/neg", detPath},
		{GoroutinePoolAnalyzer, "goroutinepool/scope", benchPath},
		{GoroutinePoolAnalyzer, "goroutinepool/scope", servePath},
		{GoroutinePoolAnalyzer, "goroutinepool/allow", detPath},

		{ErrCmpAnalyzer, "errcmp/pos", "fixture/errcmp"},
		{ErrCmpAnalyzer, "errcmp/neg", "fixture/errcmp"},
		{ErrCmpAnalyzer, "errcmp/allow", "fixture/errcmp"},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			RunFixture(t, filepath.Join("testdata", "src", tc.dir), tc.analyzer, tc.path)
		})
	}
}

// The suppression machinery itself: reasons are attached to findings,
// and directives match only their own analyzer and line.
func TestSuppressionCarriesReason(t *testing.T) {
	dir := filepath.Join("testdata", "src", "globalmut", "allow")
	testLoaderOnce.Do(func() { testLoader = NewLoader() })
	files, _ := filepath.Glob(filepath.Join(dir, "*.go"))
	pkg, err := loadFixture(files, modulePath+"/internal/vm")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	findings, err := RunPackage(pkg, []*Analyzer{GlobalMutAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	var suppressed []Finding
	for _, f := range findings {
		if f.Suppressed {
			suppressed = append(suppressed, f)
		}
	}
	if len(suppressed) != 1 {
		t.Fatalf("suppressed findings = %d, want 1 (%v)", len(suppressed), findings)
	}
	want := "identity tokens compared only for equality, never serialized"
	if suppressed[0].Reason != want {
		t.Errorf("suppression reason = %q, want %q", suppressed[0].Reason, want)
	}
}

// The loader and full suite run over this repository itself must be
// clean: zero unsuppressed findings, and every suppression carries a
// reason. This is the CI gate in test form — if it fails, either fix
// the regression or justify it with //detlint:allow.
func TestModuleIsCleanUnderDetlint(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	loader := NewLoader()
	pkgs, err := loader.Load([]string{"repro/..."}, false)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; pattern expansion broken?", len(pkgs))
	}
	for _, pkg := range pkgs {
		findings, err := RunPackage(pkg, All())
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		for _, f := range findings {
			if f.Suppressed {
				if strings.TrimSpace(f.Reason) == "" {
					t.Errorf("%s: suppressed without reason", f)
				}
				continue
			}
			t.Errorf("unsuppressed finding: %s", f)
		}
	}
}

// Deterministic report order: findings come back sorted by position so
// -json diffs are stable across runs.
func TestFindingsAreSorted(t *testing.T) {
	dir := filepath.Join("testdata", "src", "maporder", "pos")
	testLoaderOnce.Do(func() { testLoader = NewLoader() })
	files, _ := filepath.Glob(filepath.Join(dir, "*.go"))
	pkg, err := loadFixture(files, "fixture/maporder")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	findings, err := RunPackage(pkg, All())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) < 5 {
		t.Fatalf("expected several findings, got %d", len(findings))
	}
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1], findings[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Errorf("findings out of order: %s before %s", a, b)
		}
	}
}
