package detlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrCmpAnalyzer flags ==/!= comparisons (and switch cases) against
// declared error sentinel values. The repo's typed errors wrap context
// (paths, offsets, node ids) around sentinels, so identity comparison
// silently stops matching the moment a call site adds %w context —
// errors.Is/As is required everywhere. Comparisons against nil are the
// normal success check and stay legal, as do comparisons inside an Is
// method (the errors.Is protocol itself).
var ErrCmpAnalyzer = &Analyzer{
	Name: "errcmp",
	Doc: "==/!= against a declared error value breaks once anything wraps the error; " +
		"use errors.Is (or errors.As for typed errors)",
	Run: runErrCmp,
}

func runErrCmp(pass *Pass) error {
	enclosingFuncs(pass.Files, func(n ast.Node, funcName string, _ *ast.BlockStmt) {
		if funcName == "Is" {
			return // the errors.Is protocol compares identities by design
		}
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return
			}
			if !implementsError(pass.TypeOf(n.X)) && !implementsError(pass.TypeOf(n.Y)) {
				return
			}
			sentinel := sentinelError(pass, n.X)
			if sentinel == nil {
				sentinel = sentinelError(pass, n.Y)
			}
			if sentinel == nil {
				return
			}
			pass.Reportf(n.OpPos, "comparing an error to %s with %s misses wrapped errors; use errors.Is(err, %s)", sentinel.Name(), n.Op, sentinel.Name())
		case *ast.SwitchStmt:
			if n.Tag == nil || !implementsError(pass.TypeOf(n.Tag)) {
				return
			}
			for _, stmt := range n.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if s := sentinelError(pass, e); s != nil {
						pass.Reportf(e.Pos(), "switch on error identity misses wrapped errors; use if/else with errors.Is(err, %s)", s.Name())
					}
				}
			}
		}
	})
	return nil
}

// sentinelError reports whether e denotes a package-level error variable
// (io.EOF, fs.ErrBadOffset, ...), returning its object.
func sentinelError(pass *Pass, e ast.Expr) types.Object {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	obj := pass.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil // not package-level
	}
	if !implementsError(v.Type()) {
		return nil
	}
	return v
}
