package detlint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// allowPrefix introduces a suppression directive. The full grammar is
//
//	//detlint:allow <analyzer> <reason...>
//
// The directive suppresses findings of <analyzer> reported on the same
// line or on the line immediately below (i.e. the directive sits on the
// offending line as a trailing comment, or on its own line just above).
const allowPrefix = "//detlint:allow"

// directiveAnalyzer is the pseudo-analyzer name under which malformed
// directives are reported; it cannot itself be suppressed.
const directiveAnalyzer = "detlint"

type allowDirective struct {
	file     string
	line     int
	analyzer string
	reason   string
	used     bool
}

// collectAllows scans every comment of files for allow directives.
// Malformed directives (missing reason, unknown analyzer) are returned as
// findings in their own right: a suppression must carry a justification
// that review can hold the author to.
func collectAllows(fset *token.FileSet, files []*ast.File, known map[string]bool) ([]*allowDirective, []Finding) {
	var dirs []*allowDirective
	var bad []Finding
	report := func(pos token.Position, msg string) {
		bad = append(bad, Finding{
			Analyzer: directiveAnalyzer,
			Pos:      pos, File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Message: msg,
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //detlint:allowance — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(pos, "detlint:allow directive names no analyzer")
					continue
				}
				name := fields[0]
				if !known[name] {
					report(pos, "detlint:allow names unknown analyzer \""+name+"\"")
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), name))
				if reason == "" {
					report(pos, "detlint:allow "+name+" needs a reason: //detlint:allow "+name+" <why this cannot break determinism>")
					continue
				}
				dirs = append(dirs, &allowDirective{
					file: pos.Filename, line: pos.Line,
					analyzer: name, reason: reason,
				})
			}
		}
	}
	return dirs, bad
}

// applyAllows marks each finding suppressed when a matching directive
// covers its line, and returns the combined, position-sorted finding list
// including directive errors.
func applyAllows(findings []Finding, dirs []*allowDirective, directiveErrs []Finding) []Finding {
	for i := range findings {
		f := &findings[i]
		for _, d := range dirs {
			if d.analyzer != f.Analyzer || d.file != f.File {
				continue
			}
			if d.line == f.Line || d.line == f.Line-1 {
				f.Suppressed = true
				f.Reason = d.reason
				d.used = true
				break
			}
		}
	}
	all := append(findings, directiveErrs...)
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return all
}
