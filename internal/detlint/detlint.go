package detlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// modulePath is this repository's module path; the deterministic-scope
// tables below are keyed under it.
const modulePath = "repro"

// DeterministicPackages are the packages whose results must be a pure
// function of their inputs: the paper's kernel/vm core, the scheduler,
// the deterministic filesystem, tracing and the checkpoint store, plus
// the root facade that serializes session images. walltime, globalmut
// and goroutinepool apply only here; bench, cmd, examples, baseline and
// workload drivers live outside the invariant and may use the host
// freely.
var DeterministicPackages = map[string]bool{
	modulePath:                       true,
	modulePath + "/internal/vm":      true,
	modulePath + "/internal/kernel":  true,
	modulePath + "/internal/core":    true,
	modulePath + "/internal/dsched":  true,
	modulePath + "/internal/fs":      true,
	modulePath + "/internal/trace":   true,
	modulePath + "/internal/castore": true,
}

// WallClockPackages extends the walltime ban (only) beyond the fully
// deterministic set. The serving fabric schedules work however the host
// lets it — worker pools and mutexes are its job, so goroutinepool and
// globalmut don't apply — but it must still never read the host clock:
// scheduling may change latency, never results, and wall-budget time
// arrives through an injected Config.Clock. cmd/detserved, at the edge,
// is where time.Now is legal (see docs/determinism-rules.md).
var WallClockPackages = map[string]bool{
	modulePath + "/internal/serve": true,
	// The build executor keys cached results by content hashes of pure
	// inputs: a wall-clock read anywhere in it could leak into result
	// bytes and break the cold/warm bit-identity the cache is sound
	// under. Cold-vs-warm wall time is measured at the edge, by
	// cmd/detmake and the bench harness.
	modulePath + "/internal/detmake": true,
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		MapOrderAnalyzer,
		WallTimeAnalyzer,
		GlobalMutAnalyzer,
		GoroutinePoolAnalyzer,
		ErrCmpAnalyzer,
	}
}

// Names returns the set of valid analyzer names (for directive
// validation).
func Names(analyzers []*Analyzer) map[string]bool {
	m := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		m[a.Name] = true
	}
	return m
}

// RunPackage applies the analyzers to one loaded package and returns the
// suppression-resolved findings in position order. Directives are
// validated against the full suite, not just the analyzers being run, so
// a partial run never reports a legitimate allow as unknown.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	var raw []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		pass.report = func(d Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			raw = append(raw, Finding{
				Analyzer: name,
				Pos:      pos, File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Message: d.Message,
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	dirs, bad := collectAllows(pkg.Fset, pkg.Files, Names(All()))
	return applyAllows(raw, dirs, bad), nil
}

// --- shared analyzer helpers ---

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

// importedPkg resolves a selector qualifier to the package it names, or
// "" when the expression is not a package-qualified reference.
func importedPkg(info *types.Info, x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// enclosingFuncs walks every file, invoking fn for each node with the
// name of the nearest enclosing named function ("" at package scope;
// function literals inherit the nearest FuncDecl's name) and the body of
// the outermost enclosing function (nil at package scope).
func enclosingFuncs(files []*ast.File, fn func(n ast.Node, funcName string, outermost *ast.BlockStmt)) {
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				ast.Inspect(decl, func(n ast.Node) bool {
					if n != nil {
						fn(n, "", nil)
					}
					return true
				})
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if n != nil {
					fn(n, fd.Name.Name, fd.Body)
				}
				return true
			})
		}
	}
}

// within reports whether pos lies inside the node's source span.
func within(pos token.Pos, n ast.Node) bool {
	return n != nil && pos >= n.Pos() && pos <= n.End()
}
