package detlint

import (
	"go/ast"
	"go/types"
)

// MapOrderAnalyzer flags `range` over a map whose body has an
// order-dependent effect: writing to an encoder/hasher/serialized
// buffer, appending to a slice declared outside the loop, or sending on
// a channel. Go randomizes map iteration order, so any such loop makes
// result bytes a function of the hash seed instead of the inputs — the
// classic bit-identity killer for vm images, castore manifests/GC,
// fs.Compact and the bench tables.
//
// The canonical fix is collect-keys → sort → range the sorted slice, and
// the analyzer recognizes it: an append into an outer slice is exempt
// when that slice is passed to a sort.* / slices.Sort* call later in the
// same function.
var MapOrderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc: "range over a map with an order-dependent body (buffer/encoder/hasher writes, " +
		"appends to an outer slice that is never sorted, channel sends) makes output " +
		"bytes depend on Go's randomized map iteration order; sort the keys first",
	Run: runMapOrder,
}

// sinkMethods are method names that serialize their arguments into a
// stateful receiver: emitting under map order makes the accumulated
// bytes nondeterministic.
var sinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Sum": true, "Sum32": true, "Sum64": true,
}

func runMapOrder(pass *Pass) error {
	enclosingFuncs(pass.Files, func(n ast.Node, _ string, outer *ast.BlockStmt) {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		if t := pass.TypeOf(rng.X); t == nil {
			return
		} else if _, isMap := t.Underlying().(*types.Map); !isMap {
			return
		}
		checkMapRangeBody(pass, rng, outer)
	})
	return nil
}

func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt, outer *ast.BlockStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n != rng {
				// An inner map range is reported on its own; an inner
				// slice range's sinks still execute under the outer
				// map's order, so keep walking its body.
				if t := pass.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						return false
					}
				}
			}
		case *ast.SendStmt:
			pass.Reportf(n.Arrow, "send on a channel inside range over a map: delivery order follows the randomized map order; range over sorted keys instead")
		case *ast.CallExpr:
			checkMapRangeCall(pass, n)
		case *ast.AssignStmt:
			checkMapRangeAppend(pass, n, rng, outer)
		}
		return true
	})
}

// checkMapRangeCall flags serialization calls inside the loop body.
func checkMapRangeCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		// Invoking a func-typed value (a callback parameter, a stored
		// hook) hands the callee one element per iteration in
		// randomized order — the enumeration-API shape of the bug
		// (a store's Keys(fn) visiting chunks in map order).
		if id, ok := call.Fun.(*ast.Ident); ok {
			if v, ok := pass.ObjectOf(id).(*types.Var); ok {
				if _, isFn := v.Type().Underlying().(*types.Signature); isFn {
					pass.Reportf(call.Pos(), "callback %s invoked inside range over a map observes randomized map order; collect and sort the keys first", id.Name)
				}
			}
		}
		return
	}
	name := sel.Sel.Name
	switch importedPkg(pass.TypesInfo, sel.X) {
	case "fmt":
		if name == "Fprint" || name == "Fprintf" || name == "Fprintln" {
			pass.Reportf(call.Pos(), "fmt.%s inside range over a map emits in randomized map order; range over sorted keys instead", name)
		}
		return
	case "encoding/binary":
		if name == "Write" {
			pass.Reportf(call.Pos(), "binary.Write inside range over a map emits in randomized map order; range over sorted keys instead")
		}
		return
	case "":
		// method call — fall through
	default:
		return
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return
	}
	if s.Kind() == types.FieldVal {
		if _, isFn := s.Type().Underlying().(*types.Signature); isFn {
			pass.Reportf(call.Pos(), "callback field %s invoked inside range over a map observes randomized map order; collect and sort the keys first", name)
		}
		return
	}
	if s.Kind() == types.MethodVal && sinkMethods[name] {
		pass.Reportf(call.Pos(), "%s call inside range over a map serializes in randomized map order; range over sorted keys instead", name)
	}
}

// checkMapRangeAppend flags `s = append(s, ...)` where s outlives the
// loop and is never subsequently sorted in the enclosing function.
func checkMapRangeAppend(pass *Pass, as *ast.AssignStmt, rng *ast.RangeStmt, outer *ast.BlockStmt) {
	if len(as.Rhs) != 1 || len(as.Lhs) == 0 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
		return
	} else if b, ok := pass.ObjectOf(id).(*types.Builtin); !ok || b.Name() != "append" {
		return
	}
	obj := lhsObject(pass, as.Lhs[0])
	if obj == nil || within(obj.Pos(), rng) {
		return // loop-local accumulator: dies with the iteration
	}
	if sortedAfter(pass, outer, rng, obj) {
		return // collect-then-sort idiom
	}
	pass.Reportf(as.Pos(), "append to %s inside range over a map accumulates in randomized map order; sort %s afterwards or range over sorted keys", obj.Name(), obj.Name())
}

// lhsObject resolves the variable (or field) an assignment writes to.
func lhsObject(pass *Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return pass.ObjectOf(e)
	case *ast.SelectorExpr:
		return pass.ObjectOf(e.Sel)
	}
	return nil
}

// sortedAfter reports whether, after the range statement, the enclosing
// function passes obj to a sort.* or slices.Sort* call — the signature
// of the collect-keys-then-sort idiom.
func sortedAfter(pass *Pass, outer *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	if outer == nil {
		return false
	}
	found := false
	ast.Inspect(outer, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch importedPkg(pass.TypesInfo, sel.X) {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
