// Package detlint statically enforces the repository's determinism
// invariants: a run's result bits must be a pure function of its inputs.
// The property tests (merge invariance, checkpoint bit-identity, flat-vs-
// tree checksum equality) catch violations after the fact — detlint
// catches the patterns that cause them at compile time.
//
// The package is a self-contained subset of the golang.org/x/tools
// go/analysis API (Analyzer, Pass, Diagnostic and an analysistest-style
// golden runner), built on the standard library's go/ast and go/types so
// the module keeps zero external dependencies. Analyzer Run functions are
// written against the x/tools shapes, so the suite can be rehosted on the
// real multichecker by swapping this file for the upstream import.
//
// Every analyzer honors a per-line suppression directive:
//
//	//detlint:allow <analyzer> <reason>
//
// placed on, or on the line immediately above, the offending statement.
// The reason is mandatory: a reasonless allow is itself reported. See
// docs/determinism-rules.md for the rule catalog.
package detlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one determinism rule and how to check it.
type Analyzer struct {
	// Name identifies the analyzer in reports and in
	// //detlint:allow directives. Lower-case, no spaces.
	Name string

	// Doc is the one-paragraph rule description shown by `detlint -list`.
	Doc string

	// Run applies the rule to a single type-checked package, reporting
	// violations through pass.Report / pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with one type-checked package. It mirrors
// golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report records a diagnostic against the pass's package.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf is Report with fmt.Sprintf formatting.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf returns the object denoted by ident, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.TypesInfo.ObjectOf(id)
}

// A Finding is one diagnostic after suppression matching: the unit the
// driver prints, counts and serializes.
type Finding struct {
	Analyzer   string         `json:"analyzer"`
	Pos        token.Position `json:"-"`
	File       string         `json:"file"`
	Line       int            `json:"line"`
	Col        int            `json:"col"`
	Message    string         `json:"message"`
	Suppressed bool           `json:"suppressed,omitempty"`
	// Reason is the justification from the matching //detlint:allow
	// directive; set only when Suppressed.
	Reason string `json:"reason,omitempty"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.File, f.Line, f.Col, f.Message, f.Analyzer)
}
