package detlint

import (
	"go/ast"
	"go/token"
)

// GlobalMutAnalyzer flags package-level mutable state in the
// deterministic packages. Every Session/Machine is supposed to be an
// independent replica — state shared through a package variable couples
// sessions running in one process, so replica A's history can leak into
// replica B's bytes (or into a serialized image). Constants, blank
// compile-time assertions (`var _ T = v`) and error sentinel values
// (write-once by convention, compared via errors.Is) are exempt;
// anything else needs an //detlint:allow globalmut with a reason
// explaining why the state can never reach result bytes.
var GlobalMutAnalyzer = &Analyzer{
	Name: "globalmut",
	Doc: "package-level mutable state in deterministic packages couples sessions that " +
		"should be independent replicas; move it into the Machine/Session or justify " +
		"with //detlint:allow globalmut <reason>",
	Run: runGlobalMut,
}

func runGlobalMut(pass *Pass) error {
	if !DeterministicPackages[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue // compile-time assertion
					}
					obj := pass.ObjectOf(name)
					if obj == nil {
						continue
					}
					if implementsError(obj.Type()) {
						continue // write-once error sentinel
					}
					pass.Reportf(name.Pos(), "package-level var %s is mutable cross-session state in deterministic package %s; make it a const, move it into the Machine/Session, or justify with //detlint:allow globalmut", name.Name, pass.Pkg.Path())
				}
			}
		}
	}
	return nil
}
