package detlint

import (
	"go/ast"
)

// WallTimeAnalyzer flags wall-clock reads and global (unseeded)
// math/rand use inside the deterministic packages. There, the virtual
// instruction clock and the machine's seeded device clock/rng are the
// only legal time and randomness sources: a time.Now or rand.Intn on a
// kernel path makes two replicas of the same inputs diverge, which the
// result-invariance property tests can detect only for the schedules
// they happen to sweep. The serving fabric (internal/serve) is also in
// scope even though the other determinism analyzers exempt it: its
// scheduling is free to be host-driven, but wall time may only reach it
// through an injected clock. bench, cmd, examples and the other
// host-side packages are exempt.
var WallTimeAnalyzer = &Analyzer{
	Name: "walltime",
	Doc: "time.Now/Since/Sleep and unseeded math/rand in deterministic packages " +
		"(internal/{vm,kernel,core,dsched,fs,trace,castore,serve} and the root package) " +
		"break input-purity; use the virtual clock, kernel.SeededRand, or an injected clock",
	Run: runWallTime,
}

// bannedTime are the time package entry points that observe or depend on
// the host clock. time.Duration arithmetic and formatting stay legal.
var bannedTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// seededRandConstructors build an explicitly seeded generator and are
// therefore deterministic; everything else in math/rand draws from the
// process-global, time-seeded source.
var seededRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runWallTime(pass *Pass) error {
	if !DeterministicPackages[pass.Pkg.Path()] && !WallClockPackages[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch importedPkg(pass.TypesInfo, sel.X) {
			case "time":
				if bannedTime[name] {
					pass.Reportf(sel.Pos(), "time.%s depends on the host wall clock in deterministic package %s; use the virtual clock (space VT) or the machine's device clock", name, pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				if !seededRandConstructors[name] {
					pass.Reportf(sel.Pos(), "rand.%s uses the global time-seeded source in deterministic package %s; use kernel.SeededRand or rand.New(rand.NewSource(seed))", name, pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil
}
