package vm

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// zeroData backs lazy-zero pages during comparisons. It is read-only by
// contract: every use aliases it behind a *[PageSize]byte that is only
// ever compared or copied from, and a write would corrupt every
// lazy-zero page in the process.
//
//detlint:allow globalmut read-only canonical zero page, aliased but never written
var zeroData [PageSize]byte

func dataOf(pg *page) *[PageSize]byte {
	if pg == nil {
		return &zeroData
	}
	return &pg.data
}

// MergeStats reports the work done by a Merge, for the kernel's
// virtual-time cost model. The semantic fields (adopted, compared, merged)
// depend only on the three spaces' contents, never on how the merge was
// executed: serial, parallel and dirty-guided walks all report identical
// values. PtesScanned is the exception — it counts iteration effort, which
// is exactly what dirty tracking exists to shrink.
type MergeStats struct {
	TablesAdopted int // whole child tables adopted (parent untouched since snapshot)
	PagesAdopted  int // child pages adopted wholesale (parent page untouched)
	PagesCompared int // pages byte-compared on the slow path
	BytesMerged   int // individual bytes copied into the parent
	PtesScanned   int // level-2 entries examined: O(mapped) unguided, O(dirtied) guided
}

// Add accumulates another merge's statistics into s.
func (s *MergeStats) Add(o MergeStats) {
	s.TablesAdopted += o.TablesAdopted
	s.PagesAdopted += o.PagesAdopted
	s.PagesCompared += o.PagesCompared
	s.BytesMerged += o.BytesMerged
	s.PtesScanned += o.PtesScanned
}

// MergeConflictError reports write/write conflicts found during a Merge:
// bytes modified both by the child (relative to its reference snapshot) and
// by the parent. Determinator treats this as a runtime exception, like
// divide-by-zero; it is reliably detected regardless of execution schedule.
type MergeConflictError struct {
	Addrs []Addr // first few conflicting byte addresses, in address order
	Total int    // total conflicting bytes
}

func (e *MergeConflictError) Error() string {
	if len(e.Addrs) == 0 {
		return "vm: merge conflict"
	}
	return fmt.Sprintf("vm: merge conflict: %d byte(s) modified in both spaces (first at %#08x)",
		e.Total, e.Addrs[0])
}

const maxReportedConflicts = 8

// MergeMode selects how Merge treats bytes changed on both sides.
type MergeMode int

const (
	// MergeStrict reports write/write conflicts as errors: the private
	// workspace model's semantics.
	MergeStrict MergeMode = iota
	// MergeLastWriter lets the merging child's byte win silently. The
	// deterministic scheduler (§4.5) uses this: under quantized execution
	// racy writes commit in deterministic round order — repeatable, but
	// no more predictable than conventional threads, as the paper notes.
	MergeLastWriter
)

// MergeConfig selects how a merge is executed. Execution choices never
// change the outcome — only wall-clock cost and the PtesScanned counter.
type MergeConfig struct {
	// Mode selects conflict handling (MergeStrict or MergeLastWriter).
	Mode MergeMode
	// Workers is the level of host parallelism: table partitions are
	// byte-compared by up to this many goroutines. Values <= 1 run
	// serially. Explicit values are honored as given; callers wanting
	// "as parallel as the host allows" use MergeParallel with
	// workers <= 0, which selects GOMAXPROCS.
	Workers int
	// NoDirtyHints disables dirty-bitmap-guided iteration, forcing the
	// full per-table pte scan even when the hints are available. The
	// result is identical; benchmarks and the equivalence property test
	// use this to measure and verify the unguided path.
	NoDirtyHints bool
}

// Merge folds the child's changes since its reference snapshot into dst
// (the parent), over the page-aligned range [addr, addr+size). For every
// byte that differs between cur (the child's current state) and ref (the
// snapshot taken when the child was forked), the byte is copied into dst —
// unless dst itself changed that byte since the snapshot, which is a
// conflict. Bytes the child did not change are left untouched in dst.
//
// Merge is the kernel-level operation behind the Merge option of Get; the
// byte-granularity semantics are what make Determinator's private
// workspace model deterministic: the outcome depends only on which bytes
// each side wrote, never on when they wrote them.
func Merge(dst, cur, ref *Space, addr Addr, size uint64) (MergeStats, error) {
	return MergeEx(dst, cur, ref, addr, size, MergeConfig{Mode: MergeStrict})
}

// MergeWith is Merge with an explicit conflict-handling mode.
func MergeWith(dst, cur, ref *Space, addr Addr, size uint64, mode MergeMode) (MergeStats, error) {
	return MergeEx(dst, cur, ref, addr, size, MergeConfig{Mode: mode})
}

// MergeParallel is MergeWith with the page comparisons spread over up to
// workers goroutines (<= 0 selects GOMAXPROCS). Partitions are combined in
// address order, so the destination bytes, statistics and conflict list
// are identical to the serial Merge no matter how the workers are
// scheduled — parallelism buys wall-clock speed, nothing else.
func MergeParallel(dst, cur, ref *Space, addr Addr, size uint64, mode MergeMode, workers int) (MergeStats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return MergeEx(dst, cur, ref, addr, size, MergeConfig{Mode: mode, Workers: workers})
}

// ParallelFor runs fn(0), ..., fn(n-1) with up to workers goroutines
// claiming indices from a shared counter; workers <= 1 runs inline, in
// order. It is the bounded pool behind the parallel merge engine, also
// used by the kernel's concurrent child collection. fn must make the
// usual disjointness guarantee: invocations for different indices touch
// no common mutable state.
func ParallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// tableJob is one unit of merge work: the slice [lo, hi) of the level-2
// table at level-1 index l1, optionally narrowed by a dirty bitmap.
type tableJob struct {
	l1, lo, hi int
	db         *dirtyBits // nil: scan every pte in [lo, hi)
}

// tableResult collects one job's contribution, combined in address order.
type tableResult struct {
	st       MergeStats
	conflict MergeConflictError
}

// MergeEx is the full-control merge entry point; see MergeConfig.
func MergeEx(dst, cur, ref *Space, addr Addr, size uint64, cfg MergeConfig) (MergeStats, error) {
	var st MergeStats
	if err := rangeCheck(addr, size); err != nil {
		return st, err
	}
	guided := !cfg.NoDirtyHints && dirtyGuided(cur, ref)

	// Walk only the level-2 tables that exist in the child: the snapshot
	// was taken from the child, so any page mapped in ref is mapped in cur.
	// A table the child never touched is still pointer-shared with the
	// snapshot and is skipped outright; when dirty hints are trustworthy,
	// an untouched table additionally has no bitmap at all.
	end := uint64(addr) + size
	var jobs []tableJob
	for l1 := int(addr >> l1Shift); uint64(l1)<<l1Shift < end; l1++ {
		ct := cur.root[l1]
		if ct == nil || ct == ref.root[l1] {
			continue // child did not touch this whole 4 MiB span
		}
		var db *dirtyBits
		if guided {
			if db = cur.dirty[l1]; db == nil {
				continue
			}
		}
		base := uint64(l1) << l1Shift
		lo, hi := 0, tableEntries
		if base < uint64(addr) {
			lo = int((uint64(addr) - base) >> l2Shift)
		}
		if base+(tableEntries<<l2Shift) > end {
			hi = int((end - base) >> l2Shift)
		}
		jobs = append(jobs, tableJob{l1: l1, lo: lo, hi: hi, db: db})
	}

	workers := cfg.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}

	conflict := &MergeConflictError{}
	if workers <= 1 {
		for _, j := range jobs {
			mergeTable(dst, cur, ref, j, cfg.Mode, &st, conflict)
		}
	} else {
		// Each job owns a distinct level-1 slot of dst (root pointer,
		// table, dirty bitmap), so workers write disjoint state; page
		// reference counts are atomic. Jobs are claimed from a shared
		// counter but their results are indexed by job, and combined
		// below in ascending address order — identical to serial.
		results := make([]tableResult, len(jobs))
		ParallelFor(len(jobs), workers, func(i int) {
			mergeTable(dst, cur, ref, jobs[i], cfg.Mode,
				&results[i].st, &results[i].conflict)
		})
		for i := range results {
			st.Add(results[i].st)
			for _, a := range results[i].conflict.Addrs {
				if len(conflict.Addrs) < maxReportedConflicts {
					conflict.Addrs = append(conflict.Addrs, a)
				}
			}
			conflict.Total += results[i].conflict.Total
		}
	}
	if conflict.Total > 0 {
		return st, conflict
	}
	return st, nil
}

// mergeTable merges one job's slice of a level-2 table into dst. It is the
// unit of parallelism: everything it mutates hangs off dst's level-1 slot
// job.l1, which the job owns exclusively.
func mergeTable(dst, cur, ref *Space, job tableJob, mode MergeMode, st *MergeStats, conflict *MergeConflictError) {
	l1 := job.l1
	ct := cur.root[l1]
	rt := ref.root[l1]
	if dt := dst.root[l1]; dt == rt && job.lo == 0 && job.hi == tableEntries {
		// The parent still shares the snapshot's table: it has not
		// touched this span since the fork, so adopting the child's
		// whole table is byte-for-byte equivalent to merging it.
		// Count the pages that actually changed (pointer compares)
		// so the cost model still sees the real data volume.
		count := func(l2 int) {
			st.PtesScanned++
			var rp *page
			if rt != nil {
				rp = rt.ptes[l2].pg
			}
			if ct.ptes[l2].pg != rp {
				st.PagesAdopted++
			}
		}
		if job.db != nil {
			job.db.forEachSetBit(0, tableEntries, count)
		} else {
			for l2 := 0; l2 < tableEntries; l2++ {
				count(l2)
			}
		}
		releaseTable(dt)
		dst.root[l1] = shareTable(ct)
		dst.markTableDirty(l1)
		st.TablesAdopted++
		return
	}
	visit := func(l2 int) {
		st.PtesScanned++
		ce := ct.ptes[l2]
		var re pte
		if rt != nil {
			re = rt.ptes[l2]
		}
		if ce.pg == re.pg {
			return // child did not change this page
		}
		pa := Addr(uint64(l1)<<l1Shift) + Addr(l2)<<l2Shift
		mergePage(dst, pa, ce, re, mode, st, conflict)
	}
	if job.db != nil {
		job.db.forEachSetBit(job.lo, job.hi, visit)
	} else {
		for l2 := job.lo; l2 < job.hi; l2++ {
			visit(l2)
		}
	}
}

// mergePage merges one child page at address pa into dst.
func mergePage(dst *Space, pa Addr, ce, re pte, mode MergeMode, st *MergeStats, conflict *MergeConflictError) {
	de := dst.entry(pa)
	if de.pg == re.pg {
		// Fast path: the parent has not touched this page since the
		// snapshot (it still shares the snapshot's page), so adopting the
		// child's whole page is byte-for-byte equivalent to copying only
		// the changed bytes.
		l1, l2 := split(pa)
		t := dst.ownTable(l1)
		if old := t.ptes[l2].pg; old != nil {
			old.refs.Add(-1)
		}
		if ce.pg != nil {
			ce.pg.refs.Add(1)
		}
		perm := de.perm
		if !de.mapped() {
			perm = ce.perm
		}
		t.ptes[l2] = pte{pg: ce.pg, perm: perm}
		dst.markDirty(pa)
		st.PagesAdopted++
		return
	}

	// Slow path: both sides may have changed; compare byte by byte,
	// eight bytes at a time.
	st.PagesCompared++
	curD, refD, dstD := dataOf(ce.pg), dataOf(re.pg), dataOf(de.pg)
	var wp *page // writable dst page, fetched lazily
	for off := 0; off < PageSize; off += 8 {
		cw := binary.LittleEndian.Uint64(curD[off:])
		rw := binary.LittleEndian.Uint64(refD[off:])
		if cw == rw {
			continue
		}
		dw := binary.LittleEndian.Uint64(dstD[off:])
		for b := 0; b < 8; b++ {
			sh := 8 * b
			cb, rb := byte(cw>>sh), byte(rw>>sh)
			if cb == rb {
				continue
			}
			if byte(dw>>sh) != rb && mode == MergeStrict {
				// Parent changed this byte too: write/write conflict.
				if len(conflict.Addrs) < maxReportedConflicts {
					conflict.Addrs = append(conflict.Addrs, pa+Addr(off+b))
				}
				conflict.Total++
				continue
			}
			if wp == nil {
				wp = dst.writablePage(pa)
			}
			wp.data[off+b] = cb
			st.BytesMerged++
		}
	}
}

// CopyAllFrom replaces the entire contents of s with a COW clone of src,
// releasing whatever s held before. It is the bulk path behind fork-style
// "copy the parent's whole memory into the child" Put calls: whole
// level-2 tables are shared, so the cost is O(mapped space / 4 MiB).
func (s *Space) CopyAllFrom(src *Space) CopyStats {
	var st CopyStats
	for l1 := range s.root {
		srcT := src.root[l1]
		dstT := s.root[l1]
		if srcT == dstT {
			continue
		}
		releaseTable(dstT)
		s.root[l1] = shareTable(srcT)
		if srcT != nil {
			st.TablesShared++
		}
	}
	s.markAllDirty()
	return st
}
