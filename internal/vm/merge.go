package vm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// zeroData backs lazy-zero pages during comparisons. It is read-only by
// contract: every use aliases it behind a *[PageSize]byte that is only
// ever compared or copied from, and a write would corrupt every
// lazy-zero page in the process.
//
//detlint:allow globalmut read-only canonical zero page, aliased but never written
var zeroData [PageSize]byte

func dataOf(pg *page) *[PageSize]byte {
	if pg == nil {
		return &zeroData
	}
	return &pg.data
}

// MergeStats reports the work done by a Merge, for the kernel's
// virtual-time cost model. The semantic fields (adopted, compared, merged)
// depend only on the three spaces' contents, never on how the merge was
// executed: serial, parallel and dirty-guided walks all report identical
// values. PtesScanned is the exception — it counts iteration effort, which
// is exactly what dirty tracking exists to shrink.
type MergeStats struct {
	TablesAdopted int // whole child tables adopted (parent untouched since snapshot)
	PagesAdopted  int // child pages adopted wholesale (parent page untouched)
	PagesCompared int // pages byte-compared on the slow path
	BytesMerged   int // individual bytes copied into the parent
	PtesScanned   int // level-2 entries examined: O(mapped) unguided, O(dirtied) guided
}

// Add accumulates another merge's statistics into s.
func (s *MergeStats) Add(o MergeStats) {
	s.TablesAdopted += o.TablesAdopted
	s.PagesAdopted += o.PagesAdopted
	s.PagesCompared += o.PagesCompared
	s.BytesMerged += o.BytesMerged
	s.PtesScanned += o.PtesScanned
}

// MergeConflictError reports write/write conflicts found during a Merge:
// bytes modified both by the child (relative to its reference snapshot) and
// by the parent. Determinator treats this as a runtime exception, like
// divide-by-zero; it is reliably detected regardless of execution schedule.
type MergeConflictError struct {
	Addrs []Addr // first few conflicting byte addresses, in address order
	Total int    // total conflicting bytes
}

func (e *MergeConflictError) Error() string {
	if len(e.Addrs) == 0 {
		return "vm: merge conflict"
	}
	return fmt.Sprintf("vm: merge conflict: %d byte(s) modified in both spaces (first at %#08x)",
		e.Total, e.Addrs[0])
}

const maxReportedConflicts = 8

// MergeMode selects how Merge treats bytes changed on both sides.
type MergeMode int

const (
	// MergeStrict reports write/write conflicts as errors: the private
	// workspace model's semantics.
	MergeStrict MergeMode = iota
	// MergeLastWriter lets the merging child's byte win silently. The
	// deterministic scheduler (§4.5) uses this: under quantized execution
	// racy writes commit in deterministic round order — repeatable, but
	// no more predictable than conventional threads, as the paper notes.
	MergeLastWriter
)

// MergeConfig selects how a merge is executed. Execution choices never
// change the outcome — only wall-clock cost and the PtesScanned counter.
type MergeConfig struct {
	// Mode selects conflict handling (MergeStrict or MergeLastWriter).
	Mode MergeMode
	// Workers is the level of host parallelism: table partitions are
	// byte-compared by up to this many goroutines. Values <= 1 run
	// serially. Explicit values are honored as given; callers wanting
	// "as parallel as the host allows" use MergeParallel with
	// workers <= 0, which selects GOMAXPROCS.
	Workers int
	// NoDirtyHints disables dirty-bitmap-guided iteration, forcing the
	// full per-table pte scan even when the hints are available. The
	// result is identical; benchmarks and the equivalence property test
	// use this to measure and verify the unguided path.
	NoDirtyHints bool
	// ByteKernel selects the per-byte reference merge kernel — the
	// original decode-every-differing-word-into-bytes slow path — instead
	// of the word-masked kernel. The two produce bit-identical
	// destination bytes, statistics and conflict lists (property-tested);
	// the reference kernel is kept as the oracle for those tests and as
	// the benchmark baseline the word kernel is measured against.
	ByteKernel bool
	// Touched, if non-nil, gets a bit set for every level-1 table of dst
	// this merge modified (whole-table adoptions, page adoptions, and
	// byte merges alike). Like the semantic MergeStats fields the bits
	// are invariant across workers, dirty hints and kernel choice, so
	// collectors can use them to maintain per-table commit epochs
	// deterministically.
	Touched *TableBits
}

// Merge folds the child's changes since its reference snapshot into dst
// (the parent), over the page-aligned range [addr, addr+size). For every
// byte that differs between cur (the child's current state) and ref (the
// snapshot taken when the child was forked), the byte is copied into dst —
// unless dst itself changed that byte since the snapshot, which is a
// conflict. Bytes the child did not change are left untouched in dst.
//
// Merge is the kernel-level operation behind the Merge option of Get; the
// byte-granularity semantics are what make Determinator's private
// workspace model deterministic: the outcome depends only on which bytes
// each side wrote, never on when they wrote them.
func Merge(dst, cur, ref *Space, addr Addr, size uint64) (MergeStats, error) {
	return MergeEx(dst, cur, ref, addr, size, MergeConfig{Mode: MergeStrict})
}

// MergeWith is Merge with an explicit conflict-handling mode.
func MergeWith(dst, cur, ref *Space, addr Addr, size uint64, mode MergeMode) (MergeStats, error) {
	return MergeEx(dst, cur, ref, addr, size, MergeConfig{Mode: mode})
}

// MergeParallel is MergeWith with the page comparisons spread over up to
// workers goroutines (<= 0 selects GOMAXPROCS). Partitions are combined in
// address order, so the destination bytes, statistics and conflict list
// are identical to the serial Merge no matter how the workers are
// scheduled — parallelism buys wall-clock speed, nothing else.
func MergeParallel(dst, cur, ref *Space, addr Addr, size uint64, mode MergeMode, workers int) (MergeStats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return MergeEx(dst, cur, ref, addr, size, MergeConfig{Mode: mode, Workers: workers})
}

// ParallelFor runs fn(0), ..., fn(n-1) with up to workers goroutines
// claiming indices from a shared counter; workers <= 1 runs inline, in
// order. It is the bounded pool behind the parallel merge engine, also
// used by the kernel's concurrent child collection. fn must make the
// usual disjointness guarantee: invocations for different indices touch
// no common mutable state.
func ParallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// tableJob is one unit of merge work: the slice [lo, hi) of the level-2
// table at level-1 index l1, optionally narrowed by a dirty bitmap.
type tableJob struct {
	l1, lo, hi int
	db         *dirtyBits // nil: scan every pte in [lo, hi)
}

// tableResult collects one job's contribution, combined in address order.
type tableResult struct {
	st       MergeStats
	conflict MergeConflictError
	touched  bool // job modified dst's level-1 slot
}

// mergeCtx carries one job's merge parameters and output sinks. Every
// sink is owned by the job (results are recombined in address order), so
// parallel workers never share mutable state through it.
type mergeCtx struct {
	mode       MergeMode
	byteKernel bool
	st         *MergeStats
	conflict   *MergeConflictError
	touched    *bool
}

// MergeEx is the full-control merge entry point; see MergeConfig.
func MergeEx(dst, cur, ref *Space, addr Addr, size uint64, cfg MergeConfig) (MergeStats, error) {
	var st MergeStats
	if err := rangeCheck(addr, size); err != nil {
		return st, err
	}
	guided := !cfg.NoDirtyHints && dirtyGuided(cur, ref)

	// Walk only the level-2 tables that exist in the child: the snapshot
	// was taken from the child, so any page mapped in ref is mapped in cur.
	// A table the child never touched is still pointer-shared with the
	// snapshot and is skipped outright; when dirty hints are trustworthy,
	// an untouched table additionally has no bitmap at all.
	end := uint64(addr) + size
	var jobs []tableJob
	for l1 := int(addr >> l1Shift); uint64(l1)<<l1Shift < end; l1++ {
		ct := cur.root[l1]
		if ct == nil || ct == ref.root[l1] {
			continue // child did not touch this whole 4 MiB span
		}
		var db *dirtyBits
		if guided {
			if db = cur.dirty[l1]; db == nil {
				continue
			}
		}
		base := uint64(l1) << l1Shift
		lo, hi := 0, tableEntries
		if base < uint64(addr) {
			lo = int((uint64(addr) - base) >> l2Shift)
		}
		if base+(tableEntries<<l2Shift) > end {
			hi = int((end - base) >> l2Shift)
		}
		jobs = append(jobs, tableJob{l1: l1, lo: lo, hi: hi, db: db})
	}

	workers := cfg.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}

	conflict := &MergeConflictError{}
	if workers <= 1 {
		for _, j := range jobs {
			var touched bool
			mergeTable(dst, cur, ref, j, mergeCtx{
				mode: cfg.Mode, byteKernel: cfg.ByteKernel,
				st: &st, conflict: conflict, touched: &touched,
			})
			if touched && cfg.Touched != nil {
				cfg.Touched.Set(j.l1)
			}
		}
	} else {
		// Each job owns a distinct level-1 slot of dst (root pointer,
		// table, dirty bitmap), so workers write disjoint state; page
		// reference counts are atomic. Jobs are claimed from a shared
		// counter but their results are indexed by job, and combined
		// below in ascending address order — identical to serial.
		results := make([]tableResult, len(jobs))
		ParallelFor(len(jobs), workers, func(i int) {
			mergeTable(dst, cur, ref, jobs[i], mergeCtx{
				mode: cfg.Mode, byteKernel: cfg.ByteKernel,
				st: &results[i].st, conflict: &results[i].conflict,
				touched: &results[i].touched,
			})
		})
		for i := range results {
			st.Add(results[i].st)
			for _, a := range results[i].conflict.Addrs {
				if len(conflict.Addrs) < maxReportedConflicts {
					conflict.Addrs = append(conflict.Addrs, a)
				}
			}
			conflict.Total += results[i].conflict.Total
			if results[i].touched && cfg.Touched != nil {
				cfg.Touched.Set(jobs[i].l1)
			}
		}
	}
	if conflict.Total > 0 {
		return st, conflict
	}
	return st, nil
}

// dstCursor resolves dst's level-1 slot once per merge job instead of
// once per page. The owned level-2 table and its dirty bitmap are cached
// on first write, so the per-page writable-page path is a pte load, a
// refcount check and a bit set — no repeated root walk, ownTable refcount
// inspection or dirty-bitmap lookup. The cursor is job-local state over a
// level-1 slot the job owns exclusively, like everything else the merge
// mutates.
type dstCursor struct {
	s  *Space
	l1 int
	t  *table     // privately-owned level-2 table, resolved lazily
	db *dirtyBits // dst's dirty bitmap for l1, resolved with t
}

// entry reads dst's pte for l2, through the owned table once one exists.
func (dc *dstCursor) entry(l2 int) pte {
	t := dc.t
	if t == nil {
		if t = dc.s.root[dc.l1]; t == nil {
			return pte{}
		}
	}
	return t.ptes[l2]
}

// own returns dst's privately-owned table for the cursor's slot,
// breaking table sharing on first use.
func (dc *dstCursor) own() *table {
	if dc.t == nil {
		dc.t = dc.s.ownTable(dc.l1)
		dc.db = dc.s.dirtyTable(dc.l1)
	}
	return dc.t
}

// writablePage marks l2 dirty and returns a privately-owned page there,
// breaking page sharing as needed — Space.writablePage minus the
// per-page table walk.
func (dc *dstCursor) writablePage(l2 int) *page {
	t := dc.own()
	dc.db[l2>>6] |= 1 << (uint(l2) & 63)
	e := t.ptes[l2]
	switch {
	case e.pg == nil:
		e.pg = newPage()
		t.ptes[l2] = e
	case e.pg.refs.Load() > 1:
		np := newPage()
		np.data = e.pg.data
		e.pg.refs.Add(-1)
		e.pg = np
		t.ptes[l2] = e
	}
	return e.pg
}

// mergeTable merges one job's slice of a level-2 table into dst. It is the
// unit of parallelism: everything it mutates hangs off dst's level-1 slot
// job.l1, which the job owns exclusively.
func mergeTable(dst, cur, ref *Space, job tableJob, c mergeCtx) {
	l1 := job.l1
	ct := cur.root[l1]
	rt := ref.root[l1]
	st := c.st
	if dt := dst.root[l1]; dt == rt && job.lo == 0 && job.hi == tableEntries {
		// The parent still shares the snapshot's table: it has not
		// touched this span since the fork, so adopting the child's
		// whole table is byte-for-byte equivalent to merging it.
		// Count the pages that actually changed (pointer compares)
		// so the cost model still sees the real data volume.
		count := func(l2 int) {
			st.PtesScanned++
			var rp *page
			if rt != nil {
				rp = rt.ptes[l2].pg
			}
			if ct.ptes[l2].pg != rp {
				st.PagesAdopted++
			}
		}
		if job.db != nil {
			job.db.forEachSetBit(0, tableEntries, count)
		} else {
			for l2 := 0; l2 < tableEntries; l2++ {
				count(l2)
			}
		}
		releaseTable(dt)
		dst.root[l1] = shareTable(ct)
		dst.markTableDirty(l1)
		st.TablesAdopted++
		*c.touched = true
		return
	}
	dc := dstCursor{s: dst, l1: l1}
	visit := func(l2 int) {
		st.PtesScanned++
		ce := ct.ptes[l2]
		var re pte
		if rt != nil {
			re = rt.ptes[l2]
		}
		if ce.pg == re.pg {
			return // child did not change this page
		}
		pa := Addr(uint64(l1)<<l1Shift) + Addr(l2)<<l2Shift
		mergePage(&dc, pa, l2, ce, re, c)
	}
	if job.db != nil {
		job.db.forEachSetBit(job.lo, job.hi, visit)
	} else {
		for l2 := job.lo; l2 < job.hi; l2++ {
			visit(l2)
		}
	}
}

// mergePage merges one child page at address pa into dst. The adoption
// fast path is kernel-independent; pages that need a real three-way
// compare go to the word-masked kernel or, under MergeConfig.ByteKernel,
// the per-byte reference kernel.
func mergePage(dc *dstCursor, pa Addr, l2 int, ce, re pte, c mergeCtx) {
	de := dc.entry(l2)
	if de.pg == re.pg {
		// Fast path: the parent has not touched this page since the
		// snapshot (it still shares the snapshot's page), so adopting the
		// child's whole page is byte-for-byte equivalent to copying only
		// the changed bytes.
		t := dc.own()
		if old := t.ptes[l2].pg; old != nil {
			old.refs.Add(-1)
		}
		if ce.pg != nil {
			ce.pg.refs.Add(1)
		}
		perm := de.perm
		if !de.mapped() {
			perm = ce.perm
		}
		t.ptes[l2] = pte{pg: ce.pg, perm: perm}
		dc.db[l2>>6] |= 1 << (uint(l2) & 63)
		c.st.PagesAdopted++
		*c.touched = true
		return
	}
	if c.byteKernel {
		mergePageBytes(dc, pa, l2, ce, re, de, c)
	} else {
		mergePageWords(dc, pa, l2, ce, re, de, c)
	}
}

// mergePageBytes is the reference merge kernel: compare eight bytes at a
// time, decode every differing word into a per-byte loop. It defines the
// merge semantics the word kernel must reproduce bit-for-bit — bytes,
// statistics and conflict addresses — and serves as the oracle in the
// kernel equivalence property test and as the benchmark baseline.
func mergePageBytes(dc *dstCursor, pa Addr, l2 int, ce, re pte, de pte, c mergeCtx) {
	st, conflict := c.st, c.conflict
	st.PagesCompared++
	curD, refD, dstD := dataOf(ce.pg), dataOf(re.pg), dataOf(de.pg)
	var wp *page // writable dst page, fetched lazily
	for off := 0; off < PageSize; off += 8 {
		cw := binary.LittleEndian.Uint64(curD[off:])
		rw := binary.LittleEndian.Uint64(refD[off:])
		if cw == rw {
			continue
		}
		dw := binary.LittleEndian.Uint64(dstD[off:])
		for b := 0; b < 8; b++ {
			sh := 8 * b
			cb, rb := byte(cw>>sh), byte(rw>>sh)
			if cb == rb {
				continue
			}
			if byte(dw>>sh) != rb && c.mode == MergeStrict {
				// Parent changed this byte too: write/write conflict.
				if len(conflict.Addrs) < maxReportedConflicts {
					conflict.Addrs = append(conflict.Addrs, pa+Addr(off+b))
				}
				conflict.Total++
				continue
			}
			if wp == nil {
				wp = dc.writablePage(l2)
				*c.touched = true
			}
			wp.data[off+b] = cb
			st.BytesMerged++
		}
	}
}

// byteMaskOf expands a word x into a byte mask: every byte of the result
// is 0xFF where the corresponding byte of x is nonzero, 0x00 where it is
// zero. The OR-fold collapses each byte's bits into its bit 0 (shifts of
// at most 7 never cross into a lower byte's bit 0), and the multiply
// smears bit 0 across the byte.
func byteMaskOf(x uint64) uint64 {
	m := x | x>>4
	m |= m >> 2
	m |= m >> 1
	m &= 0x0101010101010101
	return m * 0xFF
}

// mergeBlock and mergeStride are the two spans the word kernel
// pre-filters with bytes.Equal before walking words. Equal spans — the
// common case on pages where a child touched a few bytes — are skipped
// at memequal (SIMD) speed; the two-level hierarchy (page quarters,
// then 256-byte strides inside a differing quarter) keeps the call
// count low on mostly-clean pages without widening the word walk.
const (
	mergeBlock  = 1024
	mergeStride = 256
)

// mergePageWords is the word-masked merge kernel. It produces destination
// bytes, statistics and conflict addresses bit-identical to
// mergePageBytes (property-tested in merge_kernel_test.go) while moving
// data a word or a run at a time:
//
//   - a whole-page bytes.Equal prefilter, then a bytes.Equal skip per
//     256-byte stride, dispose of the unchanged spans at memequal speed;
//   - each differing word derives a byte mask from cw^rw; the strict-mode
//     conflict test for all eight bytes is one masked compare of dw^rw;
//   - conflict-free words merge with a single masked 8-byte store, and
//     BytesMerged is the mask's byte population count;
//   - maximal runs of fully-changed words coalesce into one copy().
//
// Conflict words (strict mode only) fall back to the per-byte decode so
// conflict addresses are recorded in the same ascending order, and the
// non-conflicting bytes of such words still merge, exactly as the
// reference kernel does.
func mergePageWords(dc *dstCursor, pa Addr, l2 int, ce, re pte, de pte, c mergeCtx) {
	st, conflict := c.st, c.conflict
	st.PagesCompared++
	curD, refD, dstD := dataOf(ce.pg), dataOf(re.pg), dataOf(de.pg)
	if bytes.Equal(curD[:], refD[:]) {
		return // child did not change a byte; nothing to merge
	}
	var wp *page // writable dst page, fetched lazily
	writable := func() *page {
		if wp == nil {
			wp = dc.writablePage(l2)
			*c.touched = true
		}
		return wp
	}
	// runStart tracks a pending run of fully-changed words; flush copies
	// the run [runStart, end) from the child in one memmove.
	runStart := -1
	flush := func(end int) {
		if runStart < 0 {
			return
		}
		p := writable()
		copy(p.data[runStart:end], curD[runStart:end])
		st.BytesMerged += end - runStart
		runStart = -1
	}
	for blk := 0; blk < PageSize; blk += mergeBlock {
		if bytes.Equal(curD[blk:blk+mergeBlock], refD[blk:blk+mergeBlock]) {
			flush(blk)
			continue
		}
		for base := blk; base < blk+mergeBlock; base += mergeStride {
			if bytes.Equal(curD[base:base+mergeStride], refD[base:base+mergeStride]) {
				flush(base)
				continue
			}
			for off := base; off < base+mergeStride; off += 8 {
				cw := binary.LittleEndian.Uint64(curD[off:])
				rw := binary.LittleEndian.Uint64(refD[off:])
				x := cw ^ rw
				if x == 0 {
					flush(off)
					continue
				}
				mask := byteMaskOf(x)
				dw := binary.LittleEndian.Uint64(dstD[off:])
				if c.mode == MergeStrict && (dw^rw)&mask != 0 {
					// At least one child-changed byte was changed by the
					// parent too. Decode per byte: record conflicts in
					// ascending address order, merge the rest.
					flush(off)
					for b := 0; b < 8; b++ {
						sh := 8 * b
						cb, rb := byte(cw>>sh), byte(rw>>sh)
						if cb == rb {
							continue
						}
						if byte(dw>>sh) != rb {
							if len(conflict.Addrs) < maxReportedConflicts {
								conflict.Addrs = append(conflict.Addrs, pa+Addr(off+b))
							}
							conflict.Total++
							continue
						}
						writable().data[off+b] = cb
						st.BytesMerged++
					}
					continue
				}
				if mask == ^uint64(0) {
					// Fully-changed word: extend the pending run instead of
					// storing now; adjacent full words become one copy().
					if runStart < 0 {
						runStart = off
					}
					continue
				}
				flush(off)
				merged := (dw &^ mask) | (cw & mask)
				binary.LittleEndian.PutUint64(writable().data[off:], merged)
				st.BytesMerged += bits.OnesCount64(mask) >> 3
			}
		}
	}
	flush(PageSize)
}

// CopyAllFrom replaces the entire contents of s with a COW clone of src,
// releasing whatever s held before. It is the bulk path behind fork-style
// "copy the parent's whole memory into the child" Put calls: whole
// level-2 tables are shared, so the cost is O(mapped space / 4 MiB).
func (s *Space) CopyAllFrom(src *Space) CopyStats {
	var st CopyStats
	for l1 := range s.root {
		srcT := src.root[l1]
		dstT := s.root[l1]
		if srcT == dstT {
			continue
		}
		releaseTable(dstT)
		s.root[l1] = shareTable(srcT)
		if srcT != nil {
			st.TablesShared++
		}
	}
	s.markAllDirty()
	return st
}
