package vm

import (
	"encoding/binary"
	"fmt"
)

// zeroData backs lazy-zero pages during comparisons.
var zeroData [PageSize]byte

func dataOf(pg *page) *[PageSize]byte {
	if pg == nil {
		return &zeroData
	}
	return &pg.data
}

// MergeStats reports the work done by a Merge, for the kernel's
// virtual-time cost model.
type MergeStats struct {
	TablesAdopted int // whole child tables adopted (parent untouched since snapshot)
	PagesAdopted  int // child pages adopted wholesale (parent page untouched)
	PagesCompared int // pages byte-compared on the slow path
	BytesMerged   int // individual bytes copied into the parent
}

// MergeConflictError reports write/write conflicts found during a Merge:
// bytes modified both by the child (relative to its reference snapshot) and
// by the parent. Determinator treats this as a runtime exception, like
// divide-by-zero; it is reliably detected regardless of execution schedule.
type MergeConflictError struct {
	Addrs []Addr // first few conflicting byte addresses
	Total int    // total conflicting bytes
}

func (e *MergeConflictError) Error() string {
	if len(e.Addrs) == 0 {
		return "vm: merge conflict"
	}
	return fmt.Sprintf("vm: merge conflict: %d byte(s) modified in both spaces (first at %#08x)",
		e.Total, e.Addrs[0])
}

const maxReportedConflicts = 8

// MergeMode selects how Merge treats bytes changed on both sides.
type MergeMode int

const (
	// MergeStrict reports write/write conflicts as errors: the private
	// workspace model's semantics.
	MergeStrict MergeMode = iota
	// MergeLastWriter lets the merging child's byte win silently. The
	// deterministic scheduler (§4.5) uses this: under quantized execution
	// racy writes commit in deterministic round order — repeatable, but
	// no more predictable than conventional threads, as the paper notes.
	MergeLastWriter
)

// Merge folds the child's changes since its reference snapshot into dst
// (the parent), over the page-aligned range [addr, addr+size). For every
// byte that differs between cur (the child's current state) and ref (the
// snapshot taken when the child was forked), the byte is copied into dst —
// unless dst itself changed that byte since the snapshot, which is a
// conflict. Bytes the child did not change are left untouched in dst.
//
// Merge is the kernel-level operation behind the Merge option of Get; the
// byte-granularity semantics are what make Determinator's private
// workspace model deterministic: the outcome depends only on which bytes
// each side wrote, never on when they wrote them.
func Merge(dst, cur, ref *Space, addr Addr, size uint64) (MergeStats, error) {
	return MergeWith(dst, cur, ref, addr, size, MergeStrict)
}

// MergeWith is Merge with an explicit conflict-handling mode.
func MergeWith(dst, cur, ref *Space, addr Addr, size uint64, mode MergeMode) (MergeStats, error) {
	var st MergeStats
	if err := rangeCheck(addr, size); err != nil {
		return st, err
	}
	conflict := &MergeConflictError{}

	// Walk only the level-2 tables that exist in the child: the snapshot
	// was taken from the child, so any page mapped in ref is mapped in cur.
	end := uint64(addr) + size
	for l1 := int(addr >> l1Shift); uint64(l1)<<l1Shift < end; l1++ {
		ct := cur.root[l1]
		if ct == nil {
			continue
		}
		rt := ref.root[l1]
		if ct == rt {
			continue // child did not touch this whole 4 MiB span
		}
		base := uint64(l1) << l1Shift
		lo, hi := 0, tableEntries
		if base < uint64(addr) {
			lo = int((uint64(addr) - base) >> l2Shift)
		}
		if base+(tableEntries<<l2Shift) > end {
			hi = int((end - base) >> l2Shift)
		}
		if dt := dst.root[l1]; dt == rt && lo == 0 && hi == tableEntries {
			// The parent still shares the snapshot's table: it has not
			// touched this span since the fork, so adopting the child's
			// whole table is byte-for-byte equivalent to merging it.
			// Count the pages that actually changed (pointer compares)
			// so the cost model still sees the real data volume.
			for l2 := 0; l2 < tableEntries; l2++ {
				var rp *page
				if rt != nil {
					rp = rt.ptes[l2].pg
				}
				if ct.ptes[l2].pg != rp {
					st.PagesAdopted++
				}
			}
			releaseTable(dt)
			dst.root[l1] = shareTable(ct)
			st.TablesAdopted++
			continue
		}
		for l2 := lo; l2 < hi; l2++ {
			ce := ct.ptes[l2]
			var re pte
			if rt != nil {
				re = rt.ptes[l2]
			}
			if ce.pg == re.pg {
				continue // child did not change this page
			}
			pa := Addr(base) + Addr(l2)<<l2Shift
			mergePage(dst, pa, ce, re, mode, &st, conflict)
		}
	}
	if conflict.Total > 0 {
		return st, conflict
	}
	return st, nil
}

// mergePage merges one child page at address pa into dst.
func mergePage(dst *Space, pa Addr, ce, re pte, mode MergeMode, st *MergeStats, conflict *MergeConflictError) {
	de := dst.entry(pa)
	if de.pg == re.pg {
		// Fast path: the parent has not touched this page since the
		// snapshot (it still shares the snapshot's page), so adopting the
		// child's whole page is byte-for-byte equivalent to copying only
		// the changed bytes.
		l1, l2 := split(pa)
		t := dst.ownTable(l1)
		if old := t.ptes[l2].pg; old != nil {
			old.refs.Add(-1)
		}
		if ce.pg != nil {
			ce.pg.refs.Add(1)
		}
		perm := de.perm
		if !de.mapped() {
			perm = ce.perm
		}
		t.ptes[l2] = pte{pg: ce.pg, perm: perm}
		st.PagesAdopted++
		return
	}

	// Slow path: both sides may have changed; compare byte by byte,
	// eight bytes at a time.
	st.PagesCompared++
	curD, refD, dstD := dataOf(ce.pg), dataOf(re.pg), dataOf(de.pg)
	var wp *page // writable dst page, fetched lazily
	for off := 0; off < PageSize; off += 8 {
		cw := binary.LittleEndian.Uint64(curD[off:])
		rw := binary.LittleEndian.Uint64(refD[off:])
		if cw == rw {
			continue
		}
		dw := binary.LittleEndian.Uint64(dstD[off:])
		for b := 0; b < 8; b++ {
			sh := 8 * b
			cb, rb := byte(cw>>sh), byte(rw>>sh)
			if cb == rb {
				continue
			}
			if byte(dw>>sh) != rb && mode == MergeStrict {
				// Parent changed this byte too: write/write conflict.
				if len(conflict.Addrs) < maxReportedConflicts {
					conflict.Addrs = append(conflict.Addrs, pa+Addr(off+b))
				}
				conflict.Total++
				continue
			}
			if wp == nil {
				wp = dst.writablePage(pa)
			}
			wp.data[off+b] = cb
			st.BytesMerged++
		}
	}
}

// CopyAllFrom replaces the entire contents of s with a COW clone of src,
// releasing whatever s held before. It is the bulk path behind fork-style
// "copy the parent's whole memory into the child" Put calls: whole
// level-2 tables are shared, so the cost is O(mapped space / 4 MiB).
func (s *Space) CopyAllFrom(src *Space) CopyStats {
	var st CopyStats
	for l1 := range s.root {
		srcT := src.root[l1]
		dstT := s.root[l1]
		if srcT == dstT {
			continue
		}
		releaseTable(dstT)
		s.root[l1] = shareTable(srcT)
		if srcT != nil {
			st.TablesShared++
		}
	}
	return st
}
