package vm

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/castore"
)

// chunkRoundTrip asserts the core transcoding property: unchunking a
// chunked image reproduces the flat bytes exactly.
func chunkRoundTrip(t *testing.T, store castore.BlobStore, flat []byte, parent castore.Key) castore.Key {
	t.Helper()
	root, err := ChunkForest(store, flat, parent)
	if err != nil {
		t.Fatalf("ChunkForest: %v", err)
	}
	back, err := UnchunkForest(store, root)
	if err != nil {
		t.Fatalf("UnchunkForest: %v", err)
	}
	if !bytes.Equal(back, flat) {
		t.Fatalf("unchunked image differs from flat: %d bytes vs %d", len(back), len(flat))
	}
	return root
}

func TestChunkRoundTripFull(t *testing.T) {
	cur, snap := buildPair(t)
	flat := encodePair(cur, snap)
	store := castore.NewMemStore()
	root := chunkRoundTrip(t, store, flat, castore.Key{})

	// Chunking is a transcoding: the reassembled bytes must decode with
	// the ordinary flat decoder into working spaces.
	back, err := UnchunkForest(store, root)
	if err != nil {
		t.Fatal(err)
	}
	spaces, err := DecodeForest(back)
	if err != nil {
		t.Fatalf("DecodeForest of unchunked image: %v", err)
	}
	if len(spaces) != 2 {
		t.Fatalf("decoded %d spaces, want 2", len(spaces))
	}
	if got := readBack(t, spaces[0], 16); got[4] != readBack(t, cur, 16)[4] {
		t.Fatal("restored content differs")
	}

	// A full root is self-contained: no parent node ref.
	node, err := castore.GetNode(store, root)
	if err != nil {
		t.Fatal(err)
	}
	if len(node.NodeRefs) != 0 {
		t.Fatalf("full root has %d node refs, want 0", len(node.NodeRefs))
	}
}

func TestChunkRoundTripEmptyForest(t *testing.T) {
	e := NewForestEncoder()
	e.Add(NewSpace())
	flat := e.Encode()
	chunkRoundTrip(t, castore.NewMemStore(), flat, castore.Key{})
}

func TestChunkDeltaStoresOnlyDirtyPages(t *testing.T) {
	s := NewSpace()
	const pages = 64
	if err := s.SetPerm(0, pages*PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pages; i++ {
		if err := s.WriteU64(Addr(i*PageSize), uint64(i)+1); err != nil {
			t.Fatal(err)
		}
	}
	enc := func() []byte {
		e := NewForestEncoder()
		e.Add(s)
		return e.Encode()
	}
	store := castore.NewMemStore()
	root1 := chunkRoundTrip(t, store, enc(), castore.Key{})
	before, err := store.Stats()
	if err != nil {
		t.Fatal(err)
	}

	// Touch two pages, chunk again against the first root.
	for _, pg := range []int{11, 40} {
		if err := s.WriteU64(Addr(pg*PageSize)+16, 0xc0ffee+uint64(pg)); err != nil {
			t.Fatal(err)
		}
	}
	root2 := chunkRoundTrip(t, store, enc(), root1)
	after, err := store.Stats()
	if err != nil {
		t.Fatal(err)
	}

	// O(k): the second image adds the 2 dirty pages plus one root node.
	if grew := after.Chunks - before.Chunks; grew != 3 {
		t.Fatalf("second checkpoint added %d chunks, want 3 (2 pages + root)", grew)
	}
	node, err := castore.GetNode(store, root2)
	if err != nil {
		t.Fatal(err)
	}
	if len(node.NodeRefs) != 1 || node.NodeRefs[0] != root1 {
		t.Fatalf("delta root node refs = %v, want parent %s", node.NodeRefs, root1)
	}
	if len(node.LeafRefs) != 2 {
		t.Fatalf("delta root carries %d literal refs, want 2", len(node.LeafRefs))
	}
}

func TestChunkDeltaChainFallsBackToFullRoot(t *testing.T) {
	s := NewSpace()
	if err := s.SetPerm(0, 8*PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	store := castore.NewMemStore()
	var parent castore.Key
	sawFull := 0
	for i := 0; i < maxChainDepth+4; i++ {
		if err := s.WriteU64(Addr((i%8)*PageSize), uint64(i)+1); err != nil {
			t.Fatal(err)
		}
		e := NewForestEncoder()
		e.Add(s)
		root := chunkRoundTrip(t, store, e.Encode(), parent)
		node, err := castore.GetNode(store, root)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && len(node.NodeRefs) == 0 {
			sawFull++
		}
		parent = root
	}
	if sawFull == 0 {
		t.Fatalf("chain of %d checkpoints never fell back to a full root", maxChainDepth+4)
	}
}

func TestUnchunkRejectsDamage(t *testing.T) {
	cur, snap := buildPair(t)
	flat := encodePair(cur, snap)

	// Missing root key.
	if _, err := UnchunkForest(castore.NewMemStore(), castore.KeyOf([]byte("nope"))); !errors.As(err, new(*castore.ChunkMissingError)) {
		t.Fatalf("missing root: %v, want ChunkMissingError", err)
	}

	// Deleting any leaf chunk must surface as ChunkMissingError.
	store := castore.NewMemStore()
	root, err := ChunkForest(store, flat, castore.Key{})
	if err != nil {
		t.Fatal(err)
	}
	node, err := castore.GetNode(store, root)
	if err != nil {
		t.Fatal(err)
	}
	for _, victim := range []castore.Key{node.LeafRefs[0], node.LeafRefs[len(node.LeafRefs)-1]} {
		saved, err := store.Get(victim)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Delete(victim); err != nil {
			t.Fatal(err)
		}
		if _, err := UnchunkForest(store, root); !errors.As(err, new(*castore.ChunkMissingError)) {
			t.Fatalf("deleted chunk: %v, want ChunkMissingError", err)
		}
		if err := store.Put(victim, saved); err != nil {
			t.Fatal(err)
		}
	}

	// Corrupting a chunk's stored bytes must surface as ChunkHashError.
	store.Corrupt(node.LeafRefs[0], []byte{'R', 1, 2, 3})
	if _, err := UnchunkForest(store, root); !errors.As(err, new(*castore.ChunkHashError)) {
		t.Fatalf("corrupt chunk: %v, want ChunkHashError", err)
	}
}

func TestUnchunkRejectsMismatchedChunkShapes(t *testing.T) {
	// A structurally valid root whose refs point at chunks of the wrong
	// shape (a table chunk where a page belongs) must fail typed, not
	// produce a garbage image.
	store := castore.NewMemStore()
	small := []byte{1, 0, 5, 0, 3} // valid table chunk: n=1, l2=5, perm=3
	smallKey := castore.KeyOf(small)
	if err := store.Put(smallKey, small); err != nil {
		t.Fatal(err)
	}
	var payload []byte
	payload = append(payload, chunkRootVersion)
	payload = append(payload, 0, 0, 0, 0) // depth
	payload = append(payload, 0)          // no parent
	payload = append(payload, 1, 0, 0, 0) // nPages = 1
	payload = append(payload, 1, 0, 0, 0) // one page op
	payload = append(payload, 0)          // literal
	payload = append(payload, 0, 0, 0, 0) // leaf start 0
	payload = append(payload, 1, 0, 0, 0) // count 1
	payload = append(payload, 0, 0, 0, 0) // nTables = 0
	payload = append(payload, 0, 0, 0, 0) // no table ops
	payload = append(payload, 0, 0, 0, 0) // tail len 0
	root, err := castore.PutNode(store, nil, []castore.Key{smallKey}, payload)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnchunkForest(store, root); !errors.As(err, new(*ImageFormatError)) {
		t.Fatalf("wrong-size page chunk: %v, want ImageFormatError", err)
	}

	// A truncated root payload is a format error too.
	root2, err := castore.PutNode(store, nil, nil, payload[:7])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnchunkForest(store, root2); !errors.As(err, new(*ImageFormatError)) {
		t.Fatalf("truncated root payload: %v, want ImageFormatError", err)
	}
}

func TestChunkSiblingImagesShareChunks(t *testing.T) {
	// Two forests diverged slightly from a common ancestor share most
	// chunks in one store, even with independent (parentless) roots.
	base := NewSpace()
	const pages = 64
	if err := base.SetPerm(0, pages*PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pages; i++ {
		if err := base.WriteU64(Addr(i*PageSize), uint64(i)+1); err != nil {
			t.Fatal(err)
		}
	}
	left, _ := base.Snapshot()
	right, _ := base.Snapshot()
	if err := left.WriteU64(3*PageSize, 0x1111); err != nil {
		t.Fatal(err)
	}
	if err := right.WriteU64(9*PageSize, 0x2222); err != nil {
		t.Fatal(err)
	}

	store := castore.NewMemStore()
	encOne := func(s *Space) []byte {
		e := NewForestEncoder()
		e.Add(s)
		return e.Encode()
	}
	chunkRoundTrip(t, store, encOne(left), castore.Key{})
	mid, err := store.Stats()
	if err != nil {
		t.Fatal(err)
	}
	chunkRoundTrip(t, store, encOne(right), castore.Key{})
	end, err := store.Stats()
	if err != nil {
		t.Fatal(err)
	}
	added := end.Chunks - mid.Chunks
	// Right's image shares all but its one diverged page with left's:
	// one new page chunk plus one new root.
	if added > 3 {
		t.Fatalf("sibling image added %d chunks to a %d-chunk store", added, mid.Chunks)
	}
}
