package vm

import (
	"math/bits"
	"sync/atomic"
)

// Dirty-page tracking.
//
// Every mutation of a space's contents — COW breaks in writablePage, Zero,
// SetPerm, CopyFrom, CopyAllFrom, and the destination side of Merge — sets a
// bit in a per-space, per-table bitmap. Snapshot clears the bitmaps and
// stamps the (space, snapshot) pair with a fresh identity token, so the
// marks in a space describe exactly the ptes that may have diverged since
// its most recent snapshot. Merge consults the marks when (and only when)
// it can prove they are trustworthy for the reference snapshot it was
// given — see dirtyGuided — turning the per-table pte scan from O(mapped)
// into O(dirtied). The marks are a conservative superset of the ptes that
// actually changed: a clean pte is never marked dirty by accident of
// omission, so guided and unguided walks always reach the same pages and
// produce identical merge results; the bitmap only narrows iteration.
//
// The bitmaps are owned by the space exactly as its page tables are: they
// are written by the owning goroutine, or by parallel merge workers that
// each own a disjoint set of level-1 slots (see mergeTables).

// dirtyWords is the length of one table's dirty bitmap: one bit per pte.
const dirtyWords = tableEntries / 64

// dirtyBits marks the possibly-modified ptes of one level-2 table.
type dirtyBits [dirtyWords]uint64

// snapshotIDs issues globally unique snapshot identity tokens. The counter
// is only ever compared for equality, so it has no effect on deterministic
// results; it exists to let Merge recognize "ref is the snapshot this
// space's dirty marks have accumulated against". The tokens are never
// serialized: image encoding rebuilds snapshot identity from the
// space/snapshot link structure, so the process-global counter value can
// never reach result bytes.
//
//detlint:allow globalmut identity tokens compared only for equality, never ordered or serialized
var snapshotIDs atomic.Uint64

// dirtyTable returns the (lazily allocated) bitmap for level-1 index l1.
func (s *Space) dirtyTable(l1 int) *dirtyBits {
	b := s.dirty[l1]
	if b == nil {
		b = new(dirtyBits)
		s.dirty[l1] = b
	}
	return b
}

// markDirty records a possible modification of the pte covering a.
func (s *Space) markDirty(a Addr) {
	l1, l2 := split(a)
	s.dirtyTable(l1)[l2>>6] |= 1 << (uint(l2) & 63)
}

// markTableDirty records a possible modification of every pte of table l1
// (bulk operations that swap in a whole table).
func (s *Space) markTableDirty(l1 int) {
	b := s.dirtyTable(l1)
	for i := range b {
		b[i] = ^uint64(0)
	}
}

// markAllDirty abandons precise tracking until the next Snapshot: every
// pte of the space may have changed (CopyAllFrom and other whole-space
// replacements).
func (s *Space) markAllDirty() { s.dirtyAll = true }

// clearDirty resets tracking to "nothing modified" — called by Snapshot,
// which is the moment the space and its reference copy are identical.
func (s *Space) clearDirty() {
	clear(s.dirty[:])
	s.dirtyAll = false
}

// anyDirty reports whether any modification has been recorded since the
// dirty state was last cleared.
func (s *Space) anyDirty() bool {
	if s.dirtyAll {
		return true
	}
	for _, b := range s.dirty {
		if b != nil {
			return true
		}
	}
	return false
}

// dirtyGuided reports whether cur's dirty marks can steer a merge against
// ref. This requires proof that the marks describe divergence from exactly
// this reference copy:
//
//   - ref must be the snapshot from cur's most recent Snapshot call (the
//     identity token matches), so the marks started accumulating at the
//     instant cur and ref were identical;
//   - cur must not have lost precision (markAllDirty);
//   - ref itself must be unmodified since it was taken — a mutated
//     reference diverges without cur's marks knowing.
//
// When the proof fails, Merge falls back to the full pte scan, which is
// always correct.
func dirtyGuided(cur, ref *Space) bool {
	return cur.snapID != 0 && ref.snapOf == cur.snapID &&
		!cur.dirtyAll && !ref.anyDirty()
}

// forEachSetBit calls visit for every set bit in b whose index lies in
// [lo, hi), in ascending order.
func (b *dirtyBits) forEachSetBit(lo, hi int, visit func(l2 int)) {
	for w := lo >> 6; w<<6 < hi; w++ {
		word := b[w]
		if word == 0 {
			continue
		}
		base := w << 6
		// Mask off bits outside [lo, hi).
		if base < lo {
			word &= ^uint64(0) << (uint(lo) & 63)
		}
		if base+64 > hi {
			word &= ^uint64(0) >> (64 - (uint(hi) - uint(base)))
		}
		for word != 0 {
			l2 := base + bits.TrailingZeros64(word)
			word &= word - 1
			visit(l2)
		}
	}
}
