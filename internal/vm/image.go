package vm

// Checkpoint image encoding: a versioned, canonical serialization of a
// *forest* of spaces — typically every space's pagemap plus its merge
// snapshot for a whole kernel space tree.
//
// Spaces in this system are not independent byte arrays: pages and whole
// level-2 tables are shared copy-on-write between a space and its
// snapshot, between parent and child replicas, and across barrier
// generations. That sharing is semantically load-bearing — Merge selects
// pages by identity, Resnap re-shares only diverged tables, CopyFrom
// skips tables already pointer-shared, and the kernel's virtual-time
// cost model charges exactly the sharing that must be (re)established.
// A serialization that materialized each space independently would
// restore the same bytes but a different identity graph, and a resumed
// run would charge different virtual times than the uninterrupted one.
//
// The encoder therefore serializes the object graph itself: every
// distinct page and table is emitted once, in the deterministic order of
// first encounter along a canonical walk (spaces in Add order, level-1
// slots ascending, level-2 entries ascending), and spaces reference them
// by index. A space and its snapshot are thus automatically
// delta-encoded: everything unchanged since the snapshot is one shared
// table or page reference, and only diverged content carries payload.
// Dirty bitmaps and the (space, snapshot) identity links are part of the
// image, so dirty-guided merges, CleanSince proofs and incremental
// Resnap behave identically after a restore — including the virtual
// times they charge.
//
// The encoding is canonical: identical forest state produces identical
// bytes, which is what makes golden-file format tests meaningful. The
// payload is guarded by a version byte (decoders reject newer versions
// with a typed error) and a CRC32 trailer (corruption and truncation are
// detected, also with typed errors).

import (
	"encoding/binary"
	"fmt"

	"repro/internal/imgenc"
)

// ImageVersion is the current forest-image format version. Decoders
// accept exactly the versions they know how to parse and reject anything
// newer with *ImageVersionError.
const ImageVersion = 1

// imageMagic introduces a forest image.
const imageMagic = "DVMF"

// ImageFormatError reports a structurally invalid, truncated or
// corrupted forest image.
type ImageFormatError struct {
	Offset int    // byte offset where decoding failed (best effort)
	Msg    string // what was wrong
}

func (e *ImageFormatError) Error() string {
	return fmt.Sprintf("vm: bad image at byte %d: %s", e.Offset, e.Msg)
}

// ImageVersionError reports an image written by a format version this
// decoder does not understand.
type ImageVersionError struct {
	Version byte // version found in the image
	Max     byte // newest version this decoder accepts
}

func (e *ImageVersionError) Error() string {
	return fmt.Sprintf("vm: image version %d not supported (max %d)", e.Version, e.Max)
}

// ForestEncoder serializes a set of spaces preserving their full COW
// sharing graph. Add every space first, then record snapshot links, then
// Encode. The encoder only reads the spaces; they remain usable.
type ForestEncoder struct {
	spaces   []*Space
	spaceIdx map[*Space]int
	links    [][2]int // (cur, ref) pairs whose snapshot identity must survive
}

// NewForestEncoder returns an empty encoder.
func NewForestEncoder() *ForestEncoder {
	return &ForestEncoder{spaceIdx: make(map[*Space]int)}
}

// Add registers a space for encoding and returns its index in the image.
// Adding the same space twice returns the same index.
func (e *ForestEncoder) Add(s *Space) int {
	if i, ok := e.spaceIdx[s]; ok {
		return i
	}
	i := len(e.spaces)
	e.spaces = append(e.spaces, s)
	e.spaceIdx[s] = i
	return i
}

// LinkSnapshot records that ref is cur's current snapshot (their
// identity tokens match), so the decoder re-establishes the relationship
// with a fresh token pair. Calls for pairs whose tokens do not match are
// ignored — the relationship did not hold, so none is restored.
func (e *ForestEncoder) LinkSnapshot(cur, ref *Space) {
	if cur == nil || ref == nil || cur.snapID == 0 || ref.snapOf != cur.snapID {
		return
	}
	ci, ok1 := e.spaceIdx[cur]
	ri, ok2 := e.spaceIdx[ref]
	if ok1 && ok2 {
		e.links = append(e.links, [2]int{ci, ri})
	}
}

// Encode serializes the registered forest.
func (e *ForestEncoder) Encode() []byte {
	// Pass 1: assign page and table ids in canonical first-encounter order.
	tableIdx := make(map[*table]int)
	pageIdx := make(map[*page]int)
	var tables []*table
	var pages []*page
	for _, s := range e.spaces {
		for _, t := range s.root {
			if t == nil {
				continue
			}
			if _, ok := tableIdx[t]; ok {
				continue
			}
			tableIdx[t] = len(tables)
			tables = append(tables, t)
			for l2 := range t.ptes {
				pg := t.ptes[l2].pg
				if pg == nil {
					continue
				}
				if _, ok := pageIdx[pg]; !ok {
					pageIdx[pg] = len(pages)
					pages = append(pages, pg)
				}
			}
		}
	}

	// Pass 2: emit.
	var b []byte
	b = append(b, imageMagic...)
	b = append(b, ImageVersion)

	b = binary.LittleEndian.AppendUint32(b, uint32(len(pages)))
	for _, pg := range pages {
		b = append(b, pg.data[:]...)
	}

	b = binary.LittleEndian.AppendUint32(b, uint32(len(tables)))
	for _, t := range tables {
		n := 0
		for l2 := range t.ptes {
			if t.ptes[l2].mapped() {
				n++
			}
		}
		b = binary.LittleEndian.AppendUint16(b, uint16(n))
		for l2 := range t.ptes {
			pe := t.ptes[l2]
			if !pe.mapped() {
				continue
			}
			b = binary.LittleEndian.AppendUint16(b, uint16(l2))
			b = append(b, byte(pe.perm))
			if pe.pg == nil {
				b = binary.LittleEndian.AppendUint32(b, 0)
			} else {
				b = binary.LittleEndian.AppendUint32(b, uint32(pageIdx[pe.pg]+1))
			}
		}
	}

	b = binary.LittleEndian.AppendUint32(b, uint32(len(e.spaces)))
	for _, s := range e.spaces {
		var flags byte
		if s.dirtyAll {
			flags |= 1
		}
		b = append(b, flags)
		n := 0
		for _, t := range s.root {
			if t != nil {
				n++
			}
		}
		b = binary.LittleEndian.AppendUint16(b, uint16(n))
		for l1, t := range s.root {
			if t == nil {
				continue
			}
			b = binary.LittleEndian.AppendUint16(b, uint16(l1))
			b = binary.LittleEndian.AppendUint32(b, uint32(tableIdx[t]+1))
		}
		n = 0
		for _, db := range s.dirty {
			if db != nil {
				n++
			}
		}
		b = binary.LittleEndian.AppendUint16(b, uint16(n))
		for l1, db := range s.dirty {
			if db == nil {
				continue
			}
			b = binary.LittleEndian.AppendUint16(b, uint16(l1))
			for _, w := range db {
				b = binary.LittleEndian.AppendUint64(b, w)
			}
		}
	}

	b = binary.LittleEndian.AppendUint32(b, uint32(len(e.links)))
	for _, l := range e.links {
		b = binary.LittleEndian.AppendUint32(b, uint32(l[0]))
		b = binary.LittleEndian.AppendUint32(b, uint32(l[1]))
	}

	return imgenc.Seal(b)
}

// DecodeForest reconstructs the spaces of a forest image, restoring the
// exact page/table sharing graph, dirty bitmaps, and snapshot identity
// links (with freshly issued tokens). Corrupt or truncated input returns
// *ImageFormatError; input from a newer format returns
// *ImageVersionError.
func DecodeForest(data []byte) ([]*Space, error) {
	r, err := imgenc.Open(data, imageMagic, ImageVersion,
		func(off int, msg string) error { return &ImageFormatError{Offset: off, Msg: msg} },
		func(v byte) error { return &ImageVersionError{Version: v, Max: ImageVersion} })
	if err != nil {
		return nil, err
	}

	nPages := int(r.U32())
	if r.Err == nil && nPages*PageSize > len(r.B) {
		r.Failf("page count %d exceeds image size", nPages)
	}
	pages := make([]*page, 0, max(nPages, 0))
	for i := 0; i < nPages && r.Err == nil; i++ {
		pg := newPageFrom(r.Take(PageSize))
		pg.refs.Store(0) // references added as ptes adopt the page
		pages = append(pages, pg)
	}

	nTables := int(r.U32())
	if r.Err == nil && nTables*3 > len(r.B) {
		r.Failf("table count %d exceeds image size", nTables)
	}
	tables := make([]*table, 0, max(nTables, 0))
	for i := 0; i < nTables && r.Err == nil; i++ {
		t := newTable()
		t.refs.Store(0)
		n := int(r.U16())
		for j := 0; j < n && r.Err == nil; j++ {
			l2 := int(r.U16())
			perm := Perm(r.U8())
			pid := int(r.U32())
			if r.Err != nil {
				break
			}
			if l2 >= tableEntries {
				r.Failf("pte index %d out of range", l2)
				break
			}
			var pg *page
			if pid != 0 {
				if pid > len(pages) {
					r.Failf("page id %d out of range (%d pages)", pid, len(pages))
					break
				}
				pg = pages[pid-1]
				pg.refs.Add(1)
			}
			t.ptes[l2] = pte{pg: pg, perm: perm}
		}
		tables = append(tables, t)
	}

	nSpaces := int(r.U32())
	if r.Err == nil && nSpaces > len(r.B) {
		r.Failf("space count %d exceeds image size", nSpaces)
	}
	spaces := make([]*Space, 0, max(nSpaces, 0))
	for i := 0; i < nSpaces && r.Err == nil; i++ {
		s := NewSpace()
		s.dirtyAll = r.U8()&1 != 0
		n := int(r.U16())
		for j := 0; j < n && r.Err == nil; j++ {
			l1 := int(r.U16())
			tid := int(r.U32())
			if r.Err != nil {
				break
			}
			if l1 >= tableEntries || tid == 0 || tid > len(tables) {
				r.Failf("root slot %d -> table %d out of range", l1, tid)
				break
			}
			s.root[l1] = tables[tid-1]
			tables[tid-1].refs.Add(1)
		}
		n = int(r.U16())
		for j := 0; j < n && r.Err == nil; j++ {
			l1 := int(r.U16())
			if r.Err != nil {
				break
			}
			if l1 >= tableEntries {
				r.Failf("dirty slot %d out of range", l1)
				break
			}
			db := new(dirtyBits)
			for w := range db {
				db[w] = r.U64()
			}
			s.dirty[l1] = db
		}
		spaces = append(spaces, s)
	}

	nLinks := int(r.U32())
	if r.Err == nil && nLinks*8 > len(r.B) {
		r.Failf("link count %d exceeds image size", nLinks)
	}
	for i := 0; i < nLinks && r.Err == nil; i++ {
		ci := int(r.U32())
		ri := int(r.U32())
		if r.Err != nil {
			break
		}
		if ci >= len(spaces) || ri >= len(spaces) {
			r.Failf("snapshot link %d -> %d out of range", ci, ri)
			break
		}
		id := snapshotIDs.Add(1)
		spaces[ci].snapID = id
		spaces[ri].snapOf = id
	}
	if r.Err == nil && r.Remaining() != 0 {
		r.Failf("%d trailing bytes", r.Remaining())
	}
	if r.Err != nil {
		return nil, r.Err
	}
	// Every restored object needs at least one reference for the Free
	// accounting to balance; unreferenced pages/tables (possible only in
	// hand-built images) are simply dropped.
	for _, t := range tables {
		if t.refs.Load() == 0 {
			t.refs.Store(1)
			releaseTable(t)
		}
	}
	return spaces, nil
}
