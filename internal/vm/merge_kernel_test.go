package vm

import (
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
)

// Oracle property test for the word-masked merge kernel: mergePageWords
// must reproduce mergePageBytes — the per-byte reference kernel kept
// behind MergeConfig.ByteKernel — bit for bit: destination bytes, every
// MergeStats field, the conflict address list (order included), and the
// Touched table bits, in both conflict modes and at Workers 1 and
// GOMAXPROCS. Scenarios deliberately plant overlapping writes that
// straddle 8-byte word boundaries (where the masked conflict test and the
// per-byte fallback meet) and page edges (where a page's word walk ends),
// plus a fully-rewritten compared page (maximal full-word runs for the
// copy() coalescing path).

// plantStraddles appends child/parent writes that overlap across an
// 8-byte word boundary inside a page, across a page edge, and over one
// fully-rewritten page the parent also touched (so it is byte-compared,
// not adopted).
func plantStraddles(rng *rand.Rand, childOps, parentOps []memOp) (c, p []memOp) {
	pages := propSpan / PageSize
	// Word-boundary straddle: child [base+5, base+11) vs parent
	// [base+6, base+13) — the overlap crosses the boundary at base+8.
	base := Addr(rng.Intn(pages))*PageSize + Addr(8*(1+rng.Intn(400)))
	childOps = append(childOps, memOp{addr: base + 5, data: randBytes(rng, 6)})
	parentOps = append(parentOps, memOp{addr: base + 6, data: randBytes(rng, 7)})
	// Page-edge straddle: overlapping writes crossing a page boundary.
	edge := Addr(1+rng.Intn(pages-1)) * PageSize
	childOps = append(childOps, memOp{addr: edge - 4, data: randBytes(rng, 9)})
	parentOps = append(parentOps, memOp{addr: edge - 2, data: randBytes(rng, 5)})
	// Fully-rewritten page, kept off the adoption fast path by a one-byte
	// parent write.
	full := Addr(rng.Intn(pages)) * PageSize
	childOps = append(childOps, memOp{addr: full, data: randBytes(rng, PageSize)})
	parentOps = append(parentOps, memOp{addr: full + Addr(rng.Intn(PageSize)), data: randBytes(rng, 1)})
	return childOps, parentOps
}

func TestMergeKernelsEquivalentProperty(t *testing.T) {
	workersList := []int{1, runtime.GOMAXPROCS(0)}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		parent := NewSpace()
		if err := parent.SetPerm(0, propSpan, PermRW); err != nil {
			t.Fatal(err)
		}
		applyOps(t, parent, randOps(rng, 8, propSpan))
		childOps, parentOps := plantStraddles(rng,
			randOps(rng, 8, propSpan), randOps(rng, 4, propSpan))

		for _, mode := range []MergeMode{MergeStrict, MergeLastWriter} {
			var oracleTouched TableBits
			oracle := runMerge(t, parent, childOps, parentOps, 0, propSpan,
				MergeConfig{Mode: mode, ByteKernel: true, Touched: &oracleTouched})
			for _, workers := range workersList {
				var touched TableBits
				got := runMerge(t, parent, childOps, parentOps, 0, propSpan,
					MergeConfig{Mode: mode, Workers: workers, Touched: &touched})
				if diff := outcomesEqual(oracle, got, false); diff != "" {
					t.Errorf("seed %d mode %v workers %d: word kernel differs from byte oracle: %s",
						seed, mode, workers, diff)
					return false
				}
				if touched != oracleTouched {
					t.Errorf("seed %d mode %v workers %d: touched tables differ: %d vs oracle %d",
						seed, mode, workers, touched.Count(), oracleTouched.Count())
					return false
				}
			}
		}
		parent.Free()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestMergeKernelStraddledConflicts pins the boundary cases directly: a
// fixed scenario whose strict-mode conflict list contains adjacent
// conflicting bytes on both sides of an 8-byte word boundary and on both
// sides of a page edge, and every kernel/worker combination must agree
// on that list exactly.
func TestMergeKernelStraddledConflicts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	parent := NewSpace()
	if err := parent.SetPerm(0, propSpan, PermRW); err != nil {
		t.Fatal(err)
	}
	applyOps(t, parent, randOps(rng, 4, propSpan))
	wordBase := Addr(3*PageSize + 64)
	edge := Addr(5 * PageSize)
	// Overlaps are kept small enough that both straddles land inside the
	// maxReportedConflicts-entry address list.
	childOps := []memOp{
		{addr: wordBase + 7, data: randBytes(rng, 2)}, // crosses word boundary at +8
		{addr: edge - 4, data: randBytes(rng, 9)},     // crosses the page edge
	}
	parentOps := []memOp{
		{addr: wordBase + 7, data: randBytes(rng, 2)},
		{addr: edge - 4, data: randBytes(rng, 9)},
	}

	oracle := runMerge(t, parent, childOps, parentOps, 0, propSpan,
		MergeConfig{Mode: MergeStrict, ByteKernel: true})
	if oracle.total == 0 {
		t.Fatalf("constructed scenario produced no conflicts: %+v", oracle.st)
	}
	straddlesWord, straddlesEdge := false, false
	for i := 1; i < len(oracle.addrs); i++ {
		a, b := oracle.addrs[i-1], oracle.addrs[i]
		if a+1 == b && b%8 == 0 {
			if b%PageSize == 0 {
				straddlesEdge = true
			} else {
				straddlesWord = true
			}
		}
	}
	if !straddlesWord || !straddlesEdge {
		t.Fatalf("conflict list %v does not straddle a word boundary (%v) and a page edge (%v)",
			oracle.addrs, straddlesWord, straddlesEdge)
	}
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		got := runMerge(t, parent, childOps, parentOps, 0, propSpan,
			MergeConfig{Mode: MergeStrict, Workers: workers})
		if diff := outcomesEqual(oracle, got, false); diff != "" {
			t.Errorf("workers %d: word kernel differs from byte oracle: %s", workers, diff)
		}
	}
}
