package vm

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustSetPerm(t *testing.T, s *Space, addr Addr, size uint64, perm Perm) {
	t.Helper()
	if err := s.SetPerm(addr, size, perm); err != nil {
		t.Fatalf("SetPerm(%#x, %#x): %v", addr, size, err)
	}
}

func TestReadUnmappedFaults(t *testing.T) {
	s := NewSpace()
	var b [1]byte
	err := s.Read(0x1000, b[:])
	var ae *AccessError
	if !errors.As(err, &ae) {
		t.Fatalf("Read of unmapped page: got %v, want AccessError", err)
	}
	if ae.Write || ae.Addr != 0x1000 {
		t.Errorf("AccessError = %+v, want read fault at 0x1000", ae)
	}
}

func TestWriteNeedsPermW(t *testing.T) {
	s := NewSpace()
	mustSetPerm(t, s, 0, PageSize, PermR)
	err := s.Write(0, []byte{1})
	var ae *AccessError
	if !errors.As(err, &ae) || !ae.Write {
		t.Fatalf("Write to read-only page: got %v, want write AccessError", err)
	}
	mustSetPerm(t, s, 0, PageSize, PermRW)
	if err := s.Write(0, []byte{1}); err != nil {
		t.Fatalf("Write after granting PermW: %v", err)
	}
}

func TestLazyZeroReadsAsZero(t *testing.T) {
	s := NewSpace()
	mustSetPerm(t, s, 0, 2*PageSize, PermRW)
	got := make([]byte, 100)
	for i := range got {
		got[i] = 0xff
	}
	if err := s.Read(PageSize-50, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 100)) {
		t.Error("lazy-zero pages did not read as zeros")
	}
}

func TestReadWriteRoundTripAcrossPages(t *testing.T) {
	s := NewSpace()
	mustSetPerm(t, s, 0, 4*PageSize, PermRW)
	data := make([]byte, 3*PageSize)
	rng := rand.New(rand.NewSource(1))
	rng.Read(data)
	if err := s.Write(100, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := s.Read(100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("read-back mismatch across page boundaries")
	}
}

func TestTypedAccessors(t *testing.T) {
	s := NewSpace()
	mustSetPerm(t, s, 0, PageSize, PermRW)
	if err := s.WriteU32(0, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.ReadU32(0); v != 0xdeadbeef {
		t.Errorf("ReadU32 = %#x", v)
	}
	if err := s.WriteU64(8, 0x0123456789abcdef); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.ReadU64(8); v != 0x0123456789abcdef {
		t.Errorf("ReadU64 = %#x", v)
	}
	if err := s.WriteF64(16, 3.25); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.ReadF64(16); v != 3.25 {
		t.Errorf("ReadF64 = %v", v)
	}
	want32 := []uint32{1, 2, 3, 4, 5}
	if err := s.WriteU32s(64, want32); err != nil {
		t.Fatal(err)
	}
	got32 := make([]uint32, 5)
	if err := s.ReadU32s(64, got32); err != nil {
		t.Fatal(err)
	}
	for i := range want32 {
		if got32[i] != want32[i] {
			t.Fatalf("ReadU32s[%d] = %d, want %d", i, got32[i], want32[i])
		}
	}
	wantF := []float64{1.5, -2.25, 1e300}
	if err := s.WriteF64s(128, wantF); err != nil {
		t.Fatal(err)
	}
	gotF := make([]float64, 3)
	if err := s.ReadF64s(128, gotF); err != nil {
		t.Fatal(err)
	}
	for i := range wantF {
		if gotF[i] != wantF[i] {
			t.Fatalf("ReadF64s[%d] = %v, want %v", i, gotF[i], wantF[i])
		}
	}
}

func TestCopyFromSharesThenCOW(t *testing.T) {
	src := NewSpace()
	mustSetPerm(t, src, 0, PageSize, PermRW)
	if err := src.Write(0, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	dst := NewSpace()
	st, err := dst.CopyFrom(src, 0, 0, PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if st.PagesShared != 1 {
		t.Errorf("PagesShared = %d, want 1", st.PagesShared)
	}
	// Same physical page until a write occurs.
	if src.entry(0).pg != dst.entry(0).pg {
		t.Error("CopyFrom did not share the page")
	}
	if err := dst.Write(0, []byte("WORLD")); err != nil {
		t.Fatal(err)
	}
	if src.entry(0).pg == dst.entry(0).pg {
		t.Error("write did not break COW sharing")
	}
	var b [5]byte
	if err := src.Read(0, b[:]); err != nil {
		t.Fatal(err)
	}
	if string(b[:]) != "hello" {
		t.Errorf("source corrupted by COW write: %q", b[:])
	}
}

func TestCopyFromBulkAlignedMatchesPerPage(t *testing.T) {
	const span = uint64(tableEntries * PageSize) // one full level-2 table
	src := NewSpace()
	mustSetPerm(t, src, 0, span, PermRW)
	data := make([]byte, 8*PageSize)
	rand.New(rand.NewSource(2)).Read(data)
	if err := src.Write(3*PageSize, data); err != nil {
		t.Fatal(err)
	}

	bulk := NewSpace()
	if _, err := bulk.CopyFrom(src, 0, 0, span); err != nil {
		t.Fatal(err)
	}
	perPage := NewSpace()
	if _, err := perPage.CopyFrom(src, 0, PageSize, span-PageSize); err != nil {
		t.Fatal(err) // unaligned dst forces the per-page path
	}

	got := make([]byte, len(data))
	if err := bulk.Read(3*PageSize, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("bulk copy content mismatch")
	}
	if err := perPage.Read(3*PageSize+PageSize, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("per-page copy content mismatch")
	}
}

func TestZeroDropsContent(t *testing.T) {
	s := NewSpace()
	mustSetPerm(t, s, 0, PageSize, PermRW)
	if err := s.Write(0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Zero(0, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	var b [3]byte
	if err := s.Read(0, b[:]); err != nil {
		t.Fatal(err)
	}
	if b != [3]byte{} {
		t.Errorf("Zero left data behind: %v", b)
	}
}

func TestRangeValidation(t *testing.T) {
	s := NewSpace()
	if err := s.SetPerm(1, PageSize, PermR); err == nil {
		t.Error("unaligned addr accepted")
	}
	if err := s.SetPerm(0, PageSize+1, PermR); err == nil {
		t.Error("unaligned size accepted")
	}
	if err := s.SetPerm(0xfffff000, 2*PageSize, PermR); err == nil {
		t.Error("range past end of address space accepted")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	s := NewSpace()
	mustSetPerm(t, s, 0, PageSize, PermRW)
	if err := s.Write(0, []byte("before")); err != nil {
		t.Fatal(err)
	}
	snap, _ := s.Snapshot()
	if err := s.Write(0, []byte("after!")); err != nil {
		t.Fatal(err)
	}
	var b [6]byte
	if err := snap.Read(0, b[:]); err != nil {
		t.Fatal(err)
	}
	if string(b[:]) != "before" {
		t.Errorf("snapshot saw later write: %q", b[:])
	}
}

// --- Merge semantics -------------------------------------------------------

// forkPair builds the canonical fork setup: parent with given contents,
// child as a COW copy of parent, snapshot of the child.
func forkPair(t *testing.T, contents []byte) (parent, child, snap *Space) {
	t.Helper()
	parent = NewSpace()
	mustSetPerm(t, parent, 0, 4*PageSize, PermRW)
	if err := parent.Write(0, contents); err != nil {
		t.Fatal(err)
	}
	child = NewSpace()
	if _, err := child.CopyFrom(parent, 0, 0, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	snap, _ = child.Snapshot()
	return
}

func TestMergeChildOnlyChange(t *testing.T) {
	parent, child, snap := forkPair(t, []byte("aaaaaaaa"))
	if err := child.Write(2, []byte("XY")); err != nil {
		t.Fatal(err)
	}
	st, err := Merge(parent, child, snap, 0, 4*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if st.PagesAdopted != 1 {
		t.Errorf("PagesAdopted = %d, want 1 (parent untouched fast path)", st.PagesAdopted)
	}
	var b [8]byte
	if err := parent.Read(0, b[:]); err != nil {
		t.Fatal(err)
	}
	if string(b[:]) != "aaXYaaaa" {
		t.Errorf("parent after merge = %q", b[:])
	}
}

func TestMergeDisjointChanges(t *testing.T) {
	parent, child, snap := forkPair(t, []byte("aaaaaaaa"))
	if err := child.Write(0, []byte("C")); err != nil {
		t.Fatal(err)
	}
	if err := parent.Write(7, []byte("P")); err != nil {
		t.Fatal(err)
	}
	st, err := Merge(parent, child, snap, 0, 4*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if st.PagesCompared != 1 || st.BytesMerged != 1 {
		t.Errorf("stats = %+v, want 1 page compared, 1 byte merged", st)
	}
	var b [8]byte
	if err := parent.Read(0, b[:]); err != nil {
		t.Fatal(err)
	}
	if string(b[:]) != "Caaaaaa"+"P" {
		t.Errorf("parent after merge = %q, want both sides' writes", b[:])
	}
}

func TestMergeConflictDetected(t *testing.T) {
	parent, child, snap := forkPair(t, []byte("aaaaaaaa"))
	if err := child.Write(3, []byte("C")); err != nil {
		t.Fatal(err)
	}
	if err := parent.Write(3, []byte("P")); err != nil {
		t.Fatal(err)
	}
	_, err := Merge(parent, child, snap, 0, 4*PageSize)
	var mc *MergeConflictError
	if !errors.As(err, &mc) {
		t.Fatalf("Merge = %v, want MergeConflictError", err)
	}
	if mc.Total != 1 || mc.Addrs[0] != 3 {
		t.Errorf("conflict = %+v, want 1 conflict at addr 3", mc)
	}
}

func TestMergeConflictEvenWhenValuesEqual(t *testing.T) {
	// The paper treats "both sides changed the byte" as a conflict;
	// equal new values do not excuse it.
	parent, child, snap := forkPair(t, []byte("aaaaaaaa"))
	if err := child.Write(3, []byte("Z")); err != nil {
		t.Fatal(err)
	}
	if err := parent.Write(3, []byte("Z")); err != nil {
		t.Fatal(err)
	}
	_, err := Merge(parent, child, snap, 0, 4*PageSize)
	var mc *MergeConflictError
	if !errors.As(err, &mc) {
		t.Fatalf("Merge = %v, want conflict for equal-value double write", err)
	}
}

func TestMergeSwapSemantics(t *testing.T) {
	// The paper's x=y / y=x example: two children each read the old value
	// and write one variable; merging both always swaps.
	parent := NewSpace()
	mustSetPerm(t, parent, 0, PageSize, PermRW)
	if err := parent.WriteU32(0, 111); err != nil { // x
		t.Fatal(err)
	}
	if err := parent.WriteU32(4, 222); err != nil { // y
		t.Fatal(err)
	}

	fork := func() (*Space, *Space) {
		c := NewSpace()
		if _, err := c.CopyFrom(parent, 0, 0, PageSize); err != nil {
			t.Fatal(err)
		}
		s, _ := c.Snapshot()
		return c, s
	}
	c1, s1 := fork()
	c2, s2 := fork()

	y, _ := c1.ReadU32(4)
	if err := c1.WriteU32(0, y); err != nil { // x = y
		t.Fatal(err)
	}
	x, _ := c2.ReadU32(0)
	if err := c2.WriteU32(4, x); err != nil { // y = x
		t.Fatal(err)
	}

	if _, err := Merge(parent, c1, s1, 0, PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(parent, c2, s2, 0, PageSize); err != nil {
		t.Fatal(err)
	}
	gx, _ := parent.ReadU32(0)
	gy, _ := parent.ReadU32(4)
	if gx != 222 || gy != 111 {
		t.Errorf("after merge x=%d y=%d, want swapped 222/111", gx, gy)
	}
}

func TestMergeZeroedPagePropagates(t *testing.T) {
	parent, child, snap := forkPair(t, []byte("data"))
	if err := child.Zero(0, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(parent, child, snap, 0, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	var b [4]byte
	if err := parent.Read(0, b[:]); err != nil {
		t.Fatal(err)
	}
	if b != [4]byte{} {
		t.Errorf("child Zero not propagated: %v", b)
	}
}

func TestMergeNewPageInChild(t *testing.T) {
	parent, child, snap := forkPair(t, []byte("x"))
	// Child maps and writes a page the parent never had.
	mustSetPerm(t, child, 2*PageSize, PageSize, PermRW)
	if err := child.Write(2*PageSize, []byte("new")); err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(parent, child, snap, 0, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	var b [3]byte
	if err := parent.Read(2*PageSize, b[:]); err != nil {
		t.Fatal(err)
	}
	if string(b[:]) != "new" {
		t.Errorf("new child page not merged: %q", b[:])
	}
}

func TestCopyAllFromClonesEverything(t *testing.T) {
	src := NewSpace()
	mustSetPerm(t, src, 0, PageSize, PermRW)
	mustSetPerm(t, src, 0x40000000, PageSize, PermRW) // distant table
	if err := src.Write(0x40000000, []byte("far")); err != nil {
		t.Fatal(err)
	}
	dst := NewSpace()
	mustSetPerm(t, dst, 0x100000, PageSize, PermRW) // stale mapping to be dropped
	if err := dst.Write(0x100000, []byte("old")); err != nil {
		t.Fatal(err)
	}
	dst.CopyAllFrom(src)
	var b [3]byte
	if err := dst.Read(0x40000000, b[:]); err != nil {
		t.Fatal(err)
	}
	if string(b[:]) != "far" {
		t.Errorf("CopyAllFrom missed distant page: %q", b[:])
	}
	if err := dst.Read(0x100000, b[:]); err == nil {
		t.Error("CopyAllFrom kept stale mapping that src does not have")
	}
}

// Property: merging two children with disjoint write sets never conflicts
// and produces exactly the union of their writes.
func TestMergeDisjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		parent := NewSpace()
		if err := parent.SetPerm(0, 2*PageSize, PermRW); err != nil {
			return false
		}
		init := make([]byte, 2*PageSize)
		rng.Read(init)
		if err := parent.Write(0, init); err != nil {
			return false
		}

		// Partition offsets: child1 writes even offsets, child2 odd.
		want := append([]byte(nil), init...)
		type ch struct {
			s, snap *Space
		}
		var chs []ch
		for c := 0; c < 2; c++ {
			cs := NewSpace()
			if _, err := cs.CopyFrom(parent, 0, 0, 2*PageSize); err != nil {
				return false
			}
			sn, _ := cs.Snapshot()
			chs = append(chs, ch{cs, sn})
		}
		for i := 0; i < 64; i++ {
			off := Addr(rng.Intn(2 * PageSize))
			c := int(off) % 2
			v := byte(rng.Intn(256))
			if v == init[off] {
				v ^= 0xff // ensure a visible change
			}
			if err := chs[c].s.Write(off, []byte{v}); err != nil {
				return false
			}
			want[off] = v
		}
		for _, c := range chs {
			if _, err := Merge(parent, c.s, c.snap, 0, 2*PageSize); err != nil {
				return false
			}
		}
		got := make([]byte, 2*PageSize)
		if err := parent.Read(0, got); err != nil {
			return false
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: if both children write the same byte (to distinct values), the
// second merge always reports a conflict, regardless of which bytes they are.
func TestMergeConflictProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		parent := NewSpace()
		if err := parent.SetPerm(0, PageSize, PermRW); err != nil {
			return false
		}
		off := Addr(rng.Intn(PageSize))

		var children []*Space
		var snaps []*Space
		for c := 0; c < 2; c++ {
			cs := NewSpace()
			if _, err := cs.CopyFrom(parent, 0, 0, PageSize); err != nil {
				return false
			}
			sn, _ := cs.Snapshot()
			if err := cs.Write(off, []byte{byte(c + 1)}); err != nil {
				return false
			}
			children = append(children, cs)
			snaps = append(snaps, sn)
		}
		if _, err := Merge(parent, children[0], snaps[0], 0, PageSize); err != nil {
			return false
		}
		_, err := Merge(parent, children[1], snaps[1], 0, PageSize)
		var mc *MergeConflictError
		return errors.As(err, &mc) && mc.Total == 1 && mc.Addrs[0] == off
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: merge outcome is independent of the order in which children
// with disjoint writes are merged (schedule independence).
func TestMergeOrderIndependenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		build := func(order []int) []byte {
			rng := rand.New(rand.NewSource(seed))
			parent := NewSpace()
			parent.SetPerm(0, PageSize, PermRW)
			init := make([]byte, PageSize)
			rng.Read(init)
			parent.Write(0, init)
			const nc = 3
			children := make([]*Space, nc)
			snaps := make([]*Space, nc)
			for c := 0; c < nc; c++ {
				cs := NewSpace()
				cs.CopyFrom(parent, 0, 0, PageSize)
				sn, _ := cs.Snapshot()
				children[c], snaps[c] = cs, sn
			}
			for i := 0; i < 90; i++ {
				off := rng.Intn(PageSize)
				c := off % nc
				children[c].Write(Addr(off), []byte{byte(rng.Intn(256)) | 1})
			}
			for _, c := range order {
				if _, err := Merge(parent, children[c], snaps[c], 0, PageSize); err != nil {
					return nil
				}
			}
			out := make([]byte, PageSize)
			parent.Read(0, out)
			return out
		}
		a := build([]int{0, 1, 2})
		b := build([]int{2, 0, 1})
		return a != nil && bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFreeReleasesRefs(t *testing.T) {
	s := NewSpace()
	mustSetPerm(t, s, 0, PageSize, PermRW)
	if err := s.Write(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	pg := s.entry(0).pg
	c := NewSpace()
	if _, err := c.CopyFrom(s, 0, 0, PageSize); err != nil {
		t.Fatal(err)
	}
	if got := pg.refs.Load(); got != 2 {
		t.Fatalf("refs after share = %d, want 2", got)
	}
	c.Free()
	if got := pg.refs.Load(); got != 1 {
		t.Fatalf("refs after Free = %d, want 1", got)
	}
	// With sharing gone, a write must not copy.
	if err := s.Write(0, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if s.entry(0).pg != pg {
		t.Error("write copied a page that was exclusively owned")
	}
}

func TestPermString(t *testing.T) {
	cases := map[Perm]string{PermNone: "--", PermR: "r-", PermW: "-w", PermRW: "rw"}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Perm(%d).String() = %q, want %q", p, got, want)
		}
	}
}
