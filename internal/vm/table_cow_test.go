package vm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Tests specific to table-granularity copy-on-write: whole level-2 tables
// are shared by bulk copies and snapshots, and any mutation must first
// privatize the table without disturbing other sharers.

const tableSpan = uint64(tableEntries * PageSize) // 4 MiB

func TestBulkCopySharesTables(t *testing.T) {
	src := NewSpace()
	if err := src.SetPerm(0, tableSpan, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := src.Write(0, []byte("shared")); err != nil {
		t.Fatal(err)
	}
	dst := NewSpace()
	st, err := dst.CopyFrom(src, 0, 0, tableSpan)
	if err != nil {
		t.Fatal(err)
	}
	if st.TablesShared != 1 || st.PagesShared != 0 {
		t.Errorf("stats = %+v, want exactly one table shared, no page work", st)
	}
	if src.root[0] != dst.root[0] {
		t.Fatal("bulk copy did not share the level-2 table")
	}
}

func TestWriteAfterBulkCopyDoesNotLeak(t *testing.T) {
	src := NewSpace()
	if err := src.SetPerm(0, tableSpan, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := src.Write(100, []byte("original")); err != nil {
		t.Fatal(err)
	}
	dst := NewSpace()
	if _, err := dst.CopyFrom(src, 0, 0, tableSpan); err != nil {
		t.Fatal(err)
	}
	// Writing through either side must not be visible to the other.
	if err := dst.Write(100, []byte("DSTWRITE")); err != nil {
		t.Fatal(err)
	}
	if err := src.Write(200, []byte("SRCWRITE")); err != nil {
		t.Fatal(err)
	}
	var b [8]byte
	if err := src.Read(100, b[:]); err != nil {
		t.Fatal(err)
	}
	if string(b[:]) != "original" {
		t.Errorf("dst write leaked into src: %q", b[:])
	}
	if err := dst.Read(200, b[:]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b[:], make([]byte, 8)) {
		t.Errorf("src write leaked into dst: %q", b[:])
	}
}

func TestSetPermAfterShareDoesNotLeak(t *testing.T) {
	src := NewSpace()
	if err := src.SetPerm(0, tableSpan, PermRW); err != nil {
		t.Fatal(err)
	}
	dst := NewSpace()
	if _, err := dst.CopyFrom(src, 0, 0, tableSpan); err != nil {
		t.Fatal(err)
	}
	// Permission changes are pte mutations: they too must privatize.
	if err := dst.SetPerm(0, PageSize, PermR); err != nil {
		t.Fatal(err)
	}
	if src.PermAt(0) != PermRW {
		t.Error("dst SetPerm changed src's permissions")
	}
	if dst.PermAt(0) != PermR || dst.PermAt(PageSize) != PermRW {
		t.Error("dst SetPerm wrong on dst itself")
	}
}

func TestZeroAfterShareDoesNotLeak(t *testing.T) {
	src := NewSpace()
	if err := src.SetPerm(0, tableSpan, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := src.Write(0, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	dst := NewSpace()
	if _, err := dst.CopyFrom(src, 0, 0, tableSpan); err != nil {
		t.Fatal(err)
	}
	if err := dst.Zero(0, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	var b [4]byte
	if err := src.Read(0, b[:]); err != nil {
		t.Fatal(err)
	}
	if string(b[:]) != "keep" {
		t.Errorf("dst Zero destroyed src data: %q", b[:])
	}
}

func TestSnapshotSharesTablesAndStaysFrozen(t *testing.T) {
	s := NewSpace()
	if err := s.SetPerm(0, tableSpan, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(0, []byte("frozen")); err != nil {
		t.Fatal(err)
	}
	snap, st := s.Snapshot()
	if st.TablesShared != 1 {
		t.Errorf("snapshot stats = %+v, want 1 table shared", st)
	}
	for i := 0; i < 3; i++ {
		if err := s.Write(Addr(i*PageSize), []byte("mutate")); err != nil {
			t.Fatal(err)
		}
	}
	var b [6]byte
	if err := snap.Read(0, b[:]); err != nil {
		t.Fatal(err)
	}
	if string(b[:]) != "frozen" {
		t.Errorf("snapshot thawed: %q", b[:])
	}
}

func TestThreeWayTableSharing(t *testing.T) {
	// parent → child → grandchild chains share one table three ways;
	// each writer privatizes independently.
	parent := NewSpace()
	if err := parent.SetPerm(0, tableSpan, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := parent.WriteU32(0, 7); err != nil {
		t.Fatal(err)
	}
	child := NewSpace()
	child.CopyAllFrom(parent)
	grand := NewSpace()
	grand.CopyAllFrom(child)

	if err := child.WriteU32(0, 8); err != nil {
		t.Fatal(err)
	}
	pv, _ := parent.ReadU32(0)
	cv, _ := child.ReadU32(0)
	gv, _ := grand.ReadU32(0)
	if pv != 7 || cv != 8 || gv != 7 {
		t.Errorf("three-way isolation broken: parent=%d child=%d grand=%d", pv, cv, gv)
	}
}

func TestMergeAdoptsWholeTable(t *testing.T) {
	parent := NewSpace()
	if err := parent.SetPerm(0, tableSpan, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := parent.Write(0, []byte("base")); err != nil {
		t.Fatal(err)
	}
	child := NewSpace()
	child.CopyAllFrom(parent)
	snap, _ := child.Snapshot()
	if err := child.Write(PageSize, []byte("childpage")); err != nil {
		t.Fatal(err)
	}
	st, err := Merge(parent, child, snap, 0, tableSpan)
	if err != nil {
		t.Fatal(err)
	}
	if st.TablesAdopted != 1 {
		t.Errorf("stats = %+v, want a whole-table adoption", st)
	}
	if st.PagesAdopted != 1 {
		t.Errorf("adopted-page accounting = %d, want 1 (one page actually changed)", st.PagesAdopted)
	}
	var b [9]byte
	if err := parent.Read(PageSize, b[:]); err != nil {
		t.Fatal(err)
	}
	if string(b[:]) != "childpage" {
		t.Errorf("table adoption lost data: %q", b[:])
	}
	// The untouched page survives in the parent.
	var b2 [4]byte
	if err := parent.Read(0, b2[:]); err != nil {
		t.Fatal(err)
	}
	if string(b2[:]) != "base" {
		t.Errorf("table adoption clobbered parent data: %q", b2[:])
	}
}

// Property: an arbitrary interleaving of bulk shares and writes across
// three spaces always keeps them isolated (reference model: plain byte
// slices).
func TestTableCOWIsolationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const spanPages = 8
		spaces := make([]*Space, 3)
		model := make([][]byte, 3)
		for i := range spaces {
			spaces[i] = NewSpace()
			if err := spaces[i].SetPerm(0, tableSpan, PermRW); err != nil {
				return false
			}
			model[i] = make([]byte, spanPages*PageSize)
		}
		for op := 0; op < 40; op++ {
			switch rng.Intn(3) {
			case 0: // bulk copy j <- i
				i, j := rng.Intn(3), rng.Intn(3)
				if i == j {
					continue
				}
				if _, err := spaces[j].CopyFrom(spaces[i], 0, 0, tableSpan); err != nil {
					return false
				}
				copy(model[j], model[i])
			case 1: // write
				i := rng.Intn(3)
				off := rng.Intn(spanPages*PageSize - 8)
				var val [8]byte
				rng.Read(val[:])
				if err := spaces[i].Write(Addr(off), val[:]); err != nil {
					return false
				}
				copy(model[i][off:], val[:])
			case 2: // zero one page
				i := rng.Intn(3)
				pg := rng.Intn(spanPages)
				if err := spaces[i].Zero(Addr(pg*PageSize), PageSize, PermRW); err != nil {
					return false
				}
				copy(model[i][pg*PageSize:(pg+1)*PageSize], make([]byte, PageSize))
			}
		}
		buf := make([]byte, spanPages*PageSize)
		for i := range spaces {
			if err := spaces[i].Read(0, buf); err != nil {
				return false
			}
			if !bytes.Equal(buf, model[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMergeLastWriterWins(t *testing.T) {
	parent := NewSpace()
	if err := parent.SetPerm(0, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := parent.Write(0, []byte("pp")); err != nil {
		t.Fatal(err)
	}
	child := NewSpace()
	if _, err := child.CopyFrom(parent, 0, 0, PageSize); err != nil {
		t.Fatal(err)
	}
	snap, _ := child.Snapshot()
	if err := parent.Write(0, []byte("XY")); err != nil {
		t.Fatal(err)
	}
	if err := child.Write(0, []byte("Z")); err != nil { // conflicts with parent's X
		t.Fatal(err)
	}
	st, err := MergeWith(parent, child, snap, 0, PageSize, MergeLastWriter)
	if err != nil {
		t.Fatalf("LWW merge errored: %v", err)
	}
	if st.BytesMerged != 1 {
		t.Errorf("BytesMerged = %d, want 1", st.BytesMerged)
	}
	var b [2]byte
	if err := parent.Read(0, b[:]); err != nil {
		t.Fatal(err)
	}
	// Child's Z wins over parent's X at byte 0; parent's Y survives at byte 1.
	if string(b[:]) != "ZY" {
		t.Errorf("LWW result = %q, want ZY", b[:])
	}
}
