package vm

import (
	"fmt"
	"testing"
)

// Micro-benchmarks for the primitives every higher layer's cost reduces
// to: bulk COW copies, snapshots, and merges with varying dirtiness.

func benchSpace(pages int) *Space {
	s := NewSpace()
	span := uint64((pages + tableEntries - 1) / tableEntries * tableEntries * PageSize)
	if span == 0 {
		span = tableEntries * PageSize
	}
	if err := s.SetPerm(0, span, PermRW); err != nil {
		panic(err)
	}
	buf := make([]byte, PageSize)
	for i := range buf {
		buf[i] = byte(i)
	}
	for p := 0; p < pages; p++ {
		if err := s.Write(Addr(p*PageSize), buf); err != nil {
			panic(err)
		}
	}
	return s
}

func BenchmarkCopyAllFrom(b *testing.B) {
	for _, pages := range []int{16, 1024, 8192} {
		b.Run(fmt.Sprintf("pages=%d", pages), func(b *testing.B) {
			src := benchSpace(pages)
			dst := NewSpace()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst.CopyAllFrom(src)
			}
		})
	}
}

func BenchmarkSnapshot(b *testing.B) {
	src := benchSpace(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, _ := src.Snapshot()
		snap.Free()
	}
}

// BenchmarkForkDirtyMerge times the full private-workspace cycle — COW
// fork, snapshot, dirtying N pages, merge back — which is the unit of
// cost behind every thread join in the system. (Timing only the merge
// would need per-iteration untimed setup that dwarfs the measured work.)
func BenchmarkForkDirtyMerge(b *testing.B) {
	for _, dirty := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("dirty=%d", dirty), func(b *testing.B) {
			parent := benchSpace(1024)
			buf := make([]byte, PageSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				child := NewSpace()
				child.CopyAllFrom(parent)
				snap, _ := child.Snapshot()
				for p := 0; p < dirty; p++ {
					if err := child.Write(Addr(p*PageSize), buf); err != nil {
						b.Fatal(err)
					}
				}
				dst := NewSpace()
				dst.CopyAllFrom(parent)
				if _, err := Merge(dst, child, snap, 0, tableEntries*PageSize); err != nil {
					b.Fatal(err)
				}
				child.Free()
				snap.Free()
				dst.Free()
			}
		})
	}
}

func BenchmarkWriteCOWBreak(b *testing.B) {
	src := benchSpace(64)
	var word [8]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := NewSpace()
		dst.CopyAllFrom(src)
		// First write to a shared page: table split + page copy.
		if err := dst.Write(0, word[:]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBulkReadWrite(b *testing.B) {
	s := benchSpace(256)
	buf := make([]byte, 256*PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Read(0, buf); err != nil {
			b.Fatal(err)
		}
		if err := s.Write(0, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(2 * len(buf)))
}

// Page-spanning bulk access benchmarks for the single-walk Read/Write
// path: one cursor walk per page instead of an entry() permission lookup
// followed by a second split/ownTable walk inside writablePage. The
// "cowbreak" variant re-shares the pages each iteration so every
// full-page store exercises the fresh-page install path (no read-copy);
// "owned" writes through already-private pages, the steady-state loop.

// benchSpanPages is sized to cross a level-1 table boundary so the walk
// exercises the table-cursor reload, not just one cached table.
const benchSpanPages = tableEntries + 64

func BenchmarkPageSpanWrite(b *testing.B) {
	buf := make([]byte, benchSpanPages*PageSize)
	for i := range buf {
		buf[i] = byte(i >> 4)
	}
	b.Run("owned", func(b *testing.B) {
		s := benchSpace(benchSpanPages)
		b.SetBytes(int64(len(buf)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.Write(0, buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cowbreak", func(b *testing.B) {
		src := benchSpace(benchSpanPages)
		s := NewSpace()
		b.SetBytes(int64(len(buf)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s.CopyAllFrom(src) // restore sharing: every page write must COW
			b.StartTimer()
			if err := s.Write(0, buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unaligned", func(b *testing.B) {
		// Offset by half a page: every store is partial, so the walk cost
		// is the same but the fresh-install fast path never applies.
		s := benchSpace(benchSpanPages)
		p := buf[:len(buf)-PageSize]
		b.SetBytes(int64(len(p)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.Write(PageSize/2, p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkPageSpanRead(b *testing.B) {
	s := benchSpace(benchSpanPages)
	buf := make([]byte, benchSpanPages*PageSize)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Read(0, buf); err != nil {
			b.Fatal(err)
		}
	}
}
