package vm

// Incremental snapshot maintenance.
//
// The kernel's Snap option used to rebuild a space's reference snapshot
// from scratch every time: free the old clone, re-share every mapped
// level-2 table, clear the dirty bitmaps. For the deterministic
// scheduler, which re-snapshots every runnable thread every quantum,
// that O(mapped tables) churn dominated round cost even when a thread
// had touched one table — or nothing at all.
//
// Resnap exploits the same identity proof Merge uses (dirty.go): when
// the existing snapshot is the space's most recent one and neither side
// has lost precision, the space's dirty bitmaps name exactly the level-2
// slots where space and snapshot can differ. Re-sharing only those slots
// produces a snapshot pointer-identical to what a fresh Snapshot would
// build — table by table — in O(dirtied tables) instead of O(mapped),
// and the cost model charges only the tables actually re-shared, so a
// no-op re-snapshot is free in virtual time too.

// CleanSince reports whether s is provably unchanged since snap was
// taken from it: snap is s's most recent snapshot (identity tokens
// match), s has recorded no modification since — at any granularity —
// and snap itself is untouched. The check is O(tables) pointer scans and
// never reads page data; false negatives are possible (the proof may be
// unavailable), false positives are not.
func (s *Space) CleanSince(snap *Space) bool {
	return snap != nil && s.snapID != 0 && snap.snapOf == s.snapID &&
		!s.anyDirty() && !snap.anyDirty()
}

// Resnap updates old to be a current snapshot of s, returning the
// snapshot to use in its place and the sharing stats for cost
// accounting. When old is provably s's most recent snapshot, only the
// level-2 tables s dirtied since are re-shared (and charged); if the
// proof is unavailable — no old snapshot, identity mismatch, precision
// lost to a whole-space operation, or a mutated old — it falls back to
// Free plus a full Snapshot. Both paths end with a snapshot
// pointer-identical to a fresh Snapshot's, a freshly stamped (space,
// snapshot) identity pair, and cleared dirty tracking, so Merge's
// dirty-guided walk works identically afterwards.
func (s *Space) Resnap(old *Space) (*Space, CopyStats) {
	if old == nil || old.snapOf == 0 || old.snapOf != s.snapID ||
		s.dirtyAll || old.anyDirty() {
		if old != nil {
			old.Free()
		}
		return s.Snapshot()
	}
	if s.snapOf != 0 && s.anyDirty() {
		// Mirrors Snapshot: s was itself a snapshot and has diverged from
		// its origin, so it is no longer a faithful reference for it.
		s.snapOf = 0
	}
	var st CopyStats
	for l1, db := range s.dirty {
		if db == nil {
			continue
		}
		if old.root[l1] != s.root[l1] {
			releaseTable(old.root[l1])
			old.root[l1] = shareTable(s.root[l1])
		}
		if s.root[l1] != nil {
			st.TablesShared++
		}
		s.dirty[l1] = nil
	}
	id := snapshotIDs.Add(1)
	s.snapID = id
	old.snapOf = id
	return old, st
}
