package vm

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property test for the merge engine: serial, parallel, dirty-guided and
// full-scan walks of the same (dst, cur, ref) triple must produce
// byte-identical destination spaces, identical semantic MergeStats, and
// identical conflict address lists — in both conflict modes, across
// randomized dirty patterns on both sides of the fork. Run under -race
// this also exercises the parallel workers' ownership discipline.

// propSpan covers two whole level-2 tables plus a partial third, so the
// walk exercises whole-table adoption, partial-table clamping, and
// multi-table parallel partitioning in one scenario.
const propSpan = 2*(tableEntries*PageSize) + 64*PageSize

// memOp is one recorded mutation, replayable onto identical space copies.
type memOp struct {
	addr Addr
	data []byte // nil: Zero the page at addr
}

func applyOps(t *testing.T, s *Space, ops []memOp) {
	t.Helper()
	for _, op := range ops {
		if op.data == nil {
			if err := s.Zero(alignDown(op.addr), PageSize, PermRW); err != nil {
				t.Fatalf("Zero(%#x): %v", op.addr, err)
			}
			continue
		}
		if err := s.Write(op.addr, op.data); err != nil {
			t.Fatalf("Write(%#x, %d bytes): %v", op.addr, len(op.data), err)
		}
	}
}

// randOps draws n mutations with addresses below span.
func randOps(rng *rand.Rand, n int, span int64) []memOp {
	ops := make([]memOp, 0, n)
	for i := 0; i < n; i++ {
		if rng.Intn(8) == 0 {
			ops = append(ops, memOp{addr: Addr(rng.Int63n(span))})
			continue
		}
		data := make([]byte, rng.Intn(3*PageSize)+1)
		rng.Read(data)
		addr := Addr(rng.Int63n(span - int64(len(data))))
		ops = append(ops, memOp{addr: addr, data: data})
	}
	return ops
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// fingerprint hashes the observable state of every page in the range:
// permission plus backing bytes (FNV-1a), independent of COW structure.
func fingerprint(s *Space, addr Addr, size uint64) uint64 {
	h := uint64(14695981039346656037)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	for off := uint64(0); off < size; off += PageSize {
		e := s.entry(addr + Addr(off))
		mix(byte(e.perm))
		for _, b := range dataOf(e.pg) {
			mix(b)
		}
	}
	return h
}

// mergeOutcome captures everything observable about one merge execution.
type mergeOutcome struct {
	st    MergeStats
	print uint64
	err   string
	total int
	addrs []Addr
}

func runMerge(t *testing.T, parent *Space, childOps, parentOps []memOp,
	addr Addr, size uint64, cfg MergeConfig) mergeOutcome {
	t.Helper()
	child := NewSpace()
	child.CopyAllFrom(parent)
	snap, _ := child.Snapshot()
	applyOps(t, child, childOps)

	dst := NewSpace()
	dst.CopyAllFrom(parent)
	applyOps(t, dst, parentOps)

	st, err := MergeEx(dst, child, snap, addr, size, cfg)
	out := mergeOutcome{st: st, print: fingerprint(dst, addr, size)}
	if err != nil {
		out.err = err.Error()
		mc, ok := err.(*MergeConflictError)
		if !ok {
			t.Fatalf("MergeEx(%+v): unexpected error type %T: %v", cfg, err, err)
		}
		out.total = mc.Total
		out.addrs = append(out.addrs, mc.Addrs...)
	}
	child.Free()
	snap.Free()
	dst.Free()
	return out
}

func outcomesEqual(a, b mergeOutcome, ignoreScanned bool) string {
	sa, sb := a.st, b.st
	if ignoreScanned {
		sa.PtesScanned, sb.PtesScanned = 0, 0
	}
	switch {
	case sa != sb:
		return fmt.Sprintf("stats %+v vs %+v", a.st, b.st)
	case a.print != b.print:
		return fmt.Sprintf("destination bytes differ (%#x vs %#x)", a.print, b.print)
	case a.err != b.err:
		return fmt.Sprintf("errors %q vs %q", a.err, b.err)
	case a.total != b.total:
		return fmt.Sprintf("conflict totals %d vs %d", a.total, b.total)
	case fmt.Sprint(a.addrs) != fmt.Sprint(b.addrs):
		return fmt.Sprintf("conflict addrs %v vs %v", a.addrs, b.addrs)
	}
	return ""
}

func TestMergeEnginesEquivalentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		parent := NewSpace()
		if err := parent.SetPerm(0, propSpan, PermRW); err != nil {
			t.Fatal(err)
		}
		applyOps(t, parent, randOps(rng, 10, propSpan))
		// Child mutations roam the whole span, and always include a write
		// in the second table; parent mutations stay inside the first
		// table, so the second table is a whole-table adoption candidate.
		childOps := randOps(rng, 12, propSpan)
		childOps = append(childOps, memOp{
			addr: Addr(tableEntries+rng.Intn(tableEntries)) * PageSize,
			data: randBytes(rng, 64),
		})
		parentOps := randOps(rng, 4, tableEntries*PageSize)
		if rng.Intn(2) == 0 {
			// Contended page: both sides write overlapping random bytes —
			// a guaranteed byte comparison, near-certain conflict.
			pg := Addr(rng.Intn(tableEntries)) * PageSize
			childOps = append(childOps, memOp{addr: pg, data: randBytes(rng, 64)})
			parentOps = append(parentOps, memOp{addr: pg + 32, data: randBytes(rng, 64)})
		}

		// Whole span or a random page-aligned sub-range.
		addr, size := Addr(0), uint64(propSpan)
		if rng.Intn(2) == 0 {
			addr = Addr(rng.Int63n(propSpan/PageSize)) * PageSize
			size = uint64(rng.Int63n((propSpan-int64(addr))/PageSize)+1) * PageSize
		}

		for _, mode := range []MergeMode{MergeStrict, MergeLastWriter} {
			serial := runMerge(t, parent, childOps, parentOps, addr, size,
				MergeConfig{Mode: mode})
			variants := []struct {
				name          string
				cfg           MergeConfig
				ignoreScanned bool
			}{
				{"parallel4", MergeConfig{Mode: mode, Workers: 4}, false},
				{"serial-full", MergeConfig{Mode: mode, NoDirtyHints: true}, true},
				{"parallel4-full", MergeConfig{Mode: mode, Workers: 4, NoDirtyHints: true}, true},
			}
			for _, v := range variants {
				got := runMerge(t, parent, childOps, parentOps, addr, size, v.cfg)
				if diff := outcomesEqual(serial, got, v.ignoreScanned); diff != "" {
					t.Errorf("seed %d mode %v: %s differs from serial guided: %s",
						seed, mode, v.name, diff)
					return false
				}
				if got.st.PtesScanned < serial.st.PtesScanned {
					t.Errorf("seed %d mode %v: %s scanned %d ptes, fewer than guided serial's %d",
						seed, mode, v.name, got.st.PtesScanned, serial.st.PtesScanned)
					return false
				}
			}
		}
		parent.Free()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestMergeEnginesEquivalentOnContention pins the hard cases the random
// scenarios only sometimes draw: a guaranteed write/write conflict, a
// byte-compared false-sharing page, and a whole-table adoption, all in one
// merge — and requires every engine configuration to agree on them.
func TestMergeEnginesEquivalentOnContention(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	parent := NewSpace()
	if err := parent.SetPerm(0, propSpan, PermRW); err != nil {
		t.Fatal(err)
	}
	applyOps(t, parent, randOps(rng, 10, propSpan))
	childOps := []memOp{
		{addr: 3 * PageSize, data: randBytes(rng, 64)},                    // contended page
		{addr: (tableEntries + 7) * PageSize, data: randBytes(rng, 1000)}, // table-1 adoption
	}
	parentOps := []memOp{
		{addr: 3*PageSize + 32, data: randBytes(rng, 64)}, // overlaps child's write
	}
	serial := runMerge(t, parent, childOps, parentOps, 0, propSpan, MergeConfig{})
	if serial.total == 0 || serial.st.PagesCompared == 0 || serial.st.TablesAdopted == 0 {
		t.Fatalf("constructed scenario missed a path: %+v (conflicts %d)", serial.st, serial.total)
	}
	for _, mode := range []MergeMode{MergeStrict, MergeLastWriter} {
		base := runMerge(t, parent, childOps, parentOps, 0, propSpan, MergeConfig{Mode: mode})
		for _, cfg := range []MergeConfig{
			{Mode: mode, Workers: 2},
			{Mode: mode, Workers: 16},
			{Mode: mode, NoDirtyHints: true},
			{Mode: mode, Workers: 16, NoDirtyHints: true},
		} {
			got := runMerge(t, parent, childOps, parentOps, 0, propSpan, cfg)
			if diff := outcomesEqual(base, got, cfg.NoDirtyHints); diff != "" {
				t.Errorf("mode %v cfg %+v: %s", mode, cfg, diff)
			}
		}
	}
}

// TestMergeMutatedRefNeverGuides closes a trust hole: a reference
// snapshot that was written to and then re-snapshotted must not steer a
// guided merge — re-snapshotting clears the ref's dirty marks (the
// evidence of its divergence), so its own snapshot identity has to be
// dropped with them, forcing the full walk.
func TestMergeMutatedRefNeverGuides(t *testing.T) {
	cur := NewSpace()
	if err := cur.SetPerm(0, 4*PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := cur.Write(0, []byte("base")); err != nil {
		t.Fatal(err)
	}
	ref, _ := cur.Snapshot()
	// Mutate the reference behind the merge's back, then launder its
	// dirty marks through a second Snapshot call.
	if err := ref.Write(PageSize, []byte("ref-side change")); err != nil {
		t.Fatal(err)
	}
	ref.Snapshot()
	if dirtyGuided(cur, ref) {
		t.Fatal("mutated, re-snapshotted ref still trusted for guided merge")
	}
	// The full walk must now see the ref-side divergence: cur's page 1
	// (still "base"-era zeros) differs from ref's, so the merge folds
	// cur's bytes over the ref-side change.
	dst := NewSpace()
	dst.CopyAllFrom(ref)
	if _, err := Merge(dst, cur, ref, 0, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	var b [15]byte
	if err := dst.Read(PageSize, b[:]); err != nil {
		t.Fatal(err)
	}
	if string(b[:]) == "ref-side change" {
		t.Error("merge skipped a page the ref diverged on (guided walk used stale hints)")
	}
}

// TestMergeDirtyGuidedScansLessThanFull pins the tentpole claim: with a
// sparse dirty pattern the guided walk examines O(dirtied) ptes while the
// seed-equivalent full walk examines every pte of each touched table.
func TestMergeDirtyGuidedScansLessThanFull(t *testing.T) {
	parent := NewSpace()
	if err := parent.SetPerm(0, propSpan, PermRW); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	for p := 0; p < propSpan/PageSize; p++ {
		if err := parent.Write(Addr(p*PageSize), buf); err != nil {
			t.Fatal(err)
		}
	}
	// Child dirties 3 pages in each of the first two tables. Dirtying the
	// parent too keeps both tables off the whole-table adoption path, so
	// the comparison isolates the pte-scan cost.
	childOps := []memOp{}
	parentOps := []memOp{{addr: 5 * PageSize, data: []byte("parent")},
		{addr: Addr(tableEntries+9) * PageSize, data: []byte("parent")}}
	for _, l1 := range []int{0, 1} {
		for i := 0; i < 3; i++ {
			childOps = append(childOps, memOp{
				addr: Addr(l1*tableEntries+100*i) * PageSize,
				data: []byte("child"),
			})
		}
	}
	guided := runMerge(t, parent, childOps, parentOps, 0, propSpan, MergeConfig{})
	full := runMerge(t, parent, childOps, parentOps, 0, propSpan, MergeConfig{NoDirtyHints: true})
	if diff := outcomesEqual(guided, full, true); diff != "" {
		t.Fatalf("guided and full walks disagree: %s", diff)
	}
	if guided.st.PtesScanned > 16 {
		t.Errorf("guided walk scanned %d ptes for 6 dirty pages, want O(dirtied)", guided.st.PtesScanned)
	}
	if full.st.PtesScanned < 2*tableEntries {
		t.Errorf("full walk scanned %d ptes, expected the whole %d-pte touched span",
			full.st.PtesScanned, 2*tableEntries)
	}
}
