package vm

import (
	"math/rand"
	"testing"
)

// deltaPagesOf re-derives the delta page set from a run list, for
// comparisons against ground truth.
func deltaPagesOf(runs []PageRun) map[Addr]bool {
	set := make(map[Addr]bool)
	for _, r := range runs {
		for i := 0; i < r.Pages; i++ {
			set[r.Addr+Addr(i)<<PageShift] = true
		}
	}
	return set
}

func TestDeltaRunsMatchesMergeStats(t *testing.T) {
	// Randomized page churn: DeltaRuns must name exactly the pages a
	// Merge over the same range processes (adopted + compared), whether
	// or not the walk is dirty-guided, and the guided and unguided walks
	// must return identical run lists.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		const pages = 512
		parent := NewSpace()
		if err := parent.SetPerm(0, pages*PageSize, PermRW); err != nil {
			t.Fatal(err)
		}
		for p := 0; p < pages; p += 3 {
			if err := parent.WriteU32(Addr(p)<<PageShift, uint32(p)); err != nil {
				t.Fatal(err)
			}
		}
		child := NewSpace()
		child.CopyAllFrom(parent)
		snap, _ := child.Snapshot()

		touched := make(map[Addr]bool)
		for i := 0; i < 64; i++ {
			p := Addr(rng.Intn(pages))
			a := p << PageShift
			if err := child.WriteU32(a+Addr(rng.Intn(1024)*4), rng.Uint32()); err != nil {
				t.Fatal(err)
			}
			touched[a] = true
		}

		guidedRuns := DeltaRuns(child, snap, 0, pages*PageSize, 0)
		if !dirtyGuided(child, snap) {
			t.Fatal("expected dirty-guided walk to be available")
		}
		// Force the unguided walk through a space with no snapshot link.
		child2 := NewSpace()
		child2.CopyAllFrom(child) // markAllDirty: guidance impossible
		unguidedRuns := DeltaRuns(child2, snap, 0, pages*PageSize, 0)

		got := deltaPagesOf(guidedRuns)
		for a := range touched {
			if !got[a] {
				t.Fatalf("trial %d: touched page %#x missing from delta", trial, a)
			}
		}
		for a := range got {
			if !touched[a] {
				t.Fatalf("trial %d: page %#x in delta but never written", trial, a)
			}
		}
		if len(unguidedRuns) != len(guidedRuns) {
			t.Fatalf("trial %d: guided/unguided run counts differ: %d vs %d",
				trial, len(guidedRuns), len(unguidedRuns))
		}
		u2 := deltaPagesOf(unguidedRuns)
		if len(u2) != len(got) {
			t.Fatalf("trial %d: unguided page count %d != guided %d", trial, len(u2), len(got))
		}
		for a := range got {
			if !u2[a] {
				t.Fatalf("trial %d: unguided walk missing page %#x", trial, a)
			}
		}

		// The merge over the same range must process exactly these pages.
		dst := NewSpace()
		dst.CopyAllFrom(parent)
		st, err := Merge(dst, child, snap, 0, pages*PageSize)
		if err != nil {
			t.Fatalf("trial %d: merge: %v", trial, err)
		}
		if st.PagesAdopted+st.PagesCompared != len(got) {
			t.Fatalf("trial %d: merge processed %d pages, delta names %d",
				trial, st.PagesAdopted+st.PagesCompared, len(got))
		}
		snap.Free()
	}
}

func TestDeltaRunsCoalescingAndCap(t *testing.T) {
	parent := NewSpace()
	if err := parent.SetPerm(0, 64*PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	child := NewSpace()
	child.CopyAllFrom(parent)
	snap, _ := child.Snapshot()
	// Two contiguous blocks: pages [4,12) and [20,23).
	for p := 4; p < 12; p++ {
		if err := child.WriteU32(Addr(p)<<PageShift, 1); err != nil {
			t.Fatal(err)
		}
	}
	for p := 20; p < 23; p++ {
		if err := child.WriteU32(Addr(p)<<PageShift, 1); err != nil {
			t.Fatal(err)
		}
	}
	runs := DeltaRuns(child, snap, 0, 64*PageSize, 0)
	want := []PageRun{{4 << PageShift, 8}, {20 << PageShift, 3}}
	if len(runs) != 2 || runs[0] != want[0] || runs[1] != want[1] {
		t.Fatalf("runs = %+v, want %+v", runs, want)
	}
	if DeltaPages(runs) != 11 {
		t.Fatalf("DeltaPages = %d, want 11", DeltaPages(runs))
	}
	// Capped at 3 pages per run: the 8-page block splits 3+3+2.
	capped := DeltaRuns(child, snap, 0, 64*PageSize, 3)
	if len(capped) != 4 || capped[0].Pages != 3 || capped[1].Pages != 3 ||
		capped[2].Pages != 2 || capped[3].Pages != 3 {
		t.Fatalf("capped runs = %+v", capped)
	}
	// Range narrowing: only the second block is visible.
	narrow := DeltaRuns(child, snap, 16<<PageShift, 32*PageSize, 0)
	if len(narrow) != 1 || narrow[0] != (PageRun{20 << PageShift, 3}) {
		t.Fatalf("narrowed runs = %+v", narrow)
	}
}
