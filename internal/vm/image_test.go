package vm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

// buildPair returns a space with some content plus its snapshot, with
// divergence written after the snapshot so dirty tracking is live.
func buildPair(t *testing.T) (*Space, *Space) {
	t.Helper()
	s := NewSpace()
	if err := s.SetPerm(0, 1<<22, PermRW); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := s.WriteU64(Addr(i*PageSize), uint64(i)*7+1); err != nil {
			t.Fatal(err)
		}
	}
	snap, _ := s.Snapshot()
	// Diverge on three pages only; the rest stay pointer-shared.
	for _, pg := range []int{2, 3, 9} {
		if err := s.WriteU64(Addr(pg*PageSize)+8, 0xdead0000+uint64(pg)); err != nil {
			t.Fatal(err)
		}
	}
	return s, snap
}

func encodePair(cur, snap *Space) []byte {
	e := NewForestEncoder()
	e.Add(cur)
	e.Add(snap)
	e.LinkSnapshot(cur, snap)
	return e.Encode()
}

func readBack(t *testing.T, s *Space, pages int) []uint64 {
	t.Helper()
	out := make([]uint64, 0, pages*2)
	for i := 0; i < pages; i++ {
		a, err := s.ReadU64(Addr(i * PageSize))
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.ReadU64(Addr(i*PageSize) + 8)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, a, b)
	}
	return out
}

func TestForestRoundTripContent(t *testing.T) {
	cur, snap := buildPair(t)
	img := encodePair(cur, snap)
	spaces, err := DecodeForest(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(spaces) != 2 {
		t.Fatalf("got %d spaces", len(spaces))
	}
	rc, rs := spaces[0], spaces[1]
	for name, pair := range map[string][2]*Space{"cur": {cur, rc}, "snap": {snap, rs}} {
		want := readBack(t, pair[0], 16)
		got := readBack(t, pair[1], 16)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s word %d: %#x != %#x", name, i, got[i], want[i])
			}
		}
		if pair[0].MappedPages() != pair[1].MappedPages() {
			t.Fatalf("%s mapped pages %d != %d", name, pair[1].MappedPages(), pair[0].MappedPages())
		}
	}
}

// The restored pair must preserve page identity sharing: unchanged pages
// are the same object in cur and snap, so DeltaRuns, CleanSince and an
// incremental Resnap see exactly the pre-serialization divergence.
func TestForestRoundTripPreservesSharing(t *testing.T) {
	cur, snap := buildPair(t)
	wantRuns := DeltaRuns(cur, snap, 0, 1<<22, 0)
	img := encodePair(cur, snap)
	spaces, err := DecodeForest(img)
	if err != nil {
		t.Fatal(err)
	}
	rc, rs := spaces[0], spaces[1]
	gotRuns := DeltaRuns(rc, rs, 0, 1<<22, 0)
	if len(gotRuns) != len(wantRuns) {
		t.Fatalf("delta runs %v != %v", gotRuns, wantRuns)
	}
	for i := range wantRuns {
		if gotRuns[i] != wantRuns[i] {
			t.Fatalf("delta runs %v != %v", gotRuns, wantRuns)
		}
	}
	if rc.CleanSince(rs) != cur.CleanSince(snap) {
		t.Fatal("CleanSince proof changed across round trip")
	}
	// Resnap must stay incremental: only the dirtied tables re-share.
	_, stWant := cur.Resnap(snap)
	_, stGot := rc.Resnap(rs)
	if stWant != stGot {
		t.Fatalf("Resnap stats %+v != %+v", stGot, stWant)
	}
	// Merge against the restored pair reports identical statistics.
	origDst, restDst := NewSpace(), NewSpace()
	for _, d := range []*Space{origDst, restDst} {
		if err := d.SetPerm(0, 1<<22, PermRW); err != nil {
			t.Fatal(err)
		}
	}
	// Note: Resnap above refreshed the snapshots, so both merges see a
	// clean pair — the point is that they agree.
	mWant, err1 := Merge(origDst, cur, snap, 0, 1<<22)
	mGot, err2 := Merge(restDst, rc, rs, 0, 1<<22)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("merge errors diverge: %v vs %v", err1, err2)
	}
	if mWant != mGot {
		t.Fatalf("merge stats %+v != %+v", mGot, mWant)
	}
}

// A clean pair (snapshot just taken) must restore as provably clean, and
// a dirtyAll space as provably not.
func TestForestRoundTripDirtyState(t *testing.T) {
	s := NewSpace()
	if err := s.SetPerm(0, 1<<22, PermRW); err != nil {
		t.Fatal(err)
	}
	snap, _ := s.Snapshot()
	if !s.CleanSince(snap) {
		t.Fatal("fresh pair not clean")
	}
	spaces, err := DecodeForest(encodePair(s, snap))
	if err != nil {
		t.Fatal(err)
	}
	if !spaces[0].CleanSince(spaces[1]) {
		t.Fatal("clean pair restored unclean")
	}

	s.markAllDirty()
	spaces, err = DecodeForest(encodePair(s, snap))
	if err != nil {
		t.Fatal(err)
	}
	if spaces[0].CleanSince(spaces[1]) {
		t.Fatal("dirtyAll pair restored clean")
	}
}

func TestForestEncodeCanonical(t *testing.T) {
	cur, snap := buildPair(t)
	a := encodePair(cur, snap)
	b := encodePair(cur, snap)
	if !bytes.Equal(a, b) {
		t.Fatal("encoding is not deterministic")
	}
}

func TestForestDecodeRejectsBadImages(t *testing.T) {
	cur, snap := buildPair(t)
	img := encodePair(cur, snap)

	var ferr *ImageFormatError
	var verr *ImageVersionError

	// Truncation at various points.
	for _, cut := range []int{0, 3, 5, len(img) / 2, len(img) - 1} {
		if _, err := DecodeForest(img[:cut]); !errors.As(err, &ferr) {
			t.Fatalf("truncated at %d: got %v, want *ImageFormatError", cut, err)
		}
	}
	// Bit flip in the middle (page data): CRC catches it.
	bad := append([]byte(nil), img...)
	bad[len(bad)/2] ^= 0x40
	if _, err := DecodeForest(bad); !errors.As(err, &ferr) {
		t.Fatalf("corrupt: got %v, want *ImageFormatError", err)
	}
	// Bad magic.
	bad = append([]byte(nil), img...)
	bad[0] = 'X'
	fixCRC(bad)
	if _, err := DecodeForest(bad); !errors.As(err, &ferr) {
		t.Fatalf("bad magic: got %v, want *ImageFormatError", err)
	}
	// Future version is rejected with the typed version error, so a
	// format bump fails closed on old decoders.
	bad = append([]byte(nil), img...)
	bad[4] = ImageVersion + 1
	fixCRC(bad)
	_, err := DecodeForest(bad)
	if !errors.As(err, &verr) {
		t.Fatalf("future version: got %v, want *ImageVersionError", err)
	}
	if verr.Version != ImageVersion+1 || verr.Max != ImageVersion {
		t.Fatalf("version error fields: %+v", verr)
	}
}

// fixCRC rewrites the image trailer after a deliberate mutation so the
// decoder sees the mutation itself, not the checksum mismatch.
func fixCRC(img []byte) {
	payload := img[:len(img)-4]
	binary.LittleEndian.PutUint32(img[len(img)-4:], crc32.ChecksumIEEE(payload))
}
