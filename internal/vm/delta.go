package vm

// Delta extraction: the compact description of "which pages did this
// space change since that reference copy" that the kernel's batched
// cross-node transfer path ships instead of walking the whole region.
//
// A page belongs to the delta exactly when its identity (the backing
// *page pointer) differs between cur and ref — the same criterion Merge
// uses to select the pages it adopts or byte-compares, so for any range
// the delta's page count equals that merge's PagesAdopted+PagesCompared.
// Identity comparison is conservative the safe way around: a page COW-
// broken and rewritten with identical bytes still counts (it would be
// byte-compared by Merge too), while an untouched page never does.
//
// Like Merge, the walk is narrowed by the dirty bitmaps when they are
// provably trustworthy for this (cur, ref) pair (see dirtyGuided) and
// falls back to the full per-table pte scan otherwise; both walks visit
// pages in ascending address order and return identical runs.

// PageRun names a contiguous run of whole pages starting at Addr.
type PageRun struct {
	Addr  Addr
	Pages int
}

// DeltaRuns returns the pages in the page-aligned range [addr, addr+size)
// whose identity in cur differs from ref, coalesced into address-ordered
// contiguous runs of at most maxRun pages each (maxRun <= 0 leaves runs
// uncapped). The result depends only on the two spaces' contents, never
// on how they were produced or walked.
func DeltaRuns(cur, ref *Space, addr Addr, size uint64, maxRun int) []PageRun {
	if rangeCheck(addr, size) != nil || size == 0 {
		return nil
	}
	guided := dirtyGuided(cur, ref)
	var runs []PageRun
	flush := func(pa Addr) {
		// Extend the current run or start a new one; split at maxRun.
		if n := len(runs); n > 0 {
			last := &runs[n-1]
			if last.Addr+Addr(last.Pages)<<PageShift == pa &&
				(maxRun <= 0 || last.Pages < maxRun) {
				last.Pages++
				return
			}
		}
		runs = append(runs, PageRun{Addr: pa, Pages: 1})
	}
	end := uint64(addr) + size
	for l1 := int(addr >> l1Shift); uint64(l1)<<l1Shift < end; l1++ {
		ct := cur.root[l1]
		rt := ref.root[l1]
		if ct == rt {
			continue // pointer-shared (or both nil): no page differs
		}
		base := uint64(l1) << l1Shift
		lo, hi := 0, tableEntries
		if base < uint64(addr) {
			lo = int((uint64(addr) - base) >> l2Shift)
		}
		if base+(tableEntries<<l2Shift) > end {
			hi = int((end - base) >> l2Shift)
		}
		visit := func(l2 int) {
			var cp, rp *page
			if ct != nil {
				cp = ct.ptes[l2].pg
			}
			if rt != nil {
				rp = rt.ptes[l2].pg
			}
			if cp != rp {
				flush(Addr(base) + Addr(l2)<<l2Shift)
			}
		}
		if guided {
			db := cur.dirty[l1]
			if db == nil {
				continue // trustworthy marks say: table untouched
			}
			db.forEachSetBit(lo, hi, visit)
		} else {
			for l2 := lo; l2 < hi; l2++ {
				visit(l2)
			}
		}
	}
	return runs
}

// DeltaPages sums the page counts of DeltaRuns without materializing the
// run list.
func DeltaPages(runs []PageRun) int {
	n := 0
	for _, r := range runs {
		n += r.Pages
	}
	return n
}
