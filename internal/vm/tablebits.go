package vm

import "math/bits"

// Exported table geometry: higher layers (the kernel's merge plumbing,
// dsched's per-table sync epochs) reason about level-1 table granularity
// without knowing the paging internals.
const (
	// TableSpan is the address span one level-2 table covers: the
	// granularity of COW table sharing, of whole-table merge adoption,
	// and of dsched's per-table resync epochs.
	TableSpan = uint64(tableEntries) << l2Shift
)

// TableOf returns the level-1 table index covering address a.
func TableOf(a Addr) int { return int(a >> l1Shift) }

// TableBase returns the first address covered by level-1 table l1.
func TableBase(l1 int) Addr { return Addr(uint64(l1) << l1Shift) }

// TableBits is a bitset over level-1 table indices. Merge uses it to
// report which of the destination's 4 MiB tables a merge actually
// modified (MergeConfig.Touched), which is what lets collectors bump
// sync epochs per table instead of per region.
type TableBits [tableEntries / 64]uint64

// Set marks table l1.
func (b *TableBits) Set(l1 int) { b[l1>>6] |= 1 << (uint(l1) & 63) }

// Test reports whether table l1 is marked.
func (b *TableBits) Test(l1 int) bool { return b[l1>>6]&(1<<(uint(l1)&63)) != 0 }

// Any reports whether any table is marked.
func (b *TableBits) Any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of marked tables.
func (b *TableBits) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}
