package vm

// Chunked forest images: a content-addressed transcoding of the flat
// forest image into a castore object graph.
//
// The flat image (image.go) is the canonical form — it serializes the
// COW identity graph, and DecodeForest is the only restore path. The
// chunked form never re-derives that graph; it is a pure byte-level
// re-encoding: ChunkForest splits a flat image into page chunks, table
// chunks and a root node, and UnchunkForest reassembles the *identical*
// flat bytes. Restoring through a store is therefore bit-identical to
// restoring the flat image by construction, and the property is
// directly testable as round-trip byte equality.
//
// Chunk granularity follows the dedup physics of checkpoints:
//
//   - Page chunks are raw 4 KiB page contents keyed by SHA-256. Pages
//     untouched between checkpoints (or identical across sibling
//     sessions forked from one parent) hash to the same key and are
//     stored once.
//   - Table chunks carry only a table's *layout* (which level-2 slots
//     are mapped, with what permissions) — deliberately not its page
//     references. Layout rarely changes between checkpoints, while page
//     references change with every dirtied page; separating them keeps
//     table chunks stable. The page-id lists live in the root, where
//     they delta-encode well.
//   - The root is a castore node whose leaf refs are the literal page
//     and table chunk keys, and whose payload rebuilds the image's
//     instance lists. Identical-content but distinct-identity pages
//     appear as repeated keys in per-instance lists — content
//     addressing dedups the bytes while the lists preserve the
//     identity graph the flat format encodes.
//
// Incremental roots: a root may reference its parent root (as a node
// ref, so GC chains stay reachable) and encode its page-key and
// table-record lists as copy/literal ops against the parent's lists. A
// second checkpoint after touching k pages then stores O(k) new chunk
// bytes: k page chunks plus a handful of ops. When little survives
// from the parent, or the chain grows deep, the encoder falls back to
// a self-contained full root.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/castore"
	"repro/internal/imgenc"
)

const (
	chunkRootVersion = 1

	// maxChainDepth bounds how long a delta chain may grow before the
	// encoder emits a self-contained root, bounding restore latency and
	// the blast radius of a damaged ancestor.
	maxChainDepth = 16

	// maxResolveDepth is the decoder's hard cap on parent recursion; a
	// cyclic or absurd chain fails typed instead of recursing forever.
	maxResolveDepth = 64

	// fullRootLiteralPct: when at least this percentage of items would
	// be literal anyway, a delta root saves nothing — emit a full root.
	fullRootLiteralPct = 80
)

// tableRec is one table instance in a chunked image: the layout chunk
// it references plus its per-slot page ids (0 = no page, else
// 1-based index into the image's page list).
type tableRec struct {
	chunk castore.Key
	pids  []uint32
}

// forestShape is a resolved root: the instance lists and trailing
// sections needed to reassemble the flat image.
type forestShape struct {
	depth    uint32
	pageKeys []castore.Key
	tables   []tableRec
	tail     []byte // spaces + links sections, verbatim flat bytes
}

// chunkOp is one run of a delta-encoded instance list: count items
// taken either from the root's own literals or from the parent's list
// starting at start.
type chunkOp struct {
	copy  bool
	start int
	count int
}

func chunkFailf(off int, format string, args ...any) *ImageFormatError {
	return &ImageFormatError{Offset: off, Msg: fmt.Sprintf(format, args...)}
}

// ChunkForest stores a flat forest image's pages and tables as
// content-addressed chunks and returns the key of the image's root
// node. When parent is the (non-zero) root key of an earlier image in
// the same store, the new root is delta-encoded against it where
// profitable; UnchunkForest of the returned key reproduces flat
// byte-for-byte either way.
func ChunkForest(store castore.BlobStore, flat []byte, parent castore.Key) (castore.Key, error) {
	r, err := imgenc.Open(flat, imageMagic, ImageVersion,
		func(off int, msg string) error { return &ImageFormatError{Offset: off, Msg: msg} },
		func(v byte) error { return &ImageVersionError{Version: v, Max: ImageVersion} })
	if err != nil {
		return castore.Key{}, err
	}

	nPages := int(r.U32())
	if r.Err == nil && nPages*PageSize > len(r.B) {
		r.Failf("page count %d exceeds image size", nPages)
	}
	pageKeys := make([]castore.Key, 0, max(nPages, 0))
	for i := 0; i < nPages && r.Err == nil; i++ {
		pg := r.Take(PageSize)
		if r.Err != nil {
			break
		}
		key := castore.KeyOf(pg)
		if err := store.Put(key, pg); err != nil {
			return castore.Key{}, err
		}
		pageKeys = append(pageKeys, key)
	}

	nTables := int(r.U32())
	if r.Err == nil && nTables*3 > len(r.B) {
		r.Failf("table count %d exceeds image size", nTables)
	}
	tables := make([]tableRec, 0, max(nTables, 0))
	for i := 0; i < nTables && r.Err == nil; i++ {
		n := int(r.U16())
		chunk := make([]byte, 0, 2+3*n)
		chunk = binary.LittleEndian.AppendUint16(chunk, uint16(n))
		pids := make([]uint32, 0, n)
		for j := 0; j < n && r.Err == nil; j++ {
			l2 := r.U16()
			perm := r.U8()
			pid := r.U32()
			if r.Err != nil {
				break
			}
			if int(pid) > nPages {
				r.Failf("page id %d out of range (%d pages)", pid, nPages)
				break
			}
			chunk = binary.LittleEndian.AppendUint16(chunk, l2)
			chunk = append(chunk, perm)
			pids = append(pids, pid)
		}
		if r.Err != nil {
			break
		}
		key := castore.KeyOf(chunk)
		if err := store.Put(key, chunk); err != nil {
			return castore.Key{}, err
		}
		tables = append(tables, tableRec{chunk: key, pids: pids})
	}

	tail := r.Take(r.Remaining())
	if r.Err != nil {
		return castore.Key{}, r.Err
	}

	cur := &forestShape{pageKeys: pageKeys, tables: tables, tail: tail}

	// Delta against the parent when one is given and enough survives.
	var par *forestShape
	if !parent.IsZero() {
		par, err = resolveShape(store, parent, 0)
		if err != nil {
			return castore.Key{}, err
		}
	}
	pageOps, tableOps, usePar := planOps(cur, par)
	if usePar {
		cur.depth = par.depth + 1
	}

	// Assemble: literal refs in op order, then the payload over them.
	var leafRefs []castore.Key
	for _, op := range pageOps {
		if !op.copy {
			leafRefs = append(leafRefs, cur.pageKeys[op.start:op.start+op.count]...)
		}
	}
	var payload []byte
	payload = append(payload, chunkRootVersion)
	payload = binary.LittleEndian.AppendUint32(payload, cur.depth)
	if usePar {
		payload = append(payload, 1)
	} else {
		payload = append(payload, 0)
	}

	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(cur.pageKeys)))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(pageOps)))
	leaf := 0
	for _, op := range pageOps {
		if op.copy {
			payload = append(payload, 1)
			payload = binary.LittleEndian.AppendUint32(payload, uint32(op.start))
		} else {
			payload = append(payload, 0)
			payload = binary.LittleEndian.AppendUint32(payload, uint32(leaf))
			leaf += op.count
		}
		payload = binary.LittleEndian.AppendUint32(payload, uint32(op.count))
	}

	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(cur.tables)))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(tableOps)))
	for _, op := range tableOps {
		if op.copy {
			payload = append(payload, 1)
			payload = binary.LittleEndian.AppendUint32(payload, uint32(op.start))
			payload = binary.LittleEndian.AppendUint32(payload, uint32(op.count))
			continue
		}
		payload = append(payload, 0)
		payload = binary.LittleEndian.AppendUint32(payload, uint32(op.count))
		for _, rec := range cur.tables[op.start : op.start+op.count] {
			payload = binary.LittleEndian.AppendUint32(payload, uint32(len(leafRefs)))
			leafRefs = append(leafRefs, rec.chunk)
			payload = binary.LittleEndian.AppendUint16(payload, uint16(len(rec.pids)))
			for _, pid := range rec.pids {
				payload = binary.LittleEndian.AppendUint32(payload, pid)
			}
		}
	}

	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(cur.tail)))
	payload = append(payload, cur.tail...)

	var nodeRefs []castore.Key
	if usePar {
		nodeRefs = []castore.Key{parent}
	}
	return castore.PutNode(store, nodeRefs, leafRefs, payload)
}

// UnchunkForest reassembles the flat forest image rooted at key,
// fetching (and thereby hash-verifying) every chunk it references. The
// result decodes with DecodeForest exactly as the original flat image
// would; missing chunks surface as *castore.ChunkMissingError,
// damaged ones as *castore.ChunkHashError, and structural nonsense as
// *ImageFormatError.
func UnchunkForest(store castore.BlobStore, root castore.Key) ([]byte, error) {
	shape, err := resolveShape(store, root, 0)
	if err != nil {
		return nil, err
	}

	var b []byte
	b = append(b, imageMagic[:]...)
	b = append(b, ImageVersion)

	b = binary.LittleEndian.AppendUint32(b, uint32(len(shape.pageKeys)))
	for _, key := range shape.pageKeys {
		pg, err := store.Get(key)
		if err != nil {
			return nil, err
		}
		if len(pg) != PageSize {
			return nil, chunkFailf(len(b), "page chunk %s is %d bytes, want %d", key, len(pg), PageSize)
		}
		b = append(b, pg...)
	}

	b = binary.LittleEndian.AppendUint32(b, uint32(len(shape.tables)))
	for ti, rec := range shape.tables {
		chunk, err := store.Get(rec.chunk)
		if err != nil {
			return nil, err
		}
		if len(chunk) < 2 {
			return nil, chunkFailf(len(b), "table chunk %s truncated", rec.chunk)
		}
		n := int(binary.LittleEndian.Uint16(chunk))
		if len(chunk) != 2+3*n {
			return nil, chunkFailf(len(b), "table chunk %s is %d bytes, want %d", rec.chunk, len(chunk), 2+3*n)
		}
		if n != len(rec.pids) {
			return nil, chunkFailf(len(b), "table %d: chunk has %d slots, root lists %d page ids", ti, n, len(rec.pids))
		}
		b = binary.LittleEndian.AppendUint16(b, uint16(n))
		for j := 0; j < n; j++ {
			pid := rec.pids[j]
			if int(pid) > len(shape.pageKeys) {
				return nil, chunkFailf(len(b), "table %d: page id %d out of range (%d pages)", ti, pid, len(shape.pageKeys))
			}
			b = append(b, chunk[2+3*j:2+3*j+3]...) // l2 + perm, verbatim
			b = binary.LittleEndian.AppendUint32(b, pid)
		}
	}

	b = append(b, shape.tail...)
	return imgenc.Seal(b), nil
}

// resolveShape parses a root node and materializes its instance lists,
// recursing through the parent chain to satisfy copy ops.
func resolveShape(store castore.BlobStore, key castore.Key, depth int) (*forestShape, error) {
	if depth > maxResolveDepth {
		return nil, chunkFailf(0, "root parent chain deeper than %d", maxResolveDepth)
	}
	node, err := castore.GetNode(store, key)
	if err != nil {
		return nil, err
	}
	r := &imgenc.Reader{B: node.Payload, Wrap: func(off int, msg string) error {
		return &ImageFormatError{Offset: off, Msg: "root " + key.String()[:12] + ": " + msg}
	}}

	if v := r.U8(); r.Err == nil && v != chunkRootVersion {
		return nil, &ImageVersionError{Version: v, Max: chunkRootVersion}
	}
	shape := &forestShape{depth: r.U32()}
	hasParent := r.U8() != 0

	var par *forestShape
	if hasParent {
		if len(node.NodeRefs) == 0 {
			return nil, chunkFailf(r.Off, "delta root without parent node ref")
		}
		par, err = resolveShape(store, node.NodeRefs[0], depth+1)
		if err != nil {
			return nil, err
		}
	}

	nPages := int(r.U32())
	nOps := int(r.U32())
	if r.Err == nil && nOps > r.Remaining() {
		r.Failf("page op count %d exceeds payload", nOps)
	}
	shape.pageKeys = make([]castore.Key, 0, max(nPages, 0))
	for i := 0; i < nOps && r.Err == nil; i++ {
		kind := r.U8()
		start := int(r.U32())
		count := int(r.U32())
		if r.Err != nil {
			break
		}
		switch kind {
		case 0:
			if start < 0 || count < 0 || start+count > len(node.LeafRefs) {
				r.Failf("page literal op [%d,+%d) outside %d leaf refs", start, count, len(node.LeafRefs))
				break
			}
			shape.pageKeys = append(shape.pageKeys, node.LeafRefs[start:start+count]...)
		case 1:
			if par == nil {
				r.Failf("page copy op in root without parent")
				break
			}
			if start < 0 || count < 0 || start+count > len(par.pageKeys) {
				r.Failf("page copy op [%d,+%d) outside parent's %d pages", start, count, len(par.pageKeys))
				break
			}
			shape.pageKeys = append(shape.pageKeys, par.pageKeys[start:start+count]...)
		default:
			r.Failf("unknown page op kind %d", kind)
		}
	}
	if r.Err == nil && len(shape.pageKeys) != nPages {
		r.Failf("page ops produced %d pages, header says %d", len(shape.pageKeys), nPages)
	}

	nTables := int(r.U32())
	nOps = int(r.U32())
	if r.Err == nil && nOps > r.Remaining() {
		r.Failf("table op count %d exceeds payload", nOps)
	}
	shape.tables = make([]tableRec, 0, max(nTables, 0))
	for i := 0; i < nOps && r.Err == nil; i++ {
		kind := r.U8()
		switch kind {
		case 0:
			count := int(r.U32())
			if r.Err == nil && count > r.Remaining() {
				r.Failf("table literal count %d exceeds payload", count)
				break
			}
			for j := 0; j < count && r.Err == nil; j++ {
				leafIdx := int(r.U32())
				npids := int(r.U16())
				if r.Err != nil {
					break
				}
				if leafIdx < 0 || leafIdx >= len(node.LeafRefs) {
					r.Failf("table leaf ref %d outside %d leaf refs", leafIdx, len(node.LeafRefs))
					break
				}
				rec := tableRec{chunk: node.LeafRefs[leafIdx], pids: make([]uint32, 0, max(npids, 0))}
				for k := 0; k < npids && r.Err == nil; k++ {
					rec.pids = append(rec.pids, r.U32())
				}
				shape.tables = append(shape.tables, rec)
			}
		case 1:
			start := int(r.U32())
			count := int(r.U32())
			if r.Err != nil {
				break
			}
			if par == nil {
				r.Failf("table copy op in root without parent")
				break
			}
			if start < 0 || count < 0 || start+count > len(par.tables) {
				r.Failf("table copy op [%d,+%d) outside parent's %d tables", start, count, len(par.tables))
				break
			}
			shape.tables = append(shape.tables, par.tables[start:start+count]...)
		default:
			r.Failf("unknown table op kind %d", kind)
		}
	}
	if r.Err == nil && len(shape.tables) != nTables {
		r.Failf("table ops produced %d tables, header says %d", len(shape.tables), nTables)
	}

	tailLen := int(r.U32())
	if r.Err == nil && tailLen != r.Remaining() {
		r.Failf("tail length %d, %d bytes left", tailLen, r.Remaining())
	}
	shape.tail = r.Take(tailLen)
	if r.Err != nil {
		return nil, r.Err
	}
	return shape, nil
}

// planOps delta-encodes cur's instance lists against par, falling back
// to a self-contained full root (usePar=false, all-literal ops) when
// there is no parent, the chain is deep, or too little survives.
func planOps(cur, par *forestShape) (pageOps, tableOps []chunkOp, usePar bool) {
	fullPages := []chunkOp{{start: 0, count: len(cur.pageKeys)}}
	fullTables := []chunkOp{{start: 0, count: len(cur.tables)}}
	if len(cur.pageKeys) == 0 {
		fullPages = nil
	}
	if len(cur.tables) == 0 {
		fullTables = nil
	}
	if par == nil || par.depth+1 >= maxChainDepth {
		return fullPages, fullTables, false
	}
	pageOps, pageLit := deltaOps(pageTokens(cur), pageTokens(par))
	tableOps, tableLit := deltaOps(tableTokens(cur), tableTokens(par))
	total := len(cur.pageKeys) + len(cur.tables)
	if total > 0 && (pageLit+tableLit)*100 >= total*fullRootLiteralPct {
		return fullPages, fullTables, false
	}
	return pageOps, tableOps, true
}

// pageTokens serializes a shape's page instances for delta matching.
func pageTokens(s *forestShape) []string {
	out := make([]string, len(s.pageKeys))
	for i, k := range s.pageKeys {
		out[i] = string(k[:])
	}
	return out
}

// tableTokens serializes a shape's table records (layout chunk plus
// page-id list — both must match for a parent record to be reused).
func tableTokens(s *forestShape) []string {
	out := make([]string, len(s.tables))
	for i, rec := range s.tables {
		b := make([]byte, 0, castore.KeySize+4*len(rec.pids))
		b = append(b, rec.chunk[:]...)
		for _, pid := range rec.pids {
			b = binary.LittleEndian.AppendUint32(b, pid)
		}
		out[i] = string(b)
	}
	return out
}

// deltaOps matches cur against parent and coalesces the result into
// copy/literal runs. Literal ops use start = index into cur (the
// encoder turns those into leaf-ref ranges or inline records).
func deltaOps(cur, parent []string) (ops []chunkOp, literals int) {
	pos := make(map[string][]int, len(parent))
	for j, tok := range parent {
		pos[tok] = append(pos[tok], j)
	}
	// match[i] = parent index reused for cur[i], or -1 for a literal.
	// Prefer continuing the previous run so shifted-but-contiguous
	// regions coalesce into single copy ops.
	match := make([]int, len(cur))
	next := 0
	for i, tok := range cur {
		ps := pos[tok]
		if len(ps) == 0 {
			match[i] = -1
			continue
		}
		m := ps[0]
		for _, p := range ps {
			if p >= next {
				m = p
				break
			}
		}
		match[i] = m
		next = m + 1
	}
	for i := 0; i < len(cur); {
		j := i
		if match[i] < 0 {
			for j < len(cur) && match[j] < 0 {
				j++
			}
			ops = append(ops, chunkOp{start: i, count: j - i})
			literals += j - i
		} else {
			for j < len(cur) && match[j] == match[i]+(j-i) {
				j++
			}
			ops = append(ops, chunkOp{copy: true, start: match[i], count: j - i})
		}
		i = j
	}
	return ops, literals
}
