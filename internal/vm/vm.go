// Package vm implements the software paged virtual memory substrate that
// stands in for the x86 MMU in the original Determinator kernel.
//
// Each Space is a private 32-bit address space built from 4 KiB pages behind
// a two-level page table. Pages are shared copy-on-write between spaces (for
// the kernel's Copy and Snap operations) and carry read/write permissions.
// Merge performs the byte-granularity three-way reconciliation at the heart
// of Determinator's private workspace model: bytes the child changed since
// its reference snapshot are folded into the parent, and bytes changed on
// both sides raise a conflict, independent of any execution schedule.
//
// Every mutation additionally sets a bit in a per-space dirty bitmap
// (dirty.go). Snapshot clears the bitmap and stamps the (space, snapshot)
// pair with an identity token, so a merge that is handed the space's most
// recent snapshot can walk only the ptes the space actually dirtied —
// O(dirtied) instead of O(mapped) — and provably reach the same pages the
// full scan would.
//
// # Concurrency invariants
//
// A Space is not safe for concurrent use by multiple goroutines. The kernel
// guarantees that a space is only ever touched by its owning goroutine, or
// by its parent while the child is stopped at a rendezvous point; pages
// shared COW between spaces are never written in place (writers always
// break sharing first), so cross-space page sharing needs no locking beyond
// the atomic reference count.
//
// MergeParallel exploits a refinement of that ownership rule: all mutable
// per-table state — the root slot, the level-2 table it points to, and the
// table's dirty bitmap — is reached only through the table's level-1 index,
// and page reference counts are atomic. Partitioning a merge by level-1
// index therefore gives each worker exclusive ownership of every location
// it writes (destination tables and their pages) while the child and
// reference spaces are read shared-nothing, so the workers need no locks
// and the merged bytes, statistics and conflict set are identical to the
// serial walk's regardless of how the workers are scheduled.
package vm

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"
)

// Address-space geometry. The layout mirrors 32-bit x86 two-level paging:
// 10 bits of level-1 index, 10 bits of level-2 index, 12 bits of page offset.
const (
	PageShift = 12
	// PageSize is the granularity of mapping, copy-on-write sharing and
	// permission control, matching the 4 KiB x86 page.
	PageSize = 1 << PageShift
	pageMask = PageSize - 1

	l1Shift      = 22
	l2Shift      = PageShift
	tableEntries = 1024

	// SpaceSize is the total size of a space's virtual address range.
	SpaceSize = 1 << 32
)

// Addr is a 32-bit virtual address within a Space.
type Addr = uint32

// Perm describes the access permissions of a mapped page.
type Perm uint8

// Permission bits. A page with PermNone is mapped but inaccessible;
// an unmapped page has no pte at all and faults on any access.
const (
	PermNone Perm = 0
	PermR    Perm = 1 << 0
	PermW    Perm = 1 << 1
	PermRW        = PermR | PermW
)

func (p Perm) String() string {
	switch p {
	case PermNone:
		return "--"
	case PermR:
		return "r-"
	case PermW:
		return "-w"
	case PermRW:
		return "rw"
	}
	return fmt.Sprintf("Perm(%d)", uint8(p))
}

// A page is the unit of storage and of copy-on-write sharing. refs counts
// how many page-table entries (across all spaces and snapshots) reference
// it; a page with refs > 1 is immutable and must be copied before writing.
type page struct {
	refs atomic.Int32
	data [PageSize]byte
}

func newPage() *page {
	p := &page{}
	p.refs.Store(1)
	return p
}

// newPageFrom returns a fresh exclusively-owned page holding a copy of b
// (at most PageSize bytes). It is the install path for whole-page data
// arriving from outside the space — full-page-aligned Writes and
// image/chunk decode — which never needs the read-copy COW break: the
// incoming bytes replace the entire page, so nothing old is worth saving.
func newPageFrom(b []byte) *page {
	p := newPage()
	copy(p.data[:], b)
	return p
}

// pte is a page-table entry: a permission plus an optional backing page.
// A mapped entry with a nil page reads as zeros ("lazy zero page"); the
// backing page is allocated on first write.
type pte struct {
	pg   *page
	perm Perm
}

func (e pte) mapped() bool { return e.perm != PermNone || e.pg != nil }

// table is a level-2 page table covering 4 MiB of address space. Like
// pages, tables are shared copy-on-write between spaces: refs counts the
// spaces (and snapshots) referencing the table, and a shared table is
// immutable — any mutation first copies it (ownTable). Table-granularity
// sharing is what makes fork and snapshot O(address-space/4MiB) rather
// than O(pages), mirroring the real kernel's two-level COW ("replicating
// a file system image among many spaces copies no physical pages").
type table struct {
	refs atomic.Int32
	ptes [tableEntries]pte
}

func newTable() *table {
	t := &table{}
	t.refs.Store(1)
	return t
}

// releaseTable drops one reference; the last release also drops the
// table's page references.
func releaseTable(t *table) {
	if t == nil {
		return
	}
	if t.refs.Add(-1) == 0 {
		for j := range t.ptes {
			if pg := t.ptes[j].pg; pg != nil {
				pg.refs.Add(-1)
			}
		}
	}
}

// shareTable adds a reference.
func shareTable(t *table) *table {
	if t != nil {
		t.refs.Add(1)
	}
	return t
}

// Space is a private virtual address space.
type Space struct {
	root [tableEntries]*table

	// Dirty-page tracking (dirty.go): one lazily allocated bitmap per
	// level-2 table marking the ptes mutated since the last Snapshot,
	// plus a coarse escape hatch for whole-space replacements.
	dirty    [tableEntries]*dirtyBits
	dirtyAll bool
	// snapID identifies the most recent Snapshot taken of this space;
	// snapOf, set only on snapshot spaces, names the Snapshot call that
	// produced them. Merge trusts the dirty bitmap only when the tokens
	// match (see dirtyGuided).
	snapID uint64
	snapOf uint64
}

// ownTable returns a privately owned (mutable) level-2 table for index
// l1, copying a shared one or allocating an empty one as needed.
func (s *Space) ownTable(l1 int) *table {
	t := s.root[l1]
	if t == nil {
		t = newTable()
		s.root[l1] = t
		return t
	}
	if t.refs.Load() > 1 {
		nt := newTable()
		nt.ptes = t.ptes
		for j := range nt.ptes {
			if pg := nt.ptes[j].pg; pg != nil {
				pg.refs.Add(1)
			}
		}
		releaseTable(t)
		s.root[l1] = nt
		return nt
	}
	return t
}

// NewSpace returns an empty address space with nothing mapped.
func NewSpace() *Space { return &Space{} }

// AccessError reports a faulting access, the Determinator analogue of a
// processor page fault. The kernel converts it into a trap Ret.
type AccessError struct {
	Addr  Addr
	Write bool
	Perm  Perm // permissions actually present at Addr
}

func (e *AccessError) Error() string {
	kind := "read"
	if e.Write {
		kind = "write"
	}
	return fmt.Sprintf("vm: %s fault at %#08x (perm %s)", kind, e.Addr, e.Perm)
}

// alignDown / alignUp round to page boundaries.
func alignDown(a Addr) Addr { return a &^ pageMask }

func split(a Addr) (l1, l2 int) {
	return int(a >> l1Shift), int((a >> l2Shift) & (tableEntries - 1))
}

// entry returns the pte for the page containing a, or a zero pte if the
// page is unmapped.
func (s *Space) entry(a Addr) pte {
	l1, l2 := split(a)
	t := s.root[l1]
	if t == nil {
		return pte{}
	}
	return t.ptes[l2]
}

// setEntry installs a pte, breaking table sharing as needed.
func (s *Space) setEntry(a Addr, e pte) {
	l1, l2 := split(a)
	s.ownTable(l1).ptes[l2] = e
}

// PermAt reports the permissions at address a (PermNone if unmapped).
func (s *Space) PermAt(a Addr) Perm { return s.entry(a).perm }

// rangeCheck validates a page-aligned range. size may run to the very end
// of the address space (addr+size == 2^32 encodes as wraparound to 0 only
// when addr==0 and size==SpaceSize, which we disallow for simplicity).
func rangeCheck(addr Addr, size uint64) error {
	if addr&pageMask != 0 || size&pageMask != 0 {
		return fmt.Errorf("vm: range %#x+%#x not page-aligned", addr, size)
	}
	if size > SpaceSize || uint64(addr)+size > SpaceSize {
		return fmt.Errorf("vm: range %#x+%#x exceeds address space", addr, size)
	}
	return nil
}

// SetPerm sets the permissions of every page in the (page-aligned) range,
// mapping previously unmapped pages as lazy-zero pages. It corresponds to
// the Perm option of Put/Get.
func (s *Space) SetPerm(addr Addr, size uint64, perm Perm) error {
	if err := rangeCheck(addr, size); err != nil {
		return err
	}
	for off := uint64(0); off < size; off += PageSize {
		a := addr + Addr(off)
		e := s.entry(a)
		e.perm = perm
		s.setEntry(a, e)
		s.markDirty(a)
	}
	return nil
}

// Zero zero-fills the (page-aligned) range, dropping any backing pages and
// leaving the pages mapped with the given permissions. It corresponds to
// the Zero option of Put/Get.
func (s *Space) Zero(addr Addr, size uint64, perm Perm) error {
	if err := rangeCheck(addr, size); err != nil {
		return err
	}
	for off := uint64(0); off < size; off += PageSize {
		a := addr + Addr(off)
		l1, l2 := split(a)
		t := s.ownTable(l1)
		if old := t.ptes[l2].pg; old != nil {
			old.refs.Add(-1)
		}
		t.ptes[l2] = pte{perm: perm}
		s.markDirty(a)
	}
	return nil
}

// Free releases every table and page reference held by the space,
// leaving it empty. The kernel calls this when a space or snapshot is
// destroyed so that COW reference counts stay accurate.
func (s *Space) Free() {
	for i, t := range s.root {
		releaseTable(t)
		s.root[i] = nil
	}
	// Emptying the space invalidates both sides of any dirty-tracking
	// relationship it was part of: it no longer matches its last snapshot,
	// and if it was itself a snapshot it no longer matches its origin.
	s.clearDirty()
	s.snapID = 0
	s.snapOf = 0
}

// CopyStats reports the work done by a bulk page operation, used by the
// kernel's virtual-time cost model.
type CopyStats struct {
	TablesShared int // whole level-2 tables shared copy-on-write
	PagesShared  int // individual pages shared copy-on-write
	PagesZeroed  int // pages dropped or left lazy-zero
}

// CopyFrom logically copies the (page-aligned) range from src into s using
// copy-on-write sharing: no bytes move until someone writes. Destination
// permissions are inherited from the source. It implements the Copy option
// of Put/Get (with s and src being child/parent or vice versa) and, with
// the whole address range, the bulk "copy entire memory" fork idiom.
func (s *Space) CopyFrom(src *Space, srcAddr, dstAddr Addr, size uint64) (CopyStats, error) {
	var st CopyStats
	if err := rangeCheck(srcAddr, size); err != nil {
		return st, err
	}
	if err := rangeCheck(dstAddr, size); err != nil {
		return st, err
	}
	if s == src && srcAddr != dstAddr {
		return st, fmt.Errorf("vm: overlapping self-copy unsupported")
	}
	const tableSpan = tableEntries << l2Shift
	if srcAddr == dstAddr && srcAddr%tableSpan == 0 && size%tableSpan == 0 {
		// Fast path: whole level-2 tables, same offsets on both sides —
		// share the tables themselves, copying nothing.
		for l1 := int(srcAddr >> l1Shift); uint64(l1)<<l1Shift < uint64(srcAddr)+size; l1++ {
			srcT := src.root[l1]
			dstT := s.root[l1]
			if srcT == dstT {
				continue // already sharing (or both nil)
			}
			releaseTable(dstT)
			s.root[l1] = shareTable(srcT)
			s.markTableDirty(l1)
			if srcT != nil {
				st.TablesShared++
			}
		}
		return st, nil
	}
	for off := uint64(0); off < size; off += PageSize {
		se := src.entry(srcAddr + Addr(off))
		da := dstAddr + Addr(off)
		l1, l2 := split(da)
		t := s.ownTable(l1)
		if old := t.ptes[l2].pg; old != nil {
			old.refs.Add(-1)
		}
		if se.pg != nil {
			se.pg.refs.Add(1)
			st.PagesShared++
		} else {
			st.PagesZeroed++
		}
		t.ptes[l2] = pte{pg: se.pg, perm: se.perm}
		s.markDirty(da)
	}
	return st, nil
}

// Snapshot returns a COW clone of the entire space, used as the reference
// copy for a later Merge (the Snap option of Put). It shares whole level-2
// tables, so snapshotting costs O(mapped address space / 4 MiB).
//
// Snapshot also resets the space's dirty-page tracking: space and clone
// are identical at this instant, so the marks that accumulate afterwards
// describe exactly the divergence from this snapshot. The pair is stamped
// with an identity token that lets Merge recognize the relationship.
func (s *Space) Snapshot() (*Space, CopyStats) {
	snap := NewSpace()
	var st CopyStats
	for i, t := range s.root {
		if t == nil {
			continue
		}
		snap.root[i] = shareTable(t)
		st.TablesShared++
	}
	id := snapshotIDs.Add(1)
	s.snapID = id
	snap.snapOf = id
	if s.snapOf != 0 && s.anyDirty() {
		// s was itself a snapshot and has been written since it was
		// taken. clearDirty below erases that evidence, so drop s's own
		// snapshot identity too: it is no longer a faithful reference
		// for its origin, and merges against it must take the full walk.
		s.snapOf = 0
	}
	s.clearDirty()
	return snap, st
}

// writablePage returns the backing page for a, breaking table- and
// page-level COW sharing and allocating lazy-zero pages as needed. The
// caller must already have checked write permission. This is the funnel
// for every in-place data write, so it is also where pages are marked
// dirty for merge tracking.
func (s *Space) writablePage(a Addr) *page {
	s.markDirty(a)
	l1, l2 := split(a)
	t := s.ownTable(l1)
	e := t.ptes[l2]
	switch {
	case e.pg == nil:
		e.pg = newPage()
		t.ptes[l2] = e
	case e.pg.refs.Load() > 1:
		np := newPage()
		np.data = e.pg.data
		e.pg.refs.Add(-1)
		e.pg = np
		t.ptes[l2] = e
	}
	return e.pg
}

// Read copies len(p) bytes starting at addr into p. The range may cross
// page boundaries but every page touched must be mapped with PermR.
//
// The walk is a single cursor over the page tables: the level-2 table is
// resolved once per level-1 slot (1024 pages), not once per page, and the
// pte it yields serves both the permission check and the data access.
func (s *Space) Read(addr Addr, p []byte) error {
	curL1 := -1
	var t *table
	for len(p) > 0 {
		l1, l2 := split(addr)
		if l1 != curL1 {
			t, curL1 = s.root[l1], l1
		}
		var e pte
		if t != nil {
			e = t.ptes[l2]
		}
		if e.perm&PermR == 0 {
			return &AccessError{Addr: addr, Perm: e.perm}
		}
		off := int(addr & pageMask)
		n := min(PageSize-off, len(p))
		if e.pg == nil {
			clear(p[:n])
		} else {
			copy(p[:n], e.pg.data[off:off+n])
		}
		p = p[n:]
		addr += Addr(n)
	}
	return nil
}

// Write copies p into the space starting at addr. Every page touched must
// be mapped with PermW; COW sharing is broken as needed.
//
// Like Read this is one cursor walk: the pte that passes the permission
// check is the pte the write goes through — no second entry()/ownTable
// lookup per page — and the dirty bitmap is fetched once per level-1
// slot. Full-page-aligned stores that would need a COW break instead
// install a fresh page initialized straight from the incoming bytes,
// skipping the read-copy of data that is about to be overwritten.
func (s *Space) Write(addr Addr, p []byte) error {
	curL1 := -1
	var t *table      // s.root[curL1], privately owned once written through
	var db *dirtyBits // dirty bitmap for curL1
	for len(p) > 0 {
		l1, l2 := split(addr)
		if l1 != curL1 {
			t, curL1, db = s.root[l1], l1, nil
		}
		var e pte
		if t != nil {
			e = t.ptes[l2]
		}
		if e.perm&PermW == 0 {
			return &AccessError{Addr: addr, Write: true, Perm: e.perm}
		}
		if t == nil || t.refs.Load() > 1 {
			t = s.ownTable(l1)
			e = t.ptes[l2]
		}
		if db == nil {
			db = s.dirtyTable(l1)
		}
		db[l2>>6] |= 1 << (uint(l2) & 63)
		off := int(addr & pageMask)
		n := min(PageSize-off, len(p))
		pg := e.pg
		if n == PageSize && (pg == nil || pg.refs.Load() > 1) {
			// Whole page replaced: install a fresh page holding the
			// incoming bytes, with no read-copy COW break.
			if pg != nil {
				pg.refs.Add(-1)
			}
			t.ptes[l2] = pte{pg: newPageFrom(p[:PageSize]), perm: e.perm}
		} else {
			switch {
			case pg == nil:
				pg = newPage()
				t.ptes[l2] = pte{pg: pg, perm: e.perm}
			case pg.refs.Load() > 1:
				np := newPage()
				np.data = pg.data
				pg.refs.Add(-1)
				pg = np
				t.ptes[l2] = pte{pg: pg, perm: e.perm}
			}
			copy(pg.data[off:off+n], p[:n])
		}
		p = p[n:]
		addr += Addr(n)
	}
	return nil
}

// ReadU32 reads a little-endian uint32 at addr.
func (s *Space) ReadU32(addr Addr) (uint32, error) {
	var b [4]byte
	if err := s.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// WriteU32 writes a little-endian uint32 at addr.
func (s *Space) WriteU32(addr Addr, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return s.Write(addr, b[:])
}

// ReadU64 reads a little-endian uint64 at addr.
func (s *Space) ReadU64(addr Addr) (uint64, error) {
	var b [8]byte
	if err := s.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// WriteU64 writes a little-endian uint64 at addr.
func (s *Space) WriteU64(addr Addr, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return s.Write(addr, b[:])
}

// ReadF64 reads a float64 at addr.
func (s *Space) ReadF64(addr Addr) (float64, error) {
	v, err := s.ReadU64(addr)
	return math.Float64frombits(v), err
}

// WriteF64 writes a float64 at addr.
func (s *Space) WriteF64(addr Addr, v float64) error {
	return s.WriteU64(addr, math.Float64bits(v))
}

// ReadU32s bulk-reads len(dst) little-endian uint32s starting at addr.
func (s *Space) ReadU32s(addr Addr, dst []uint32) error {
	buf := make([]byte, 4*len(dst))
	if err := s.Read(addr, buf); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint32(buf[4*i:])
	}
	return nil
}

// WriteU32s bulk-writes src as little-endian uint32s starting at addr.
func (s *Space) WriteU32s(addr Addr, src []uint32) error {
	buf := make([]byte, 4*len(src))
	for i, v := range src {
		binary.LittleEndian.PutUint32(buf[4*i:], v)
	}
	return s.Write(addr, buf)
}

// ReadF64s bulk-reads len(dst) float64s starting at addr.
func (s *Space) ReadF64s(addr Addr, dst []float64) error {
	buf := make([]byte, 8*len(dst))
	if err := s.Read(addr, buf); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return nil
}

// WriteF64s bulk-writes src as float64s starting at addr.
func (s *Space) WriteF64s(addr Addr, src []float64) error {
	buf := make([]byte, 8*len(src))
	for i, v := range src {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return s.Write(addr, buf)
}

// MappedPages counts mapped pages (useful in tests and for cost accounting).
func (s *Space) MappedPages() int {
	n := 0
	for _, t := range s.root {
		if t == nil {
			continue
		}
		for j := range t.ptes {
			if t.ptes[j].mapped() {
				n++
			}
		}
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
