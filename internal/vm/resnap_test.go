package vm

import "testing"

// fillPages maps n pages RW and writes a deterministic pattern.
func fillPages(t *testing.T, s *Space, n int, salt byte) {
	t.Helper()
	if err := s.SetPerm(0, uint64(n)*PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	for p := 0; p < n; p++ {
		for i := range buf {
			buf[i] = byte(i) ^ byte(p) ^ salt
		}
		if err := s.Write(Addr(p)*PageSize, buf); err != nil {
			t.Fatal(err)
		}
	}
}

// readAll returns the first n pages of a space as one slice.
func readAll(t *testing.T, s *Space, n int) []byte {
	t.Helper()
	out := make([]byte, n*PageSize)
	if err := s.Read(0, out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCleanSinceTracksMutation(t *testing.T) {
	s := NewSpace()
	fillPages(t, s, 4, 0)
	snap, _ := s.Snapshot()
	if !s.CleanSince(snap) {
		t.Fatal("freshly snapshotted space not clean")
	}
	if err := s.WriteU32(100, 42); err != nil {
		t.Fatal(err)
	}
	if s.CleanSince(snap) {
		t.Fatal("space reported clean after a write")
	}
	snap2, _ := s.Resnap(snap)
	if !s.CleanSince(snap2) {
		t.Fatal("space not clean immediately after Resnap")
	}
	if s.CleanSince(NewSpace()) {
		t.Fatal("clean against an unrelated space")
	}
	if s.CleanSince(nil) {
		t.Fatal("clean against nil")
	}
}

func TestResnapMatchesFreshSnapshot(t *testing.T) {
	// Two identical child spaces diverge identically from their parent;
	// one maintains its snapshot with Resnap, the other from scratch.
	// Merging each into identical parents must agree on bytes and on
	// every semantic stat.
	const pages = 8
	parent := NewSpace()
	fillPages(t, parent, pages, 0)

	mk := func() (*Space, *Space) {
		c := NewSpace()
		c.CopyAllFrom(parent)
		snap, _ := c.Snapshot()
		return c, snap
	}
	a, aSnap := mk()
	b, bSnap := mk()

	mutate := func(s *Space, round byte) {
		if err := s.Write(2*PageSize+17, []byte{0xA0 ^ round, round}); err != nil {
			t.Fatal(err)
		}
		if err := s.WriteU64(5*PageSize, uint64(round)*977); err != nil {
			t.Fatal(err)
		}
	}

	for round := byte(1); round <= 3; round++ {
		mutate(a, round)
		mutate(b, round)
		// a: incremental; b: from-scratch (the old behavior).
		var stA, stB CopyStats
		aSnap, stA = a.Resnap(aSnap)
		bSnap.Free()
		bSnap, stB = b.Snapshot()
		if stA.TablesShared > stB.TablesShared {
			t.Fatalf("round %d: incremental resnap shared %d tables, fresh %d",
				round, stA.TablesShared, stB.TablesShared)
		}
		mutate(a, round+100)
		mutate(b, round+100)

		dstA := NewSpace()
		dstA.CopyAllFrom(parent)
		dstB := NewSpace()
		dstB.CopyAllFrom(parent)
		mstA, errA := Merge(dstA, a, aSnap, 0, pages*PageSize)
		mstB, errB := Merge(dstB, b, bSnap, 0, pages*PageSize)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("round %d: merge errors differ: %v vs %v", round, errA, errB)
		}
		if mstA.TablesAdopted != mstB.TablesAdopted || mstA.PagesAdopted != mstB.PagesAdopted ||
			mstA.PagesCompared != mstB.PagesCompared || mstA.BytesMerged != mstB.BytesMerged {
			t.Fatalf("round %d: merge stats diverge: %+v vs %+v", round, mstA, mstB)
		}
		gotA, gotB := readAll(t, dstA, pages), readAll(t, dstB, pages)
		for i := range gotA {
			if gotA[i] != gotB[i] {
				t.Fatalf("round %d: merged byte %#x differs: %#x vs %#x", round, i, gotA[i], gotB[i])
			}
		}
		dstA.Free()
		dstB.Free()
		// Roll the reference forward for the next round on both sides.
		aSnap, _ = a.Resnap(aSnap)
		bSnap.Free()
		bSnap, _ = b.Snapshot()
	}
}

func TestResnapNoopIsFree(t *testing.T) {
	s := NewSpace()
	fillPages(t, s, 4, 7)
	snap, first := s.Snapshot()
	if first.TablesShared == 0 {
		t.Fatal("first snapshot shared no tables")
	}
	snap2, st := s.Resnap(snap)
	if snap2 != snap {
		t.Fatal("no-op Resnap did not reuse the existing snapshot")
	}
	if st != (CopyStats{}) {
		t.Fatalf("no-op Resnap charged %+v", st)
	}
	// The refreshed pair must still support dirty-guided merges.
	if !s.CleanSince(snap2) {
		t.Fatal("pair not clean after no-op Resnap")
	}
}

func TestResnapFallsBackAfterPrecisionLoss(t *testing.T) {
	s := NewSpace()
	fillPages(t, s, 4, 3)
	snap, _ := s.Snapshot()
	other := NewSpace()
	fillPages(t, other, 4, 9)
	s.CopyAllFrom(other) // marks everything dirty: proof unavailable
	snap2, st := s.Resnap(snap)
	if st.TablesShared == 0 {
		t.Fatal("fallback resnap shared no tables")
	}
	got := readAll(t, snap2, 4)
	want := readAll(t, s, 4)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("fallback snapshot byte %#x = %#x, want %#x", i, got[i], want[i])
		}
	}
	other.Free()
}

func TestResnapGuidesMergeAfterUpdate(t *testing.T) {
	// After a Resnap, the dirty-guided merge must scan O(dirtied) ptes,
	// proving the identity restamp keeps the guidance proof alive.
	const pages = 512 // two level-2 tables' worth if spread out
	s := NewSpace()
	fillPages(t, s, pages, 1)
	snap, _ := s.Snapshot()
	for round := 0; round < 3; round++ {
		snap, _ = s.Resnap(snap)
		if err := s.WriteU32(Addr(round)*PageSize+64, uint32(round)+1); err != nil {
			t.Fatal(err)
		}
		dst := NewSpace()
		dst.CopyAllFrom(snap) // dst == ref: merge adopts the one changed page
		st, err := MergeEx(dst, s, snap, 0, pages*PageSize, MergeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if st.PtesScanned > 8 {
			t.Fatalf("round %d: guided merge scanned %d ptes (want O(dirtied))", round, st.PtesScanned)
		}
		dst.Free()
	}
}

func TestResnapRepeatedRoundsStayCoherent(t *testing.T) {
	// Simulates the dsched steady state: copy from master, resnap, write,
	// merge back, many rounds; contents must track a plain model.
	const pages = 16
	master := NewSpace()
	fillPages(t, master, pages, 0)
	child := NewSpace()
	child.CopyAllFrom(master)
	var snap *Space
	snap, _ = child.Snapshot()
	model := readAll(t, master, pages)

	for round := 0; round < 10; round++ {
		// Resync: copy master into child, refresh the snapshot.
		if _, err := child.CopyFrom(master, 0, 0, pages*PageSize); err != nil {
			t.Fatal(err)
		}
		snap, _ = child.Resnap(snap)
		// Quantum: the child writes a couple of bytes.
		a1 := Addr(round%pages)*PageSize + Addr(round)
		if err := child.Write(a1, []byte{byte(0x40 + round)}); err != nil {
			t.Fatal(err)
		}
		model[int(a1)] = byte(0x40 + round)
		// Commit: merge child into master.
		if _, err := MergeWith(master, child, snap, 0, pages*PageSize, MergeLastWriter); err != nil {
			t.Fatal(err)
		}
		got := readAll(t, master, pages)
		for i := range got {
			if got[i] != model[i] {
				t.Fatalf("round %d: master byte %#x = %#x, want %#x", round, i, got[i], model[i])
			}
		}
	}
}
