package baseline

import (
	"sync"

	"repro/internal/kernel"
	"repro/internal/workload"
)

// Distributed-memory equivalents of the cluster benchmarks (Figure 12):
// a master endpoint ships explicit work and data to one worker per node
// over the simulated network, workers compute on private copies, and
// results travel back as messages — the style of the paper's Linux
// baselines, which used remote shells (md5) and explicit TCP transfers
// (matmult). Virtual time is tracked by simnet with the same cost
// constants charged to Determinator's migration protocol.

// DistResult carries a distributed run's answer and makespan.
type DistResult struct {
	Value uint64
	VT    int64 // virtual completion time at the master
}

// md5WorkTicks mirrors the Determinator version's per-hash accounting.
const md5TicksPerHash = 680

// MD5Dist runs the brute-force search over nodes workers with explicit
// messaging. Only a tiny work descriptor crosses the wire, so it scales
// almost linearly — as the paper's md5 baselines do.
func MD5Dist(nodes, size int, cost kernel.CostModel) DistResult {
	net := newSimnet(nodes+1, cost)
	const master = 0
	want := workload.MD5Candidate(workload.MD5Target(size))
	results := make([]uint64, nodes)
	var wg sync.WaitGroup
	for w := 0; w < nodes; w++ {
		w := w
		net.send(master, w+1, 16) // work descriptor: [lo, hi)
		wg.Add(1)
		go func() {
			defer wg.Done()
			lo, hi := stripe(size, nodes, w)
			var found uint64
			for v := uint64(lo); v < uint64(hi); v++ {
				if workload.MD5Candidate(v) == want {
					found = v + 1
				}
			}
			net.compute(w+1, int64(hi-lo)*md5TicksPerHash)
			results[w] = found
			net.send(w+1, master, 8) // result
		}()
	}
	wg.Wait()
	var found uint64
	for _, v := range results {
		if v != 0 {
			found = v - 1
		}
	}
	return DistResult{Value: found, VT: net.now(master)}
}

// matmulTicksPerMAC mirrors the Determinator version's accounting.
const matmulTicksPerMAC = 4

// MatmultDist runs the multiply over nodes workers: the master ships each
// worker its stripe of A plus all of B (the explicit data transfer the
// paper's TCP-based baseline performs), and receives C stripes back.
func MatmultDist(nodes, n int, cost kernel.CostModel) DistResult {
	net := newSimnet(nodes+1, cost)
	const master = 0
	a := workload.GenU32(n*n, 0xA)
	b := workload.GenU32(n*n, 0xB)
	c := make([]uint32, n*n)
	var wg sync.WaitGroup
	for w := 0; w < nodes; w++ {
		w := w
		rlo, rhi := stripe(n, nodes, w)
		if rlo == rhi {
			continue
		}
		// Stripe of A plus all of B, 4 bytes per word.
		net.send(master, w+1, 4*((rhi-rlo)*n+n*n))
		wg.Add(1)
		go func() {
			defer wg.Done()
			av := make([]uint32, (rhi-rlo)*n)
			copy(av, a[rlo*n:rhi*n])
			bv := make([]uint32, n*n)
			copy(bv, b)
			out := workload.MatmultRowsRef(av, bv, n, rlo, rhi)
			net.compute(w+1, int64(rhi-rlo)*int64(n)*int64(n)*matmulTicksPerMAC)
			copy(c[rlo*n:], out)
			net.send(w+1, master, 4*(rhi-rlo)*n)
		}()
	}
	wg.Wait()
	return DistResult{Value: workload.ChecksumU32(c), VT: net.now(master)}
}

// StencilDist is the distributed-memory equivalent of the cluster
// stencil (workload.ClusterStencil): one worker endpoint per node owns
// its block of thread stripes privately; every phase the master gathers
// each worker's boundary words, broadcasts the combined vector, and the
// workers compute their stripes locally. Only boundaries and work
// descriptors cross the wire — the explicit-messaging program a
// distributed-systems programmer would write by hand — making it the
// fairness baseline for the sharded barrier tree, which must approach
// this traffic shape while still providing the shared-memory model.
func StencilDist(nodes, threads, pagesPerThread, phases int, cost kernel.CostModel) int64 {
	net := newSimnet(nodes+1, cost)
	const master = 0
	// Stripe ownership mirrors the deterministic side's blocked
	// placement exactly: thread i lives on node i*nodes/threads, so an
	// uneven division assigns the same per-node stripe counts here.
	perNode := make([]int, nodes)
	for i := 0; i < threads; i++ {
		perNode[i*nodes/threads]++
	}
	stripeBytes := pagesPerThread * 4096
	for p := 0; p < phases; p++ {
		// Masters' broadcast of the combined boundary vector...
		for w := 0; w < nodes; w++ {
			net.send(master, w+1, 8*threads)
		}
		// ...each worker recomputes its stripes (same tick accounting as
		// the deterministic version: one write per 8 bytes)...
		for w := 0; w < nodes; w++ {
			net.compute(w+1, int64(perNode[w])*int64(stripeBytes)/8)
		}
		// ...and returns its new boundary words.
		for w := 0; w < nodes; w++ {
			net.send(w+1, master, 8*perNode[w])
		}
	}
	// Final gather of the stripes themselves for the result checksum.
	for w := 0; w < nodes; w++ {
		net.send(w+1, master, perNode[w]*stripeBytes)
	}
	return net.now(master)
}
