package baseline

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/workload"
)

// The cross-world equivalence tests: every nondeterministic baseline must
// produce the same checksum as the sequential reference (and therefore,
// via workload's own tests, the same as the Determinator versions).

func TestMD5MatchesSequential(t *testing.T) {
	const size = 4096
	want := workload.MD5Seq(size)
	for _, threads := range []int{1, 2, 5} {
		if got := MD5(threads, size); got != want {
			t.Errorf("threads=%d: %d, want %d", threads, got, want)
		}
	}
}

func TestMatmultMatchesSequential(t *testing.T) {
	const n = 48
	want := workload.MatmultSeq(n)
	for _, threads := range []int{1, 2, 4} {
		if got := Matmult(threads, n); got != want {
			t.Errorf("threads=%d: %d, want %d", threads, got, want)
		}
	}
}

func TestQsortMatchesSequential(t *testing.T) {
	const size = 10000
	want := workload.QsortSeqFull(size)
	for _, threads := range []int{1, 2, 8} {
		if got := Qsort(threads, size); got != want {
			t.Errorf("threads=%d: %d, want %d", threads, got, want)
		}
	}
}

func TestBlackscholesMatchesSequential(t *testing.T) {
	const size = 3000
	want := workload.BlackscholesSeq(size)
	for _, threads := range []int{1, 3} {
		if got := Blackscholes(threads, size); got != want {
			t.Errorf("threads=%d: %d, want %d", threads, got, want)
		}
	}
}

func TestFFTMatchesSequential(t *testing.T) {
	const size = 1024
	want := workload.FFTSeq(size)
	for _, threads := range []int{1, 2, 4} {
		if got := FFT(threads, size); got != want {
			t.Errorf("threads=%d: %d, want %d", threads, got, want)
		}
	}
}

func TestLUMatchesSequential(t *testing.T) {
	const n = 96
	want := workload.LUSeq(n)
	for _, threads := range []int{1, 2, 4} {
		if got := LU(threads, n); got != want {
			t.Errorf("threads=%d: %d, want %d", threads, got, want)
		}
	}
}

func TestBaselinesCoverAllSpecs(t *testing.T) {
	bs := Baselines()
	for _, s := range workload.Specs() {
		if bs[s.Name] == nil {
			t.Errorf("no baseline for %q", s.Name)
		}
	}
}

func TestMD5DistMatchesAndScales(t *testing.T) {
	const size = 4096
	want := workload.MD5Seq(size)
	cost := kernel.DefaultCostModel()
	vt1 := MD5Dist(1, size, cost)
	vt4 := MD5Dist(4, size, cost)
	if vt1.Value != want || vt4.Value != want {
		t.Errorf("values %d/%d, want %d", vt1.Value, vt4.Value, want)
	}
	if vt4.VT >= vt1.VT {
		t.Errorf("4 nodes (%d) not faster than 1 (%d)", vt4.VT, vt1.VT)
	}
}

func TestMatmultDistMatches(t *testing.T) {
	const n = 32
	want := workload.MatmultSeq(n)
	cost := kernel.DefaultCostModel()
	for _, nodes := range []int{1, 2, 4} {
		r := MatmultDist(nodes, n, cost)
		if r.Value != want {
			t.Errorf("nodes=%d: %d, want %d", nodes, r.Value, want)
		}
		if r.VT <= 0 {
			t.Errorf("nodes=%d: nonpositive VT %d", nodes, r.VT)
		}
	}
}

func TestSimnetCausality(t *testing.T) {
	net := newSimnet(3, kernel.DefaultCostModel())
	net.compute(1, 1000)
	net.send(1, 2, 4096)
	// The receiver's clock must be at least the sender's at send time.
	if net.now(2) <= net.now(1)-1000 {
		t.Errorf("delivery time %d ignores sender clock %d", net.now(2), net.now(1))
	}
	before := net.now(2)
	net.send(0, 2, 64) // from an idle sender: must not move receiver backwards
	if net.now(2) < before {
		t.Error("receiver clock moved backwards")
	}
}
