// Package baseline implements the comparison systems of the paper's
// evaluation: the nondeterministic shared-memory versions of every
// benchmark ("pthreads on Linux", §6.2) as plain goroutines over shared
// slices, and distributed-memory message-passing equivalents of the
// cluster benchmarks (§6.3, Figure 12).
//
// The baselines compute byte-identical results to the Determinator
// versions in package workload — same generators, same kernels, same
// operation order per element — so the test suite can cross-check all
// three worlds (sequential, deterministic, nondeterministic).
package baseline

import (
	"sync"

	"repro/internal/workload"
)

// MD5 is the shared-memory nondeterministic search.
func MD5(threads, size int) uint64 {
	want := workload.MD5Candidate(workload.MD5Target(size))
	results := make([]uint64, threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			lo, hi := stripe(size, threads, t)
			for v := uint64(lo); v < uint64(hi); v++ {
				if workload.MD5Candidate(v) == want {
					results[t] = v + 1
				}
			}
		}()
	}
	wg.Wait()
	var found uint64
	for _, v := range results {
		if v != 0 {
			found = v - 1
		}
	}
	return found
}

// Matmult is the shared-memory multiply: goroutines write disjoint
// stripes of C in place.
func Matmult(threads, n int) uint64 {
	a := workload.GenU32(n*n, 0xA)
	b := workload.GenU32(n*n, 0xB)
	c := make([]uint32, n*n)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			rlo, rhi := stripe(n, threads, t)
			row := make([]uint32, n)
			for i := rlo; i < rhi; i++ {
				clear(row)
				for k := 0; k < n; k++ {
					aik := a[i*n+k]
					brow := b[k*n : k*n+n]
					for j, bkj := range brow {
						row[j] += aik * bkj
					}
				}
				copy(c[i*n:], row)
			}
		}()
	}
	wg.Wait()
	return workload.ChecksumU32(c)
}

// Qsort is the shared-memory recursive parallel quicksort.
func Qsort(threads, size int) uint64 {
	a := workload.GenU32(size, 0x50F7)
	depth := 0
	for 1<<depth < threads {
		depth++
	}
	qsortPar(a, depth)
	return workload.ChecksumU32(a)
}

func qsortPar(a []uint32, depth int) {
	if len(a) < 64 || depth == 0 {
		workload.QsortSeqRef(a)
		return
	}
	p := workload.QsortPartitionRef(a)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); qsortPar(a[:p], depth-1) }()
	go func() { defer wg.Done(); qsortPar(a[p+1:], depth-1) }()
	wg.Wait()
}

// Blackscholes is the shared-memory portfolio pricing.
func Blackscholes(threads, size int) uint64 {
	opts := workload.GenOptions(size)
	prices := make([]float64, size)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			lo, hi := stripe(size, threads, t)
			for i := lo; i < hi; i++ {
				prices[i] = workload.Price(opts[i])
			}
		}()
	}
	wg.Wait()
	return workload.ChecksumF64(prices)
}

// FFT is the shared-memory transform with a WaitGroup barrier per stage.
func FFT(threads, size int) uint64 {
	data := workload.FFTInput(size)
	nb := size / 2
	for half := 1; half < size; half *= 2 {
		updates := make([][]float64, threads)
		var wg sync.WaitGroup
		for t := 0; t < threads; t++ {
			t := t
			wg.Add(1)
			go func() {
				defer wg.Done()
				blo, bhi := stripe(nb, threads, t)
				updates[t] = workload.FFTButterfliesRef(data, half, blo, bhi)
			}()
		}
		wg.Wait()
		for t := 0; t < threads; t++ {
			blo, bhi := stripe(nb, threads, t)
			workload.FFTApplyRef(data, half, blo, bhi, updates[t])
		}
	}
	return workload.ChecksumF64(data)
}

// LU is the shared-memory blocked factorization: same block kernels and
// elimination order as the Determinator versions, barriers via
// WaitGroups. The layout distinction matters little without page-grained
// isolation, so one implementation serves as the baseline for both
// lu_cont and lu_noncont, as the Linux pthreads baselines effectively do
// in the paper.
func LU(threads, n int) uint64 {
	const bs = workload.LUBlockSize
	if n%bs != 0 {
		panic("baseline: lu size must be a multiple of the block size")
	}
	a := workload.LUGenRef(n)
	nb := n / bs
	get := func(bi, bj int, buf []float64) {
		for r := 0; r < bs; r++ {
			copy(buf[r*bs:], a[(bi*bs+r)*n+bj*bs:][:bs])
		}
	}
	put := func(bi, bj int, buf []float64) {
		for r := 0; r < bs; r++ {
			copy(a[(bi*bs+r)*n+bj*bs:][:bs], buf[r*bs:])
		}
	}
	parallel := func(blocks [][2]int, fn func(b [2]int)) {
		if len(blocks) == 0 {
			return
		}
		w := threads
		if w > len(blocks) {
			w = len(blocks)
		}
		var wg sync.WaitGroup
		for t := 0; t < w; t++ {
			t := t
			wg.Add(1)
			go func() {
				defer wg.Done()
				lo, hi := stripe(len(blocks), w, t)
				for _, b := range blocks[lo:hi] {
					fn(b)
				}
			}()
		}
		wg.Wait()
	}
	diag := make([]float64, bs*bs)
	for k := 0; k < nb; k++ {
		get(k, k, diag)
		workload.LUFactorDiagRef(diag)
		put(k, k, diag)

		panels := make([][2]int, 0, 2*(nb-k-1))
		for j := k + 1; j < nb; j++ {
			panels = append(panels, [2]int{k, j}, [2]int{j, k})
		}
		k := k
		parallel(panels, func(b [2]int) {
			blk := make([]float64, bs*bs)
			d := make([]float64, bs*bs)
			get(k, k, d)
			get(b[0], b[1], blk)
			if b[0] == k {
				workload.LUSolveRowRef(d, blk)
			} else {
				workload.LUSolveColRef(d, blk)
			}
			put(b[0], b[1], blk)
		})

		var trail [][2]int
		for i := k + 1; i < nb; i++ {
			for j := k + 1; j < nb; j++ {
				trail = append(trail, [2]int{i, j})
			}
		}
		parallel(trail, func(b [2]int) {
			dst := make([]float64, bs*bs)
			l := make([]float64, bs*bs)
			u := make([]float64, bs*bs)
			get(b[0], b[1], dst)
			get(b[0], k, l)
			get(k, b[1], u)
			workload.LUUpdateRef(dst, l, u)
			put(b[0], b[1], dst)
		})
	}
	return workload.ChecksumF64(a)
}

// Baselines returns the baseline entry points in Figure 7 order, aligned
// with workload.Specs().
func Baselines() map[string]func(threads, size int) uint64 {
	return map[string]func(threads, size int) uint64{
		"md5":          MD5,
		"matmult":      Matmult,
		"qsort":        Qsort,
		"blackscholes": Blackscholes,
		"fft":          FFT,
		"lu_cont":      LU,
		"lu_noncont":   LU,
	}
}

func stripe(total, nth, id int) (lo, hi int) {
	return id * total / nth, (id + 1) * total / nth
}
