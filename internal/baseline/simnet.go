package baseline

import (
	"sync"

	"repro/internal/kernel"
)

// simnet is a miniature discrete-virtual-time network for the
// distributed-memory baselines of Figure 12: endpoints carry virtual
// clocks, computation advances the local clock, and message delivery
// synchronizes the receiver's clock with the sender's plus wire costs.
// It deliberately reuses the kernel's CostModel constants so the
// message-passing world and the migrating-spaces world are charged the
// same prices per byte and per round trip.
type simnet struct {
	cost kernel.CostModel
	mu   sync.Mutex
	clk  []int64 // virtual clock per endpoint
}

func newSimnet(endpoints int, cost kernel.CostModel) *simnet {
	return &simnet{cost: cost, clk: make([]int64, endpoints)}
}

// compute advances an endpoint's clock by ticks of local work.
func (s *simnet) compute(ep int, ticks int64) {
	s.mu.Lock()
	s.clk[ep] += ticks
	s.mu.Unlock()
}

// send models a message of the given payload size from one endpoint to
// another: the sender is busy for the serialization time, and the
// receiver cannot proceed past the delivery time. The base charge is
// one round trip (MigrateMsg) plus per-byte transfer, as before
// batching existed; a payload spanning more than one batch window
// (CostModel.BatchPages pages) additionally pays the kernel protocol's
// per-batch framing for each batch beyond the first, so large transfers
// are charged the same batch overheads in both worlds.
func (s *simnet) send(from, to int, bytes int) {
	c := s.cost
	wire := c.MigrateMsg + int64(bytes)*c.PageTransfer/4096
	if c.BatchPages > 1 {
		pages := (bytes + 4095) / 4096
		if batches := (pages + c.BatchPages - 1) / c.BatchPages; batches > 1 {
			wire += int64(batches-1) * c.BatchMsgCost()
		}
	}
	if c.TCPLike {
		wire += c.TCPExtra
	}
	s.mu.Lock()
	s.clk[from] += wire / 2 // sender-side serialization
	deliver := s.clk[from] + wire/2
	if deliver > s.clk[to] {
		s.clk[to] = deliver
	}
	s.mu.Unlock()
}

// now reads an endpoint's clock.
func (s *simnet) now(ep int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clk[ep]
}
