// Package imgenc holds the bounds-checked cursor reader shared by the
// checkpoint-image decoders (vm's forest images, kernel's machine
// images, the session images of the root package). Each layer keeps its
// own typed error; the reader takes a constructor so a decoding failure
// surfaces as that layer's error with the offset it happened at.
package imgenc

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Reader is a sticky-error cursor over an image payload: the first
// failure (truncation, bad count) is recorded and every later read
// returns zero values, so decoders can be written straight-line and
// check Err once per section.
type Reader struct {
	B    []byte
	Off  int
	Err  error
	Wrap func(off int, msg string) error // builds the layer's typed error
}

// Failf records a decoding failure at the current offset (first one wins).
func (r *Reader) Failf(format string, args ...any) {
	if r.Err == nil {
		r.Err = r.Wrap(r.Off, fmt.Sprintf(format, args...))
	}
}

// Take consumes n bytes, failing on truncation.
func (r *Reader) Take(n int) []byte {
	if r.Err != nil {
		return nil
	}
	if n < 0 || r.Off+n > len(r.B) {
		r.Failf("truncated (%d bytes wanted, %d left)", n, len(r.B)-r.Off)
		return nil
	}
	p := r.B[r.Off : r.Off+n]
	r.Off += n
	return p
}

func (r *Reader) U8() byte {
	p := r.Take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *Reader) U16() uint16 {
	p := r.Take(2)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}

func (r *Reader) U32() uint32 {
	p := r.Take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (r *Reader) U64() uint64 {
	p := r.Take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (r *Reader) I64() int64 { return int64(r.U64()) }

// Str reads a u32-length-prefixed string.
func (r *Reader) Str() string {
	n := int(r.U32())
	if r.Err == nil && n > len(r.B)-r.Off {
		r.Failf("string length %d exceeds image", n)
		return ""
	}
	return string(r.Take(n))
}

// Remaining reports the bytes left after the cursor.
func (r *Reader) Remaining() int { return len(r.B) - r.Off }

// Seal appends the CRC32 trailer that Open verifies.
func Seal(b []byte) []byte {
	return append(b, binary.LittleEndian.AppendUint32(nil, crc32.ChecksumIEEE(b))...)
}

// Open verifies an image's framing — length, CRC32 trailer, magic and
// version byte — and returns a Reader positioned just past the header.
// Framing problems surface through wrap (the layer's corrupt-image
// error); an unexpected version goes through badVersion so each layer
// keeps its typed version error. The magic is a (4-byte) string so
// every layer can declare it const — package-level mutable state is
// banned in the deterministic packages (detlint globalmut).
func Open(data []byte, magic string, version byte, wrap func(off int, msg string) error,
	badVersion func(v byte) error) (*Reader, error) {
	if len(data) < len(magic)+1+4 {
		return nil, wrap(0, "short image")
	}
	payload, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(trailer) {
		return nil, wrap(len(payload), "checksum mismatch (corrupt image)")
	}
	r := &Reader{B: payload, Wrap: wrap}
	if got := r.Take(len(magic)); r.Err == nil && string(got) != magic {
		return nil, wrap(0, "bad magic")
	}
	if v := r.U8(); r.Err == nil && v != version {
		return nil, badVersion(v)
	}
	if r.Err != nil {
		return nil, r.Err
	}
	return r, nil
}
