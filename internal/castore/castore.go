// Package castore is a content-addressed chunk store: blobs keyed by
// the SHA-256 of their (uncompressed) bytes. It is the storage layer the
// chunked checkpoint images stand on — deterministic execution makes a
// checkpoint a pure function of history, so checkpoints of one session
// over time, and of sibling sessions forked from a common parent, are
// natural delta chains: identical pages and tables hash to identical
// keys and are stored exactly once, however many images reference them.
//
// The package deliberately knows nothing about checkpoint formats. Two
// object shapes exist at this layer:
//
//   - leaf blobs: raw bytes (pages, level-2 table chunks, metadata
//     sections), stored under their content key;
//   - node objects (node.go): a framed reference list — node children
//     and leaf children by key — plus an opaque payload. Checkpoint
//     roots and manifests are nodes, which is what lets Collect (gc.go)
//     walk reachability without parsing any layer-specific format.
//
// Both backends (mem.go, dir.go) transparently compress blobs with the
// chunk codec (codec.go): all-zero blobs collapse to a few bytes and
// sparse pages flate down to a fraction of their raw size. Keys are
// always over the uncompressed bytes, so deduplication is independent of
// the codec, and Get re-hashes what it decoded — a corrupted or
// truncated stored blob surfaces as *ChunkHashError, never as silently
// wrong bytes.
package castore

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// KeySize is the size of a chunk key in bytes (SHA-256).
const KeySize = 32

// Key is the content address of a chunk: the SHA-256 of its
// uncompressed bytes.
type Key [KeySize]byte

// KeyOf returns the content key of b.
func KeyOf(b []byte) Key { return sha256.Sum256(b) }

// String returns the key in hex, the form used for on-disk file names.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// IsZero reports whether k is the zero key (used as "no reference").
func (k Key) IsZero() bool { return k == Key{} }

// ParseKey parses a hex key string.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != KeySize {
		return k, fmt.Errorf("castore: bad key %q", s)
	}
	copy(k[:], b)
	return k, nil
}

// BlobInfo describes one stored chunk.
type BlobInfo struct {
	Size       int // uncompressed (logical) bytes
	StoredSize int // bytes the backend actually holds after the codec
}

// ChunkMissingError reports a Get or Stat of a key the store does not
// hold — a truncated chunk chain, typically from an incomplete copy or
// an over-eager garbage collection.
type ChunkMissingError struct {
	Key Key
}

func (e *ChunkMissingError) Error() string {
	return fmt.Sprintf("castore: chunk %s missing", e.Key)
}

// ChunkHashError reports a chunk whose bytes do not hash to the key it
// was stored or referenced under: on-disk corruption, or a mismatched
// key reference inside an image.
type ChunkHashError struct {
	Key Key // the key the chunk was expected under
	Got Key // the key its bytes actually hash to
}

func (e *ChunkHashError) Error() string {
	return fmt.Sprintf("castore: chunk %s corrupt (content hashes to %s)", e.Key, e.Got)
}

// BlobStore is the minimal content-addressed store interface the
// checkpoint layers write against.
//
// Put stores bytes under key. The caller vouches that key == KeyOf(b);
// implementations may verify and must be idempotent — re-putting an
// existing key is a no-op (and is how deduplication manifests: the
// second checkpoint of a mostly-unchanged session re-puts mostly
// existing keys).
//
// Get returns the uncompressed bytes of a chunk, verifying their hash:
// a missing key returns *ChunkMissingError, corrupt bytes return
// *ChunkHashError.
type BlobStore interface {
	Put(key Key, b []byte) error
	Get(key Key) ([]byte, error)
	Has(key Key) (bool, error)
	Stat(key Key) (BlobInfo, error)
}

// StoreStats aggregates a backend's contents and traffic.
type StoreStats struct {
	Chunks      int   // distinct keys held
	LogicalSize int64 // sum of uncompressed chunk sizes
	StoredSize  int64 // sum of codec-compressed sizes actually held
	Puts        int64 // Put calls observed
	DupPuts     int64 // Puts of already-present keys (deduplicated)
	PutBytes    int64 // logical bytes offered across all Puts
}

// Store is the full backend interface: a BlobStore that can also
// enumerate, delete and summarize its contents — what garbage
// collection (Collect) and the bench harness need.
type Store interface {
	BlobStore
	// Keys calls fn for every chunk held, in ascending key order. The
	// order is part of the contract: anything built from an enumeration
	// (GC sweeps, listings, replication diffs) must be a pure function
	// of store content, never of backend internals or map iteration.
	// fn returning an error stops the walk and returns that error.
	Keys(fn func(Key, BlobInfo) error) error
	// Delete removes a chunk. Deleting an absent key is a no-op.
	Delete(key Key) error
	// Stats summarizes the store's contents and Put traffic.
	Stats() (StoreStats, error)
}

// verifyGet re-hashes decoded bytes against the requested key; shared
// by the backends' Get paths.
func verifyGet(key Key, b []byte) ([]byte, error) {
	if got := KeyOf(b); got != key {
		return nil, &ChunkHashError{Key: key, Got: got}
	}
	return b, nil
}
