package castore

import (
	"bytes"
	"fmt"
	"testing"
)

// Regression for the detlint maporder audit: MemStore.Keys used to range
// over the chunk map directly, handing the callback a different
// enumeration order every process run, while DirStore walks its sorted
// fan-out directories. Enumeration order is observable bytes for
// anything built from it (GC sweep logs, store listings, replication
// diffs), so both backends must enumerate in ascending key order.
func TestKeysEnumerateInSortedKeyOrder(t *testing.T) {
	mem := NewMemStore()
	dir, err := OpenDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// Insertion order deliberately unsorted; keys are content hashes, so
	// varied payloads scatter across the key space (and DirStore fans).
	var keys []Key
	for i := 0; i < 64; i++ {
		b := []byte(fmt.Sprintf("chunk payload %03d", i*37%64))
		k := KeyOf(b)
		keys = append(keys, k)
		if err := mem.Put(k, b); err != nil {
			t.Fatal(err)
		}
		if err := dir.Put(k, b); err != nil {
			t.Fatal(err)
		}
	}

	enumerate := func(s Store) []Key {
		var got []Key
		if err := s.Keys(func(k Key, _ BlobInfo) error {
			got = append(got, k)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}

	memKeys := enumerate(mem)
	if len(memKeys) != len(keys) {
		t.Fatalf("MemStore enumerated %d keys, want %d", len(memKeys), len(keys))
	}
	for i := 1; i < len(memKeys); i++ {
		if bytes.Compare(memKeys[i-1][:], memKeys[i][:]) >= 0 {
			t.Fatalf("MemStore.Keys out of order at %d: %x >= %x", i, memKeys[i-1], memKeys[i])
		}
	}

	dirKeys := enumerate(dir)
	if len(dirKeys) != len(memKeys) {
		t.Fatalf("backend enumerations disagree: mem %d keys, dir %d", len(memKeys), len(dirKeys))
	}
	for i := range memKeys {
		if memKeys[i] != dirKeys[i] {
			t.Fatalf("backend enumeration order diverges at %d: mem %x, dir %x", i, memKeys[i], dirKeys[i])
		}
	}

	// Repeat enumerations must be bit-identical — the property the old
	// map-order implementation violated on every run.
	again := enumerate(mem)
	for i := range memKeys {
		if memKeys[i] != again[i] {
			t.Fatalf("MemStore enumeration not repeatable at %d", i)
		}
	}
}
