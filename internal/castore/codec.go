package castore

// The chunk codec: the per-chunk compression both backends apply before
// holding bytes. Checkpoint chunks are dominated by 4 KiB pages that are
// mostly zeros (lazily-mapped regions, sparsely dirtied pages), so the
// codec tries, in order:
//
//   - zero elision: an all-zero chunk stores as a 5-byte record;
//   - flate: kept only when it actually shrinks the chunk;
//   - raw: the identity fallback, so encoding never grows a chunk by
//     more than the 1-byte tag (plus a 4-byte length for the sized
//     forms).
//
// The codec is an internal representation detail: keys are computed over
// the uncompressed bytes and Get always returns them, so two backends
// with different codec outcomes still agree on every key.

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"io"
)

// Codec tags, the first byte of every stored blob.
const (
	codecRaw   = 'R' // tag | raw bytes
	codecZero  = 'Z' // tag | u32 length (all-zero chunk)
	codecFlate = 'F' // tag | u32 raw length | flate stream
)

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// encodeBlob compresses b for storage.
func encodeBlob(b []byte) []byte {
	if allZero(b) {
		out := make([]byte, 5)
		out[0] = codecZero
		binary.LittleEndian.PutUint32(out[1:], uint32(len(b)))
		return out
	}
	var buf bytes.Buffer
	buf.WriteByte(codecFlate)
	var lenb [4]byte
	binary.LittleEndian.PutUint32(lenb[:], uint32(len(b)))
	buf.Write(lenb[:])
	w, _ := flate.NewWriter(&buf, flate.BestSpeed)
	_, _ = w.Write(b)
	_ = w.Close()
	if buf.Len() < len(b)+1 {
		return buf.Bytes()
	}
	out := make([]byte, 0, len(b)+1)
	out = append(out, codecRaw)
	return append(out, b...)
}

// decodeBlob reverses encodeBlob. A structurally broken stored blob is
// reported as corruption at the given key: the hash error the caller
// would have produced had the bytes decoded to garbage.
func decodeBlob(key Key, stored []byte) ([]byte, error) {
	corrupt := &ChunkHashError{Key: key}
	if len(stored) == 0 {
		return nil, corrupt
	}
	switch stored[0] {
	case codecRaw:
		return stored[1:], nil
	case codecZero:
		if len(stored) != 5 {
			return nil, corrupt
		}
		n := binary.LittleEndian.Uint32(stored[1:])
		return make([]byte, n), nil
	case codecFlate:
		if len(stored) < 5 {
			return nil, corrupt
		}
		n := binary.LittleEndian.Uint32(stored[1:])
		r := flate.NewReader(bytes.NewReader(stored[5:]))
		out := make([]byte, n)
		if _, err := io.ReadFull(r, out); err != nil {
			return nil, corrupt
		}
		return out, nil
	default:
		return nil, corrupt
	}
}
