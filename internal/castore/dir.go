package castore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// DirStore is the on-disk BlobStore backend: one codec-encoded file per
// chunk under a two-level fan-out (aa/aabb...), the classic loose-object
// layout. Chunk files are immutable once written — Put writes a
// temporary file and renames it into place, so a crashed writer never
// leaves a half chunk under a valid name — and Get re-hashes everything
// it reads, so on-disk corruption surfaces as *ChunkHashError rather
// than as wrong state.
//
// The directory holds only content-addressed chunks; roots with names
// (the MANIFEST file the detshell ckpt commands maintain) live beside
// the fan-out as the caller's business.
type DirStore struct {
	dir string

	mu    sync.Mutex
	stats StoreStats // traffic counters only; contents come from the FS
}

// OpenDirStore opens (creating if needed) an on-disk store rooted at dir.
func OpenDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("castore: open %s: %w", dir, err)
	}
	return &DirStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *DirStore) Dir() string { return s.dir }

// path returns the chunk file path for key.
func (s *DirStore) path(key Key) string {
	hex := key.String()
	return filepath.Join(s.dir, hex[:2], hex)
}

// Put stores b under key (idempotent).
func (s *DirStore) Put(key Key, b []byte) error {
	s.mu.Lock()
	s.stats.Puts++
	s.stats.PutBytes += int64(len(b))
	s.mu.Unlock()
	p := s.path(key)
	if _, err := os.Stat(p); err == nil {
		s.mu.Lock()
		s.stats.DupPuts++
		s.mu.Unlock()
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("castore: put %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".tmp-*")
	if err != nil {
		return fmt.Errorf("castore: put %s: %w", key, err)
	}
	enc := encodeBlob(b)
	if _, err := tmp.Write(enc); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("castore: put %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("castore: put %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("castore: put %s: %w", key, err)
	}
	return nil
}

// Get returns the chunk's uncompressed bytes, verifying their hash.
func (s *DirStore) Get(key Key) ([]byte, error) {
	enc, err := os.ReadFile(s.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, &ChunkMissingError{Key: key}
		}
		return nil, fmt.Errorf("castore: get %s: %w", key, err)
	}
	b, err := decodeBlob(key, enc)
	if err != nil {
		return nil, err
	}
	return verifyGet(key, b)
}

// Has reports whether the store holds key.
func (s *DirStore) Has(key Key) (bool, error) {
	if _, err := os.Stat(s.path(key)); err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("castore: has %s: %w", key, err)
	}
	return true, nil
}

// Stat describes one chunk. The logical size requires decoding the
// stored form (the codec header carries it for the sized encodings).
func (s *DirStore) Stat(key Key) (BlobInfo, error) {
	enc, err := os.ReadFile(s.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return BlobInfo{}, &ChunkMissingError{Key: key}
		}
		return BlobInfo{}, fmt.Errorf("castore: stat %s: %w", key, err)
	}
	b, err := decodeBlob(key, enc)
	if err != nil {
		return BlobInfo{}, err
	}
	return BlobInfo{Size: len(b), StoredSize: len(enc)}, nil
}

// Keys enumerates the held chunks by walking the fan-out directories.
func (s *DirStore) Keys(fn func(Key, BlobInfo) error) error {
	fans, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("castore: keys: %w", err)
	}
	for _, fan := range fans {
		if !fan.IsDir() || len(fan.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, fan.Name()))
		if err != nil {
			return fmt.Errorf("castore: keys: %w", err)
		}
		for _, f := range files {
			if strings.HasPrefix(f.Name(), ".") {
				continue
			}
			key, err := ParseKey(f.Name())
			if err != nil {
				continue // foreign file; not ours to report or delete
			}
			info, err := s.Stat(key)
			if err != nil {
				// Report corrupt chunks with their stored size so GC can
				// still see (and a sweep can still drop) them.
				if fi, serr := os.Stat(s.path(key)); serr == nil {
					info = BlobInfo{StoredSize: int(fi.Size())}
				}
			}
			if err := fn(key, info); err != nil {
				return err
			}
		}
	}
	return nil
}

// Delete removes a chunk (no-op when absent).
func (s *DirStore) Delete(key Key) error {
	if err := os.Remove(s.path(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("castore: delete %s: %w", key, err)
	}
	return nil
}

// Stats summarizes contents and traffic.
func (s *DirStore) Stats() (StoreStats, error) {
	s.mu.Lock()
	st := s.stats
	s.mu.Unlock()
	err := s.Keys(func(_ Key, info BlobInfo) error {
		st.Chunks++
		st.LogicalSize += int64(info.Size)
		st.StoredSize += int64(info.StoredSize)
		return nil
	})
	return st, err
}
