package castore

// Garbage collection: refcounted mark from a set of root node keys,
// then a sweep of everything unreferenced. Checkpoint chains make
// reachability the only safe criterion — a chunk put by one manifest is
// silently shared by every later (and every sibling) manifest that
// hashes the same content, so nothing short of a trace can know a chunk
// is dead. Incremental roots reference their parent root as a node
// child, so collecting with only the newest manifest of a chain as root
// still keeps every ancestor chunk the chain's deltas lean on.

import "fmt"

// CollectStats reports one Collect run.
type CollectStats struct {
	Roots        int   // root keys traced
	Live         int   // chunks reachable (kept)
	LiveRefs     int   // reference edges traversed (refcount total)
	Removed      int   // chunks swept
	RemovedBytes int64 // stored bytes reclaimed
}

// Collect removes every chunk not reachable from roots. Roots must be
// node objects (manifests or checkpoint roots); a missing or unparsable
// root aborts the collection with its typed error before anything is
// deleted, so a bad root never triggers a destructive sweep.
func Collect(s Store, roots []Key) (CollectStats, error) {
	var st CollectStats
	refs := make(map[Key]int)
	var walk func(key Key) error
	walk = func(key Key) error {
		refs[key]++
		st.LiveRefs++
		if refs[key] > 1 {
			return nil // already traced
		}
		node, err := GetNode(s, key)
		if err != nil {
			return fmt.Errorf("castore: collect: trace %s: %w", key, err)
		}
		for _, leaf := range node.LeafRefs {
			refs[leaf]++
			st.LiveRefs++
		}
		for _, child := range node.NodeRefs {
			if err := walk(child); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		st.Roots++
		if err := walk(r); err != nil {
			return st, err
		}
	}
	// Leaf references must exist for the surviving images to load; check
	// before sweeping so a truncated store surfaces as ChunkMissingError
	// rather than as a sweep that "succeeds" over a broken chain.
	for key, n := range refs {
		if n <= 0 {
			continue
		}
		ok, err := s.Has(key)
		if err != nil {
			return st, err
		}
		if !ok {
			return st, &ChunkMissingError{Key: key}
		}
	}
	st.Live = len(refs)
	var sweep []Key
	var sweepBytes int64
	err := s.Keys(func(key Key, info BlobInfo) error {
		if refs[key] == 0 {
			sweep = append(sweep, key)
			sweepBytes += int64(info.StoredSize)
		}
		return nil
	})
	if err != nil {
		return st, err
	}
	for _, key := range sweep {
		if err := s.Delete(key); err != nil {
			return st, err
		}
		st.Removed++
	}
	st.RemovedBytes = sweepBytes
	return st, nil
}
