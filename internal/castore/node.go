package castore

// Node framing: the one structured object shape the store understands.
// A node is a reference list — child nodes and leaf chunks by key — plus
// an opaque, layer-owned payload. Checkpoint roots and session manifests
// are nodes; pages, table chunks and metadata sections are leaves.
//
// Putting the reference lists in a standard frame buys two things: the
// garbage collector can trace reachability through any object graph
// without knowing the payload formats, and payloads can refer to their
// own leaf children by small index instead of repeating 32-byte keys.
// Every node carries a CRC32 trailer, so a manifest or root damaged
// outside the store (e.g. a MANIFEST file edited on disk) is rejected
// with a typed error instead of decoding into garbage references.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// nodeMagic introduces a framed node object.
const nodeMagic = "CAN1"

// NodeFormatError reports a structurally invalid, truncated or
// corrupted node object.
type NodeFormatError struct {
	Msg string
}

func (e *NodeFormatError) Error() string { return "castore: bad node: " + e.Msg }

// Node is a decoded node object.
type Node struct {
	NodeRefs []Key  // children that are themselves nodes
	LeafRefs []Key  // children that are raw chunks
	Payload  []byte // layer-owned bytes (may index LeafRefs)
}

// BuildNode frames a node object. The returned bytes are what gets
// stored (and hashed into the node's key).
func BuildNode(nodeRefs, leafRefs []Key, payload []byte) []byte {
	b := make([]byte, 0, 4+1+8+KeySize*(len(nodeRefs)+len(leafRefs))+4+len(payload)+4)
	b = append(b, nodeMagic...)
	b = append(b, 1) // version
	b = binary.LittleEndian.AppendUint32(b, uint32(len(nodeRefs)))
	for _, k := range nodeRefs {
		b = append(b, k[:]...)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(leafRefs)))
	for _, k := range leafRefs {
		b = append(b, k[:]...)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	return append(b, binary.LittleEndian.AppendUint32(nil, crc32.ChecksumIEEE(b))...)
}

// ParseNode decodes a framed node object, verifying magic, version and
// the CRC trailer.
func ParseNode(data []byte) (*Node, error) {
	if len(data) < 4+1+4+4+4+4 {
		return nil, &NodeFormatError{Msg: "short object"}
	}
	payload, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(trailer) {
		return nil, &NodeFormatError{Msg: "checksum mismatch"}
	}
	if string(payload[:4]) != nodeMagic {
		return nil, &NodeFormatError{Msg: "bad magic"}
	}
	if payload[4] != 1 {
		return nil, &NodeFormatError{Msg: fmt.Sprintf("version %d not supported", payload[4])}
	}
	off := 5
	readKeys := func() ([]Key, bool) {
		if off+4 > len(payload) {
			return nil, false
		}
		n := int(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
		if n < 0 || off+n*KeySize > len(payload) {
			return nil, false
		}
		keys := make([]Key, n)
		for i := range keys {
			copy(keys[i][:], payload[off:off+KeySize])
			off += KeySize
		}
		return keys, true
	}
	n := &Node{}
	var ok bool
	if n.NodeRefs, ok = readKeys(); !ok {
		return nil, &NodeFormatError{Msg: "truncated node refs"}
	}
	if n.LeafRefs, ok = readKeys(); !ok {
		return nil, &NodeFormatError{Msg: "truncated leaf refs"}
	}
	if off+4 > len(payload) {
		return nil, &NodeFormatError{Msg: "truncated payload length"}
	}
	plen := int(binary.LittleEndian.Uint32(payload[off:]))
	off += 4
	if plen < 0 || off+plen != len(payload) {
		return nil, &NodeFormatError{Msg: "payload length mismatch"}
	}
	n.Payload = payload[off:]
	return n, nil
}

// GetNode fetches and parses a node object from a store.
func GetNode(s BlobStore, key Key) (*Node, error) {
	b, err := s.Get(key)
	if err != nil {
		return nil, err
	}
	n, err := ParseNode(b)
	if err != nil {
		return nil, fmt.Errorf("castore: node %s: %w", key, err)
	}
	return n, nil
}

// PutNode frames and stores a node object, returning its key.
func PutNode(s BlobStore, nodeRefs, leafRefs []Key, payload []byte) (Key, error) {
	b := BuildNode(nodeRefs, leafRefs, payload)
	key := KeyOf(b)
	return key, s.Put(key, b)
}
