package castore

import (
	"bytes"
	"sort"
	"sync"
)

// MemStore is the in-memory BlobStore backend: a map of codec-encoded
// chunks guarded by a mutex. It is the store of choice for tests, for
// benches, and for session eviction inside one process.
type MemStore struct {
	mu     sync.Mutex
	chunks map[Key][]byte // codec-encoded
	sizes  map[Key]int    // uncompressed sizes
	stats  StoreStats
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{chunks: make(map[Key][]byte), sizes: make(map[Key]int)}
}

// Put stores b under key (idempotent).
func (s *MemStore) Put(key Key, b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Puts++
	s.stats.PutBytes += int64(len(b))
	if _, ok := s.chunks[key]; ok {
		s.stats.DupPuts++
		return nil
	}
	s.chunks[key] = encodeBlob(b)
	s.sizes[key] = len(b)
	return nil
}

// Get returns the chunk's uncompressed bytes, verifying their hash.
func (s *MemStore) Get(key Key) ([]byte, error) {
	s.mu.Lock()
	enc, ok := s.chunks[key]
	s.mu.Unlock()
	if !ok {
		return nil, &ChunkMissingError{Key: key}
	}
	b, err := decodeBlob(key, enc)
	if err != nil {
		return nil, err
	}
	return verifyGet(key, b)
}

// Has reports whether the store holds key.
func (s *MemStore) Has(key Key) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.chunks[key]
	return ok, nil
}

// Stat describes one chunk.
func (s *MemStore) Stat(key Key) (BlobInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	enc, ok := s.chunks[key]
	if !ok {
		return BlobInfo{}, &ChunkMissingError{Key: key}
	}
	return BlobInfo{Size: s.sizes[key], StoredSize: len(enc)}, nil
}

// Keys enumerates the held chunks in ascending key order. The order is
// part of the BlobStore contract: DirStore walks its sorted fan-out
// directories, so both backends enumerate identically and anything
// built from an enumeration (GC sweeps, store listings, future
// replication diffs) is a pure function of store content. The previous
// implementation ranged over the chunk map directly, handing fn a
// different order every process run.
func (s *MemStore) Keys(fn func(Key, BlobInfo) error) error {
	s.mu.Lock()
	keys := make([]Key, 0, len(s.chunks))
	snapshot := make(map[Key]BlobInfo, len(s.chunks))
	for k, enc := range s.chunks {
		keys = append(keys, k)
		snapshot[k] = BlobInfo{Size: s.sizes[k], StoredSize: len(enc)}
	}
	s.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		return bytes.Compare(keys[i][:], keys[j][:]) < 0
	})
	for _, k := range keys {
		if err := fn(k, snapshot[k]); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes a chunk (no-op when absent).
func (s *MemStore) Delete(key Key) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.chunks, key)
	delete(s.sizes, key)
	return nil
}

// Stats summarizes contents and traffic.
func (s *MemStore) Stats() (StoreStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Chunks = len(s.chunks)
	for k, enc := range s.chunks {
		st.LogicalSize += int64(s.sizes[k])
		st.StoredSize += int64(len(enc))
	}
	return st, nil
}

// Corrupt overwrites the stored (encoded) form of a chunk in place,
// bypassing the codec — a test hook for corruption-injection tests.
// It reports whether the key was present.
func (s *MemStore) Corrupt(key Key, stored []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.chunks[key]; !ok {
		return false
	}
	s.chunks[key] = append([]byte(nil), stored...)
	return true
}
