package castore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// stores builds one of each backend for table-driven tests.
func stores(t *testing.T) map[string]Store {
	t.Helper()
	dir, err := OpenDirStore(filepath.Join(t.TempDir(), "cas"))
	if err != nil {
		t.Fatalf("OpenDirStore: %v", err)
	}
	return map[string]Store{"mem": NewMemStore(), "dir": dir}
}

func TestPutGetRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("hello chunk"),
		make([]byte, 4096),                       // all zeros: zero-elided
		bytes.Repeat([]byte{7}, 4096),            // repetitive: flate wins
		append([]byte{1}, make([]byte, 4095)...), // sparse page shape
		{},                                       // empty blob
	}
	for name, s := range stores(t) {
		for i, p := range payloads {
			key := KeyOf(p)
			if err := s.Put(key, p); err != nil {
				t.Fatalf("%s: put %d: %v", name, i, err)
			}
			if err := s.Put(key, p); err != nil { // idempotent
				t.Fatalf("%s: re-put %d: %v", name, i, err)
			}
			got, err := s.Get(key)
			if err != nil {
				t.Fatalf("%s: get %d: %v", name, i, err)
			}
			if !bytes.Equal(got, p) {
				t.Fatalf("%s: blob %d mismatch: %d bytes vs %d", name, i, len(got), len(p))
			}
			ok, err := s.Has(key)
			if err != nil || !ok {
				t.Fatalf("%s: has %d = %v, %v", name, i, ok, err)
			}
			info, err := s.Stat(key)
			if err != nil || info.Size != len(p) {
				t.Fatalf("%s: stat %d = %+v, %v", name, i, info, err)
			}
		}
		st, err := s.Stats()
		if err != nil {
			t.Fatalf("%s: stats: %v", name, err)
		}
		if st.Chunks != len(payloads) || st.DupPuts != int64(len(payloads)) {
			t.Fatalf("%s: stats = %+v, want %d chunks and dups", name, st, len(payloads))
		}
	}
}

func TestCompressionShrinksSparsePages(t *testing.T) {
	page := make([]byte, 4096)
	page[8] = 0x5a // one dirty word, the dominant checkpoint page shape
	for name, s := range stores(t) {
		key := KeyOf(page)
		if err := s.Put(key, page); err != nil {
			t.Fatalf("%s: put: %v", name, err)
		}
		info, err := s.Stat(key)
		if err != nil {
			t.Fatalf("%s: stat: %v", name, err)
		}
		if info.StoredSize >= len(page)/8 {
			t.Fatalf("%s: sparse page stored as %d bytes, want < %d", name, info.StoredSize, len(page)/8)
		}
	}
	zero := make([]byte, 4096)
	s := NewMemStore()
	key := KeyOf(zero)
	if err := s.Put(key, zero); err != nil {
		t.Fatal(err)
	}
	if info, _ := s.Stat(key); info.StoredSize != 5 {
		t.Fatalf("zero page stored as %d bytes, want 5", info.StoredSize)
	}
}

func TestMissingAndCorruptChunks(t *testing.T) {
	for name, s := range stores(t) {
		missing := KeyOf([]byte("never stored"))
		if _, err := s.Get(missing); !errors.As(err, new(*ChunkMissingError)) {
			t.Fatalf("%s: get missing: %v, want ChunkMissingError", name, err)
		}
		if _, err := s.Stat(missing); !errors.As(err, new(*ChunkMissingError)) {
			t.Fatalf("%s: stat missing: %v, want ChunkMissingError", name, err)
		}
		if ok, err := s.Has(missing); ok || err != nil {
			t.Fatalf("%s: has missing = %v, %v", name, ok, err)
		}
	}

	// Corrupt the stored form on each backend; Get must fail typed.
	blob := []byte("some chunk contents that will get damaged")
	key := KeyOf(blob)

	mem := NewMemStore()
	if err := mem.Put(key, blob); err != nil {
		t.Fatal(err)
	}
	mem.Corrupt(key, append([]byte{codecRaw}, []byte("evil twin bytes")...))
	if _, err := mem.Get(key); !errors.As(err, new(*ChunkHashError)) {
		t.Fatalf("mem: corrupt get: %v, want ChunkHashError", err)
	}

	dir, err := OpenDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := dir.Put(key, blob); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir.path(key), append([]byte{codecRaw}, []byte("evil")...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Get(key); !errors.As(err, new(*ChunkHashError)) {
		t.Fatalf("dir: corrupt get: %v, want ChunkHashError", err)
	}
	// A truncated/garbled codec frame is also corruption, not a crash.
	if err := os.WriteFile(dir.path(key), []byte{codecFlate, 1}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Get(key); !errors.As(err, new(*ChunkHashError)) {
		t.Fatalf("dir: truncated get: %v, want ChunkHashError", err)
	}
}

func TestNodeFraming(t *testing.T) {
	leafA, leafB := KeyOf([]byte("a")), KeyOf([]byte("b"))
	child := KeyOf([]byte("child node"))
	payload := []byte("layer payload")
	b := BuildNode([]Key{child}, []Key{leafA, leafB}, payload)
	n, err := ParseNode(b)
	if err != nil {
		t.Fatalf("ParseNode: %v", err)
	}
	if len(n.NodeRefs) != 1 || n.NodeRefs[0] != child {
		t.Fatalf("node refs = %v", n.NodeRefs)
	}
	if len(n.LeafRefs) != 2 || n.LeafRefs[0] != leafA || n.LeafRefs[1] != leafB {
		t.Fatalf("leaf refs = %v", n.LeafRefs)
	}
	if !bytes.Equal(n.Payload, payload) {
		t.Fatalf("payload = %q", n.Payload)
	}

	// Flip a byte anywhere: the CRC must catch it.
	for _, off := range []int{0, 5, len(b) / 2, len(b) - 1} {
		bad := append([]byte(nil), b...)
		bad[off] ^= 0x40
		if _, err := ParseNode(bad); err == nil {
			t.Fatalf("ParseNode accepted corruption at byte %d", off)
		}
	}
	if _, err := ParseNode(b[:8]); err == nil {
		t.Fatal("ParseNode accepted truncated node")
	}
}

func TestCollectTracesChains(t *testing.T) {
	for name, s := range stores(t) {
		// parent: leaves {p1, p2}; child root references parent + {c1}.
		p1, p2, c1 := []byte("parent leaf 1"), []byte("parent leaf 2"), []byte("child leaf")
		orphan := []byte("orphaned chunk")
		for _, b := range [][]byte{p1, p2, c1, orphan} {
			if err := s.Put(KeyOf(b), b); err != nil {
				t.Fatalf("%s: put: %v", name, err)
			}
		}
		parentKey, err := PutNode(s, nil, []Key{KeyOf(p1), KeyOf(p2)}, []byte("parent"))
		if err != nil {
			t.Fatalf("%s: put parent: %v", name, err)
		}
		childKey, err := PutNode(s, []Key{parentKey}, []Key{KeyOf(c1)}, []byte("child"))
		if err != nil {
			t.Fatalf("%s: put child: %v", name, err)
		}

		// Collect with only the child as root: the chain keeps the parent
		// node and its leaves; only the orphan goes.
		st, err := Collect(s, []Key{childKey})
		if err != nil {
			t.Fatalf("%s: collect: %v", name, err)
		}
		if st.Removed != 1 {
			t.Fatalf("%s: removed %d chunks, want 1 (stats %+v)", name, st.Removed, st)
		}
		for _, key := range []Key{parentKey, childKey, KeyOf(p1), KeyOf(p2), KeyOf(c1)} {
			if ok, _ := s.Has(key); !ok {
				t.Fatalf("%s: collect removed live chunk %s", name, key)
			}
		}
		if ok, _ := s.Has(KeyOf(orphan)); ok {
			t.Fatalf("%s: orphan survived", name)
		}

		// A missing root aborts without deleting anything.
		if _, err := Collect(s, []Key{KeyOf([]byte("no such root"))}); err == nil {
			t.Fatalf("%s: collect with bad root succeeded", name)
		}
		if ok, _ := s.Has(KeyOf(c1)); !ok {
			t.Fatalf("%s: failed collect deleted chunks", name)
		}
	}
}
