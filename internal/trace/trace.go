// Package trace records and replays the explicit nondeterministic inputs
// of a Determinator machine (§2.1 of the paper): clock readings, entropy,
// and console input. Because the kernel eliminates all internal
// nondeterminism, logging these external inputs alone is sufficient to
// replay any computation exactly — the property replay debugging, fault
// tolerance and intrusion analysis rely on.
package trace

import (
	"bytes"
	"encoding/json"
	"io"
	"sync"

	"repro/internal/kernel"
)

// Log holds every nondeterministic input a run consumed, in consumption
// order per device.
type Log struct {
	Clock []int64  `json:"clock"`
	Rand  []uint64 `json:"rand"`
	Input [][]byte `json:"input"` // console input, one entry per device read
}

// Marshal serializes the log.
func (l *Log) Marshal() ([]byte, error) { return json.Marshal(l) }

// Unmarshal parses a serialized log.
func Unmarshal(data []byte) (*Log, error) {
	l := &Log{}
	if err := json.Unmarshal(data, l); err != nil {
		return nil, err
	}
	return l, nil
}

// Clone returns a deep copy of the log — a stable snapshot of a log
// that is still being recorded into (the checkpoint path).
func (l *Log) Clone() *Log {
	c := &Log{
		Clock: append([]int64(nil), l.Clock...),
		Rand:  append([]uint64(nil), l.Rand...),
	}
	for _, chunk := range l.Input {
		c.Input = append(c.Input, append([]byte(nil), chunk...))
	}
	return c
}

// ReplayPrefix wraps cfg's devices so the first len(prefix.*) readings
// of each device come from the prefix log, after which reads fall
// through to the devices cfg already had. Each replayed reading also
// consumes (and discards) one reading from the underlying source, so a
// deterministic generator — the logical clock, the seeded entropy
// device — is advanced exactly as the recorded run advanced it and the
// post-prefix readings continue the original sequence.
//
// This is the splice a resumed recording needs: the kernel's restore
// fast-forwards the devices past the prefix (consuming exactly the
// recorded values, even when the underlying source is not reproducible),
// and recording continues on the live source — so a run recorded across
// a checkpoint/resume yields the same log an uninterrupted recording
// would. Call before Record and before kernel.New.
func ReplayPrefix(cfg *kernel.Config, prefix *Log) {
	clock := cfg.Clock
	if clock == nil {
		clock = kernel.LogicalClock()
	}
	pc := replayClock(prefix.Clock)
	var cmu sync.Mutex
	ci := 0
	cfg.Clock = func() int64 {
		cmu.Lock()
		i := ci
		ci++
		cmu.Unlock()
		if i < len(prefix.Clock) {
			clock() // keep the underlying source in step
			return pc()
		}
		return clock()
	}

	rnd := cfg.Rand
	if rnd == nil {
		rnd = kernel.SeededRand(1)
	}
	pr := replayRand(prefix.Rand)
	var rmu sync.Mutex
	ri := 0
	cfg.Rand = func() uint64 {
		rmu.Lock()
		i := ri
		ri++
		rmu.Unlock()
		if i < len(prefix.Rand) {
			rnd()
			return pr()
		}
		return rnd()
	}
}

// PrefixReader returns a reader that first delivers the log's recorded
// console input with its recorded chunk boundaries, then continues with
// in — which should be the run's full input source: the bytes the prefix
// already covers are skipped, mirroring what ReplayPrefix does for the
// other devices. in may be nil for EOF after the prefix.
func (l *Log) PrefixReader(in io.Reader) io.Reader {
	skip := 0
	for _, c := range l.Input {
		skip += len(c)
	}
	return io.MultiReader(l.ReplayInput(), &skipReader{in: in, skip: skip})
}

// skipReader discards the first skip bytes of in, then reads through.
type skipReader struct {
	in   io.Reader
	skip int
}

func (r *skipReader) Read(p []byte) (int, error) {
	if r.in == nil {
		return 0, io.EOF
	}
	// Bound the zero-progress (0, nil) reads a non-blocking source may
	// legally return, so the skip loop cannot spin forever.
	for empty := 0; r.skip > 0; {
		n := r.skip
		if n > len(p) {
			n = len(p)
		}
		got, err := r.in.Read(p[:n])
		r.skip -= got
		if err != nil {
			return 0, err
		}
		if got == 0 {
			if empty++; empty >= 100 {
				return 0, io.ErrNoProgress
			}
		} else {
			empty = 0
		}
	}
	return r.in.Read(p)
}

// Record wraps cfg's devices so that every nondeterministic input is
// captured into the returned Log as the machine consumes it. Call before
// kernel.New.
func Record(cfg *kernel.Config) *Log {
	l := &Log{}
	var mu sync.Mutex

	clock := cfg.Clock
	if clock == nil {
		clock = kernel.LogicalClock()
	}
	cfg.Clock = func() int64 {
		v := clock()
		mu.Lock()
		l.Clock = append(l.Clock, v)
		mu.Unlock()
		return v
	}

	rnd := cfg.Rand
	if rnd == nil {
		rnd = kernel.SeededRand(1)
	}
	cfg.Rand = func() uint64 {
		v := rnd()
		mu.Lock()
		l.Rand = append(l.Rand, v)
		mu.Unlock()
		return v
	}
	return l
}

// RecordInput wraps a console input reader so consumed chunks land in the
// log. Use with kernel.NewConsole.
func (l *Log) RecordInput(in io.Reader) io.Reader {
	return &recordingReader{log: l, in: in}
}

type recordingReader struct {
	log *Log
	in  io.Reader
}

func (r *recordingReader) Read(p []byte) (int, error) {
	if r.in == nil {
		return 0, io.EOF
	}
	n, err := r.in.Read(p)
	if n > 0 {
		chunk := append([]byte(nil), p[:n]...)
		r.log.Input = append(r.log.Input, chunk)
	}
	return n, err
}

// Replay configures cfg's devices to reproduce the logged inputs: the
// machine sees exactly the values of the recorded run.
func Replay(cfg *kernel.Config, l *Log) {
	cfg.Clock = replayClock(l.Clock)
	cfg.Rand = replayRand(l.Rand)
}

// ReplayInput returns a reader that delivers the recorded console input
// with the recorded chunk boundaries.
func (l *Log) ReplayInput() io.Reader {
	return &chunkReader{chunks: l.Input}
}

type chunkReader struct {
	chunks [][]byte
	buf    bytes.Buffer
	idx    int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	for c.buf.Len() == 0 {
		if c.idx >= len(c.chunks) {
			return 0, io.EOF
		}
		c.buf.Write(c.chunks[c.idx])
		c.idx++
	}
	return c.buf.Read(p)
}

func replayClock(vals []int64) kernel.ClockFunc {
	var mu sync.Mutex
	i := 0
	return func() int64 {
		mu.Lock()
		defer mu.Unlock()
		if i >= len(vals) {
			if len(vals) == 0 {
				return 0
			}
			return vals[len(vals)-1]
		}
		v := vals[i]
		i++
		return v
	}
}

func replayRand(vals []uint64) kernel.RandFunc {
	var mu sync.Mutex
	i := 0
	return func() uint64 {
		mu.Lock()
		defer mu.Unlock()
		if i >= len(vals) {
			if len(vals) == 0 {
				return 0
			}
			return vals[len(vals)-1]
		}
		v := vals[i]
		i++
		return v
	}
}
