// Package trace records and replays the explicit nondeterministic inputs
// of a Determinator machine (§2.1 of the paper): clock readings, entropy,
// and console input. Because the kernel eliminates all internal
// nondeterminism, logging these external inputs alone is sufficient to
// replay any computation exactly — the property replay debugging, fault
// tolerance and intrusion analysis rely on.
package trace

import (
	"bytes"
	"encoding/json"
	"io"
	"sync"

	"repro/internal/kernel"
)

// Log holds every nondeterministic input a run consumed, in consumption
// order per device.
type Log struct {
	Clock []int64  `json:"clock"`
	Rand  []uint64 `json:"rand"`
	Input [][]byte `json:"input"` // console input, one entry per device read
}

// Marshal serializes the log.
func (l *Log) Marshal() ([]byte, error) { return json.Marshal(l) }

// Unmarshal parses a serialized log.
func Unmarshal(data []byte) (*Log, error) {
	l := &Log{}
	if err := json.Unmarshal(data, l); err != nil {
		return nil, err
	}
	return l, nil
}

// Record wraps cfg's devices so that every nondeterministic input is
// captured into the returned Log as the machine consumes it. Call before
// kernel.New.
func Record(cfg *kernel.Config) *Log {
	l := &Log{}
	var mu sync.Mutex

	clock := cfg.Clock
	if clock == nil {
		clock = kernel.LogicalClock()
	}
	cfg.Clock = func() int64 {
		v := clock()
		mu.Lock()
		l.Clock = append(l.Clock, v)
		mu.Unlock()
		return v
	}

	rnd := cfg.Rand
	if rnd == nil {
		rnd = kernel.SeededRand(1)
	}
	cfg.Rand = func() uint64 {
		v := rnd()
		mu.Lock()
		l.Rand = append(l.Rand, v)
		mu.Unlock()
		return v
	}
	return l
}

// RecordInput wraps a console input reader so consumed chunks land in the
// log. Use with kernel.NewConsole.
func (l *Log) RecordInput(in io.Reader) io.Reader {
	return &recordingReader{log: l, in: in}
}

type recordingReader struct {
	log *Log
	in  io.Reader
}

func (r *recordingReader) Read(p []byte) (int, error) {
	if r.in == nil {
		return 0, io.EOF
	}
	n, err := r.in.Read(p)
	if n > 0 {
		chunk := append([]byte(nil), p[:n]...)
		r.log.Input = append(r.log.Input, chunk)
	}
	return n, err
}

// Replay configures cfg's devices to reproduce the logged inputs: the
// machine sees exactly the values of the recorded run.
func Replay(cfg *kernel.Config, l *Log) {
	cfg.Clock = replayClock(l.Clock)
	cfg.Rand = replayRand(l.Rand)
}

// ReplayInput returns a reader that delivers the recorded console input
// with the recorded chunk boundaries.
func (l *Log) ReplayInput() io.Reader {
	return &chunkReader{chunks: l.Input}
}

type chunkReader struct {
	chunks [][]byte
	buf    bytes.Buffer
	idx    int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	for c.buf.Len() == 0 {
		if c.idx >= len(c.chunks) {
			return 0, io.EOF
		}
		c.buf.Write(c.chunks[c.idx])
		c.idx++
	}
	return c.buf.Read(p)
}

func replayClock(vals []int64) kernel.ClockFunc {
	var mu sync.Mutex
	i := 0
	return func() int64 {
		mu.Lock()
		defer mu.Unlock()
		if i >= len(vals) {
			if len(vals) == 0 {
				return 0
			}
			return vals[len(vals)-1]
		}
		v := vals[i]
		i++
		return v
	}
}

func replayRand(vals []uint64) kernel.RandFunc {
	var mu sync.Mutex
	i := 0
	return func() uint64 {
		mu.Lock()
		defer mu.Unlock()
		if i >= len(vals) {
			if len(vals) == 0 {
				return 0
			}
			return vals[len(vals)-1]
		}
		v := vals[i]
		i++
		return v
	}
}
