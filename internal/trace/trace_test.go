package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/kernel"
)

// noisyProg consumes clock, entropy and console input and produces output
// derived from them.
func noisyProg(env *kernel.Env) {
	var out bytes.Buffer
	for i := 0; i < 3; i++ {
		t := env.ClockNow()
		r := env.RandUint64()
		out.WriteByte(byte('a' + (t+int64(r))%26))
	}
	var in [64]byte
	n := env.ConsoleRead(in[:])
	out.Write(in[:n])
	env.ConsoleWrite(out.Bytes())
	env.SetRet(uint64(out.Len()))
}

func TestRecordThenReplayIdenticalOutput(t *testing.T) {
	// Record a run with "wall-clock-ish" nondeterministic inputs.
	cfg := kernel.Config{
		Clock: func() int64 { return time.Now().UnixNano() },
		Rand:  kernel.SeededRand(uint64(time.Now().UnixNano())),
	}
	log := Record(&cfg)
	var out1 bytes.Buffer
	cfg.Console = kernel.NewConsole(log.RecordInput(strings.NewReader("stdin!")), &out1)
	kernel.New(cfg).Run(noisyProg, 0)

	// Serialize and restore the log, as a replay tool would.
	data, err := log.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}

	// Replay: devices now synthesize the recorded inputs.
	var cfg2 kernel.Config
	Replay(&cfg2, restored)
	var out2 bytes.Buffer
	cfg2.Console = kernel.NewConsole(restored.ReplayInput(), &out2)
	kernel.New(cfg2).Run(noisyProg, 0)

	if out1.String() != out2.String() {
		t.Errorf("replay diverged: %q vs %q", out1.String(), out2.String())
	}
	if len(restored.Clock) != 3 || len(restored.Rand) != 3 {
		t.Errorf("log sizes: clock %d rand %d, want 3 each", len(restored.Clock), len(restored.Rand))
	}
}

func TestReplayExhaustionRepeatsLast(t *testing.T) {
	l := &Log{Clock: []int64{5}, Rand: []uint64{9}}
	var cfg kernel.Config
	Replay(&cfg, l)
	if cfg.Clock() != 5 || cfg.Clock() != 5 {
		t.Error("clock replay did not repeat last value")
	}
	if cfg.Rand() != 9 || cfg.Rand() != 9 {
		t.Error("rand replay did not repeat last value")
	}
}

func TestEmptyLogReplay(t *testing.T) {
	l := &Log{}
	var cfg kernel.Config
	Replay(&cfg, l)
	if cfg.Clock() != 0 || cfg.Rand() != 0 {
		t.Error("empty log replay should produce zeros")
	}
	var b [8]byte
	r := l.ReplayInput()
	if n, _ := r.Read(b[:]); n != 0 {
		t.Error("empty input log produced data")
	}
}

func TestChunkBoundariesPreserved(t *testing.T) {
	l := &Log{Input: [][]byte{[]byte("ab"), []byte("cdef")}}
	r := l.ReplayInput()
	var b [64]byte
	n1, _ := r.Read(b[:])
	if string(b[:n1]) != "ab" {
		t.Errorf("first chunk = %q", b[:n1])
	}
	n2, _ := r.Read(b[:])
	if string(b[:n2]) != "cdef" {
		t.Errorf("second chunk = %q", b[:n2])
	}
}
