package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/workload"
)

// Options scales the experiments.
type Options struct {
	// Quick shrinks problem sizes for CI-speed runs (used by the test
	// suite and testing.B integration); full size reproduces the paper's
	// regime more faithfully.
	Quick bool
	// CPUs is the modelled core count for Figures 7/8 (paper: 12).
	CPUs int
}

func (o Options) cpus() int {
	if o.CPUs > 0 {
		return o.CPUs
	}
	return 12
}

// size picks a problem size for a spec under the current options.
func (o Options) size(spec workload.Spec) int {
	if !o.Quick {
		return spec.DefaultSize
	}
	switch spec.Name {
	case "matmult":
		return 64
	case "lu_cont", "lu_noncont":
		return 64
	case "qsort":
		return 1 << 13
	default:
		return 1 << 11
	}
}

// Measurement is one deterministic-run data point.
type Measurement struct {
	VT    int64         // virtual completion time (deterministic)
	Wall  time.Duration // host wall clock (informational)
	Value uint64        // result checksum
}

// runDet executes a Det entry point on a fresh simulated machine.
func runDet(spec workload.Spec, threads, cpus, nodes, size int, cost kernel.CostModel) Measurement {
	var value uint64
	start := time.Now()
	res := core.Run(core.Options{
		Kernel: kernel.Config{
			Nodes:       nodes,
			CPUsPerNode: cpus,
			Cost:        cost,
		},
		SharedSize: spec.SharedBytes(size),
	}, func(rt *core.RT) uint64 {
		value = spec.Det(rt, threads, size)
		return value
	})
	wall := time.Since(start)
	if res.Status != kernel.StatusHalted {
		panic(fmt.Sprintf("bench: %s stopped with %v: %v", spec.Name, res.Status, res.Err))
	}
	return Measurement{VT: res.VT, Wall: wall, Value: value}
}

// coreRT shortens distributed entry-point signatures in this package.
type coreRT = core.RT

// runDetFn is runDet for ad-hoc entry points outside the Spec table.
func runDetFn(name string, fn func(rt *core.RT, threads, size int) uint64,
	threads, cpus, size int, shared uint64, cost kernel.CostModel) Measurement {
	var value uint64
	start := time.Now()
	res := core.Run(core.Options{
		Kernel:     kernel.Config{CPUsPerNode: cpus, Cost: cost},
		SharedSize: shared,
	}, func(rt *core.RT) uint64 {
		value = fn(rt, threads, size)
		return value
	})
	wall := time.Since(start)
	if res.Status != kernel.StatusHalted {
		panic(fmt.Sprintf("bench: %s stopped with %v: %v", name, res.Status, res.Err))
	}
	return Measurement{VT: res.VT, Wall: wall, Value: value}
}

// runDistDet executes a distributed Det entry point (signature
// rt × nodes × size) on an n-node machine with uniprocessor nodes.
func runDistDet(name string, fn func(rt *core.RT, nodes, size int) uint64,
	nodes, size int, shared uint64, cost kernel.CostModel) Measurement {
	var value uint64
	start := time.Now()
	res := core.Run(core.Options{
		Kernel:     kernel.Config{Nodes: nodes, CPUsPerNode: 1, Cost: cost},
		SharedSize: shared,
	}, func(rt *core.RT) uint64 {
		value = fn(rt, nodes, size)
		return value
	})
	wall := time.Since(start)
	if res.Status != kernel.StatusHalted {
		panic(fmt.Sprintf("bench: %s stopped with %v: %v", name, res.Status, res.Err))
	}
	return Measurement{VT: res.VT, Wall: wall, Value: value}
}

// idealBaselineVT models the nondeterministic baseline's completion time
// in the same virtual-time currency: pure compute spread over the CPUs,
// plus a nominal spawn/join cost per thread. This is deliberately
// generous to the baseline — it pays nothing for synchronization or
// memory isolation — so deterministic-to-baseline ratios are upper
// bounds on Determinator's overhead.
func idealBaselineVT(spec workload.Spec, size, threads, cpus int, cost kernel.CostModel) int64 {
	p := threads
	if cpus < p {
		p = cpus
	}
	if p < 1 {
		p = 1
	}
	work := spec.Work(size, threads)
	vt := work/int64(p) + int64(threads)*cost.Syscall
	if spec.Critical != nil {
		if c := spec.Critical(size, threads); c > vt {
			vt = c
		}
	}
	return vt
}

// measureWall times a host-native baseline run.
func measureWall(fn func() uint64) (time.Duration, uint64) {
	start := time.Now()
	v := fn()
	return time.Since(start), v
}
