package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/vm"
)

// Ckpt sweeps the checkpoint subsystem (PR 5): image size and
// save/restore wall time versus shared-region size and the fraction of
// the region a round of threads actually dirties. Each row runs a
// phased fork/join workload, checkpoints at a mid-run barrier, restores
// the image into a fresh machine, resumes, and asserts the resumed
// result and virtual time are bit-identical to the uninterrupted run —
// the sweep doubles as an end-to-end equivalence check.
//
// The image is delta-shaped by construction: every page is emitted
// once, however many spaces (root replica, thread replicas, snapshots)
// share it copy-on-write, so image size tracks unique bytes — the base
// region plus what the threads diverged — not spaces × region.
func Ckpt(o Options) Table {
	regions := []uint64{16 << 20, 64 << 20}
	if o.Quick {
		regions = []uint64{8 << 20, 32 << 20}
	}
	fracs := []int{2, 25, 100}
	const threads = 4
	const phases = 3
	const stopAt = 2 // checkpoint at the barrier after phase 2

	t := Table{
		ID:    "ckpt",
		Title: "checkpoint image size and save/restore time vs region size and dirty fraction",
		Header: []string{"region", "dirty%", "img-kb", "kb/dirty-mb", "save-ms",
			"restore-ms", "resume"},
	}
	for _, region := range regions {
		for _, frac := range fracs {
			w := ckptWorkload{region: region, frac: frac, threads: threads, phases: phases}
			cfg := kernel.Config{CPUsPerNode: threads, MergeWorkers: 1}

			want := w.run(cfg, 0, nil, nil)
			if want.Err != nil {
				panic(fmt.Sprintf("bench: ckpt workload: %v", want.Err))
			}

			var img []byte
			var saveDur time.Duration
			ckRes := w.run(cfg, 0, nil, func(env *kernel.Env, after int) bool {
				if after != stopAt {
					return true
				}
				start := time.Now()
				var err error
				img, err = env.Checkpoint(kernel.CheckpointOpts{})
				saveDur = time.Since(start)
				if err != nil {
					panic(fmt.Sprintf("bench: ckpt save: %v", err))
				}
				return false
			})
			if ckRes.Err != nil {
				panic(fmt.Sprintf("bench: ckpt save run: %v", ckRes.Err))
			}

			m := kernel.New(cfg)
			start := time.Now()
			if err := m.Restore(img); err != nil {
				panic(fmt.Sprintf("bench: ckpt restore: %v", err))
			}
			restoreDur := time.Since(start)
			got := w.resume(m, stopAt)
			if got.Ret != want.Ret || got.VT != want.VT {
				panic(fmt.Sprintf("bench: ckpt resume diverged: got ret=%d vt=%d, want ret=%d vt=%d",
					got.Ret, got.VT, want.Ret, want.VT))
			}

			dirtyMB := float64(region) * float64(frac) / 100 / (1 << 20)
			t.AddRow(fmt.Sprintf("%dM", region>>20), iv(int64(frac)),
				iv(int64(len(img)>>10)),
				f2(float64(len(img)>>10)/dirtyMB),
				ms(float64(saveDur.Microseconds())/1000),
				ms(float64(restoreDur.Microseconds())/1000),
				"bit-eq")
		}
	}
	t.Note("img-kb is the serialized machine image (all replicas and snapshots, unique pages once);")
	t.Note("kb/dirty-mb normalizes by the bytes a round actually dirties — near-constant columns mean")
	t.Note("the delta encoding scales with divergence, not with region or space count. Every row's")
	t.Note("resume is asserted bit-identical (checksum and virtual time) to its uninterrupted run.")
	return t
}

// ckptWorkload is the phased fork/join program the sweep runs: each
// phase stripes writes over the first frac% of the region's pages and
// folds per-thread sums into an accumulator.
type ckptWorkload struct {
	region  uint64
	frac    int
	threads int
	phases  int
}

// touchedPages is how many pages one round dirties: frac% of the
// region, capped one page short so the accumulator always fits.
func (w ckptWorkload) touchedPages() int {
	pages := int(w.region >> vm.PageShift)
	return (pages - 1) * w.frac / 100
}

// layout re-derives the workload's addresses (deterministic bump
// allocation; identical on fresh start and resume).
func (w ckptWorkload) layout(rt *core.RT) (data vm.Addr, acc vm.Addr) {
	acc = rt.Alloc(8, 8)
	data = rt.Alloc(uint64(w.touchedPages())<<vm.PageShift, vm.PageSize)
	return
}

// phase runs one fork/join round.
func (w ckptWorkload) phase(rt *core.RT, data, acc vm.Addr, p int) {
	touched := w.touchedPages()
	rets, err := rt.ParallelDo(w.threads, func(t *core.Thread) uint64 {
		lo := t.ID * touched / w.threads
		hi := (t.ID + 1) * touched / w.threads
		var sum uint64
		for i := lo; i < hi; i++ {
			a := data + vm.Addr(i)<<vm.PageShift
			v := t.Env().ReadU64(a)*6364136223846793005 + uint64(p*31+t.ID+1)
			t.Env().WriteU64(a, v)
			sum += v
		}
		return sum
	})
	if err != nil {
		panic(fmt.Sprintf("bench: ckpt phase: %v", err))
	}
	h := rt.Env().ReadU64(acc)
	for _, r := range rets {
		h = h*31 + r
	}
	rt.Env().WriteU64(acc, h)
}

// run executes phases [start, phases) on a fresh machine (start 0) —
// onBarrier, when set, is called after each phase and may stop the run.
func (w ckptWorkload) run(cfg kernel.Config, start int, st *core.RTState,
	onBarrier func(env *kernel.Env, after int) bool) kernel.RunResult {
	m := kernel.New(cfg)
	return w.drive(m, start, st, onBarrier)
}

// resume continues on a restored machine from the given barrier.
func (w ckptWorkload) resume(m *kernel.Machine, start int) kernel.RunResult {
	// The runtime bookkeeping is re-derivable here: the workload
	// allocates only in layout, so an attach with a replayed layout and
	// the layout-final cursor reproduces the checkpointed RT exactly.
	st := core.RTState{Base: core.SharedBase, Size: w.region}
	return w.drive(m, start, &st, nil)
}

func (w ckptWorkload) drive(m *kernel.Machine, start int, st *core.RTState,
	onBarrier func(env *kernel.Env, after int) bool) kernel.RunResult {
	return m.Run(func(env *kernel.Env) {
		var rt *core.RT
		var data, acc vm.Addr
		if st != nil {
			attached, err := core.Attach(env, core.RTState{
				Base: st.Base, Size: st.Size, Next: st.Base, // cursor set by layout below
			}, nil)
			if err != nil {
				panic(err)
			}
			rt = attached
			data, acc = w.layout(rt)
		} else {
			rt = core.New(env, w.region)
			data, acc = w.layout(rt)
			rt.Env().WriteU64(acc, 1)
		}
		for p := start; p < w.phases; p++ {
			w.phase(rt, data, acc, p)
			if onBarrier != nil && !onBarrier(env, p+1) {
				return
			}
		}
		env.SetRet(rt.Env().ReadU64(acc))
	}, 0)
}
