package bench

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/castore"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/vm"
)

// Ckpt sweeps the checkpoint subsystem: image size, chunked-store cost
// and save/restore wall time versus shared-region size and the fraction
// of the region a round of threads actually dirties. Each row runs a
// phased fork/join workload, checkpoints at a mid-run barrier, ships the
// image through the content-addressed chunk store (split, chunk,
// unchunk, join — asserted byte-identical), restores the rebuilt image
// into a fresh machine, resumes, and asserts the resumed result and
// virtual time are bit-identical to the uninterrupted run — the sweep
// doubles as an end-to-end equivalence check of the chunked path.
//
// The flat image is delta-shaped by construction: every page is emitted
// once, however many spaces share it copy-on-write. The chunk columns
// measure the store layer on top of that: unique content-addressed
// bytes (chunk-kb), how much the flat forest deduplicated into them
// (dedup), and what zero-elision plus flate left on disk (comp-kb).
//
// The Δ2 rows chain a second checkpoint after a round that dirties only
// 2% of the region: their chunk columns count only the bytes the second
// checkpoint added to the store, and the run asserts those are under
// 10% of the first checkpoint's — the incremental-image contract.
func Ckpt(o Options) Table {
	regions := []uint64{16 << 20, 64 << 20}
	if o.Quick {
		regions = []uint64{8 << 20, 32 << 20}
	}
	fracs := []int{2, 25, 100}
	const threads = 4
	const phases = 3
	const stopAt = 2 // checkpoint at the barrier after phase 2

	t := Table{
		ID:    "ckpt",
		Title: "checkpoint image and chunk-store size vs region size and dirty fraction",
		Header: []string{"region", "dirty%", "img-kb", "kb/dirty-mb", "chunk-kb", "dedup",
			"comp-kb", "comp-kb/dmb", "save-ms", "restore-ms", "resume"},
	}
	for _, region := range regions {
		for _, frac := range fracs {
			w := ckptWorkload{region: region, frac: frac, threads: threads, phases: phases}
			cfg := kernel.Config{CPUsPerNode: threads, MergeWorkers: 1}

			want := w.run(cfg, 0, nil, nil)
			if want.Err != nil {
				panic(fmt.Sprintf("bench: ckpt workload: %v", want.Err))
			}

			var img []byte
			var saveDur time.Duration
			ckRes := w.run(cfg, 0, nil, func(env *kernel.Env, after int) bool {
				if after != stopAt {
					return true
				}
				start := time.Now()
				var err error
				img, err = env.Checkpoint(kernel.CheckpointOpts{})
				saveDur = time.Since(start)
				if err != nil {
					panic(fmt.Sprintf("bench: ckpt save: %v", err))
				}
				return false
			})
			if ckRes.Err != nil {
				panic(fmt.Sprintf("bench: ckpt save run: %v", ckRes.Err))
			}

			// Ship the image through the chunk store and rebuild it.
			store := castore.NewMemStore()
			joined, st := chunkRoundTrip(store, img, castore.Key{})

			m := kernel.New(cfg)
			start := time.Now()
			if err := m.Restore(joined); err != nil {
				panic(fmt.Sprintf("bench: ckpt restore: %v", err))
			}
			restoreDur := time.Since(start)
			got := w.resume(m, stopAt)
			assertBitEq(got, want)

			dirtyMB := float64(region) * float64(frac) / 100 / (1 << 20)
			t.AddRow(fmt.Sprintf("%dM", region>>20), iv(int64(frac)),
				iv(int64(len(img)>>10)),
				f2(float64(len(img)>>10)/dirtyMB),
				iv(int64(st.LogicalSize>>10)),
				f2(float64(len(img))/float64(st.LogicalSize)),
				iv(int64(st.StoredSize>>10)),
				f2(float64(st.StoredSize)/1024/dirtyMB),
				ms(float64(saveDur.Microseconds())/1000),
				ms(float64(restoreDur.Microseconds())/1000),
				"bit-eq")
		}

		// Incremental row: checkpoint after a 100%-dirty init, then again
		// after a 2%-dirty round, chaining the second forest onto the
		// first. The chunk columns report only what the delta added.
		t.AddRow(ckptDeltaRow(region, threads)...)
	}
	t.Note("img-kb is the serialized machine image (all replicas and snapshots, unique pages once);")
	t.Note("kb/dirty-mb normalizes by the bytes a round actually dirties. chunk-kb is the unique")
	t.Note("content-addressed bytes after dedup (dedup = img-bytes/chunk-bytes), comp-kb what")
	t.Note("zero-elision+flate stored. Δ2 rows chain a 2%%-dirty second checkpoint onto a full one;")
	t.Note("their chunk columns count only the new bytes (asserted <10%% of the first checkpoint's).")
	t.Note("Every row restores from the chunk store and resumes bit-identically to an uninterrupted run.")
	return t
}

// chunkRoundTrip splits img, chunks the forest into store (chained onto
// parent when non-zero), asserts the unchunked forest rejoins to the
// exact original image, and returns the rebuilt image, the store stats
// after the chunking, and the forest root.
func chunkRoundTrip(store *castore.MemStore, img []byte, parent castore.Key) ([]byte, castore.StoreStats) {
	joined, _, st := chunkRoundTripRoot(store, img, parent)
	return joined, st
}

func chunkRoundTripRoot(store *castore.MemStore, img []byte, parent castore.Key) ([]byte, castore.Key, castore.StoreStats) {
	meta, forest, err := kernel.SplitImage(img)
	if err != nil {
		panic(fmt.Sprintf("bench: ckpt split: %v", err))
	}
	root, err := vm.ChunkForest(store, forest, parent)
	if err != nil {
		panic(fmt.Sprintf("bench: ckpt chunk: %v", err))
	}
	rebuilt, err := vm.UnchunkForest(store, root)
	if err != nil {
		panic(fmt.Sprintf("bench: ckpt unchunk: %v", err))
	}
	if !bytes.Equal(rebuilt, forest) {
		panic("bench: ckpt unchunked forest differs from the original")
	}
	joined, err := kernel.JoinImage(meta, rebuilt)
	if err != nil {
		panic(fmt.Sprintf("bench: ckpt join: %v", err))
	}
	if !bytes.Equal(joined, img) {
		panic("bench: ckpt chunk round trip differs from the original image")
	}
	st, err := store.Stats()
	if err != nil {
		panic(fmt.Sprintf("bench: ckpt store stats: %v", err))
	}
	return joined, root, st
}

// ckptDeltaRow measures the incremental checkpoint: a full-region init
// checkpoint, then a chained one after a 2%-dirty round.
func ckptDeltaRow(region uint64, threads int) []string {
	const deltaFrac = 2
	w := ckptWorkload{region: region, frac: deltaFrac, threads: threads, phases: 3,
		phaseFracs: []int{100, deltaFrac, deltaFrac}}
	cfg := kernel.Config{CPUsPerNode: threads, MergeWorkers: 1}

	want := w.run(cfg, 0, nil, nil)
	if want.Err != nil {
		panic(fmt.Sprintf("bench: ckpt delta workload: %v", want.Err))
	}

	var img1, img2 []byte
	var saveDur time.Duration
	ckRes := w.run(cfg, 0, nil, func(env *kernel.Env, after int) bool {
		var err error
		switch after {
		case 1:
			img1, err = env.Checkpoint(kernel.CheckpointOpts{})
		case 2:
			start := time.Now()
			img2, err = env.Checkpoint(kernel.CheckpointOpts{})
			saveDur = time.Since(start)
		}
		if err != nil {
			panic(fmt.Sprintf("bench: ckpt delta save: %v", err))
		}
		return after != 2
	})
	if ckRes.Err != nil {
		panic(fmt.Sprintf("bench: ckpt delta run: %v", ckRes.Err))
	}

	store := castore.NewMemStore()
	_, root1, s1 := chunkRoundTripRoot(store, img1, castore.Key{})
	joined2, _, s2 := chunkRoundTripRoot(store, img2, root1)

	deltaLogical := s2.LogicalSize - s1.LogicalSize
	deltaStored := s2.StoredSize - s1.StoredSize
	if deltaLogical*10 >= s1.LogicalSize {
		panic(fmt.Sprintf("bench: ckpt delta stored %d of %d chunk bytes (>= 10%%): not incremental",
			deltaLogical, s1.LogicalSize))
	}

	m := kernel.New(cfg)
	start := time.Now()
	if err := m.Restore(joined2); err != nil {
		panic(fmt.Sprintf("bench: ckpt delta restore: %v", err))
	}
	restoreDur := time.Since(start)
	assertBitEq(w.resume(m, 2), want)

	dirtyMB := float64(region) * deltaFrac / 100 / (1 << 20)
	return []string{fmt.Sprintf("%dM", region>>20), "Δ2",
		iv(int64(len(img2) >> 10)),
		f2(float64(len(img2)>>10) / dirtyMB),
		iv(int64(deltaLogical >> 10)),
		f2(float64(len(img2)) / float64(deltaLogical)),
		iv(int64(deltaStored >> 10)),
		f2(float64(deltaStored) / 1024 / dirtyMB),
		ms(float64(saveDur.Microseconds()) / 1000),
		ms(float64(restoreDur.Microseconds()) / 1000),
		"bit-eq"}
}

func assertBitEq(got, want kernel.RunResult) {
	if got.Ret != want.Ret || got.VT != want.VT {
		panic(fmt.Sprintf("bench: ckpt resume diverged: got ret=%d vt=%d, want ret=%d vt=%d",
			got.Ret, got.VT, want.Ret, want.VT))
	}
}

// ckptWorkload is the phased fork/join program the sweep runs: each
// phase stripes writes over the first frac% of the region's pages and
// folds per-thread sums into an accumulator. phaseFracs, when set,
// overrides the dirty fraction per phase (the incremental rows use a
// full first round and small later rounds).
type ckptWorkload struct {
	region     uint64
	frac       int
	threads    int
	phases     int
	phaseFracs []int
}

// fracOf is the dirty fraction phase p uses.
func (w ckptWorkload) fracOf(p int) int {
	if w.phaseFracs != nil {
		return w.phaseFracs[p]
	}
	return w.frac
}

// maxFrac sizes the data region: the largest fraction any phase touches.
func (w ckptWorkload) maxFrac() int {
	max := w.frac
	for _, f := range w.phaseFracs {
		if f > max {
			max = f
		}
	}
	return max
}

// touchedPages is how many pages a round at the given fraction dirties:
// frac% of the region, capped one page short so the accumulator always
// fits.
func (w ckptWorkload) touchedPages(frac int) int {
	pages := int(w.region >> vm.PageShift)
	return (pages - 1) * frac / 100
}

// layout re-derives the workload's addresses (deterministic bump
// allocation; identical on fresh start and resume).
func (w ckptWorkload) layout(rt *core.RT) (data vm.Addr, acc vm.Addr) {
	acc = rt.Alloc(8, 8)
	data = rt.Alloc(uint64(w.touchedPages(w.maxFrac()))<<vm.PageShift, vm.PageSize)
	return
}

// phase runs one fork/join round.
func (w ckptWorkload) phase(rt *core.RT, data, acc vm.Addr, p int) {
	touched := w.touchedPages(w.fracOf(p))
	rets, err := rt.ParallelDo(w.threads, func(t *core.Thread) uint64 {
		lo := t.ID * touched / w.threads
		hi := (t.ID + 1) * touched / w.threads
		var sum uint64
		for i := lo; i < hi; i++ {
			a := data + vm.Addr(i)<<vm.PageShift
			// The per-page term keeps page contents distinct, so the
			// chunk columns measure the store, not accidental dedup of a
			// degenerate all-pages-identical workload.
			v := t.Env().ReadU64(a)*6364136223846793005 + uint64(i)*2654435761 + uint64(p*31+t.ID+1)
			t.Env().WriteU64(a, v)
			sum += v
		}
		return sum
	})
	if err != nil {
		panic(fmt.Sprintf("bench: ckpt phase: %v", err))
	}
	h := rt.Env().ReadU64(acc)
	for _, r := range rets {
		h = h*31 + r
	}
	rt.Env().WriteU64(acc, h)
}

// run executes phases [start, phases) on a fresh machine (start 0) —
// onBarrier, when set, is called after each phase and may stop the run.
func (w ckptWorkload) run(cfg kernel.Config, start int, st *core.RTState,
	onBarrier func(env *kernel.Env, after int) bool) kernel.RunResult {
	m := kernel.New(cfg)
	return w.drive(m, start, st, onBarrier)
}

// resume continues on a restored machine from the given barrier.
func (w ckptWorkload) resume(m *kernel.Machine, start int) kernel.RunResult {
	// The runtime bookkeeping is re-derivable here: the workload
	// allocates only in layout, so an attach with a replayed layout and
	// the layout-final cursor reproduces the checkpointed RT exactly.
	st := core.RTState{Base: core.SharedBase, Size: w.region}
	return w.drive(m, start, &st, nil)
}

func (w ckptWorkload) drive(m *kernel.Machine, start int, st *core.RTState,
	onBarrier func(env *kernel.Env, after int) bool) kernel.RunResult {
	return m.Run(func(env *kernel.Env) {
		var rt *core.RT
		var data, acc vm.Addr
		if st != nil {
			attached, err := core.Attach(env, core.RTState{
				Base: st.Base, Size: st.Size, Next: st.Base, // cursor set by layout below
			}, nil)
			if err != nil {
				panic(err)
			}
			rt = attached
			data, acc = w.layout(rt)
		} else {
			rt = core.New(env, w.region)
			data, acc = w.layout(rt)
			rt.Env().WriteU64(acc, 1)
		}
		for p := start; p < w.phases; p++ {
			w.phase(rt, data, acc, p)
			if onBarrier != nil && !onBarrier(env, p+1) {
				return
			}
		}
		env.SetRet(rt.Env().ReadU64(acc))
	}, 0)
}
