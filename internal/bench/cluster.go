package bench

import (
	"fmt"
	"runtime"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/workload"
)

// Cluster sweeps the sharded cross-node barrier tree against the flat
// single-collector protocol on growing clusters: the stencil workload
// at nodes × {flat, tree} × MergeWorkers {1, GOMAXPROCS}, every cell
// checksum-asserted. Three claims are enforced, not just reported:
//
//   - bit-identical results: checksums are equal across node counts,
//     collector modes and merge parallelism, and deliberate write/write
//     conflicts report identical byte addresses and totals in both
//     modes (the flat collector pins the thread, the tree the node);
//   - virtual-time determinism: within each mode, VT is identical at
//     MergeWorkers 1 and GOMAXPROCS;
//   - traffic: the root collector's cross-node message count drops from
//     O(threads) per round (flat: visit and merge every remote thread)
//     to O(nodes) per round (tree: one batched pre-merged delta per
//     node), and the tree's virtual time beats the flat collector's on
//     every multi-node row.
//
// The msg-base column is the explicit message-passing program over the
// same cost constants — with the same per-batch framing — the fairness
// bound the tree works toward.
func Cluster(o Options) Table {
	nodeSteps := []int{1, 2, 4, 8}
	pages, phases := 4, 4
	if o.Quick {
		nodeSteps = []int{1, 2, 4}
		pages, phases = 2, 3
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4 // exercise the parallel engine even on small hosts
	}
	cost := kernel.DefaultCostModel()

	t := Table{
		ID: "cluster",
		Title: fmt.Sprintf("sharded barrier tree vs flat collector (checksum-asserted, MergeWorkers 1 vs %d)",
			workers),
		Header: []string{"nodes", "threads", "flat-vt", "tree-vt", "speedup",
			"flat-msgs", "tree-msgs", "msgs", "flat-msg/thr", "tree-msg/node", "msg-base-vt", "checksum"},
	}
	for _, nodes := range nodeSteps {
		threads := 4 * nodes
		cfg := workload.ClusterConfig{
			Nodes: nodes, Threads: threads,
			PagesPerThread: pages, Phases: phases,
		}
		type cell struct {
			sum uint64
			vt  int64
			net kernel.NetStats
		}
		run := func(tree bool, mw int) cell {
			c := cfg
			c.Tree = tree
			var sum uint64
			var net kernel.NetStats
			res := core.Run(core.Options{
				Kernel: kernel.Config{
					Nodes: nodes, CPUsPerNode: 1, Cost: cost, MergeWorkers: mw,
				},
				SharedSize: workload.ClusterSharedBytes(c),
			}, func(rt *core.RT) uint64 {
				sum, net = workload.ClusterStencil(rt, c)
				return sum
			})
			if res.Status != kernel.StatusHalted {
				panic(fmt.Sprintf("bench: cluster n=%d tree=%v: %v %v", nodes, tree, res.Status, res.Err))
			}
			return cell{sum: sum, vt: res.VT, net: net}
		}
		flat1, flatN := run(false, 1), run(false, workers)
		tree1, treeN := run(true, 1), run(true, workers)
		if flat1 != flatN || tree1 != treeN {
			panic(fmt.Sprintf("bench: cluster n=%d: MergeWorkers changed a run: flat %+v/%+v tree %+v/%+v",
				nodes, flat1, flatN, tree1, treeN))
		}
		if flat1.sum != tree1.sum {
			panic(fmt.Sprintf("bench: cluster n=%d: tree checksum %#x != flat %#x",
				nodes, tree1.sum, flat1.sum))
		}
		if nodes > 1 {
			if tree1.vt >= flat1.vt {
				panic(fmt.Sprintf("bench: cluster n=%d: tree VT %d not below flat %d",
					nodes, tree1.vt, flat1.vt))
			}
			// O(threads) vs O(nodes): per collection pass (phases barrier
			// rounds plus the final join) the flat root performs at least
			// one cross-node interaction per thread; the tree root a
			// bounded few per node.
			passes := int64(phases)
			if flat1.net.Msgs < passes*int64(threads) {
				panic(fmt.Sprintf("bench: cluster n=%d: flat root sent %d msgs, below O(threads) floor %d",
					nodes, flat1.net.Msgs, passes*int64(threads)))
			}
			if tree1.net.Msgs >= flat1.net.Msgs {
				panic(fmt.Sprintf("bench: cluster n=%d: tree root msgs %d not below flat %d",
					nodes, tree1.net.Msgs, flat1.net.Msgs))
			}
		}
		assertConflictParity(nodes)
		baseVT := baseline.StencilDist(nodes, threads, pages, phases, cost)
		msgRatio := "-"
		if flat1.net.Msgs > 0 {
			msgRatio = f2(float64(tree1.net.Msgs) / float64(flat1.net.Msgs))
		}
		// Normalized traffic: per collection pass (phases-1 barrier
		// rounds plus the final join), the flat collector's messages
		// grow per thread, the tree's per node — the O(threads) →
		// O(nodes) drop, visible as two near-constant columns.
		passes := float64(phases)
		t.AddRow(iv(int64(nodes)), iv(int64(threads)),
			mi(flat1.vt), mi(tree1.vt), f2(float64(flat1.vt)/float64(tree1.vt)),
			iv(flat1.net.Msgs), iv(tree1.net.Msgs), msgRatio,
			f2(float64(flat1.net.Msgs)/(passes*float64(threads))),
			f2(float64(tree1.net.Msgs)/(passes*float64(nodes))),
			mi(baseVT), fmt.Sprintf("%08x", uint32(flat1.sum)))
	}
	t.Note("every row runs flat and tree at MergeWorkers 1 and %d; checksums, conflict bytes and VT", workers)
	t.Note("are asserted bit-identical across merge parallelism, and tree-vs-flat checksums equal;")
	t.Note("msgs is the root collector's cross-node message ratio (tree/flat): per-node batched deltas")
	t.Note("instead of per-thread visits; msg-base-vt is the explicit message-passing program with the")
	t.Note("same cost constants and batch framing (the traffic shape the tree approaches).")
	return t
}

// assertConflictParity plants one cross-node write/write conflict and
// requires the flat and tree collectors to report exactly the same
// conflicting bytes. Flat pins the later thread in node-then-thread
// order; the tree pins that thread's node.
func assertConflictParity(nodes int) {
	if nodes < 2 {
		return
	}
	grab := func(tree bool) *core.ConflictError {
		var out *core.ConflictError
		res := core.Run(core.Options{
			Kernel:     kernel.Config{Nodes: nodes, CPUsPerNode: 1},
			SharedSize: 4 << 20,
			TreeJoin:   tree,
		}, func(rt *core.RT) uint64 {
			slot := rt.Alloc(8, 8)
			_, err := rt.ParallelDoOn(2*nodes, func(i int) int { return i % nodes }, func(th *core.Thread) uint64 {
				if th.ID == 0 || th.ID == 1 {
					th.Env().WriteU32(slot, uint32(100+th.ID))
				}
				return 0
			})
			ce, ok := err.(*core.ConflictError)
			if !ok {
				panic(fmt.Sprintf("bench: cluster conflict probe (tree=%v): %v", tree, err))
			}
			out = ce
			return 1
		})
		if res.Status != kernel.StatusHalted {
			panic(fmt.Sprintf("bench: cluster conflict probe: %v %v", res.Status, res.Err))
		}
		return out
	}
	flat, tree := grab(false), grab(true)
	if flat.Cause.Total != tree.Cause.Total ||
		len(flat.Cause.Addrs) != len(tree.Cause.Addrs) {
		panic(fmt.Sprintf("bench: cluster n=%d: conflict reports differ: flat %v tree %v",
			nodes, flat.Cause, tree.Cause))
	}
	for i := range flat.Cause.Addrs {
		if flat.Cause.Addrs[i] != tree.Cause.Addrs[i] {
			panic(fmt.Sprintf("bench: cluster n=%d: conflict addr %d differs: %#x vs %#x",
				nodes, i, flat.Cause.Addrs[i], tree.Cause.Addrs[i]))
		}
	}
}
