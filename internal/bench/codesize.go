package bench

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Tab3 reproduces Table 3: implementation code size by component,
// counting lines containing semicolons as the paper does — a metric that
// undercounts Go (which elides most semicolons), so plain non-blank,
// non-comment source lines are reported alongside.
func Tab3(root string) Table {
	groups := []struct {
		name string
		dirs []string
	}{
		{"Kernel core (vm, spaces, merge, migration)", []string{"internal/vm", "internal/kernel"}},
		{"User-level runtime (threads, fs, proc, dsched, trace)",
			[]string{"internal/core", "internal/fs", "internal/uproc", "internal/dsched", "internal/trace"}},
		{"Benchmarks and baselines", []string{"internal/workload", "internal/baseline"}},
		{"Harness and tools", []string{"internal/bench", "cmd"}},
		{"User-level programs (shell, examples)", []string{"examples"}},
	}
	t := Table{
		ID:     "tab3",
		Title:  "implementation code size (this reproduction)",
		Header: []string{"component", "files", "lines", "semicolons", "test-lines"},
	}
	var totF, totL, totS, totT int
	for _, g := range groups {
		var files, lines, semis, testLines int
		for _, d := range g.dirs {
			f, l, s, tl := countDir(filepath.Join(root, d))
			files += f
			lines += l
			semis += s
			testLines += tl
		}
		if files == 0 {
			continue
		}
		t.AddRow(g.name, iv(int64(files)), iv(int64(lines)), iv(int64(semis)), iv(int64(testLines)))
		totF += files
		totL += lines
		totS += semis
		totT += testLines
	}
	t.AddRow("Total", iv(int64(totF)), iv(int64(totL)), iv(int64(totS)), iv(int64(totT)))
	t.Note("lines = non-blank, non-comment Go source lines (tests counted separately);")
	t.Note("semicolons = the paper's metric; Go elides most, so it understates relative to C.")
	return t
}

// countDir tallies Go files under dir: (files, non-test lines, non-test
// semicolon lines, test lines).
func countDir(dir string) (files, lines, semis, testLines int) {
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		l, s := countFile(path)
		files++
		if strings.HasSuffix(path, "_test.go") {
			testLines += l
		} else {
			lines += l
			semis += s
		}
		return nil
	})
	return
}

func countFile(path string) (lines, semis int) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	inBlock := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if inBlock {
			if i := strings.Index(line, "*/"); i >= 0 {
				line = strings.TrimSpace(line[i+2:])
				inBlock = false
			} else {
				continue
			}
		}
		if strings.HasPrefix(line, "/*") {
			inBlock = !strings.Contains(line, "*/")
			continue
		}
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		lines++
		if strings.Contains(line, ";") {
			semis++
		}
	}
	return
}

// Experiments lists every runnable experiment id.
func Experiments() []string {
	return []string{"fig4", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "quantum", "rocache", "merge", "dsched", "kv", "cluster", "ckpt", "serve", "make", "tab3"}
}

// Run executes one experiment by id. root is the repository root (used
// only by tab3).
func Run(id, root string, o Options) (Table, error) {
	switch id {
	case "fig4":
		return Fig4(o), nil
	case "fig7":
		return Fig7(o), nil
	case "fig8":
		return Fig8(o), nil
	case "fig9":
		return Fig9(o), nil
	case "fig10":
		return Fig10(o), nil
	case "fig11":
		return Fig11(o), nil
	case "fig12":
		return Fig12(o), nil
	case "quantum":
		return Quantum(o), nil
	case "rocache":
		return ROCache(o), nil
	case "merge":
		return MergeEngine(o), nil
	case "dsched":
		return DschedEngine(o), nil
	case "kv":
		return KVEngine(o), nil
	case "cluster":
		return Cluster(o), nil
	case "ckpt":
		return Ckpt(o), nil
	case "serve":
		return Serve(o), nil
	case "make":
		return MakeTable(o), nil
	case "tab3":
		return Tab3(root), nil
	}
	var t Table
	ids := strings.Join(Experiments(), ", ")
	return t, fmt.Errorf("bench: unknown experiment %q (have: %s)", id, ids)
}
