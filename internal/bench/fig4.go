package bench

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/uproc"
)

// Fig4 reproduces the parallel-make scheduling scenario of Figure 4:
// three compile tasks of lengths 3, 1 and 2 units on two CPUs. With
// unlimited parallelism ('make -j') the system schedules them and the
// makespan is optimal. With a 2-worker quota ('make -j2') the build
// waits for one task before starting the third — but Determinator's
// wait() deterministically reports the earliest-forked child (task 1,
// length 3), not the first finisher (task 2, length 1), so task 3
// starts late and the makespan is the non-optimal schedule (d) of the
// figure. An oracle row shows what Unix's completion-order wait would
// have achieved.
func Fig4(o Options) Table {
	const unit = 1_000_000 // virtual instructions per task length unit
	lengths := []int64{3, 1, 2}

	makespan := func(scenario func(p *uproc.Proc) int) int64 {
		reg := uproc.NewRegistry()
		reg.Register("make", scenario)
		res := uproc.Boot(uproc.BootConfig{
			Kernel:   kernel.Config{CPUsPerNode: 2},
			Registry: reg,
		}, "make")
		if res.Run.Status != kernel.StatusHalted {
			panic(fmt.Sprintf("bench: fig4 make stopped with %v: %v", res.Run.Status, res.Run.Err))
		}
		return res.Run.VT
	}

	task := func(len64 int64) uproc.Program {
		return func(p *uproc.Proc) int {
			p.Env().Tick(len64 * unit)
			return 0
		}
	}

	// (b) 'make -j': start all three immediately; join all.
	unlimited := makespan(func(p *uproc.Proc) int {
		var pids []int
		for _, l := range lengths {
			pid, err := p.Fork(task(l))
			if err != nil {
				panic(err)
			}
			pids = append(pids, pid)
		}
		for _, pid := range pids {
			if _, _, err := p.Waitpid(pid); err != nil {
				panic(err)
			}
		}
		return 0
	})

	// (d) 'make -j2' on Determinator: start tasks 1 and 2, then wait() —
	// which returns the earliest-forked (task 1) — before starting 3.
	detJ2 := makespan(func(p *uproc.Proc) int {
		p1, _ := p.Fork(task(lengths[0]))
		p2, _ := p.Fork(task(lengths[1]))
		if pid, _, _, err := p.Wait(); err != nil || pid != p1 {
			panic("wait() did not return the earliest-forked child")
		}
		p3, _ := p.Fork(task(lengths[2]))
		p.Waitpid(p2)
		p.Waitpid(p3)
		return 0
	})

	// (c) 'make -j2' with Unix's completion-order wait: the short task 2
	// finishes first, so task 3 starts after 1 unit. We emulate the
	// oracle by waiting for task 2 explicitly — information a real
	// Determinator program could not obtain.
	unixJ2 := makespan(func(p *uproc.Proc) int {
		p1, _ := p.Fork(task(lengths[0]))
		p2, _ := p.Fork(task(lengths[1]))
		p.Waitpid(p2) // oracle: "task 2 finished first"
		p3, _ := p.Fork(task(lengths[2]))
		p.Waitpid(p1)
		p.Waitpid(p3)
		return 0
	})

	t := Table{
		ID:     "fig4",
		Title:  "parallel make scheduling: wait() semantics (tasks 3/1/2 units, 2 CPUs)",
		Header: []string{"scenario", "makespan-vt", "vs-unlimited"},
	}
	t.AddRow("make -j (unlimited)", mi(unlimited), f2(1))
	t.AddRow("make -j2, Unix wait (oracle)", mi(unixJ2), f2(float64(unixJ2)/float64(unlimited)))
	t.AddRow("make -j2, Determinator wait", mi(detJ2), f2(float64(detJ2)/float64(unlimited)))
	t.Note("Determinator's wait() cannot learn which task finished first, so -j2 schedules")
	t.Note("suboptimally — the paper's advice is to leave scheduling to the system ('make -j').")
	return t
}
