package bench

import (
	"fmt"
	"time"

	"repro/internal/castore"
	"repro/internal/detmake"
)

// MakeTable sweeps the detmake build executor over DAG shapes — wide
// fan-out, deep chain, a diamond, and PARSEC-style dedup/ferret
// pipelines expressed as DAG special cases — building each shape cold
// and then warm over the same content-addressed store. Warm rows must
// re-fetch at least 90% of task results (in practice all of them) and
// every row asserts the warm tree digest and image checksum bit-equal
// to the cold build's: the determinism-makes-caching-sound claim,
// checked in-harness rather than reported. The final row per shape set
// is incremental: one leaf source changes and exactly that change's
// downstream cone re-executes.
func MakeTable(o Options) Table {
	shapes := makeShapes(o)
	t := Table{
		ID:    "make",
		Title: "detmake build executor: DAG shapes, cold vs warm over the build cache",
		Header: []string{"shape", "tasks", "waves", "cold-exec", "warm-hits", "hit%",
			"fetched-kb", "stored-kb", "cold-ms", "warm-ms", "bits"},
	}
	for _, sh := range shapes {
		g, err := detmake.NewGraph(sh.tasks)
		if err != nil {
			panic(fmt.Sprintf("bench: make %s: %v", sh.name, err))
		}
		store := castore.NewMemStore()
		idx := detmake.NewMemIndex()

		start := time.Now()
		cold, err := detmake.Build(detmake.Config{Graph: g, Sources: sh.sources, Store: store, Index: idx})
		coldWall := time.Since(start)
		if err != nil {
			panic(fmt.Sprintf("bench: make %s cold: %v", sh.name, err))
		}
		start = time.Now()
		warm, err := detmake.Build(detmake.Config{Graph: g, Sources: sh.sources, Store: store, Index: idx})
		warmWall := time.Since(start)
		if err != nil {
			panic(fmt.Sprintf("bench: make %s warm: %v", sh.name, err))
		}

		n := warm.Stats.Tasks
		if warm.Stats.CacheHits*10 < n*9 {
			panic(fmt.Sprintf("bench: make %s warm hit rate %d/%d < 90%%",
				sh.name, warm.Stats.CacheHits, n))
		}
		if warm.TreeDigest != cold.TreeDigest || warm.Checksum != cold.Checksum {
			panic(fmt.Sprintf("bench: make %s: warm bits differ from cold", sh.name))
		}
		t.AddRow(sh.name, iv(int64(n)), iv(int64(cold.Stats.Waves)),
			iv(int64(cold.Stats.Executed)), iv(int64(warm.Stats.CacheHits)),
			rat(float64(warm.Stats.CacheHits)/float64(n)),
			kb(warm.Stats.Fetched), kb(cold.Stats.Stored),
			ms(float64(coldWall.Microseconds())/1000),
			ms(float64(warmWall.Microseconds())/1000),
			"bit-eq")

		// Incremental row: change one leaf source, rebuild over the warm
		// store — exactly the changed file's downstream cone re-executes.
		if sh.leaf != "" {
			t.AddRow(makeIncrementalRow(sh, g, store, idx)...)
		}
	}
	t.Note("each shape builds cold into a fresh content-addressed store, then warm over it;")
	t.Note("warm rows assert >=90%% of results re-fetched and tree digest + image checksum")
	t.Note("bit-equal to cold (determinism makes the cache sound). +1-leaf rows change one")
	t.Note("source file: exactly its downstream cone re-executes, the rest stay cache hits.")
	return t
}

// makeIncrementalRow rebuilds a shape after changing one leaf source
// and asserts the re-executed set is exactly the leaf's cone.
func makeIncrementalRow(sh makeShape, g *detmake.Graph, store castore.BlobStore, idx detmake.ActionIndex) []string {
	changed := make(map[string][]byte, len(sh.sources))
	for p, b := range sh.sources {
		changed[p] = b
	}
	changed[sh.leaf] = append([]byte("edited\n"), sh.sources[sh.leaf]...)
	cone := g.Cone(sh.leaf)

	start := time.Now()
	inc, err := detmake.Build(detmake.Config{Graph: g, Sources: changed, Store: store, Index: idx})
	wall := time.Since(start)
	if err != nil {
		panic(fmt.Sprintf("bench: make %s incremental: %v", sh.name, err))
	}
	if inc.Stats.Executed != len(cone) {
		panic(fmt.Sprintf("bench: make %s incremental executed %d tasks, want cone %d",
			sh.name, inc.Stats.Executed, len(cone)))
	}
	// The incremental result must be bit-identical to a cold build of the
	// changed tree.
	cold, err := detmake.Build(detmake.Config{Graph: g, Sources: changed})
	if err != nil {
		panic(fmt.Sprintf("bench: make %s incremental cold: %v", sh.name, err))
	}
	if inc.TreeDigest != cold.TreeDigest || inc.Checksum != cold.Checksum {
		panic(fmt.Sprintf("bench: make %s: incremental bits differ from cold", sh.name))
	}
	n := inc.Stats.Tasks
	return []string{sh.name + "+1leaf", iv(int64(n)), iv(int64(inc.Stats.Waves)),
		iv(int64(inc.Stats.Executed)), iv(int64(inc.Stats.CacheHits)),
		rat(float64(inc.Stats.CacheHits) / float64(n)),
		kb(inc.Stats.Fetched), kb(inc.Stats.Stored),
		ms(float64(wall.Microseconds()) / 1000), "-", "bit-eq"}
}

// makeShape is one DAG under test: its tasks, source tree, and the leaf
// source the incremental row edits (empty: no incremental row).
type makeShape struct {
	name    string
	tasks   []*detmake.Task
	sources map[string][]byte
	leaf    string
}

// makeShapes builds the shape sweep. File counts stay well under the
// per-image inode ceiling (fs.NumInodes); Quick halves the fan-outs.
func makeShapes(o Options) []makeShape {
	wide, depth, items := 24, 16, 6
	if o.Quick {
		wide, depth, items = 12, 8, 4
	}

	var shapes []makeShape

	// Wide fan-out, the classic parmake shape: N sources, N independent
	// compiles, one link. Editing one source re-executes exactly that
	// compile and the link.
	{
		src := make(map[string][]byte, wide)
		var tasks []*detmake.Task
		var outs []string
		for i := 0; i < wide; i++ {
			in := fmt.Sprintf("src/f%02d.c", i)
			out := fmt.Sprintf("out/f%02d.o", i)
			src[in] = []byte(fmt.Sprintf("int f%02d;\n", i))
			tasks = append(tasks, &detmake.Task{
				ID: fmt.Sprintf("cc%02d", i), Action: "derive", Args: []string{fmt.Sprint(i)},
				Inputs: []string{in}, Outputs: []string{out},
			})
			outs = append(outs, out)
		}
		tasks = append(tasks, &detmake.Task{
			ID: "link", Action: "concat", Inputs: outs, Outputs: []string{"out/a.out"},
		})
		shapes = append(shapes, makeShape{"wide", tasks, src, "src/f00.c"})
	}

	// Deep chain: each task derives from the previous link.
	{
		src := map[string][]byte{"src/seed.txt": []byte("deep chain seed\n")}
		var tasks []*detmake.Task
		prev := "src/seed.txt"
		for i := 0; i < depth; i++ {
			out := fmt.Sprintf("out/c%02d.dat", i)
			tasks = append(tasks, &detmake.Task{
				ID: fmt.Sprintf("c%02d", i), Action: "derive", Args: []string{fmt.Sprint(i)},
				Inputs: []string{prev}, Outputs: []string{out},
			})
			prev = out
		}
		// No incremental row: the seed's cone is the whole chain.
		shapes = append(shapes, makeShape{"chain", tasks, src, ""})
	}

	// Diamond: one source splits into two branches that rejoin.
	{
		src := map[string][]byte{"src/top.txt": []byte("diamond top\n")}
		tasks := []*detmake.Task{
			{ID: "top", Action: "upper", Inputs: []string{"src/top.txt"}, Outputs: []string{"out/top.dat"}},
			{ID: "left", Action: "derive", Args: []string{"l"}, Inputs: []string{"out/top.dat"}, Outputs: []string{"out/l.dat"}},
			{ID: "right", Action: "derive", Args: []string{"r"}, Inputs: []string{"out/top.dat"}, Outputs: []string{"out/r.dat"}},
			{ID: "bottom", Action: "concat", Inputs: []string{"out/l.dat", "out/r.dat"}, Outputs: []string{"out/bot.dat"}},
		}
		shapes = append(shapes, makeShape{"diamond", tasks, src, ""})
	}

	// PARSEC dedup as a DAG: chunk the stream, compress (derive) each
	// chunk in parallel, reassemble.
	{
		parts := wide / 3
		stream := make([]byte, 0, 4096)
		for len(stream) < 4096 {
			stream = append(stream, fmt.Sprintf("block %d of the input stream\n", len(stream))...)
		}
		src := map[string][]byte{"src/stream.bin": stream}
		var chunkOuts, compOuts []string
		for i := 0; i < parts; i++ {
			chunkOuts = append(chunkOuts, fmt.Sprintf("chunk/p%02d.raw", i))
			compOuts = append(compOuts, fmt.Sprintf("comp/p%02d.z", i))
		}
		tasks := []*detmake.Task{{
			ID: "chunk", Action: "chunk", Inputs: []string{"src/stream.bin"}, Outputs: chunkOuts,
		}}
		for i := 0; i < parts; i++ {
			tasks = append(tasks, &detmake.Task{
				ID: fmt.Sprintf("comp%02d", i), Action: "derive", Args: []string{"z"},
				Inputs: []string{chunkOuts[i]}, Outputs: []string{compOuts[i]},
			})
		}
		tasks = append(tasks, &detmake.Task{
			ID: "pack", Action: "concat", Inputs: compOuts, Outputs: []string{"out/stream.ddp"},
		})
		shapes = append(shapes, makeShape{"dedup", tasks, src, ""})
	}

	// PARSEC ferret as a DAG: per-query multi-stage pipelines
	// (segment -> extract -> index -> rank) fanning into one result.
	{
		src := make(map[string][]byte, items)
		var tasks []*detmake.Task
		var ranks []string
		stages := []string{"seg", "ext", "idx", "rank"}
		for q := 0; q < items; q++ {
			in := fmt.Sprintf("src/q%02d.img", q)
			src[in] = []byte(fmt.Sprintf("query image %d\n", q))
			prev := in
			for s, stage := range stages {
				out := fmt.Sprintf("out/q%02d.%s", q, stage)
				tasks = append(tasks, &detmake.Task{
					ID: fmt.Sprintf("q%02d-%s", q, stage), Action: "derive",
					Args:   []string{fmt.Sprint(s)},
					Inputs: []string{prev}, Outputs: []string{out},
				})
				prev = out
			}
			ranks = append(ranks, prev)
		}
		tasks = append(tasks, &detmake.Task{
			ID: "merge", Action: "concat", Inputs: ranks, Outputs: []string{"out/results.txt"},
		})
		shapes = append(shapes, makeShape{"ferret", tasks, src, "src/q00.img"})
	}

	return shapes
}

func kb(b int64) string { return fmt.Sprintf("%d", (b+1023)>>10) }
