package bench

import (
	"strconv"
	"strings"
	"testing"
)

// The harness itself under test: quick-mode experiments must produce
// well-formed tables with the expected structure, and deterministic
// virtual-time columns must repeat exactly.

func TestAllExperimentsRunQuick(t *testing.T) {
	for _, id := range Experiments() {
		id := id
		t.Run(id, func(t *testing.T) {
			tab, err := Run(id, "../..", Options{Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			if tab.ID != id {
				t.Errorf("table id %q, want %q", tab.ID, id)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("no rows")
			}
			for i, r := range tab.Rows {
				if len(r) != len(tab.Header) {
					t.Errorf("row %d has %d cells, header has %d", i, len(r), len(tab.Header))
				}
			}
			out := tab.Format()
			if !strings.Contains(out, tab.Title) {
				t.Error("formatted output missing title")
			}
		})
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	if _, err := Run("fig99", ".", Options{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFig7RatiosReproduceShape(t *testing.T) {
	// The coarse/fine split is the paper's headline: md5 and matmult
	// must land near parity, the lu pair well above, and lu_noncont
	// above lu_cont.
	tab := Fig7(Options{Quick: false, CPUs: 12})
	ratios := map[string]float64{}
	for _, r := range tab.Rows {
		v, err := strconv.ParseFloat(r[4], 64)
		if err != nil {
			t.Fatalf("bad ratio cell %q", r[4])
		}
		ratios[r[0]] = v
	}
	if ratios["md5"] > 1.3 {
		t.Errorf("md5 ratio %.2f, want near parity", ratios["md5"])
	}
	if ratios["matmult"] > 1.5 {
		t.Errorf("matmult ratio %.2f, want near parity", ratios["matmult"])
	}
	if ratios["lu_cont"] < 1.5 {
		t.Errorf("lu_cont ratio %.2f, want clearly above parity", ratios["lu_cont"])
	}
	if ratios["lu_noncont"] <= ratios["lu_cont"] {
		t.Errorf("lu_noncont (%.2f) not worse than lu_cont (%.2f): layout distinction lost",
			ratios["lu_noncont"], ratios["lu_cont"])
	}
	if ratios["fft"] < 2 {
		t.Errorf("fft ratio %.2f, want fine-grained penalty", ratios["fft"])
	}
}

func TestFig8SpeedupShape(t *testing.T) {
	tab := Fig8(Options{Quick: false, CPUs: 12})
	get := func(name string, col int) float64 {
		for _, r := range tab.Rows {
			if r[0] == name {
				v, _ := strconv.ParseFloat(r[col], 64)
				return v
			}
		}
		t.Fatalf("row %q missing", name)
		return 0
	}
	last := len(tab.Header) - 1
	if s := get("md5", last); s < 8 {
		t.Errorf("md5 12-cpu speedup %.2f, want near-linear", s)
	}
	if s := get("lu_noncont", last); s > 5 {
		t.Errorf("lu_noncont 12-cpu speedup %.2f, want poor scaling", s)
	}
	// Monotone in CPU count for md5 (embarrassingly parallel).
	prev := 0.0
	for col := 1; col <= last; col++ {
		s := get("md5", col)
		if s < prev-0.01 {
			t.Errorf("md5 speedup not monotone at column %d: %.2f after %.2f", col, s, prev)
		}
		prev = s
	}
}

func TestFig11DistributedShape(t *testing.T) {
	tab := Fig11(Options{Quick: true})
	get := func(name string, col int) float64 {
		for _, r := range tab.Rows {
			if r[0] == name {
				v, _ := strconv.ParseFloat(r[col], 64)
				return v
			}
		}
		t.Fatalf("row %q missing", name)
		return 0
	}
	last := len(tab.Header) - 1
	if tree, mm := get("md5-tree", last), get("matmult-tree", last); tree <= mm {
		t.Errorf("md5-tree (%.2f) should outscale matmult-tree (%.2f)", tree, mm)
	}
}

func TestQuantumOverheadDecreases(t *testing.T) {
	tab := Quantum(Options{Quick: true})
	var overheads []float64
	for _, r := range tab.Rows {
		s := strings.TrimSuffix(strings.TrimPrefix(r[3], "+"), "%")
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad overhead cell %q", r[3])
		}
		overheads = append(overheads, v)
	}
	for i := 1; i < len(overheads); i++ {
		if overheads[i] > overheads[i-1]+0.5 {
			t.Errorf("overhead rose with larger quantum: %v", overheads)
		}
	}
	if overheads[0] < 5 {
		t.Errorf("smallest quantum shows only %.1f%% overhead; sweep not exercising rounds", overheads[0])
	}
}

func TestTab3CountsNonzero(t *testing.T) {
	tab := Tab3("../..")
	if len(tab.Rows) < 4 {
		t.Fatalf("tab3 found only %d component groups", len(tab.Rows))
	}
	total := tab.Rows[len(tab.Rows)-1]
	lines, err := strconv.Atoi(total[2])
	if err != nil || lines < 3000 {
		t.Errorf("total line count %q implausible", total[2])
	}
}

func TestExperimentVTDeterministic(t *testing.T) {
	// Deterministic columns of a vt-only experiment must be identical
	// across harness invocations.
	a := Fig11(Options{Quick: true})
	b := Fig11(Options{Quick: true})
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatalf("fig11 cell (%d,%d) differs across runs: %q vs %q",
					i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
}

func TestTableFormatting(t *testing.T) {
	tab := Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"name", "value"},
	}
	tab.AddRow("a", "1")
	tab.AddRow("long-name", "22")
	tab.Note("a note with %d", 7)
	out := tab.Format()
	if !strings.Contains(out, "== x: demo ==") || !strings.Contains(out, "note: a note with 7") {
		t.Errorf("format output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Errorf("expected 6 lines, got %d:\n%s", len(lines), out)
	}
}
