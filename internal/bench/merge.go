package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/vm"
)

// MergeEngine measures the parallel merge engine directly at the vm layer:
// join throughput versus dirty fraction and thread count, serial versus
// parallel workers, plus the pte-scan reduction from dirty-page tracking.
// Two workload shapes bracket the join cost space:
//
//   - adopt: only the children write, so every dirtied page is adopted by
//     pointer move — the cheapest possible join;
//   - compare: the parent touches every page after forking, so every
//     dirtied child page is byte-compared — the 4 KiB-per-page slow path
//     that dominates fine-grained workloads, and the one host parallelism
//     accelerates.
//
// Merge results are engine-independent (see the vm property tests); these
// rows report the wall-clock and iteration effort behind that equivalence.
func MergeEngine(o Options) Table {
	pages := 16 * 1024 // 64 MiB shared region, 16 level-2 tables
	threadSteps := []int{1, 2, 4, 8}
	dirtyFracs := []float64{0.1, 1.0}
	if o.Quick {
		pages = 4 * 1024
		threadSteps = []int{2, 4}
	}
	// Floor the worker count so the concurrent engine is exercised (and
	// its coordination overhead visible) even on small hosts; extra
	// workers beyond GOMAXPROCS cannot help, only cost a little.
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}

	t := Table{
		ID: "merge",
		Title: fmt.Sprintf("merge engine: serial vs %d-worker parallel join (%d-page region)",
			workers, pages),
		Header: []string{"scenario", "threads", "dirty", "serial", "parallel", "speedup",
			"gbps", "kern-x", "scan-full", "scan-dirty", "adopted", "compared"},
	}
	for _, scenario := range []string{"adopt", "compare"} {
		for _, threads := range threadSteps {
			for _, frac := range dirtyFracs {
				r := measureMerge(pages, threads, frac, scenario == "compare", workers)
				gbps, kernX := "-", "-"
				if r.kernCompared > 0 {
					gbps = f2(float64(r.kernCompared) * vm.PageSize / r.wordKernel.Seconds() / 1e9)
					ratio := r.byteKernel.Seconds() / r.wordKernel.Seconds()
					kernX = f2(ratio)
					if scenario == "compare" && frac == 1.0 && ratio < 2.0 {
						// Regression guard: the word-masked kernel must hold
						// at least a 2x single-threaded throughput win over
						// the per-byte oracle on the compare-heavy rows.
						panic(fmt.Sprintf(
							"bench: word merge kernel only %.2fx the byte kernel on compare threads=%d dirty=%.0f%% (want >= 2x)",
							ratio, threads, 100*frac))
					}
				}
				t.AddRow(scenario, iv(int64(threads)), pct(frac),
					ms(r.serial.Seconds()*1000), ms(r.parallel.Seconds()*1000),
					f2(r.serial.Seconds()/r.parallel.Seconds()), gbps, kernX,
					iv(int64(r.scanFull)), iv(int64(r.scanDirty)),
					iv(int64(r.adopted)), iv(int64(r.compared)))
			}
		}
	}
	t.Note("serial/parallel join the same %d children; dirty tracking cuts scan-full to scan-dirty;", threadSteps[len(threadSteps)-1])
	t.Note("compare rows byte-compare every dirty page (parent touched), adopt rows move ptes only.")
	t.Note("gbps/kern-x time the page-compare slow path itself — a steady-state re-join against an")
	t.Note("already-owned destination, the master's situation after round one, so the one-time COW")
	t.Note("breaks of the first join do not mask the kernels. gbps is compared bytes per second")
	t.Note("through the word-masked kernel; kern-x its speedup over the per-byte reference kernel,")
	t.Note("asserted >= 2x on full-dirty compare rows. wall columns are host measurements; merged")
	t.Note("bytes, stats and conflicts are identical throughout.")
	return t
}

// MergeWorkload is a reusable fork scenario: a fully-written parent and
// per-thread children that each dirtied a fraction of their partition.
// It is shared between the merge experiment table and the repo-root
// BenchmarkMerge so both measure exactly the same work.
type MergeWorkload struct {
	Parent   *vm.Space
	Children []*vm.Space
	Snaps    []*vm.Space
	Span     uint64
}

// BuildMergeWorkload forks threads children off a fully-written parent of
// the given page count; each child dirties frac of its partition with
// bytes that differ from the snapshot. With parentDirty the parent then
// touches one byte of every page, so child-dirtied pages cannot be
// adopted and every join takes the byte-compare slow path.
func BuildMergeWorkload(pages, threads int, frac float64, parentDirty bool) *MergeWorkload {
	w := &MergeWorkload{Span: uint64(pages) * vm.PageSize}
	w.Parent = vm.NewSpace()
	if err := w.Parent.SetPerm(0, w.Span, vm.PermRW); err != nil {
		panic(err)
	}
	buf := make([]byte, vm.PageSize)
	for i := range buf {
		buf[i] = byte(i)
	}
	for p := 0; p < pages; p++ {
		if err := w.Parent.Write(vm.Addr(p)*vm.PageSize, buf); err != nil {
			panic(err)
		}
	}
	inv := make([]byte, 1024)
	for i := range inv {
		inv[i] = ^buf[128+i]
	}
	per := pages / threads
	for c := 0; c < threads; c++ {
		child := vm.NewSpace()
		child.CopyAllFrom(w.Parent)
		snap, _ := child.Snapshot()
		dirty := int(float64(per) * frac)
		for p := 0; p < dirty; p++ {
			// A 1 KiB span that differs from the snapshot, placed away
			// from the byte the parent may dirty so no conflict arises.
			a := vm.Addr(c*per+p)*vm.PageSize + 128
			if err := child.Write(a, inv); err != nil {
				panic(err)
			}
		}
		w.Children = append(w.Children, child)
		w.Snaps = append(w.Snaps, snap)
	}
	if parentDirty {
		for p := 0; p < pages; p++ {
			if err := w.Parent.Write(vm.Addr(p)*vm.PageSize+7, []byte{0xa5}); err != nil {
				panic(err)
			}
		}
	}
	return w
}

// JoinAll merges every child into a fresh COW copy of the parent, in
// thread-id order, and reports the summed stats and wall time.
func (w *MergeWorkload) JoinAll(cfg vm.MergeConfig) (vm.MergeStats, time.Duration) {
	dst := vm.NewSpace()
	dst.CopyAllFrom(w.Parent)
	var total vm.MergeStats
	start := time.Now()
	for c := range w.Children {
		st, err := vm.MergeEx(dst, w.Children[c], w.Snaps[c], 0, w.Span, cfg)
		if err != nil {
			panic(err)
		}
		total.TablesAdopted += st.TablesAdopted
		total.PagesAdopted += st.PagesAdopted
		total.PagesCompared += st.PagesCompared
		total.BytesMerged += st.BytesMerged
		total.PtesScanned += st.PtesScanned
	}
	wall := time.Since(start)
	dst.Free()
	return total, wall
}

// Free releases every space the workload holds.
func (w *MergeWorkload) Free() {
	for i := range w.Children {
		w.Children[i].Free()
		w.Snaps[i].Free()
	}
	w.Parent.Free()
}

type mergeMeasurement struct {
	serial, parallel       time.Duration
	wordKernel, byteKernel time.Duration // steady-state slow-path joins per kernel
	scanFull, scanDirty    int
	adopted, compared      int
	kernCompared           int // pages the steady-state join byte-compares
}

// KernelDuel times the page-compare slow path itself under both merge
// kernels. The children are first merged once into a persistent copy of
// the parent to break its COW sharing (and convert pointer-adopted pages
// into diverged ones), then re-merged with each kernel against the now
// privately-owned destination — the dsched master's steady state after
// round one. Re-merges use last-writer-wins because the destination
// already holds the childrens' bytes, which strict mode would report as
// conflicts against the snapshot. Both kernels must produce identical
// stats; the walls and the per-join compared-page count are returned.
func (w *MergeWorkload) KernelDuel(reps int) (word, byt time.Duration, compared int) {
	dst := vm.NewSpace()
	dst.CopyAllFrom(w.Parent)
	defer dst.Free()
	join := func(cfg vm.MergeConfig) (vm.MergeStats, time.Duration) {
		cfg.Mode = vm.MergeLastWriter
		var total vm.MergeStats
		start := time.Now()
		for c := range w.Children {
			st, err := vm.MergeEx(dst, w.Children[c], w.Snaps[c], 0, w.Span, cfg)
			if err != nil {
				panic(err)
			}
			total.PagesCompared += st.PagesCompared
			total.BytesMerged += st.BytesMerged
		}
		return total, time.Since(start)
	}
	join(vm.MergeConfig{}) // warm: break COW, un-adopt, own every page
	join(vm.MergeConfig{}) // warm: re-break pages the un-adopt re-shared
	for r := 0; r < reps; r++ {
		wordSt, wordWall := join(vm.MergeConfig{})
		byteSt, byteWall := join(vm.MergeConfig{ByteKernel: true})
		if wordSt != byteSt {
			panic(fmt.Sprintf("bench: merge kernels disagree on stats: word %+v byte %+v", wordSt, byteSt))
		}
		if r == 0 || wordWall < word {
			word = wordWall
		}
		if r == 0 || byteWall < byt {
			byt = byteWall
		}
		compared = wordSt.PagesCompared
	}
	return word, byt, compared
}

func measureMerge(pages, threads int, frac float64, parentDirty bool, workers int) mergeMeasurement {
	w := BuildMergeWorkload(pages, threads, frac, parentDirty)
	defer w.Free()
	var m mergeMeasurement
	// The full-scan join exists only for its deterministic PtesScanned
	// counter; one untimed run suffices.
	full, _ := w.JoinAll(vm.MergeConfig{NoDirtyHints: true})
	m.scanFull = full.PtesScanned
	const reps = 3
	for r := 0; r < reps; r++ {
		st, serial := w.JoinAll(vm.MergeConfig{})
		byteSt, _ := w.JoinAll(vm.MergeConfig{ByteKernel: true})
		_, parallel := w.JoinAll(vm.MergeConfig{Workers: workers})
		if st != byteSt {
			panic(fmt.Sprintf("bench: merge kernels disagree on stats: word %+v byte %+v", st, byteSt))
		}
		if r == 0 || serial < m.serial {
			m.serial = serial
		}
		if r == 0 || parallel < m.parallel {
			m.parallel = parallel
		}
		m.scanDirty = st.PtesScanned
		m.adopted = st.PagesAdopted
		m.compared = st.PagesCompared
	}
	m.wordKernel, m.byteKernel, m.kernCompared = w.KernelDuel(reps)
	return m
}
