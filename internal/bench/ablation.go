package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kernel"
)

// ROCache is the ablation of §3.3's read-only page caching: when a space
// repeatedly migrates among nodes, each node's kernel reuses cached
// copies of pages the space only reads (program code, reference data).
// The workload is the access pattern the optimization targets: a master
// carrying a read-only reference table (64 pages) makes several laps of
// the cluster, consulting the table on every node to dispatch work —
// the "travelling salesman" pattern of md5-circuit with a working set
// big enough to matter.
func ROCache(o Options) Table {
	nodeSteps := []int{2, 4, 8, 16}
	if o.Quick {
		nodeSteps = []int{2, 4}
	}
	const refPages = 64
	const laps = 3
	run := func(nodes int, disable bool) int64 {
		res := core.Run(core.Options{
			Kernel: kernel.Config{
				Nodes:          nodes,
				CPUsPerNode:    1,
				DisableROCache: disable,
			},
			SharedSize: 1 << 20,
		}, func(rt *core.RT) uint64 {
			env := rt.Env()
			ref := rt.AllocPages(refPages)
			table := make([]uint32, refPages*1024)
			for i := range table {
				table[i] = uint32(i)
			}
			env.WriteU32s(ref, table)
			buf := make([]uint32, refPages*1024)
			for lap := 0; lap < laps; lap++ {
				for nd := 0; nd < nodes; nd++ {
					id := lap*nodes + nd
					// Fork a worker on node nd (this migrates the
					// master there)...
					if err := rt.ForkOn(nd, id, func(t *core.Thread) uint64 {
						t.Env().Tick(10_000)
						return 0
					}); err != nil {
						panic(err)
					}
					// ...where the master consults its reference table
					// to decide the next dispatch.
					env.ReadU32s(ref, buf)
					if _, err := rt.JoinOn(nd, id); err != nil {
						panic(err)
					}
				}
			}
			return 0
		})
		if res.Status != kernel.StatusHalted {
			panic(fmt.Sprintf("bench: rocache ablation stopped: %v %v", res.Status, res.Err))
		}
		return res.VT
	}
	t := Table{
		ID:     "rocache",
		Title:  "ablation: read-only page cache for re-migrating spaces (§3.3)",
		Header: []string{"nodes", "cached", "uncached", "penalty"},
	}
	for _, n := range nodeSteps {
		c := run(n, false)
		u := run(n, true)
		t.AddRow(iv(int64(n)), mi(c), mi(u), pct(float64(u)/float64(c)-1))
	}
	t.Note("a master carrying a %d-page read-only table makes %d laps of the cluster;", refPages, laps)
	t.Note("without per-node caching every revisit re-transfers the table.")
	return t
}
