// Package bench is the experiment harness: one runner per table and
// figure in the paper's evaluation (§6), each reproducing the same rows
// or series the paper reports. Reported "virtual times" come from the
// kernel's deterministic cost model (see DESIGN.md §4.2); wall-clock
// columns are measured on the host where they are meaningful.
package bench

import (
	"fmt"
	"strings"
)

// Table is an experiment result: a title, column headers, rows, and
// explanatory notes printed underneath.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends an explanatory note.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - len(c)
			if i == 0 {
				b.WriteString(c + strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad) + c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total) + "\n")
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func ms(d float64) string  { return fmt.Sprintf("%.1fms", d) }
func iv(v int64) string    { return fmt.Sprintf("%d", v) }
func mi(v int64) string    { return fmt.Sprintf("%.1fM", float64(v)/1e6) }
func pct(v float64) string { return fmt.Sprintf("%+.1f%%", v*100) }

// rat formats an absolute ratio (no sign — pct is for deltas).
func rat(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
