package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/workload"
)

// KVEngine sweeps the key-value-store reconciliation scenario over
// threads × write-ratio × value-size, running every row twice — once
// with the kernel's merge engine serialized (MergeWorkers=1) and once at
// host parallelism — and asserting the image checksums, conflict counts
// and virtual times are bit-identical. That is the determinism claim of
// the FS layer made measurable: directories, free-list reuse, chained
// growth and Compact all sit on the reconciliation path, and none of it
// may depend on how the host happened to parallelize the joins.
//
// The reuse column is the extent-GC payoff: allocations served from the
// free list (unlink-heavy rows must show it, and the harness asserts
// they do), where the paper's prototype leaked every freed extent.
func KVEngine(o Options) Table {
	threadSteps := []int{2, 4, 8}
	shapes := []struct {
		writePct, valueSize int
	}{{20, 128}, {60, 256}, {90, 512}}
	cfg := workload.KVConfig{Keys: 8, Ops: 48, Rounds: 3}
	if o.Quick {
		threadSteps = []int{2, 4}
		shapes = shapes[:2]
		cfg.Keys = 6
		cfg.Ops = 24
		cfg.Rounds = 2
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4 // exercise the concurrent engine even on small hosts
	}

	t := Table{
		ID: "kv",
		Title: fmt.Sprintf("kv store over FS reconciliation: serial vs %d-worker merge (checksum-asserted)",
			workers),
		Header: []string{"threads", "write", "valsz", "conflicts", "allocs", "reused",
			"reuse", "grows", "image", "serial", "parallel", "vt", "checksum"},
	}
	for _, th := range threadSteps {
		for _, sh := range shapes {
			c := cfg
			c.Threads = th
			c.WritePct = sh.writePct
			c.ValueSize = sh.valueSize
			sum1, st1, vt1, wall1 := runKV(c, 1)
			sumN, stN, vtN, wallN := runKV(c, workers)
			if sum1 != sumN || st1 != stN || vt1 != vtN {
				panic(fmt.Sprintf("bench: kv t=%d w=%d v=%d: MergeWorkers changed the run: "+
					"checksum %#x/%#x vt %d/%d conflicts %d/%d",
					th, sh.writePct, sh.valueSize, sum1, sumN, vt1, vtN, st1.Conflicts, stN.Conflicts))
			}
			if sh.writePct >= 60 && st1.GC.Reused == 0 {
				panic(fmt.Sprintf("bench: kv t=%d w=%d: unlink-heavy row shows no extent reuse",
					th, sh.writePct))
			}
			reuseRate := 0.0
			if st1.GC.Allocs > 0 {
				reuseRate = float64(st1.GC.Reused) / float64(st1.GC.Allocs)
			}
			t.AddRow(iv(int64(th)), rat(float64(sh.writePct)/100), iv(int64(sh.valueSize)),
				iv(int64(st1.Conflicts)), iv(int64(st1.GC.Allocs)), iv(int64(st1.GC.Reused)),
				rat(reuseRate), iv(int64(st1.GC.Grows)),
				fmt.Sprintf("%dK", st1.Image>>10),
				ms(wall1.Seconds()*1000), ms(wallN.Seconds()*1000),
				mi(vt1), fmt.Sprintf("%08x", uint32(sum1)))
		}
	}
	t.Note("each row runs twice (MergeWorkers 1 vs %d); checksums, conflicts and VT are asserted identical;", workers)
	t.Note("reuse = free-list hits / extent allocations in the master image (the paper leaked these);")
	t.Note("grows counts chained regions added past the 64K initial image; image is the final mapped size.")
	return t
}

func runKV(cfg workload.KVConfig, mergeWorkers int) (uint64, workload.KVStats, int64, time.Duration) {
	var sum uint64
	var st workload.KVStats
	start := time.Now()
	res := core.Run(core.Options{
		Kernel:     kernel.Config{CPUsPerNode: cfg.Threads, MergeWorkers: mergeWorkers},
		SharedSize: 4 << 20,
	}, func(rt *core.RT) uint64 {
		sum, st = workload.KVStore(rt, cfg)
		return sum
	})
	wall := time.Since(start)
	if res.Status != kernel.StatusHalted {
		panic(fmt.Sprintf("bench: kv stopped with %v: %v", res.Status, res.Err))
	}
	return sum, st, res.VT, wall
}
