package bench

import (
	"fmt"
	"runtime"

	"repro/internal/baseline"
	"repro/internal/kernel"
	"repro/internal/workload"
)

// Fig7 reproduces Figure 7: Determinator performance relative to a
// nondeterministic baseline on all seven benchmarks at the modelled CPU
// count. Ratios above 1 mean Determinator is slower. Two views are
// reported: the deterministic virtual-time ratio against an idealized
// zero-overhead baseline, and host wall-clock against the real goroutine
// baselines at the host's parallelism.
func Fig7(o Options) Table {
	cpus := o.cpus()
	hostThreads := runtime.GOMAXPROCS(0)
	cost := kernel.DefaultCostModel()
	bases := baseline.Baselines()
	t := Table{
		ID:    "fig7",
		Title: fmt.Sprintf("Determinator relative to nondeterministic baseline (%d modelled CPUs)", cpus),
		Header: []string{"benchmark", "size", "det-vt", "ideal-base-vt", "vt-ratio",
			"det-wall", "base-wall", "wall-ratio"},
	}
	for _, spec := range workload.Specs() {
		size := o.size(spec)
		det := runDet(spec, cpus, cpus, 1, size, cost)
		ideal := idealBaselineVT(spec, size, cpus, cpus, cost)
		wallDet := runDet(spec, hostThreads, hostThreads, 1, size, cost)
		baseWall, baseVal := measureWall(func() uint64 { return bases[spec.Name](hostThreads, size) })
		if baseVal != det.Value {
			panic(fmt.Sprintf("bench: %s: baseline result %d != deterministic result %d",
				spec.Name, baseVal, det.Value))
		}
		t.AddRow(spec.Name, iv(int64(size)), mi(det.VT), mi(ideal),
			f2(float64(det.VT)/float64(ideal)),
			ms(float64(wallDet.Wall.Microseconds())/1000),
			ms(float64(baseWall.Microseconds())/1000),
			f2(float64(wallDet.Wall)/float64(baseWall)))
	}
	t.Note("vt-ratio compares against an ideal baseline that pays nothing for sync or isolation;")
	t.Note("coarse-grained benchmarks should sit near 1, fine-grained (fft, lu) well above — the paper's shape.")
	t.Note("wall columns are host measurements at %d threads and are load-sensitive.", hostThreads)
	return t
}

// Fig8 reproduces Figure 8: each benchmark's self-speedup over its own
// single-CPU deterministic run, for 1..12 modelled CPUs.
func Fig8(o Options) Table {
	cpuSteps := []int{1, 2, 4, 8, o.cpus()}
	cost := kernel.DefaultCostModel()
	t := Table{ID: "fig8", Title: "Determinator parallel speedup over its own 1-CPU run"}
	t.Header = []string{"benchmark"}
	for _, c := range cpuSteps {
		t.Header = append(t.Header, fmt.Sprintf("%dcpu", c))
	}
	for _, spec := range workload.Specs() {
		size := o.size(spec)
		base := runDet(spec, 1, 1, 1, size, cost).VT
		row := []string{spec.Name}
		for _, c := range cpuSteps {
			vt := runDet(spec, c, c, 1, size, cost).VT
			row = append(row, f2(float64(base)/float64(vt)))
		}
		t.AddRow(row...)
	}
	t.Note("md5/blackscholes scale best; matmult and fft level off; qsort and lu scale poorly (paper Fig. 8).")
	return t
}

// sweep runs a det-vs-baseline size sweep for one benchmark (Figures 9
// and 10): performance relative to the baseline as the problem grows.
func sweep(id, title, name string, sizes []int, o Options) Table {
	spec, err := workload.Lookup(name)
	if err != nil {
		panic(err)
	}
	cpus := o.cpus()
	hostThreads := runtime.GOMAXPROCS(0)
	cost := kernel.DefaultCostModel()
	base := baseline.Baselines()[name]
	t := Table{
		ID:     id,
		Title:  title,
		Header: []string{"size", "det-vt", "ideal-base-vt", "vt-ratio", "det-wall", "base-wall", "wall-ratio"},
	}
	for _, size := range sizes {
		det := runDet(spec, cpus, cpus, 1, size, cost)
		ideal := idealBaselineVT(spec, size, cpus, cpus, cost)
		wallDet := runDet(spec, hostThreads, hostThreads, 1, size, cost)
		baseWall, baseVal := measureWall(func() uint64 { return base(hostThreads, size) })
		if baseVal != det.Value {
			panic(fmt.Sprintf("bench: %s size %d: baseline %d != det %d", name, size, baseVal, det.Value))
		}
		t.AddRow(iv(int64(size)), mi(det.VT), mi(ideal),
			f2(float64(det.VT)/float64(ideal)),
			ms(float64(wallDet.Wall.Microseconds())/1000),
			ms(float64(baseWall.Microseconds())/1000),
			f2(float64(wallDet.Wall)/float64(baseWall)))
	}
	t.Note("small problems pay the per-fork page-copy/merge cost; ratios fall toward 1 as size grows (paper Figs. 9/10).")
	return t
}

// Fig9 reproduces Figure 9: matrix multiply with varying matrix size.
func Fig9(o Options) Table {
	sizes := []int{16, 32, 64, 128, 256}
	if o.Quick {
		sizes = []int{16, 32, 64, 128}
	}
	return sweep("fig9", "matmult vs matrix size (relative to baseline)", "matmult", sizes, o)
}

// Fig10 reproduces Figure 10: parallel quicksort with varying array size.
func Fig10(o Options) Table {
	sizes := []int{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18}
	if o.Quick {
		sizes = []int{1 << 10, 1 << 12, 1 << 14}
	}
	return sweep("fig10", "qsort vs array size (relative to baseline)", "qsort", sizes, o)
}

// Fig11 reproduces Figure 11: speedup of the distributed shared-memory
// benchmarks on growing clusters of uniprocessor nodes, relative to
// single-node execution.
func Fig11(o Options) Table {
	nodeSteps := []int{1, 2, 4, 8, 16, 32}
	if o.Quick {
		nodeSteps = []int{1, 2, 4, 8}
	}
	// The figures reproduce the paper's per-page migration protocol;
	// batched transfers (a post-paper extension) are measured by the
	// cluster experiment instead.
	cost := kernel.DefaultCostModel()
	cost.BatchPages = 1
	mdSize := 1 << 15
	mmSize := 256
	if o.Quick {
		mdSize = 1 << 12
		mmSize = 64
	}
	benches := []struct {
		name   string
		fn     distFn
		size   int
		shared uint64
	}{
		{"md5-circuit", workload.MD5Circuit, mdSize, 1 << 20},
		{"md5-tree", workload.MD5Tree, mdSize, 1 << 20},
		{"matmult-tree", workload.MatmultTree, mmSize, uint64(3*4*mmSize*mmSize) + (8 << 20)},
	}
	t := Table{ID: "fig11", Title: "distributed speedup over 1-node execution (uniprocessor nodes)"}
	t.Header = []string{"benchmark"}
	for _, n := range nodeSteps {
		t.Header = append(t.Header, fmt.Sprintf("%dnode", n))
	}
	for _, b := range benches {
		base := runDistDet(b.name, b.fn, 1, b.size, b.shared, cost).VT
		row := []string{b.name}
		for _, n := range nodeSteps {
			vt := runDistDet(b.name, b.fn, n, b.size, b.shared, cost).VT
			row = append(row, f2(float64(base)/float64(vt)))
		}
		t.AddRow(row...)
	}
	t.Note("md5-tree scales with recursive fan-out; md5-circuit serializes on the master's tour;")
	t.Note("matmult-tree levels off early — operand pages dominate the wire (paper Fig. 11).")
	return t
}

type distFn = func(rt *coreRT, nodes, size int) uint64

// Fig12 reproduces Figure 12: the deterministic shared-memory cluster
// benchmarks against nondeterministic distributed-memory (message
// passing) equivalents, same cost constants, plus the TCP-like timing
// sensitivity check (<2% in the paper).
func Fig12(o Options) Table {
	nodeSteps := []int{1, 2, 4, 8, 16}
	if o.Quick {
		nodeSteps = []int{1, 2, 4}
	}
	// Per-page protocol, as in Fig11: the paper's baselines and the
	// deterministic runs are compared under the paper's wire model.
	cost := kernel.DefaultCostModel()
	cost.BatchPages = 1
	tcp := cost
	tcp.TCPLike = true
	mdSize := 1 << 15
	mmSize := 256
	if o.Quick {
		mdSize = 1 << 12
		mmSize = 64
	}
	t := Table{ID: "fig12", Title: "deterministic shared-memory vs distributed-memory message passing"}
	t.Header = []string{"nodes", "md5-det", "md5-msg", "mm-det", "mm-msg", "md5-det/tcp", "mm-det/tcp"}

	md5Base := runDistDet("md5-tree", workload.MD5Tree, 1, mdSize, 1<<20, cost).VT
	md5MsgBase := baseline.MD5Dist(1, mdSize, cost).VT
	mmShared := uint64(3*4*mmSize*mmSize) + (8 << 20)
	mmBase := runDistDet("matmult-tree", workload.MatmultTree, 1, mmSize, mmShared, cost).VT
	mmMsgBase := baseline.MatmultDist(1, mmSize, cost).VT

	for _, n := range nodeSteps {
		md5Det := runDistDet("md5-tree", workload.MD5Tree, n, mdSize, 1<<20, cost).VT
		md5Msg := baseline.MD5Dist(n, mdSize, cost).VT
		mmDet := runDistDet("matmult-tree", workload.MatmultTree, n, mmSize, mmShared, cost).VT
		mmMsg := baseline.MatmultDist(n, mmSize, cost).VT
		md5Tcp := runDistDet("md5-tree", workload.MD5Tree, n, mdSize, 1<<20, tcp).VT
		mmTcp := runDistDet("matmult-tree", workload.MatmultTree, n, mmSize, mmShared, tcp).VT
		t.AddRow(iv(int64(n)),
			f2(float64(md5Base)/float64(md5Det)),
			f2(float64(md5MsgBase)/float64(md5Msg)),
			f2(float64(mmBase)/float64(mmDet)),
			f2(float64(mmMsgBase)/float64(mmMsg)),
			pct(float64(md5Tcp)/float64(md5Det)-1),
			pct(float64(mmTcp)/float64(mmDet)-1))
	}
	t.Note("speedups relative to each system's own 1-node run; det and msg columns should track each other")
	t.Note("(paper Fig. 12); the tcp columns show TCP-like round-trip timing costs of a few percent (paper §6.3).")
	return t
}

// Quantum reproduces the §6.2 quantum-overhead observation: blackscholes
// under the deterministic scheduler at several quanta, against the same
// portfolio priced on native private-workspace threads.
func Quantum(o Options) Table {
	cost := kernel.DefaultCostModel()
	size := 1 << 14
	if o.Quick {
		size = 1 << 11
	}
	threads := 4
	quanta := []int64{20_000, 100_000, 500_000, 2_500_000, 10_000_000}
	nativeSpec, _ := workload.Lookup("blackscholes")
	native := runDetFn("blackscholes-native", func(rt *coreRT, th, sz int) uint64 {
		return workload.BlackscholesDet(rt, th, sz)
	}, threads, o.cpus(), size, nativeSpec.SharedBytes(size), cost)

	t := Table{
		ID:     "quantum",
		Title:  "deterministic scheduler overhead vs quantum (blackscholes)",
		Header: []string{"quantum", "dsched-vt", "native-vt", "overhead"},
	}
	for _, q := range quanta {
		q := q
		ds := runDetFn("blackscholes-dsched", func(rt *coreRT, th, sz int) uint64 {
			return workload.BlackscholesQuantum(rt, th, sz, q)
		}, threads, o.cpus(), size, nativeSpec.SharedBytes(size), cost)
		if ds.Value != native.Value {
			panic("bench: quantum sweep changed results")
		}
		t.AddRow(mi(q), mi(ds.VT), mi(native.VT), pct(float64(ds.VT)/float64(native.VT)-1))
	}
	t.Note("overhead shrinks as the quantum grows; the paper reports ~35%% at a 10M-instruction")
	t.Note("quantum for the full PARSEC run, and porting to the native API eliminates it (§6.2).")
	return t
}
