package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dsched"
	"repro/internal/kernel"
	"repro/internal/workload"
)

// DschedEngine measures the deterministic scheduler's round engine
// against the pre-engine loop (from-scratch snapshots every quantum, no
// epoch skipping) across a threads × quantum sweep on two shapes:
//
//   - blackscholes: the paper's §6.2 compute workload, read-mostly
//     within a quantum, so small quanta produce many skippable resyncs;
//   - lockscan: a blocked-heavy microworkload — threads serialized on
//     one mutex, the holder scanning shared memory for many quanta —
//     where the scheduler is essentially the whole cost.
//
// Checksums and round counts are asserted identical between the two
// engines on every row; the wall and VT columns are what changed.
func DschedEngine(o Options) Table {
	type row struct {
		name    string
		threads int
		quantum int64
		run     func(cfg dsched.Config, byteKernel bool) (uint64, dsched.Stats, int64, time.Duration)
	}
	bsSize := 1 << 13
	scanPages := 96
	if o.Quick {
		bsSize = 1 << 10
		scanPages = 24
	}
	runBS := func(threads int, size int) func(cfg dsched.Config, byteKernel bool) (uint64, dsched.Stats, int64, time.Duration) {
		spec, _ := workload.Lookup("blackscholes")
		return func(cfg dsched.Config, byteKernel bool) (uint64, dsched.Stats, int64, time.Duration) {
			return runSched(func(rt *coreRT) (uint64, dsched.Stats) {
				return workload.BlackscholesSched(rt, threads, size, cfg)
			}, threads, spec.SharedBytes(size), byteKernel)
		}
	}
	runScan := func(threads, pages int) func(cfg dsched.Config, byteKernel bool) (uint64, dsched.Stats, int64, time.Duration) {
		return func(cfg dsched.Config, byteKernel bool) (uint64, dsched.Stats, int64, time.Duration) {
			// A realistically sized shared region (the core default is
			// 64 MiB): the legacy loop's from-scratch snapshots pay per
			// mapped table, which is the overhead the engine removes.
			shared := uint64(64 << 20)
			if o.Quick {
				shared = 16 << 20
			}
			return runSched(func(rt *coreRT) (uint64, dsched.Stats) {
				return workload.LockScan(rt, threads, pages, cfg)
			}, threads, shared, byteKernel)
		}
	}
	var rows []row
	for _, th := range []int{2, 4, 8} {
		for _, q := range []int64{5_000, 50_000} {
			rows = append(rows, row{"blackscholes", th, q, runBS(th, bsSize)})
		}
	}
	for _, th := range []int{2, 4, 8} {
		for _, q := range []int64{2_000, 8_000} {
			rows = append(rows, row{"lockscan", th, q, runScan(th, scanPages)})
		}
	}

	t := Table{
		ID:    "dsched",
		Title: "dsched round engine vs pre-engine loop (threads × quantum)",
		Header: []string{"workload", "threads", "quantum", "rounds", "skipped",
			"t-resync", "t-skip", "adopted", "compared", "legacy", "engine",
			"speedup", "vt-legacy", "vt-engine"},
	}
	for _, r := range rows {
		legacyVal, legacySt, legacyVT, legacyWall := best(r.run, dsched.Config{Quantum: r.quantum, FullResync: true}, false)
		engineVal, st, engineVT, engineWall := best(r.run, dsched.Config{Quantum: r.quantum}, false)
		if legacyVal != engineVal {
			panic(fmt.Sprintf("bench: dsched %s t=%d q=%d: engine checksum %#x != legacy %#x",
				r.name, r.threads, r.quantum, engineVal, legacyVal))
		}
		if legacySt.Rounds != st.Rounds || legacySt.ThreadQuanta != st.ThreadQuanta {
			panic(fmt.Sprintf("bench: dsched %s t=%d q=%d: engine schedule %d/%d != legacy %d/%d",
				r.name, r.threads, r.quantum, st.Rounds, st.ThreadQuanta,
				legacySt.Rounds, legacySt.ThreadQuanta))
		}
		// Every merge-kernel × epoch-granularity combination must reproduce
		// the engine's results bit for bit — checksum, VT, schedule, merge
		// stats. Only the resync-table telemetry may move with granularity,
		// and the per-table epochs must account for the same table
		// population while re-copying no more tables than whole-region
		// epochs do (strictly fewer on the read-mostly lockscan rows, whose
		// commits touch a handful of the region's tables).
		combos := []struct {
			name       string
			gran       dsched.EpochGranularity
			byteKernel bool
		}{
			{"region", dsched.EpochRegion, false},
			{"byteKernel", dsched.EpochTable, true},
			{"byteKernelRegion", dsched.EpochRegion, true},
		}
		for _, cb := range combos {
			v, s, vt, _ := best(r.run, dsched.Config{Quantum: r.quantum, Granularity: cb.gran}, cb.byteKernel)
			if v != engineVal || vt != engineVT || s.Rounds != st.Rounds ||
				s.ThreadQuanta != st.ThreadQuanta || s.Merge != st.Merge {
				panic(fmt.Sprintf("bench: dsched %s t=%d q=%d combo %s: results diverged: %#x/%d vs %#x/%d",
					r.name, r.threads, r.quantum, cb.name, v, vt, engineVal, engineVT))
			}
			if cb.gran == dsched.EpochRegion {
				if s.TablesResynced+s.TablesSkipped != st.TablesResynced+st.TablesSkipped {
					panic(fmt.Sprintf("bench: dsched %s t=%d q=%d combo %s: table accounting %d+%d != %d+%d",
						r.name, r.threads, r.quantum, cb.name,
						s.TablesResynced, s.TablesSkipped, st.TablesResynced, st.TablesSkipped))
				}
				if st.TablesResynced > s.TablesResynced {
					panic(fmt.Sprintf("bench: dsched %s t=%d q=%d: per-table epochs resynced %d tables, region %d",
						r.name, r.threads, r.quantum, st.TablesResynced, s.TablesResynced))
				}
				if r.name == "lockscan" && !cb.byteKernel && st.TablesResynced >= s.TablesResynced {
					panic(fmt.Sprintf("bench: dsched lockscan t=%d q=%d: per-table epochs resynced %d tables, not strictly below region's %d",
						r.threads, r.quantum, st.TablesResynced, s.TablesResynced))
				}
			} else if s.TablesResynced != st.TablesResynced || s.TablesSkipped != st.TablesSkipped {
				panic(fmt.Sprintf("bench: dsched %s t=%d q=%d combo %s: kernel changed resync telemetry %d/%d vs %d/%d",
					r.name, r.threads, r.quantum, cb.name,
					s.TablesResynced, s.TablesSkipped, st.TablesResynced, st.TablesSkipped))
			}
		}
		t.AddRow(r.name, iv(int64(r.threads)), iv(r.quantum),
			iv(st.Rounds), iv(st.SyncSkipped),
			iv(st.TablesResynced), iv(st.TablesSkipped),
			iv(int64(st.Merge.PagesAdopted)), iv(int64(st.Merge.PagesCompared)),
			ms(legacyWall.Seconds()*1000), ms(engineWall.Seconds()*1000),
			f2(legacyWall.Seconds()/engineWall.Seconds()),
			mi(legacyVT), mi(engineVT))
	}
	t.Note("legacy re-copies and re-snapshots every runnable thread from scratch each round;")
	t.Note("the engine waits concurrently, resnapshots incrementally and epoch-skips clean resyncs.")
	t.Note("checksums and round counts are verified identical per row; skipped counts bare restarts.")
	t.Note("t-resync/t-skip count shared-region tables re-copied vs skipped by per-table sync epochs;")
	t.Note("whole-region epochs, and both merge kernels at either granularity, are re-run per row and")
	t.Note("must reproduce checksum, VT and schedule exactly, with per-table epochs re-copying no")
	t.Note("more (on lockscan strictly fewer) tables over the same accounted population.")
	return t
}

// best reruns one configuration a few times and keeps the fastest wall
// time (the deterministic outputs are identical by construction).
func best(run func(cfg dsched.Config, byteKernel bool) (uint64, dsched.Stats, int64, time.Duration),
	cfg dsched.Config, byteKernel bool) (uint64, dsched.Stats, int64, time.Duration) {
	const reps = 3
	var val uint64
	var st dsched.Stats
	var vt int64
	var wall time.Duration
	for i := 0; i < reps; i++ {
		v, s, t, w := run(cfg, byteKernel)
		if i == 0 {
			val, st, vt, wall = v, s, t, w
			continue
		}
		if v != val || s != st || t != vt {
			panic("bench: dsched run not deterministic across repetitions")
		}
		if w < wall {
			wall = w
		}
	}
	return val, st, vt, wall
}

// runSched executes one scheduler workload on a fresh machine, returning
// checksum, scheduler stats, final virtual time and wall clock.
func runSched(fn func(rt *coreRT) (uint64, dsched.Stats), threads int,
	shared uint64, byteKernel bool) (uint64, dsched.Stats, int64, time.Duration) {
	var value uint64
	var stats dsched.Stats
	start := time.Now()
	res := core.Run(core.Options{
		Kernel:     kernel.Config{CPUsPerNode: threads, MergeByteKernel: byteKernel},
		SharedSize: shared,
	}, func(rt *core.RT) uint64 {
		value, stats = fn(rt)
		return value
	})
	wall := time.Since(start)
	if res.Status != kernel.StatusHalted {
		panic(fmt.Sprintf("bench: dsched workload stopped with %v: %v", res.Status, res.Err))
	}
	return value, stats, res.VT, wall
}
