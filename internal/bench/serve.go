package bench

import (
	"fmt"
	"sync"
	"time"

	"repro"
	"repro/internal/castore"
	"repro/internal/serve"
)

// Serve measures the session-serving fabric: open-session count swept
// far past the resident cap, for one tenant and for eight, reporting
// how many pages the cap actually pins (peak, not per-session sum),
// how often sessions cycled through the shared store, what a resumed
// slice costs, and how many store bytes each open session amortizes to.
// Every row asserts the memory claim — peak resident pages are bounded
// by the cap plus in-flight workers, never by the session count — and
// spot-checks served results bit-identical against uninterrupted
// private runs. The final row re-runs the small configuration with a
// fault hook killing a worker after every fifth slice: each death fails
// over to a fresh session re-admitted from the pre-slice manifest, and
// the bit-eq column reports the digest comparison the server performs
// on every failover.
func Serve(o Options) Table {
	type shape struct {
		sessions int
		resident int
		tenants  int
	}
	var shapes []shape
	if o.Quick {
		shapes = []shape{{64, 8, 1}, {256, 32, 8}, {1024, 8, 8}}
	} else {
		for _, sessions := range []int{64, 256, 1024} {
			for _, resident := range []int{8, 32} {
				for _, tenants := range []int{1, 8} {
					shapes = append(shapes, shape{sessions, resident, tenants})
				}
			}
		}
	}

	t := Table{
		ID:    "serve",
		Title: "session-serving fabric: resident footprint vs open sessions (peak pages bounded by cap)",
		Header: []string{"sessions", "resident", "tenants", "res-pages", "evictions",
			"resumes", "resume-ms", "store-kb/sess", "bit-eq"},
	}
	for _, sh := range shapes {
		t.AddRow(serveRow(sh.sessions, sh.resident, sh.tenants, nil)...)
	}

	// Killed-worker row: a post-slice death every fifth slice.
	faulty := func(ev serve.FaultEvent) serve.FaultAction {
		if ev.Slice%5 == 4 {
			return serve.FaultCrashAfter
		}
		return serve.FaultNone
	}
	row := serveRow(64, 8, 1, faulty)
	row[0] = "64+kill"
	t.AddRow(row...)

	t.Note("res-pages is the peak of pages pinned by in-memory resting images, asserted <=")
	t.Note("(resident-cap + workers) x pages/session however many sessions are open. resume-ms is")
	t.Note("the mean wall time of a slice that begins by reloading its session from the store;")
	t.Note("store-kb/sess the stored (deduped, compressed) bytes per open session after the run.")
	t.Note("bit-eq: sampled sessions equal uninterrupted private runs; the 64+kill row additionally")
	t.Note("fails over after every fifth slice and asserts each re-run's checkpoint digest equals")
	t.Note("the dead worker's attempt (server-side check, failures counted in BitEqFail).")
	return t
}

// serveRow opens `sessions` stripe sessions spread over `tenants`
// tenants against a `resident`-capped server, drives them all to
// completion concurrently, and returns the table row.
func serveRow(sessions, resident, tenants int, fault serve.FaultHook) []string {
	const workers = 4
	maker := serve.StripeProgram(2, 2, 16) // tiny on purpose: the fabric is under test, not the workload

	opts := []repro.SessionOption{repro.WithMachine(repro.MachineConfig{CPUsPerNode: 2, MergeWorkers: 1})}
	perPages := serveSessionPages(maker, opts)

	store := castore.NewMemStore()
	s, err := serve.New(serve.Config{
		Store:       store,
		SessionOpts: opts,
		Workers:     workers,
		Resident:    resident,
		Slice:       1,
		Clock:       func() int64 { return time.Now().UnixNano() },
		Fault:       fault,
	})
	if err != nil {
		panic(fmt.Sprintf("bench: serve: %v", err))
	}
	defer s.Shutdown()
	s.Register("stripe", maker)

	type req struct {
		tenant string
		id     serve.SessionID
		arg    uint64
	}
	reqs := make([]req, sessions)
	for i := range reqs {
		tenant := fmt.Sprintf("t%d", i%tenants)
		arg := uint64(i)
		id, err := s.Open(tenant, "stripe", arg)
		if err != nil {
			panic(fmt.Sprintf("bench: serve open: %v", err))
		}
		reqs[i] = req{tenant, id, arg}
	}

	results := make([]repro.RunResult, sessions)
	var wg sync.WaitGroup
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r req) {
			defer wg.Done()
			res, err := s.Run(r.tenant, r.id)
			if err != nil {
				panic(fmt.Sprintf("bench: serve run %s: %v", r.id, err))
			}
			results[i] = res
		}(i, r)
	}
	wg.Wait()

	// The memory claim, asserted: however many sessions are open, peak
	// resident pages are bounded by the cap plus the slices in flight.
	m := s.Stats()
	if bound := int64(resident+workers) * int64(perPages); m.ResidentPeakPages > bound {
		panic(fmt.Sprintf("bench: serve: peak resident pages %d > bound %d (cap %d, %d sessions)",
			m.ResidentPeakPages, bound, resident, sessions))
	}
	if m.Completed != int64(sessions) {
		panic(fmt.Sprintf("bench: serve: completed %d of %d", m.Completed, sessions))
	}
	if m.BitEqFail != 0 {
		panic(fmt.Sprintf("bench: serve: %d failover digest mismatches", m.BitEqFail))
	}
	if fault != nil && m.BitEqOK == 0 {
		panic("bench: serve: fault row injected no digest-checked failovers")
	}

	// Spot-check served results against uninterrupted private runs.
	step := sessions / 16
	if step == 0 {
		step = 1
	}
	for i := 0; i < sessions; i += step {
		sess, err := repro.NewSession(opts...)
		if err != nil {
			panic(fmt.Sprintf("bench: serve: %v", err))
		}
		want, err := sess.RunProgram(serve.StripeProgram(2, 2, 16)(reqs[i].arg))
		if err != nil {
			panic(fmt.Sprintf("bench: serve direct run: %v", err))
		}
		if results[i] != want {
			panic(fmt.Sprintf("bench: serve: session %s diverged from direct run", reqs[i].id))
		}
	}

	st, err := store.Stats()
	if err != nil {
		panic(fmt.Sprintf("bench: serve store stats: %v", err))
	}
	resumeMS := 0.0
	if m.Resumes > 0 {
		resumeMS = float64(m.ResumeNS) / float64(m.Resumes) / 1e6
	}
	bitEq := "bit-eq"
	if fault != nil {
		bitEq = fmt.Sprintf("bit-eq(%d)", m.BitEqOK)
	}
	return []string{iv(int64(sessions)), iv(int64(resident)), iv(int64(tenants)),
		iv(m.ResidentPeakPages), iv(m.Evictions), iv(m.Resumes), ms(resumeMS),
		f2(float64(st.StoredSize) / 1024 / float64(sessions)), bitEq}
}

// serveSessionPages is the resting-image page count of one stripe
// session — the unit the resident-pages bound is stated in.
func serveSessionPages(maker serve.ProgramMaker, opts []repro.SessionOption) int {
	sess, err := repro.NewSession(opts...)
	if err != nil {
		panic(fmt.Sprintf("bench: serve: %v", err))
	}
	if err := sess.Bind(maker(0)); err != nil {
		panic(fmt.Sprintf("bench: serve: %v", err))
	}
	max := 0
	for {
		sr, err := sess.Step(1)
		if err != nil {
			panic(fmt.Sprintf("bench: serve: %v", err))
		}
		if sr.Pages > max {
			max = sr.Pages
		}
		if sr.Done {
			return max
		}
	}
}
