package core

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/kernel"
	"repro/internal/vm"
)

func runMain(t *testing.T, main func(rt *RT) uint64) kernel.RunResult {
	t.Helper()
	res := Run(Options{Kernel: kernel.Config{CPUsPerNode: 4}}, main)
	if res.Status != kernel.StatusHalted {
		t.Fatalf("main stopped with %v: %v", res.Status, res.Err)
	}
	return res
}

func TestSwapIsRaceFree(t *testing.T) {
	// The paper's §2.2 example: one thread runs x = y while another runs
	// y = x. Under the private workspace model this always swaps.
	res := runMain(t, func(rt *RT) uint64 {
		x := rt.Alloc(4, 0)
		y := rt.Alloc(4, 0)
		rt.Env().WriteU32(x, 111)
		rt.Env().WriteU32(y, 222)
		if err := rt.Fork(0, func(th *Thread) uint64 {
			th.Env().WriteU32(x, th.Env().ReadU32(y)) // x = y
			return 0
		}); err != nil {
			panic(err)
		}
		if err := rt.Fork(1, func(th *Thread) uint64 {
			th.Env().WriteU32(y, th.Env().ReadU32(x)) // y = x
			return 0
		}); err != nil {
			panic(err)
		}
		for i := 0; i < 2; i++ {
			if _, err := rt.Join(i); err != nil {
				panic(err)
			}
		}
		gx, gy := rt.Env().ReadU32(x), rt.Env().ReadU32(y)
		if gx != 222 || gy != 111 {
			panic("swap failed")
		}
		return uint64(gx)
	})
	if res.Ret != 222 {
		t.Errorf("x after swap = %d, want 222", res.Ret)
	}
}

// TestActorsFigure1 reproduces the paper's Figure 1: a lock-step "actors"
// simulation where each child reads the prior state of all actors and
// updates its own in place. Racy under conventional threads; exact here.
func TestActorsFigure1(t *testing.T) {
	const nactors = 16
	const steps = 5
	res := runMain(t, func(rt *RT) uint64 {
		actors := rt.Alloc(4*nactors, 4)
		env := rt.Env()
		init := make([]uint32, nactors)
		for i := range init {
			init[i] = uint32(i)
		}
		env.WriteU32s(actors, init)

		for time := 0; time < steps; time++ {
			for i := 0; i < nactors; i++ {
				i := i
				if err := rt.Fork(i, func(th *Thread) uint64 {
					// Examine the state of neighbouring actors...
					all := make([]uint32, nactors)
					th.Env().ReadU32s(actors, all)
					left := all[(i+nactors-1)%nactors]
					right := all[(i+1)%nactors]
					// ...and update our own actor in place.
					th.Env().WriteU32(actors+vm.Addr(4*i), left+right)
					return 0
				}); err != nil {
					panic(err)
				}
			}
			for i := 0; i < nactors; i++ {
				if _, err := rt.Join(i); err != nil {
					panic(err)
				}
			}
		}

		// Sequential reference computation.
		ref := make([]uint32, nactors)
		for i := range ref {
			ref[i] = uint32(i)
		}
		for time := 0; time < steps; time++ {
			next := make([]uint32, nactors)
			for i := range ref {
				next[i] = ref[(i+nactors-1)%nactors] + ref[(i+1)%nactors]
			}
			ref = next
		}
		got := make([]uint32, nactors)
		env.ReadU32s(actors, got)
		for i := range ref {
			if got[i] != ref[i] {
				panic("actor state diverged from sequential reference")
			}
		}
		return 1
	})
	if res.Ret != 1 {
		t.Fail()
	}
}

func TestWriteWriteConflictDetected(t *testing.T) {
	runMain(t, func(rt *RT) uint64 {
		slot := rt.Alloc(4, 0)
		for i := 0; i < 2; i++ {
			i := i
			if err := rt.Fork(i, func(th *Thread) uint64 {
				th.Env().WriteU32(slot, uint32(100+i))
				return 0
			}); err != nil {
				panic(err)
			}
		}
		if _, err := rt.Join(0); err != nil {
			panic("first join must succeed: " + err.Error())
		}
		_, err := rt.Join(1)
		var ce *ConflictError
		if !errors.As(err, &ce) {
			panic("conflict not detected at second join")
		}
		if ce.ThreadID != 1 {
			panic("conflict attributed to wrong thread")
		}
		return 1
	})
}

func TestParentChildConflictDetected(t *testing.T) {
	runMain(t, func(rt *RT) uint64 {
		slot := rt.Alloc(4, 0)
		if err := rt.Fork(0, func(th *Thread) uint64 {
			th.Env().WriteU32(slot, 1)
			return 0
		}); err != nil {
			panic(err)
		}
		rt.Env().WriteU32(slot, 2) // parent writes the same byte concurrently
		_, err := rt.Join(0)
		var ce *ConflictError
		if !errors.As(err, &ce) {
			panic("parent/child conflict not detected")
		}
		return 1
	})
}

func TestJoinReturnsThreadValue(t *testing.T) {
	runMain(t, func(rt *RT) uint64 {
		results, err := rt.ParallelDo(4, func(th *Thread) uint64 {
			return uint64(th.ID * th.ID)
		})
		if err != nil {
			panic(err)
		}
		for i, r := range results {
			if r != uint64(i*i) {
				panic("future result wrong")
			}
		}
		return 1
	})
}

func TestThreadCrashReported(t *testing.T) {
	runMain(t, func(rt *RT) uint64 {
		if err := rt.Fork(0, func(th *Thread) uint64 {
			th.Env().ReadU32(0xdeadf000) // unmapped: faults
			return 0
		}); err != nil {
			panic(err)
		}
		_, err := rt.Join(0)
		var tc *ThreadCrashError
		if !errors.As(err, &tc) {
			panic("crash not reported")
		}
		if tc.Status != kernel.StatusFault {
			panic("wrong crash status")
		}
		return 1
	})
}

func TestNestedForks(t *testing.T) {
	// A thread forks its own sub-threads (recursive parallelism).
	res := runMain(t, func(rt *RT) uint64 {
		arr := rt.Alloc(4*8, 4)
		if err := rt.Fork(0, func(th *Thread) uint64 {
			for j := 0; j < 2; j++ {
				j := j
				if err := th.Fork(j, func(g *Thread) uint64 {
					for k := 0; k < 2; k++ {
						idx := j*2 + k
						g.Env().WriteU32(arr+vm.Addr(4*idx), uint32(idx+1))
					}
					return 0
				}); err != nil {
					panic(err)
				}
			}
			for j := 0; j < 2; j++ {
				if _, err := th.Join(j); err != nil {
					panic(err)
				}
			}
			return 0
		}); err != nil {
			panic(err)
		}
		if _, err := rt.Join(0); err != nil {
			panic(err)
		}
		var sum uint64
		vals := make([]uint32, 4)
		rt.Env().ReadU32s(arr, vals)
		for _, v := range vals {
			sum += uint64(v)
		}
		return sum
	})
	if res.Ret != 1+2+3+4 {
		t.Errorf("nested fork sum = %d, want 10", res.Ret)
	}
}

func TestBarrierPhases(t *testing.T) {
	// Each phase doubles every element; threads split the array. After
	// each barrier, every thread must observe all other threads' updates.
	const n = 4
	const elems = 64
	const phases = 3
	res := runMain(t, func(rt *RT) uint64 {
		arr := rt.Alloc(4*elems, 4)
		vals := make([]uint32, elems)
		for i := range vals {
			vals[i] = 1
		}
		rt.Env().WriteU32s(arr, vals)
		if err := rt.RunPhases(n, phases, func(th *Thread, phase int) {
			lo, hi := th.ID*elems/n, (th.ID+1)*elems/n
			buf := make([]uint32, hi-lo)
			th.Env().ReadU32s(arr+vm.Addr(4*lo), buf)
			// Cross-check a value owned by another thread: after a
			// barrier it must reflect the previous phase.
			other := (th.ID + 1) % n * elems / n
			if got := th.Env().ReadU32(arr + vm.Addr(4*other)); got != 1<<uint(phase) {
				panic("barrier did not propagate previous phase")
			}
			for i := range buf {
				buf[i] *= 2
			}
			th.Env().WriteU32s(arr+vm.Addr(4*lo), buf)
		}); err != nil {
			panic(err)
		}
		return uint64(rt.Env().ReadU32(arr))
	})
	if res.Ret != 1<<phases {
		t.Errorf("after %d doubling phases got %d, want %d", phases, res.Ret, 1<<phases)
	}
}

func TestAllocDeterministicAndAligned(t *testing.T) {
	addrs := func() []vm.Addr {
		var out []vm.Addr
		runMain(t, func(rt *RT) uint64 {
			out = append(out, rt.Alloc(10, 0))
			out = append(out, rt.Alloc(100, 64))
			out = append(out, rt.AllocPages(2))
			out = append(out, rt.Alloc(1, 0))
			return 0
		})
		return out
	}
	a, b := addrs(), addrs()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("allocation %d differs across runs: %#x vs %#x", i, a[i], b[i])
		}
	}
	if a[1]%64 != 0 || a[2]%vm.PageSize != 0 {
		t.Errorf("alignment violated: %#x %#x", a[1], a[2])
	}
}

func TestAllocExhaustionPanics(t *testing.T) {
	res := Run(Options{Kernel: kernel.Config{}, SharedSize: 4 << 20}, func(rt *RT) uint64 {
		rt.Alloc(8<<20, 0) // larger than the region
		return 0
	})
	if res.Status != kernel.StatusExcept {
		t.Errorf("expected exception on exhaustion, got %v", res.Status)
	}
}

// Property: for disjoint per-thread slices, the merged result equals the
// sequential computation, for any thread count and size.
func TestDisjointUpdateEquivalenceProperty(t *testing.T) {
	f := func(n8 uint8, size8 uint8) bool {
		n := int(n8%6) + 1
		elems := int(size8%100) + n
		var got []uint32
		res := Run(Options{Kernel: kernel.Config{CPUsPerNode: 2}}, func(rt *RT) uint64 {
			arr := rt.Alloc(uint64(4*elems), 4)
			vals := make([]uint32, elems)
			for i := range vals {
				vals[i] = uint32(i)
			}
			rt.Env().WriteU32s(arr, vals)
			if _, err := rt.ParallelDo(n, func(th *Thread) uint64 {
				lo, hi := th.ID*elems/n, (th.ID+1)*elems/n
				for i := lo; i < hi; i++ {
					v := th.Env().ReadU32(arr + vm.Addr(4*i))
					th.Env().WriteU32(arr+vm.Addr(4*i), v*v+1)
				}
				return 0
			}); err != nil {
				panic(err)
			}
			got = make([]uint32, elems)
			rt.Env().ReadU32s(arr, got)
			return 0
		})
		if res.Status != kernel.StatusHalted {
			return false
		}
		for i := range got {
			want := uint32(i)*uint32(i) + 1
			if got[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDistributedForkJoin(t *testing.T) {
	// Threads on three different nodes all contribute to the shared
	// region; results must be identical to the local run.
	run := func(nodes int) []uint32 {
		var got []uint32
		res := Run(Options{Kernel: kernel.Config{Nodes: nodes}}, func(rt *RT) uint64 {
			arr := rt.Alloc(4*12, 4)
			for i := 0; i < 3; i++ {
				i := i
				node := i % nodes
				if err := rt.ForkOn(node, i, func(th *Thread) uint64 {
					for k := 0; k < 4; k++ {
						idx := i*4 + k
						th.Env().WriteU32(arr+vm.Addr(4*idx), uint32(idx*7))
					}
					return 0
				}); err != nil {
					panic(err)
				}
			}
			for i := 0; i < 3; i++ {
				if _, err := rt.JoinOn(i%nodes, i); err != nil {
					panic(err)
				}
			}
			got = make([]uint32, 12)
			rt.Env().ReadU32s(arr, got)
			return 0
		})
		if res.Status != kernel.StatusHalted {
			t.Fatalf("nodes=%d: %v %v", nodes, res.Status, res.Err)
		}
		return got
	}
	local, distributed := run(1), run(3)
	for i := range local {
		if local[i] != distributed[i] {
			t.Fatalf("distribution changed results at %d: %d vs %d", i, local[i], distributed[i])
		}
	}
}
