package core

// The sharded cross-node barrier tree (§3.3 at cluster scale): instead
// of one flat collector visiting every thread on every node, the master
// keeps a *delegate collector* — a master-owned space homed on each node
// — that forks, collects and pre-merges its node-local threads against
// the shared snapshot, strictly in thread order. The master then folds
// only one pre-merged delta per node, strictly in node order, so the
// overall commit order is the same node-then-thread order the flat
// collector uses and the resulting bytes, conflict reports and merge
// statistics are bit-identical to it. What changes is the traffic: the
// root's cross-node work drops from O(threads) per round (visiting and
// merging every remote thread itself) to O(nodes) batched delta
// shipments, and the per-node merges run concurrently in virtual time on
// their own nodes' CPUs — the per-node merge pipeline.
//
// The master drives a delegate through a command mailbox (delegateBox).
// The mailbox is written by the master only while the delegate is
// stopped at its Ret, and results are read back only after the next
// rendezvous; the kernel's stop/start synchronization provides the
// happens-before edges, so the exchange is ordered exactly like register
// state moved by Put/Get and introduces no nondeterminism. (Thread entry
// closures already travel the same way, via Regs.Entry.)

import (
	"errors"
	"sort"

	"repro/internal/kernel"
	"repro/internal/vm"
)

// delegateIdx is the reserved per-node child index delegates occupy in
// the master's namespace; checkPlacement keeps thread ids below it.
const delegateIdx = kernel.MaxChildIndex

// treeState is the master-side record of the sharded collector.
type treeState struct {
	delegates map[int]*delegateState // by concrete node id
}

// delegateState is the master's handle on one node's delegate.
type delegateState struct {
	node int
	ref  uint64
	box  *delegateBox
	made bool // delegate space exists and runs the command loop
}

// forkReq names one thread a fork command creates.
type forkReq struct {
	id int
	fn ThreadFunc
}

type dcmd int

const (
	dcmdNone    dcmd = iota
	dcmdFork         // fork the listed threads from the delegate's replica
	dcmdCollect      // barrier collect: resync threads parked by the previous collect, then merge
	dcmdJoin         // final collect: same, but capture results too
)

// delegateBox is the master↔delegate command mailbox (see the package
// comment above for the synchronization argument). The master writes a
// command only immediately after a rendezvous proved the delegate
// stopped; every command sequence below guarantees that by ending with
// a collecting Get (treeCommit) or an explicit sync.
type delegateBox struct {
	cmd   dcmd
	forks []forkReq
	ids   []int // thread ids the command applies to, ascending

	// parked is delegate-private state: the threads the previous collect
	// left stopped at a barrier. The next collect command resynchronizes
	// and restarts exactly these — by then the master has committed the
	// round and refreshed the delegate's replica, so the deferred resync
	// hands them the combined state, like the flat collector's
	// redistribution pass, without a separate command dispatch.
	parked []int

	// Results, valid after the delegate's next stop. err is the first
	// unreported error, in thread order; it survives across commands
	// until the master reads it (takeErr), so an error from a command
	// whose completion the master did not wait for — a barrier round's
	// resync — surfaces at the next collection instead of vanishing.
	infos map[int]kernel.ChildInfo
	rets  map[int]uint64
	err   error
}

func (b *delegateBox) set(cmd dcmd, ids []int, forks []forkReq) {
	b.cmd, b.ids, b.forks = cmd, ids, forks
}

// fail records a command error unless an earlier one is still unread.
func (b *delegateBox) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// takeErr reads and clears the recorded error. Master-side, only while
// the delegate is stopped.
func (b *delegateBox) takeErr() error {
	err := b.err
	b.err = nil
	return err
}

// SetTreeJoin switches this runtime's collectors between the flat
// single-collector protocol and the sharded barrier tree. Toggle it
// before forking the threads a collection will cover: delegates must own
// their node's threads from the fork on. Checksums, conflict bytes and
// merge statistics are identical in both modes at any node count and any
// MergeWorkers setting; virtual time and the root's cross-node message
// count are what the tree improves.
func (rt *RT) SetTreeJoin(on bool) {
	switch {
	case on && rt.tree == nil:
		rt.tree = &treeState{delegates: make(map[int]*delegateState)}
	case !on:
		rt.tree = nil
	}
}

// TreeJoin reports whether the sharded collector is active.
func (rt *RT) TreeJoin() bool { return rt.tree != nil }

// treeDelegate returns (lazily creating master-side state for) node's
// delegate.
func (rt *RT) treeDelegate(node int) *delegateState {
	d := rt.tree.delegates[node]
	if d == nil {
		d = &delegateState{
			node: node,
			ref:  kernel.ChildOn(node, delegateIdx),
			box:  &delegateBox{},
		}
		rt.tree.delegates[node] = d
	}
	return d
}

// delegateEntry is the program of a per-node delegate collector: execute
// the mailbox command, stop, repeat. The space never halts; shutdown
// discards it like any parked space.
func delegateEntry(box *delegateBox, base vm.Addr, size uint64) kernel.Prog {
	return func(env *kernel.Env) {
		d := child(env, base, size)
		for {
			box.run(d)
			env.Ret()
		}
	}
}

// run executes the current command inside the delegate.
func (b *delegateBox) run(d *RT) {
	switch b.cmd {
	case dcmdFork:
		for _, r := range b.forks {
			if err := d.Fork(r.id, r.fn); err != nil {
				b.fail(err)
				return
			}
		}
	case dcmdCollect:
		b.resyncParked(d)
		b.collect(d, false)
	case dcmdJoin:
		b.resyncParked(d)
		b.collect(d, true)
	}
}

// resyncParked pushes the delegate's (just-refreshed) replica to every
// thread the previous collect left parked at a barrier and restarts
// them. The threads are stopped by construction — the previous collect
// saw them at StatusRet and nothing has run them since.
func (b *delegateBox) resyncParked(d *RT) {
	parked := b.parked
	b.parked = nil
	for _, id := range parked {
		if err := d.env.Put(d.ref(nodeHome, id), kernel.PutOpts{
			Copy:  &kernel.CopyRange{Src: d.base, Dst: d.base, Size: d.size},
			Snap:  true,
			Start: true,
		}); err != nil {
			b.fail(err)
			return
		}
	}
}

// collect waits for the listed local threads concurrently and merges
// them into the delegate's replica strictly in thread order — the
// node-local half of the node-then-thread commit order. join captures
// register results for the Join contract and keeps collecting after an
// error (ParallelDo semantics); a barrier collect stops at the first
// error like the flat collector does.
func (b *delegateBox) collect(d *RT, join bool) {
	d.waitThreads(b.ids)
	if b.infos == nil {
		b.infos = make(map[int]kernel.ChildInfo)
	}
	if join && b.rets == nil {
		b.rets = make(map[int]uint64)
	}
	for _, id := range b.ids {
		info, err := d.env.Get(d.ref(nodeHome, id), kernel.GetOpts{
			Regs:       true,
			Merge:      true,
			MergeRange: &kernel.Range{Addr: d.base, Size: d.size},
		})
		b.infos[id] = info
		if err != nil {
			var mc *vm.MergeConflictError
			if errors.As(err, &mc) {
				err = &ConflictError{ThreadID: id, Node: -1, Cause: mc}
			}
			b.fail(err)
			if !join {
				return
			}
			continue
		}
		if info.Status == kernel.StatusRet {
			b.parked = append(b.parked, id)
		} else {
			// A thread that halted (or crashed) before the barrier gets
			// no resync, so neutralize its just-merged delta by
			// refreshing its snapshot in place — the flat collector's
			// Copy+Snap over every listed id does the equivalent. Without
			// this, the next collect would re-merge the same stale delta:
			// double-counted stats at best, a false conflict at worst.
			if err := d.env.Put(d.ref(nodeHome, id), kernel.PutOpts{Snap: true}); err != nil {
				b.fail(err)
				if !join {
					return
				}
				continue
			}
		}
		if join {
			v, rerr := threadResult(id, info)
			b.rets[id] = v
			if rerr != nil {
				b.fail(rerr)
			}
		} else if info.Status == kernel.StatusFault || info.Status == kernel.StatusExcept {
			b.fail(&ThreadCrashError{ThreadID: id, Status: info.Status, Cause: info.Err})
			return
		}
	}
}

// treeSend loads the delegate's pending command and starts it. The
// first send also loads the command-loop program; withRegion re-copies
// the master's shared region into the delegate and refreshes its merge
// snapshot in the same Put (fork batches and resyncs need the replica
// current; collects must not touch it).
func (rt *RT) treeSend(d *delegateState, withRegion bool) error {
	opts := kernel.PutOpts{Start: true}
	if !d.made {
		opts.Regs = &kernel.Regs{Entry: delegateEntry(d.box, rt.base, rt.size)}
		d.made = true
		withRegion = true
	}
	if withRegion {
		opts.Copy = &kernel.CopyRange{Src: rt.base, Dst: rt.base, Size: rt.size}
		opts.Snap = true
	}
	return rt.env.Put(d.ref, opts)
}

// treeSync rendezvouses with the (stopped or stopping) delegate and
// surfaces the first unreported error of its commands.
func (rt *RT) treeSync(d *delegateState) error {
	if _, err := rt.env.Get(d.ref, kernel.GetOpts{}); err != nil {
		return err
	}
	return d.box.takeErr()
}

// treeCommit folds one node's pre-merged delta into the master's
// replica and refreshes the delegate's snapshot so the committed state
// becomes the reference for its next collection. The merging Get doubles
// as the rendezvous with the delegate's collection command, whose
// recorded error — thread-attributed, earlier in the node-then-thread
// order — takes precedence over a conflict found here. A conflict here
// is a cross-node conflict — bytes changed by this node's threads and by
// an earlier-merged node (or the master itself) — and is attributed to
// the node; the byte addresses are identical to the flat collector's.
func (rt *RT) treeCommit(d *delegateState) error {
	_, err := rt.env.Get(d.ref, kernel.GetOpts{
		Merge:      true,
		MergeRange: &kernel.Range{Addr: rt.base, Size: rt.size},
	})
	var merr error
	if err != nil {
		var mc *vm.MergeConflictError
		if errors.As(err, &mc) {
			merr = &ConflictError{ThreadID: -1, Node: d.node, Cause: mc}
		} else {
			merr = err
		}
	}
	if boxErr := d.box.takeErr(); boxErr != nil {
		merr = boxErr
	}
	if err := rt.env.Put(d.ref, kernel.PutOpts{Snap: true}); err != nil && merr == nil {
		merr = err
	}
	return merr
}

// treeFork dispatches one node's fork batch through its delegate: the
// delegate's replica is refreshed from the master and each listed thread
// forks from it locally, with a local snapshot.
func (rt *RT) treeFork(node int, reqs []forkReq) error {
	d := rt.treeDelegate(rt.concreteNode(node))
	d.box.set(dcmdFork, nil, reqs)
	if err := rt.treeSend(d, true); err != nil {
		return err
	}
	return rt.treeSync(d)
}

// waitDelegates overlaps the physical waits for the listed nodes'
// delegates, like waitThreads does for threads.
func (rt *RT) waitDelegates(nodes []int) {
	refs := make([]uint64, len(nodes))
	for i, nd := range nodes {
		refs[i] = rt.treeDelegate(nd).ref
	}
	rt.env.WaitChildren(refs, 0)
}

// treeJoin collects the grouped threads through their delegates: every
// node's collection is started first (they proceed concurrently, each on
// its own node's CPUs), then the per-node deltas are committed in
// ascending node order. Results are keyed by thread id; the error is the
// first in node-then-thread order.
func (rt *RT) treeJoin(groups map[int][]int) (map[int]uint64, error) {
	nodes := make([]int, 0, len(groups))
	for nd := range groups {
		nodes = append(nodes, nd)
	}
	sort.Ints(nodes)
	// Dispatch in descending node order: the master ends its tour next
	// to node 0, so the ascending commit walk below revisits the nodes
	// without a wasted hop. Dispatch order is invisible to results —
	// commits are what's ordered.
	for i := len(nodes) - 1; i >= 0; i-- {
		d := rt.treeDelegate(nodes[i])
		d.box.set(dcmdJoin, groups[nodes[i]], nil)
		// withRegion: the join's deferred-resync prefix must hand any
		// still-parked threads the latest combined state, exactly as a
		// barrier round's would.
		if err := rt.treeSend(d, true); err != nil {
			return nil, err
		}
	}
	rt.waitDelegates(nodes)
	res := make(map[int]uint64)
	var firstErr error
	for _, nd := range nodes {
		d := rt.treeDelegate(nd)
		if err := rt.treeCommit(d); err != nil && firstErr == nil {
			firstErr = err
		}
		for _, id := range groups[nd] {
			res[id] = d.box.rets[id]
		}
	}
	return res, firstErr
}

// treeBarrierRound is BarrierRound over the sharded tree. One command
// per node per round: the Put that dispatches it refreshes the
// delegate's replica (the previous round's combined state), the delegate
// resynchronizes and restarts the threads its previous collect left at
// the barrier, waits for all of its threads to stop again, and
// pre-merges them in thread order; the master then commits one delta per
// node in node order. The redistribution the flat collector performs as
// a separate pass is the deferred resync prefix of the next round's
// command — which also means every mailbox write happens directly after
// a committing rendezvous proved the delegate stopped.
func (rt *RT) treeBarrierRound(ids []int) error {
	nodes, groups := rt.groupByNode(ids)
	// Descending dispatch for the same hop-saving reason as treeJoin.
	for i := len(nodes) - 1; i >= 0; i-- {
		d := rt.treeDelegate(nodes[i])
		d.box.set(dcmdCollect, groups[nodes[i]], nil)
		if err := rt.treeSend(d, true); err != nil {
			return err
		}
	}
	rt.waitDelegates(nodes)
	for _, nd := range nodes {
		if err := rt.treeCommit(rt.treeDelegate(nd)); err != nil {
			return err
		}
	}
	return nil
}
