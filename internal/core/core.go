// Package core implements Determinator's private workspace model for
// shared-memory multithreading (§2.2 and §4.4 of the paper): the primary
// contribution of the system, packaged as a small thread API.
//
// Each thread is a kernel space holding a complete private replica of the
// logically shared memory region. Fork copies the shared region into the
// child copy-on-write and snapshots it; the thread then reads and writes
// its replica with no interaction whatsoever with other threads. Join
// merges the child's changes since the snapshot back into the parent,
// byte by byte, detecting write/write conflicts. Barriers do the same for
// a whole group and hand every thread a fresh snapshot of the combined
// state.
//
// Consequences, exactly as the paper argues: read/write races cannot be
// expressed (a read can only observe causally prior writes), and
// write/write races become deterministic, reliably reported conflicts
// instead of silent schedule-dependent corruption.
package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/kernel"
	"repro/internal/vm"
)

// Shared-region layout. The region sits at a 4 MiB-aligned base so kernel
// copies take the bulk table-sharing path; everything outside it is
// thread-private (our threads keep Go-native locals, the analogue of the
// paper's thread-private stacks located outside the shared region).
const (
	// SharedBase is the virtual address where the logically shared region
	// begins in every thread's address space.
	SharedBase vm.Addr = 0x1000_0000
	// DefaultSharedSize is the default size of the shared region.
	DefaultSharedSize uint64 = 64 << 20
)

// RT is the user-level runtime for one space: it manages the shared
// region, a deterministic allocator, and the fork/join/barrier protocol
// over the kernel's Put/Get/Ret API. The main program owns an RT for the
// root space; each thread gets an RT for its own space, so nested forks
// (e.g. recursive parallel quicksort) work the same at every level.
type RT struct {
	env  *kernel.Env
	base vm.Addr
	size uint64
	next vm.Addr // allocator cursor (application-chosen names, §2.4)

	// placed records, for every live thread id, the cluster node it was
	// forked on (nodeHome for plain Fork). Join, waitThreads and the
	// collectors resolve thread references through it, so a thread forked
	// with ForkOn can be joined with plain Join and grouped with its
	// node-mates by the barrier machinery.
	placed map[int]int

	// tree, when non-nil, switches collection to the sharded barrier
	// tree: per-node delegate collectors pre-merge their local children
	// and the master merges only one delta per node (see tree.go).
	tree *treeState
}

// nodeHome is the placement value meaning "the caller's home node".
const nodeHome = -1

// Thread is the handle passed to thread functions. It embeds an RT for
// the thread's own space, so a thread can fork and join sub-threads.
type Thread struct {
	*RT
	// ID is the thread's number in its parent's namespace.
	ID int
}

// ThreadFunc is the body of a thread. Its return value is delivered to
// Join (the future idiom).
type ThreadFunc func(t *Thread) uint64

// New initializes a runtime for env's space, mapping the shared region.
// size is rounded up to a 4 MiB multiple; 0 selects DefaultSharedSize.
func New(env *kernel.Env, size uint64) *RT {
	if size == 0 {
		size = DefaultSharedSize
	}
	const chunk = 4 << 20
	size = (size + chunk - 1) / chunk * chunk
	env.SetPerm(SharedBase, size, vm.PermRW)
	return &RT{env: env, base: SharedBase, size: size, next: SharedBase}
}

// child wraps an already-initialized space (a forked thread): the shared
// region is inherited, not remapped.
func child(env *kernel.Env, base vm.Addr, size uint64) *RT {
	return &RT{env: env, base: base, size: size, next: base + vm.Addr(size)}
}

// Env exposes the underlying kernel environment for direct memory access.
func (rt *RT) Env() *kernel.Env { return rt.env }

// SharedRange reports the shared region.
func (rt *RT) SharedRange() (vm.Addr, uint64) { return rt.base, rt.size }

// Alloc reserves size bytes in the shared region, aligned to align (which
// must be a power of two; 0 means 8). Allocation is a deterministic bump
// pointer: addresses depend only on the sequence of Alloc calls, never on
// timing — the race-free namespace principle of §2.4. Threads must not
// allocate after forking has begun; allocate first, then fork.
func (rt *RT) Alloc(size uint64, align uint64) vm.Addr {
	if align == 0 {
		align = 8
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("core: Alloc align %d not a power of two", align))
	}
	a := (uint64(rt.next) + align - 1) &^ (align - 1)
	end := a + size
	if end > uint64(rt.base)+rt.size {
		panic(fmt.Sprintf("core: shared region exhausted (%d bytes requested)", size))
	}
	rt.next = vm.Addr(end)
	return vm.Addr(a)
}

// AllocPages reserves n whole pages, page-aligned.
func (rt *RT) AllocPages(n int) vm.Addr {
	return rt.Alloc(uint64(n)*vm.PageSize, vm.PageSize)
}

func (rt *RT) ref(node, id int) uint64 {
	if node < 0 {
		return uint64(id + 1)
	}
	return kernel.ChildOn(node, uint64(id+1))
}

// BadNodeError reports a Fork/Join naming a cluster node that does not
// exist. Before this was validated here, a negative node silently
// aliased the caller's home node through the child-reference encoding
// (ChildOn's node field is node+1, and field 0 means "home"), so a
// buggy placement computation corrupted the home node's thread
// namespace instead of failing.
type BadNodeError struct {
	Node  int // the node requested
	Nodes int // the cluster size
}

func (e *BadNodeError) Error() string {
	return fmt.Sprintf("core: node %d out of range (cluster has %d node(s))", e.Node, e.Nodes)
}

// ErrBadThreadID reports a thread id outside the per-node child index
// range; larger ids would wrap in the reference encoding and alias
// another thread.
var ErrBadThreadID = errors.New("core: thread id out of range")

// checkPlacement validates a (node, id) pair before it is encoded into a
// child reference. node may be nodeHome.
func (rt *RT) checkPlacement(node, id int) error {
	if id < 0 || id+1 >= kernel.MaxChildIndex {
		return ErrBadThreadID
	}
	if node != nodeHome && (node < 0 || node >= rt.env.Nodes()) {
		return &BadNodeError{Node: node, Nodes: rt.env.Nodes()}
	}
	return nil
}

// nodeOf resolves a thread id to the node it was forked on (nodeHome if
// it was never recorded).
func (rt *RT) nodeOf(id int) int {
	if n, ok := rt.placed[id]; ok {
		return n
	}
	return nodeHome
}

// placedRef returns the child reference for a thread, wherever it lives.
func (rt *RT) placedRef(id int) uint64 { return rt.ref(rt.nodeOf(id), id) }

// record stores a thread's placement after a successful fork.
func (rt *RT) record(node, id int) {
	if rt.placed == nil {
		rt.placed = make(map[int]int)
	}
	rt.placed[id] = node
}

// Fork starts thread id running fn with a private copy of the shared
// region, snapshotted as the merge reference (Put with Copy, Snap, Regs
// and Start, per §4.4).
func (rt *RT) Fork(id int, fn ThreadFunc) error {
	return rt.forkOn(nodeHome, id, fn)
}

// ForkOn is Fork onto a specific cluster node: the kernel migrates the
// caller there and creates the thread with that node as its home (§3.3).
// Out-of-range nodes — including negative ones, which the reference
// encoding would silently alias to the home node — return a
// *BadNodeError.
func (rt *RT) ForkOn(node, id int, fn ThreadFunc) error {
	if node < 0 {
		return &BadNodeError{Node: node, Nodes: rt.env.Nodes()}
	}
	return rt.forkOn(node, id, fn)
}

func (rt *RT) forkOn(node, id int, fn ThreadFunc) error {
	if err := rt.checkPlacement(node, id); err != nil {
		return err
	}
	if rt.tree != nil {
		if err := rt.treeFork(node, []forkReq{{id: id, fn: fn}}); err != nil {
			return err
		}
		rt.record(node, id)
		return nil
	}
	if err := rt.env.Put(rt.ref(node, id), forkOpts(rt.base, rt.size, id, fn)); err != nil {
		return err
	}
	rt.record(node, id)
	return nil
}

// forkOpts builds the Put that creates one thread: registers, a COW copy
// of the shared region, the merge snapshot, and Start.
func forkOpts(base vm.Addr, size uint64, id int, fn ThreadFunc) kernel.PutOpts {
	entry := func(env *kernel.Env) {
		t := &Thread{RT: child(env, base, size), ID: id}
		env.SetRet(fn(t))
	}
	return kernel.PutOpts{
		Regs:  &kernel.Regs{Entry: entry, Arg: uint64(id)},
		Copy:  &kernel.CopyRange{Src: base, Dst: base, Size: size},
		Snap:  true,
		Start: true,
	}
}

// ConflictError wraps a merge conflict detected while joining a thread.
// When the sharded barrier tree detects a cross-node conflict while the
// master merges a whole node's pre-merged delta, the conflict can no
// longer be pinned on one thread: ThreadID is -1 and Node names the
// node whose delta clashed. The conflicting byte addresses and totals
// (Cause) are identical to the flat collector's either way.
type ConflictError struct {
	ThreadID int
	Node     int // conflicting node for node-level attribution; else -1
	Cause    *vm.MergeConflictError
}

func (e *ConflictError) Error() string {
	if e.ThreadID < 0 {
		return fmt.Sprintf("core: merging node %d's delta: %v", e.Node, e.Cause)
	}
	return fmt.Sprintf("core: joining thread %d: %v", e.ThreadID, e.Cause)
}

func (e *ConflictError) Unwrap() error { return e.Cause }

// ThreadCrashError reports a thread that stopped on a fault or exception.
type ThreadCrashError struct {
	ThreadID int
	Status   kernel.Status
	Cause    error
}

func (e *ThreadCrashError) Error() string {
	return fmt.Sprintf("core: thread %d crashed (%v): %v", e.ThreadID, e.Status, e.Cause)
}

func (e *ThreadCrashError) Unwrap() error { return e.Cause }

// Join waits for thread id, merges its shared-region changes into the
// caller's replica, and returns the thread's result value. The thread is
// found wherever it was forked — placement is recorded by Fork/ForkOn.
// Write/write conflicts surface as *ConflictError — deterministically,
// independent of how execution was scheduled.
func (rt *RT) Join(id int) (uint64, error) {
	return rt.joinOn(rt.nodeOf(id), id)
}

// JoinOn joins a thread forked with ForkOn. Out-of-range nodes return a
// *BadNodeError.
func (rt *RT) JoinOn(node, id int) (uint64, error) {
	if node < 0 {
		return 0, &BadNodeError{Node: node, Nodes: rt.env.Nodes()}
	}
	return rt.joinOn(node, id)
}

func (rt *RT) joinOn(node, id int) (uint64, error) {
	if err := rt.checkPlacement(node, id); err != nil {
		return 0, err
	}
	if rt.tree != nil {
		res, err := rt.treeJoin(map[int][]int{rt.concreteNode(node): {id}})
		return res[id], err
	}
	info, err := rt.env.Get(rt.ref(node, id), kernel.GetOpts{
		Regs:       true,
		Merge:      true,
		MergeRange: &kernel.Range{Addr: rt.base, Size: rt.size},
	})
	if err != nil {
		var mc *vm.MergeConflictError
		if errors.As(err, &mc) {
			return 0, &ConflictError{ThreadID: id, Node: -1, Cause: mc}
		}
		return 0, err
	}
	return threadResult(id, info)
}

// threadResult converts a collected thread's ChildInfo into the Join
// result contract.
func threadResult(id int, info kernel.ChildInfo) (uint64, error) {
	switch info.Status {
	case kernel.StatusHalted, kernel.StatusRet:
		return info.Regs.Ret, nil
	default:
		return 0, &ThreadCrashError{ThreadID: id, Status: info.Status, Cause: info.Err}
	}
}

// concreteNode maps nodeHome to the caller's actual home node id so
// threads forked either way group together.
func (rt *RT) concreteNode(node int) int {
	if node == nodeHome {
		return rt.env.HomeNodeID()
	}
	return node
}

// groupByNode buckets thread ids by the concrete node they were forked
// on and returns the ascending node order plus each node's ids in
// ascending thread order — the fixed node-then-thread collection order
// every collector (flat or tree) commits merges in.
func (rt *RT) groupByNode(ids []int) ([]int, map[int][]int) {
	groups := make(map[int][]int)
	var nodes []int
	for _, id := range ids {
		n := rt.concreteNode(rt.nodeOf(id))
		if _, ok := groups[n]; !ok {
			nodes = append(nodes, n)
		}
		groups[n] = append(groups[n], id)
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		sort.Ints(groups[n])
	}
	return nodes, groups
}

// ParallelDo forks threads 0..n-1 running fn and joins them all,
// returning their results. The first error (conflict or crash) aborts
// with that error after all threads have been collected.
//
// Collection is concurrent: a bounded worker pool (WaitChildren) overlaps
// the waits for all ready children instead of blocking on thread 0 while
// later threads sit finished. The merges themselves are then applied
// strictly in node-then-thread order — merging into a single parent
// replica is order-sensitive at the byte level, so a fixed order is what
// keeps results, errors and conflicts schedule-independent — with each
// merge internally parallelized by the kernel (Config.MergeWorkers).
// On one node that order is plain thread-id order.
func (rt *RT) ParallelDo(n int, fn ThreadFunc) ([]uint64, error) {
	return rt.ParallelDoOn(n, nil, fn)
}

// ParallelDoOn is ParallelDo with explicit thread placement: thread i is
// forked on node place(i) (nodeHome for nil place, as ParallelDo). In
// tree-join mode each node's delegate forks, collects and pre-merges its
// local threads, and this collector merges one delta per node.
func (rt *RT) ParallelDoOn(n int, place func(i int) int, fn ThreadFunc) ([]uint64, error) {
	if err := rt.forkAll(n, place, fn); err != nil {
		return nil, err
	}
	all := ids(n)
	res := make([]uint64, n)
	var firstErr error
	if rt.tree != nil {
		_, groups := rt.groupByNode(all)
		byID, err := rt.treeJoin(groups)
		for i := 0; i < n; i++ {
			res[i] = byID[i]
		}
		return res, err
	}
	rt.waitThreads(all)
	nodes, groups := rt.groupByNode(all)
	for _, nd := range nodes {
		for _, id := range groups[nd] {
			v, err := rt.Join(id)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			res[id] = v
		}
	}
	return res, firstErr
}

// forkAll forks threads 0..n-1 with the given placement, batching the
// forks per node through the delegates in tree mode.
func (rt *RT) forkAll(n int, place func(i int) int, fn ThreadFunc) error {
	node := func(i int) int {
		if place == nil {
			return nodeHome
		}
		return place(i)
	}
	if rt.tree == nil {
		for i := 0; i < n; i++ {
			if err := rt.forkOn(node(i), i, fn); err != nil {
				return err
			}
		}
		return nil
	}
	// Tree mode: validate and record every placement, then dispatch one
	// fork command per node — grouped and ordered by the same
	// groupByNode the collectors use, so fork order and commit order can
	// never drift apart.
	for i := 0; i < n; i++ {
		if err := rt.checkPlacement(node(i), i); err != nil {
			return err
		}
		rt.record(rt.concreteNode(node(i)), i)
	}
	nodes, groups := rt.groupByNode(ids(n))
	for _, nd := range nodes {
		reqs := make([]forkReq, len(groups[nd]))
		for k, id := range groups[nd] {
			reqs[k] = forkReq{id: id, fn: fn}
		}
		if err := rt.treeFork(nd, reqs); err != nil {
			return err
		}
	}
	return nil
}

// ids returns [0, n).
func ids(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

// waitThreads overlaps the physical waiting for the listed threads on the
// kernel's bounded pool; see Env.WaitChildren for why this cannot change
// any observable result. Threads are waited for wherever they were
// forked.
func (rt *RT) waitThreads(threadIDs []int) {
	refs := make([]uint64, len(threadIDs))
	for i, id := range threadIDs {
		refs[i] = rt.placedRef(id)
	}
	rt.env.WaitChildren(refs, 0)
}

// Barrier, called from a thread, stops the thread until the parent
// completes a BarrierRound: the thread's changes so far are merged into
// the parent's replica and the thread resumes with a fresh snapshot of
// the combined state (§4.4, the OpenMP-style data-parallel foundation).
func (t *Thread) Barrier() {
	t.env.Ret()
}

// BarrierRound, called by the parent, collects every listed thread at its
// Barrier (merging changes), then redistributes the combined state and
// resumes the threads. A thread that halts instead of reaching the
// barrier stays halted; its final merge still occurs.
//
// Like ParallelDo, the round first gathers all ready threads concurrently
// (bounded pool), then applies their merges in node-then-thread order so
// every round's combined state — and any conflict it raises — is
// independent of which thread happened to arrive first. In tree-join
// mode the per-node pre-merges happen in the delegates, concurrently in
// virtual time, and this collector commits one delta per node in the
// same overall order.
func (rt *RT) BarrierRound(ids []int) error {
	if rt.tree != nil {
		return rt.treeBarrierRound(ids)
	}
	rt.waitThreads(ids)
	nodes, groups := rt.groupByNode(ids)
	for _, nd := range nodes {
		for _, id := range groups[nd] {
			info, err := rt.env.Get(rt.placedRef(id), kernel.GetOpts{
				Merge:      true,
				MergeRange: &kernel.Range{Addr: rt.base, Size: rt.size},
			})
			if err != nil {
				var mc *vm.MergeConflictError
				if errors.As(err, &mc) {
					return &ConflictError{ThreadID: id, Node: -1, Cause: mc}
				}
				return err
			}
			if info.Status == kernel.StatusFault || info.Status == kernel.StatusExcept {
				return &ThreadCrashError{ThreadID: id, Status: info.Status, Cause: info.Err}
			}
		}
	}
	for _, nd := range nodes {
		for _, id := range groups[nd] {
			ref := rt.placedRef(id)
			if err := rt.env.Put(ref, kernel.PutOpts{
				Copy: &kernel.CopyRange{Src: rt.base, Dst: rt.base, Size: rt.size},
				Snap: true,
			}); err != nil {
				return err
			}
			// Only resume threads parked at a barrier; halted ones are done.
			info, err := rt.env.Get(ref, kernel.GetOpts{})
			if err != nil {
				return err
			}
			if info.Status == kernel.StatusRet {
				if err := rt.env.Put(ref, kernel.PutOpts{Start: true}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// RunPhases runs n persistent threads through a sequence of phases
// separated by barriers: the lock-step structure of Figure 1 and of the
// fft/lu benchmarks. fn must call no barrier itself; the runtime inserts
// one after every phase except the last.
func (rt *RT) RunPhases(n, phases int, fn func(t *Thread, phase int)) error {
	return rt.RunPhasesOn(n, phases, nil, fn)
}

// RunPhasesOn is RunPhases with explicit thread placement, the
// cluster-scale form: thread i runs on node place(i) for every phase,
// and each barrier round collects through the configured collector
// (flat or sharded tree).
func (rt *RT) RunPhasesOn(n, phases int, place func(i int) int, fn func(t *Thread, phase int)) error {
	if err := rt.forkAll(n, place, func(t *Thread) uint64 {
		for p := 0; p < phases; p++ {
			fn(t, p)
			if p < phases-1 {
				t.Barrier()
			}
		}
		return 0
	}); err != nil {
		return err
	}
	all := ids(n)
	for p := 0; p < phases-1; p++ {
		if err := rt.BarrierRound(all); err != nil {
			return err
		}
	}
	if rt.tree != nil {
		_, groups := rt.groupByNode(all)
		_, err := rt.treeJoin(groups)
		return err
	}
	nodes, groups := rt.groupByNode(all)
	for _, nd := range nodes {
		for _, id := range groups[nd] {
			if _, err := rt.Join(id); err != nil {
				return err
			}
		}
	}
	return nil
}

// Options configures a Run.
type Options struct {
	Kernel     kernel.Config
	SharedSize uint64
	// TreeJoin starts the root runtime with the sharded barrier tree
	// enabled (see RT.SetTreeJoin).
	TreeJoin bool
}

// Run builds a machine, runs main as its root program with a fresh
// runtime, and returns the result — the quickest way to execute a
// deterministic parallel program.
func Run(opts Options, main func(rt *RT) uint64) kernel.RunResult {
	m := kernel.New(opts.Kernel)
	return m.Run(func(env *kernel.Env) {
		rt := New(env, opts.SharedSize)
		rt.SetTreeJoin(opts.TreeJoin)
		env.SetRet(main(rt))
	}, 0)
}
