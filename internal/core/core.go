// Package core implements Determinator's private workspace model for
// shared-memory multithreading (§2.2 and §4.4 of the paper): the primary
// contribution of the system, packaged as a small thread API.
//
// Each thread is a kernel space holding a complete private replica of the
// logically shared memory region. Fork copies the shared region into the
// child copy-on-write and snapshots it; the thread then reads and writes
// its replica with no interaction whatsoever with other threads. Join
// merges the child's changes since the snapshot back into the parent,
// byte by byte, detecting write/write conflicts. Barriers do the same for
// a whole group and hand every thread a fresh snapshot of the combined
// state.
//
// Consequences, exactly as the paper argues: read/write races cannot be
// expressed (a read can only observe causally prior writes), and
// write/write races become deterministic, reliably reported conflicts
// instead of silent schedule-dependent corruption.
package core

import (
	"errors"
	"fmt"

	"repro/internal/kernel"
	"repro/internal/vm"
)

// Shared-region layout. The region sits at a 4 MiB-aligned base so kernel
// copies take the bulk table-sharing path; everything outside it is
// thread-private (our threads keep Go-native locals, the analogue of the
// paper's thread-private stacks located outside the shared region).
const (
	// SharedBase is the virtual address where the logically shared region
	// begins in every thread's address space.
	SharedBase vm.Addr = 0x1000_0000
	// DefaultSharedSize is the default size of the shared region.
	DefaultSharedSize uint64 = 64 << 20
)

// RT is the user-level runtime for one space: it manages the shared
// region, a deterministic allocator, and the fork/join/barrier protocol
// over the kernel's Put/Get/Ret API. The main program owns an RT for the
// root space; each thread gets an RT for its own space, so nested forks
// (e.g. recursive parallel quicksort) work the same at every level.
type RT struct {
	env  *kernel.Env
	base vm.Addr
	size uint64
	next vm.Addr // allocator cursor (application-chosen names, §2.4)
}

// Thread is the handle passed to thread functions. It embeds an RT for
// the thread's own space, so a thread can fork and join sub-threads.
type Thread struct {
	*RT
	// ID is the thread's number in its parent's namespace.
	ID int
}

// ThreadFunc is the body of a thread. Its return value is delivered to
// Join (the future idiom).
type ThreadFunc func(t *Thread) uint64

// New initializes a runtime for env's space, mapping the shared region.
// size is rounded up to a 4 MiB multiple; 0 selects DefaultSharedSize.
func New(env *kernel.Env, size uint64) *RT {
	if size == 0 {
		size = DefaultSharedSize
	}
	const chunk = 4 << 20
	size = (size + chunk - 1) / chunk * chunk
	env.SetPerm(SharedBase, size, vm.PermRW)
	return &RT{env: env, base: SharedBase, size: size, next: SharedBase}
}

// child wraps an already-initialized space (a forked thread): the shared
// region is inherited, not remapped.
func child(env *kernel.Env, base vm.Addr, size uint64) *RT {
	return &RT{env: env, base: base, size: size, next: base + vm.Addr(size)}
}

// Env exposes the underlying kernel environment for direct memory access.
func (rt *RT) Env() *kernel.Env { return rt.env }

// SharedRange reports the shared region.
func (rt *RT) SharedRange() (vm.Addr, uint64) { return rt.base, rt.size }

// Alloc reserves size bytes in the shared region, aligned to align (which
// must be a power of two; 0 means 8). Allocation is a deterministic bump
// pointer: addresses depend only on the sequence of Alloc calls, never on
// timing — the race-free namespace principle of §2.4. Threads must not
// allocate after forking has begun; allocate first, then fork.
func (rt *RT) Alloc(size uint64, align uint64) vm.Addr {
	if align == 0 {
		align = 8
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("core: Alloc align %d not a power of two", align))
	}
	a := (uint64(rt.next) + align - 1) &^ (align - 1)
	end := a + size
	if end > uint64(rt.base)+rt.size {
		panic(fmt.Sprintf("core: shared region exhausted (%d bytes requested)", size))
	}
	rt.next = vm.Addr(end)
	return vm.Addr(a)
}

// AllocPages reserves n whole pages, page-aligned.
func (rt *RT) AllocPages(n int) vm.Addr {
	return rt.Alloc(uint64(n)*vm.PageSize, vm.PageSize)
}

func (rt *RT) ref(node, id int) uint64 {
	if node < 0 {
		return uint64(id + 1)
	}
	return kernel.ChildOn(node, uint64(id+1))
}

// Fork starts thread id running fn with a private copy of the shared
// region, snapshotted as the merge reference (Put with Copy, Snap, Regs
// and Start, per §4.4).
func (rt *RT) Fork(id int, fn ThreadFunc) error {
	return rt.forkOn(-1, id, fn)
}

// ForkOn is Fork onto a specific cluster node: the kernel migrates the
// caller there and creates the thread with that node as its home (§3.3).
func (rt *RT) ForkOn(node, id int, fn ThreadFunc) error {
	return rt.forkOn(node, id, fn)
}

func (rt *RT) forkOn(node, id int, fn ThreadFunc) error {
	base, size := rt.base, rt.size
	entry := func(env *kernel.Env) {
		t := &Thread{RT: child(env, base, size), ID: id}
		env.SetRet(fn(t))
	}
	return rt.env.Put(rt.ref(node, id), kernel.PutOpts{
		Regs:  &kernel.Regs{Entry: entry, Arg: uint64(id)},
		Copy:  &kernel.CopyRange{Src: rt.base, Dst: rt.base, Size: rt.size},
		Snap:  true,
		Start: true,
	})
}

// ConflictError wraps a merge conflict detected while joining a thread.
type ConflictError struct {
	ThreadID int
	Cause    *vm.MergeConflictError
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("core: joining thread %d: %v", e.ThreadID, e.Cause)
}

func (e *ConflictError) Unwrap() error { return e.Cause }

// ThreadCrashError reports a thread that stopped on a fault or exception.
type ThreadCrashError struct {
	ThreadID int
	Status   kernel.Status
	Cause    error
}

func (e *ThreadCrashError) Error() string {
	return fmt.Sprintf("core: thread %d crashed (%v): %v", e.ThreadID, e.Status, e.Cause)
}

func (e *ThreadCrashError) Unwrap() error { return e.Cause }

// Join waits for thread id, merges its shared-region changes into the
// caller's replica, and returns the thread's result value. Write/write
// conflicts surface as *ConflictError — deterministically, independent of
// how execution was scheduled.
func (rt *RT) Join(id int) (uint64, error) {
	return rt.joinOn(-1, id)
}

// JoinOn joins a thread forked with ForkOn.
func (rt *RT) JoinOn(node, id int) (uint64, error) {
	return rt.joinOn(node, id)
}

func (rt *RT) joinOn(node, id int) (uint64, error) {
	info, err := rt.env.Get(rt.ref(node, id), kernel.GetOpts{
		Regs:       true,
		Merge:      true,
		MergeRange: &kernel.Range{Addr: rt.base, Size: rt.size},
	})
	if err != nil {
		var mc *vm.MergeConflictError
		if errors.As(err, &mc) {
			return 0, &ConflictError{ThreadID: id, Cause: mc}
		}
		return 0, err
	}
	switch info.Status {
	case kernel.StatusHalted, kernel.StatusRet:
		return info.Regs.Ret, nil
	default:
		return 0, &ThreadCrashError{ThreadID: id, Status: info.Status, Cause: info.Err}
	}
}

// ParallelDo forks threads 0..n-1 running fn and joins them all,
// returning their results. The first error (conflict or crash) aborts
// with that error after all threads have been collected.
//
// Collection is concurrent: a bounded worker pool (WaitChildren) overlaps
// the waits for all ready children instead of blocking on thread 0 while
// later threads sit finished. The merges themselves are then applied
// strictly in thread-id order — merging into a single parent replica is
// order-sensitive at the byte level, so id order is what keeps results,
// errors and conflicts schedule-independent — with each merge internally
// parallelized by the kernel (Config.MergeWorkers).
func (rt *RT) ParallelDo(n int, fn ThreadFunc) ([]uint64, error) {
	for i := 0; i < n; i++ {
		if err := rt.Fork(i, fn); err != nil {
			return nil, err
		}
	}
	rt.waitThreads(ids(n))
	res := make([]uint64, n)
	var firstErr error
	for i := 0; i < n; i++ {
		v, err := rt.Join(i)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		res[i] = v
	}
	return res, firstErr
}

// ids returns [0, n).
func ids(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

// waitThreads overlaps the physical waiting for the listed threads on the
// kernel's bounded pool; see Env.WaitChildren for why this cannot change
// any observable result.
func (rt *RT) waitThreads(threadIDs []int) {
	refs := make([]uint64, len(threadIDs))
	for i, id := range threadIDs {
		refs[i] = rt.ref(-1, id)
	}
	rt.env.WaitChildren(refs, 0)
}

// Barrier, called from a thread, stops the thread until the parent
// completes a BarrierRound: the thread's changes so far are merged into
// the parent's replica and the thread resumes with a fresh snapshot of
// the combined state (§4.4, the OpenMP-style data-parallel foundation).
func (t *Thread) Barrier() {
	t.env.Ret()
}

// BarrierRound, called by the parent, collects every listed thread at its
// Barrier (merging changes), then redistributes the combined state and
// resumes the threads. A thread that halts instead of reaching the
// barrier stays halted; its final merge still occurs.
//
// Like ParallelDo, the round first gathers all ready threads concurrently
// (bounded pool), then applies their merges in thread-id order so every
// round's combined state — and any conflict it raises — is independent of
// which thread happened to arrive first.
func (rt *RT) BarrierRound(ids []int) error {
	rt.waitThreads(ids)
	for _, id := range ids {
		info, err := rt.env.Get(rt.ref(-1, id), kernel.GetOpts{
			Merge:      true,
			MergeRange: &kernel.Range{Addr: rt.base, Size: rt.size},
		})
		if err != nil {
			var mc *vm.MergeConflictError
			if errors.As(err, &mc) {
				return &ConflictError{ThreadID: id, Cause: mc}
			}
			return err
		}
		if info.Status == kernel.StatusFault || info.Status == kernel.StatusExcept {
			return &ThreadCrashError{ThreadID: id, Status: info.Status, Cause: info.Err}
		}
	}
	for _, id := range ids {
		ref := rt.ref(-1, id)
		if err := rt.env.Put(ref, kernel.PutOpts{
			Copy: &kernel.CopyRange{Src: rt.base, Dst: rt.base, Size: rt.size},
			Snap: true,
		}); err != nil {
			return err
		}
		// Only resume threads parked at a barrier; halted ones are done.
		info, err := rt.env.Get(ref, kernel.GetOpts{})
		if err != nil {
			return err
		}
		if info.Status == kernel.StatusRet {
			if err := rt.env.Put(ref, kernel.PutOpts{Start: true}); err != nil {
				return err
			}
		}
	}
	return nil
}

// RunPhases runs n persistent threads through a sequence of phases
// separated by barriers: the lock-step structure of Figure 1 and of the
// fft/lu benchmarks. fn must call no barrier itself; the runtime inserts
// one after every phase except the last.
func (rt *RT) RunPhases(n, phases int, fn func(t *Thread, phase int)) error {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	for i := 0; i < n; i++ {
		if err := rt.Fork(i, func(t *Thread) uint64 {
			for p := 0; p < phases; p++ {
				fn(t, p)
				if p < phases-1 {
					t.Barrier()
				}
			}
			return 0
		}); err != nil {
			return err
		}
	}
	for p := 0; p < phases-1; p++ {
		if err := rt.BarrierRound(ids); err != nil {
			return err
		}
	}
	for _, id := range ids {
		if _, err := rt.Join(id); err != nil {
			return err
		}
	}
	return nil
}

// Options configures a Run.
type Options struct {
	Kernel     kernel.Config
	SharedSize uint64
}

// Run builds a machine, runs main as its root program with a fresh
// runtime, and returns the result — the quickest way to execute a
// deterministic parallel program.
func Run(opts Options, main func(rt *RT) uint64) kernel.RunResult {
	m := kernel.New(opts.Kernel)
	return m.Run(func(env *kernel.Env) {
		rt := New(env, opts.SharedSize)
		env.SetRet(main(rt))
	}, 0)
}
