package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/kernel"
	"repro/internal/vm"
)

// TestForkJoinNodeValidation: ForkOn/JoinOn must reject out-of-range
// node ids with a typed error instead of letting the child-reference
// encoding alias them. Before the fix, node -1 encoded to reference
// field 0 — the caller's home node — so ForkOn(-1, id) silently created
// (or JoinOn(-1, id) silently joined) a thread in the home namespace.
func TestForkJoinNodeValidation(t *testing.T) {
	cases := []struct {
		name string
		node int
		id   int
		want string // "badnode", "badid", "ok"
	}{
		{"negative-one-aliases-home", -1, 0, "badnode"},
		{"very-negative", -1000, 0, "badnode"},
		{"one-past-end", 3, 0, "badnode"},
		{"far-past-end", 99, 0, "badnode"},
		{"negative-id", 0, -1, "badid"},
		{"id-wraps-encoding", 0, kernel.MaxChildIndex - 1, "badid"},
		{"valid-first-node", 0, 0, "ok"},
		{"valid-last-node", 2, 7, "ok"},
	}
	res := Run(Options{
		Kernel:     kernel.Config{Nodes: 3},
		SharedSize: 4 << 20,
	}, func(rt *RT) uint64 {
		for _, c := range cases {
			ferr := rt.ForkOn(c.node, c.id, func(th *Thread) uint64 { return 7 })
			switch c.want {
			case "badnode":
				var bn *BadNodeError
				if !errors.As(ferr, &bn) {
					panic("fork " + c.name + ": no BadNodeError")
				}
				if bn.Node != c.node || bn.Nodes != 3 {
					panic("fork " + c.name + ": error fields wrong")
				}
				if _, jerr := rt.JoinOn(c.node, c.id); !errors.As(jerr, &bn) {
					panic("join " + c.name + ": no BadNodeError")
				}
			case "badid":
				if !errors.Is(ferr, ErrBadThreadID) {
					panic("fork " + c.name + ": no ErrBadThreadID")
				}
				if _, jerr := rt.JoinOn(c.node, c.id); !errors.Is(jerr, ErrBadThreadID) {
					panic("join " + c.name + ": no ErrBadThreadID")
				}
			case "ok":
				if ferr != nil {
					panic("fork " + c.name + ": unexpected error")
				}
				if v, jerr := rt.JoinOn(c.node, c.id); jerr != nil || v != 7 {
					panic("join " + c.name + ": failed")
				}
			}
		}
		// A rejected fork must not have created any thread in the home
		// namespace: joining home thread 0 fails with "no snapshot"
		// rather than returning the aliased thread's result... unless a
		// valid fork used id 0 on the home node, which none above did
		// (home is node 0 and the valid node-0 fork used id 0 — so check
		// a fresh id instead).
		if _, err := rt.Join(41); err == nil {
			panic("joining a never-forked thread succeeded")
		}
		return 1
	})
	if res.Status != kernel.StatusHalted || res.Ret != 1 {
		t.Fatalf("%v %v (ret %d)", res.Status, res.Err, res.Ret)
	}
}

// TestPlacementInvariance is the migration-placement property test:
// random ForkOn placements of the same data-parallel program across a
// fixed 4-node machine must yield checksums identical to the all-home
// placement and to a genuine single-node machine, with no conflicts, in
// both collector modes — and every individual configuration must repeat
// bit-exactly, virtual time included. Virtual time across different
// placements legitimately differs (by the modeled wire costs); the
// all-home placement on the 4-node machine must match the single-node
// machine exactly, wire costs being zero either way.
func TestPlacementInvariance(t *testing.T) {
	const threads, phases = 6, 3
	run := func(nodes int, place func(i int) int, tree bool) (uint64, int64) {
		res := Run(Options{
			Kernel:     kernel.Config{Nodes: nodes, CPUsPerNode: 1},
			SharedSize: 4 << 20,
			TreeJoin:   tree,
		}, func(rt *RT) uint64 {
			stripes := rt.AllocPages(threads)
			words := rt.Alloc(8*threads, 8)
			if err := rt.RunPhasesOn(threads, phases, place, func(th *Thread, phase int) {
				env := th.Env()
				var carry uint64
				if phase > 0 {
					for i := 0; i < threads; i++ {
						carry += env.ReadU64(words + vm.Addr(8*i))
					}
				}
				base := stripes + vm.Addr(th.ID)*vm.PageSize
				for off := 0; off < vm.PageSize; off += 64 {
					env.WriteU64(base+vm.Addr(off), carry+uint64(th.ID*31+phase*7+off))
				}
				env.WriteU64(words+vm.Addr(8*th.ID), carry*13+uint64(th.ID+1)*uint64(phase+1))
			}); err != nil {
				panic(err)
			}
			env := rt.Env()
			var sig uint64
			for i := 0; i < threads; i++ {
				base := stripes + vm.Addr(i)*vm.PageSize
				for off := 0; off < vm.PageSize; off += 64 {
					sig = sig*1099511628211 + env.ReadU64(base+vm.Addr(off))
				}
				sig = sig*31 + env.ReadU64(words+vm.Addr(8*i))
			}
			return sig
		})
		if res.Status != kernel.StatusHalted {
			t.Fatalf("nodes=%d tree=%v: %v %v", nodes, tree, res.Status, res.Err)
		}
		return res.Ret, res.VT
	}

	single, singleVT := run(1, nil, false)
	allHome, allHomeVT := run(4, func(int) int { return 0 }, false)
	if allHome != single {
		t.Fatalf("all-home placement on 4 nodes: checksum %#x != single-node %#x", allHome, single)
	}
	if allHomeVT != singleVT {
		t.Errorf("all-home placement on 4 nodes: VT %d != single-node %d (should pay no wire costs)",
			allHomeVT, singleVT)
	}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		placement := make([]int, threads)
		for i := range placement {
			placement[i] = rng.Intn(4)
		}
		place := func(i int) int { return placement[i] }
		for _, tree := range []bool{false, true} {
			sum, vt := run(4, place, tree)
			if sum != single {
				t.Errorf("trial %d tree=%v placement %v: checksum %#x != single-node %#x",
					trial, tree, placement, sum, single)
			}
			sum2, vt2 := run(4, place, tree)
			if sum2 != sum || vt2 != vt {
				t.Errorf("trial %d tree=%v: rerun diverged (%#x/%d vs %#x/%d)",
					trial, tree, sum2, vt2, sum, vt)
			}
		}
	}
}
