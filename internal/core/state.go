package core

// Runtime state export/attach: the core-layer half of checkpoint/restore.
//
// An RT's kernel-visible state (the shared region's bytes, every
// thread's replica and snapshot) lives in the machine image; what the
// kernel cannot see is the runtime's own bookkeeping — the deterministic
// allocator cursor, the thread-placement table, and whether collection
// runs through the sharded barrier tree. ExportState captures exactly
// that, and Attach rebuilds a runtime over a restored root environment.
//
// Go-side addresses (the values Alloc returned before the checkpoint)
// cannot be serialized, but they do not need to be: allocation is a
// deterministic bump pointer, so a resumed program re-derives every
// address by replaying its allocation calls. Attach therefore starts the
// cursor at the region base, runs the caller's layout function, checks
// the replay stayed within the recorded cursor, and then restores the
// recorded cursor so any later (phase-time) allocations continue exactly
// where the checkpointed run's would.

import (
	"fmt"
	"sort"

	"repro/internal/kernel"
	"repro/internal/vm"
)

// RTState is the serializable bookkeeping of one RT.
type RTState struct {
	Base     vm.Addr
	Size     uint64
	Next     vm.Addr     // allocator cursor at export time
	Placed   map[int]int // thread id -> concrete home node (ForkOn placements)
	TreeJoin bool
}

// StateError reports an RTState that cannot be attached (or a layout
// replay that diverged from the recorded allocation history).
type StateError struct {
	Field string
	Msg   string
}

func (e *StateError) Error() string { return fmt.Sprintf("core: attach %s: %s", e.Field, e.Msg) }

// DelegateRefs returns the kernel child references of the sharded
// barrier tree's delegate collectors, in ascending node order. Delegates
// are permanently parked command loops, so a machine checkpoint must
// name them explicitly (kernel.CheckpointOpts.AllowParked); they restore
// as restartable spaces and the first post-restore command reloads them.
func (rt *RT) DelegateRefs() []uint64 {
	if rt.tree == nil {
		return nil
	}
	nodes := make([]int, 0, len(rt.tree.delegates))
	for n := range rt.tree.delegates {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	refs := make([]uint64, 0, len(nodes))
	for _, n := range nodes {
		refs = append(refs, rt.tree.delegates[n].ref)
	}
	return refs
}

// ExportState captures the runtime's bookkeeping. Call it only at a
// quiescent point — no live (un-joined, un-halted) threads — which is
// also the only point a machine checkpoint can be taken.
func (rt *RT) ExportState() RTState {
	st := RTState{Base: rt.base, Size: rt.size, Next: rt.next, TreeJoin: rt.tree != nil}
	if len(rt.placed) > 0 {
		st.Placed = make(map[int]int, len(rt.placed))
		for id, n := range rt.placed {
			st.Placed[id] = n
		}
	}
	return st
}

// Attach rebuilds a runtime over env from exported state. layout, if
// non-nil, re-runs the program's deterministic allocation sequence (or a
// prefix of it) to re-derive Go-side addresses; the shared region's
// bytes come from the restored memory image and are not touched. The
// sharded barrier tree, when recorded as active, restarts with fresh
// delegates — their spaces' memory and snapshots were restored by the
// kernel, and every delegate command reloads its command loop, so the
// first post-restore dispatch re-arms them at unchanged virtual-time
// cost.
func Attach(env *kernel.Env, st RTState, layout func(rt *RT)) (*RT, error) {
	if st.Base%vm.PageSize != 0 || st.Size%vm.PageSize != 0 || st.Size == 0 {
		return nil, &StateError{Field: "region", Msg: fmt.Sprintf("bad shared region %#x+%#x", st.Base, st.Size)}
	}
	if uint64(st.Next) < uint64(st.Base) || uint64(st.Next) > uint64(st.Base)+st.Size {
		return nil, &StateError{Field: "cursor", Msg: fmt.Sprintf("allocator cursor %#x outside region", st.Next)}
	}
	rt := &RT{env: env, base: st.Base, size: st.Size, next: st.Base}
	if layout != nil {
		layout(rt)
	}
	if uint64(rt.next) > uint64(st.Next) {
		return nil, &StateError{Field: "layout", Msg: fmt.Sprintf(
			"layout replay allocated past the checkpointed cursor (%#x > %#x); "+
				"Layout must replay a prefix of the original allocation sequence", rt.next, st.Next)}
	}
	rt.next = st.Next
	for id, n := range st.Placed {
		if err := rt.checkPlacement(n, id); err != nil {
			return nil, &StateError{Field: "placement", Msg: fmt.Sprintf("thread %d on node %d: %v", id, n, err)}
		}
		rt.record(n, id)
	}
	rt.SetTreeJoin(st.TreeJoin)
	return rt, nil
}
