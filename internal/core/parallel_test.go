package core

import (
	"fmt"
	"testing"

	"repro/internal/kernel"
	"repro/internal/vm"
)

// Tests for the concurrent collection path: ParallelDo and BarrierRound
// must report identical results, virtual times, and errors whether the
// kernel merges serially (MergeWorkers: 1) or with full host parallelism,
// and across repeated runs. Run under -race this also exercises the
// bounded-pool child waiting and the parallel merge workers end to end.

// mergeWorkerSettings are the kernel parallelism levels every observable
// outcome must be invariant under.
var mergeWorkerSettings = []int{1, 2, 0} // 0 = GOMAXPROCS

// runAt executes main on a fresh machine with the given merge parallelism.
func runAt(workers int, main func(rt *RT) uint64) kernel.RunResult {
	return Run(Options{
		Kernel: kernel.Config{CPUsPerNode: 4, MergeWorkers: workers},
	}, main)
}

func TestParallelDoInvariantUnderMergeWorkers(t *testing.T) {
	const threads = 8
	program := func(rt *RT) uint64 {
		arr := rt.AllocPages(threads * 2)
		counters := rt.Alloc(4*threads, 4) // same page: false sharing
		res, err := rt.ParallelDo(threads, func(th *Thread) uint64 {
			// Disjoint page-granular region...
			base := arr + vm.Addr(th.ID*2*vm.PageSize)
			for i := 0; i < 2*vm.PageSize/4; i++ {
				th.Env().WriteU32(base+vm.Addr(4*i), uint32(th.ID*1_000_003+i))
			}
			// ...plus a disjoint word on a shared page.
			th.Env().WriteU32(counters+vm.Addr(4*th.ID), uint32(th.ID+1))
			return uint64(th.ID)
		})
		if err != nil {
			panic(err)
		}
		sum := uint64(0)
		for id, v := range res {
			if v != uint64(id) {
				panic("result out of thread-id order")
			}
			sum += th32(rt, counters, id)
		}
		return sum
	}
	type outcome struct {
		ret uint64
		vt  int64
	}
	var base outcome
	for i, w := range mergeWorkerSettings {
		r := runAt(w, program)
		if r.Status != kernel.StatusHalted {
			t.Fatalf("workers=%d: %v %v", w, r.Status, r.Err)
		}
		got := outcome{ret: r.Ret, vt: r.VT}
		if i == 0 {
			base = got
			continue
		}
		if got != base {
			t.Errorf("workers=%d: outcome %+v differs from workers=%d's %+v",
				w, got, mergeWorkerSettings[0], base)
		}
	}
}

func th32(rt *RT, base vm.Addr, id int) uint64 {
	return uint64(rt.Env().ReadU32(base + vm.Addr(4*id)))
}

func TestParallelDoConflictInvariantUnderMergeWorkers(t *testing.T) {
	// Threads 2 and 5 write the same byte with different values: a
	// write/write conflict whose report — the error text, including the
	// conflicting thread id and first conflicting address — must be
	// identical at every parallelism level.
	program := func(rt *RT) uint64 {
		slot := rt.Alloc(4, 0)
		_, err := rt.ParallelDo(8, func(th *Thread) uint64 {
			if th.ID == 2 || th.ID == 5 {
				th.Env().WriteU32(slot, uint32(100+th.ID))
			}
			return 0
		})
		if err == nil {
			panic("conflict not detected")
		}
		ce, ok := err.(*ConflictError)
		if !ok {
			panic(fmt.Sprintf("wrong error type %T", err))
		}
		// Thread 2 merges first (id order); thread 5's merge conflicts.
		if ce.ThreadID != 5 {
			panic(fmt.Sprintf("conflict attributed to thread %d, want 5", ce.ThreadID))
		}
		rt.Env().ConsoleWrite([]byte(err.Error()))
		return 1
	}
	var texts []string
	for _, w := range mergeWorkerSettings {
		var out []byte
		res := Run(Options{Kernel: kernel.Config{
			CPUsPerNode:  4,
			MergeWorkers: w,
			Console:      kernel.NewConsole(nil, &sliceWriter{&out}),
		}}, program)
		if res.Status != kernel.StatusHalted || res.Ret != 1 {
			t.Fatalf("workers=%d: %v %v", w, res.Status, res.Err)
		}
		texts = append(texts, string(out))
	}
	for i := 1; i < len(texts); i++ {
		if texts[i] != texts[0] {
			t.Errorf("conflict report differs across merge parallelism:\n%q\nvs\n%q",
				texts[i], texts[0])
		}
	}
}

type sliceWriter struct{ buf *[]byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	*w.buf = append(*w.buf, p...)
	return len(p), nil
}

func TestBarrierRoundInvariantUnderMergeWorkers(t *testing.T) {
	const threads, phases = 6, 4
	program := func(rt *RT) uint64 {
		arr := rt.Alloc(4*threads*phases, 4)
		if err := rt.RunPhases(threads, phases, func(th *Thread, phase int) {
			// Each phase reads the previous phase's combined row — real
			// cross-thread dataflow through the barrier merges.
			prev := uint32(0)
			if phase > 0 {
				for i := 0; i < threads; i++ {
					prev += th.Env().ReadU32(arr + vm.Addr(4*((phase-1)*threads+i)))
				}
			}
			th.Env().WriteU32(arr+vm.Addr(4*(phase*threads+th.ID)),
				prev+uint32(th.ID+1)*uint32(phase+1))
		}); err != nil {
			panic(err)
		}
		sum := uint64(0)
		for i := 0; i < threads*phases; i++ {
			sum = sum*31 + uint64(rt.Env().ReadU32(arr+vm.Addr(4*i)))
		}
		return sum
	}
	var base kernel.RunResult
	for i, w := range mergeWorkerSettings {
		r := runAt(w, program)
		if r.Status != kernel.StatusHalted {
			t.Fatalf("workers=%d: %v %v", w, r.Status, r.Err)
		}
		if i == 0 {
			base = r
			continue
		}
		if r.Ret != base.Ret || r.VT != base.VT {
			t.Errorf("workers=%d: (ret %d, vt %d) differs from (ret %d, vt %d)",
				w, r.Ret, r.VT, base.Ret, base.VT)
		}
	}
	// And the whole computation must repeat exactly.
	again := runAt(0, program)
	if again.Ret != base.Ret || again.VT != base.VT {
		t.Errorf("rerun diverged: (ret %d, vt %d) vs (ret %d, vt %d)",
			again.Ret, again.VT, base.Ret, base.VT)
	}
}
