package core

import (
	"errors"
	"testing"

	"repro/internal/kernel"
	"repro/internal/vm"
)

// Edge-behaviour tests for the thread runtime.

func TestBarrierRoundReportsCrashedThread(t *testing.T) {
	res := Run(Options{Kernel: kernel.Config{CPUsPerNode: 2}}, func(rt *RT) uint64 {
		for i := 0; i < 2; i++ {
			i := i
			if err := rt.Fork(i, func(th *Thread) uint64 {
				if i == 1 {
					panic("dies before the barrier")
				}
				th.Barrier()
				return 0
			}); err != nil {
				panic(err)
			}
		}
		err := rt.BarrierRound([]int{0, 1})
		var tc *ThreadCrashError
		if !errors.As(err, &tc) || tc.ThreadID != 1 {
			panic("crashed thread not attributed at barrier")
		}
		return 1
	})
	if res.Status != kernel.StatusHalted || res.Ret != 1 {
		t.Fatalf("%v: %v", res.Status, res.Err)
	}
}

func TestBarrierRoundConflictAttribution(t *testing.T) {
	res := Run(Options{Kernel: kernel.Config{CPUsPerNode: 2}}, func(rt *RT) uint64 {
		slot := rt.Alloc(4, 0)
		for i := 0; i < 2; i++ {
			i := i
			if err := rt.Fork(i, func(th *Thread) uint64 {
				th.Env().WriteU32(slot, uint32(i+1)) // nonzero: visible to the byte diff
				th.Barrier()
				return 0
			}); err != nil {
				panic(err)
			}
		}
		err := rt.BarrierRound([]int{0, 1})
		var ce *ConflictError
		if !errors.As(err, &ce) || ce.ThreadID != 1 {
			panic("conflict at barrier not attributed to the second merger")
		}
		return 1
	})
	if res.Status != kernel.StatusHalted || res.Ret != 1 {
		t.Fatalf("%v: %v", res.Status, res.Err)
	}
}

func TestReForkAfterJoinReusesSlot(t *testing.T) {
	res := Run(Options{}, func(rt *RT) uint64 {
		x := rt.Alloc(4, 0)
		var total uint64
		for round := 0; round < 10; round++ {
			round := round
			if err := rt.Fork(0, func(th *Thread) uint64 {
				th.Env().WriteU32(x, uint32(round))
				return uint64(round)
			}); err != nil {
				panic(err)
			}
			v, err := rt.Join(0)
			if err != nil {
				panic(err)
			}
			if rt.Env().ReadU32(x) != uint32(round) {
				panic("merge from reused slot wrong")
			}
			total += v
		}
		return total
	})
	if res.Status != kernel.StatusHalted || res.Ret != 45 {
		t.Fatalf("ret=%d err=%v", res.Ret, res.Err)
	}
}

func TestSharedRangeAndEnvAccessors(t *testing.T) {
	res := Run(Options{SharedSize: 8 << 20}, func(rt *RT) uint64 {
		base, size := rt.SharedRange()
		if base != SharedBase || size != 8<<20 {
			panic("shared range wrong")
		}
		if rt.Env() == nil {
			panic("env accessor nil")
		}
		// Threads observe the same range.
		ok := uint64(0)
		if err := rt.Fork(0, func(th *Thread) uint64 {
			b, s := th.SharedRange()
			if b == base && s == size && th.ID == 0 {
				ok = 1
			}
			return 0
		}); err != nil {
			panic(err)
		}
		if _, err := rt.Join(0); err != nil {
			panic(err)
		}
		return ok
	})
	if res.Ret != 1 {
		t.Fatalf("thread saw wrong shared range (err=%v)", res.Err)
	}
}

func TestSharedSizeRoundedToTableGranularity(t *testing.T) {
	res := Run(Options{SharedSize: 1}, func(rt *RT) uint64 {
		_, size := rt.SharedRange()
		return size
	})
	if res.Ret != 4<<20 {
		t.Errorf("1-byte request rounded to %d, want 4 MiB", res.Ret)
	}
}

func TestAllocBadAlignPanics(t *testing.T) {
	res := Run(Options{}, func(rt *RT) uint64 {
		rt.Alloc(8, 3) // not a power of two
		return 0
	})
	if res.Status != kernel.StatusExcept {
		t.Errorf("bad alignment accepted: %v", res.Status)
	}
}

func TestThreadPrivateScratchOutsideSharedRegion(t *testing.T) {
	// Writes outside the shared region are thread-private: never merged,
	// never conflicting (the paper's thread-private stack areas).
	const scratch vm.Addr = 0x0400_0000
	res := Run(Options{}, func(rt *RT) uint64 {
		for i := 0; i < 2; i++ {
			if err := rt.Fork(i, func(th *Thread) uint64 {
				th.Env().SetPerm(scratch, vm.PageSize, vm.PermRW)
				th.Env().WriteU32(scratch, uint32(th.ID+1))
				return 0
			}); err != nil {
				panic(err)
			}
		}
		for i := 0; i < 2; i++ {
			if _, err := rt.Join(i); err != nil {
				panic(err) // same address, both threads: still no conflict
			}
		}
		// And the parent never sees it.
		rt.Env().SetPerm(scratch, vm.PageSize, vm.PermRW)
		return uint64(rt.Env().ReadU32(scratch))
	})
	if res.Status != kernel.StatusHalted || res.Ret != 0 {
		t.Fatalf("private scratch leaked: ret=%d err=%v", res.Ret, res.Err)
	}
}
