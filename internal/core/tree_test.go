package core

import (
	"errors"
	"testing"

	"repro/internal/kernel"
	"repro/internal/vm"
)

// Tests for the sharded barrier tree: the delegate-based collector must
// produce bit-identical results, conflict bytes and errors to the flat
// collector at every node count and merge parallelism, while cutting the
// root's cross-node message count from O(threads) to O(nodes).

// clusterOutcome captures everything a collection mode promises to keep
// (or deliberately not keep) invariant.
type clusterOutcome struct {
	ret  uint64
	vt   int64
	msgs int64
	ok   bool
}

// runPlaced executes a data-parallel workload — disjoint page stripes
// plus disjoint words on one shared page, with cross-thread dataflow
// through barrier rounds — on an n-node machine with threads placed
// round-robin, and returns the workload checksum.
func runPlaced(t *testing.T, nodes, threads, phases, mergeWorkers int, tree bool) clusterOutcome {
	t.Helper()
	res := Run(Options{
		Kernel: kernel.Config{
			Nodes:        nodes,
			CPUsPerNode:  1,
			MergeWorkers: mergeWorkers,
		},
		SharedSize: 4 << 20,
		TreeJoin:   tree,
	}, func(rt *RT) uint64 {
		stripes := rt.AllocPages(threads)
		words := rt.Alloc(uint64(8*threads), 8)
		// Blocked placement: each node owns a contiguous band of thread
		// stripes, the layout real data-parallel decompositions use (and
		// the one batched runs reward).
		place := func(i int) int { return i * nodes / threads }
		if err := rt.RunPhasesOn(threads, phases, place, func(th *Thread, phase int) {
			env := th.Env()
			// Read the previous phase's combined shared words (dataflow
			// through the barrier merge), then write this thread's page
			// stripe and word.
			var carry uint64
			if phase > 0 {
				for i := 0; i < threads; i++ {
					carry += env.ReadU64(words + vm.Addr(8*i))
				}
			}
			base := stripes + vm.Addr(th.ID)*vm.PageSize
			for off := 0; off < vm.PageSize; off += 8 {
				env.WriteU64(base+vm.Addr(off), carry+uint64(th.ID*100003+phase*17+off))
			}
			env.WriteU64(words+vm.Addr(8*th.ID), carry*31+uint64(th.ID+1)*uint64(phase+1))
		}); err != nil {
			panic(err)
		}
		env := rt.Env()
		var sig uint64
		for i := 0; i < threads; i++ {
			base := stripes + vm.Addr(i)*vm.PageSize
			for off := 0; off < vm.PageSize; off += 8 {
				sig = sig*1099511628211 + env.ReadU64(base+vm.Addr(off))
			}
			sig = sig*31 + env.ReadU64(words+vm.Addr(8*i))
		}
		// Fold in the root's message count so callers can read it out;
		// it is reported separately to keep the checksum comparable.
		return sig
	})
	if res.Status != kernel.StatusHalted {
		t.Fatalf("nodes=%d tree=%v: %v %v", nodes, tree, res.Status, res.Err)
	}
	return clusterOutcome{ret: res.Ret, vt: res.VT, msgs: res.Net.Msgs, ok: true}
}

func TestTreeCollectorMatchesFlat(t *testing.T) {
	const threads, phases = 8, 3
	for _, nodes := range []int{1, 2, 4} {
		flat := runPlaced(t, nodes, threads, phases, 1, false)
		for _, mw := range []int{1, 0} {
			f := runPlaced(t, nodes, threads, phases, mw, false)
			tr := runPlaced(t, nodes, threads, phases, mw, true)
			if f.ret != flat.ret || f.vt != flat.vt {
				t.Errorf("nodes=%d mw=%d: flat outcome (%#x, %d) varies with MergeWorkers (%#x, %d)",
					nodes, mw, f.ret, f.vt, flat.ret, flat.vt)
			}
			if tr.ret != flat.ret {
				t.Errorf("nodes=%d mw=%d: tree checksum %#x != flat %#x",
					nodes, mw, tr.ret, flat.ret)
			}
		}
		// Both modes must repeat exactly, including virtual time.
		if again := runPlaced(t, nodes, threads, phases, 0, true); again.vt != runPlaced(t, nodes, threads, phases, 1, true).vt {
			t.Errorf("nodes=%d: tree VT differs across MergeWorkers/reruns", nodes)
		}
	}
}

func TestTreeCollectorCutsRootMessages(t *testing.T) {
	// With 16 threads blocked across 4 nodes over several barrier
	// rounds, the flat collector's cross-node message count scales with
	// threads (it migrates to and merges every remote thread itself,
	// shipping each thread's delta separately); the tree's scales with
	// nodes — each delegate's pre-merged, node-contiguous delta ships as
	// a couple of batched runs.
	const nodes, threads, phases = 4, 16, 4
	flat := runPlaced(t, nodes, threads, phases, 1, false)
	tree := runPlaced(t, nodes, threads, phases, 1, true)
	if tree.ret != flat.ret {
		t.Fatalf("checksums diverged: tree %#x, flat %#x", tree.ret, flat.ret)
	}
	if tree.msgs >= flat.msgs {
		t.Errorf("tree root messages %d not below flat %d", tree.msgs, flat.msgs)
	}
	// The root should talk to each node a bounded number of times per
	// round, independent of the threads behind it.
	perRound := float64(tree.msgs) / float64(phases)
	if perRound > float64(8*nodes) {
		t.Errorf("tree root sends %.1f msgs/round for %d nodes: not O(nodes)", perRound, nodes)
	}
	if tree.vt >= flat.vt {
		t.Errorf("tree VT %d not below flat VT %d", tree.vt, flat.vt)
	}
}

func TestTreeConflictBytesMatchFlat(t *testing.T) {
	// A cross-node write/write conflict: thread 2 (node 0) and thread 1
	// (node 1) write the same word. In node-then-thread order thread 2
	// commits first, so the flat collector attributes the conflict to
	// thread 1 and the tree to node 1. The conflicting byte addresses
	// and totals must be identical.
	conflictFrom := func(tree bool) *ConflictError {
		var out *ConflictError
		res := Run(Options{
			Kernel:     kernel.Config{Nodes: 2, CPUsPerNode: 1},
			SharedSize: 4 << 20,
			TreeJoin:   tree,
		}, func(rt *RT) uint64 {
			slot := rt.Alloc(8, 8)
			_, err := rt.ParallelDoOn(4, func(i int) int { return i % 2 }, func(th *Thread) uint64 {
				if th.ID == 1 || th.ID == 2 {
					th.Env().WriteU32(slot, uint32(100+th.ID))
				}
				return 0
			})
			if err == nil {
				panic("conflict not detected")
			}
			ce, ok := err.(*ConflictError)
			if !ok {
				panic(err)
			}
			out = ce
			return 1
		})
		if res.Status != kernel.StatusHalted || res.Ret != 1 {
			t.Fatalf("tree=%v: %v %v", tree, res.Status, res.Err)
		}
		return out
	}
	flat := conflictFrom(false)
	tree := conflictFrom(true)
	if flat.ThreadID != 1 {
		t.Errorf("flat conflict attributed to thread %d, want 1", flat.ThreadID)
	}
	if tree.ThreadID != -1 || tree.Node != 1 {
		t.Errorf("tree conflict attribution (thread %d, node %d), want (-1, 1)",
			tree.ThreadID, tree.Node)
	}
	if flat.Cause.Total != tree.Cause.Total {
		t.Errorf("conflict totals differ: flat %d, tree %d", flat.Cause.Total, tree.Cause.Total)
	}
	if len(flat.Cause.Addrs) != len(tree.Cause.Addrs) {
		t.Fatalf("conflict addr lists differ in length: %v vs %v", flat.Cause.Addrs, tree.Cause.Addrs)
	}
	for i := range flat.Cause.Addrs {
		if flat.Cause.Addrs[i] != tree.Cause.Addrs[i] {
			t.Errorf("conflict addr %d differs: %#x vs %#x", i, flat.Cause.Addrs[i], tree.Cause.Addrs[i])
		}
	}
}

func TestTreeIntraNodeConflictKeepsThreadAttribution(t *testing.T) {
	// Both conflicting threads live on node 1: the delegate detects the
	// conflict during its local thread-order merges, so the report names
	// the exact thread, as the flat collector would.
	res := Run(Options{
		Kernel:     kernel.Config{Nodes: 2, CPUsPerNode: 1},
		SharedSize: 4 << 20,
		TreeJoin:   true,
	}, func(rt *RT) uint64 {
		slot := rt.Alloc(8, 8)
		_, err := rt.ParallelDoOn(4, func(i int) int { return i % 2 }, func(th *Thread) uint64 {
			if th.ID == 1 || th.ID == 3 {
				th.Env().WriteU32(slot, uint32(200+th.ID))
			}
			return 0
		})
		var ce *ConflictError
		if !errors.As(err, &ce) {
			panic(err)
		}
		if ce.ThreadID != 3 {
			panic("intra-node conflict not attributed to thread 3")
		}
		return 1
	})
	if res.Status != kernel.StatusHalted || res.Ret != 1 {
		t.Fatalf("%v %v", res.Status, res.Err)
	}
}

func TestTreeEarlyExitThreadMatchesFlat(t *testing.T) {
	// A thread that halts before ever reaching the barrier: its delta
	// must be merged exactly once. The flat collector's resync pass
	// refreshes every listed thread's snapshot; the delegate must
	// neutralize halted threads the same way, or the next collect
	// re-merges the stale delta (a false conflict when another thread
	// later writes the same bytes).
	run := func(tree bool) (uint64, error) {
		var out error
		res := Run(Options{
			Kernel:     kernel.Config{Nodes: 2, CPUsPerNode: 1},
			SharedSize: 4 << 20,
			TreeJoin:   tree,
		}, func(rt *RT) uint64 {
			slot := rt.Alloc(8, 8)
			other := rt.Alloc(8*4, 8)
			for i := 0; i < 4; i++ {
				i := i
				if err := rt.forkOn(i%2, i, func(th *Thread) uint64 {
					if th.ID == 1 {
						th.Env().WriteU64(slot, 1)
						return 1 // exits before the barrier
					}
					th.Env().WriteU64(other+vm.Addr(8*th.ID), uint64(th.ID)+1)
					th.Barrier()
					if th.ID == 0 {
						th.Env().WriteU64(slot, 2) // rewrites thread 1's byte post-barrier
					}
					return uint64(th.ID)
				}); err != nil {
					panic(err)
				}
			}
			if err := rt.BarrierRound([]int{0, 1, 2, 3}); err != nil {
				panic(err)
			}
			for i := 0; i < 4; i++ {
				if _, err := rt.Join(i); err != nil {
					out = err
					return 0
				}
			}
			return rt.Env().ReadU64(slot)
		})
		if res.Status != kernel.StatusHalted {
			t.Fatalf("tree=%v: %v %v", tree, res.Status, res.Err)
		}
		return res.Ret, out
	}
	flatVal, flatErr := run(false)
	treeVal, treeErr := run(true)
	if flatErr != nil {
		t.Fatalf("flat collector errored: %v", flatErr)
	}
	if treeErr != nil {
		t.Fatalf("tree collector errored where flat did not: %v", treeErr)
	}
	if flatVal != 2 || treeVal != flatVal {
		t.Errorf("final slot value: flat %d, tree %d, want 2 in both", flatVal, treeVal)
	}
}

func TestTreeThreadCrashPropagates(t *testing.T) {
	res := Run(Options{
		Kernel:     kernel.Config{Nodes: 2, CPUsPerNode: 1},
		SharedSize: 4 << 20,
		TreeJoin:   true,
	}, func(rt *RT) uint64 {
		_, err := rt.ParallelDoOn(4, func(i int) int { return i % 2 }, func(th *Thread) uint64 {
			if th.ID == 2 {
				panic("thread 2 dies")
			}
			return uint64(th.ID)
		})
		var tc *ThreadCrashError
		if !errors.As(err, &tc) || tc.ThreadID != 2 {
			panic(err)
		}
		return 1
	})
	if res.Status != kernel.StatusHalted || res.Ret != 1 {
		t.Fatalf("%v %v", res.Status, res.Err)
	}
}
