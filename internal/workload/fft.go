package workload

import (
	"math"

	"repro/internal/core"
	"repro/internal/vm"
)

// The fft benchmark is an iterative radix-2 complex FFT (after the
// SPLASH-2 kernel, §6.2): a barrier between every butterfly stage. Each
// stage's butterflies are disjoint element pairs, partitioned across
// threads, so the per-stage merges are conflict-free; but because every
// stage synchronizes over the whole array, the benchmark is
// fine-grained, and the per-stage copy/merge cost is exactly what makes
// Determinator slower here — the effect Figure 7 shows.

const fftTicksPerButterfly = 24

// fftBitReverse permutes data (interleaved re/im) in place.
func fftBitReverse(data []float64) {
	n := len(data) / 2
	j := 0
	for i := 0; i < n-1; i++ {
		if i < j {
			data[2*i], data[2*j] = data[2*j], data[2*i]
			data[2*i+1], data[2*j+1] = data[2*j+1], data[2*i+1]
		}
		m := n >> 1
		for j >= m && m > 0 {
			j -= m
			m >>= 1
		}
		j += m
	}
}

// fftButterflies executes butterflies [blo, bhi) of the stage with
// half-size half, reading pairs from src and returning the updated pair
// values as (index, re, im) triples flattened into updates.
func fftButterflies(src []float64, half, blo, bhi int) []float64 {
	// Each butterfly b works on indices i = (b/half)*2*half + b%half
	// and j = i + half.
	updates := make([]float64, 0, 4*(bhi-blo))
	for b := blo; b < bhi; b++ {
		i := (b/half)*2*half + b%half
		j := i + half
		ang := -math.Pi * float64(b%half) / float64(half)
		wr, wi := math.Cos(ang), math.Sin(ang)
		xr, xi := src[2*i], src[2*i+1]
		yr, yi := src[2*j], src[2*j+1]
		tr := yr*wr - yi*wi
		ti := yr*wi + yi*wr
		updates = append(updates, xr+tr, xi+ti, xr-tr, xi-ti)
	}
	return updates
}

// FFTDet transforms size complex points on threads threads with a
// barrier per stage, returning a bit-level checksum of the spectrum.
func FFTDet(rt *core.RT, threads, size int) uint64 {
	if size&(size-1) != 0 {
		panic("workload: fft size must be a power of two")
	}
	data := GenF64(2*size, 0xFF7)
	fftBitReverse(data)
	addr := rt.Alloc(uint64(16*size), vm.PageSize)
	rt.Env().WriteF64s(addr, data)

	stages := 0
	for 1<<stages < size {
		stages++
	}
	nb := size / 2 // butterflies per stage
	if err := rt.RunPhases(threads, stages, func(t *core.Thread, phase int) {
		half := 1 << phase
		blo, bhi := stripe(nb, threads, t.ID)
		env := t.Env()
		// A contiguous butterfly range touches, per 2·half group it
		// crosses, two contiguous element runs (the i side and the j
		// side), so each thread bulk-reads and bulk-writes exactly the
		// data it owns — no whole-array traffic.
		for b := blo; b < bhi; {
			g, off := b/half, b%half
			cnt := half - off
			if b+cnt > bhi {
				cnt = bhi - b
			}
			i0 := g*2*half + off
			j0 := i0 + half
			xs := make([]float64, 2*cnt)
			ys := make([]float64, 2*cnt)
			env.ReadF64s(addr+vm.Addr(16*i0), xs)
			env.ReadF64s(addr+vm.Addr(16*j0), ys)
			for k := 0; k < cnt; k++ {
				ang := -math.Pi * float64(off+k) / float64(half)
				wr, wi := math.Cos(ang), math.Sin(ang)
				xr, xi := xs[2*k], xs[2*k+1]
				yr, yi := ys[2*k], ys[2*k+1]
				tr := yr*wr - yi*wi
				ti := yr*wi + yi*wr
				xs[2*k], xs[2*k+1] = xr+tr, xi+ti
				ys[2*k], ys[2*k+1] = xr-tr, xi-ti
			}
			env.Tick(int64(cnt) * fftTicksPerButterfly)
			env.WriteF64s(addr+vm.Addr(16*i0), xs)
			env.WriteF64s(addr+vm.Addr(16*j0), ys)
			b += cnt
		}
	}); err != nil {
		panic(err)
	}
	out := make([]float64, 2*size)
	rt.Env().ReadF64s(addr, out)
	return ChecksumF64(out)
}

// FFTSeq is the sequential reference, structured to execute the exact
// same floating-point operations in the same order per element.
func FFTSeq(size int) uint64 {
	data := GenF64(2*size, 0xFF7)
	fftBitReverse(data)
	nb := size / 2
	for half := 1; half < size; half *= 2 {
		updates := fftButterflies(data, half, 0, nb)
		for k, b := 0, 0; b < nb; k, b = k+4, b+1 {
			i := (b/half)*2*half + b%half
			j := i + half
			data[2*i], data[2*i+1] = updates[k], updates[k+1]
			data[2*j], data[2*j+1] = updates[k+2], updates[k+3]
		}
	}
	return ChecksumF64(data)
}
