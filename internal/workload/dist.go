package workload

import (
	"repro/internal/core"
	"repro/internal/vm"
)

// Distributed variants of md5 and matmult for the cluster experiments
// (§6.3, Figures 11 and 12). All of them still program against the
// logically shared memory model — distribution happens purely through
// space migration, by forking threads whose home is another node.

// MD5Circuit distributes the search by the "travelling salesman" pattern
// of §6.3: the master migrates serially to each node to fork one worker,
// then retraces the same circuit to collect results. The serial circuit
// is the scaling bottleneck the paper observes.
func MD5Circuit(rt *core.RT, nodes, size int) uint64 {
	want := md5Candidate(MD5Target(size))
	slots := rt.Alloc(uint64(8*nodes), 8)
	for nd := 0; nd < nodes; nd++ {
		nd := nd
		if err := rt.ForkOn(nd, nd, func(t *core.Thread) uint64 {
			lo, hi := stripe(size, nodes, nd)
			got := md5Scan(t.Env().Tick, uint64(lo), uint64(hi), want)
			t.Env().WriteU64(slots+vm.Addr(8*nd), got)
			return 0
		}); err != nil {
			panic(err)
		}
	}
	for nd := 0; nd < nodes; nd++ {
		if _, err := rt.JoinOn(nd, nd); err != nil {
			panic(err)
		}
	}
	var found uint64
	for nd := 0; nd < nodes; nd++ {
		if v := rt.Env().ReadU64(slots + vm.Addr(8*nd)); v != 0 {
			found = v - 1
		}
	}
	return found
}

// distTree recursively fans work out over the node range [lo, hi):
// the caller forks a subtree root on each half's first node, and each
// subtree root recurses until it owns a single node, where leaf runs.
// This is the md5-tree / matmult-tree distribution pattern of §6.3.
func distTree(f forker, lo, hi int, leaf func(t *core.Thread, node int)) {
	if hi-lo == 1 {
		panic("workload: distTree caller must handle single-node ranges")
	}
	mid := (lo + hi) / 2
	halves := [2][2]int{{lo, mid}, {mid, hi}}
	for c, h := range halves {
		c, h := c, h
		var err error
		if h[1]-h[0] == 1 {
			err = forkOnNode(f, h[0], c, func(t *core.Thread) uint64 {
				leaf(t, h[0])
				return 0
			})
		} else {
			err = forkOnNode(f, h[0], c, func(t *core.Thread) uint64 {
				distTree(thForker{t}, h[0], h[1], leaf)
				return 0
			})
		}
		if err != nil {
			panic(err)
		}
	}
	for c, h := range halves {
		if _, err := joinOnNode(f, h[0], c); err != nil {
			panic(err)
		}
	}
}

// forkOnNode/joinOnNode dispatch to the right runtime type.
func forkOnNode(f forker, node, id int, fn core.ThreadFunc) error {
	switch v := f.(type) {
	case rtForker:
		return v.rt.ForkOn(node, id, fn)
	case thForker:
		return v.th.ForkOn(node, id, fn)
	}
	panic("workload: unknown forker")
}

func joinOnNode(f forker, node, id int) (uint64, error) {
	switch v := f.(type) {
	case rtForker:
		return v.rt.JoinOn(node, id)
	case thForker:
		return v.th.JoinOn(node, id)
	}
	panic("workload: unknown forker")
}

// MD5Tree distributes the search by recursive binary fan-out across the
// cluster — the variant that scales in Figure 11.
func MD5Tree(rt *core.RT, nodes, size int) uint64 {
	want := md5Candidate(MD5Target(size))
	slots := rt.Alloc(uint64(8*nodes), 8)
	leaf := func(t *core.Thread, node int) {
		lo, hi := stripe(size, nodes, node)
		got := md5Scan(t.Env().Tick, uint64(lo), uint64(hi), want)
		t.Env().WriteU64(slots+vm.Addr(8*node), got)
	}
	if nodes == 1 {
		if err := rt.Fork(0, func(t *core.Thread) uint64 { leaf(t, 0); return 0 }); err != nil {
			panic(err)
		}
		if _, err := rt.Join(0); err != nil {
			panic(err)
		}
	} else {
		distTree(rtForker{rt}, 0, nodes, leaf)
	}
	var found uint64
	for nd := 0; nd < nodes; nd++ {
		if v := rt.Env().ReadU64(slots + vm.Addr(8*nd)); v != 0 {
			found = v - 1
		}
	}
	return found
}

// MatmultTree distributes the matrix multiply with the same recursive
// work fan-out. Unlike md5, each leaf must demand-page both operand
// matrices across the wire, which is why Figure 11 shows it levelling
// off after a couple of nodes.
func MatmultTree(rt *core.RT, nodes, n int) uint64 {
	a, b, c := MatmultInit(rt, n)
	leaf := func(t *core.Thread, node int) {
		rlo, rhi := stripe(n, nodes, node)
		if rlo == rhi {
			return
		}
		env := t.Env()
		av := make([]uint32, (rhi-rlo)*n)
		env.ReadU32s(a+vm.Addr(4*rlo*n), av)
		bv := make([]uint32, n*n)
		env.ReadU32s(b, bv)
		out := matmultRows(av, bv, n, rlo, rhi, env.Tick)
		env.WriteU32s(c+vm.Addr(4*rlo*n), out)
	}
	if nodes == 1 {
		if err := rt.Fork(0, func(t *core.Thread) uint64 { leaf(t, 0); return 0 }); err != nil {
			panic(err)
		}
		if _, err := rt.Join(0); err != nil {
			panic(err)
		}
	} else {
		distTree(rtForker{rt}, 0, nodes, leaf)
	}
	cv := make([]uint32, n*n)
	rt.Env().ReadU32s(c, cv)
	return ChecksumU32(cv)
}
