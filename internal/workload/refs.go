package workload

// Exported reference hooks: the exact computational kernels the
// Determinator versions run, re-exported so package baseline (and the
// sequential references in tests) execute byte-identical arithmetic.
// Keeping one copy of each kernel is what makes the three-way
// equivalence checks (sequential == deterministic == baseline) sharp.

import "crypto/md5"

// MD5Candidate hashes one candidate value, as the search kernels do.
func MD5Candidate(v uint64) [md5.Size]byte { return md5Candidate(v) }

// QsortSeqRef sorts in place with the leaf quicksort.
func QsortSeqRef(a []uint32) { qsortSeq(a) }

// QsortPartitionRef partitions in place, returning the pivot index.
func QsortPartitionRef(a []uint32) int { return qsortPartition(a) }

// QsortSeqFull is the sequential reference for the whole benchmark.
func QsortSeqFull(size int) uint64 {
	a := GenU32(size, 0x50F7)
	qsortSeq(a)
	return ChecksumU32(a)
}

// FFTInput builds the benchmark's bit-reversed input array.
func FFTInput(size int) []float64 {
	data := GenF64(2*size, 0xFF7)
	fftBitReverse(data)
	return data
}

// FFTButterfliesRef computes the update list for butterflies [blo, bhi)
// of the stage with half-size half.
func FFTButterfliesRef(src []float64, half, blo, bhi int) []float64 {
	return fftButterflies(src, half, blo, bhi)
}

// FFTApplyRef applies an update list produced by FFTButterfliesRef.
func FFTApplyRef(data []float64, half, blo, bhi int, updates []float64) {
	for k, b := 0, blo; b < bhi; k, b = k+4, b+1 {
		i := (b/half)*2*half + b%half
		j := i + half
		data[2*i], data[2*i+1] = updates[k], updates[k+1]
		data[2*j], data[2*j+1] = updates[k+2], updates[k+3]
	}
}

// MatmultRowsRef computes result rows [rlo, rhi) with the shared kernel.
func MatmultRowsRef(av, bv []uint32, n, rlo, rhi int) []uint32 {
	return matmultRows(av, bv, n, rlo, rhi, func(int64) {})
}

// MatmultSeq is the sequential reference for the whole benchmark.
func MatmultSeq(n int) uint64 {
	a := GenU32(n*n, 0xA)
	b := GenU32(n*n, 0xB)
	out := matmultRows(a, b, n, 0, n, func(int64) {})
	return ChecksumU32(out)
}

// BlackscholesSeq is the sequential reference for the whole benchmark.
func BlackscholesSeq(size int) uint64 {
	opts := GenOptions(size)
	prices := make([]float64, size)
	for i, o := range opts {
		prices[i] = Price(o)
	}
	return ChecksumF64(prices)
}

// MD5Seq is the sequential reference for the whole benchmark.
func MD5Seq(size int) uint64 {
	want := md5Candidate(MD5Target(size))
	if v := md5Scan(func(int64) {}, 0, uint64(size), want); v != 0 {
		return v - 1
	}
	return 0
}

// LU reference hooks.

// LUBlockSize is the block edge used by all lu variants.
const LUBlockSize = luBlock

// LUGenRef builds the deterministic input matrix.
func LUGenRef(n int) []float64 { return luGen(n) }

// LUFactorDiagRef factors a diagonal block in place.
func LUFactorDiagRef(d []float64) { luFactorDiag(d) }

// LUSolveRowRef solves a row panel block in place.
func LUSolveRowRef(diag, blk []float64) { luSolveRow(diag, blk) }

// LUSolveColRef solves a column panel block in place.
func LUSolveColRef(diag, blk []float64) { luSolveCol(diag, blk) }

// LUUpdateRef applies a trailing-submatrix block update.
func LUUpdateRef(dst, l, u []float64) { luUpdate(dst, l, u) }
