package workload

import (
	"fmt"
	"testing"

	"repro/internal/fs"
)

// Regression for the detlint errcmp audit: the KV checksum walk used to
// switch on err == fs.ErrNotFound. Identity matching panics the round —
// changing the workload's observable result bytes — as soon as any
// filesystem path wraps the sentinel with context. kvReadDigest must
// fold a miss into the digest identically whether the sentinel arrives
// bare or wrapped.
func TestKVReadDigestMatchesWrappedNotFound(t *testing.T) {
	const seed = uint64(0xDECAFBAD)
	bare := kvReadDigest(seed, nil, fs.ErrNotFound)
	wrapped := kvReadDigest(seed, nil, fmt.Errorf("stat kv/s1/k07: %w", fs.ErrNotFound))
	if bare != wrapped {
		t.Fatalf("digest diverges on wrapped sentinel: bare %016x, wrapped %016x", bare, wrapped)
	}
	if bare == seed {
		t.Fatalf("miss did not fold into the digest")
	}

	hit := kvReadDigest(seed, []byte("value"), nil)
	if hit == bare || hit == seed {
		t.Fatalf("read digest did not fold data bytes (hit %016x)", hit)
	}

	defer func() {
		if recover() == nil {
			t.Fatalf("unexpected errors must still panic the round")
		}
	}()
	kvReadDigest(seed, nil, fmt.Errorf("disk on fire"))
}
