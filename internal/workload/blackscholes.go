package workload

import (
	"math"

	"repro/internal/core"
	"repro/internal/dsched"
	"repro/internal/vm"
)

// The blackscholes benchmark prices a portfolio of European options with
// the Black-Scholes closed form, following the PARSEC kernel (§6.2).
// The paper runs it unmodified on deterministically scheduled pthreads,
// which is why the Determinator entry point here uses dsched: the fixed
// quantization overhead it measures (~35% at a 10M-instruction quantum)
// is the experiment.

// Option holds one pricing problem.
type Option struct {
	S, K, R, V, T float64
	Call          bool
}

// GenOptions builds a deterministic portfolio.
func GenOptions(n int) []Option {
	f := GenF64(5*n, 0xB5)
	out := make([]Option, n)
	for i := range out {
		out[i] = Option{
			S:    50 + 100*f[5*i],
			K:    50 + 100*f[5*i+1],
			R:    0.01 + 0.09*f[5*i+2],
			V:    0.1 + 0.5*f[5*i+3],
			T:    0.25 + 1.75*f[5*i+4],
			Call: i%2 == 0,
		}
	}
	return out
}

// cndf is the cumulative normal distribution approximation used by the
// PARSEC kernel (Abramowitz & Stegun 26.2.17).
func cndf(x float64) float64 {
	sign := false
	if x < 0 {
		x = -x
		sign = true
	}
	k := 1 / (1 + 0.2316419*x)
	poly := k * (0.319381530 + k*(-0.356563782+k*(1.781477937+k*(-1.821255978+k*1.330274429))))
	v := 1 - 1/math.Sqrt(2*math.Pi)*math.Exp(-x*x/2)*poly
	if sign {
		return 1 - v
	}
	return v
}

// Price computes one option's Black-Scholes value.
func Price(o Option) float64 {
	d1 := (math.Log(o.S/o.K) + (o.R+o.V*o.V/2)*o.T) / (o.V * math.Sqrt(o.T))
	d2 := d1 - o.V*math.Sqrt(o.T)
	if o.Call {
		return o.S*cndf(d1) - o.K*math.Exp(-o.R*o.T)*cndf(d2)
	}
	return o.K*math.Exp(-o.R*o.T)*cndf(-d2) - o.S*cndf(-d1)
}

// bsTicksPerOption approximates the instruction cost of one pricing.
const bsTicksPerOption = 200

// ChecksumF64 folds float results into a stable integer checksum.
func ChecksumF64(v []float64) uint64 {
	var sum uint64
	for i, x := range v {
		sum += math.Float64bits(x) * uint64(i+1)
	}
	return sum
}

// optionsPerSlot is how the option data is laid out in shared memory:
// 6 float64 words per option (S, K, R, V, T, call-flag).
const optionWords = 6

func writeOptions(rt *core.RT, opts []Option) vm.Addr {
	buf := make([]float64, optionWords*len(opts))
	for i, o := range opts {
		c := 0.0
		if o.Call {
			c = 1.0
		}
		copy(buf[optionWords*i:], []float64{o.S, o.K, o.R, o.V, o.T, c})
	}
	addr := rt.Alloc(uint64(8*len(buf)), vm.PageSize)
	rt.Env().WriteF64s(addr, buf)
	return addr
}

// BlackscholesDsched prices the portfolio on threads legacy-API threads
// under the deterministic scheduler with the default quantum.
func BlackscholesDsched(rt *core.RT, threads, size int) uint64 {
	return BlackscholesQuantum(rt, threads, size, dsched.DefaultQuantum)
}

// BlackscholesQuantum is BlackscholesDsched with an explicit quantum,
// for the quantum-overhead ablation.
func BlackscholesQuantum(rt *core.RT, threads, size int, quantum int64) uint64 {
	v, _ := BlackscholesSched(rt, threads, size, dsched.Config{Quantum: quantum})
	return v
}

// BlackscholesSched prices the portfolio under an explicitly configured
// deterministic scheduler and also returns the scheduler's round
// statistics — the entry point of the dsched round-engine experiment.
func BlackscholesSched(rt *core.RT, threads, size int, cfg dsched.Config) (uint64, dsched.Stats) {
	opts := GenOptions(size)
	data := writeOptions(rt, opts)
	prices := rt.Alloc(uint64(8*size), vm.PageSize)
	s := dsched.New(rt, cfg)
	if err := s.Run(threads, func(t *dsched.Thread) {
		lo, hi := stripe(size, threads, t.ID)
		if lo == hi {
			return
		}
		env := t.Env()
		in := make([]float64, optionWords*(hi-lo))
		env.ReadF64s(data+vm.Addr(8*optionWords*lo), in)
		out := make([]float64, hi-lo)
		for i := range out {
			w := in[optionWords*i : optionWords*i+optionWords]
			out[i] = Price(Option{S: w[0], K: w[1], R: w[2], V: w[3], T: w[4], Call: w[5] != 0})
			env.Tick(bsTicksPerOption)
		}
		env.WriteF64s(prices+vm.Addr(8*lo), out)
	}); err != nil {
		panic(err)
	}
	buf := make([]float64, size)
	rt.Env().ReadF64s(prices, buf)
	return ChecksumF64(buf), s.Stats()
}

// BlackscholesDet prices the portfolio on native private-workspace
// threads (the "ported to the native API" alternative §6.2 mentions,
// which eliminates the scheduler's quantization overhead).
func BlackscholesDet(rt *core.RT, threads, size int) uint64 {
	opts := GenOptions(size)
	data := writeOptions(rt, opts)
	prices := rt.Alloc(uint64(8*size), vm.PageSize)
	if _, err := rt.ParallelDo(threads, func(t *core.Thread) uint64 {
		lo, hi := stripe(size, threads, t.ID)
		if lo == hi {
			return 0
		}
		env := t.Env()
		in := make([]float64, optionWords*(hi-lo))
		env.ReadF64s(data+vm.Addr(8*optionWords*lo), in)
		out := make([]float64, hi-lo)
		for i := range out {
			w := in[optionWords*i : optionWords*i+optionWords]
			out[i] = Price(Option{S: w[0], K: w[1], R: w[2], V: w[3], T: w[4], Call: w[5] != 0})
			env.Tick(bsTicksPerOption)
		}
		env.WriteF64s(prices+vm.Addr(8*lo), out)
		return 0
	}); err != nil {
		panic(err)
	}
	buf := make([]float64, size)
	rt.Env().ReadF64s(prices, buf)
	return ChecksumF64(buf)
}
