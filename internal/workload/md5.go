package workload

import (
	"crypto/md5"
	"encoding/binary"

	"repro/internal/core"
	"repro/internal/vm"
)

// The md5 benchmark emulates a brute-force password search (§6.2): scan
// the candidate space [0, size) for the value whose digest matches a
// target digest. The target is planted at a fixed fraction of the space;
// the scan always covers the whole space so the work is
// schedule-independent (an early exit would leak timing back into the
// result, exactly what Determinator prohibits).

// MD5Target plants the needle at the given fraction of the space.
func MD5Target(size int) uint64 { return uint64(size) * 3 / 4 }

// md5Candidate hashes one candidate value.
func md5Candidate(v uint64) [md5.Size]byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return md5.Sum(b[:])
}

// md5TicksPerHash approximates the instruction cost of one MD5 of a
// small buffer.
const md5TicksPerHash = 680

// md5Scan scans [lo, hi) for the target digest, ticking env per hash.
// Returns the found candidate + 1, or 0.
func md5Scan(tick func(int64), lo, hi uint64, want [md5.Size]byte) uint64 {
	var found uint64
	const batch = 64
	n := int64(0)
	for v := lo; v < hi; v++ {
		if md5Candidate(v) == want {
			found = v + 1
		}
		n++
		if n == batch {
			tick(batch * md5TicksPerHash)
			n = 0
		}
	}
	tick(n * md5TicksPerHash)
	return found
}

// MD5Det runs the search on threads private-workspace threads. Each
// thread writes its verdict into its own result slot; the merge is
// conflict-free by construction.
func MD5Det(rt *core.RT, threads, size int) uint64 {
	want := md5Candidate(MD5Target(size))
	slots := rt.Alloc(uint64(8*threads), 8)
	for i := 0; i < threads; i++ {
		i := i
		if err := rt.Fork(i, func(t *core.Thread) uint64 {
			lo, hi := stripe(size, threads, i)
			got := md5Scan(t.Env().Tick, uint64(lo), uint64(hi), want)
			t.Env().WriteU64(slots+vm.Addr(8*i), got)
			return 0
		}); err != nil {
			panic(err)
		}
	}
	for i := 0; i < threads; i++ {
		if _, err := rt.Join(i); err != nil {
			panic(err)
		}
	}
	var found uint64
	for i := 0; i < threads; i++ {
		if v := rt.Env().ReadU64(slots + vm.Addr(8*i)); v != 0 {
			found = v - 1
		}
	}
	return found
}
