package workload

import (
	"repro/internal/core"
	"repro/internal/vm"
)

// The matmult benchmark multiplies two n×n int32 matrices (§6.2). Each
// thread owns a stripe of result rows: it pulls the operands it needs
// into thread-local buffers (reads of the private replica), computes
// natively, and writes its stripe back — the in-place, pack-free style
// the private workspace model is designed for. Stripes are disjoint, so
// joins never conflict.

// matmulTicksPerMAC approximates one multiply-accumulate with its loads.
const matmulTicksPerMAC = 4

// MatmultInit writes deterministic operand matrices A and B at the given
// shared addresses.
func MatmultInit(rt *core.RT, n int) (a, b, c vm.Addr) {
	words := uint64(4 * n * n)
	a = rt.Alloc(words, vm.PageSize)
	b = rt.Alloc(words, vm.PageSize)
	c = rt.Alloc(words, vm.PageSize)
	rt.Env().WriteU32s(a, GenU32(n*n, 0xA))
	rt.Env().WriteU32s(b, GenU32(n*n, 0xB))
	return
}

// matmultRows computes result rows [rlo, rhi) given flat operands.
func matmultRows(av, bv []uint32, n, rlo, rhi int, tick func(int64)) []uint32 {
	out := make([]uint32, (rhi-rlo)*n)
	row := make([]uint32, n)
	for i := rlo; i < rhi; i++ {
		clear(row)
		for k := 0; k < n; k++ {
			aik := av[(i-rlo)*n+k]
			brow := bv[k*n : k*n+n]
			for j, bkj := range brow {
				row[j] += aik * bkj
			}
		}
		tick(int64(n) * int64(n) * matmulTicksPerMAC)
		copy(out[(i-rlo)*n:], row)
	}
	return out
}

// MatmultDet multiplies on threads private-workspace threads and returns
// a checksum of C.
func MatmultDet(rt *core.RT, threads, n int) uint64 {
	a, b, c := MatmultInit(rt, n)
	for t := 0; t < threads; t++ {
		t := t
		if err := rt.Fork(t, func(th *core.Thread) uint64 {
			rlo, rhi := stripe(n, threads, t)
			if rlo == rhi {
				return 0
			}
			env := th.Env()
			av := make([]uint32, (rhi-rlo)*n)
			env.ReadU32s(a+vm.Addr(4*rlo*n), av)
			bv := make([]uint32, n*n)
			env.ReadU32s(b, bv)
			out := matmultRows(av, bv, n, rlo, rhi, env.Tick)
			env.WriteU32s(c+vm.Addr(4*rlo*n), out)
			return 0
		}); err != nil {
			panic(err)
		}
	}
	for t := 0; t < threads; t++ {
		if _, err := rt.Join(t); err != nil {
			panic(err)
		}
	}
	cv := make([]uint32, n*n)
	rt.Env().ReadU32s(c, cv)
	return ChecksumU32(cv)
}

// ChecksumU32 folds a result matrix/array into a position-weighted sum so
// element transpositions are detected.
func ChecksumU32(v []uint32) uint64 {
	var sum uint64
	for i, x := range v {
		sum += uint64(x) * uint64(i+1)
	}
	return sum
}
