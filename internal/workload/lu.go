package workload

import (
	"repro/internal/core"
	"repro/internal/vm"
)

// The lu benchmarks factor a dense n×n matrix into L·U by blocked
// Gaussian elimination without pivoting (the SPLASH-2 kernel, §6.2), in
// two memory layouts:
//
//   - lu_cont ("contiguous blocks"): the matrix is stored block-major,
//     so each B×B block is one contiguous run — a thread updating a
//     block touches few pages;
//   - lu_noncont ("non-contiguous"): plain row-major storage, so a block
//     is B separate row fragments scattered across pages.
//
// The layouts compute identical results; the difference is purely how
// many pages each thread's writes dirty, which is what makes the
// non-contiguous variant disproportionately expensive under
// Determinator's page-grained isolation — the gap Figure 7 shows.
//
// Every elimination step runs three phases (diagonal factor, panel
// solves, trailing update) separated by joins, making lu the most
// fine-grained benchmark in the suite.

// luBlock is the block edge; n must be a multiple.
const luBlock = 32

const luTicksPerFlop = 2

// luLayout abstracts the two storage orders at block granularity.
type luLayout interface {
	// readBlock loads block (bi,bj) into a B×B row-major buffer.
	readBlock(env *envIface, bi, bj int, buf []float64)
	// writeBlock stores a B×B row-major buffer into block (bi,bj).
	writeBlock(env *envIface, bi, bj int, buf []float64)
}

// envIface is the small slice of kernel.Env the layouts need, broken out
// so the sequential reference can run without a kernel underneath.
type envIface struct {
	readF64s  func(vm.Addr, []float64)
	writeF64s func(vm.Addr, []float64)
}

type contLayout struct {
	base   vm.Addr
	blocks int // blocks per row
}

func (l contLayout) blockAddr(bi, bj int) vm.Addr {
	return l.base + vm.Addr(8*luBlock*luBlock*(bi*l.blocks+bj))
}

func (l contLayout) readBlock(env *envIface, bi, bj int, buf []float64) {
	env.readF64s(l.blockAddr(bi, bj), buf)
}

func (l contLayout) writeBlock(env *envIface, bi, bj int, buf []float64) {
	env.writeF64s(l.blockAddr(bi, bj), buf)
}

type rowLayout struct {
	base vm.Addr
	n    int
}

func (l rowLayout) readBlock(env *envIface, bi, bj int, buf []float64) {
	for r := 0; r < luBlock; r++ {
		addr := l.base + vm.Addr(8*((bi*luBlock+r)*l.n+bj*luBlock))
		env.readF64s(addr, buf[r*luBlock:(r+1)*luBlock])
	}
}

func (l rowLayout) writeBlock(env *envIface, bi, bj int, buf []float64) {
	for r := 0; r < luBlock; r++ {
		addr := l.base + vm.Addr(8*((bi*luBlock+r)*l.n+bj*luBlock))
		env.writeF64s(addr, buf[r*luBlock:(r+1)*luBlock])
	}
}

// luGen builds the deterministic, diagonally dominant input matrix.
func luGen(n int) []float64 {
	a := GenF64(n*n, 0x10)
	for i := 0; i < n; i++ {
		a[i*n+i] += float64(n)
	}
	return a
}

// Dense block kernels (row-major B×B buffers).

// luFactorDiag factors a diagonal block in place (Doolittle, unit lower).
func luFactorDiag(d []float64) {
	for k := 0; k < luBlock; k++ {
		pivot := d[k*luBlock+k]
		for i := k + 1; i < luBlock; i++ {
			d[i*luBlock+k] /= pivot
			lik := d[i*luBlock+k]
			for j := k + 1; j < luBlock; j++ {
				d[i*luBlock+j] -= lik * d[k*luBlock+j]
			}
		}
	}
}

// luSolveRow computes U_kj: solve L_kk * X = A_kj for X, in place.
func luSolveRow(diag, blk []float64) {
	for k := 0; k < luBlock; k++ {
		for i := k + 1; i < luBlock; i++ {
			lik := diag[i*luBlock+k]
			for j := 0; j < luBlock; j++ {
				blk[i*luBlock+j] -= lik * blk[k*luBlock+j]
			}
		}
	}
}

// luSolveCol computes L_ik: solve X * U_kk = A_ik for X, in place.
func luSolveCol(diag, blk []float64) {
	for k := 0; k < luBlock; k++ {
		ukk := diag[k*luBlock+k]
		for i := 0; i < luBlock; i++ {
			blk[i*luBlock+k] /= ukk
			lik := blk[i*luBlock+k]
			for j := k + 1; j < luBlock; j++ {
				blk[i*luBlock+j] -= lik * diag[k*luBlock+j]
			}
		}
	}
}

// luUpdate computes A_ij -= L_ik * U_kj.
func luUpdate(dst, l, u []float64) {
	for i := 0; i < luBlock; i++ {
		for k := 0; k < luBlock; k++ {
			lik := l[i*luBlock+k]
			if lik == 0 {
				continue
			}
			for j := 0; j < luBlock; j++ {
				dst[i*luBlock+j] -= lik * u[k*luBlock+j]
			}
		}
	}
}

const luBlockFlops = 2 * luBlock * luBlock * luBlock

// luDet runs the blocked factorization on Determinator threads with the
// given layout.
func luDet(rt *core.RT, threads, n int, mk func(base vm.Addr) luLayout) uint64 {
	if n%luBlock != 0 {
		panic("workload: lu size must be a multiple of the block size")
	}
	base := rt.Alloc(uint64(8*n*n), vm.PageSize)
	nb := n / luBlock

	// Load the input in the chosen layout.
	a := luGen(n)
	lay := mk(base)
	parentEnv := &envIface{readF64s: rt.Env().ReadF64s, writeF64s: rt.Env().WriteF64s}
	buf := make([]float64, luBlock*luBlock)
	for bi := 0; bi < nb; bi++ {
		for bj := 0; bj < nb; bj++ {
			for r := 0; r < luBlock; r++ {
				copy(buf[r*luBlock:], a[(bi*luBlock+r)*n+bj*luBlock:][:luBlock])
			}
			lay.writeBlock(parentEnv, bi, bj, buf)
		}
	}

	diag := make([]float64, luBlock*luBlock)
	for k := 0; k < nb; k++ {
		// Phase 1 (parent): factor the diagonal block.
		lay.readBlock(parentEnv, k, k, diag)
		luFactorDiag(diag)
		rt.Env().Tick(luBlockFlops / 3 * luTicksPerFlop)
		lay.writeBlock(parentEnv, k, k, diag)

		// Phase 2: panel solves in parallel.
		panels := make([][2]int, 0, 2*(nb-k-1))
		for j := k + 1; j < nb; j++ {
			panels = append(panels, [2]int{k, j}) // row panel U_kj
			panels = append(panels, [2]int{j, k}) // col panel L_jk
		}
		luParallelBlocks(rt, threads, panels, func(env *envIface, t *core.Thread, b [2]int) {
			blk := make([]float64, luBlock*luBlock)
			d := make([]float64, luBlock*luBlock)
			lay.readBlock(env, k, k, d)
			lay.readBlock(env, b[0], b[1], blk)
			if b[0] == k {
				luSolveRow(d, blk)
			} else {
				luSolveCol(d, blk)
			}
			t.Env().Tick(luBlockFlops / 2 * luTicksPerFlop)
			lay.writeBlock(env, b[0], b[1], blk)
		})

		// Phase 3: trailing submatrix update in parallel.
		var trail [][2]int
		for i := k + 1; i < nb; i++ {
			for j := k + 1; j < nb; j++ {
				trail = append(trail, [2]int{i, j})
			}
		}
		luParallelBlocks(rt, threads, trail, func(env *envIface, t *core.Thread, b [2]int) {
			dst := make([]float64, luBlock*luBlock)
			l := make([]float64, luBlock*luBlock)
			u := make([]float64, luBlock*luBlock)
			lay.readBlock(env, b[0], b[1], dst)
			lay.readBlock(env, b[0], k, l)
			lay.readBlock(env, k, b[1], u)
			luUpdate(dst, l, u)
			t.Env().Tick(luBlockFlops * luTicksPerFlop)
			lay.writeBlock(env, b[0], b[1], dst)
		})
	}

	// Checksum the factored matrix in row-major order, independent of
	// layout, so lu_cont and lu_noncont agree.
	out := make([]float64, n*n)
	for bi := 0; bi < nb; bi++ {
		for bj := 0; bj < nb; bj++ {
			lay.readBlock(parentEnv, bi, bj, buf)
			for r := 0; r < luBlock; r++ {
				copy(out[(bi*luBlock+r)*n+bj*luBlock:], buf[r*luBlock:(r+1)*luBlock])
			}
		}
	}
	return ChecksumF64(out)
}

// luParallelBlocks forks up to `threads` workers, striping the block
// list, and joins them (one fork/join round per phase).
func luParallelBlocks(rt *core.RT, threads int, blocks [][2]int,
	fn func(env *envIface, t *core.Thread, b [2]int)) {
	if len(blocks) == 0 {
		return
	}
	if threads > len(blocks) {
		threads = len(blocks)
	}
	if _, err := rt.ParallelDo(threads, func(t *core.Thread) uint64 {
		env := &envIface{readF64s: t.Env().ReadF64s, writeF64s: t.Env().WriteF64s}
		lo, hi := stripe(len(blocks), threads, t.ID)
		for _, b := range blocks[lo:hi] {
			fn(env, t, b)
		}
		return 0
	}); err != nil {
		panic(err)
	}
}

// LUContDet is the contiguous-blocks variant.
func LUContDet(rt *core.RT, threads, n int) uint64 {
	return luDet(rt, threads, n, func(base vm.Addr) luLayout {
		return contLayout{base: base, blocks: n / luBlock}
	})
}

// LUNoncontDet is the row-major (non-contiguous) variant.
func LUNoncontDet(rt *core.RT, threads, n int) uint64 {
	return luDet(rt, threads, n, func(base vm.Addr) luLayout {
		return rowLayout{base: base, n: n}
	})
}

// LUSeq is the sequential reference: identical block kernels applied in
// the same order on a plain slice.
func LUSeq(n int) uint64 {
	if n%luBlock != 0 {
		panic("workload: lu size must be a multiple of the block size")
	}
	a := luGen(n)
	nb := n / luBlock
	get := func(bi, bj int, buf []float64) {
		for r := 0; r < luBlock; r++ {
			copy(buf[r*luBlock:], a[(bi*luBlock+r)*n+bj*luBlock:][:luBlock])
		}
	}
	put := func(bi, bj int, buf []float64) {
		for r := 0; r < luBlock; r++ {
			copy(a[(bi*luBlock+r)*n+bj*luBlock:][:luBlock], buf[r*luBlock:])
		}
	}
	d := make([]float64, luBlock*luBlock)
	blk := make([]float64, luBlock*luBlock)
	l := make([]float64, luBlock*luBlock)
	u := make([]float64, luBlock*luBlock)
	for k := 0; k < nb; k++ {
		get(k, k, d)
		luFactorDiag(d)
		put(k, k, d)
		for j := k + 1; j < nb; j++ {
			get(k, j, blk)
			luSolveRow(d, blk)
			put(k, j, blk)
			get(j, k, blk)
			luSolveCol(d, blk)
			put(j, k, blk)
		}
		for i := k + 1; i < nb; i++ {
			for j := k + 1; j < nb; j++ {
				get(i, j, blk)
				get(i, k, l)
				get(k, j, u)
				luUpdate(blk, l, u)
				put(i, j, blk)
			}
		}
	}
	return ChecksumF64(a)
}
