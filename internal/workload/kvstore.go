package workload

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/vm"
)

// KVStore is the key-value-store reconciliation scenario: a multi-thread
// store whose state is a shared file-system image, one file per key.
// Each thread owns a key stripe (a directory of its own) inside a
// private replica of the whole image — the paper's private-workspace
// model applied at file granularity — and the master folds every
// replica back in at the round's synchronization point through FS
// reconciliation, not byte merging:
//
//   - stripe files propagate as only-child-changed adoptions;
//   - every thread appends to one shared log, which merges by
//     concatenation (append-only files never conflict);
//   - every thread overwrites one deliberately contended key, so each
//     round reports exactly threads-1 conflicts, which the master then
//     resolves deterministically by re-creating the file;
//   - deletions tombstone and free extents, and the master runs a
//     Compact (reclaiming tombstones) after each round's reconciles —
//     the quiescent sync point — so the image stays canonical and space
//     is measurably reused.
//
// Everything — thread interleaving aside, which the model forbids from
// mattering — is a pure function of the configuration, so the returned
// checksum is bit-identical at any host parallelism (MergeWorkers,
// GOMAXPROCS); the benchmarks assert exactly that.

// KVConfig parameterizes a KVStore run.
type KVConfig struct {
	Threads   int
	Keys      int // keys per thread stripe
	Ops       int // operations per thread per round
	Rounds    int
	WritePct  int // percentage of ops that mutate (rest read)
	ValueSize int // maximum value size in bytes
	FSInit    uint64
	FSMax     uint64
}

func (c KVConfig) withDefaults() KVConfig {
	if c.Threads == 0 {
		c.Threads = 4
	}
	if c.Keys == 0 {
		c.Keys = 8
	}
	if c.Ops == 0 {
		c.Ops = 32
	}
	if c.Rounds == 0 {
		c.Rounds = 3
	}
	if c.ValueSize == 0 {
		c.ValueSize = 256
	}
	if c.FSInit == 0 {
		c.FSInit = 64 << 10
	}
	if c.FSMax == 0 {
		c.FSMax = 16 << 20
	}
	return c
}

// KVStats reports a run's reconciliation and space-reuse behaviour.
type KVStats struct {
	Conflicts int        // total conflicts reported (and resolved)
	GC        fs.GCStats // master image's allocator counters at the end
	Image     uint64     // final image size in bytes
}

const (
	kvFSBase  vm.Addr = 0x8000_0000 // master + child replica location
	kvScratch vm.Addr = 0xA000_0000 // parent-side copy for reconciling
	kvLog             = "kv/log"
	kvHot             = "kv/hot" // the contended key
	kvSeedMix         = 0x9E3779B97F4A7C15
)

func kvMix(x uint64) uint64 {
	x += kvSeedMix
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// kvReadDigest folds one ReadFile result into the round digest. Misses
// are matched with errors.Is: the previous identity switch on
// fs.ErrNotFound would panic the round — changing the workload's result
// bytes — the moment any filesystem path started wrapping the sentinel
// with context.
func kvReadDigest(digest uint64, data []byte, err error) uint64 {
	switch {
	case err == nil:
		for _, b := range data {
			digest = digest*1099511628211 ^ uint64(b)
		}
		return digest
	case errors.Is(err, fs.ErrNotFound):
		return kvMix(digest ^ 0x404)
	default:
		panic(err)
	}
}

// KVStore runs the scenario on rt's machine and returns the fold of all
// thread digests, conflict history and the final image checksum,
// together with the stats. It drives the kernel API directly — each
// fork ships the shared region and the FS image in one Put (Copies),
// each collect merges the shared region (exercising the kernel's
// parallel merge engine) and then reconciles the replica.
func KVStore(rt *core.RT, cfg KVConfig) (uint64, KVStats) {
	cfg = cfg.withDefaults()
	env := rt.Env()
	sharedBase, sharedSize := rt.SharedRange()
	digests := rt.Alloc(uint64(8*cfg.Threads), 8)

	env.SetPerm(kvScratch, cfg.FSMax, vm.PermRW)
	fsys := fs.FormatGrowable(env, kvFSBase, cfg.FSInit, cfg.FSMax)
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(fsys.Mkdir("kv"))
	for t := 0; t < cfg.Threads; t++ {
		must(fsys.Mkdir(fmt.Sprintf("kv/s%d", t)))
	}
	must(fsys.CreateAppendOnly(kvLog))
	must(fsys.Create(kvHot))

	var stats KVStats
	checksum := kvMix(uint64(cfg.Threads)<<32 ^ uint64(cfg.Ops))
	refs := make([]uint64, cfg.Threads)
	for t := range refs {
		refs[t] = uint64(t + 1)
	}

	for round := 0; round < cfg.Rounds; round++ {
		imgSize := fsys.ImageSize()
		for t := 0; t < cfg.Threads; t++ {
			th, rnd := t, round
			must(env.Put(refs[t], kernel.PutOpts{
				Regs: &kernel.Regs{Entry: func(c *kernel.Env) {
					kvThread(c, cfg, rnd, th, digests)
				}},
				Copies: []kernel.CopyRange{
					{Src: sharedBase, Dst: sharedBase, Size: sharedSize},
					{Src: kvFSBase, Dst: kvFSBase, Size: imgSize},
				},
				Snap:  true,
				Start: true,
			}))
		}
		env.WaitChildren(refs, 0)
		var roundConflicts []fs.Conflict
		for t := 0; t < cfg.Threads; t++ {
			info, err := env.Get(refs[t], kernel.GetOpts{
				Merge:      true,
				MergeRange: &kernel.Range{Addr: sharedBase, Size: sharedSize},
			})
			must(err)
			if info.Status != kernel.StatusHalted {
				panic(fmt.Sprintf("kvstore: thread %d stopped with %v: %v", t, info.Status, info.Err))
			}
			// The child may have grown its replica: read its recorded
			// size from the superblock before copying the whole image.
			_, err = env.Get(refs[t], kernel.GetOpts{
				Copy: &kernel.CopyRange{Src: kvFSBase, Dst: kvScratch, Size: vm.PageSize},
			})
			must(err)
			childSize, err := fs.ImageSizeAt(env, kvScratch)
			must(err)
			if childSize > cfg.FSMax {
				panic("kvstore: child image exceeds configured maximum")
			}
			_, err = env.Get(refs[t], kernel.GetOpts{
				Copy: &kernel.CopyRange{Src: kvFSBase, Dst: kvScratch, Size: childSize},
			})
			must(err)
			replica, err := fs.Attach(env, kvScratch, cfg.FSMax)
			must(err)
			conflicts, err := fsys.ReconcileFrom(replica)
			must(err)
			roundConflicts = append(roundConflicts, conflicts...)
		}
		// Resolve every conflicted path deterministically: re-create
		// (which clears the flag and frees the stale extent) and write
		// a resolution value derived from the round. The same path may
		// be reported once per diverging child; resolve it once.
		resolved := make(map[string]bool, len(roundConflicts))
		for _, c := range roundConflicts {
			if resolved[c.Name] {
				continue
			}
			resolved[c.Name] = true
			must(fsys.Create(c.Name))
			must(fsys.WriteFile(c.Name, []byte(fmt.Sprintf("resolved r%d %s", round, c.Name))))
			checksum = kvMix(checksum ^ kvMix(uint64(len(c.Name))))
		}
		stats.Conflicts += len(roundConflicts)
		// The quiescent sync point: every child collected, none
		// outstanding — compact to the canonical layout and reclaim
		// tombstones.
		if _, err := fsys.Compact(fs.CompactOptions{ReclaimTombstones: true}); err != nil {
			panic(err)
		}
		for t := 0; t < cfg.Threads; t++ {
			checksum = kvMix(checksum ^ env.ReadU64(digests+vm.Addr(8*t)))
		}
		checksum = kvMix(checksum ^ uint64(len(roundConflicts)))
	}
	stats.GC = fsys.GC()
	stats.Image = fsys.ImageSize()
	checksum = kvMix(checksum ^ fsys.Checksum())
	return checksum, stats
}

// kvThread is one round of one thread's work against its private
// replica: a deterministic op mix over its own key stripe, one append
// to the shared log, one write to the contended key.
func kvThread(env *kernel.Env, cfg KVConfig, round, th int, digests vm.Addr) {
	fsys, err := fs.Attach(env, kvFSBase, cfg.FSMax)
	if err != nil {
		panic(err)
	}
	fsys.StampFork()
	digest := kvMix(uint64(round+1)<<20 ^ uint64(th+1))
	r := digest
	stripe := fmt.Sprintf("kv/s%d", th)
	for i := 0; i < cfg.Ops; i++ {
		r = kvMix(r)
		key := fmt.Sprintf("%s/k%02d", stripe, int(r>>8)%cfg.Keys)
		switch {
		case int(r%100) < cfg.WritePct && (r>>16)%4 == 0:
			// Deletion slot: drop the key if present (tombstone + freed
			// extent), else seed it.
			if _, err := fsys.Stat(key); err == nil {
				if err := fsys.Unlink(key); err != nil {
					panic(err)
				}
				digest = kvMix(digest ^ 0xDE1E7E)
				continue
			}
			fallthrough
		case int(r%100) < cfg.WritePct:
			val := kvValue(r, cfg.ValueSize)
			if err := fsys.WriteFile(key, val); err != nil {
				panic(err)
			}
			digest = kvMix(digest ^ uint64(len(val)))
		default:
			data, err := fsys.ReadFile(key)
			digest = kvReadDigest(digest, data, err)
		}
	}
	if err := fsys.Append(kvLog, []byte(fmt.Sprintf("r%d t%d %016x\n", round, th, digest))); err != nil {
		panic(err)
	}
	if err := fsys.WriteFile(kvHot, kvValue(digest, 64)); err != nil {
		panic(err)
	}
	env.WriteU64(digests+vm.Addr(8*th), digest)
}

// kvValue derives a deterministic value of varying length (1..max) from
// a PRNG word; varying lengths are what make the free list split,
// coalesce and best-fit for real.
func kvValue(r uint64, max int) []byte {
	n := 1 + int((r>>24)%uint64(max))
	val := make([]byte, n)
	b := byte(r)
	for i := range val {
		val[i] = b + byte(i)
	}
	return val
}
