package workload

import (
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
)

// detRun executes a Det-style entry point on a fresh machine.
func detRun(t *testing.T, shared uint64, nodes int, f func(rt *core.RT) uint64) uint64 {
	t.Helper()
	res := core.Run(core.Options{
		Kernel:     kernel.Config{CPUsPerNode: 4, Nodes: nodes},
		SharedSize: shared,
	}, f)
	if res.Status != kernel.StatusHalted {
		t.Fatalf("det run stopped with %v: %v", res.Status, res.Err)
	}
	return res.Ret
}

func TestMD5DetMatchesSequential(t *testing.T) {
	const size = 4096
	want := MD5Seq(size)
	if want != MD5Target(size) {
		t.Fatalf("sequential search broken: found %d, planted %d", want, MD5Target(size))
	}
	for _, threads := range []int{1, 2, 4, 7} {
		got := detRun(t, 1<<20, 1, func(rt *core.RT) uint64 {
			return MD5Det(rt, threads, size)
		})
		if got != want {
			t.Errorf("threads=%d: MD5Det = %d, want %d", threads, got, want)
		}
	}
}

func TestMatmultDetMatchesSequential(t *testing.T) {
	for _, n := range []int{16, 64} {
		want := MatmultSeq(n)
		for _, threads := range []int{1, 3, 4} {
			got := detRun(t, uint64(3*4*n*n)+(8<<20), 1, func(rt *core.RT) uint64 {
				return MatmultDet(rt, threads, n)
			})
			if got != want {
				t.Errorf("n=%d threads=%d: MatmultDet = %d, want %d", n, threads, got, want)
			}
		}
	}
}

func TestQsortDetSortsCorrectly(t *testing.T) {
	const size = 5000
	want := QsortSeqFull(size)
	// Cross-check the reference against the stdlib.
	ref := GenU32(size, 0x50F7)
	std := append([]uint32(nil), ref...)
	sort.Slice(std, func(i, j int) bool { return std[i] < std[j] })
	QsortSeqRef(ref)
	for i := range ref {
		if ref[i] != std[i] {
			t.Fatalf("reference quicksort wrong at %d", i)
		}
	}
	for _, threads := range []int{1, 2, 4} {
		got := detRun(t, uint64(4*size)+(8<<20), 1, func(rt *core.RT) uint64 {
			return QsortDet(rt, threads, size)
		})
		if got != want {
			t.Errorf("threads=%d: QsortDet = %d, want %d", threads, got, want)
		}
	}
}

func TestBlackscholesVariantsAgree(t *testing.T) {
	const size = 2000
	want := BlackscholesSeq(size)
	gotNative := detRun(t, (16 << 20), 1, func(rt *core.RT) uint64 {
		return BlackscholesDet(rt, 3, size)
	})
	if gotNative != want {
		t.Errorf("BlackscholesDet = %d, want %d", gotNative, want)
	}
	gotDsched := detRun(t, (16 << 20), 1, func(rt *core.RT) uint64 {
		return BlackscholesQuantum(rt, 3, size, 50_000)
	})
	if gotDsched != want {
		t.Errorf("BlackscholesQuantum = %d, want %d", gotDsched, want)
	}
}

func TestBlackscholesPriceSanity(t *testing.T) {
	// A deep in-the-money call is worth at least its intrinsic value.
	call := Option{S: 200, K: 100, R: 0.05, V: 0.2, T: 1, Call: true}
	if p := Price(call); p < 100 || p > 200 {
		t.Errorf("call price %f outside sanity range", p)
	}
	put := Option{S: 50, K: 100, R: 0.05, V: 0.2, T: 1, Call: false}
	if p := Price(put); p < 40 || p > 100 {
		t.Errorf("put price %f outside sanity range", p)
	}
}

func TestFFTDetMatchesSequential(t *testing.T) {
	const size = 512
	want := FFTSeq(size)
	for _, threads := range []int{1, 2, 4} {
		got := detRun(t, (16 << 20), 1, func(rt *core.RT) uint64 {
			return FFTDet(rt, threads, size)
		})
		if got != want {
			t.Errorf("threads=%d: FFTDet = %d, want %d", threads, got, want)
		}
	}
}

func TestFFTRecoversKnownSpectrum(t *testing.T) {
	// Sanity-check the butterfly kernel itself: a constant signal's
	// spectrum is an impulse at bin 0.
	const n = 8
	data := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		data[2*i] = 1
	}
	fftBitReverse(data)
	for half := 1; half < n; half *= 2 {
		u := fftButterflies(data, half, 0, n/2)
		FFTApplyRef(data, half, 0, n/2, u)
	}
	if data[0] != n {
		t.Errorf("DC bin = %f, want %d", data[0], n)
	}
	for i := 1; i < n; i++ {
		if data[2*i] > 1e-9 || data[2*i] < -1e-9 {
			t.Errorf("bin %d nonzero: %f", i, data[2*i])
		}
	}
}

func TestLUVariantsAgree(t *testing.T) {
	const n = 64
	want := LUSeq(n)
	gotCont := detRun(t, uint64(8*n*n)+(8<<20), 1, func(rt *core.RT) uint64 {
		return LUContDet(rt, 2, n)
	})
	if gotCont != want {
		t.Errorf("LUContDet = %d, want %d", gotCont, want)
	}
	gotNoncont := detRun(t, uint64(8*n*n)+(8<<20), 1, func(rt *core.RT) uint64 {
		return LUNoncontDet(rt, 2, n)
	})
	if gotNoncont != want {
		t.Errorf("LUNoncontDet = %d, want %d", gotNoncont, want)
	}
}

func TestLUFactorizationIsCorrect(t *testing.T) {
	// Verify L·U ≈ A on a small matrix: multiply the factors back.
	const n = luBlock // single block: factor == dense LU
	a := luGen(n)
	orig := append([]float64(nil), a...)
	luFactorDiag(a)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for k := 0; k <= min(i, j); k++ {
				l := a[i*n+k]
				if k == i {
					l = 1
				}
				if k > i {
					l = 0
				}
				u := a[k*n+j]
				if k > j {
					u = 0
				}
				sum += l * u
			}
			diff := sum - orig[i*n+j]
			if diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("L*U differs from A at (%d,%d): %g", i, j, diff)
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestDistributedVariantsMatchSequential(t *testing.T) {
	const size = 4096
	wantMD5 := MD5Seq(size)
	for _, nodes := range []int{1, 2, 4} {
		nodes := nodes
		gotCircuit := detRun(t, 1<<20, nodes, func(rt *core.RT) uint64 {
			return MD5Circuit(rt, nodes, size)
		})
		if gotCircuit != wantMD5 {
			t.Errorf("nodes=%d: MD5Circuit = %d, want %d", nodes, gotCircuit, wantMD5)
		}
		gotTree := detRun(t, 1<<20, nodes, func(rt *core.RT) uint64 {
			return MD5Tree(rt, nodes, size)
		})
		if gotTree != wantMD5 {
			t.Errorf("nodes=%d: MD5Tree = %d, want %d", nodes, gotTree, wantMD5)
		}
	}
	const n = 32
	wantMM := MatmultSeq(n)
	for _, nodes := range []int{1, 2, 4} {
		nodes := nodes
		got := detRun(t, uint64(3*4*n*n)+(8<<20), nodes, func(rt *core.RT) uint64 {
			return MatmultTree(rt, nodes, n)
		})
		if got != wantMM {
			t.Errorf("nodes=%d: MatmultTree = %d, want %d", nodes, got, wantMM)
		}
	}
}

func TestSpecsComplete(t *testing.T) {
	specs := Specs()
	if len(specs) != 7 {
		t.Fatalf("expected the paper's 7 benchmarks, got %d", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		names[s.Name] = true
		if s.Det == nil || s.SharedBytes == nil || s.DefaultSize <= 0 {
			t.Errorf("spec %q incomplete", s.Name)
		}
	}
	for _, want := range []string{"md5", "matmult", "qsort", "blackscholes", "fft", "lu_cont", "lu_noncont"} {
		if !names[want] {
			t.Errorf("missing benchmark %q", want)
		}
	}
	if _, err := Lookup("md5"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup accepted unknown name")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, b := GenU32(100, 7), GenU32(100, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("GenU32 not deterministic")
		}
	}
	f, g := GenF64(100, 7), GenF64(100, 7)
	for i := range f {
		if f[i] != g[i] {
			t.Fatal("GenF64 not deterministic")
		}
		if f[i] < 0 || f[i] >= 1 {
			t.Fatalf("GenF64 out of range: %f", f[i])
		}
	}
	if GenU32(10, 1)[0] == GenU32(10, 2)[0] {
		t.Error("different seeds gave identical streams")
	}
}
