package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
)

func runKVStore(t *testing.T, cfg KVConfig, mergeWorkers int) (uint64, KVStats, int64) {
	t.Helper()
	var sum uint64
	var st KVStats
	res := core.Run(core.Options{
		Kernel:     kernel.Config{CPUsPerNode: cfg.Threads, MergeWorkers: mergeWorkers},
		SharedSize: 4 << 20,
	}, func(rt *core.RT) uint64 {
		sum, st = KVStore(rt, cfg)
		return sum
	})
	if res.Status != kernel.StatusHalted {
		t.Fatalf("kv run stopped with %v: %v", res.Status, res.Err)
	}
	return sum, st, res.VT
}

// TestKVStoreDeterministicAcrossMergeWorkers is the scenario's core
// claim: the checksum (which folds the final image bytes), the conflict
// history and the virtual time are all independent of host merge
// parallelism and of repetition.
func TestKVStoreDeterministicAcrossMergeWorkers(t *testing.T) {
	cfg := KVConfig{Threads: 4, Keys: 6, Ops: 24, Rounds: 2, WritePct: 70, ValueSize: 200}
	sum1, st1, vt1 := runKVStore(t, cfg, 1)
	for _, w := range []int{2, 0} { // 0 selects GOMAXPROCS
		sum, st, vt := runKVStore(t, cfg, w)
		if sum != sum1 || st != st1 || vt != vt1 {
			t.Fatalf("MergeWorkers=%d changed the run: checksum %#x vs %#x, stats %+v vs %+v, vt %d vs %d",
				w, sum, sum1, st, st1, vt, vt1)
		}
	}
	sum, st, vt := runKVStore(t, cfg, 1)
	if sum != sum1 || st != st1 || vt != vt1 {
		t.Fatal("repeated identical run diverged")
	}
}

// TestKVStoreConflictAndReuseShape pins the scenario's deterministic
// observables: every round conflicts exactly on the hot key (threads-1
// diverging children), unlink-heavy runs reuse freed extents, and the
// initial 64K image grows by chaining regions.
func TestKVStoreConflictAndReuseShape(t *testing.T) {
	cfg := KVConfig{Threads: 3, Keys: 6, Ops: 30, Rounds: 3, WritePct: 90, ValueSize: 300}
	_, st, _ := runKVStore(t, cfg, 0)
	if want := (cfg.Threads - 1) * cfg.Rounds; st.Conflicts != want {
		t.Errorf("conflicts = %d, want %d (threads-1 per round)", st.Conflicts, want)
	}
	if st.GC.Reused == 0 {
		t.Error("unlink-heavy run reused no extents")
	}
	if st.GC.Compactions != cfg.Rounds {
		t.Errorf("compactions = %d, want %d (one per round)", st.GC.Compactions, cfg.Rounds)
	}
	if st.GC.Grows == 0 {
		t.Error("image never grew past its 64K initial region")
	}
	if st.GC.Dropped != 0 {
		t.Errorf("free table overflowed (%d extents leaked) at this scale", st.GC.Dropped)
	}
}
