package workload

import (
	"repro/internal/core"
	"repro/internal/dsched"
	"repro/internal/vm"
)

// Synchronization-bound microworkloads for the deterministic scheduler's
// round engine. Unlike the PARSEC-style kernels, these spend almost all
// of their time in the scheduler, which is exactly what the dsched
// experiment wants to measure: per-round overhead, not compute.

// LockHeavy runs threads legacy-API threads that contend for one mutex
// around a tiny critical section: at almost every instant one thread is
// runnable and the rest sit blocked in the master's ownership queue, the
// paper's worst case for quantized scheduling. Each thread performs
// iters lock/increment/unlock cycles; the returned checksum folds the
// final counter with the deterministic acquisition history.
func LockHeavy(rt *core.RT, threads, iters int, cfg dsched.Config) (uint64, dsched.Stats) {
	s := dsched.New(rt, cfg)
	mu := s.NewMutex()
	counter := rt.Alloc(8, 8)
	seq := rt.Alloc(8, 8)
	hist := rt.Alloc(8, 8)
	if err := s.Run(threads, func(th *dsched.Thread) {
		env := th.Env()
		for i := 0; i < iters; i++ {
			th.Lock(mu)
			v := env.ReadU64(counter)
			env.Tick(20)
			env.WriteU64(counter, v+1)
			pos := env.ReadU64(seq)
			env.WriteU64(seq, pos+1)
			env.WriteU64(hist, env.ReadU64(hist)*31+uint64(th.ID+1))
			th.Unlock(mu)
			env.Tick(int64(40 + 10*th.ID))
		}
	}); err != nil {
		panic(err)
	}
	env := rt.Env()
	return env.ReadU64(counter)*2654435761 + env.ReadU64(hist), s.Stats()
}

// scanTicksPerPage models the per-page digest cost of the holder's scan
// (hashing, parsing — work that is compute, not memory traffic).
const scanTicksPerPage = 500

// LockScan is the blocked-heavy, read-mostly shape: threads serialize on
// one mutex, and the holder scans a shared table of the given page count
// for many quanta — reading one word per page, charging a per-page
// digest cost, writing nothing — before recording one result and
// releasing. At any instant one thread is runnable and the rest sit
// blocked; every holder quantum after its first is resumed via epoch
// skip (nothing changed anywhere). The host cost of a quantum is a
// handful of accessor calls, so the measurement isolates the
// scheduler's per-round overhead — the round engine's target.
func LockScan(rt *core.RT, threads, pages int, cfg dsched.Config) (uint64, dsched.Stats) {
	table := rt.AllocPages(pages)
	results := rt.Alloc(uint64(8*threads), 8)
	env0 := rt.Env()
	for p := 0; p < pages; p++ {
		env0.WriteU64(table+vm.Addr(p)*vm.PageSize, uint64(p)*0x9E3779B97F4A7C15+1)
	}
	s := dsched.New(rt, cfg)
	mu := s.NewMutex()
	if err := s.Run(threads, func(th *dsched.Thread) {
		env := th.Env()
		th.Lock(mu)
		var sum uint64
		for p := 0; p < pages; p++ {
			sum += env.ReadU64(table + vm.Addr(p)*vm.PageSize)
			env.Tick(scanTicksPerPage)
		}
		env.WriteU64(results+vm.Addr(8*th.ID), sum*uint64(th.ID+1))
		th.Unlock(mu)
	}); err != nil {
		panic(err)
	}
	var sig uint64
	for i := 0; i < threads; i++ {
		sig = sig*1099511628211 + env0.ReadU64(results+vm.Addr(8*i))
	}
	return sig, s.Stats()
}
