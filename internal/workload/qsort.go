package workload

import (
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/vm"
)

// The qsort benchmark is a recursive parallel quicksort over uint32s
// (§6.2): partition in the parent, fork a thread per half, recurse until
// the fork depth covers the requested parallelism, sort leaves in place.
// Each recursion level's halves are disjoint array ranges, so all merges
// are conflict-free; the partitioning pass itself is the serial fraction
// that limits scaling, on Determinator and Linux alike.

// qsortTicksPerElem scales the n·log n comparison/swap cost model.
const qsortTicksPerElem = 2

// qsortSeq is the sequential in-place quicksort used at the leaves (and
// by the sequential reference), written out so both worlds run byte-
// identical comparison logic.
func qsortSeq(a []uint32) {
	for len(a) > 12 {
		p := qsortPartition(a)
		if p < len(a)-p-1 {
			qsortSeq(a[:p])
			a = a[p+1:]
		} else {
			qsortSeq(a[p+1:])
			a = a[:p]
		}
	}
	// Insertion sort for small runs.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// qsortPartition partitions around a median-of-three pivot and returns
// the pivot's final index.
func qsortPartition(a []uint32) int {
	n := len(a)
	mid := n / 2
	if a[0] > a[mid] {
		a[0], a[mid] = a[mid], a[0]
	}
	if a[mid] > a[n-1] {
		a[mid], a[n-1] = a[n-1], a[mid]
		if a[0] > a[mid] {
			a[0], a[mid] = a[mid], a[0]
		}
	}
	pivot := a[mid]
	a[mid], a[n-1] = a[n-1], a[mid]
	i := 0
	for j := 0; j < n-1; j++ {
		if a[j] < pivot {
			a[i], a[j] = a[j], a[i]
			i++
		}
	}
	a[i], a[n-1] = a[n-1], a[i]
	return i
}

// qsortDepth chooses the fork depth for a thread count.
func qsortDepth(threads int) int {
	d := 0
	for 1<<d < threads {
		d++
	}
	return d
}

// forker abstracts core.RT and core.Thread so recursion works at every
// level of the thread tree.
type forker interface {
	Fork(id int, fn core.ThreadFunc) error
	Join(id int) (uint64, error)
	Env() *kernel.Env
}

// QsortDet sorts size deterministic pseudo-random values on a fork tree
// of the given width and returns the sorted array's checksum.
func QsortDet(rt *core.RT, threads, size int) uint64 {
	base := rt.Alloc(uint64(4*size), vm.PageSize)
	rt.Env().WriteU32s(base, GenU32(size, 0x50F7))
	qsortDetRange(rtForker{rt}, base, 0, size, qsortDepth(threads))
	out := make([]uint32, size)
	rt.Env().ReadU32s(base, out)
	return ChecksumU32(out)
}

// rtForker / thForker adapt the two runtime types to one recursion.
type rtForker struct{ rt *core.RT }

func (f rtForker) Fork(id int, fn core.ThreadFunc) error { return f.rt.Fork(id, fn) }
func (f rtForker) Join(id int) (uint64, error)           { return f.rt.Join(id) }
func (f rtForker) Env() *kernel.Env                      { return f.rt.Env() }

type thForker struct{ th *core.Thread }

func (f thForker) Fork(id int, fn core.ThreadFunc) error { return f.th.Fork(id, fn) }
func (f thForker) Join(id int) (uint64, error)           { return f.th.Join(id) }
func (f thForker) Env() *kernel.Env                      { return f.th.Env() }

func qsortDetRange(f forker, base vm.Addr, lo, hi, depth int) {
	n := hi - lo
	if n <= 1 {
		return
	}
	env := f.Env()
	if depth == 0 || n < 64 {
		buf := make([]uint32, n)
		env.ReadU32s(base+vm.Addr(4*lo), buf)
		qsortSeq(buf)
		lg := 1
		for 1<<lg < n {
			lg++
		}
		env.Tick(int64(n) * int64(lg) * qsortTicksPerElem)
		env.WriteU32s(base+vm.Addr(4*lo), buf)
		return
	}
	// Partition here (the serial fraction), then fork the halves.
	buf := make([]uint32, n)
	env.ReadU32s(base+vm.Addr(4*lo), buf)
	p := qsortPartition(buf)
	env.Tick(int64(n) * 2)
	env.WriteU32s(base+vm.Addr(4*lo), buf)

	halves := [2][2]int{{lo, lo + p}, {lo + p + 1, hi}}
	for c := 0; c < 2; c++ {
		c := c
		if err := f.Fork(c, func(t *core.Thread) uint64 {
			qsortDetRange(thForker{t}, base, halves[c][0], halves[c][1], depth-1)
			return 0
		}); err != nil {
			panic(err)
		}
	}
	for c := 0; c < 2; c++ {
		if _, err := f.Join(c); err != nil {
			panic(err)
		}
	}
}
