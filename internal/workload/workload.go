// Package workload implements the seven parallel benchmarks of the
// paper's evaluation (§6.2–6.3) against Determinator's native private
// workspace API (and, for blackscholes, the deterministic scheduler):
// md5, matmult, qsort, blackscholes, fft, and the two lu variants.
// Package baseline holds the corresponding nondeterministic
// ("Linux pthreads") and distributed-memory equivalents.
//
// Every workload is a pure function of its parameters and returns a
// checksum, so tests can assert that the Determinator version, the
// baseline version and a sequential reference all compute the same thing
// — determinism made checkable.
package workload

import (
	"fmt"

	"repro/internal/core"
)

// Spec describes one benchmark for the harness: how much shared memory it
// needs, and its Determinator entry point. (Baseline entry points live in
// package baseline to keep the two worlds separate, as in the paper.)
type Spec struct {
	Name string
	// DefaultSize is the problem size used by Figure 7/8 runs.
	DefaultSize int
	// SharedBytes estimates the shared-region footprint for a size.
	SharedBytes func(size int) uint64
	// Det runs the benchmark on threads private-workspace threads inside
	// an existing runtime and returns the result checksum.
	Det func(rt *core.RT, threads, size int) uint64
	// Work is the analytic pure-compute tick count of the benchmark:
	// the instruction ticks its kernels issue, excluding all isolation
	// overhead. The harness divides it across CPUs to model an ideal
	// nondeterministic baseline ("pthreads with free synchronization")
	// for the virtual-time ratio columns.
	Work func(size, threads int) int64
	// Critical, if set, is the benchmark's analytic critical path — the
	// serial fraction no baseline can parallelize (e.g. quicksort's
	// partition spine). The ideal baseline time is floored by it.
	Critical func(size, threads int) int64
	// Granularity classifies the benchmark as the paper does.
	Granularity string // "coarse" or "fine"
}

func log2ceil(v int) int {
	d := 0
	for 1<<d < v {
		d++
	}
	return d
}

// qsortCritical models quicksort's unavoidable serial fraction: the
// partition spine (each level's partition of the largest subarray, with
// its copy-in/copy-out) plus one leaf sort.
func qsortCritical(n, threads int) int64 {
	d := log2ceil(threads)
	var spine int64
	sz := n
	for l := 0; l < d && sz > 1; l++ {
		spine += int64(3 * sz)
		sz /= 2
	}
	if sz < 1 {
		sz = 1
	}
	return spine + 2*int64(sz)*int64(log2ceil(sz)) + int64(sz)
}

// luWork sums the tick accounting of luDet exactly.
func luWork(n int) int64 {
	nb := n / luBlock
	const f = int64(luBlockFlops) * luTicksPerFlop
	var total int64
	for k := 0; k < nb; k++ {
		rest := int64(nb - k - 1)
		total += f/3 + 2*rest*(f/2) + rest*rest*f
	}
	return total
}

// Specs returns all benchmarks in the paper's Figure 7 order.
func Specs() []Spec {
	return []Spec{
		{
			Name:        "md5",
			DefaultSize: 1 << 15,
			SharedBytes: func(int) uint64 { return 1 << 20 },
			Det:         MD5Det,
			Work:        func(size, threads int) int64 { return int64(size) * md5TicksPerHash },
			Granularity: "coarse",
		},
		{
			Name:        "matmult",
			DefaultSize: 256,
			SharedBytes: func(n int) uint64 { return uint64(3*n*n*4) + (8 << 20) },
			Det:         MatmultDet,
			Work:        func(n, threads int) int64 { return int64(n) * int64(n) * int64(n) * matmulTicksPerMAC },
			Granularity: "coarse",
		},
		{
			Name:        "qsort",
			DefaultSize: 1 << 17,
			SharedBytes: func(n int) uint64 { return uint64(4*n) + (8 << 20) },
			Det:         QsortDet,
			Work:        func(n, threads int) int64 { return qsortTicksPerElem * int64(n) * int64(log2ceil(n)) },
			Critical:    qsortCritical,
			Granularity: "coarse",
		},
		{
			Name:        "blackscholes",
			DefaultSize: 1 << 14,
			SharedBytes: func(n int) uint64 { return uint64(6*8*n) + (8 << 20) },
			Det:         BlackscholesDsched,
			Work:        func(size, threads int) int64 { return int64(size) * bsTicksPerOption },
			Granularity: "coarse",
		},
		{
			Name:        "fft",
			DefaultSize: 1 << 14,
			SharedBytes: func(n int) uint64 { return uint64(16*n) + (8 << 20) },
			Det:         FFTDet,
			Work:        func(n, threads int) int64 { return int64(n/2) * int64(log2ceil(n)) * fftTicksPerButterfly },
			Granularity: "fine",
		},
		{
			Name:        "lu_cont",
			DefaultSize: 128,
			SharedBytes: func(n int) uint64 { return uint64(8*n*n) + (8 << 20) },
			Det:         LUContDet,
			Work:        func(n, threads int) int64 { return luWork(n) },
			Granularity: "fine",
		},
		{
			Name:        "lu_noncont",
			DefaultSize: 128,
			SharedBytes: func(n int) uint64 { return uint64(8*n*n) + (8 << 20) },
			Det:         LUNoncontDet,
			Work:        func(n, threads int) int64 { return luWork(n) },
			Granularity: "fine",
		},
	}
}

// Lookup finds a spec by name.
func Lookup(name string) (Spec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Xorshift returns a deterministic pseudo-random generator — the
// workloads' only source of "randomness", so every run sees identical
// data.
func Xorshift(seed uint64) func() uint64 {
	s := seed
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	return func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
}

// GenU32 generates n deterministic pseudo-random uint32 values.
func GenU32(n int, seed uint64) []uint32 {
	g := Xorshift(seed)
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(g())
	}
	return out
}

// GenF64 generates n deterministic values in [0, 1).
func GenF64(n int, seed uint64) []float64 {
	g := Xorshift(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(g()>>11) / (1 << 53)
	}
	return out
}

// stripe splits [0, total) into nth contiguous stripes and returns the
// id-th one.
func stripe(total, nth, id int) (lo, hi int) {
	lo = id * total / nth
	hi = (id + 1) * total / nth
	return
}
