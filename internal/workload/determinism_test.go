package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
)

// Whole-stack determinism: every benchmark, run repeatedly on the same
// configuration, must produce the identical checksum AND the identical
// virtual time — the latter exercises the full cost model (copies,
// merges, scheduling, migration) for schedule-independence.

func vtAndValue(t *testing.T, spec Spec, threads, cpus, nodes, size int) (int64, uint64) {
	t.Helper()
	var value uint64
	res := core.Run(core.Options{
		Kernel:     kernel.Config{CPUsPerNode: cpus, Nodes: nodes},
		SharedSize: spec.SharedBytes(size),
	}, func(rt *core.RT) uint64 {
		value = spec.Det(rt, threads, size)
		return value
	})
	if res.Status != kernel.StatusHalted {
		t.Fatalf("%s: %v %v", spec.Name, res.Status, res.Err)
	}
	return res.VT, value
}

func TestAllWorkloadsDeterministicVT(t *testing.T) {
	sizes := map[string]int{
		"md5": 1 << 10, "matmult": 32, "qsort": 1 << 11,
		"blackscholes": 1 << 9, "fft": 1 << 9, "lu_cont": 64, "lu_noncont": 64,
	}
	for _, spec := range Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			size := sizes[spec.Name]
			vt1, v1 := vtAndValue(t, spec, 3, 2, 1, size)
			for i := 0; i < 3; i++ {
				vt, v := vtAndValue(t, spec, 3, 2, 1, size)
				if v != v1 {
					t.Fatalf("run %d: value %d != %d", i, v, v1)
				}
				if vt != vt1 {
					t.Fatalf("run %d: virtual time %d != %d (cost model nondeterministic)", i, vt, vt1)
				}
			}
		})
	}
}

func TestDistributedWorkloadsDeterministicVT(t *testing.T) {
	type dist struct {
		name string
		fn   func(rt *core.RT, nodes, size int) uint64
		size int
	}
	for _, d := range []dist{
		{"md5-circuit", MD5Circuit, 1 << 10},
		{"md5-tree", MD5Tree, 1 << 10},
		{"matmult-tree", MatmultTree, 32},
	} {
		d := d
		t.Run(d.name, func(t *testing.T) {
			run := func() (int64, uint64) {
				var value uint64
				res := core.Run(core.Options{
					Kernel:     kernel.Config{Nodes: 4, CPUsPerNode: 1},
					SharedSize: 32 << 20,
				}, func(rt *core.RT) uint64 {
					value = d.fn(rt, 4, d.size)
					return value
				})
				if res.Status != kernel.StatusHalted {
					t.Fatalf("%v: %v", res.Status, res.Err)
				}
				return res.VT, value
			}
			vt1, v1 := run()
			for i := 0; i < 3; i++ {
				vt, v := run()
				if vt != vt1 || v != v1 {
					t.Fatalf("run %d: (%d,%d) != (%d,%d)", i, vt, v, vt1, v1)
				}
			}
		})
	}
}

// Thread count must never change the answer, only the time.
func TestThreadCountInvariance(t *testing.T) {
	for _, spec := range Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			size := map[string]int{
				"md5": 1 << 10, "matmult": 32, "qsort": 1 << 11,
				"blackscholes": 1 << 9, "fft": 1 << 9, "lu_cont": 64, "lu_noncont": 64,
			}[spec.Name]
			_, v1 := vtAndValue(t, spec, 1, 1, 1, size)
			_, v2 := vtAndValue(t, spec, 2, 2, 1, size)
			_, v5 := vtAndValue(t, spec, 5, 4, 1, size)
			if v1 != v2 || v2 != v5 {
				t.Fatalf("thread count changed the result: %d / %d / %d", v1, v2, v5)
			}
		})
	}
}
