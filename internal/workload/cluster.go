package workload

import (
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/vm"
)

// ClusterStencil is the cluster-scale barrier workload behind the
// `detbench -run cluster` sweep: a phase-stepped stencil over the
// logically shared region, with threads placed in contiguous blocks
// across the nodes. Every phase each thread folds the previous phase's
// combined boundary words (cross-thread — and cross-node — dataflow
// through the barrier merges) into its own page stripe and publishes a
// new boundary word. The stripe writes make per-thread deltas that are
// page-contiguous per node, the layout batched transfers and the
// sharded barrier tree are built for.
type ClusterConfig struct {
	Nodes          int
	Threads        int
	PagesPerThread int
	Phases         int
	// Tree selects the sharded barrier tree; false is the flat collector.
	Tree bool
}

// ClusterStencil runs the workload on rt's machine and returns the
// deterministic result checksum plus the root collector's cross-node
// traffic. The checksum depends only on the configuration — never on
// Nodes, Tree, or the kernel's MergeWorkers — which is what the bench
// harness asserts.
func ClusterStencil(rt *core.RT, cfg ClusterConfig) (uint64, kernel.NetStats) {
	rt.SetTreeJoin(cfg.Tree)
	threads, pages := cfg.Threads, cfg.PagesPerThread
	stripes := rt.AllocPages(threads * pages)
	words := rt.Alloc(uint64(8*threads), 8)
	place := func(i int) int { return i * cfg.Nodes / threads } // blocked
	if err := rt.RunPhasesOn(threads, cfg.Phases, place, func(th *core.Thread, phase int) {
		env := th.Env()
		var carry uint64
		if phase > 0 {
			for i := 0; i < threads; i++ {
				carry += env.ReadU64(words + vm.Addr(8*i))
			}
		}
		base := stripes + vm.Addr(th.ID*pages)*vm.PageSize
		for off := 0; off < pages*int(vm.PageSize); off += 8 {
			env.WriteU64(base+vm.Addr(off), carry+uint64(th.ID)*1_000_003+uint64(phase)*257+uint64(off))
		}
		env.WriteU64(words+vm.Addr(8*th.ID), carry*31+uint64(th.ID+1)*uint64(phase+1))
	}); err != nil {
		panic(err)
	}
	env := rt.Env()
	var sig uint64
	for i := 0; i < threads; i++ {
		base := stripes + vm.Addr(i*pages)*vm.PageSize
		for off := 0; off < pages*int(vm.PageSize); off += 64 {
			sig = sig*1099511628211 + env.ReadU64(base+vm.Addr(off))
		}
		sig = sig*31 + env.ReadU64(words+vm.Addr(8*i))
	}
	return sig, env.NetStats()
}

// ClusterSharedBytes sizes the shared region for a configuration.
func ClusterSharedBytes(cfg ClusterConfig) uint64 {
	return uint64(cfg.Threads*cfg.PagesPerThread)*vm.PageSize + (1 << 20)
}
