package uproc

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/kernel"
)

// boot runs entry with the given registry additions and console script,
// returning the exit status and console output.
func boot(t *testing.T, reg *Registry, stdin string, entry string, args ...string) (int, string) {
	t.Helper()
	var out bytes.Buffer
	res := Boot(BootConfig{
		Registry: reg,
		Stdin:    strings.NewReader(stdin),
		Stdout:   &out,
	}, entry, args...)
	if res.Run.Status != kernel.StatusHalted {
		t.Fatalf("init stopped with %v: %v", res.Run.Status, res.Run.Err)
	}
	return res.ExitStatus, out.String()
}

func TestForkWaitExitStatus(t *testing.T) {
	reg := NewRegistry()
	reg.Register("init", func(p *Proc) int {
		pid, err := p.Fork(func(c *Proc) int { return 42 })
		if err != nil {
			panic(err)
		}
		status, conflicts, err := p.Waitpid(pid)
		if err != nil || len(conflicts) != 0 {
			panic("waitpid failed")
		}
		return status
	})
	status, _ := boot(t, reg, "", "init")
	if status != 42 {
		t.Errorf("exit status = %d, want 42", status)
	}
}

func TestChildFileOutputPropagatesAtWait(t *testing.T) {
	// The parallel-make scenario of §4.2: children write .o files into
	// their own replicas; the parent sees them after wait.
	reg := NewRegistry()
	reg.Register("init", func(p *Proc) int {
		var pids []int
		for _, name := range []string{"a.o", "b.o", "c.o"} {
			name := name
			pid, err := p.Fork(func(c *Proc) int {
				if err := c.FS().WriteFile(name, []byte("obj:"+name)); err != nil {
					panic(err)
				}
				return 0
			})
			if err != nil {
				panic(err)
			}
			pids = append(pids, pid)
		}
		for _, pid := range pids {
			if _, conflicts, err := p.Waitpid(pid); err != nil || len(conflicts) != 0 {
				panic("wait failed")
			}
		}
		for _, name := range []string{"a.o", "b.o", "c.o"} {
			got, err := p.FS().ReadFile(name)
			if err != nil || string(got) != "obj:"+name {
				panic("missing child output " + name)
			}
		}
		return 0
	})
	boot(t, reg, "", "init")
}

func TestConcurrentWriteConflictReportedAtWait(t *testing.T) {
	reg := NewRegistry()
	reg.Register("init", func(p *Proc) int {
		if err := p.FS().Create("shared.txt"); err != nil {
			panic(err)
		}
		writeIt := func(c *Proc) int {
			if err := c.FS().WriteFile("shared.txt", []byte(c.Args()[0])); err != nil {
				panic(err)
			}
			return 0
		}
		p1, _ := p.Fork(writeIt, "one")
		p2, _ := p.Fork(writeIt, "two")
		_, c1, err := p.Waitpid(p1)
		if err != nil || len(c1) != 0 {
			panic("first wait should be clean")
		}
		_, c2, err := p.Waitpid(p2)
		if err != nil {
			panic(err)
		}
		if len(c2) != 1 || c2[0].Name != "shared.txt" {
			panic("conflict not reported")
		}
		return 0
	})
	boot(t, reg, "", "init")
}

func TestConsoleOutputAppearsAsUnits(t *testing.T) {
	// §6.1: each process's output appears as a unit in a deterministic
	// order (the order the parent collects children), even though the
	// children "run" concurrently.
	reg := NewRegistry()
	reg.Register("init", func(p *Proc) int {
		chatty := func(c *Proc) int {
			for i := 0; i < 3; i++ {
				c.ConsoleWrite([]byte(c.Args()[0]))
			}
			return 0
		}
		pa, _ := p.Fork(chatty, "A")
		pb, _ := p.Fork(chatty, "B")
		p.Waitpid(pb) // collect B first: B's output must precede A's
		p.Waitpid(pa)
		return 0
	})
	_, out := boot(t, reg, "", "init")
	if out != "BBBAAA" {
		t.Errorf("console output = %q, want BBBAAA (units in collection order)", out)
	}
}

func TestConsoleOutputIdenticalAcrossRuns(t *testing.T) {
	reg := NewRegistry()
	reg.Register("init", func(p *Proc) int {
		loud := func(c *Proc) int {
			c.ConsoleWrite([]byte(c.Args()[0] + ";"))
			return 0
		}
		var pids []int
		for _, s := range []string{"p", "q", "r", "s"} {
			pid, _ := p.Fork(loud, s)
			pids = append(pids, pid)
		}
		for _, pid := range pids {
			p.Waitpid(pid)
		}
		return 0
	})
	_, first := boot(t, reg, "", "init")
	for i := 0; i < 3; i++ {
		if _, out := boot(t, reg, "", "init"); out != first {
			t.Fatalf("run %d output %q differs from %q", i, out, first)
		}
	}
	if first != "p;q;r;s;" {
		t.Errorf("output = %q", first)
	}
}

func TestChildReadsConsoleInput(t *testing.T) {
	reg := NewRegistry()
	reg.Register("init", func(p *Proc) int {
		pid, _ := p.Fork(func(c *Proc) int {
			line, ok := c.ReadLine()
			if !ok {
				return 1
			}
			c.ConsoleWrite([]byte("child got: " + line))
			return 0
		})
		status, _, err := p.Waitpid(pid)
		if err != nil {
			panic(err)
		}
		return status
	})
	status, out := boot(t, reg, "hello world\n", "init")
	if status != 0 {
		t.Fatalf("child saw EOF instead of input (status %d)", status)
	}
	if out != "child got: hello world" {
		t.Errorf("output = %q", out)
	}
}

func TestGrandchildInputForwardsThroughHierarchy(t *testing.T) {
	// §4.3: a parent with no input for a waiting child forwards the
	// request to its own parent, ultimately to the root.
	reg := NewRegistry()
	reg.Register("init", func(p *Proc) int {
		pid, _ := p.Fork(func(mid *Proc) int {
			gpid, _ := mid.Fork(func(g *Proc) int {
				line, ok := g.ReadLine()
				if !ok {
					return 1
				}
				g.ConsoleWrite([]byte("deep: " + line))
				return 0
			})
			status, _, err := mid.Waitpid(gpid)
			if err != nil {
				panic(err)
			}
			return status
		})
		status, _, err := p.Waitpid(pid)
		if err != nil {
			panic(err)
		}
		return status
	})
	status, out := boot(t, reg, "ping\n", "init")
	if status != 0 {
		t.Fatalf("grandchild got EOF (status %d)", status)
	}
	if out != "deep: ping" {
		t.Errorf("output = %q", out)
	}
}

func TestConsoleEOF(t *testing.T) {
	reg := NewRegistry()
	reg.Register("init", func(p *Proc) int {
		pid, _ := p.Fork(func(c *Proc) int {
			lines := 0
			for {
				_, ok := c.ReadLine()
				if !ok {
					return lines
				}
				lines++
			}
		})
		status, _, _ := p.Waitpid(pid)
		return status
	})
	status, _ := boot(t, reg, "a\nb\n", "init")
	if status != 2 {
		t.Errorf("child read %d lines, want 2 then EOF", status)
	}
}

func TestExecReplacesProgramKeepsFS(t *testing.T) {
	reg := NewRegistry()
	reg.Register("second", func(p *Proc) int {
		// The file written before exec must still be visible: exec
		// carries the file system over (§4.1).
		got, err := p.FS().ReadFile("pre-exec")
		if err != nil {
			return 1
		}
		p.ConsoleWrite([]byte("second sees: " + string(got)))
		if len(p.Args()) != 2 || p.Args()[1] != "argv1" {
			return 2
		}
		return 0
	})
	reg.Register("init", func(p *Proc) int {
		pid, _ := p.Fork(func(c *Proc) int {
			if err := c.FS().WriteFile("pre-exec", []byte("kept")); err != nil {
				panic(err)
			}
			if err := c.Exec("second", "argv1"); err != nil {
				panic(err)
			}
			return 99 // unreachable
		})
		status, _, err := p.Waitpid(pid)
		if err != nil {
			panic(err)
		}
		return status
	})
	status, out := boot(t, reg, "", "init")
	if status != 0 {
		t.Fatalf("exec'd program failed with %d", status)
	}
	if out != "second sees: kept" {
		t.Errorf("output = %q", out)
	}
}

func TestExecUnknownProgramFails(t *testing.T) {
	reg := NewRegistry()
	reg.Register("init", func(p *Proc) int {
		if err := p.Exec("no-such-thing"); !errors.Is(err, ErrNoProgram) {
			panic("exec of unknown program did not fail")
		}
		return 0
	})
	boot(t, reg, "", "init")
}

func TestForkExecByName(t *testing.T) {
	reg := NewRegistry()
	reg.Register("worker", func(p *Proc) int {
		return len(p.Args()) // name + 2 args = 3
	})
	reg.Register("init", func(p *Proc) int {
		pid, err := p.ForkExec("worker", "x", "y")
		if err != nil {
			panic(err)
		}
		status, _, _ := p.Waitpid(pid)
		return status
	})
	status, _ := boot(t, reg, "", "init")
	if status != 3 {
		t.Errorf("argv not delivered: status %d", status)
	}
}

func TestWaitReturnsEarliestForked(t *testing.T) {
	// §4.1/Figure 4: wait() returns the earliest-forked uncollected
	// child, regardless of actual completion order.
	reg := NewRegistry()
	reg.Register("init", func(p *Proc) int {
		longPid, _ := p.Fork(func(c *Proc) int {
			c.Env().Tick(1_000_000) // long task
			return 10
		})
		p.Fork(func(c *Proc) int { return 20 }) // short task
		pid, status, _, err := p.Wait()
		if err != nil {
			panic(err)
		}
		if pid != longPid || status != 10 {
			panic("wait did not pick the earliest-forked child")
		}
		_, status2, _, err := p.Wait()
		if err != nil || status2 != 20 {
			panic("second wait wrong")
		}
		if _, _, _, err := p.Wait(); !errors.Is(err, ErrNoChildren) {
			panic("wait with no children should fail")
		}
		return 0
	})
	boot(t, reg, "", "init")
}

func TestPIDsAreProcessLocal(t *testing.T) {
	reg := NewRegistry()
	reg.Register("init", func(p *Proc) int {
		pidA, _ := p.Fork(func(c *Proc) int {
			// This child's own first fork must also get PID 1: PIDs are
			// per-process namespaces (§2.4), so they may "collide".
			sub, _ := c.Fork(func(g *Proc) int { return 0 })
			if sub != 1 {
				return 1
			}
			c.Waitpid(sub)
			return 0
		})
		if pidA != 1 {
			panic("first fork should get PID 1")
		}
		status, _, _ := p.Waitpid(pidA)
		return status
	})
	status, _ := boot(t, reg, "", "init")
	if status != 0 {
		t.Error("child saw a non-local PID namespace")
	}
}

func TestCrashedChildReported(t *testing.T) {
	reg := NewRegistry()
	reg.Register("init", func(p *Proc) int {
		pid, _ := p.Fork(func(c *Proc) int {
			panic("child exploded")
		})
		_, _, err := p.Waitpid(pid)
		var ee *ExitError
		if !errors.As(err, &ee) {
			panic("crash not reported as ExitError")
		}
		if ee.Status != kernel.StatusExcept {
			panic("wrong crash status")
		}
		return 0
	})
	boot(t, reg, "", "init")
}

func TestWaitpidUnknownChild(t *testing.T) {
	reg := NewRegistry()
	reg.Register("init", func(p *Proc) int {
		if _, _, err := p.Waitpid(77); !errors.Is(err, ErrNoChild) {
			panic("waitpid on unknown pid did not fail")
		}
		return 0
	})
	boot(t, reg, "", "init")
}

func TestPIDSlotReuse(t *testing.T) {
	reg := NewRegistry()
	reg.Register("init", func(p *Proc) int {
		// Fork and reap many children sequentially; the child-space free
		// list must recycle slots rather than exhausting the namespace.
		for i := 0; i < 50; i++ {
			pid, err := p.Fork(func(c *Proc) int { return 7 })
			if err != nil {
				panic(err)
			}
			status, _, err := p.Waitpid(pid)
			if err != nil || status != 7 {
				panic("sequential fork/wait failed")
			}
		}
		return 0
	})
	boot(t, reg, "", "init")
}

func TestSyncFlushesOutputEarly(t *testing.T) {
	reg := NewRegistry()
	reg.Register("init", func(p *Proc) int {
		pid, _ := p.Fork(func(c *Proc) int {
			c.ConsoleWrite([]byte("early"))
			c.Sync()
			// After Sync returns, the output has propagated to the root.
			c.ConsoleWrite([]byte("|late"))
			return 0
		})
		p.Waitpid(pid)
		return 0
	})
	_, out := boot(t, reg, "", "init")
	if out != "early|late" {
		t.Errorf("output = %q", out)
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	reg := NewRegistry()
	reg.Register("zz", func(p *Proc) int { return 0 })
	reg.Register("aa", func(p *Proc) int { return 0 })
	names := reg.Names()
	if len(names) != 2 || names[0] != "aa" || names[1] != "zz" {
		t.Errorf("Names() = %v", names)
	}
}
