package uproc

import (
	"errors"
	"fmt"

	"repro/internal/fs"
)

// Batch pipes. §2.3 of the paper observes that queue abstractions like
// pipes are deterministic as long as only one process accesses each end.
// The strict space hierarchy of the prototype cannot stream between
// concurrently running siblings (their replicas only reconcile at
// synchronization points), so pipes here are batch: the producer runs to
// completion with its console output captured into a pipe file, then the
// consumer runs with that file as its standard input. This is exactly
// how the prototype's shell composes pipelines, and it preserves the
// single-reader/single-writer determinism argument trivially.

// pipeFile names the capture file for the n-th pipe created by this
// process.
func pipeFile(n int) string { return fmt.Sprintf("#pipe-%d", n) }

// stdin resolution: a process reads either the console input stream or a
// pipe file, selected at fork time.

// ForkExecStdin forks a registry program whose standard input is the
// named file instead of the console. Reads past the end of the file
// return EOF immediately: the producer has already finished.
func (p *Proc) ForkExecStdin(name, stdin string, args ...string) (int, error) {
	prog, ok := p.registry.Lookup(name)
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoProgram, name)
	}
	return p.forkWith(prog, stdin, 0, append([]string{name}, args...))
}

// Pipeline runs a sequence of commands (each a program name plus
// arguments) as a batch pipeline: stage i's console output becomes stage
// i+1's standard input. The last stage's output flows to the ordinary
// console. It returns the exit status of the final stage (like a shell
// without pipefail) and the first error encountered.
func (p *Proc) Pipeline(stages [][]string) (int, error) {
	if len(stages) == 0 {
		return 0, errors.New("uproc: empty pipeline")
	}
	stdin := "" // first stage reads the console
	status := 0
	for i, stage := range stages {
		if len(stage) == 0 {
			return 0, errors.New("uproc: empty pipeline stage")
		}
		prog, ok := p.registry.Lookup(stage[0])
		if !ok {
			return 0, fmt.Errorf("%w: %q", ErrNoProgram, stage[0])
		}
		last := i == len(stages)-1
		var capture string
		if !last {
			capture = pipeFile(p.nextPipe())
		}
		pid, err := p.forkStage(prog, stage, stdin, capture)
		if err != nil {
			return 0, err
		}
		st, _, err := p.Waitpid(pid)
		if err != nil {
			return 0, err
		}
		status = st
		stdin = capture
	}
	return status, nil
}

// nextPipe allocates a pipe number from the process's deterministic
// counter (application-chosen names, §2.4).
func (p *Proc) nextPipe() int {
	p.pipeSerial++
	return p.pipeSerial
}

// forkStage forks one pipeline stage: stdin names the input file ("" for
// console), capture names the file that should receive the stage's
// console output ("" for none).
func (p *Proc) forkStage(prog Program, argv []string, stdin, capture string) (int, error) {
	if capture == "" {
		return p.forkWith(prog, stdin, 0, argv)
	}
	// Wrap the stage so its console writes land in the capture file.
	wrapped := func(cp *Proc) int {
		cp.outFile = capture
		if err := cp.fsys.CreateAppendOnly(capture); err != nil && !errors.Is(err, fs.ErrExists) {
			panic(err)
		}
		return prog(cp)
	}
	return p.forkWith(wrapped, stdin, 0, argv)
}
