package uproc

import (
	"fmt"

	"repro/internal/kernel"
)

// Checkpoint/restore supervision, built on the kernel's Tree option
// (Table 2: "copy (grand)child subtree"). Determinism is what makes this
// kind of fault tolerance cheap (§1): a checkpoint is an ordinary
// copy-on-write subtree clone, and a restored process re-executes
// identically from the recorded state.
//
// Because native Go stacks cannot be snapshotted, a restore restarts the
// process image from its entry point over the checkpointed memory —
// including the file system replica. Programs that record their progress
// in files (the natural style on this runtime, where files are the
// shared state) therefore resume from the last checkpoint rather than
// from scratch.

// checkpoint clones the child's space subtree into a shadow child slot.
// The clone carries the child's memory image and registers; a parked
// execution clones as restartable-from-entry.
func (p *Proc) checkpoint(pid int, cs *childState) error {
	if p.shadows == nil {
		p.shadows = make(map[int]uint64)
	}
	shadow, ok := p.shadows[pid]
	if !ok {
		shadow = p.allocRef()
		p.shadows[pid] = shadow
	}
	return p.env.Put(shadow, kernel.PutOpts{Tree: true, TreeSrc: cs.ref})
}

// restore re-creates the child from its latest checkpoint and restarts
// it. The cloned registers still hold the original entry wrapper, which
// re-attaches the restored file system replica on startup.
func (p *Proc) restore(pid int, cs *childState) error {
	shadow, ok := p.shadows[pid]
	if !ok {
		return fmt.Errorf("uproc: no checkpoint for pid %d", pid)
	}
	if err := p.env.Put(cs.ref, kernel.PutOpts{Tree: true, TreeSrc: shadow}); err != nil {
		return err
	}
	// Relaunch from the cloned image's own registers: reloading them
	// explicitly makes the restart valid even if the checkpoint itself
	// captured a crashed state (e.g. a child that dies before its first
	// synchronization point).
	info, err := p.env.Get(cs.ref, kernel.GetOpts{Regs: true})
	if err != nil {
		return err
	}
	regs := info.Regs
	return p.env.Put(cs.ref, kernel.PutOpts{Regs: &regs, Start: true})
}

// SuperviseResult reports a supervised child's lifetime.
type SuperviseResult struct {
	Status   int // final exit status
	Restarts int // crash recoveries performed
	Syncs    int // checkpoints taken at synchronization points
}

// Supervise runs the child like Waitpid, but takes a subtree checkpoint
// at every synchronization request the child makes (Sync, console
// reads), and transparently restores-and-restarts the child if it
// crashes — up to maxRestarts times. Deterministic re-execution from the
// restored state makes the recovery exact.
func (p *Proc) Supervise(pid int, maxRestarts int) (SuperviseResult, error) {
	var res SuperviseResult
	cs, ok := p.children[pid]
	if !ok {
		return res, fmt.Errorf("%w: pid %d", ErrNoChild, pid)
	}
	// Initial checkpoint, so even an immediate crash is recoverable.
	// (Put with Tree rendezvouses with the child's first stop.)
	if err := p.checkpoint(pid, cs); err != nil {
		return res, err
	}
	for {
		info, err := p.env.Get(cs.ref, kernel.GetOpts{Regs: true})
		if err != nil {
			return res, err
		}
		switch info.Status {
		case kernel.StatusHalted:
			if _, err := p.reconcileChild(cs.ref); err != nil {
				return res, err
			}
			p.releaseChild(pid, cs)
			delete(p.shadows, pid)
			res.Status = int(info.Regs.Ret)
			return res, nil
		case kernel.StatusRet:
			if err := p.syncChild(cs.ref, int(info.Regs.Ret)); err != nil {
				return res, err
			}
			if err := p.checkpoint(pid, cs); err != nil {
				return res, err
			}
			res.Syncs++
			if err := p.env.Put(cs.ref, kernel.PutOpts{Start: true}); err != nil {
				return res, err
			}
		case kernel.StatusInsnLimit:
			if err := p.env.Put(cs.ref, kernel.PutOpts{Start: true}); err != nil {
				return res, err
			}
		case kernel.StatusFault, kernel.StatusExcept:
			if res.Restarts >= maxRestarts {
				p.releaseChild(pid, cs)
				return res, &ExitError{PID: pid, Status: info.Status, Cause: info.Err}
			}
			if err := p.restore(pid, cs); err != nil {
				return res, err
			}
			res.Restarts++
		default:
			return res, fmt.Errorf("uproc: supervised child %d in state %v", pid, info.Status)
		}
	}
}
