// Package uproc emulates Unix processes on Determinator's kernel API, as
// the paper's user-level runtime does (§4.1–4.3): fork/exec/wait over
// spaces, process-local PID namespaces, a replicated shared file system,
// and console I/O expressed as append-only file synchronization flowing
// through the space hierarchy to the root, which alone talks to devices.
//
// Deviations from real Unix are the ones the paper makes deliberately:
// PIDs are meaningless outside the owning process; wait() returns the
// earliest-forked uncollected child, not the first to finish (determinism
// forbids learning completion order); and all I/O is buffered in each
// process's file system replica until a synchronization point.
//
// One Go-specific substitution: fork takes the child's function
// explicitly (Unix's "fork returns twice" cannot be expressed over Go
// stacks), and exec loads programs from a registry of Go functions
// standing in for executable images. The file system image is inherited
// through the kernel's copy-on-write space copy exactly as in the paper.
package uproc

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/vm"
)

// Address-space layout for processes.
const (
	// FSBase/FSSize locate the file system replica in every process.
	FSBase vm.Addr = fs.DefaultBase
	FSSize uint64  = fs.DefaultSize
	// scratchBase is where a parent temporarily copies a child's file
	// system image during reconciliation.
	scratchBase vm.Addr = 0x9000_0000

	// Console special files (§4.3). They hold real data in each replica:
	// the input file accumulates everything the process ever received,
	// the output file everything it wrote.
	ConsoleIn  = "#console-in"
	ConsoleOut = "#console-out"
	// consoleEOF exists once the root has exhausted the machine's input.
	consoleEOF = "#console-eof"
)

// Service request codes a child passes in its Ret register when it stops
// to ask its parent for service.
const (
	reqNone  = 0
	reqInput = 1 // need more console input
	reqSync  = 2 // fsync: push output toward the root now
)

// Program is the body of a process: the stand-in for an executable image.
// It returns the process exit status.
type Program func(p *Proc) int

// Registry maps program names to images, playing the role of the file
// system's executable files for exec.
type Registry struct {
	progs map[string]Program
}

// NewRegistry returns an empty program registry.
func NewRegistry() *Registry { return &Registry{progs: make(map[string]Program)} }

// Register adds a program under name, replacing any previous image.
func (r *Registry) Register(name string, prog Program) {
	r.progs[name] = prog
}

// Lookup finds a program image.
func (r *Registry) Lookup(name string) (Program, bool) {
	p, ok := r.progs[name]
	return p, ok
}

// Names lists registered programs in sorted (deterministic) order.
func (r *Registry) Names() []string {
	var out []string
	for n := range r.progs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Proc is the user-level runtime state of one process. It lives in the
// process's own space; the kernel knows nothing of processes.
type Proc struct {
	env      *kernel.Env
	fsys     *fs.FS
	registry *Registry
	args     []string
	root     bool

	// Process-local PID namespace (§2.4/§4.1): PIDs index this process's
	// children only and may numerically collide with other processes'.
	nextPID   int
	nextRef   uint64
	freeRefs  []uint64
	children  map[int]*childState
	forkOrder []int // uncollected children, earliest first

	// Console positions and redirections.
	inOff      int // bytes of standard input already consumed
	outOff     int // root only: bytes of ConsoleOut already pumped to device
	inEOF      bool
	stdinFile  string // "" = console input stream; else a pipe/regular file
	outFile    string // "" = console output stream; else a capture file
	pipeSerial int    // deterministic pipe-name counter

	// Checkpoint shadows, by pid (see checkpoint.go).
	shadows map[int]uint64
}

type childState struct {
	ref   uint64
	args  []string
	prog  Program // image, kept for restore-restart
	stdin string
	quota int64
}

// Errors.
var (
	ErrNoChild    = errors.New("uproc: no such child")
	ErrNoChildren = errors.New("uproc: no children to wait for")
	ErrNoProgram  = errors.New("uproc: no such program")
)

// ExitError reports a child that crashed rather than exiting.
type ExitError struct {
	PID    int
	Status kernel.Status
	Cause  error
}

func (e *ExitError) Error() string {
	return fmt.Sprintf("uproc: child %d crashed (%v): %v", e.PID, e.Status, e.Cause)
}

// execSignal unwinds a program that called Exec.
type execSignal struct {
	prog Program
	name string
	args []string
}

// Env exposes the underlying kernel environment.
func (p *Proc) Env() *kernel.Env { return p.env }

// FS exposes the process's file system replica.
func (p *Proc) FS() *fs.FS { return p.fsys }

// Args returns the argument vector the process was started with.
func (p *Proc) Args() []string { return p.args }

// IsRoot reports whether this is the root (init) process.
func (p *Proc) IsRoot() bool { return p.root }

// allocRef reserves a child space number, reusing freed slots — the
// "free list of child spaces" of §4.1. Slot 0 is reserved (the paper
// keeps it for exec's program-loading child).
func (p *Proc) allocRef() uint64 {
	if n := len(p.freeRefs); n > 0 {
		ref := p.freeRefs[n-1]
		p.freeRefs = p.freeRefs[:n-1]
		return ref
	}
	p.nextRef++
	return p.nextRef
}

// Fork creates a child process running prog with the given argv. The
// child inherits a copy-on-write copy of the parent's entire memory —
// including the file system image — and a PID local to this process.
func (p *Proc) Fork(prog Program, args ...string) (int, error) {
	return p.forkWith(prog, "", 0, args)
}

// ForkQuota is Fork with a deterministic CPU quota: the child (by
// itself) may execute at most quota instructions; exceeding it surfaces
// from Waitpid as a *QuotaError. This is the paper's §3.2 use of
// instruction limits for "deterministic time quotas on untrusted
// processes" — the budget is logical, so enforcement is repeatable.
func (p *Proc) ForkQuota(prog Program, quota int64, args ...string) (int, error) {
	return p.forkWith(prog, "", quota, args)
}

// forkWith is the common fork path: stdin selects the child's standard
// input file ("" = console stream), quota arms an instruction limit.
func (p *Proc) forkWith(prog Program, stdin string, quota int64, args []string) (int, error) {
	ref := p.allocRef()
	inOff := 0
	if stdin == "" {
		inOff = p.inOff // inherit the console read position
	}
	reg := p.registry
	entry := func(env *kernel.Env) {
		child := &Proc{
			env:       env,
			registry:  reg,
			args:      args,
			nextPID:   0,
			children:  make(map[int]*childState),
			inOff:     inOff,
			stdinFile: stdin,
		}
		var err error
		child.fsys, err = fs.Attach(env, FSBase, FSSize)
		if err != nil {
			panic(err)
		}
		child.fsys.StampFork()
		env.SetRet(uint64(child.runToExit(prog)))
	}
	err := p.env.Put(ref, kernel.PutOpts{
		Regs:    &kernel.Regs{Entry: entry},
		CopyAll: true,
		Start:   true,
		Limit:   quota,
	})
	if err != nil {
		return 0, err
	}
	p.nextPID++
	pid := p.nextPID
	p.children[pid] = &childState{ref: ref, args: args, prog: prog, stdin: stdin, quota: quota}
	p.forkOrder = append(p.forkOrder, pid)
	return pid, nil
}

// QuotaError reports a child that exhausted its instruction quota.
type QuotaError struct {
	PID   int
	Quota int64
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("uproc: child %d exceeded its %d-instruction quota", e.PID, e.Quota)
}

// ForkExec looks a program up in the registry and forks it: the
// fork-then-exec idiom in one step.
func (p *Proc) ForkExec(name string, args ...string) (int, error) {
	prog, ok := p.registry.Lookup(name)
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoProgram, name)
	}
	return p.Fork(prog, append([]string{name}, args...)...)
}

// Exec replaces the current program with the named one. On success it
// never returns: the current program unwinds and the new image runs in
// the same space, inheriting the file system and PID namespace (§4.1).
func (p *Proc) Exec(name string, args ...string) error {
	prog, ok := p.registry.Lookup(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoProgram, name)
	}
	panic(&execSignal{prog: prog, name: name, args: append([]string{name}, args...)})
}

// runToExit runs prog (following exec chains) to its exit status.
func (p *Proc) runToExit(prog Program) int {
	for {
		status, ex := p.runOnce(prog)
		if ex == nil {
			return status
		}
		p.args = ex.args
		prog = ex.prog
	}
}

func (p *Proc) runOnce(prog Program) (status int, ex *execSignal) {
	defer func() {
		if r := recover(); r != nil {
			if sig, ok := r.(*execSignal); ok {
				ex = sig
				return
			}
			panic(r)
		}
	}()
	return prog(p), nil
}

// Waitpid waits for the specific child to exit, servicing any I/O
// requests it makes along the way, reconciles the child's file system
// into this process's replica, and returns the exit status plus any file
// conflicts the reconciliation detected.
func (p *Proc) Waitpid(pid int) (int, []fs.Conflict, error) {
	cs, ok := p.children[pid]
	if !ok {
		return 0, nil, fmt.Errorf("%w: pid %d", ErrNoChild, pid)
	}
	for {
		info, err := p.env.Get(cs.ref, kernel.GetOpts{Regs: true})
		if err != nil {
			return 0, nil, err
		}
		switch info.Status {
		case kernel.StatusHalted:
			conflicts, err := p.reconcileChild(cs.ref)
			p.releaseChild(pid, cs)
			return int(info.Regs.Ret), conflicts, err
		case kernel.StatusRet:
			if err := p.serviceChild(cs.ref, int(info.Regs.Ret)); err != nil {
				return 0, nil, err
			}
		case kernel.StatusInsnLimit:
			if cs.quota > 0 {
				// Quota exhausted: reclaim the child without collecting
				// its (partial) file system state.
				p.releaseChild(pid, cs)
				return 0, nil, &QuotaError{PID: pid, Quota: cs.quota}
			}
			if err := p.env.Put(cs.ref, kernel.PutOpts{Start: true}); err != nil {
				return 0, nil, err
			}
		default:
			p.releaseChild(pid, cs)
			return 0, nil, &ExitError{PID: pid, Status: info.Status, Cause: info.Err}
		}
	}
}

// Wait waits for a child in the deterministic order of §4.1: the
// earliest-forked child whose status has not yet been collected —
// regardless of which child actually finishes first, since learning that
// would require nondeterministic timing information.
func (p *Proc) Wait() (pid, status int, conflicts []fs.Conflict, err error) {
	if len(p.forkOrder) == 0 {
		return 0, 0, nil, ErrNoChildren
	}
	pid = p.forkOrder[0]
	status, conflicts, err = p.Waitpid(pid)
	return pid, status, conflicts, err
}

func (p *Proc) releaseChild(pid int, cs *childState) {
	delete(p.children, pid)
	p.freeRefs = append(p.freeRefs, cs.ref)
	for i, q := range p.forkOrder {
		if q == pid {
			p.forkOrder = append(p.forkOrder[:i], p.forkOrder[i+1:]...)
			break
		}
	}
}

// reconcileChild pulls the child's file system image into the scratch
// area and folds its changes into this process's replica (§4.2).
func (p *Proc) reconcileChild(ref uint64) ([]fs.Conflict, error) {
	p.env.SetPerm(scratchBase, FSSize, vm.PermRW)
	if _, err := p.env.Get(ref, kernel.GetOpts{
		Copy: &kernel.CopyRange{Src: FSBase, Dst: scratchBase, Size: FSSize},
	}); err != nil {
		return nil, err
	}
	img, err := fs.Attach(p.env, scratchBase, FSSize)
	if err != nil {
		return nil, fmt.Errorf("uproc: child image corrupt: %w", err)
	}
	return p.fsys.ReconcileFrom(img)
}

// serviceChild handles a child that stopped with a service request:
// a two-way file system synchronization (child changes up, parent state —
// including any new console input — down), then resume. If the child
// wants input the parent does not have, the request is forwarded up the
// hierarchy (§4.3), ultimately to the root, which pumps the device.
func (p *Proc) serviceChild(ref uint64, req int) error {
	if err := p.syncChild(ref, req); err != nil {
		return err
	}
	return p.env.Put(ref, kernel.PutOpts{Start: true})
}

// syncChild performs the two-way synchronization without resuming,
// so a supervisor can act on the synced state (e.g. checkpoint) first.
func (p *Proc) syncChild(ref uint64, req int) error {
	if _, err := p.reconcileChild(ref); err != nil {
		return err
	}
	if req == reqInput || req == reqSync {
		if p.root {
			p.pumpConsole()
		} else {
			// Forward toward the root: sync ourselves with our parent.
			p.syncUp(req)
		}
	}
	// Push the merged image down to the child; it re-stamps its fork
	// versions when it wakes.
	return p.env.Put(ref, kernel.PutOpts{
		Copy: &kernel.CopyRange{Src: FSBase, Dst: FSBase, Size: FSSize},
	})
}

// syncUp stops this process with a service request so its parent
// performs a two-way synchronization, then re-stamps the replica.
func (p *Proc) syncUp(req int) {
	p.env.SetRet(uint64(req))
	p.env.Ret()
	p.fsys.StampFork()
}
