package uproc

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/trace"
)

func TestExecChain(t *testing.T) {
	// exec → exec → exit: each stage leaves a file, the final stage sees
	// all of them (FS carried across exec, §4.1).
	reg := NewRegistry()
	reg.Register("stage3", func(p *Proc) int {
		for _, f := range []string{"s1", "s2"} {
			if _, err := p.FS().ReadFile(f); err != nil {
				return 1
			}
		}
		return 30
	})
	reg.Register("stage2", func(p *Proc) int {
		p.FS().WriteFile("s2", []byte("two"))
		p.Exec("stage3")
		return 99
	})
	reg.Register("stage1", func(p *Proc) int {
		p.FS().WriteFile("s1", []byte("one"))
		p.Exec("stage2")
		return 99
	})
	reg.Register("init", func(p *Proc) int {
		pid, _ := p.ForkExec("stage1")
		status, _, err := p.Waitpid(pid)
		if err != nil {
			panic(err)
		}
		return status
	})
	status, _ := boot(t, reg, "", "init")
	if status != 30 {
		t.Errorf("exec chain exit status = %d, want 30", status)
	}
}

// TestBootRecordReplay runs a whole interactive process tree with
// recorded console input, then replays the trace: byte-identical output,
// end to end through fork, wait, FS reconciliation and I/O forwarding.
func TestBootRecordReplay(t *testing.T) {
	reg := NewRegistry()
	reg.Register("init", func(p *Proc) int {
		pid, _ := p.Fork(func(c *Proc) int {
			for {
				line, ok := c.ReadLine()
				if !ok {
					return 0
				}
				c.ConsoleWrite([]byte("<" + line + ">"))
			}
		})
		p.Waitpid(pid)
		return 0
	})

	// Recorded run.
	kcfg := kernel.Config{}
	log := trace.Record(&kcfg)
	var out1 bytes.Buffer
	kcfg.Console = kernel.NewConsole(log.RecordInput(strings.NewReader("alpha\nbeta\n")), &out1)
	m := kernel.New(kcfg)
	runInit(t, m, reg)

	// Replayed run from the serialized trace.
	blob, err := log.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := trace.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	var kcfg2 kernel.Config
	trace.Replay(&kcfg2, restored)
	var out2 bytes.Buffer
	kcfg2.Console = kernel.NewConsole(restored.ReplayInput(), &out2)
	runInit(t, kernel.New(kcfg2), reg)

	if out1.String() != out2.String() {
		t.Fatalf("replayed boot diverged: %q vs %q", out1.String(), out2.String())
	}
	if out1.String() != "<alpha><beta>" {
		t.Errorf("output = %q", out1.String())
	}
}

// runInit boots the init program on a pre-built machine (mirrors Boot,
// which owns machine construction and so cannot be used with Record).
func runInit(t *testing.T, m *kernel.Machine, reg *Registry) {
	t.Helper()
	prog, _ := reg.Lookup("init")
	res := m.Run(func(env *kernel.Env) {
		fsys := formatRoot(env)
		p := &Proc{
			env:      env,
			fsys:     fsys,
			registry: reg,
			args:     []string{"init"},
			root:     true,
			children: make(map[int]*childState),
		}
		status := p.runToExit(prog)
		p.pumpConsole()
		env.SetRet(uint64(status))
	}, 0)
	if res.Status != kernel.StatusHalted {
		t.Fatalf("init stopped with %v: %v", res.Status, res.Err)
	}
}
