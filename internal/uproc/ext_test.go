package uproc

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// Tests for the runtime extensions: batch pipes, CPU quotas, and
// checkpoint/restore supervision.

func TestPipelineTwoStages(t *testing.T) {
	reg := NewRegistry()
	reg.Register("produce", func(p *Proc) int {
		for i := 0; i < 5; i++ {
			p.ConsoleWrite([]byte(fmt.Sprintf("item %d\n", i)))
		}
		return 0
	})
	reg.Register("count", func(p *Proc) int {
		lines := 0
		for {
			_, ok := p.ReadLine()
			if !ok {
				break
			}
			lines++
		}
		p.ConsoleWrite([]byte(fmt.Sprintf("%d lines\n", lines)))
		return lines
	})
	reg.Register("init", func(p *Proc) int {
		status, err := p.Pipeline([][]string{{"produce"}, {"count"}})
		if err != nil {
			panic(err)
		}
		return status
	})
	status, out := boot(t, reg, "", "init")
	if status != 5 {
		t.Errorf("pipeline status = %d, want 5 (lines counted)", status)
	}
	if out != "5 lines\n" {
		t.Errorf("output = %q; producer output must be captured, not printed", out)
	}
}

func TestPipelineThreeStages(t *testing.T) {
	reg := NewRegistry()
	reg.Register("gen", func(p *Proc) int {
		p.ConsoleWrite([]byte("a\nbb\nccc\n"))
		return 0
	})
	reg.Register("upper", func(p *Proc) int {
		for {
			line, ok := p.ReadLine()
			if !ok {
				break
			}
			p.ConsoleWrite([]byte(strings.ToUpper(line) + "\n"))
		}
		return 0
	})
	reg.Register("join", func(p *Proc) int {
		var parts []string
		for {
			line, ok := p.ReadLine()
			if !ok {
				break
			}
			parts = append(parts, line)
		}
		p.ConsoleWrite([]byte(strings.Join(parts, "|") + "\n"))
		return 0
	})
	reg.Register("init", func(p *Proc) int {
		if _, err := p.Pipeline([][]string{{"gen"}, {"upper"}, {"join"}}); err != nil {
			panic(err)
		}
		return 0
	})
	_, out := boot(t, reg, "", "init")
	if out != "A|BB|CCC\n" {
		t.Errorf("three-stage pipeline output = %q", out)
	}
}

func TestPipelineUnknownProgram(t *testing.T) {
	reg := NewRegistry()
	reg.Register("init", func(p *Proc) int {
		if _, err := p.Pipeline([][]string{{"nope"}}); !errors.Is(err, ErrNoProgram) {
			panic("unknown pipeline stage accepted")
		}
		if _, err := p.Pipeline(nil); err == nil {
			panic("empty pipeline accepted")
		}
		return 0
	})
	boot(t, reg, "", "init")
}

func TestForkExecStdinReadsFile(t *testing.T) {
	reg := NewRegistry()
	reg.Register("reader", func(p *Proc) int {
		line, ok := p.ReadLine()
		if !ok {
			return 1
		}
		p.ConsoleWrite([]byte("read: " + line))
		return 0
	})
	reg.Register("init", func(p *Proc) int {
		if err := p.FS().WriteFile("input.txt", []byte("from a file\n")); err != nil {
			panic(err)
		}
		pid, err := p.ForkExecStdin("reader", "input.txt")
		if err != nil {
			panic(err)
		}
		status, _, err := p.Waitpid(pid)
		if err != nil {
			panic(err)
		}
		return status
	})
	status, out := boot(t, reg, "THIS MUST NOT BE READ\n", "init")
	if status != 0 || out != "read: from a file" {
		t.Errorf("status=%d out=%q", status, out)
	}
}

func TestQuotaExceeded(t *testing.T) {
	reg := NewRegistry()
	reg.Register("init", func(p *Proc) int {
		pid, err := p.ForkQuota(func(c *Proc) int {
			c.Env().Tick(1_000_000) // way beyond the quota
			return 0
		}, 10_000)
		if err != nil {
			panic(err)
		}
		_, _, err = p.Waitpid(pid)
		var qe *QuotaError
		if !errors.As(err, &qe) {
			panic("quota exhaustion not reported")
		}
		if qe.PID != pid || qe.Quota != 10_000 {
			panic("quota error details wrong")
		}
		return 0
	})
	boot(t, reg, "", "init")
}

func TestQuotaSufficientCompletes(t *testing.T) {
	reg := NewRegistry()
	reg.Register("init", func(p *Proc) int {
		pid, err := p.ForkQuota(func(c *Proc) int {
			c.Env().Tick(5_000)
			return 7
		}, 1_000_000)
		if err != nil {
			panic(err)
		}
		status, _, err := p.Waitpid(pid)
		if err != nil {
			panic(err)
		}
		return status
	})
	status, _ := boot(t, reg, "", "init")
	if status != 7 {
		t.Errorf("status = %d, want 7", status)
	}
}

// TestSuperviseRecoversFromCrash is the fault-tolerance demo: a worker
// records progress in a file, syncs (checkpoint), then crashes; the
// supervisor restores it and the rerun resumes from the recorded
// progress instead of starting over.
func TestSuperviseRecoversFromCrash(t *testing.T) {
	reg := NewRegistry()
	reg.Register("init", func(p *Proc) int {
		worker := func(c *Proc) int {
			// Resume from recorded progress, if any.
			done := 0
			if data, err := c.FS().ReadFile("progress"); err == nil && len(data) > 0 {
				fmt.Sscan(string(data), &done)
			}
			for step := done; step < 6; step++ {
				c.Env().Tick(1000) // a unit of work
				if err := c.FS().WriteFile("progress", []byte(fmt.Sprint(step+1))); err != nil {
					panic(err)
				}
				c.Sync() // push progress to the parent => checkpoint
				if step == 3 {
					panic("transient fault") // crash after step 4 is recorded
				}
			}
			return 42
		}
		pid, err := p.Fork(worker)
		if err != nil {
			panic(err)
		}
		res, err := p.Supervise(pid, 3)
		if err != nil {
			panic(err)
		}
		if res.Restarts != 1 {
			panic(fmt.Sprintf("restarts = %d, want 1", res.Restarts))
		}
		if res.Status != 42 {
			panic(fmt.Sprintf("status = %d, want 42", res.Status))
		}
		// The worker must have resumed from step 4, not repeated a
		// crash loop: with progress preserved, step==3 never re-runs.
		got, err := p.FS().ReadFile("progress")
		if err != nil || string(got) != "6" {
			panic("progress lost across restore: " + string(got))
		}
		return 0
	})
	boot(t, reg, "", "init")
}

func TestSuperviseGivesUpAfterMaxRestarts(t *testing.T) {
	reg := NewRegistry()
	reg.Register("init", func(p *Proc) int {
		pid, err := p.Fork(func(c *Proc) int {
			panic("always crashes")
		})
		if err != nil {
			panic(err)
		}
		res, err := p.Supervise(pid, 2)
		var ee *ExitError
		if !errors.As(err, &ee) {
			panic("persistent crash not reported")
		}
		if res.Restarts != 2 {
			panic(fmt.Sprintf("restarts = %d, want 2", res.Restarts))
		}
		return 0
	})
	boot(t, reg, "", "init")
}

func TestSuperviseCleanExit(t *testing.T) {
	reg := NewRegistry()
	reg.Register("init", func(p *Proc) int {
		pid, _ := p.Fork(func(c *Proc) int {
			c.FS().WriteFile("out", []byte("ok"))
			return 9
		})
		res, err := p.Supervise(pid, 1)
		if err != nil || res.Status != 9 || res.Restarts != 0 {
			panic("clean supervised exit mishandled")
		}
		if got, err := p.FS().ReadFile("out"); err != nil || string(got) != "ok" {
			panic("supervised child's file output lost")
		}
		return 0
	})
	boot(t, reg, "", "init")
}
