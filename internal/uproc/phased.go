package uproc

import (
	"fmt"

	"repro/internal/fs"
	"repro/internal/kernel"
)

// This file is the checkpointable entry into the process runtime: instead
// of Boot's run-to-completion closure, a phased program creates the init
// process with NewInit, runs barrier-delimited steps against it, and at
// any barrier exports the Go-side bookkeeping with ExportState so a
// session image can carry it. AttachInit is the resume-side pair: it
// rebuilds the init Proc over restored memory (the file system replica,
// console files and all child spaces live in the space tree and travel
// with the kernel image; only these counters live on the Go side).
//
// Everything in this path reports problems as typed errors — a
// checkpoint taken at the wrong moment is a caller mistake to handle,
// not a crash.

// InitState is the Go-side state of the init process that must cross a
// checkpoint image: counters and cursors that are not stored in the
// space tree. It is JSON-serializable and canonical (no maps).
type InitState struct {
	// NextPID / NextRef / FreeRefs are the PID and child-ref allocators.
	NextPID  int
	NextRef  uint64
	FreeRefs []uint64 `json:",omitempty"`
	// InOff / OutOff / InEOF are the console cursors: input consumed,
	// output pumped to the device, input exhausted.
	InOff  int
	OutOff int
	InEOF  bool
	// PipeSerial is the deterministic pipe-name counter.
	PipeSerial int
}

// StateError reports init-process state that cannot cross a checkpoint
// image, or an image section that does not describe one.
type StateError struct{ Msg string }

func (e *StateError) Error() string { return "uproc: checkpoint state: " + e.Msg }

// NewInit creates the init process for a fresh machine: it formats the
// root file system image and creates the console special files, exactly
// as Boot does, but reports failures as typed errors and leaves running
// the program to the caller's phases. reg may be nil for a tree that
// only forks Go functions.
func NewInit(env *kernel.Env, reg *Registry, args []string) (*Proc, error) {
	if env == nil {
		return nil, &StateError{Msg: "nil environment"}
	}
	if reg == nil {
		reg = NewRegistry()
	}
	fsys := fs.Format(env, FSBase, FSSize)
	// The phased root runs without the handle's lookup cache: a resumed
	// run reattaches with a cold cache, and the lazy rebuild would cost
	// reads the uninterrupted run's warm cache never pays — breaking the
	// bit-identity contract. With the index off, both runs scan
	// identically. (Forked children build their handles identically in
	// both runs and keep the cache.)
	fsys.SetIndex(false)
	for _, name := range []string{ConsoleIn, ConsoleOut} {
		if err := fsys.CreateAppendOnly(name); err != nil {
			return nil, &StateError{Msg: fmt.Sprintf("create %s: %v", name, err)}
		}
	}
	return &Proc{
		env:      env,
		fsys:     fsys,
		registry: reg,
		args:     args,
		root:     true,
		children: make(map[int]*childState),
	}, nil
}

// AttachInit rebuilds the init process over restored memory: the file
// system replica and console files already exist in the space (they came
// back with the kernel image), so it attaches rather than formats, and
// restores the exported counters.
func AttachInit(env *kernel.Env, reg *Registry, args []string, st InitState) (*Proc, error) {
	if env == nil {
		return nil, &StateError{Msg: "nil environment"}
	}
	if reg == nil {
		reg = NewRegistry()
	}
	// AttachRestored performs no validating reads: restore must cost the
	// machine nothing (the resumed run's counters must equal the
	// uninterrupted run's), and the image's integrity was established by
	// the checkpoint CRC. The index stays off, matching NewInit.
	fsys := fs.AttachRestored(env, FSBase)
	fsys.SetIndex(false)
	return &Proc{
		env:        env,
		fsys:       fsys,
		registry:   reg,
		args:       args,
		root:       true,
		nextPID:    st.NextPID,
		nextRef:    st.NextRef,
		freeRefs:   append([]uint64(nil), st.FreeRefs...),
		children:   make(map[int]*childState),
		inOff:      st.InOff,
		outOff:     st.OutOff,
		inEOF:      st.InEOF,
		pipeSerial: st.PipeSerial,
	}, nil
}

// ExportState captures the init process's Go-side bookkeeping for a
// checkpoint image. It must be called at a quiescent barrier: children
// hold Go-side state (their program closures and service loops) that
// cannot cross an image, so exporting with uncollected children, live
// checkpoint shadows, or redirected standard streams fails with a
// *StateError instead of silently producing an image that cannot resume.
func (p *Proc) ExportState() (InitState, error) {
	if !p.root {
		return InitState{}, &StateError{Msg: "only the init process checkpoints"}
	}
	if n := len(p.children); n > 0 {
		return InitState{}, &StateError{Msg: fmt.Sprintf(
			"%d uncollected children; wait for them before the checkpoint barrier", n)}
	}
	if n := len(p.shadows); n > 0 {
		return InitState{}, &StateError{Msg: fmt.Sprintf("%d live checkpoint shadows", n)}
	}
	if p.stdinFile != "" || p.outFile != "" {
		return InitState{}, &StateError{Msg: "standard streams are redirected"}
	}
	return InitState{
		NextPID:    p.nextPID,
		NextRef:    p.nextRef,
		FreeRefs:   append([]uint64(nil), p.freeRefs...),
		InOff:      p.inOff,
		OutOff:     p.outOff,
		InEOF:      p.inEOF,
		PipeSerial: p.pipeSerial,
	}, nil
}
