package uproc

import (
	"errors"

	"repro/internal/fs"
)

// ConsoleWrite appends to the process's console output file. The bytes
// reach the real device only when file system synchronization propagates
// them to the root (§4.3) — at wait, fsync or exit — which is why a
// process's output appears as an uninterleaved unit, in the same order,
// on every run.
func (p *Proc) ConsoleWrite(b []byte) {
	out := ConsoleOut
	if p.outFile != "" {
		out = p.outFile // pipeline stage: output captured into the pipe file
	}
	if err := p.fsys.Append(out, b); err != nil {
		panic(err)
	}
	if p.root {
		p.pumpConsole()
	}
}

// ConsoleRead reads console input into buf, blocking (by synchronizing
// with the parent) until data or end of input arrives. It returns 0 at
// EOF, mirroring Unix read semantics.
func (p *Proc) ConsoleRead(buf []byte) int {
	for {
		n := p.readBuffered(buf)
		if n > 0 {
			return n
		}
		if p.stdinFile != "" {
			// Pipe/file input: the producer finished before this process
			// forked, so end of data is end of file.
			return 0
		}
		if p.inEOF {
			return 0
		}
		if _, err := p.fsys.Stat(consoleEOF); err == nil {
			p.inEOF = true
			return 0
		}
		if p.root {
			p.pumpConsole()
			if p.rootInputDry() {
				return 0
			}
			continue
		}
		// No data locally: stop and ask the parent for more (§4.3).
		p.syncUp(reqInput)
	}
}

// readBuffered returns data already accumulated in the process's
// standard input file past its read position.
func (p *Proc) readBuffered(buf []byte) int {
	in := ConsoleIn
	if p.stdinFile != "" {
		in = p.stdinFile
	}
	n, err := p.fsys.ReadAt(in, p.inOff, buf)
	if err != nil {
		if errors.Is(err, fs.ErrNotFound) {
			return 0
		}
		panic(err)
	}
	p.inOff += n
	return n
}

// ReadLine reads one line of console input (without the newline). ok is
// false at EOF with no data.
func (p *Proc) ReadLine() (string, bool) {
	var line []byte
	var b [1]byte
	for {
		n := p.ConsoleRead(b[:])
		if n == 0 {
			return string(line), len(line) > 0
		}
		if b[0] == '\n' {
			return string(line), true
		}
		line = append(line, b[0])
	}
}

// Sync is fsync: it pushes this process's file system state (including
// buffered console output) toward the root immediately and pulls down
// any new state, instead of waiting for the next natural sync point.
func (p *Proc) Sync() {
	if p.root {
		p.pumpConsole()
		return
	}
	p.syncUp(reqSync)
}

// pumpConsole, in the root only, moves bytes between the machine's
// console device and the root's console files: new output drains to the
// device, new input accumulates in the input file. When the device input
// runs dry the root records EOF so descendants stop waiting.
func (p *Proc) pumpConsole() {
	// Drain output.
	info, err := p.fsys.Stat(ConsoleOut)
	if err == nil && info.Size > p.outOff {
		buf := make([]byte, info.Size-p.outOff)
		if _, err := p.fsys.ReadAt(ConsoleOut, p.outOff, buf); err == nil {
			p.env.ConsoleWrite(buf)
			p.outOff += len(buf)
		}
	}
	// Accumulate input.
	var got bool
	var tmp [512]byte
	for {
		n := p.env.ConsoleRead(tmp[:])
		if n == 0 {
			break
		}
		got = true
		if err := p.fsys.Append(ConsoleIn, tmp[:n]); err != nil {
			panic(err)
		}
	}
	if !got && !p.inEOF {
		// Device dry: declare EOF for the whole hierarchy. (The machine's
		// console is non-interactive: input is a finite script.)
		if _, err := p.fsys.Stat(consoleEOF); errors.Is(err, fs.ErrNotFound) {
			if err := p.fsys.Create(consoleEOF); err != nil {
				panic(err)
			}
		}
	}
}

// rootInputDry reports whether the root has declared console EOF.
func (p *Proc) rootInputDry() bool {
	_, err := p.fsys.Stat(consoleEOF)
	return err == nil
}
