package uproc

import (
	"io"

	"repro/internal/fs"
	"repro/internal/kernel"
)

// BootConfig describes the machine and environment for a process tree.
type BootConfig struct {
	Kernel   kernel.Config
	Registry *Registry
	Stdin    io.Reader // console input script (nil = empty)
	Stdout   io.Writer // console output sink (nil = discard)
}

// BootResult reports a completed Boot.
type BootResult struct {
	ExitStatus int
	Run        kernel.RunResult
}

// Boot builds a machine, formats the root file system, creates the
// console files, and runs the named program as the init process (PID-less
// root of the process tree, and the only process with device access).
// It returns once the whole tree has finished and all buffered console
// output has reached Stdout.
func Boot(cfg BootConfig, entry string, args ...string) BootResult {
	if cfg.Registry == nil {
		cfg.Registry = NewRegistry()
	}
	prog, ok := cfg.Registry.Lookup(entry)
	if !ok {
		panic("uproc: boot program not registered: " + entry)
	}
	cfg.Kernel.Console = kernel.NewConsole(cfg.Stdin, cfg.Stdout)
	m := kernel.New(cfg.Kernel)
	res := m.Run(func(env *kernel.Env) {
		fsys := formatRoot(env)
		p := &Proc{
			env:      env,
			fsys:     fsys,
			registry: cfg.Registry,
			args:     append([]string{entry}, args...),
			root:     true,
			children: make(map[int]*childState),
		}
		status := p.runToExit(prog)
		p.pumpConsole() // final output flush
		env.SetRet(uint64(status))
	}, 0)
	return BootResult{ExitStatus: int(res.Ret), Run: res}
}

// formatRoot formats the root process's file system image (Format maps
// its own pages), including the console special files (§4.3).
func formatRoot(env *kernel.Env) *fs.FS {
	fsys := fs.Format(env, FSBase, FSSize)
	if err := fsys.CreateAppendOnly(ConsoleIn); err != nil {
		panic(err)
	}
	if err := fsys.CreateAppendOnly(ConsoleOut); err != nil {
		panic(err)
	}
	return fsys
}
