package kernel

// Splitting machine images for content-addressed storage. A machine
// checkpoint is dominated by its vm forest section (the page payload);
// the config and tree sections are small metadata. The chunked store
// wants those apart: the forest goes through vm.ChunkForest into
// content-addressed chunks, while the metadata travels in the session
// manifest. SplitImage and JoinImage are exact inverses — Join(Split(x))
// is x byte-for-byte — so a checkpoint routed through a store restores
// bit-identically to one restored from the flat image.

import (
	"encoding/binary"

	"repro/internal/imgenc"
)

// configSectionLen is the size of the fixed machine-identity section
// encodeConfig emits: node count, cpus, flags, ten cost-model fields
// and three device cursors.
const configSectionLen = 4 + 4 + 1 + 10*8 + 3*8

// SplitImage separates a machine checkpoint image into a self-sealed
// metadata image (config + tree sections, no forest) and the raw vm
// forest bytes. The input is fully validated — a truncated or corrupt
// image fails with *BadImageError before anything is returned.
func SplitImage(img []byte) (meta, forest []byte, err error) {
	r, err := imgenc.Open(img, checkpointMagic, CheckpointVersion,
		func(off int, msg string) error { return &BadImageError{Offset: off, Msg: msg} },
		func(v byte) error { return &ImageVersionError{Version: v, Max: CheckpointVersion} })
	if err != nil {
		return nil, nil, err
	}
	r.Take(configSectionLen)
	treeLen := int(r.U32())
	r.Take(treeLen)
	cut := r.Off // forest section (its length prefix) starts here
	forestLen := int(r.U32())
	f := r.Take(forestLen)
	if r.Err != nil {
		return nil, nil, r.Err
	}
	if r.Remaining() != 0 {
		return nil, nil, &BadImageError{Offset: r.Off, Msg: "trailing bytes"}
	}
	meta = imgenc.Seal(append([]byte(nil), r.B[:cut]...))
	forest = append([]byte(nil), f...)
	return meta, forest, nil
}

// JoinImage recombines a metadata image from SplitImage with forest
// bytes into a complete machine checkpoint image. Joining the pieces
// SplitImage produced yields the original image exactly.
func JoinImage(meta, forest []byte) ([]byte, error) {
	r, err := imgenc.Open(meta, checkpointMagic, CheckpointVersion,
		func(off int, msg string) error { return &BadImageError{Offset: off, Msg: msg} },
		func(v byte) error { return &ImageVersionError{Version: v, Max: CheckpointVersion} })
	if err != nil {
		return nil, err
	}
	r.Take(configSectionLen)
	treeLen := int(r.U32())
	r.Take(treeLen)
	if r.Err != nil {
		return nil, r.Err
	}
	if r.Remaining() != 0 {
		return nil, &BadImageError{Offset: r.Off, Msg: "metadata image already has a forest section"}
	}
	b := append([]byte(nil), r.B...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(forest)))
	b = append(b, forest...)
	return imgenc.Seal(b), nil
}
