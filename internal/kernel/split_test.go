package kernel

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/vm"
)

func TestSplitJoinRoundTrip(t *testing.T) {
	img := captureImage(t)
	meta, forest, err := SplitImage(img)
	if err != nil {
		t.Fatalf("SplitImage: %v", err)
	}
	// The forest half must be a decodable vm image, the meta half a
	// sealed image with no forest, and the join exactly the original.
	if _, err := vm.DecodeForest(forest); err != nil {
		t.Fatalf("split forest does not decode: %v", err)
	}
	if len(meta) >= len(img) {
		t.Fatalf("meta (%d bytes) not smaller than the image (%d)", len(meta), len(img))
	}
	joined, err := JoinImage(meta, forest)
	if err != nil {
		t.Fatalf("JoinImage: %v", err)
	}
	if !bytes.Equal(joined, img) {
		t.Fatalf("join(split(img)) differs: %d bytes vs %d", len(joined), len(img))
	}
	// And the joined image restores.
	m := New(ckConfig())
	if err := m.Restore(joined); err != nil {
		t.Fatalf("restore of rejoined image: %v", err)
	}
}

func TestSplitJoinRejectBadInput(t *testing.T) {
	img := captureImage(t)
	if _, _, err := SplitImage(img[:len(img)/2]); !errors.As(err, new(*BadImageError)) {
		t.Fatalf("truncated image: %v, want BadImageError", err)
	}
	flipped := append([]byte(nil), img...)
	flipped[len(flipped)/3] ^= 1
	if _, _, err := SplitImage(flipped); !errors.As(err, new(*BadImageError)) {
		t.Fatalf("corrupt image: %v, want BadImageError", err)
	}

	meta, forest, err := SplitImage(img)
	if err != nil {
		t.Fatal(err)
	}
	// A full image is not a metadata image: joining onto it must fail
	// rather than produce a double-forest image.
	if _, err := JoinImage(img, forest); !errors.As(err, new(*BadImageError)) {
		t.Fatalf("join onto full image: %v, want BadImageError", err)
	}
	if _, err := JoinImage(meta[:8], forest); !errors.As(err, new(*BadImageError)) {
		t.Fatalf("join with truncated meta: %v, want BadImageError", err)
	}
}
