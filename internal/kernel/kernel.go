// Package kernel implements the Determinator microkernel: a hierarchy of
// single-threaded, shared-nothing spaces that interact only through the
// three system calls Put, Get and Ret (plus processor traps), exactly as
// described in §3 of the OSDI 2010 paper.
//
// The kernel here is a simulation substrate: a Machine stands in for the
// hardware (and, with more than one node, for a cluster of machines joined
// by Determinator's migration protocol). Application code runs as Go
// functions, one goroutine per space, but a space's only handles to the
// outside world are its private vm.Space and the syscall API on its Env —
// so the system remains a deterministic Kahn network no matter how Go
// schedules the goroutines.
//
// Time is virtual: spaces advance a logical instruction counter by ticking
// (and implicitly via memory accesses), and the kernel charges syscall,
// page-copy, merge and cross-node transfer costs to each space's virtual
// clock according to a CostModel. Each node owns a pool of virtual CPUs on
// which child execution segments are scheduled greedily, in program-defined
// rendezvous order, so reported times are deterministic and can model
// machines with more CPUs or nodes than the host has.
package kernel

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/vm"
)

// CostModel holds the virtual-time constants, expressed in "instructions"
// (one Tick unit). The defaults loosely model the paper's testbed: a ~2 GHz
// core, gigabit Ethernet between nodes, and page operations dominated by
// 4 KiB copies/compares.
type CostModel struct {
	Syscall      int64 // fixed cost of any Put/Get/Ret
	PageCopy     int64 // sharing one page COW (pte manipulation)
	PageCompare  int64 // byte-comparing one page during Merge
	PageAdopt    int64 // adopting one merge page whose parent copy is untouched (pte move); 0 = PageCopy
	ByteMerge    int64 // folding one changed byte into the parent
	MigrateMsg   int64 // one cross-node protocol round trip (migration or page request)
	PageTransfer int64 // moving one 4 KiB page across the wire
	TCPLike      bool  // model TCP-style timing: extra per-message round-trip cost
	TCPExtra     int64 // added per cross-node message when TCPLike is set

	// Batched transfers (§3.3 at cluster scale): one request round trip
	// moves a whole run of contiguous pages instead of one page per
	// message. BatchPages caps the run length of a single request; 0 or
	// 1 disables batching — every page ships as its own request, with
	// the same per-page framing (a model refinement: before batching
	// existed, join traffic paid transfer but no request framing, so
	// pre-batching multi-node virtual times are reproduced by the
	// per-page protocol only up to that framing term). BatchMsg is the
	// fixed per-request overhead of a transfer; 0 selects MigrateMsg/4,
	// the request cost demand paging has always charged, so a run of
	// one page costs exactly what an unbatched fetch does.
	BatchPages int
	BatchMsg   int64
}

// DefaultCostModel returns the constants used throughout the evaluation.
func DefaultCostModel() CostModel {
	return CostModel{
		Syscall:      2_000,
		PageCopy:     150,
		PageCompare:  4_096,
		PageAdopt:    150, // a pte move, like PageCopy — 27x cheaper than a byte compare
		ByteMerge:    2,
		MigrateMsg:   100_000, // ~50 µs round trip at 2 GIPS
		PageTransfer: 70_000,  // 4 KiB at ~1 Gb/s, ~35 µs
		TCPExtra:     2_000,
		BatchPages:   64,     // one request may carry a 256 KiB run
		BatchMsg:     25_000, // request framing, same as a per-page fetch
	}
}

// batchMsg returns the per-request overhead of one batched transfer,
// defaulting to the per-page request cost for cost models written before
// batching existed.
func (c CostModel) batchMsg() int64 {
	if c.BatchMsg != 0 {
		return c.BatchMsg
	}
	return c.MigrateMsg / 4
}

// batched reports whether the model's wire protocol coalesces page runs.
func (c CostModel) batched() bool { return c.BatchPages > 1 }

// BatchMsgCost returns the effective per-request overhead of one batched
// transfer (BatchMsg, defaulting to the per-page request cost), exported
// so the message-passing baselines can charge the same wire framing the
// migration protocol pays — keeping the Figure 12-style comparisons
// fair under batching.
func (c CostModel) BatchMsgCost() int64 { return c.batchMsg() }

// pageAdopt returns the adopted-page merge charge, defaulting to PageCopy
// for cost models written before the adopt/compare distinction existed.
func (c CostModel) pageAdopt() int64 {
	if c.PageAdopt != 0 {
		return c.PageAdopt
	}
	return c.PageCopy
}

// Config describes the simulated machine.
type Config struct {
	Nodes       int       // cluster size; 0 or 1 means a single machine
	CPUsPerNode int       // virtual CPUs per node; 0 means 1
	Cost        CostModel // zero value replaced by DefaultCostModel
	Console     *Console  // nil for a discard console
	Clock       ClockFunc // nil for a deterministic logical clock
	Rand        RandFunc  // nil for a fixed-seed generator
	// DisableROCache turns off per-node caching of read-only pages for
	// re-migrating spaces (an ablation of the optimization in §3.3).
	DisableROCache bool
	// MergeWorkers is the host parallelism applied to each Merge during
	// Get (0 = GOMAXPROCS, 1 = serial). It affects wall-clock speed only:
	// merge results, statistics and therefore virtual times are identical
	// at every setting.
	MergeWorkers int
	// MergeByteKernel routes every Merge during Get through the per-byte
	// reference kernel instead of the word-masked one. Like MergeWorkers
	// it changes wall-clock speed only — results, statistics and virtual
	// times are identical; benchmarks and the invariance tests use it to
	// measure and verify the kernels against each other.
	MergeByteKernel bool
}

// Machine is the simulated hardware plus kernel state: a set of nodes, the
// cost model, and the I/O devices reachable only from the root space.
type Machine struct {
	cost         CostModel
	nodes        []*node
	console      *Console
	clock        ClockFunc
	rand         RandFunc
	noCache      bool
	mergeWorkers int
	mergeBytes   bool

	wg   sync.WaitGroup // all space goroutines ever started
	root *Space

	// restored marks a machine whose root tree was loaded by Restore;
	// the next Run resumes it instead of creating a fresh root. broken
	// poisons a machine whose devices were partially fast-forwarded by a
	// failed Restore: running it would be silently nondeterministic.
	restored bool
	broken   error
	// Device cursors: reads consumed from each device so far. They are
	// part of a checkpoint image — a restore fast-forwards the devices by
	// these counts so clock/entropy/console streams resume mid-log.
	devClock   int64
	devRand    int64
	devConsole int64
}

// node models one machine in the cluster: an identity for the migration
// protocol plus the virtual CPU width used for contention modelling.
type node struct {
	id   int
	cpus int
}

// vcpuPool models CPU contention among the children one collector joins
// on one node: earliest-free virtual times, one per CPU. Pools belong to
// the collecting space and are consulted only from its own goroutine in
// program order, so assignments are deterministic by construction.
// Independent subtrees collecting concurrently each get their own pool —
// an optimistic list-scheduling bound that trades some cross-subtree
// contention accuracy for schedule-independence (see DESIGN.md §4.2).
type vcpuPool struct {
	free []int64
}

// schedule places an execution segment of the given duration, wanting to
// begin at earliest, onto the least-loaded virtual CPU, returning the
// completion time.
func (p *vcpuPool) schedule(earliest, dur int64) int64 {
	best := 0
	for i, f := range p.free {
		if f < p.free[best] {
			best = i
		}
	}
	start := max64(earliest, p.free[best])
	p.free[best] = start + dur
	return start + dur
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// New constructs a simulated machine.
func New(cfg Config) *Machine {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.CPUsPerNode <= 0 {
		cfg.CPUsPerNode = 1
	}
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCostModel()
	}
	if cfg.Console == nil {
		cfg.Console = NewConsole(nil, nil)
	}
	if cfg.Clock == nil {
		cfg.Clock = LogicalClock()
	}
	if cfg.Rand == nil {
		cfg.Rand = SeededRand(1)
	}
	if cfg.MergeWorkers <= 0 {
		cfg.MergeWorkers = runtime.GOMAXPROCS(0)
	}
	m := &Machine{
		cost:         cfg.Cost,
		console:      cfg.Console,
		clock:        cfg.Clock,
		rand:         cfg.Rand,
		noCache:      cfg.DisableROCache,
		mergeWorkers: cfg.MergeWorkers,
		mergeBytes:   cfg.MergeByteKernel,
	}
	for i := 0; i < cfg.Nodes; i++ {
		m.nodes = append(m.nodes, &node{id: i, cpus: cfg.CPUsPerNode})
	}
	return m
}

// Nodes reports the cluster size.
func (m *Machine) Nodes() int { return len(m.nodes) }

// NetStats counts the cross-node protocol traffic one space initiated:
// migrations, page-run requests and delta shipments it was charged for.
// Like virtual time the counts are deterministic — they depend only on
// program behaviour and the cost model, never on host scheduling — which
// is what lets the cluster experiments assert on them. Single-node
// machines perform no cross-node traffic and always report zeros.
type NetStats struct {
	Msgs  int64 // protocol messages (round trips) initiated
	Pages int64 // pages moved across the wire
}

// Add accumulates another space's traffic into s.
func (s *NetStats) Add(o NetStats) {
	s.Msgs += o.Msgs
	s.Pages += o.Pages
}

// RunResult describes a completed root program.
type RunResult struct {
	Status Status   // StatusHalted normally, a trap status otherwise
	Err    error    // trap cause, if any
	Ret    uint64   // root's Regs.Ret value at halt
	VT     int64    // root space's final virtual time
	Insns  int64    // instructions executed by the root space itself
	Net    NetStats // cross-node traffic the root space itself initiated
}

// Run creates the root space on node 0 and executes prog in it, blocking
// until the root halts and every descendant space has stopped. The root is
// the only space with device access. A Machine may be Run once.
func (m *Machine) Run(prog Prog, arg uint64) RunResult {
	if m.broken != nil {
		panic(fmt.Sprintf("kernel: Machine.Run on a machine poisoned by a failed restore: %v", m.broken))
	}
	var root *Space
	if m.restored {
		// Restore rebuilt the root tree; resume it with the new entry.
		// Virtual time, instruction and traffic counters continue from
		// their checkpointed values.
		root = m.root
		m.restored = false
		root.regs.Entry = prog
		root.regs.Arg = arg
	} else {
		if m.root != nil {
			panic("kernel: Machine.Run called twice")
		}
		root = newSpace(m, nil, 0, m.nodes[0])
		root.regs = Regs{Entry: prog, Arg: arg}
		m.root = root
	}
	root.start(0)
	root.waitStopped()
	res := RunResult{
		Status: root.status,
		Err:    root.trapErr,
		Ret:    root.regs.Ret,
		VT:     root.vt,
		Insns:  root.insns,
		Net:    root.net,
	}
	m.shutdown()
	return res
}

// shutdown aborts every parked space goroutine so that no goroutines leak
// once the root program has halted. Spaces still running are waited for.
func (m *Machine) shutdown() {
	if m.root != nil {
		m.root.abortTree()
	}
	m.wg.Wait()
}

// KernelError reports misuse of the syscall API (the real kernel would
// deliver a fault to the offending space).
type KernelError struct {
	Op  string
	Msg string
}

func (e *KernelError) Error() string { return fmt.Sprintf("kernel: %s: %s", e.Op, e.Msg) }

func kerr(op, format string, args ...any) error {
	return &KernelError{Op: op, Msg: fmt.Sprintf(format, args...)}
}

// Child reference encoding (§3.3): the high bits of a child number select
// the node the child lives on; 0 selects the caller's home node.
const (
	nodeShift = 16
	// MaxChildIndex is the largest per-node child index.
	MaxChildIndex = 1<<nodeShift - 1
)

// ChildOn encodes a child reference naming child idx on cluster node n
// (0-based machine node index). ChildOn(homeRelative...) semantics: a zero
// node field always means the caller's home node, so this helper encodes
// absolute node n as field n+1.
func ChildOn(nodeIdx int, idx uint64) uint64 {
	return uint64(nodeIdx+1)<<nodeShift | (idx & MaxChildIndex)
}

// splitChildRef decodes a child reference relative to sp: the node field
// (0 = sp's home node, k = machine node k-1) and the per-node child index.
func (sp *Space) splitChildRef(ref uint64) (*node, uint64, error) {
	field := ref >> nodeShift
	idx := ref & MaxChildIndex
	if field == 0 {
		return sp.home, idx, nil
	}
	n := int(field) - 1
	if n >= len(sp.m.nodes) {
		return nil, 0, kerr("childref", "node %d out of range (cluster has %d)", n, len(sp.m.nodes))
	}
	return sp.m.nodes[n], idx, nil
}

// pageSet tracks page residency and per-node read-only caches for the
// migration protocol's cost model. The zero value is an empty set; all
// marks every page present except those later removed.
type pageSet struct {
	all    bool
	except map[vm.Addr]struct{}
	pages  map[vm.Addr]struct{}
}

func newPageSet(all bool) *pageSet { return &pageSet{all: all} }

func (s *pageSet) has(p vm.Addr) bool {
	if s == nil {
		return false
	}
	if s.all {
		_, ex := s.except[p]
		return !ex
	}
	_, ok := s.pages[p]
	return ok
}

func (s *pageSet) add(p vm.Addr) {
	if s.all {
		delete(s.except, p)
		return
	}
	if s.pages == nil {
		s.pages = make(map[vm.Addr]struct{})
	}
	s.pages[p] = struct{}{}
}

func (s *pageSet) remove(p vm.Addr) {
	if s == nil {
		return
	}
	if s.all {
		if s.except == nil {
			s.except = make(map[vm.Addr]struct{})
		}
		s.except[p] = struct{}{}
		return
	}
	delete(s.pages, p)
}

func (s *pageSet) clone() *pageSet {
	if s == nil {
		return nil
	}
	c := &pageSet{all: s.all}
	if len(s.except) > 0 {
		c.except = make(map[vm.Addr]struct{}, len(s.except))
		for k := range s.except {
			c.except[k] = struct{}{}
		}
	}
	if len(s.pages) > 0 {
		c.pages = make(map[vm.Addr]struct{}, len(s.pages))
		for k := range s.pages {
			c.pages[k] = struct{}{}
		}
	}
	return c
}
