package kernel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vm"
)

// Randomized whole-kernel property: arbitrary fork/join trees with
// disjoint write sets must (a) equal a sequential model of the same
// writes, and (b) produce identical memory and virtual time on every
// run. This is the Kahn-network determinism argument, tested rather
// than asserted.

// treePlan describes a random fork tree. Each node owns a disjoint
// region of a shared page array determined by its path.
type treePlan struct {
	seed  int64
	depth int
	fan   int
}

// buildProg turns a plan into a kernel program plus the expected final
// array contents.
func buildProg(plan treePlan) (Prog, []uint32) {
	const words = 1 << 12 // 16 KiB of shared state
	expect := make([]uint32, words)

	// Sequential model: walk the tree in deterministic order, recording
	// every node's writes.
	// region gives every tree node a unique, disjoint slice of the
	// array: the path read as a base-4 numeral (fan ≤ 3).
	region := func(path []int) int {
		r := 0
		for _, p := range path {
			r = r*4 + p + 1
		}
		return r % 128
	}
	const regionWords = words / 128

	var model func(path []int, rng *rand.Rand)
	model = func(path []int, rng *rand.Rand) {
		h := uint32(1)
		for _, p := range path {
			h = h*31 + uint32(p+1)
		}
		r := region(path)
		for k := 0; k < 8; k++ {
			idx := r*regionWords + (int(h)+k*7)%regionWords
			expect[idx] = h + uint32(k)
		}
		if len(path) < plan.depth {
			for c := 0; c < plan.fan; c++ {
				model(append(path, c), rng)
			}
		}
	}

	// The kernel program mirrors the model over real spaces.
	var spawn func(env *Env, path []int)
	spawn = func(env *Env, path []int) {
		h := uint32(1)
		for _, p := range path {
			h = h*31 + uint32(p+1)
		}
		r := region(path)
		for k := 0; k < 8; k++ {
			idx := r*regionWords + (int(h)+k*7)%regionWords
			env.WriteU32(vm.Addr(4*idx), h+uint32(k))
		}
		env.Tick(int64(h % 1000))
		if len(path) < plan.depth {
			for c := 0; c < plan.fan; c++ {
				c := c
				childPath := append(append([]int{}, path...), c)
				if err := env.Put(uint64(c+1), PutOpts{
					Regs:    &Regs{Entry: func(ce *Env) { spawn(ce, childPath) }},
					CopyAll: true,
					Snap:    true,
					Start:   true,
				}); err != nil {
					panic(err)
				}
			}
			for c := 0; c < plan.fan; c++ {
				if _, err := env.Get(uint64(c+1), GetOpts{Merge: true}); err != nil {
					panic(err)
				}
			}
		}
	}

	rng := rand.New(rand.NewSource(plan.seed))
	model(nil, rng)

	prog := func(env *Env) {
		env.SetPerm(0, 4*words, vm.PermRW)
		spawn(env, nil)
		// Fold the array into the return value so divergence is loud.
		buf := make([]uint32, words)
		env.ReadU32s(0, buf)
		var sig uint64
		for _, v := range buf {
			sig = sig*1099511628211 + uint64(v)
		}
		env.SetRet(sig)
	}
	return prog, expect
}

func TestRandomForkTreeMatchesModelProperty(t *testing.T) {
	f := func(seed int64, d8, f8 uint8) bool {
		plan := treePlan{seed: seed, depth: int(d8%3) + 1, fan: int(f8%3) + 1}
		prog, expect := buildProg(plan)

		var sig uint64
		for _, v := range expect {
			sig = sig*1099511628211 + uint64(v)
		}

		var vts []int64
		for run := 0; run < 2; run++ {
			m := New(Config{CPUsPerNode: 3})
			res := m.Run(prog, 0)
			if res.Status != StatusHalted {
				return false
			}
			if res.Ret != sig {
				return false // parallel result diverged from the sequential model
			}
			vts = append(vts, res.VT)
		}
		return vts[0] == vts[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// Nodes writing non-disjoint regions must conflict deterministically:
// the same first-conflict address every run.
func TestRandomConflictStabilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		addr := vm.Addr(rng.Intn(1024) * 4)
		prog := func(env *Env) {
			env.SetPerm(0, vm.PageSize, vm.PermRW)
			for c := uint64(1); c <= 2; c++ {
				c := c
				if err := env.Put(c, PutOpts{
					Regs: &Regs{Entry: func(ce *Env) {
						ce.WriteU32(addr, uint32(c))
					}},
					CopyAll: true,
					Snap:    true,
					Start:   true,
				}); err != nil {
					panic(err)
				}
			}
			if _, err := env.Get(1, GetOpts{Merge: true}); err != nil {
				panic(err)
			}
			_, err := env.Get(2, GetOpts{Merge: true})
			mc, ok := err.(*vm.MergeConflictError)
			if !ok {
				panic("no conflict")
			}
			env.SetRet(uint64(mc.Addrs[0]))
		}
		m1 := New(Config{}).Run(prog, 0)
		m2 := New(Config{}).Run(prog, 0)
		return m1.Status == StatusHalted && m2.Status == StatusHalted &&
			m1.Ret == uint64(addr) && m1.Ret == m2.Ret
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
