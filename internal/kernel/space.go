package kernel

import (
	"fmt"
	"sync"

	"repro/internal/vm"
)

// Prog is the code image of a space: the analogue of the program text and
// entry point (EIP) in the real kernel. It receives the space's Env, its
// only handle to memory and the syscall API.
type Prog func(*Env)

// Regs is a space's register state. Entry stands in for the instruction
// pointer / code image; Arg and Ret are small argument/result words (the
// EAX/EDX analogues) that Put and Get can copy between parent and child.
type Regs struct {
	Entry Prog
	Arg   uint64
	Ret   uint64
}

// Status reports why a space last stopped.
type Status int

const (
	// StatusNever marks a space that has not run yet.
	StatusNever Status = iota
	// StatusRet marks a voluntary Ret; the space can be resumed.
	StatusRet
	// StatusInsnLimit marks preemption by the instruction limit; the space
	// can be resumed.
	StatusInsnLimit
	// StatusHalted marks a program whose entry function returned.
	StatusHalted
	// StatusFault marks a memory access fault (the analogue of a page
	// fault or illegal access trap).
	StatusFault
	// StatusExcept marks a runtime exception (panic) in the space's code.
	StatusExcept
)

func (s Status) String() string {
	switch s {
	case StatusNever:
		return "never-started"
	case StatusRet:
		return "ret"
	case StatusInsnLimit:
		return "insn-limit"
	case StatusHalted:
		return "halted"
	case StatusFault:
		return "fault"
	case StatusExcept:
		return "exception"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Resumable reports whether a stopped space may be restarted without
// loading fresh registers.
func (s Status) Resumable() bool { return s == StatusRet || s == StatusInsnLimit }

type execState int

const (
	stateStopped execState = iota // no user code executing; parent may operate
	stateRunning                  // goroutine executing user code
)

// errAbort is panicked into parked goroutines at shutdown or when the
// parent overwrites a parked space's registers. It is a write-once
// error sentinel (and satisfies error so callers could errors.Is it).
var errAbort = &abortSignal{}

type abortSignal struct{}

func (*abortSignal) Error() string { return "kernel: space aborted" }

// Space is one node of the kernel's space hierarchy (§3.1): register state
// for a single control flow plus a private virtual address space. A space
// interacts only with its immediate parent and children.
type Space struct {
	m      *Machine
	parent *Space
	ref    uint64 // this space's number in its parent's child namespace
	home   *node  // node the space was created on

	// Guarded by mu: execution state machine.
	mu      sync.Mutex
	cond    *sync.Cond
	state   execState
	parked  bool // a goroutine exists, parked inside park()
	abort   bool // parked goroutine must unwind and exit
	status  Status
	trapErr error

	// The fields below are accessed only by the space's own goroutine, or
	// by the parent while the child is stopped (rendezvous guarantees).
	mem      *vm.Space
	snap     *vm.Space // reference snapshot for Merge, nil if none
	regs     Regs
	children map[uint64]*Space

	// Instruction accounting and virtual time.
	insns      int64 // ticks executed by this space
	limit      int64 // trap when insns reaches this value; 0 = none
	critical   int   // >0 suppresses limit preemption (see Env.NoPreempt)
	vt         int64 // virtual clock
	startVT    int64 // vt when the current segment started
	segBlocked int64 // vt spent blocked in rendezvous during this segment
	accounted  bool  // current stop has been charged to a virtual CPU

	// Migration state (multi-node machines only).
	node    *node    // node the space currently executes on
	fetched *pageSet // pages resident on node; nil = everything (single node)
	caches  map[int]*pageSet
	net     NetStats // cross-node traffic this space initiated

	// Per-node virtual CPU pools for the children this space collects
	// (touched only by the collector's goroutine, in program order).
	pools map[int]*vcpuPool
}

// poolFor returns this space's CPU pool for the given node.
func (sp *Space) poolFor(n *node) *vcpuPool {
	if sp.pools == nil {
		sp.pools = make(map[int]*vcpuPool)
	}
	p := sp.pools[n.id]
	if p == nil {
		p = &vcpuPool{free: make([]int64, n.cpus)}
		sp.pools[n.id] = p
	}
	return p
}

func newSpace(m *Machine, parent *Space, ref uint64, home *node) *Space {
	sp := &Space{
		m:      m,
		parent: parent,
		ref:    ref,
		home:   home,
		node:   home,
		mem:    vm.NewSpace(),
		status: StatusNever,
	}
	sp.cond = sync.NewCond(&sp.mu)
	return sp
}

// start launches or resumes the space's user code. The caller (the parent,
// during Put, or Machine.Run for the root) must know the space is stopped.
func (sp *Space) start(limit int64) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if limit > 0 {
		sp.limit = sp.insns + limit
	} else {
		sp.limit = 0
	}
	sp.accounted = false
	sp.startVT = sp.vt
	sp.segBlocked = 0
	sp.state = stateRunning
	if sp.parked {
		sp.cond.Broadcast() // wake the goroutine parked in park()
		return
	}
	entry := sp.regs.Entry
	sp.m.wg.Add(1)
	go sp.run(entry)
}

// run is the top of a space goroutine: it executes the entry program and
// converts panics into trap statuses, mirroring processor exceptions.
func (sp *Space) run(entry Prog) {
	defer sp.m.wg.Done()
	defer func() {
		r := recover()
		switch t := r.(type) {
		case nil, haltSignal:
			sp.stop(StatusHalted, nil)
		case *abortSignal:
			// Shutdown or register overwrite: exit without changing state;
			// the aborter already holds the state machine.
		case *vm.AccessError:
			sp.stop(StatusFault, t)
		default:
			sp.stop(StatusExcept, fmt.Errorf("kernel: exception in space: %v", r))
		}
	}()
	entry(&Env{sp: sp})
}

// stop marks the space permanently stopped (halt, fault or exception);
// the goroutine is about to exit.
func (sp *Space) stop(st Status, err error) {
	sp.mu.Lock()
	sp.status = st
	sp.trapErr = err
	sp.parked = false
	sp.state = stateStopped
	sp.cond.Broadcast()
	sp.mu.Unlock()
}

// park suspends the calling space goroutine (Ret or instruction-limit
// trap) until the parent restarts it. It panics with errAbort if the
// parent discards the parked execution.
func (sp *Space) park(st Status) {
	sp.mu.Lock()
	sp.status = st
	sp.trapErr = nil
	sp.parked = true
	sp.state = stateStopped
	sp.cond.Broadcast()
	for sp.state != stateRunning {
		sp.cond.Wait()
	}
	sp.parked = false
	aborted := sp.abort
	sp.abort = false
	if aborted {
		// This goroutine will never run user code again; hand the state
		// machine back to the aborter before unwinding.
		sp.state = stateStopped
		sp.cond.Broadcast()
		sp.mu.Unlock()
		panic(errAbort)
	}
	sp.mu.Unlock()
}

// waitStopped blocks until the space's user code stops (Ret, trap, halt).
// It implements the rendezvous half of Put/Get.
func (sp *Space) waitStopped() {
	sp.mu.Lock()
	for sp.state == stateRunning {
		sp.cond.Wait()
	}
	sp.mu.Unlock()
}

// discardExecution aborts a parked goroutine so the space can be restarted
// at fresh registers. The space must be stopped.
func (sp *Space) discardExecution() {
	sp.mu.Lock()
	if sp.parked {
		sp.abort = true
		sp.state = stateRunning // release the goroutine parked in park()
		sp.cond.Broadcast()
		for sp.parked {
			sp.cond.Wait() // park() resets parked and state before unwinding
		}
	}
	sp.mu.Unlock()
}

// abortTree recursively shuts down this space and all descendants: waits
// for running code to stop, then discards parked goroutines.
func (sp *Space) abortTree() {
	sp.waitStopped()
	sp.discardExecution()
	for _, c := range sp.children {
		c.abortTree()
	}
}

// collect finalizes virtual-time accounting for a child that has stopped:
// the child's execution segment is scheduled onto its node's virtual CPU
// pool, and the child's clock shifts to the segment's completion time.
// Called by the parent during rendezvous; idempotent per segment.
func (sp *Space) collect(child *Space) {
	if child.accounted {
		return
	}
	child.accounted = true
	if child.status == StatusNever {
		return
	}
	// A space occupies a CPU only while it actually executes: time it
	// spent blocked in rendezvous with its own children (who were
	// scheduled on CPUs themselves) is not occupancy, or nested fork
	// trees would charge every ancestor for the leaves' work.
	dur := child.vt - child.startVT - child.segBlocked
	if dur < 0 {
		dur = 0
	}
	child.vt = sp.poolFor(child.node).schedule(child.startVT+child.segBlocked, dur)
}

// chargeVT advances the space's virtual clock.
func (sp *Space) chargeVT(c int64) { sp.vt += c }

// migrate moves the calling space to the target node, charging the
// cross-node protocol costs and switching the residency tracking to the
// target node's read-only page cache (§3.3).
func (sp *Space) migrate(target *node) {
	if sp.node == target {
		return
	}
	cost := sp.m.cost
	sp.chargeVT(cost.MigrateMsg + msgExtra(cost))
	sp.net.Msgs++
	sp.node = target
	if len(sp.m.nodes) > 1 {
		if sp.m.noCache {
			sp.fetched = newPageSet(false)
			return
		}
		if sp.caches == nil {
			sp.caches = make(map[int]*pageSet)
		}
		if sp.fetched != nil {
			// What we accumulated at the previous node stays cached there.
			// (Pages written elsewhere are removed from all caches at
			// write time, so the cache only ever holds clean pages.)
		}
		c := sp.caches[target.id]
		if c == nil {
			c = newPageSet(false)
			sp.caches[target.id] = c
		}
		sp.fetched = c
	}
}

func msgExtra(c CostModel) int64 {
	if c.TCPLike {
		return c.TCPExtra
	}
	return 0
}

// touchPages charges demand-paging costs for the page-aligned span
// [addr, addr+size) and maintains the read-only cache: reads populate the
// current node's cache; writes invalidate every other node's cached copy.
//
// Consecutive non-resident pages of one access are fetched as batched
// runs when the cost model allows (CostModel.BatchPages): one request
// round trip moves up to BatchPages pages, so a bulk read of a remote
// span pays per-run rather than per-page protocol overhead. With
// batching disabled every page is its own request, the original
// per-page protocol, at exactly the original cost.
func (sp *Space) touchPages(addr vm.Addr, size int, write bool) {
	if sp.fetched == nil || size <= 0 {
		return // single-node fast path: everything resident
	}
	cost := sp.m.cost
	maxRun := cost.BatchPages
	if maxRun < 1 {
		maxRun = 1
	}
	run := 0
	flush := func() {
		if run == 0 {
			return
		}
		sp.chargeVT(cost.batchMsg() + int64(run)*cost.PageTransfer + msgExtra(cost))
		sp.net.Msgs++
		sp.net.Pages += int64(run)
		run = 0
	}
	first := addr &^ (vm.PageSize - 1)
	last := (addr + vm.Addr(size) - 1) &^ (vm.PageSize - 1)
	for p := first; ; p += vm.PageSize {
		if !sp.fetched.has(p) {
			if run == maxRun {
				flush()
			}
			run++
			sp.fetched.add(p)
		} else {
			flush()
		}
		if write {
			for id, c := range sp.caches {
				if id != sp.node.id {
					c.remove(p)
				}
			}
		}
		if p == last {
			break
		}
	}
	flush()
}

// inheritResidency initializes a child's residency tracking from its
// parent at fork time: COW-shared pages are exactly as resident for the
// child as they were for the parent.
func (sp *Space) inheritResidency(child *Space) {
	if len(sp.m.nodes) <= 1 {
		return
	}
	if sp.node == child.node {
		child.fetched = sp.fetched.clone()
		if child.fetched == nil {
			child.fetched = newPageSet(true)
		}
	} else {
		child.fetched = newPageSet(false)
	}
	if !sp.m.noCache {
		if child.caches == nil {
			child.caches = make(map[int]*pageSet)
		}
		child.caches[child.node.id] = child.fetched
	}
}
