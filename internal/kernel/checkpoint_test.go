package kernel

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/vm"
)

// A tiny phased program used by the checkpoint tests: a shared region at
// ckBase, one child forked per phase that mutates its replica, a merge
// back, and device reads folded into a running checksum so clock/entropy
// cursors matter to the result.
const (
	ckBase vm.Addr = 0x1000_0000
	ckSize uint64  = 4 << 20
)

func ckChild(phase int) Prog {
	return func(env *Env) {
		env.Tick(50 * int64(phase+1))
		a := ckBase + vm.Addr(phase*vm.PageSize)
		env.WriteU64(a, env.ReadU64(a)+uint64(phase)*3+1)
	}
}

// ckPhase runs one fork/merge round plus device reads.
func ckPhase(t testing.TB, env *Env, phase int) {
	env.Tick(100)
	if err := env.Put(1, PutOpts{
		Regs:  &Regs{Entry: ckChild(phase), Arg: uint64(phase)},
		Copy:  &CopyRange{Src: ckBase, Dst: ckBase, Size: ckSize},
		Snap:  true,
		Start: true,
	}); err != nil {
		t.Errorf("phase %d put: %v", phase, err)
		return
	}
	if _, err := env.Get(1, GetOpts{Regs: true, Merge: true,
		MergeRange: &Range{Addr: ckBase, Size: ckSize}}); err != nil {
		t.Errorf("phase %d get: %v", phase, err)
		return
	}
	sum := env.ReadU64(ckBase + 8*vm.PageSize)
	sum = sum*31 + uint64(env.ClockNow()) + env.RandUint64()
	env.WriteU64(ckBase+8*vm.PageSize, sum)
}

func ckResult(env *Env) {
	var out uint64
	for p := 0; p < 9; p++ {
		out = out*1099511628211 + env.ReadU64(ckBase+vm.Addr(p*vm.PageSize))
	}
	env.SetRet(out)
}

const ckPhases = 4

// ckProg runs phases [start, ckPhases). Setup runs only when start==0.
func ckProg(t testing.TB, start int, onBarrier func(env *Env, nextPhase int) bool) Prog {
	return func(env *Env) {
		if start == 0 {
			env.SetPerm(ckBase, ckSize, vm.PermRW)
		}
		for p := start; p < ckPhases; p++ {
			ckPhase(t, env, p)
			if onBarrier != nil && !onBarrier(env, p+1) {
				return
			}
		}
		ckResult(env)
	}
}

func ckConfig() Config {
	return Config{CPUsPerNode: 2, MergeWorkers: 1}
}

func TestCheckpointResumeEquivalence(t *testing.T) {
	// Reference: the uninterrupted run.
	want := New(ckConfig()).Run(ckProg(t, 0, nil), 0)
	if want.Err != nil {
		t.Fatalf("uninterrupted run: %v", want.Err)
	}

	for stop := 1; stop < ckPhases; stop++ {
		// A run that checkpoints at the barrier after phase stop-1 and
		// halts there.
		var img []byte
		res := New(ckConfig()).Run(ckProg(t, 0, func(env *Env, next int) bool {
			if next != stop {
				return true
			}
			var err error
			img, err = env.Checkpoint(CheckpointOpts{})
			if err != nil {
				t.Errorf("checkpoint at %d: %v", next, err)
			}
			return false
		}), 0)
		if res.Err != nil {
			t.Fatalf("checkpointing run: %v", res.Err)
		}
		if img == nil {
			t.Fatalf("no image captured at phase %d", stop)
		}

		// Resume in a fresh machine and run the remaining phases.
		m := New(ckConfig())
		if err := m.Restore(img); err != nil {
			t.Fatalf("restore at %d: %v", stop, err)
		}
		got := m.Run(ckProg(t, stop, nil), 0)
		if got.Err != nil {
			t.Fatalf("resumed run: %v", got.Err)
		}
		if got.Ret != want.Ret || got.VT != want.VT || got.Insns != want.Insns || got.Net != want.Net {
			t.Fatalf("resume at phase %d diverged:\n got %+v\nwant %+v", stop, got, want)
		}
	}
}

// A checkpoint must be a pure observation: taking one mid-run and
// continuing produces bit-identical results to never taking one.
func TestCheckpointIsVTNeutral(t *testing.T) {
	want := New(ckConfig()).Run(ckProg(t, 0, nil), 0)
	got := New(ckConfig()).Run(ckProg(t, 0, func(env *Env, next int) bool {
		if _, err := env.Checkpoint(CheckpointOpts{}); err != nil {
			t.Errorf("checkpoint: %v", err)
		}
		return true // keep running after every checkpoint
	}), 0)
	if got.Ret != want.Ret || got.VT != want.VT || got.Insns != want.Insns {
		t.Fatalf("checkpointing run diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestCheckpointRequiresQuiescence(t *testing.T) {
	res := New(ckConfig()).Run(func(env *Env) {
		// A child parked at a Ret cannot be serialized.
		if err := env.Put(1, PutOpts{
			Regs:  &Regs{Entry: func(e *Env) { e.Ret(); e.Tick(1) }},
			Start: true,
		}); err != nil {
			t.Errorf("put: %v", err)
			return
		}
		if _, err := env.Get(1, GetOpts{}); err != nil { // rendezvous: child parked
			t.Errorf("get: %v", err)
			return
		}
		_, err := env.Checkpoint(CheckpointOpts{})
		var nq *NotQuiescentError
		if !errors.As(err, &nq) {
			t.Errorf("parked child: got %v, want *NotQuiescentError", err)
			return
		}
		// The ref in the error is the node-qualified child key.
		if nq.Ref != ChildOn(0, 1) || nq.Status != StatusRet {
			t.Errorf("NotQuiescentError fields: %+v", nq)
		}
		// Explicitly allowing the parked child makes it serializable as a
		// restartable space.
		if _, err := env.Checkpoint(CheckpointOpts{AllowParked: []uint64{1}}); err != nil {
			t.Errorf("allow-parked checkpoint: %v", err)
		}
	}, 0)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
}

func TestCheckpointOnlyRoot(t *testing.T) {
	res := New(ckConfig()).Run(func(env *Env) {
		err := env.Put(1, PutOpts{Regs: &Regs{Entry: func(e *Env) {
			if _, err := e.Checkpoint(CheckpointOpts{}); err == nil {
				t.Error("non-root checkpoint succeeded")
			}
		}}, Start: true})
		if err != nil {
			t.Error(err)
		}
		env.Get(1, GetOpts{})
	}, 0)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
}

// captureImage runs the deterministic phased program to a fixed barrier
// and returns the image — the corpus for the format tests below.
func captureImage(t testing.TB) []byte {
	t.Helper()
	var img []byte
	res := New(ckConfig()).Run(ckProg(t, 0, func(env *Env, next int) bool {
		if next != 2 {
			return true
		}
		var err error
		img, err = env.Checkpoint(CheckpointOpts{})
		if err != nil {
			t.Errorf("checkpoint: %v", err)
		}
		return false
	}), 0)
	if res.Err != nil || img == nil {
		t.Fatalf("capture failed: %v", res.Err)
	}
	return img
}

// The golden-file test pins the image format: identical machine state
// must serialize to identical bytes, and any (intentional) format change
// must come with a version bump and a regenerated golden file.
func TestCheckpointGoldenImage(t *testing.T) {
	img := captureImage(t)
	if img[4] != CheckpointVersion {
		t.Fatalf("version byte at offset 4 is %d, want %d", img[4], CheckpointVersion)
	}
	golden := filepath.Join("testdata", "ckpt_v1.golden")
	want, err := os.ReadFile(golden)
	if os.IsNotExist(err) {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, img, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Fatalf("golden file created; commit %s and re-run", golden)
	}
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img, want) {
		t.Fatalf("image bytes differ from golden file (%d vs %d bytes); "+
			"format changes require a CheckpointVersion bump and a regenerated golden", len(img), len(want))
	}
	// The golden image still restores and resumes to the same result.
	m := New(ckConfig())
	if err := m.Restore(want); err != nil {
		t.Fatalf("golden restore: %v", err)
	}
	got := m.Run(ckProg(t, 2, nil), 0)
	ref := New(ckConfig()).Run(ckProg(t, 0, nil), 0)
	if got.Ret != ref.Ret || got.VT != ref.VT {
		t.Fatalf("golden resume diverged: got %+v want %+v", got, ref)
	}
}

func TestRestoreRejectsBadImages(t *testing.T) {
	img := captureImage(t)
	var bad *BadImageError
	var verr *ImageVersionError

	for _, cut := range []int{0, 4, 8, len(img) / 3, len(img) - 1} {
		if err := New(ckConfig()).Restore(img[:cut]); !errors.As(err, &bad) {
			t.Fatalf("truncated at %d: got %v, want *BadImageError", cut, err)
		}
	}
	flip := append([]byte(nil), img...)
	flip[len(flip)/2] ^= 0x10
	if err := New(ckConfig()).Restore(flip); !errors.As(err, &bad) {
		t.Fatalf("corrupt: got %v, want *BadImageError", err)
	}
	// Forward-compat: a version bump fails closed with the typed error.
	futur := append([]byte(nil), img...)
	futur[4] = CheckpointVersion + 1
	fixImageCRC(futur)
	err := New(ckConfig()).Restore(futur)
	if !errors.As(err, &verr) || verr.Version != CheckpointVersion+1 {
		t.Fatalf("future version: got %v, want *ImageVersionError{Version: %d}", err, CheckpointVersion+1)
	}
}

func TestRestoreRejectsConfigMismatch(t *testing.T) {
	img := captureImage(t)
	var mm *ImageMismatchError

	cfg := ckConfig()
	cfg.CPUsPerNode = 7
	if err := New(cfg).Restore(img); !errors.As(err, &mm) || mm.Field != "CPUs per node" {
		t.Fatalf("cpu mismatch: got %v", err)
	}
	cfg = ckConfig()
	cfg.Nodes = 3
	if err := New(cfg).Restore(img); !errors.As(err, &mm) || mm.Field != "node count" {
		t.Fatalf("node mismatch: got %v", err)
	}
	cfg = ckConfig()
	cfg.Cost = DefaultCostModel()
	cfg.Cost.PageCompare++
	if err := New(cfg).Restore(img); !errors.As(err, &mm) || mm.Field != "cost model" {
		t.Fatalf("cost mismatch: got %v", err)
	}
}

// Multi-node machines carry residency caches, per-node pools and traffic
// counters through the image.
func TestCheckpointResumeMultiNode(t *testing.T) {
	cfg := Config{Nodes: 3, CPUsPerNode: 2, MergeWorkers: 1}
	prog := func(start int, onBarrier func(env *Env, next int) bool) Prog {
		return func(env *Env) {
			if start == 0 {
				env.SetPerm(ckBase, ckSize, vm.PermRW)
			}
			for p := start; p < ckPhases; p++ {
				env.Tick(10)
				ref := ChildOn(p%3, 1)
				if err := env.Put(ref, PutOpts{
					Regs:  &Regs{Entry: ckChild(p), Arg: uint64(p)},
					Copy:  &CopyRange{Src: ckBase, Dst: ckBase, Size: ckSize},
					Snap:  true,
					Start: true,
				}); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if _, err := env.Get(ref, GetOpts{Merge: true,
					MergeRange: &Range{Addr: ckBase, Size: ckSize}}); err != nil {
					t.Errorf("get: %v", err)
					return
				}
				if onBarrier != nil && !onBarrier(env, p+1) {
					return
				}
			}
			ckResult(env)
		}
	}
	want := New(cfg).Run(prog(0, nil), 0)
	if want.Err != nil {
		t.Fatal(want.Err)
	}
	if want.Net.Msgs == 0 {
		t.Fatal("test expects cross-node traffic")
	}
	for stop := 1; stop < ckPhases; stop++ {
		var img []byte
		if res := New(cfg).Run(prog(0, func(env *Env, next int) bool {
			if next != stop {
				return true
			}
			var err error
			img, err = env.Checkpoint(CheckpointOpts{})
			if err != nil {
				t.Errorf("checkpoint: %v", err)
			}
			return false
		}), 0); res.Err != nil {
			t.Fatal(res.Err)
		}
		m := New(cfg)
		if err := m.Restore(img); err != nil {
			t.Fatalf("restore: %v", err)
		}
		got := m.Run(prog(stop, nil), 0)
		if got.Ret != want.Ret || got.VT != want.VT || got.Net != want.Net {
			t.Fatalf("multi-node resume at %d diverged:\n got %+v\nwant %+v", stop, got, want)
		}
	}
}

func fixImageCRC(img []byte) {
	payload := img[:len(img)-4]
	binary.LittleEndian.PutUint32(img[len(img)-4:], crc32.ChecksumIEEE(payload))
}
