package kernel

import (
	"errors"
	"testing"

	"repro/internal/vm"
)

// Coverage of the remaining Put/Get option combinations of Table 2.

func TestPutZeroOption(t *testing.T) {
	runRoot(t, func(env *Env) {
		// Seed the child with data, then Zero a page of it from outside.
		if err := env.Put(1, PutOpts{
			Regs: &Regs{Entry: func(c *Env) {
				c.SetPerm(0, 2*vm.PageSize, vm.PermRW)
				c.Write(0, []byte("page0"))
				c.Write(vm.PageSize, []byte("page1"))
				c.Ret()
				// After resume, page0 must be zeroed, page1 intact.
				var b [5]byte
				c.Read(0, b[:])
				if b != [5]byte{} {
					panic("zero option did not clear page0")
				}
				c.Read(vm.PageSize, b[:])
				if string(b[:]) != "page1" {
					panic("zero option clobbered page1")
				}
			}},
			Start: true,
		}); err != nil {
			panic(err)
		}
		if _, err := env.Get(1, GetOpts{}); err != nil {
			panic(err)
		}
		if err := env.Put(1, PutOpts{
			Zero:  &PermRange{Range: Range{Addr: 0, Size: vm.PageSize}, Perm: vm.PermRW},
			Start: true,
		}); err != nil {
			panic(err)
		}
		info, err := env.Get(1, GetOpts{})
		if err != nil {
			panic(err)
		}
		if info.Status != StatusHalted {
			panic("child failed: " + info.Status.String())
		}
	})
}

func TestPutPermOptionMakesChildRangeReadOnly(t *testing.T) {
	runRoot(t, func(env *Env) {
		if err := env.Put(1, PutOpts{
			Regs: &Regs{Entry: func(c *Env) {
				c.SetPerm(0, vm.PageSize, vm.PermRW)
				c.WriteU32(0, 1)
				c.Ret()
				c.WriteU32(0, 2) // parent made this read-only: faults
			}},
			Start: true,
		}); err != nil {
			panic(err)
		}
		if _, err := env.Get(1, GetOpts{}); err != nil {
			panic(err)
		}
		if err := env.Put(1, PutOpts{
			Perm:  &PermRange{Range: Range{Addr: 0, Size: vm.PageSize}, Perm: vm.PermR},
			Start: true,
		}); err != nil {
			panic(err)
		}
		info, err := env.Get(1, GetOpts{})
		if err != nil {
			panic(err)
		}
		if info.Status != StatusFault {
			panic("write through revoked permission did not fault")
		}
	})
}

func TestGetZeroAndPermApplyToParent(t *testing.T) {
	runRoot(t, func(env *Env) {
		env.SetPerm(0, vm.PageSize, vm.PermRW)
		env.Write(0, []byte("parent"))
		if err := env.Put(1, PutOpts{Regs: &Regs{Entry: func(c *Env) {}}, Start: true}); err != nil {
			panic(err)
		}
		// Get with Zero: zero-fills the PARENT's range.
		if _, err := env.Get(1, GetOpts{
			Zero: &PermRange{Range: Range{Addr: 0, Size: vm.PageSize}, Perm: vm.PermRW},
		}); err != nil {
			panic(err)
		}
		var b [6]byte
		env.Read(0, b[:])
		if b != [6]byte{} {
			panic("Get Zero did not clear parent memory")
		}
		// Get with Perm: adjusts the PARENT's permissions.
		if _, err := env.Get(1, GetOpts{
			Perm: &PermRange{Range: Range{Addr: 0, Size: vm.PageSize}, Perm: vm.PermR},
		}); err != nil {
			panic(err)
		}
		env.Read(0, b[:]) // reading still fine
		env.SetPerm(0, vm.PageSize, vm.PermRW)
	})
}

func TestGetTreeClonesIntoSibling(t *testing.T) {
	runRoot(t, func(env *Env) {
		if err := env.Put(1, PutOpts{
			Regs: &Regs{Entry: func(c *Env) {
				c.SetPerm(0, vm.PageSize, vm.PermRW)
				c.WriteU32(0, 123)
			}},
			Start: true,
		}); err != nil {
			panic(err)
		}
		// Get with Tree: copy child 1's subtree into child 2.
		if _, err := env.Get(1, GetOpts{Tree: true, TreeDst: 2}); err != nil {
			panic(err)
		}
		if _, err := env.Get(2, GetOpts{Copy: &CopyRange{0, 0, vm.PageSize}}); err != nil {
			panic(err)
		}
		env.SetPerm(0, vm.PageSize, vm.PermRW)
		if env.ReadU32(0) != 123 {
			panic("Get Tree did not clone the sibling")
		}
	})
}

func TestCombinedOptionsSingleCall(t *testing.T) {
	// The paper's point about Table 2: one Put can initialize registers,
	// copy memory, set permissions, snapshot, and start — all at once.
	runRoot(t, func(env *Env) {
		env.SetPerm(0, 2*vm.PageSize, vm.PermRW)
		env.Write(0, []byte("combined"))
		if err := env.Put(1, PutOpts{
			Regs: &Regs{Entry: func(c *Env) {
				var b [8]byte
				c.Read(0, b[:])
				if string(b[:]) != "combined" {
					panic("copy did not arrive")
				}
				c.Write(vm.PageSize, []byte("resp"))
			}},
			Copy:  &CopyRange{0, 0, 2 * vm.PageSize},
			Perm:  &PermRange{Range: Range{Addr: 0, Size: vm.PageSize}, Perm: vm.PermR},
			Snap:  true,
			Start: true,
		}); err != nil {
			panic(err)
		}
		if _, err := env.Get(1, GetOpts{Merge: true}); err != nil {
			panic(err)
		}
		var b [4]byte
		env.Read(vm.PageSize, b[:])
		if string(b[:]) != "resp" {
			panic("merged response missing")
		}
	})
}

func TestChildRefHomeAliasing(t *testing.T) {
	// Node field 0 means "my home node", so ref idx and ChildOn(home, idx)
	// must name the same child.
	m := New(Config{Nodes: 2})
	res := m.Run(func(env *Env) {
		if err := env.Put(5, PutOpts{
			Regs:  &Regs{Entry: func(c *Env) { c.SetRet(99) }},
			Start: true,
		}); err != nil {
			panic(err)
		}
		// Home of the root is node 0, so ChildOn(0, 5) aliases ref 5.
		info, err := env.Get(ChildOn(0, 5), GetOpts{Regs: true})
		if err != nil {
			panic(err)
		}
		if info.Regs.Ret != 99 {
			panic("ChildOn(home) did not alias the plain child ref")
		}
	}, 0)
	if res.Status != StatusHalted {
		t.Fatalf("%v: %v", res.Status, res.Err)
	}
}

func TestHaltStopsSpace(t *testing.T) {
	runRoot(t, func(env *Env) {
		if err := env.Put(1, PutOpts{
			Regs: &Regs{Entry: func(c *Env) {
				c.SetRet(1)
				c.Halt()
				c.SetRet(2) // unreachable
			}},
			Start: true,
		}); err != nil {
			panic(err)
		}
		info, err := env.Get(1, GetOpts{Regs: true})
		if err != nil {
			panic(err)
		}
		if info.Status != StatusHalted || info.Regs.Ret != 1 {
			panic("Halt did not stop the space cleanly")
		}
	})
}

func TestMergeRangeLimitsScope(t *testing.T) {
	runRoot(t, func(env *Env) {
		env.SetPerm(0, 2*vm.PageSize, vm.PermRW)
		if err := env.Put(1, PutOpts{
			Regs: &Regs{Entry: func(c *Env) {
				c.Write(0, []byte("in"))            // inside merge range
				c.Write(vm.PageSize, []byte("out")) // outside
			}},
			CopyAll: true,
			Snap:    true,
			Start:   true,
		}); err != nil {
			panic(err)
		}
		if _, err := env.Get(1, GetOpts{
			Merge:      true,
			MergeRange: &Range{Addr: 0, Size: vm.PageSize},
		}); err != nil {
			panic(err)
		}
		var b [3]byte
		env.Read(0, b[:])
		if string(b[:2]) != "in" {
			panic("in-range write not merged")
		}
		env.Read(vm.PageSize, b[:])
		if string(b[:]) == "out" {
			panic("out-of-range write leaked through MergeRange")
		}
	})
}

func TestUnalignedRangesRejected(t *testing.T) {
	runRoot(t, func(env *Env) {
		err := env.Put(1, PutOpts{Copy: &CopyRange{Src: 1, Dst: 0, Size: vm.PageSize}})
		var ke *KernelError
		if !errors.As(err, &ke) {
			panic("unaligned copy accepted")
		}
	})
}

func TestInsnCountVisible(t *testing.T) {
	runRoot(t, func(env *Env) {
		before := env.Insns()
		env.Tick(500)
		if env.Insns()-before != 500 {
			panic("Insns() does not track ticks")
		}
		if env.VT() < 500 {
			panic("VT below instruction count")
		}
	})
}

func TestPutGetCopiesMultipleRanges(t *testing.T) {
	// Copies ships several disjoint regions in one Put (the fork idiom
	// for a thread that carries both a shared region and an FS image),
	// and collects them with one Get.
	const (
		regA vm.Addr = 0
		regB vm.Addr = 0x0100_0000
		back vm.Addr = 0x0200_0000
	)
	runRoot(t, func(env *Env) {
		env.SetPerm(regA, vm.PageSize, vm.PermRW)
		env.SetPerm(regB, vm.PageSize, vm.PermRW)
		env.Write(regA, []byte("alpha"))
		env.Write(regB, []byte("beta"))
		if err := env.Put(1, PutOpts{
			Regs: &Regs{Entry: func(c *Env) {
				var a, b [5]byte
				c.Read(regA, a[:])
				c.Read(regB, b[:])
				if string(a[:]) != "alpha" || string(b[:4]) != "beta" {
					panic("Copies did not ship both ranges")
				}
				c.Write(regA, []byte("ALPHA"))
				c.Write(regB, []byte("BETA!"))
			}},
			Copies: []CopyRange{
				{Src: regA, Dst: regA, Size: vm.PageSize},
				{Src: regB, Dst: regB, Size: vm.PageSize},
			},
			Start: true,
		}); err != nil {
			panic(err)
		}
		env.SetPerm(back, 2*vm.PageSize, vm.PermRW)
		if _, err := env.Get(1, GetOpts{
			Copies: []CopyRange{
				{Src: regA, Dst: back, Size: vm.PageSize},
				{Src: regB, Dst: back + vm.PageSize, Size: vm.PageSize},
			},
		}); err != nil {
			panic(err)
		}
		var a, b [5]byte
		env.Read(back, a[:])
		env.Read(back+vm.PageSize, b[:])
		if string(a[:]) != "ALPHA" || string(b[:]) != "BETA!" {
			panic("Get Copies did not collect both ranges")
		}
		// The parent's own copies of the regions are untouched.
		env.Read(regA, a[:])
		if string(a[:]) != "alpha" {
			panic("child write leaked into parent range")
		}
	})
}
