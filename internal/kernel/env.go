package kernel

import (
	"repro/internal/vm"
)

// Env is a space's execution environment: its private memory, instruction
// accounting, and the three system calls. It is the only capability user
// code receives, which is what lets the kernel enforce determinism even on
// adversarial programs — there is nothing else to reach for.
//
// Memory accessors fault (terminating the space with StatusFault) on
// access violations, mirroring processor traps; they do not return errors.
// Each accessor also advances the instruction counter by one tick per
// eight bytes touched, so memory-bound work is charged to virtual time
// without manual ticking.
type Env struct {
	sp *Space
}

// --- identity and registers -------------------------------------------------

// Arg returns the argument word loaded into this space's registers.
func (e *Env) Arg() uint64 { return e.sp.regs.Arg }

// SetRet stores a result word in this space's registers, where the parent
// can read it with Get(Regs) — the EAX-on-exit convention.
func (e *Env) SetRet(v uint64) { e.sp.regs.Ret = v }

// IsRoot reports whether this is the root space (the only space with
// device access).
func (e *Env) IsRoot() bool { return e.sp.parent == nil }

// NodeID reports the cluster node the space currently executes on.
func (e *Env) NodeID() int { return e.sp.node.id }

// HomeNodeID reports the node the space was created on.
func (e *Env) HomeNodeID() int { return e.sp.home.id }

// Nodes reports the cluster size.
func (e *Env) Nodes() int { return len(e.sp.m.nodes) }

// Insns returns the number of instructions this space has executed.
func (e *Env) Insns() int64 { return e.sp.insns }

// VT returns the space's virtual clock. The value is deterministic (it
// depends only on program behaviour and the cost model), so exposing it
// does not break determinism; the evaluation harness reads it through the
// root space.
func (e *Env) VT() int64 { return e.sp.vt }

// NetStats reports the cross-node protocol traffic this space has
// initiated so far — deterministic for the same reason VT is. The
// cluster experiments read it through the collector to show the sharded
// barrier tree cutting the root's message count from O(threads) to
// O(nodes).
func (e *Env) NetStats() NetStats { return e.sp.net }

// --- instruction accounting --------------------------------------------------

// Tick advances the instruction counter by n, modelling n instructions of
// computation. If an instruction limit is armed and the counter crosses
// it, the space traps back to its parent (StatusInsnLimit) and resumes
// here when restarted.
func (e *Env) Tick(n int64) {
	sp := e.sp
	sp.insns += n
	sp.vt += n
	if sp.limit > 0 && sp.insns >= sp.limit && sp.critical == 0 {
		sp.park(StatusInsnLimit)
	}
}

// NoPreempt runs f with instruction-limit preemption suppressed, then
// re-checks the limit. The deterministic scheduler uses it to make
// synchronization primitives atomic with respect to quantum expiry (the
// paper's kernel achieves this by resuming preempted primitives inside
// the master space; with native code we instead exclude the preemption
// point, which is equivalent because preemption can only happen at ticks).
func (e *Env) NoPreempt(f func()) {
	sp := e.sp
	sp.critical++
	defer func() {
		sp.critical--
		if sp.critical == 0 && sp.limit > 0 && sp.insns >= sp.limit {
			sp.park(StatusInsnLimit)
		}
	}()
	f()
}

// --- system calls -------------------------------------------------------------

// Put performs state operations on a child space and optionally starts it
// (Table 1/2). It blocks until the child is stopped.
func (e *Env) Put(ref uint64, o PutOpts) error { return e.sp.put(ref, o) }

// Get performs state operations that move child state toward the parent,
// blocking until the child is stopped. A merge conflict is returned as a
// *vm.MergeConflictError.
func (e *Env) Get(ref uint64, o GetOpts) (ChildInfo, error) { return e.sp.get(ref, o) }

// WaitChildren blocks until every named child that exists has stopped,
// overlapping the waits on a bounded worker pool (workers <= 0 selects
// GOMAXPROCS). It is a pure host-level optimization for collectors about
// to Get many children in a fixed order: no state moves, no virtual time
// is charged, and results are identical with or without the call — and at
// any worker count — the subsequent Gets simply find their rendezvous
// already satisfied instead of each blocking in turn.
func (e *Env) WaitChildren(refs []uint64, workers int) { e.sp.waitChildren(refs, workers) }

// Ret stops the calling space and returns control to its parent; the
// space resumes here when the parent next issues a Put with Start.
func (e *Env) Ret() {
	e.sp.chargeVT(e.sp.m.cost.Syscall)
	e.sp.park(StatusRet)
}

// Halt stops the calling space permanently by unwinding its program.
func (e *Env) Halt() { panic(haltSignal{}) }

type haltSignal struct{}

// --- memory -------------------------------------------------------------------

func (e *Env) memTick(bytes int) { e.Tick(int64(bytes+7) / 8) }

func (e *Env) fault(err error) {
	if err == nil {
		return
	}
	panic(err)
}

// Read copies memory from the space into p, faulting on access violations.
func (e *Env) Read(addr vm.Addr, p []byte) {
	e.memTick(len(p))
	e.sp.touchPages(addr, len(p), false)
	e.fault(e.sp.mem.Read(addr, p))
}

// Write copies p into the space's memory, faulting on access violations.
func (e *Env) Write(addr vm.Addr, p []byte) {
	e.memTick(len(p))
	e.sp.touchPages(addr, len(p), true)
	e.fault(e.sp.mem.Write(addr, p))
}

// ReadU32 loads a little-endian uint32.
func (e *Env) ReadU32(addr vm.Addr) uint32 {
	e.memTick(4)
	e.sp.touchPages(addr, 4, false)
	v, err := e.sp.mem.ReadU32(addr)
	e.fault(err)
	return v
}

// WriteU32 stores a little-endian uint32.
func (e *Env) WriteU32(addr vm.Addr, v uint32) {
	e.memTick(4)
	e.sp.touchPages(addr, 4, true)
	e.fault(e.sp.mem.WriteU32(addr, v))
}

// ReadU64 loads a little-endian uint64.
func (e *Env) ReadU64(addr vm.Addr) uint64 {
	e.memTick(8)
	e.sp.touchPages(addr, 8, false)
	v, err := e.sp.mem.ReadU64(addr)
	e.fault(err)
	return v
}

// WriteU64 stores a little-endian uint64.
func (e *Env) WriteU64(addr vm.Addr, v uint64) {
	e.memTick(8)
	e.sp.touchPages(addr, 8, true)
	e.fault(e.sp.mem.WriteU64(addr, v))
}

// ReadF64 loads a float64.
func (e *Env) ReadF64(addr vm.Addr) float64 {
	e.memTick(8)
	e.sp.touchPages(addr, 8, false)
	v, err := e.sp.mem.ReadF64(addr)
	e.fault(err)
	return v
}

// WriteF64 stores a float64.
func (e *Env) WriteF64(addr vm.Addr, v float64) {
	e.memTick(8)
	e.sp.touchPages(addr, 8, true)
	e.fault(e.sp.mem.WriteF64(addr, v))
}

// ReadU32s bulk-loads little-endian uint32s.
func (e *Env) ReadU32s(addr vm.Addr, dst []uint32) {
	e.memTick(4 * len(dst))
	e.sp.touchPages(addr, 4*len(dst), false)
	e.fault(e.sp.mem.ReadU32s(addr, dst))
}

// WriteU32s bulk-stores little-endian uint32s.
func (e *Env) WriteU32s(addr vm.Addr, src []uint32) {
	e.memTick(4 * len(src))
	e.sp.touchPages(addr, 4*len(src), true)
	e.fault(e.sp.mem.WriteU32s(addr, src))
}

// ReadF64s bulk-loads float64s.
func (e *Env) ReadF64s(addr vm.Addr, dst []float64) {
	e.memTick(8 * len(dst))
	e.sp.touchPages(addr, 8*len(dst), false)
	e.fault(e.sp.mem.ReadF64s(addr, dst))
}

// WriteF64s bulk-stores float64s.
func (e *Env) WriteF64s(addr vm.Addr, src []float64) {
	e.memTick(8 * len(src))
	e.sp.touchPages(addr, 8*len(src), true)
	e.fault(e.sp.mem.WriteF64s(addr, src))
}

// SetPerm adjusts page permissions within the space's own memory: the
// analogue of the runtime's self-management of its address space layout.
func (e *Env) SetPerm(addr vm.Addr, size uint64, perm vm.Perm) {
	e.fault(e.sp.mem.SetPerm(addr, size, perm))
}

// Zero zero-fills a page-aligned range of the space's own memory.
func (e *Env) Zero(addr vm.Addr, size uint64, perm vm.Perm) {
	e.fault(e.sp.mem.Zero(addr, size, perm))
}

// --- devices (root space only, §3.1) -------------------------------------------

func (e *Env) requireRoot(op string) {
	if !e.IsRoot() {
		panic(kerr(op, "device access from non-root space"))
	}
}

// ConsoleRead reads available console input (root only). It returns 0
// when no input is pending; the caller decides how to wait.
func (e *Env) ConsoleRead(p []byte) int {
	e.requireRoot("console-read")
	n := e.sp.m.console.read(p)
	e.sp.m.devConsole += int64(n)
	return n
}

// ConsoleWrite writes console output (root only).
func (e *Env) ConsoleWrite(p []byte) {
	e.requireRoot("console-write")
	e.sp.m.console.write(p)
}

// ClockNow reads the machine's clock device (root only): an explicit
// nondeterministic input in the sense of §2.1.
func (e *Env) ClockNow() int64 {
	e.requireRoot("clock")
	e.sp.m.devClock++
	return e.sp.m.clock()
}

// RandUint64 reads the machine's entropy device (root only).
func (e *Env) RandUint64() uint64 {
	e.requireRoot("rand")
	e.sp.m.devRand++
	return e.sp.m.rand()
}
