package kernel

import (
	"testing"

	"repro/internal/vm"
)

// Cluster-behaviour tests beyond the basic migration cost checks.

func TestRemoteGrandchildren(t *testing.T) {
	// A child created on a remote node forks its own children there;
	// results must flow back through two hierarchy levels and two nodes.
	m := New(Config{Nodes: 3})
	res := m.Run(func(env *Env) {
		if err := env.Put(ChildOn(2, 1), PutOpts{
			Regs: &Regs{Entry: func(c *Env) {
				if c.HomeNodeID() != 2 {
					panic("child not created on node 2")
				}
				// Fork grandchildren on the child's own node and on node 1.
				for i, node := range []int{2, 1} {
					i, node := uint64(i+1), node
					if err := c.Put(ChildOn(node, i), PutOpts{
						Regs:  &Regs{Entry: func(g *Env) { g.SetRet(g.Arg() * 3) }, Arg: i},
						Start: true,
					}); err != nil {
						panic(err)
					}
				}
				var sum uint64
				for i, node := range []int{2, 1} {
					info, err := c.Get(ChildOn(node, uint64(i+1)), GetOpts{Regs: true})
					if err != nil {
						panic(err)
					}
					sum += info.Regs.Ret
				}
				c.SetRet(sum)
			}},
			Start: true,
		}); err != nil {
			panic(err)
		}
		info, err := env.Get(ChildOn(2, 1), GetOpts{Regs: true})
		if err != nil {
			panic(err)
		}
		if info.Regs.Ret != 3+6 {
			panic("grandchild results wrong across nodes")
		}
	}, 0)
	if res.Status != StatusHalted {
		t.Fatalf("%v: %v", res.Status, res.Err)
	}
}

func TestMigrationPreservesMemoryContents(t *testing.T) {
	// Migration is a cost-model event; contents must be bit-identical
	// wherever the space runs.
	m := New(Config{Nodes: 4})
	res := m.Run(func(env *Env) {
		env.SetPerm(0, 4*vm.PageSize, vm.PermRW)
		data := make([]uint32, 4096)
		for i := range data {
			data[i] = uint32(i * 13)
		}
		env.WriteU32s(0, data)
		// Bounce across every node by touching a child on each.
		for n := 0; n < 4; n++ {
			ref := ChildOn(n, 1)
			if err := env.Put(ref, PutOpts{
				Regs:  &Regs{Entry: func(c *Env) {}},
				Start: true,
			}); err != nil {
				panic(err)
			}
			if _, err := env.Get(ref, GetOpts{}); err != nil {
				panic(err)
			}
			got := make([]uint32, 4096)
			env.ReadU32s(0, got)
			for i := range got {
				if got[i] != data[i] {
					panic("memory changed across migration")
				}
			}
		}
	}, 0)
	if res.Status != StatusHalted {
		t.Fatalf("%v: %v", res.Status, res.Err)
	}
}

func TestDistributedResultEqualsLocal(t *testing.T) {
	// The same merge-heavy program on 1 node and on 4 nodes: identical
	// memory outcome (distribution is semantically transparent, §3.3).
	prog := func(nodes int) Prog {
		return func(env *Env) {
			env.SetPerm(0, vm.PageSize, vm.PermRW)
			for i := 0; i < 4; i++ {
				i := i
				ref := uint64(i + 1)
				if nodes > 1 {
					ref = ChildOn(i%nodes, uint64(i+1))
				}
				if err := env.Put(ref, PutOpts{
					Regs: &Regs{Entry: func(c *Env) {
						c.WriteU32(vm.Addr(4*i), uint32(i+100))
					}},
					CopyAll: true,
					Snap:    true,
					Start:   true,
				}); err != nil {
					panic(err)
				}
			}
			var sig uint64
			for i := 0; i < 4; i++ {
				ref := uint64(i + 1)
				if nodes > 1 {
					ref = ChildOn(i%nodes, uint64(i+1))
				}
				if _, err := env.Get(ref, GetOpts{Merge: true}); err != nil {
					panic(err)
				}
			}
			for i := 0; i < 4; i++ {
				sig = sig*31 + uint64(env.ReadU32(vm.Addr(4*i)))
			}
			env.SetRet(sig)
		}
	}
	r1 := New(Config{Nodes: 1}).Run(prog(1), 0)
	r4 := New(Config{Nodes: 4}).Run(prog(4), 0)
	if r1.Status != StatusHalted || r4.Status != StatusHalted {
		t.Fatalf("%v/%v", r1.Err, r4.Err)
	}
	if r1.Ret != r4.Ret {
		t.Errorf("distribution changed results: %d vs %d", r1.Ret, r4.Ret)
	}
	if r4.VT <= r1.VT {
		t.Errorf("distribution should cost time: %d vs %d", r4.VT, r1.VT)
	}
}

func TestNodesAccessor(t *testing.T) {
	if got := New(Config{Nodes: 7}).Nodes(); got != 7 {
		t.Errorf("Nodes() = %d, want 7", got)
	}
	if got := New(Config{}).Nodes(); got != 1 {
		t.Errorf("default Nodes() = %d, want 1", got)
	}
}

func TestFixedClockDevice(t *testing.T) {
	m := New(Config{Clock: FixedClock(10, 20, 30)})
	res := m.Run(func(env *Env) {
		a, b, c, d := env.ClockNow(), env.ClockNow(), env.ClockNow(), env.ClockNow()
		if a != 10 || b != 20 || c != 30 || d != 30 {
			panic("fixed clock sequence wrong")
		}
	}, 0)
	if res.Status != StatusHalted {
		t.Fatalf("%v: %v", res.Status, res.Err)
	}
}
