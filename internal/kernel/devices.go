package kernel

import (
	"io"
	"sync"
)

// Console is the machine's console device. Only the root space can reach
// it; every other space sees console I/O as file-system state propagated
// through the space hierarchy (§4.3). Input is non-blocking at the device
// level: read returns what is available now, modelling an input FIFO.
type Console struct {
	mu  sync.Mutex
	in  io.Reader
	out io.Writer
	buf []byte
	eof bool
}

// NewConsole builds a console over the given reader and writer; either
// may be nil (no input / discard output).
func NewConsole(in io.Reader, out io.Writer) *Console {
	return &Console{in: in, out: out}
}

func (c *Console) read(p []byte) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.buf) == 0 && c.in != nil && !c.eof {
		tmp := make([]byte, 4096)
		n, err := c.in.Read(tmp)
		c.buf = append(c.buf, tmp[:n]...)
		if err != nil {
			c.eof = true
		}
	}
	n := copy(p, c.buf)
	c.buf = c.buf[n:]
	return n
}

func (c *Console) write(p []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.out != nil {
		c.out.Write(p)
	}
}

// ClockFunc produces clock-device readings: an explicit nondeterministic
// input (§2.1) that a supervising layer can log, replay or synthesize.
type ClockFunc func() int64

// LogicalClock returns a deterministic clock that advances by one per
// reading — the "synthesized input" case.
func LogicalClock() ClockFunc {
	var mu sync.Mutex
	var t int64
	return func() int64 {
		mu.Lock()
		defer mu.Unlock()
		t++
		return t
	}
}

// FixedClock returns a clock that replays the given readings, then keeps
// returning the last one — the replay case.
func FixedClock(readings ...int64) ClockFunc {
	var mu sync.Mutex
	i := 0
	return func() int64 {
		mu.Lock()
		defer mu.Unlock()
		if len(readings) == 0 {
			return 0
		}
		r := readings[min(i, len(readings)-1)]
		i++
		return r
	}
}

// RandFunc produces entropy-device readings.
type RandFunc func() uint64

// SeededRand returns a deterministic xorshift generator — entropy as an
// explicit, replayable input rather than ambient nondeterminism.
func SeededRand(seed uint64) RandFunc {
	var mu sync.Mutex
	s := seed
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	return func() uint64 {
		mu.Lock()
		defer mu.Unlock()
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
