package kernel

import (
	"runtime"

	"repro/internal/vm"
)

// Range names a page-aligned span of virtual memory.
type Range struct {
	Addr vm.Addr
	Size uint64
}

// CopyRange names a source and destination span for the Copy option.
// On Put, Src is in the parent and Dst in the child; on Get, Src is in the
// child and Dst in the parent.
type CopyRange struct {
	Src  vm.Addr
	Dst  vm.Addr
	Size uint64
}

// PermRange names a span and the permissions to apply (the Perm option).
type PermRange struct {
	Range
	Perm vm.Perm
}

// PutOpts selects the operations a Put performs on a child (Table 2 of the
// paper). Options combine freely; they apply in the order Regs, Zero,
// Copy/CopyAll, Perm, Snap, Tree, Start.
type PutOpts struct {
	// Regs loads the child's register state. If the child has a parked
	// execution and Regs.Entry is non-nil, the parked execution is
	// discarded (the instruction pointer was overwritten).
	Regs *Regs
	// Zero zero-fills a range of the child's memory.
	Zero *PermRange
	// Copy copies a parent range into the child copy-on-write.
	Copy *CopyRange
	// Copies applies additional parent→child range copies after Copy:
	// the multi-region fork idiom (e.g. shipping a thread's shared
	// region and its chained file-system image in one Put). Ranges are
	// applied in order, each copy-on-write like Copy.
	Copies []CopyRange
	// CopyAll copies the parent's entire address space into the child:
	// the fork idiom ("one Put call copies the parent's memory state").
	CopyAll bool
	// Perm sets page permissions on a child range.
	Perm *PermRange
	// Snap saves a snapshot of the child's post-copy memory as the
	// reference for a later Get with Merge. The kernel maintains the
	// snapshot incrementally: when the child's existing snapshot is
	// provably its most recent one, only the level-2 tables the child
	// (or this Put's Copy) touched since are re-shared and charged, so
	// re-snapshotting an unchanged child is free. The resulting snapshot
	// is identical — table for table — to one built from scratch.
	Snap bool
	// SnapFresh forces Snap to discard any existing snapshot and rebuild
	// from scratch, re-sharing (and charging) every mapped table: the
	// pre-incremental behavior, kept as a benchmarking baseline and
	// ablation. Results are identical; only cost and churn differ.
	SnapFresh bool
	// Tree deep-copies the subtree rooted at the caller's child TreeSrc
	// (memory, registers, snapshots and recursively all children) into
	// this child, which must be stopped — the checkpoint/restore idiom.
	Tree    bool
	TreeSrc uint64
	// Start sets the child executing after the state operations.
	Start bool
	// Limit arms an instruction limit when starting: the child traps back
	// to the parent after executing this many instructions (0 = none).
	Limit int64
}

// GetOpts selects the operations a Get performs (Table 2). Ranges in Zero
// and Perm refer to the parent's own memory (Get moves state toward the
// parent). Options apply in the order Regs, Zero, Copy/CopyAll, Merge,
// Perm, Tree.
type GetOpts struct {
	// Regs copies the child's register state out (into ChildInfo.Regs).
	Regs bool
	// Zero zero-fills a range of the parent's memory.
	Zero *PermRange
	// Copy copies a child range into the parent copy-on-write.
	Copy *CopyRange
	// Copies applies additional child→parent range copies after Copy,
	// in order — the collector-side pair of PutOpts.Copies.
	Copies []CopyRange
	// CopyAll copies the child's entire address space into the parent
	// (the exec idiom: "this Get returns into the new program").
	CopyAll bool
	// Merge folds the child's changes since its last snapshot into the
	// parent, detecting write/write conflicts (§3.2). MergeRange limits
	// the span; nil merges the whole address space.
	Merge      bool
	MergeRange *Range
	// MergeLWW resolves write/write conflicts in favour of the merging
	// child (vm.MergeLastWriter) instead of raising an error; used by the
	// deterministic scheduler's quantum commits (§4.5).
	MergeLWW bool
	// Perm sets page permissions on a parent range.
	Perm *PermRange
	// Tree deep-copies this child's subtree into the caller's child
	// TreeDst, which must be stopped.
	Tree    bool
	TreeDst uint64
}

// ChildInfo reports a child's state at the rendezvous point of a Get/Put.
type ChildInfo struct {
	Status Status
	Err    error // trap cause for StatusFault/StatusExcept
	Regs   Regs  // child registers, if GetOpts.Regs was set
	Insns  int64 // instructions the child has executed
	// Merge reports the reconciliation work done when GetOpts.Merge was
	// set: the same deterministic statistics the cost model charges, so
	// collectors (the deterministic scheduler's telemetry, the bench
	// harness) can observe join volume without a second walk.
	Merge vm.MergeStats
	// MemClean reports, when GetOpts.Merge ran, that the child's memory
	// is provably unchanged since its reference snapshot (the cheap
	// vm.CleanSince proof). A clean child contributed nothing to the
	// merge and its snapshot is still exact; collectors use this to skip
	// redundant resynchronization. False means only "no proof".
	MemClean bool
	// MergeTouched marks, when GetOpts.Merge ran, the level-1 tables of
	// the parent the merge modified. Like the Merge statistics the bits
	// are deterministic — invariant across merge workers and kernels —
	// so collectors can bump per-table sync epochs from them instead of
	// invalidating the whole shared region on every commit.
	MergeTouched vm.TableBits
}

// lookupChild finds or creates the child named by ref, migrating the
// caller to the child's node first (§3.3: the kernel migrates the calling
// space to the node named in the child number's node field, then interacts
// with the child locally).
func (sp *Space) lookupChild(op string, ref uint64) (*Space, error) {
	node, idx, err := sp.splitChildRef(ref)
	if err != nil {
		return nil, err
	}
	sp.migrate(node)
	key := uint64(node.id+1)<<nodeShift | idx
	child := sp.children[key]
	if child == nil {
		child = newSpace(sp.m, sp, key, node)
		sp.inheritResidency(child)
		if sp.children == nil {
			sp.children = make(map[uint64]*Space)
		}
		sp.children[key] = child
	}
	return child, nil
}

// copyList flattens the single Copy option and the Copies list into one
// ordered sequence of ranges to apply.
func copyList(first *CopyRange, rest []CopyRange) []CopyRange {
	if first == nil {
		return rest
	}
	return append([]CopyRange{*first}, rest...)
}

// rendezvous blocks until the child stops, finalizes its virtual-time
// segment, and synchronizes the parent's clock with it. Time the caller
// spends waiting here counts as blocked, not as CPU occupancy.
func (sp *Space) rendezvous(child *Space) {
	child.waitStopped()
	sp.collect(child)
	if child.status != StatusNever && child.vt > sp.vt {
		sp.segBlocked += child.vt - sp.vt
		sp.vt = child.vt
	}
}

// put implements the Put system call for sp as the caller.
func (sp *Space) put(ref uint64, o PutOpts) error {
	cost := sp.m.cost
	sp.chargeVT(cost.Syscall)
	child, err := sp.lookupChild("put", ref)
	if err != nil {
		return err
	}
	sp.rendezvous(child)

	if o.Regs != nil {
		if o.Regs.Entry != nil {
			// New instruction pointer: any parked execution is discarded.
			child.discardExecution()
			child.regs = *o.Regs
		} else {
			// Argument-only update keeps the current entry point.
			entry := child.regs.Entry
			child.regs = *o.Regs
			child.regs.Entry = entry
		}
	}
	if o.Zero != nil {
		if err := child.mem.Zero(o.Zero.Addr, o.Zero.Size, o.Zero.Perm); err != nil {
			return kerr("put", "zero: %v", err)
		}
	}
	if o.CopyAll {
		st := child.mem.CopyAllFrom(sp.mem)
		sp.chargeVT(int64(st.TablesShared+st.PagesShared+st.PagesZeroed) * cost.PageCopy)
	} else {
		for _, c := range copyList(o.Copy, o.Copies) {
			st, err := child.mem.CopyFrom(sp.mem, c.Src, c.Dst, c.Size)
			if err != nil {
				return kerr("put", "copy: %v", err)
			}
			sp.chargeVT(int64(st.TablesShared+st.PagesShared+st.PagesZeroed) * cost.PageCopy)
		}
	}
	if o.CopyAll || o.Copy != nil || len(o.Copies) > 0 {
		// COW sharing means the child's view of the copied pages is as
		// resident as the parent's was.
		sp.inheritResidency(child)
	}
	if o.Perm != nil {
		if err := child.mem.SetPerm(o.Perm.Addr, o.Perm.Size, o.Perm.Perm); err != nil {
			return kerr("put", "perm: %v", err)
		}
	}
	if o.Snap {
		var st vm.CopyStats
		if o.SnapFresh {
			if child.snap != nil {
				child.snap.Free()
			}
			child.snap, st = child.mem.Snapshot()
		} else {
			child.snap, st = child.mem.Resnap(child.snap)
		}
		sp.chargeVT(int64(st.TablesShared+st.PagesShared+st.PagesZeroed) * cost.PageCopy)
	}
	if o.Tree {
		src, err := sp.lookupChild("put", o.TreeSrc)
		if err != nil {
			return err
		}
		sp.rendezvous(src)
		sp.cloneTree(child, src)
	}
	if o.Start {
		if child.regs.Entry == nil {
			return kerr("put", "start: child %#x has no entry point", ref)
		}
		if !child.status.Resumable() && child.status != StatusNever && o.Regs == nil {
			return kerr("put", "start: child %#x stopped with %v and no new registers were loaded",
				ref, child.status)
		}
		child.vt = max64(child.vt, sp.vt)
		child.start(o.Limit)
	}
	return nil
}

// get implements the Get system call for sp as the caller.
func (sp *Space) get(ref uint64, o GetOpts) (ChildInfo, error) {
	cost := sp.m.cost
	sp.chargeVT(cost.Syscall)
	child, err := sp.lookupChild("get", ref)
	if err != nil {
		return ChildInfo{}, err
	}
	sp.rendezvous(child)

	info := ChildInfo{Status: child.status, Err: child.trapErr, Insns: child.insns}
	if o.Regs {
		info.Regs = child.regs
	}
	if o.Zero != nil {
		if err := sp.mem.Zero(o.Zero.Addr, o.Zero.Size, o.Zero.Perm); err != nil {
			return info, kerr("get", "zero: %v", err)
		}
	}
	if o.CopyAll {
		st := sp.mem.CopyAllFrom(child.mem)
		sp.chargeVT(int64(st.TablesShared+st.PagesShared+st.PagesZeroed) * cost.PageCopy)
	} else {
		for _, c := range copyList(o.Copy, o.Copies) {
			st, err := sp.mem.CopyFrom(child.mem, c.Src, c.Dst, c.Size)
			if err != nil {
				return info, kerr("get", "copy: %v", err)
			}
			sp.chargeVT(int64(st.TablesShared+st.PagesShared+st.PagesZeroed) * cost.PageCopy)
		}
	}
	if o.Merge {
		if child.snap == nil {
			return info, kerr("get", "merge: child %#x has no snapshot", ref)
		}
		r := Range{0, vm.SpaceSize}
		if o.MergeRange != nil {
			r = *o.MergeRange
		}
		mode := vm.MergeStrict
		if o.MergeLWW {
			mode = vm.MergeLastWriter
		}
		st, err := vm.MergeEx(sp.mem, child.mem, child.snap, r.Addr, r.Size, vm.MergeConfig{
			Mode:       mode,
			Workers:    sp.m.mergeWorkers,
			ByteKernel: sp.m.mergeBytes,
			Touched:    &info.MergeTouched,
		})
		info.Merge = st
		info.MemClean = child.mem.CleanSince(child.snap)
		// Adopted pages are pte moves; compared pages walk all 4 KiB.
		// Charging them separately keeps join cost proportional to data
		// actually reconciled, not to pages merely mapped.
		sp.chargeVT(int64(st.PagesCompared)*cost.PageCompare +
			int64(st.BytesMerged)*cost.ByteMerge +
			int64(st.TablesAdopted)*cost.PageCopy +
			int64(st.PagesAdopted)*cost.pageAdopt())
		if len(sp.m.nodes) > 1 && sp.home != child.node {
			// The merge ran on the child's node, but the merged result
			// must reach the caller's home copy: charge wire traffic for
			// the pages that actually moved. A collector merging a child
			// homed on its own node — a delegate collecting its local
			// threads — moves nothing across the wire and charges
			// nothing. With batching the child's delta ships as a compact
			// page-run list (vm.DeltaRuns over its dirty tracking) —
			// per-run request overhead instead of per-page messages; the
			// runs' page total equals PagesCompared+PagesAdopted by
			// construction.
			if cost.batched() {
				runs := vm.DeltaRuns(child.mem, child.snap, r.Addr, r.Size, cost.BatchPages)
				pages := vm.DeltaPages(runs)
				sp.chargeVT(int64(len(runs))*(cost.batchMsg()+msgExtra(cost)) +
					int64(pages)*cost.PageTransfer)
				sp.net.Msgs += int64(len(runs))
				sp.net.Pages += int64(pages)
			} else {
				// Unbatched: every page ships as its own request, the same
				// per-page framing the demand-paging path charges.
				moved := int64(st.PagesCompared + st.PagesAdopted)
				sp.chargeVT(moved * (cost.batchMsg() + cost.PageTransfer + msgExtra(cost)))
				sp.net.Msgs += moved
				sp.net.Pages += moved
			}
		}
		if err != nil {
			return info, err // vm.MergeConflictError: the paper's runtime exception
		}
	}
	if o.Perm != nil {
		if err := sp.mem.SetPerm(o.Perm.Addr, o.Perm.Size, o.Perm.Perm); err != nil {
			return info, kerr("get", "perm: %v", err)
		}
	}
	if o.Tree {
		dst, err := sp.lookupChild("get", o.TreeDst)
		if err != nil {
			return info, err
		}
		sp.rendezvous(dst)
		sp.cloneTree(dst, child)
	}
	return info, nil
}

// waitChildren blocks until every named child that exists has stopped,
// using a worker pool of the given width (<= 0 selects GOMAXPROCS). It
// performs no state operation, creates no children, charges no virtual
// time and does not migrate the caller — it is a pure host-level latency
// hint that lets a collector overlap the physical waiting for many
// children, after which the real Get/Put rendezvous (still issued one at
// a time, in program order) find the children already stopped. Skipping
// it, or varying the worker count, never changes any result.
func (sp *Space) waitChildren(refs []uint64, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var ready []*Space
	for _, ref := range refs {
		node, idx, err := sp.splitChildRef(ref)
		if err != nil {
			continue
		}
		key := uint64(node.id+1)<<nodeShift | idx
		if child := sp.children[key]; child != nil {
			ready = append(ready, child)
		}
	}
	vm.ParallelFor(len(ready), workers, func(i int) {
		ready[i].waitStopped()
	})
}

// cloneTree deep-copies src's state (memory, snapshot, registers and all
// descendants) into dst. Both subtrees must be stopped, which the callers'
// rendezvous guarantees for the roots; descendants of a stopped space are
// stopped by induction only if the program stopped them — we wait to be
// safe.
func (sp *Space) cloneTree(dst, src *Space) {
	cost := sp.m.cost
	dst.discardExecution()
	st := dst.mem.CopyAllFrom(src.mem)
	sp.chargeVT(int64(st.TablesShared+st.PagesShared+st.PagesZeroed) * cost.PageCopy)
	if dst.snap != nil {
		dst.snap.Free()
		dst.snap = nil
	}
	if src.snap != nil {
		var sst vm.CopyStats
		dst.snap, sst = src.snap.Snapshot()
		sp.chargeVT(int64(sst.TablesShared+sst.PagesShared+sst.PagesZeroed) * cost.PageCopy)
	}
	dst.regs = src.regs
	dst.status = src.status
	dst.trapErr = src.trapErr
	dst.insns = src.insns
	// A cloned parked execution cannot be reproduced (the goroutine stack
	// is not copyable); a resumable source clones as freshly-restartable
	// from its registers. This limitation mirrors the prototype's
	// restriction of Tree to stopped, quiescent subtrees.
	if dst.status == StatusRet || dst.status == StatusInsnLimit {
		dst.status = StatusNever
	}
	for ref, sc := range src.children {
		sc.waitStopped()
		dc := dst.children[ref]
		if dc == nil {
			dc = newSpace(sp.m, dst, ref, sc.home)
			if dst.children == nil {
				dst.children = make(map[uint64]*Space)
			}
			dst.children[ref] = dc
		} else {
			dc.waitStopped()
		}
		sp.cloneTree(dc, sc)
	}
}
