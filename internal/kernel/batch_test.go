package kernel

import (
	"testing"

	"repro/internal/vm"
)

// Batched cross-node page transfers: one request round trip moves a run
// of pages, so bulk remote accesses pay per-run rather than per-page
// protocol overhead, and NetStats exposes deterministic message counts.

// remoteSpanRead runs a child on node 1 that bulk-reads a 16-page span
// it must demand-fetch, and returns the run result plus the child's
// traffic (delivered through Ret, packed as msgs<<32|pages).
func remoteSpanRead(t *testing.T, cost CostModel) (RunResult, int64, int64) {
	t.Helper()
	m := New(Config{Nodes: 2, Cost: cost})
	res := m.Run(func(env *Env) {
		env.SetPerm(0, 16*vm.PageSize, vm.PermRW)
		data := make([]uint32, 16*1024)
		for i := range data {
			data[i] = uint32(i * 7)
		}
		env.WriteU32s(0, data)
		ref := ChildOn(1, 1)
		if err := env.Put(ref, PutOpts{
			Regs: &Regs{Entry: func(c *Env) {
				buf := make([]uint32, 16*1024)
				c.ReadU32s(0, buf) // demand-fetches all 16 pages
				n := c.NetStats()
				c.SetRet(uint64(n.Msgs)<<32 | uint64(n.Pages))
			}},
			CopyAll: true,
			Start:   true,
		}); err != nil {
			panic(err)
		}
		info, err := env.Get(ref, GetOpts{Regs: true})
		if err != nil {
			panic(err)
		}
		env.SetRet(info.Regs.Ret)
	}, 0)
	if res.Status != StatusHalted {
		t.Fatalf("%v: %v", res.Status, res.Err)
	}
	return res, int64(res.Ret >> 32), int64(res.Ret & 0xffffffff)
}

func TestBatchedFetchCollapsesMessages(t *testing.T) {
	batched := DefaultCostModel() // BatchPages 64
	unbatched := DefaultCostModel()
	unbatched.BatchPages = 1

	rb, bMsgs, bPages := remoteSpanRead(t, batched)
	ru, uMsgs, uPages := remoteSpanRead(t, unbatched)

	if bPages != 16 || uPages != 16 {
		t.Fatalf("pages moved: batched %d, unbatched %d, want 16", bPages, uPages)
	}
	if bMsgs != 1 {
		t.Errorf("batched fetch used %d messages, want 1 (one 16-page run)", bMsgs)
	}
	if uMsgs != 16 {
		t.Errorf("unbatched fetch used %d messages, want 16", uMsgs)
	}
	// The only cost difference is the 15 request round trips saved:
	// page-transfer volume, migrations and everything else are identical.
	saved := ru.VT - rb.VT
	if want := 15 * unbatched.batchMsg(); saved != want {
		t.Errorf("batching saved %d ticks, want exactly %d (15 requests)", saved, want)
	}
}

func TestBatchedFetchRespectsRunCap(t *testing.T) {
	cost := DefaultCostModel()
	cost.BatchPages = 4
	_, msgs, pages := remoteSpanRead(t, cost)
	if pages != 16 || msgs != 4 {
		t.Errorf("16-page span at cap 4: %d msgs / %d pages, want 4 / 16", msgs, pages)
	}
}

func TestBatchedMergeShipsDeltaRuns(t *testing.T) {
	// A remote child dirties two separated 3-page blocks; the collector's
	// merge must ship them as two batched runs (plus its one migration),
	// not six per-page messages.
	run := func(cost CostModel) (int64, NetStats) {
		m := New(Config{Nodes: 2, Cost: cost})
		res := m.Run(func(env *Env) {
			env.SetPerm(0, 32*vm.PageSize, vm.PermRW)
			ref := ChildOn(1, 1)
			if err := env.Put(ref, PutOpts{
				Regs: &Regs{Entry: func(c *Env) {
					for p := 4; p < 7; p++ {
						c.WriteU32(vm.Addr(p)*vm.PageSize, uint32(p))
					}
					for p := 20; p < 23; p++ {
						c.WriteU32(vm.Addr(p)*vm.PageSize, uint32(p))
					}
				}},
				CopyAll: true,
				Snap:    true,
				Start:   true,
			}); err != nil {
				panic(err)
			}
			if _, err := env.Get(ref, GetOpts{Merge: true}); err != nil {
				panic(err)
			}
			n := env.NetStats()
			env.SetRet(uint64(n.Msgs)<<32 | uint64(n.Pages))
		}, 0)
		if res.Status != StatusHalted {
			panic(res.Err)
		}
		return res.VT, NetStats{Msgs: int64(res.Ret >> 32), Pages: int64(res.Ret & 0xffffffff)}
	}
	batched := DefaultCostModel()
	unbatched := DefaultCostModel()
	unbatched.BatchPages = 1
	bVT, bNet := run(batched)
	uVT, uNet := run(unbatched)
	if bNet.Pages != 6 || uNet.Pages != 6 {
		t.Fatalf("delta pages: batched %d, unbatched %d, want 6", bNet.Pages, uNet.Pages)
	}
	// Batched: 1 migration + 2 delta runs. Unbatched: 1 migration + 6
	// per-page shipments.
	if bNet.Msgs != 3 {
		t.Errorf("batched collector sent %d messages, want 3", bNet.Msgs)
	}
	if uNet.Msgs != 7 {
		t.Errorf("unbatched collector sent %d messages, want 7", uNet.Msgs)
	}
	if bVT >= uVT {
		t.Errorf("batched merge VT %d not below unbatched %d", bVT, uVT)
	}
}

func TestSingleNodeReportsNoTraffic(t *testing.T) {
	m := New(Config{})
	res := m.Run(func(env *Env) {
		env.SetPerm(0, 8*vm.PageSize, vm.PermRW)
		buf := make([]uint32, 8*1024)
		env.ReadU32s(0, buf)
		n := env.NetStats()
		env.SetRet(uint64(n.Msgs + n.Pages))
	}, 0)
	if res.Status != StatusHalted || res.Ret != 0 {
		t.Fatalf("single-node traffic nonzero: %v ret=%d", res.Err, res.Ret)
	}
	if res.Net != (NetStats{}) {
		t.Errorf("RunResult.Net = %+v, want zeros", res.Net)
	}
}
