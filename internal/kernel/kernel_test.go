package kernel

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/vm"
)

// runRoot runs prog as the root program of a fresh single-node machine.
func runRoot(t *testing.T, prog Prog) RunResult {
	t.Helper()
	m := New(Config{})
	res := m.Run(prog, 0)
	if res.Status != StatusHalted {
		t.Fatalf("root stopped with %v (err %v), want halt", res.Status, res.Err)
	}
	return res
}

func TestRootHaltsWithRet(t *testing.T) {
	m := New(Config{})
	res := m.Run(func(env *Env) {
		env.SetRet(42)
	}, 7)
	if res.Status != StatusHalted || res.Ret != 42 {
		t.Errorf("got status %v ret %d, want halted 42", res.Status, res.Ret)
	}
}

func TestArgReachesProgram(t *testing.T) {
	m := New(Config{})
	res := m.Run(func(env *Env) {
		env.SetRet(env.Arg() * 2)
	}, 21)
	if res.Ret != 42 {
		t.Errorf("ret = %d, want 42", res.Ret)
	}
}

func TestForkChildAndCollectResult(t *testing.T) {
	runRoot(t, func(env *Env) {
		env.SetPerm(0, vm.PageSize, vm.PermRW)
		env.WriteU32(0, 100)
		err := env.Put(1, PutOpts{
			Regs: &Regs{Entry: func(c *Env) {
				v := c.ReadU32(0)
				c.WriteU32(0, v+1)
				c.SetRet(uint64(v))
			}},
			CopyAll: true,
			Start:   true,
		})
		if err != nil {
			panic(err)
		}
		info, err := env.Get(1, GetOpts{Regs: true, CopyAll: true})
		if err != nil {
			panic(err)
		}
		if info.Status != StatusHalted {
			panic("child did not halt")
		}
		if info.Regs.Ret != 100 {
			panic("child saw wrong initial value")
		}
		if got := env.ReadU32(0); got != 101 {
			panic("parent did not receive child's write")
		}
	})
}

func TestChildMemoryIsPrivate(t *testing.T) {
	runRoot(t, func(env *Env) {
		env.SetPerm(0, vm.PageSize, vm.PermRW)
		env.WriteU32(0, 5)
		if err := env.Put(1, PutOpts{
			Regs:    &Regs{Entry: func(c *Env) { c.WriteU32(0, 99) }},
			CopyAll: true,
			Start:   true,
		}); err != nil {
			panic(err)
		}
		if _, err := env.Get(1, GetOpts{}); err != nil {
			panic(err)
		}
		// Without Copy/Merge on the Get, the parent must not see the
		// child's write: shared-nothing.
		if got := env.ReadU32(0); got != 5 {
			panic("child write leaked into parent without explicit Get")
		}
	})
}

func TestRetAndResume(t *testing.T) {
	runRoot(t, func(env *Env) {
		env.SetPerm(0, vm.PageSize, vm.PermRW)
		if err := env.Put(1, PutOpts{
			Regs: &Regs{Entry: func(c *Env) {
				c.SetPerm(0, vm.PageSize, vm.PermRW)
				c.WriteU32(0, 1)
				c.Ret()
				c.WriteU32(0, 2) // runs after resume
			}},
			Start: true,
		}); err != nil {
			panic(err)
		}
		info, err := env.Get(1, GetOpts{Copy: &CopyRange{0, 0, vm.PageSize}})
		if err != nil {
			panic(err)
		}
		if info.Status != StatusRet {
			panic("expected StatusRet at first stop")
		}
		if env.ReadU32(0) != 1 {
			panic("first phase value wrong")
		}
		if err := env.Put(1, PutOpts{Start: true}); err != nil {
			panic(err)
		}
		info, err = env.Get(1, GetOpts{Copy: &CopyRange{0, 0, vm.PageSize}})
		if err != nil {
			panic(err)
		}
		if info.Status != StatusHalted {
			panic("expected halt at second stop")
		}
		if env.ReadU32(0) != 2 {
			panic("resume did not continue after Ret")
		}
	})
}

func TestSnapAndMergeViaSyscalls(t *testing.T) {
	runRoot(t, func(env *Env) {
		env.SetPerm(0, vm.PageSize, vm.PermRW)
		env.Write(0, []byte("aaaa"))
		for i := uint64(1); i <= 2; i++ {
			i := i
			if err := env.Put(i, PutOpts{
				Regs: &Regs{Entry: func(c *Env) {
					// Child i writes byte i-1.
					off := vm.Addr(c.Arg())
					c.Write(off, []byte{'X'})
				}, Arg: i - 1},
				CopyAll: true,
				Snap:    true,
				Start:   true,
			}); err != nil {
				panic(err)
			}
		}
		for i := uint64(1); i <= 2; i++ {
			if _, err := env.Get(i, GetOpts{Merge: true}); err != nil {
				panic(err)
			}
		}
		var b [4]byte
		env.Read(0, b[:])
		if string(b[:]) != "XXaa" {
			panic("merge result wrong: " + string(b[:]))
		}
	})
}

func TestMergeConflictSurfacesAtGet(t *testing.T) {
	runRoot(t, func(env *Env) {
		env.SetPerm(0, vm.PageSize, vm.PermRW)
		env.Write(0, []byte("aa"))
		for i := uint64(1); i <= 2; i++ {
			if err := env.Put(i, PutOpts{
				Regs:    &Regs{Entry: func(c *Env) { c.Write(0, []byte{'X'}) }},
				CopyAll: true,
				Snap:    true,
				Start:   true,
			}); err != nil {
				panic(err)
			}
		}
		if _, err := env.Get(1, GetOpts{Merge: true}); err != nil {
			panic(err)
		}
		_, err := env.Get(2, GetOpts{Merge: true})
		var mc *vm.MergeConflictError
		if !errors.As(err, &mc) {
			panic("second merge did not report a conflict")
		}
	})
}

func TestMergeWithoutSnapshotIsError(t *testing.T) {
	runRoot(t, func(env *Env) {
		if err := env.Put(1, PutOpts{
			Regs:  &Regs{Entry: func(c *Env) {}},
			Start: true,
		}); err != nil {
			panic(err)
		}
		_, err := env.Get(1, GetOpts{Merge: true})
		var ke *KernelError
		if !errors.As(err, &ke) {
			panic("merge without snapshot must fail")
		}
	})
}

func TestInstructionLimitPreempts(t *testing.T) {
	runRoot(t, func(env *Env) {
		if err := env.Put(1, PutOpts{
			Regs: &Regs{Entry: func(c *Env) {
				for i := 0; i < 1000; i++ {
					c.Tick(1)
				}
				c.SetRet(uint64(c.Insns()))
			}},
			Start: true,
			Limit: 100,
		}); err != nil {
			panic(err)
		}
		info, err := env.Get(1, GetOpts{})
		if err != nil {
			panic(err)
		}
		if info.Status != StatusInsnLimit {
			panic("child was not preempted: " + info.Status.String())
		}
		if info.Insns != 100 {
			panic("preemption point not exact")
		}
		// Resume repeatedly until it halts; each quantum is exact.
		quanta := 1
		for info.Status != StatusHalted {
			if err := env.Put(1, PutOpts{Start: true, Limit: 100}); err != nil {
				panic(err)
			}
			info, err = env.Get(1, GetOpts{Regs: true})
			if err != nil {
				panic(err)
			}
			quanta++
		}
		// Ticks 1..1000 fill ten exact quanta; the limit fires at the
		// 1000th instruction (before the program can halt), so an 11th
		// start lets it finish.
		if quanta != 11 {
			panic("unexpected quantum count")
		}
		if info.Regs.Ret != 1000 {
			panic("child did not complete its work across quanta")
		}
	})
}

func TestNoPreemptDefersLimit(t *testing.T) {
	runRoot(t, func(env *Env) {
		if err := env.Put(1, PutOpts{
			Regs: &Regs{Entry: func(c *Env) {
				c.NoPreempt(func() {
					for i := 0; i < 50; i++ {
						c.Tick(1) // would cross the limit of 10 mid-loop
					}
				})
				c.SetRet(uint64(c.Insns()))
			}},
			Start: true,
			Limit: 10,
		}); err != nil {
			panic(err)
		}
		info, err := env.Get(1, GetOpts{Regs: true})
		if err != nil {
			panic(err)
		}
		// The limit fires, but only at the NoPreempt boundary.
		if info.Status != StatusInsnLimit || info.Insns != 50 {
			panic("critical section was preempted mid-way")
		}
	})
}

func TestFaultReportsToParent(t *testing.T) {
	runRoot(t, func(env *Env) {
		if err := env.Put(1, PutOpts{
			Regs:  &Regs{Entry: func(c *Env) { c.ReadU32(0xdead0000) }},
			Start: true,
		}); err != nil {
			panic(err)
		}
		info, err := env.Get(1, GetOpts{})
		if err != nil {
			panic(err)
		}
		if info.Status != StatusFault {
			panic("expected fault status")
		}
		var ae *vm.AccessError
		if !errors.As(info.Err, &ae) {
			panic("fault cause missing")
		}
	})
}

func TestExceptionReportsToParent(t *testing.T) {
	runRoot(t, func(env *Env) {
		if err := env.Put(1, PutOpts{
			Regs:  &Regs{Entry: func(c *Env) { panic("boom") }},
			Start: true,
		}); err != nil {
			panic(err)
		}
		info, err := env.Get(1, GetOpts{})
		if err != nil {
			panic(err)
		}
		if info.Status != StatusExcept || info.Err == nil {
			panic("expected exception status with cause")
		}
		if !strings.Contains(info.Err.Error(), "boom") {
			panic("exception cause lost")
		}
	})
}

func TestStartHaltedChildNeedsNewRegs(t *testing.T) {
	runRoot(t, func(env *Env) {
		if err := env.Put(1, PutOpts{
			Regs:  &Regs{Entry: func(c *Env) {}},
			Start: true,
		}); err != nil {
			panic(err)
		}
		if _, err := env.Get(1, GetOpts{}); err != nil {
			panic(err)
		}
		err := env.Put(1, PutOpts{Start: true})
		var ke *KernelError
		if !errors.As(err, &ke) {
			panic("restarting a halted child without fresh registers must fail")
		}
		// With fresh registers it must work.
		if err := env.Put(1, PutOpts{
			Regs:  &Regs{Entry: func(c *Env) { c.SetRet(9) }},
			Start: true,
		}); err != nil {
			panic(err)
		}
		info, err := env.Get(1, GetOpts{Regs: true})
		if err != nil || info.Regs.Ret != 9 {
			panic("fresh start after halt failed")
		}
	})
}

func TestRegsOverwriteDiscardsParkedExecution(t *testing.T) {
	runRoot(t, func(env *Env) {
		mark := uint64(0)
		if err := env.Put(1, PutOpts{
			Regs: &Regs{Entry: func(c *Env) {
				c.Ret()
				mark = 1 // must never run: execution is discarded
			}},
			Start: true,
		}); err != nil {
			panic(err)
		}
		if _, err := env.Get(1, GetOpts{}); err != nil {
			panic(err)
		}
		if err := env.Put(1, PutOpts{
			Regs:  &Regs{Entry: func(c *Env) { c.SetRet(7) }},
			Start: true,
		}); err != nil {
			panic(err)
		}
		info, err := env.Get(1, GetOpts{Regs: true})
		if err != nil {
			panic(err)
		}
		if info.Regs.Ret != 7 || mark != 0 {
			panic("old execution survived a register overwrite")
		}
	})
}

func TestGrandchildren(t *testing.T) {
	runRoot(t, func(env *Env) {
		if err := env.Put(1, PutOpts{
			Regs: &Regs{Entry: func(c *Env) {
				// The child forks its own child.
				if err := c.Put(1, PutOpts{
					Regs:  &Regs{Entry: func(g *Env) { g.SetRet(g.Arg() + 1) }, Arg: 10},
					Start: true,
				}); err != nil {
					panic(err)
				}
				gi, err := c.Get(1, GetOpts{Regs: true})
				if err != nil {
					panic(err)
				}
				c.SetRet(gi.Regs.Ret)
			}},
			Start: true,
		}); err != nil {
			panic(err)
		}
		info, err := env.Get(1, GetOpts{Regs: true})
		if err != nil {
			panic(err)
		}
		if info.Regs.Ret != 11 {
			panic("grandchild result did not propagate")
		}
	})
}

func TestChildNamespacesAreDistinct(t *testing.T) {
	runRoot(t, func(env *Env) {
		for i := uint64(1); i <= 4; i++ {
			if err := env.Put(i, PutOpts{
				Regs:  &Regs{Entry: func(c *Env) { c.SetRet(c.Arg() * c.Arg()) }, Arg: i},
				Start: true,
			}); err != nil {
				panic(err)
			}
		}
		for i := uint64(1); i <= 4; i++ {
			info, err := env.Get(i, GetOpts{Regs: true})
			if err != nil {
				panic(err)
			}
			if info.Regs.Ret != i*i {
				panic("children confused their identities")
			}
		}
	})
}

func TestTreeClonesSubtree(t *testing.T) {
	runRoot(t, func(env *Env) {
		// Build child 1 with memory state and a grandchild.
		if err := env.Put(1, PutOpts{
			Regs: &Regs{Entry: func(c *Env) {
				c.SetPerm(0, vm.PageSize, vm.PermRW)
				c.WriteU32(0, 77)
				if err := c.Put(3, PutOpts{
					Regs:  &Regs{Entry: func(g *Env) { g.SetRet(55) }},
					Start: true,
				}); err != nil {
					panic(err)
				}
				if _, err := c.Get(3, GetOpts{}); err != nil {
					panic(err)
				}
			}},
			Start: true,
		}); err != nil {
			panic(err)
		}
		if _, err := env.Get(1, GetOpts{}); err != nil {
			panic(err)
		}
		// Clone child 1's subtree into child 2.
		if err := env.Put(2, PutOpts{Tree: true, TreeSrc: 1}); err != nil {
			panic(err)
		}
		// The clone has the memory image...
		if _, err := env.Get(2, GetOpts{Copy: &CopyRange{0, 0, vm.PageSize}}); err != nil {
			panic(err)
		}
		env.SetPerm(0, vm.PageSize, vm.PermRW)
		if env.ReadU32(0) != 77 {
			panic("cloned memory missing")
		}
	})
}

func TestDeviceAccessRootOnly(t *testing.T) {
	var out bytes.Buffer
	m := New(Config{Console: NewConsole(strings.NewReader("hi"), &out)})
	res := m.Run(func(env *Env) {
		var b [2]byte
		if n := env.ConsoleRead(b[:]); n != 2 || string(b[:]) != "hi" {
			panic("console read failed")
		}
		env.ConsoleWrite([]byte("ok"))
		if env.ClockNow() <= 0 {
			panic("clock device failed")
		}
		if env.RandUint64() == 0 {
			panic("rand device failed")
		}
		// A child must not reach devices.
		if err := env.Put(1, PutOpts{
			Regs:  &Regs{Entry: func(c *Env) { c.ClockNow() }},
			Start: true,
		}); err != nil {
			panic(err)
		}
		info, err := env.Get(1, GetOpts{})
		if err != nil {
			panic(err)
		}
		if info.Status != StatusExcept {
			panic("non-root device access was not stopped")
		}
	}, 0)
	if res.Status != StatusHalted {
		t.Fatalf("root: %v %v", res.Status, res.Err)
	}
	if out.String() != "ok" {
		t.Errorf("console output = %q", out.String())
	}
}

// parallelSumProg forks n children that each sum a slice of a shared
// array in their private workspace and write the result to a private slot,
// then merges all children. Used for determinism tests.
func parallelSumProg(n int) Prog {
	return func(env *Env) {
		const base = 0
		const resBase = 0x10000
		count := 4096
		env.SetPerm(0, 0x20000, vm.PermRW)
		vals := make([]uint32, count)
		for i := range vals {
			vals[i] = uint32(i * 3)
		}
		env.WriteU32s(base, vals)
		for c := 0; c < n; c++ {
			c := c
			if err := env.Put(uint64(c+1), PutOpts{
				Regs: &Regs{Entry: func(ce *Env) {
					lo := c * count / n
					hi := (c + 1) * count / n
					buf := make([]uint32, hi-lo)
					ce.ReadU32s(vm.Addr(base+4*lo), buf)
					var sum uint32
					for _, v := range buf {
						sum += v
						ce.Tick(1)
					}
					ce.Tick(100_000) // coarse-grained compute phase
					ce.WriteU32(vm.Addr(resBase+4*c), sum)
				}},
				CopyAll: true,
				Snap:    true,
				Start:   true,
			}); err != nil {
				panic(err)
			}
		}
		var total uint32
		for c := 0; c < n; c++ {
			if _, err := env.Get(uint64(c+1), GetOpts{Merge: true}); err != nil {
				panic(err)
			}
			total += env.ReadU32(vm.Addr(resBase + 4*c))
		}
		env.SetRet(uint64(total))
	}
}

func TestParallelDeterminism(t *testing.T) {
	want := uint64(0)
	for i := 0; i < 4096; i++ {
		want += uint64(i * 3)
	}
	var rets []uint64
	var vts []int64
	for run := 0; run < 5; run++ {
		m := New(Config{CPUsPerNode: 4})
		res := m.Run(parallelSumProg(8), 0)
		if res.Status != StatusHalted {
			t.Fatalf("run %d: %v %v", run, res.Status, res.Err)
		}
		rets = append(rets, res.Ret)
		vts = append(vts, res.VT)
	}
	for i, r := range rets {
		if r != want {
			t.Errorf("run %d: sum = %d, want %d", i, r, want)
		}
		if vts[i] != vts[0] {
			t.Errorf("run %d: virtual time %d differs from run 0's %d (nondeterministic)",
				i, vts[i], vts[0])
		}
	}
}

func TestVirtualCPUScalingSpeedsUpVT(t *testing.T) {
	vt := func(cpus int) int64 {
		m := New(Config{CPUsPerNode: cpus})
		res := m.Run(parallelSumProg(8), 0)
		if res.Status != StatusHalted {
			t.Fatalf("cpus=%d: %v %v", cpus, res.Status, res.Err)
		}
		return res.VT
	}
	t1, t4 := vt(1), vt(4)
	if t4 >= t1 {
		t.Errorf("VT with 4 CPUs (%d) not faster than 1 CPU (%d)", t4, t1)
	}
	speedup := float64(t1) / float64(t4)
	if speedup < 1.5 {
		t.Errorf("speedup %0.2f too small for 8 parallel children on 4 CPUs", speedup)
	}
}

func TestMigrationChargesTransfers(t *testing.T) {
	// The same program, run locally vs with the child on another node:
	// the distributed run must charge migration + page transfer costs.
	run := func(remote bool) int64 {
		m := New(Config{Nodes: 2})
		res := m.Run(func(env *Env) {
			env.SetPerm(0, 16*vm.PageSize, vm.PermRW)
			data := make([]uint32, 16*1024)
			for i := range data {
				data[i] = uint32(i)
			}
			env.WriteU32s(0, data)
			ref := uint64(1)
			if remote {
				ref = ChildOn(1, 1)
			}
			if err := env.Put(ref, PutOpts{
				Regs: &Regs{Entry: func(c *Env) {
					buf := make([]uint32, 16*1024)
					c.ReadU32s(0, buf) // demand-fetches all 16 pages when remote
					var s uint32
					for _, v := range buf {
						s += v
					}
					c.SetRet(uint64(s))
				}},
				CopyAll: true,
				Start:   true,
			}); err != nil {
				panic(err)
			}
			if _, err := env.Get(ref, GetOpts{}); err != nil {
				panic(err)
			}
		}, 0)
		if res.Status != StatusHalted {
			t.Fatalf("remote=%v: %v %v", remote, res.Status, res.Err)
		}
		return res.VT
	}
	local, remote := run(false), run(true)
	if remote <= local {
		t.Errorf("remote VT %d not greater than local VT %d", remote, local)
	}
	minExtra := DefaultCostModel().PageTransfer * 16
	if remote-local < minExtra {
		t.Errorf("remote extra %d below expected page transfer cost %d", remote-local, minExtra)
	}
}

func TestROCacheMakesRevisitsCheaper(t *testing.T) {
	// A space that migrates to a remote node twice, reading the same pages
	// each visit, pays the transfer only once when the read-only cache is
	// enabled (§3.3), and twice when it is disabled.
	prog := func(env *Env) {
		env.SetPerm(0, 8*vm.PageSize, vm.PermRW)
		buf := make([]uint32, 8*1024)
		env.WriteU32s(0, buf)
		for visit := 0; visit < 2; visit++ {
			// Interacting with a child on node 1 migrates us there...
			if err := env.Put(ChildOn(1, 1), PutOpts{
				Regs:  &Regs{Entry: func(c *Env) {}},
				Start: true,
			}); err != nil {
				panic(err)
			}
			if _, err := env.Get(ChildOn(1, 1), GetOpts{}); err != nil {
				panic(err)
			}
			env.ReadU32s(0, buf) // ...where we read our pages
			// ...and a child on node 0 migrates us home.
			if err := env.Put(ChildOn(0, 2), PutOpts{
				Regs:  &Regs{Entry: func(c *Env) {}},
				Start: true,
			}); err != nil {
				panic(err)
			}
			if _, err := env.Get(ChildOn(0, 2), GetOpts{}); err != nil {
				panic(err)
			}
		}
	}
	vt := func(disable bool) int64 {
		m := New(Config{Nodes: 2, DisableROCache: disable})
		res := m.Run(prog, 0)
		if res.Status != StatusHalted {
			t.Fatalf("disable=%v: %v %v", disable, res.Status, res.Err)
		}
		return res.VT
	}
	cached, uncached := vt(false), vt(true)
	if cached >= uncached {
		t.Errorf("RO cache did not reduce VT: cached %d, uncached %d", cached, uncached)
	}
}

func TestTCPLikeModeAddsSmallOverhead(t *testing.T) {
	prog := func(env *Env) {
		for i := 0; i < 10; i++ {
			ref := ChildOn(1, uint64(i+1))
			if err := env.Put(ref, PutOpts{
				Regs:  &Regs{Entry: func(c *Env) { c.Tick(100000) }},
				Start: true,
			}); err != nil {
				panic(err)
			}
			if _, err := env.Get(ref, GetOpts{}); err != nil {
				panic(err)
			}
		}
	}
	vt := func(tcp bool) int64 {
		cost := DefaultCostModel()
		cost.TCPLike = tcp
		m := New(Config{Nodes: 2, Cost: cost})
		res := m.Run(prog, 0)
		if res.Status != StatusHalted {
			t.Fatalf("tcp=%v: %v %v", tcp, res.Status, res.Err)
		}
		return res.VT
	}
	plain, tcp := vt(false), vt(true)
	if tcp <= plain {
		t.Fatalf("TCP-like mode added no cost: %d vs %d", tcp, plain)
	}
	overhead := float64(tcp-plain) / float64(plain)
	if overhead > 0.10 {
		t.Errorf("TCP-like overhead %.1f%% unexpectedly large", overhead*100)
	}
}

func TestChildRefNodeOutOfRange(t *testing.T) {
	runRoot(t, func(env *Env) {
		err := env.Put(ChildOn(5, 1), PutOpts{})
		var ke *KernelError
		if !errors.As(err, &ke) {
			panic("out-of-range node accepted")
		}
	})
}

func TestStatusStrings(t *testing.T) {
	for st, want := range map[Status]string{
		StatusNever: "never-started", StatusRet: "ret", StatusInsnLimit: "insn-limit",
		StatusHalted: "halted", StatusFault: "fault", StatusExcept: "exception",
	} {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
	if !StatusRet.Resumable() || !StatusInsnLimit.Resumable() || StatusHalted.Resumable() {
		t.Error("Resumable classification wrong")
	}
}
