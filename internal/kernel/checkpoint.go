package kernel

// Machine checkpoint/restore: a versioned serialization of a stopped,
// quiescent space tree — the mid-run persistence the paper's fault
// tolerance story assumes ("logging a computation's explicit inputs is
// sufficient to replay it"; a checkpoint bounds how much of the log a
// replay must re-execute).
//
// The image captures everything the deterministic results of the rest of
// a run depend on:
//
//   - every space's memory and merge snapshot, through the vm forest
//     encoder, preserving the COW sharing graph and dirty tracking so
//     incremental snapshots, dirty-guided merges and copy charges behave
//     identically after a restore;
//   - per-space virtual time, instruction counts, argument/result
//     registers, migration residency (the §3.3 read-only page caches),
//     cross-node traffic counters and virtual-CPU pool occupancy;
//   - the machine's device cursors — how many clock, entropy and console
//     reads the run has consumed — so a restore fast-forwards the
//     configured (deterministic or replayed) devices to the exact point
//     the checkpoint was taken: the trace is spliced, not replayed from
//     the start.
//
// What the image deliberately does not capture is Go control flow: entry
// points are functions and parked goroutine stacks cannot be serialized.
// A checkpoint therefore requires the tree to be quiescent — every space
// stopped, none suspended mid-execution except those the caller
// explicitly names (the runtime's delegate collectors, which are
// re-created from their registers) — and a restored space carries no
// entry point until its parent loads one, exactly like a space cloned by
// the Tree option. The supported idiom is the session layer's: programs
// are phased, a checkpoint happens at a phase barrier, and the resumed
// program re-forks its workers from restored memory.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/imgenc"
	"repro/internal/vm"
)

// CheckpointVersion is the current machine-image format version.
const CheckpointVersion = 1

const checkpointMagic = "DCKP"

// NotQuiescentError reports a Checkpoint attempted while some space was
// suspended mid-execution (parked at a Ret or instruction-limit trap)
// without being listed in CheckpointOpts.AllowParked. Its Go stack
// cannot be serialized, so the checkpoint is refused.
type NotQuiescentError struct {
	Ref    uint64 // the space's reference in its parent's namespace
	Status Status
}

func (e *NotQuiescentError) Error() string {
	return fmt.Sprintf("kernel: checkpoint: space %#x suspended mid-execution (%v); "+
		"checkpoint at a quiescent point", e.Ref, e.Status)
}

// BadImageError reports a structurally invalid, truncated or corrupted
// checkpoint image.
type BadImageError struct {
	Offset int
	Msg    string
}

func (e *BadImageError) Error() string {
	return fmt.Sprintf("kernel: bad checkpoint image at byte %d: %s", e.Offset, e.Msg)
}

// ImageVersionError reports a checkpoint image written by a newer format
// version than this decoder understands.
type ImageVersionError struct {
	Version byte
	Max     byte
}

func (e *ImageVersionError) Error() string {
	return fmt.Sprintf("kernel: checkpoint image version %d not supported (max %d)",
		e.Version, e.Max)
}

// ImageMismatchError reports a Restore onto a machine whose configuration
// differs from the checkpointed one; virtual times would diverge, so the
// restore is refused.
type ImageMismatchError struct {
	Field   string
	Image   string // value recorded in the image
	Machine string // value of the restoring machine
}

func (e *ImageMismatchError) Error() string {
	return fmt.Sprintf("kernel: checkpoint %s mismatch: image has %s, machine has %s",
		e.Field, e.Image, e.Machine)
}

// CheckpointOpts configures a Checkpoint.
type CheckpointOpts struct {
	// AllowParked lists direct children of the root that may be suspended
	// mid-execution at checkpoint time. They are serialized as
	// never-started spaces (memory, snapshot and counters intact, entry
	// point dropped) and must be given fresh registers before their next
	// start — the contract the runtime's delegate collectors already
	// satisfy, since every delegate command reloads its command loop.
	AllowParked []uint64
}

// spaceFlags bits in the per-space record.
const (
	sfHasSnap   = 1 << 0
	sfAccounted = 1 << 1
	sfHasErr    = 1 << 2
)

// Checkpoint serializes the calling space's entire subtree — for the
// root, the whole machine. Only the root may checkpoint (it is the only
// space that sees the devices whose cursors the image must include).
//
// Checkpoint is a pure observation: it charges no virtual time, moves no
// state, and leaves every space exactly as it found it, so a run that
// checkpoints is bit-identical — checksums, conflicts, virtual times —
// to one that does not. It blocks until every descendant has stopped,
// like the rendezvous half of Put/Get.
func (e *Env) Checkpoint(o CheckpointOpts) ([]byte, error) {
	sp := e.sp
	if sp.parent != nil {
		return nil, kerr("checkpoint", "only the root space may checkpoint")
	}
	allowed := make(map[uint64]bool, len(o.AllowParked))
	for _, r := range o.AllowParked {
		// Normalize through the same node-field resolution lookupChild
		// uses, so home-relative and absolute references agree.
		node, idx, err := sp.splitChildRef(r)
		if err != nil {
			return nil, err
		}
		allowed[uint64(node.id+1)<<nodeShift|idx] = true
	}

	enc := vm.NewForestEncoder()
	var b []byte
	b = append(b, checkpointMagic...)
	b = append(b, CheckpointVersion)
	b = sp.m.encodeConfig(b)
	tree, err := sp.encodeTree(enc, allowed, true)
	if err != nil {
		return nil, err
	}
	forest := enc.Encode()
	b = binary.LittleEndian.AppendUint32(b, uint32(len(tree)))
	b = append(b, tree...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(forest)))
	b = append(b, forest...)
	return imgenc.Seal(b), nil
}

// encodeConfig emits the machine-identity section: the knobs virtual
// time depends on (validated at restore) plus the device cursors.
func (m *Machine) encodeConfig(b []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.nodes)))
	b = binary.LittleEndian.AppendUint32(b, uint32(m.nodes[0].cpus))
	var flags byte
	if m.noCache {
		flags |= 1
	}
	if m.cost.TCPLike {
		flags |= 2
	}
	b = append(b, flags)
	for _, v := range []int64{
		m.cost.Syscall, m.cost.PageCopy, m.cost.PageCompare, m.cost.PageAdopt,
		m.cost.ByteMerge, m.cost.MigrateMsg, m.cost.PageTransfer, m.cost.TCPExtra,
		int64(m.cost.BatchPages), m.cost.BatchMsg,
	} {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(m.devClock))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.devRand))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.devConsole))
	return b
}

// encodeTree serializes sp's subtree record (depth-first, children in
// ascending reference order), registering memory and snapshots with the
// forest encoder. isRoot marks the calling space, which is running by
// definition and serializes as restartable.
func (sp *Space) encodeTree(enc *vm.ForestEncoder, allowed map[uint64]bool, isRoot bool) ([]byte, error) {
	status, parked := sp.execStatus()
	if parked && !isRoot && !(sp.parent != nil && sp.parent.parent == nil && allowed[sp.ref]) {
		return nil, &NotQuiescentError{Ref: sp.ref, Status: status}
	}
	var b []byte
	recStatus := status
	if isRoot || parked {
		// No serializable continuation: restart from fresh registers.
		recStatus = StatusNever
	}
	b = append(b, byte(recStatus))
	var flags byte
	if sp.snap != nil {
		flags |= sfHasSnap
	}
	if sp.accounted {
		flags |= sfAccounted
	}
	if sp.trapErr != nil {
		flags |= sfHasErr
	}
	b = append(b, flags)
	b = binary.LittleEndian.AppendUint32(b, uint32(sp.home.id))
	b = binary.LittleEndian.AppendUint32(b, uint32(sp.node.id))
	b = binary.LittleEndian.AppendUint64(b, sp.regs.Arg)
	b = binary.LittleEndian.AppendUint64(b, sp.regs.Ret)
	for _, v := range []int64{sp.insns, sp.vt, sp.startVT, sp.segBlocked,
		sp.net.Msgs, sp.net.Pages} {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	if sp.trapErr != nil {
		// Trap causes serialize as their message only: error types are Go
		// values and cannot cross the image. A program that re-reads a
		// crashed child's ChildInfo.Err after a resume sees a plain error
		// with the same text; typed inspection (errors.As) of pre-existing
		// trap causes does not survive a checkpoint. Errors surfaced
		// *during* post-resume execution (conflicts, crashes in resumed
		// phases) are fresh values and keep their types.
		b = appendString(b, sp.trapErr.Error())
	}
	memIdx := enc.Add(sp.mem)
	snapIdx := ^uint32(0)
	if sp.snap != nil {
		snapIdx = uint32(enc.Add(sp.snap))
		enc.LinkSnapshot(sp.mem, sp.snap)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(memIdx))
	b = binary.LittleEndian.AppendUint32(b, snapIdx)

	// Virtual-CPU pools, sorted by node id, free times in slot order.
	poolIDs := make([]int, 0, len(sp.pools))
	for id := range sp.pools {
		poolIDs = append(poolIDs, id)
	}
	sort.Ints(poolIDs)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(poolIDs)))
	for _, id := range poolIDs {
		p := sp.pools[id]
		b = binary.LittleEndian.AppendUint32(b, uint32(id))
		b = binary.LittleEndian.AppendUint16(b, uint16(len(p.free)))
		for _, f := range p.free {
			b = binary.LittleEndian.AppendUint64(b, uint64(f))
		}
	}

	b = sp.encodeResidency(b)

	refs := make([]uint64, 0, len(sp.children))
	for ref := range sp.children {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
	b = binary.LittleEndian.AppendUint32(b, uint32(len(refs)))
	for _, ref := range refs {
		child := sp.children[ref]
		child.waitStopped()
		b = binary.LittleEndian.AppendUint64(b, ref)
		cb, err := child.encodeTree(enc, allowed, false)
		if err != nil {
			return nil, err
		}
		b = append(b, cb...)
	}
	return b, nil
}

// execStatus reads the space's stop status and whether a goroutine is
// parked inside it, under the state lock.
func (sp *Space) execStatus() (Status, bool) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.status, sp.parked
}

// encodeResidency emits the migration residency state: the per-node
// read-only caches and which of them (if any) is the space's current
// fetched set.
func (sp *Space) encodeResidency(b []byte) []byte {
	ids := make([]int, 0, len(sp.caches))
	for id := range sp.caches {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(ids)))
	fetchedKind := byte(0) // nil
	fetchedCache := -1
	for _, id := range ids {
		b = binary.LittleEndian.AppendUint32(b, uint32(id))
		b = appendPageSet(b, sp.caches[id])
		if sp.fetched == sp.caches[id] {
			fetchedKind = 1
			fetchedCache = id
		}
	}
	if sp.fetched != nil && fetchedKind == 0 {
		fetchedKind = 2 // standalone (DisableROCache mode)
	}
	b = append(b, fetchedKind)
	switch fetchedKind {
	case 1:
		b = binary.LittleEndian.AppendUint32(b, uint32(fetchedCache))
	case 2:
		b = appendPageSet(b, sp.fetched)
	}
	return b
}

func appendPageSet(b []byte, s *pageSet) []byte {
	var all byte
	if s.all {
		all = 1
	}
	b = append(b, all)
	m := s.pages
	if s.all {
		m = s.except
	}
	addrs := make([]vm.Addr, 0, len(m))
	for a := range m {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	b = binary.LittleEndian.AppendUint32(b, uint32(len(addrs)))
	for _, a := range addrs {
		b = binary.LittleEndian.AppendUint32(b, a)
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

// --- restore -----------------------------------------------------------------

// ckptReader builds the shared image cursor with this layer's typed error.
func ckptReader(payload []byte) *imgenc.Reader {
	return &imgenc.Reader{B: payload, Wrap: func(off int, msg string) error {
		return &BadImageError{Offset: off, Msg: msg}
	}}
}

// Restore loads a checkpoint image into a freshly constructed machine,
// rebuilding the root space tree and fast-forwarding the configured
// devices to the recorded cursors. The machine must have been built with
// a configuration matching the image (*ImageMismatchError otherwise) and
// must not have Run yet; the next Run resumes the restored root instead
// of creating a fresh one. The supplied Prog receives the restored tree
// and is responsible for continuing from the state its memory records.
//
// Restore mutates nothing until the whole image has decoded and
// validated, so a machine that rejected an image is still pristine and
// may Run (or Restore a different image). The device fast-forward is
// the one mutating step; if it fails part-way — console input shorter
// than the checkpoint cursor — the machine's device state is no longer
// the pristine initial one, so the machine is poisoned: any later Run
// panics rather than silently producing a nondeterministic run.
func (m *Machine) Restore(data []byte) error {
	if m.root != nil {
		return kerr("restore", "machine already has a root (Restore before Run)")
	}
	if m.broken != nil {
		return kerr("restore", "machine poisoned by an earlier failed restore: %v", m.broken)
	}
	r, err := imgenc.Open(data, checkpointMagic, CheckpointVersion,
		func(off int, msg string) error { return &BadImageError{Offset: off, Msg: msg} },
		func(v byte) error { return &ImageVersionError{Version: v, Max: CheckpointVersion} })
	if err != nil {
		return err
	}
	devClock, devRand, devConsole, err := m.decodeConfig(r)
	if err != nil {
		return err
	}
	treeLen := int(r.U32())
	tree := r.Take(treeLen)
	forestLen := int(r.U32())
	forest := r.Take(forestLen)
	if r.Err != nil {
		return r.Err
	}
	if r.Remaining() != 0 {
		return &BadImageError{Offset: r.Off, Msg: "trailing bytes"}
	}
	spaces, err := vm.DecodeForest(forest)
	if err != nil {
		return &BadImageError{Msg: fmt.Sprintf("memory forest: %v", err)}
	}
	tr := ckptReader(tree)
	root := m.decodeTree(tr, nil, 0, spaces)
	if tr.Err != nil {
		return tr.Err
	}
	if tr.Off != len(tree) {
		return &BadImageError{Offset: tr.Off, Msg: "trailing bytes in tree section"}
	}
	// Everything decoded and validated; only now touch machine state.
	if err := m.fastForward(devClock, devRand, devConsole); err != nil {
		m.broken = err
		return err
	}
	m.root = root
	m.restored = true
	return nil
}

// decodeConfig parses the machine-identity section and validates it
// against m, returning the recorded device cursors. It is read-only: no
// machine state changes until the whole image has decoded.
func (m *Machine) decodeConfig(r *imgenc.Reader) (devClock, devRand, devConsole int64, err error) {
	nodes := int(r.U32())
	cpus := int(r.U32())
	flags := r.U8()
	var cost CostModel
	cost.TCPLike = flags&2 != 0
	for _, f := range []*int64{
		&cost.Syscall, &cost.PageCopy, &cost.PageCompare, &cost.PageAdopt,
		&cost.ByteMerge, &cost.MigrateMsg, &cost.PageTransfer, &cost.TCPExtra,
	} {
		*f = r.I64()
	}
	cost.BatchPages = int(r.I64())
	cost.BatchMsg = r.I64()
	devClock, devRand, devConsole = r.I64(), r.I64(), r.I64()
	if r.Err != nil {
		return 0, 0, 0, r.Err
	}
	mismatch := func(field, img, mach string) error {
		return &ImageMismatchError{Field: field, Image: img, Machine: mach}
	}
	switch {
	case nodes != len(m.nodes):
		err = mismatch("node count", fmt.Sprint(nodes), fmt.Sprint(len(m.nodes)))
	case cpus != m.nodes[0].cpus:
		err = mismatch("CPUs per node", fmt.Sprint(cpus), fmt.Sprint(m.nodes[0].cpus))
	case (flags&1 != 0) != m.noCache:
		err = mismatch("DisableROCache", fmt.Sprint(flags&1 != 0), fmt.Sprint(m.noCache))
	case cost != m.cost:
		err = mismatch("cost model", fmt.Sprintf("%+v", cost), fmt.Sprintf("%+v", m.cost))
	}
	return devClock, devRand, devConsole, err
}

// fastForward consumes and discards device readings up to the recorded
// cursors, so the next read the program issues sees exactly what the
// uninterrupted run saw.
func (m *Machine) fastForward(devClock, devRand, devConsole int64) error {
	for i := int64(0); i < devClock; i++ {
		m.clock()
	}
	for i := int64(0); i < devRand; i++ {
		m.rand()
	}
	if devConsole > 0 {
		buf := make([]byte, 4096)
		remaining := devConsole
		// The console is a polled device: a 0-byte read legally means "no
		// input pending yet", so tolerate a bounded number of empty reads
		// (as trace's skipReader does) before declaring the source
		// genuinely shorter than the checkpoint cursor.
		empty := 0
		for remaining > 0 {
			n := int64(len(buf))
			if n > remaining {
				n = remaining
			}
			got := m.console.read(buf[:n])
			if got == 0 {
				if empty++; empty >= 100 {
					return kerr("restore", "console input exhausted %d bytes before the checkpoint cursor", remaining)
				}
				continue
			}
			empty = 0
			remaining -= int64(got)
		}
	}
	m.devClock, m.devRand, m.devConsole = devClock, devRand, devConsole
	return nil
}

// decodeTree rebuilds one space record and, recursively, its children.
func (m *Machine) decodeTree(r *imgenc.Reader, parent *Space, ref uint64, spaces []*vm.Space) *Space {
	status := Status(r.U8())
	flags := r.U8()
	homeID := int(r.U32())
	nodeID := int(r.U32())
	if r.Err != nil {
		return nil
	}
	if homeID >= len(m.nodes) || nodeID >= len(m.nodes) {
		r.Failf("node id out of range")
		return nil
	}
	sp := newSpace(m, parent, ref, m.nodes[homeID])
	sp.node = m.nodes[nodeID]
	sp.status = status
	sp.accounted = flags&sfAccounted != 0
	sp.regs.Arg = r.U64()
	sp.regs.Ret = r.U64()
	sp.insns = r.I64()
	sp.vt = r.I64()
	sp.startVT = r.I64()
	sp.segBlocked = r.I64()
	sp.net.Msgs = r.I64()
	sp.net.Pages = r.I64()
	if flags&sfHasErr != 0 {
		sp.trapErr = errors.New(r.Str())
	}
	memIdx := int(r.U32())
	snapIdx := r.U32()
	if r.Err != nil {
		return nil
	}
	if memIdx >= len(spaces) {
		r.Failf("memory index %d out of range", memIdx)
		return nil
	}
	sp.mem = spaces[memIdx]
	if flags&sfHasSnap != 0 {
		if int(snapIdx) >= len(spaces) {
			r.Failf("snapshot index %d out of range", snapIdx)
			return nil
		}
		sp.snap = spaces[snapIdx]
	}

	nPools := int(r.U16())
	for i := 0; i < nPools && r.Err == nil; i++ {
		id := int(r.U32())
		n := int(r.U16())
		if r.Err != nil || n > r.Remaining() {
			r.Failf("pool size %d exceeds image", n)
			return nil
		}
		p := &vcpuPool{free: make([]int64, n)}
		for j := range p.free {
			p.free[j] = r.I64()
		}
		if sp.pools == nil {
			sp.pools = make(map[int]*vcpuPool)
		}
		sp.pools[id] = p
	}

	if !m.decodeResidency(r, sp) {
		return nil
	}

	nChildren := int(r.U32())
	if r.Err == nil && nChildren > r.Remaining() {
		r.Failf("child count %d exceeds image", nChildren)
		return nil
	}
	for i := 0; i < nChildren && r.Err == nil; i++ {
		cref := r.U64()
		child := m.decodeTree(r, sp, cref, spaces)
		if child == nil {
			return nil
		}
		if sp.children == nil {
			sp.children = make(map[uint64]*Space)
		}
		sp.children[cref] = child
	}
	if r.Err != nil {
		return nil
	}
	return sp
}

// decodeResidency rebuilds the migration residency state.
func (m *Machine) decodeResidency(r *imgenc.Reader, sp *Space) bool {
	nCaches := int(r.U16())
	for i := 0; i < nCaches && r.Err == nil; i++ {
		id := int(r.U32())
		set := readPageSet(r)
		if r.Err != nil {
			return false
		}
		if sp.caches == nil {
			sp.caches = make(map[int]*pageSet)
		}
		sp.caches[id] = set
	}
	switch kind := r.U8(); kind {
	case 0:
	case 1:
		id := int(r.U32())
		if r.Err != nil {
			return false
		}
		c, ok := sp.caches[id]
		if !ok {
			r.Failf("fetched set names missing cache %d", id)
			return false
		}
		sp.fetched = c
	case 2:
		sp.fetched = readPageSet(r)
	default:
		r.Failf("bad fetched-set kind %d", kind)
	}
	return r.Err == nil
}

func readPageSet(r *imgenc.Reader) *pageSet {
	s := &pageSet{all: r.U8() != 0}
	n := int(r.U32())
	if r.Err == nil && n*4 > r.Remaining() {
		r.Failf("page set size %d exceeds image", n)
		return s
	}
	for i := 0; i < n && r.Err == nil; i++ {
		a := vm.Addr(r.U32())
		if s.all {
			if s.except == nil {
				s.except = make(map[vm.Addr]struct{})
			}
			s.except[a] = struct{}{}
		} else {
			if s.pages == nil {
				s.pages = make(map[vm.Addr]struct{})
			}
			s.pages[a] = struct{}{}
		}
	}
	return s
}
