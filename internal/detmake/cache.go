package detmake

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/castore"
)

// The build cache is the content-addressed checkpoint store wearing a
// second hat, split the way remote build caches split it:
//
//   - the CAS half is castore itself: every output's bytes live as a
//     chunk under their own SHA-256, and a task's result manifest is a
//     castore node whose LeafRefs are the output chunks — so the
//     store's reachability GC traces build results exactly like
//     checkpoint images, and every Get re-hashes, making corruption a
//     typed *castore.ChunkHashError rather than silent reuse;
//   - the action index is the small mutable map from action key (the
//     content hash of action + input tree) to manifest key. It is the
//     only non-content-addressed state, mirroring the "action cache"
//     of Bazel-style remote caches.
//
// Determinism is what makes the whole scheme sound: the kernel
// guarantees a task's output bits are a pure function of the action
// key's preimage, so a verified hit is bit-identical to re-execution.

// actionKeyVersion salts every action key; bump it when the key
// derivation or the hermetic execution semantics change, so stale
// caches miss instead of serving results computed under old rules.
const actionKeyVersion = "detmake action v1\n"

// actionKey derives the cache key of one task against concrete input
// contents: a hash over the action name and args, the sorted
// (path, content-hash) input tree, the sorted output paths, and the
// hermetic image size (it bounds what executions can succeed).
func actionKey(t *Task, inputHash map[string]castore.Key, taskFSSize uint64) castore.Key {
	h := sha256.New()
	h.Write([]byte(actionKeyVersion))
	var sz [8]byte
	binary.LittleEndian.PutUint64(sz[:], taskFSSize)
	h.Write(sz[:])
	h.Write([]byte(t.Action))
	h.Write([]byte{0})
	for _, arg := range t.Args {
		h.Write([]byte(arg))
		h.Write([]byte{0})
	}
	ins := append([]string{}, t.Inputs...)
	sort.Strings(ins)
	for _, in := range ins {
		k := inputHash[in]
		h.Write([]byte(in))
		h.Write([]byte{0})
		h.Write(k[:])
	}
	outs := append([]string{}, t.Outputs...)
	sort.Strings(outs)
	for _, out := range outs {
		h.Write([]byte{1})
		h.Write([]byte(out))
		h.Write([]byte{0})
	}
	var key castore.Key
	h.Sum(key[:0])
	return key
}

// manifestMagic frames a result manifest's payload.
const manifestMagic = "DMK1"

// manifest is the decoded form of a task result node: which output
// paths the LeafRefs hold, in LeafRef order.
type manifest struct {
	Action  castore.Key // the action key this result answers (sanity check)
	Outputs []string    // Outputs[i] is the path of LeafRefs[i]
	Cost    int64       // the task space's virtual-time cost when executed
}

// encodeManifest frames the payload carried by a result node.
func encodeManifest(m manifest) []byte {
	var b []byte
	b = append(b, manifestMagic...)
	b = append(b, m.Action[:]...)
	b = binary.LittleEndian.AppendUint64(b, uint64(m.Cost))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Outputs)))
	for _, p := range m.Outputs {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(p)))
		b = append(b, p...)
	}
	return b
}

// decodeManifest parses a result node's payload. Framing damage is a
// *castore.NodeFormatError like any other malformed node.
func decodeManifest(p []byte) (manifest, error) {
	bad := func(msg string) (manifest, error) {
		return manifest{}, &castore.NodeFormatError{Msg: "detmake manifest: " + msg}
	}
	if len(p) < len(manifestMagic)+castore.KeySize+12 || string(p[:4]) != manifestMagic {
		return bad("short or wrong magic")
	}
	p = p[4:]
	var m manifest
	copy(m.Action[:], p[:castore.KeySize])
	p = p[castore.KeySize:]
	m.Cost = int64(binary.LittleEndian.Uint64(p))
	n := binary.LittleEndian.Uint32(p[8:])
	p = p[12:]
	for i := uint32(0); i < n; i++ {
		if len(p) < 4 {
			return bad("truncated path count")
		}
		l := binary.LittleEndian.Uint32(p)
		p = p[4:]
		if uint32(len(p)) < l {
			return bad("truncated path")
		}
		m.Outputs = append(m.Outputs, string(p[:l]))
		p = p[l:]
	}
	if len(p) != 0 {
		return bad("trailing bytes")
	}
	return m, nil
}

// ActionIndex maps action keys to result-manifest keys: the one piece
// of build-cache state that is not content-addressed. Implementations
// must be sound but need not be complete — a lost entry is a cache
// miss, never an error.
type ActionIndex interface {
	// Lookup returns the manifest key recorded for the action key.
	Lookup(action castore.Key) (castore.Key, bool, error)
	// Record stores action -> manifest, replacing any previous entry.
	Record(action, man castore.Key) error
	// Roots returns every recorded manifest key, sorted, for use as GC
	// roots with castore.Collect.
	Roots() ([]castore.Key, error)
}

// MemIndex is the in-memory ActionIndex.
type MemIndex struct {
	m map[castore.Key]castore.Key
}

// NewMemIndex returns an empty in-memory index.
func NewMemIndex() *MemIndex { return &MemIndex{m: make(map[castore.Key]castore.Key)} }

// Lookup implements ActionIndex.
func (x *MemIndex) Lookup(action castore.Key) (castore.Key, bool, error) {
	k, ok := x.m[action]
	return k, ok, nil
}

// Record implements ActionIndex.
func (x *MemIndex) Record(action, man castore.Key) error {
	x.m[action] = man
	return nil
}

// Roots implements ActionIndex.
func (x *MemIndex) Roots() ([]castore.Key, error) {
	out := make([]castore.Key, 0, len(x.m))
	for _, k := range x.m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		return string(out[i][:]) < string(out[j][:])
	})
	return out, nil
}

// DirIndex persists the action index as one small file per action key
// under <dir>, conventionally the "actions" directory beside a
// DirStore's chunk fan-out (DirStore documents such named roots as the
// caller's business). Writes go through a temp file + rename so a
// crashed build never leaves a torn entry; an unreadable entry is a
// miss, not an error.
type DirIndex struct {
	dir string
}

// OpenDirIndex creates/opens an on-disk index rooted at dir.
func OpenDirIndex(dir string) (*DirIndex, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("detmake: opening action index: %w", err)
	}
	return &DirIndex{dir: dir}, nil
}

func (x *DirIndex) path(action castore.Key) string {
	return filepath.Join(x.dir, action.String())
}

// Lookup implements ActionIndex.
func (x *DirIndex) Lookup(action castore.Key) (castore.Key, bool, error) {
	b, err := os.ReadFile(x.path(action))
	if err != nil {
		if os.IsNotExist(err) {
			return castore.Key{}, false, nil
		}
		return castore.Key{}, false, err
	}
	k, perr := castore.ParseKey(string(b))
	if perr != nil {
		return castore.Key{}, false, nil // torn entry: treat as miss
	}
	return k, true, nil
}

// Record implements ActionIndex.
func (x *DirIndex) Record(action, man castore.Key) error {
	tmp := x.path(action) + ".tmp"
	if err := os.WriteFile(tmp, []byte(man.String()), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, x.path(action))
}

// Roots implements ActionIndex.
func (x *DirIndex) Roots() ([]castore.Key, error) {
	ents, err := os.ReadDir(x.dir)
	if err != nil {
		return nil, err
	}
	var out []castore.Key
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		action, err := castore.ParseKey(e.Name())
		if err != nil {
			continue
		}
		k, ok, err := x.Lookup(action)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return string(out[i][:]) < string(out[j][:])
	})
	return out, nil
}

// storeResult writes one task result into the cache: each output as
// its own chunk, then the manifest node referencing them. With heal
// set (the task re-executed after a rejected cache entry), chunks that
// are nominally present are deleted and re-put, so a corrupted stored
// form is replaced instead of surviving behind Put's idempotence.
func storeResult(s castore.BlobStore, action castore.Key, outputs []string, bytesOf map[string][]byte, cost int64, heal bool) (castore.Key, int64, error) {
	del, canDel := s.(interface{ Delete(castore.Key) error })
	var stored int64
	putBlob := func(k castore.Key, b []byte) error {
		has, err := s.Has(k)
		if err != nil {
			return err
		}
		if has && heal && canDel {
			if err := del.Delete(k); err != nil {
				return err
			}
			has = false
		}
		if !has {
			if err := s.Put(k, b); err != nil {
				return err
			}
			stored += int64(len(b))
		}
		return nil
	}
	leafRefs := make([]castore.Key, len(outputs))
	for i, p := range outputs {
		b := bytesOf[p]
		k := castore.KeyOf(b)
		if err := putBlob(k, b); err != nil {
			return castore.Key{}, stored, err
		}
		leafRefs[i] = k
	}
	node := castore.BuildNode(nil, leafRefs, encodeManifest(manifest{Action: action, Outputs: outputs, Cost: cost}))
	man := castore.KeyOf(node)
	if err := putBlob(man, node); err != nil {
		return castore.Key{}, stored, err
	}
	return man, stored, nil
}

// fetchResult resolves an action key through the index and store,
// re-verifying every chunk hash on the way. The bool reports a usable
// hit; a miss or any verification failure (ChunkMissingError,
// ChunkHashError, NodeFormatError) returns the error for the caller to
// classify — fetch never fabricates bytes.
func fetchResult(s castore.BlobStore, x ActionIndex, action castore.Key) (map[string][]byte, int64, bool, error) {
	man, ok, err := x.Lookup(action)
	if err != nil || !ok {
		return nil, 0, false, err
	}
	node, err := castore.GetNode(s, man)
	if err != nil {
		return nil, 0, false, err
	}
	m, err := decodeManifest(node.Payload)
	if err != nil {
		return nil, 0, false, err
	}
	if m.Action != action || len(m.Outputs) != len(node.LeafRefs) {
		return nil, 0, false, &castore.NodeFormatError{Msg: "detmake manifest: answers a different action"}
	}
	out := make(map[string][]byte, len(m.Outputs))
	var fetched int64
	for i, p := range m.Outputs {
		b, err := s.Get(node.LeafRefs[i]) // re-hashes: corruption is typed here
		if err != nil {
			return nil, 0, false, err
		}
		out[p] = b
		fetched += int64(len(b))
	}
	return out, fetched, true, nil
}
