package detmake

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/fs"
	"repro/internal/kernel"
)

// ActionFunc is the body of a build action. It runs inside the task's
// private space over a hermetic file system image and must be a pure
// function of the declared inputs and Args — the kernel enforces the
// space isolation, the TaskCtx enforces the file view, and the cache
// key assumes both.
type ActionFunc func(c *TaskCtx) error

// Actions maps action names to bodies, playing the role uproc's
// program registry plays for executables.
type Actions struct {
	m map[string]ActionFunc
}

// NewActions returns an empty registry.
func NewActions() *Actions { return &Actions{m: make(map[string]ActionFunc)} }

// Register adds an action under name, replacing any previous body.
func (a *Actions) Register(name string, fn ActionFunc) { a.m[name] = fn }

// Lookup finds an action body.
func (a *Actions) Lookup(name string) (ActionFunc, bool) {
	fn, ok := a.m[name]
	return fn, ok
}

// Names lists registered actions in sorted (deterministic) order.
func (a *Actions) Names() []string {
	out := make([]string, 0, len(a.m))
	for n := range a.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Runtime task errors.

// UndeclaredInputError reports a task that read a path which exists in
// the build tree but is not among its declared inputs — a hermeticity
// violation that would make the cache key unsound if allowed through.
type UndeclaredInputError struct {
	Task string
	Path string
}

func (e *UndeclaredInputError) Error() string {
	return fmt.Sprintf("detmake: task %s read undeclared input %q", e.Task, e.Path)
}

// TaskError reports an action body that failed. Err unwraps to the
// underlying cause — in particular errors.Is(err, fs.ErrNoSpace) holds
// when the task's hermetic image filled up mid-action.
type TaskError struct {
	Task string
	Err  error
}

func (e *TaskError) Error() string { return fmt.Sprintf("detmake: task %s failed: %v", e.Task, e.Err) }
func (e *TaskError) Unwrap() error { return e.Err }

// MissingOutputError reports a task that completed without writing one
// of its declared outputs.
type MissingOutputError struct {
	Task string
	Path string
}

func (e *MissingOutputError) Error() string {
	return fmt.Sprintf("detmake: task %s did not write declared output %q", e.Task, e.Path)
}

// OutputConflictError reports path-keyed reconciliation finding
// divergent writes between sibling tasks of one wave (e.g. a type
// clash between one task's output file and another's output
// directory). Tasks holds [first writer, conflicting writer] in the
// deterministic collection order, so attribution is stable.
type OutputConflictError struct {
	Path  string
	Tasks [2]string
}

func (e *OutputConflictError) Error() string {
	return fmt.Sprintf("detmake: tasks %s and %s wrote conflicting state at %q", e.Tasks[0], e.Tasks[1], e.Path)
}

// TaskCtx is an action's window onto its hermetic world: the declared
// inputs (readable), the declared outputs (writable), and scratch
// space. Reads outside the declared inputs are the one determinism
// hazard the kernel cannot see — the path exists in the wider build
// tree but not in this image — so the context detects them and fails
// the task typed, whether or not the action swallows the error.
type TaskCtx struct {
	task      *Task
	img       *fs.FS
	env       *kernel.Env
	inputs    map[string]bool
	tree      map[string]bool // live master paths at wave start
	violation *UndeclaredInputError
}

// TaskID returns the running task's ID.
func (c *TaskCtx) TaskID() string { return c.task.ID }

// Args returns the task's action arguments.
func (c *TaskCtx) Args() []string { return c.task.Args }

// Inputs returns the declared input paths in declaration order.
func (c *TaskCtx) Inputs() []string { return append([]string{}, c.task.Inputs...) }

// Outputs returns the declared output paths in declaration order.
func (c *TaskCtx) Outputs() []string { return append([]string{}, c.task.Outputs...) }

// Tick charges n instructions of modeled work to the task's space, the
// deterministic stand-in for compute cost (a compiler action charges
// for the bytes it compiles, say).
func (c *TaskCtx) Tick(n int64) { c.env.Tick(n) }

// ReadFile returns a file from the hermetic image: a declared input,
// or something the action itself wrote earlier. A read of a path that
// exists in the build tree but was not declared fails typed and marks
// the task violated.
func (c *TaskCtx) ReadFile(path string) ([]byte, error) {
	b, err := c.img.ReadFile(path)
	if err == nil {
		return b, nil
	}
	if errors.Is(err, fs.ErrNotFound) && c.tree[path] && !c.inputs[path] {
		v := &UndeclaredInputError{Task: c.task.ID, Path: path}
		if c.violation == nil {
			c.violation = v
		}
		return nil, v
	}
	return nil, err
}

// WriteFile writes a file in the hermetic image, creating parent
// directories as needed. Anything that is not a declared output is
// scratch: it is erased before the image reconciles back. Declared
// inputs are read-only — the staged copy must reconcile away as
// unchanged, so overwriting one is refused here.
func (c *TaskCtx) WriteFile(path string, b []byte) error {
	if c.inputs[path] {
		return fmt.Errorf("detmake: task %s wrote declared input %q: inputs are read-only", c.task.ID, path)
	}
	if err := mkdirAll(c.img, path); err != nil {
		return err
	}
	return c.img.WriteFile(path, b)
}

// mkdirAll creates path's parent directories (not path itself).
func mkdirAll(f *fs.FS, path string) error {
	parts := strings.Split(path, "/")
	for i := 1; i < len(parts); i++ {
		dir := strings.Join(parts[:i], "/")
		if err := f.Mkdir(dir); err != nil && !errors.Is(err, fs.ErrExists) {
			return err
		}
	}
	return nil
}

// DefaultActions returns the built-in action set shared by the command
// line tool, the bench workloads and the tests:
//
//	gen      write Args joined by spaces to the single output
//	concat   concatenate inputs (declaration order) into the output
//	upper    uppercase the single input into the single output
//	derive   sha256 over Args and input contents, hex into the output —
//	         the generic "real work" stand-in: content-propagating, so
//	         a changed input reruns the whole downstream cone
//	chunk    split the single input into len(Outputs) contiguous pieces
//
// Every builtin Ticks in proportion to bytes processed, so virtual
// time reflects modeled work deterministically.
func DefaultActions() *Actions {
	a := NewActions()
	a.Register("gen", func(c *TaskCtx) error {
		out := []byte(strings.Join(c.Args(), " ") + "\n")
		c.Tick(int64(len(out)))
		return c.WriteFile(c.Outputs()[0], out)
	})
	a.Register("concat", func(c *TaskCtx) error {
		var buf []byte
		for _, in := range c.Inputs() {
			b, err := c.ReadFile(in)
			if err != nil {
				return err
			}
			buf = append(buf, b...)
		}
		c.Tick(int64(len(buf)))
		return c.WriteFile(c.Outputs()[0], buf)
	})
	a.Register("upper", func(c *TaskCtx) error {
		b, err := c.ReadFile(c.Inputs()[0])
		if err != nil {
			return err
		}
		c.Tick(int64(len(b)))
		return c.WriteFile(c.Outputs()[0], []byte(strings.ToUpper(string(b))))
	})
	a.Register("derive", func(c *TaskCtx) error {
		h := sha256.New()
		for _, arg := range c.Args() {
			h.Write([]byte(arg))
			h.Write([]byte{0})
		}
		n := 0
		for _, in := range c.Inputs() {
			b, err := c.ReadFile(in)
			if err != nil {
				return err
			}
			h.Write([]byte(in))
			h.Write([]byte{0})
			h.Write(b)
			n += len(b)
		}
		c.Tick(int64(n) + 64)
		return c.WriteFile(c.Outputs()[0], []byte(hex.EncodeToString(h.Sum(nil))+"\n"))
	})
	a.Register("chunk", func(c *TaskCtx) error {
		b, err := c.ReadFile(c.Inputs()[0])
		if err != nil {
			return err
		}
		outs := c.Outputs()
		c.Tick(int64(len(b)))
		per := len(b) / len(outs)
		for i, out := range outs {
			lo, hi := i*per, (i+1)*per
			if i == len(outs)-1 {
				hi = len(b)
			}
			if err := c.WriteFile(out, b[lo:hi]); err != nil {
				return err
			}
		}
		return nil
	})
	return a
}
