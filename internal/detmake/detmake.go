// Package detmake is a deterministic parallel build executor: the
// parmake workload of the paper's §5, grown into a real DAG build
// system over the Determinator kernel model.
//
// Each build task runs in a private child space holding a hermetic
// internal/fs image of exactly its declared inputs; outputs flow back
// by the same path-keyed reconciliation user-level processes use
// (§4.2), committed at quiescent points between topological waves.
// Because the kernel enforces determinism, a task's output bits are a
// pure function of (action, input tree) — so results are cacheable by
// construction: detmake keys every task result by a content hash of
// its action and input contents into an internal/castore, and a cache
// hit is provably bit-identical to cold execution (the property tests
// and detbench rows assert the final images checksum-equal).
//
// Dispatch order is deterministic everywhere: topological wave, then
// task-ID tiebreak, never map iteration order.
package detmake

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Task is one node of the build DAG: a pure action over declared
// input paths producing declared output paths. Tasks are plain data —
// the action is named and resolved through an Actions registry — so a
// task is hashable into a cache key and loadable from a build file.
type Task struct {
	ID      string   // unique; the deterministic tiebreak key
	Action  string   // registry name of the action to run
	Args    []string // action arguments (hashed into the cache key)
	Inputs  []string // declared input paths (the hermetic view)
	Outputs []string // declared output paths (all must be written)
}

// Static graph errors.
var (
	ErrBadTask       = errors.New("detmake: invalid task")
	ErrUnknownAction = errors.New("detmake: unknown action")
)

// CycleError reports that the DAG has a dependency cycle. Tasks lists
// every task on a cycle (or depending on one), sorted by ID, so the
// report is deterministic.
type CycleError struct {
	Tasks []string
}

func (e *CycleError) Error() string {
	return fmt.Sprintf("detmake: dependency cycle through tasks %s", strings.Join(e.Tasks, ", "))
}

// DuplicateOutputError reports two tasks declaring the same output
// path. Tasks holds the pair in sorted ID order — attribution is
// deterministic no matter the declaration order.
type DuplicateOutputError struct {
	Path  string
	Tasks [2]string
}

func (e *DuplicateOutputError) Error() string {
	return fmt.Sprintf("detmake: tasks %s and %s both declare output %q", e.Tasks[0], e.Tasks[1], e.Path)
}

// MissingInputError reports a declared input that no task produces and
// the source tree does not contain.
type MissingInputError struct {
	Task string
	Path string
}

func (e *MissingInputError) Error() string {
	return fmt.Sprintf("detmake: task %s input %q has no producer and is not a source", e.Task, e.Path)
}

// Graph is a validated set of tasks. Construction checks the static
// invariants that do not depend on the source tree: unique IDs, sane
// paths, and single-writer outputs.
type Graph struct {
	tasks []*Task          // sorted by ID
	byID  map[string]*Task // lookup only; all iteration goes via tasks
}

// NewGraph validates tasks and builds a graph. The duplicate-output
// check is the static half of conflict detection: two tasks declaring
// the same output path conflict before anything runs, attributed to
// the sorted task pair.
func NewGraph(tasks []*Task) (*Graph, error) {
	g := &Graph{byID: make(map[string]*Task, len(tasks))}
	for _, t := range tasks {
		if t.ID == "" {
			return nil, fmt.Errorf("%w: empty task ID", ErrBadTask)
		}
		if _, dup := g.byID[t.ID]; dup {
			return nil, fmt.Errorf("%w: duplicate task ID %q", ErrBadTask, t.ID)
		}
		if t.Action == "" {
			return nil, fmt.Errorf("%w: task %s has no action", ErrBadTask, t.ID)
		}
		if len(t.Outputs) == 0 {
			return nil, fmt.Errorf("%w: task %s declares no outputs", ErrBadTask, t.ID)
		}
		for _, p := range append(append([]string{}, t.Inputs...), t.Outputs...) {
			if err := checkPath(t.ID, p); err != nil {
				return nil, err
			}
		}
		seen := make(map[string]bool, len(t.Inputs))
		for _, p := range t.Inputs {
			if seen[p] {
				return nil, fmt.Errorf("%w: task %s declares input %q twice", ErrBadTask, t.ID, p)
			}
			seen[p] = true
		}
		for _, p := range t.Outputs {
			if seen[p] {
				return nil, fmt.Errorf("%w: task %s declares %q as both input and output", ErrBadTask, t.ID, p)
			}
		}
		g.byID[t.ID] = t
		g.tasks = append(g.tasks, t)
	}
	sort.Slice(g.tasks, func(i, j int) bool { return g.tasks[i].ID < g.tasks[j].ID })

	producer := make(map[string]string, len(tasks))
	for _, t := range g.tasks { // sorted, so the reported pair is stable
		for _, out := range t.Outputs {
			if first, dup := producer[out]; dup {
				pair := [2]string{first, t.ID}
				if pair[0] > pair[1] {
					pair[0], pair[1] = pair[1], pair[0]
				}
				return nil, &DuplicateOutputError{Path: out, Tasks: pair}
			}
			producer[out] = t.ID
		}
	}
	return g, nil
}

// checkPath enforces the path shape tasks may declare. Names starting
// with '#' are reserved for the runtime's control files (the same
// convention uproc uses for its console files).
func checkPath(task, p string) error {
	if p == "" {
		return fmt.Errorf("%w: task %s declares an empty path", ErrBadTask, task)
	}
	if strings.HasPrefix(p, "#") || strings.Contains(p, "/#") {
		return fmt.Errorf("%w: task %s declares reserved path %q", ErrBadTask, task, p)
	}
	if strings.HasPrefix(p, "/") || strings.HasSuffix(p, "/") {
		return fmt.Errorf("%w: task %s declares non-relative path %q", ErrBadTask, task, p)
	}
	return nil
}

// Tasks returns the tasks in sorted ID order.
func (g *Graph) Tasks() []*Task { return g.tasks }

// Task looks a task up by ID.
func (g *Graph) Task(id string) (*Task, bool) {
	t, ok := g.byID[id]
	return t, ok
}

// Plan is the scheduled form of a graph against a concrete source
// tree: tasks grouped into topological waves, each wave sorted by ID.
// Every task in wave k depends only on sources and outputs of waves
// < k, so a wave's tasks are mutually independent and may run in
// parallel between two quiescent points.
type Plan struct {
	Waves    [][]*Task
	Producer map[string]string // output path -> producing task ID
}

// Plan schedules the graph over the given source paths. Inputs with no
// producer must appear in sources; cycles are reported typed.
func (g *Graph) Plan(sources map[string]bool) (*Plan, error) {
	producer := make(map[string]string, len(g.tasks))
	for _, t := range g.tasks {
		for _, out := range t.Outputs {
			producer[out] = t.ID
		}
	}
	// Level via longest-path over producer edges: level(t) = 1 + max
	// level of any producing task, memoized, with an explicit visiting
	// mark for cycle detection.
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(g.tasks))
	level := make(map[string]int, len(g.tasks))
	var onCycle []string
	var visit func(t *Task) bool
	visit = func(t *Task) bool {
		switch state[t.ID] {
		case done:
			return true
		case visiting:
			return false // back edge: cycle
		}
		state[t.ID] = visiting
		lv := 0
		for _, in := range t.Inputs {
			pid, ok := producer[in]
			if !ok {
				continue // source (or missing: checked below)
			}
			if !visit(g.byID[pid]) {
				return false
			}
			if pl := level[pid]; pl+1 > lv {
				lv = pl + 1
			}
		}
		state[t.ID] = done
		level[t.ID] = lv
		return true
	}
	for _, t := range g.tasks {
		visit(t) // a false return leaves the chain marked, collected below
	}
	for _, t := range g.tasks {
		if state[t.ID] != done {
			onCycle = append(onCycle, t.ID)
		}
	}
	if len(onCycle) > 0 {
		sort.Strings(onCycle)
		return nil, &CycleError{Tasks: onCycle}
	}
	for _, t := range g.tasks {
		for _, in := range t.Inputs {
			if _, ok := producer[in]; !ok && !sources[in] {
				return nil, &MissingInputError{Task: t.ID, Path: in}
			}
		}
	}
	maxLv := 0
	for _, t := range g.tasks {
		if level[t.ID] > maxLv {
			maxLv = level[t.ID]
		}
	}
	waves := make([][]*Task, maxLv+1)
	for _, t := range g.tasks { // sorted by ID, so each wave is too
		waves[level[t.ID]] = append(waves[level[t.ID]], t)
	}
	return &Plan{Waves: waves, Producer: producer}, nil
}

// Cone returns the IDs of every task transitively downstream of any of
// the given paths — the set an incremental rebuild re-executes when
// exactly those inputs change. Sorted, deterministic.
func (g *Graph) Cone(changed ...string) []string {
	dirty := make(map[string]bool, len(changed))
	for _, p := range changed {
		dirty[p] = true
	}
	hit := make(map[string]bool)
	for {
		grew := false
		for _, t := range g.tasks {
			if hit[t.ID] {
				continue
			}
			for _, in := range t.Inputs {
				if dirty[in] {
					hit[t.ID] = true
					grew = true
					for _, out := range t.Outputs {
						dirty[out] = true
					}
					break
				}
			}
		}
		if !grew {
			break
		}
	}
	ids := make([]string, 0, len(hit))
	for _, t := range g.tasks { // sorted iteration, not map order
		if hit[t.ID] {
			ids = append(ids, t.ID)
		}
	}
	return ids
}
