package detmake

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/castore"
)

func TestManifestRoundTrip(t *testing.T) {
	m := manifest{
		Action:  castore.KeyOf([]byte("action")),
		Outputs: []string{"a.out", "obj/deep/x.o"},
		Cost:    12345,
	}
	got, err := decodeManifest(encodeManifest(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Action != m.Action || got.Cost != m.Cost || len(got.Outputs) != 2 ||
		got.Outputs[0] != m.Outputs[0] || got.Outputs[1] != m.Outputs[1] {
		t.Fatalf("round trip = %+v, want %+v", got, m)
	}
}

func TestManifestDecodeRejectsDamage(t *testing.T) {
	enc := encodeManifest(manifest{Action: castore.KeyOf([]byte("a")), Outputs: []string{"x"}})
	for _, bad := range [][]byte{
		nil,
		enc[:len(enc)-1],
		append(append([]byte{}, enc...), 0),
		[]byte("XXXX not a manifest at all, far too short? no, long enough to pass the length gate......."),
	} {
		if _, err := decodeManifest(bad); err == nil {
			t.Fatalf("decodeManifest(%d bytes) accepted damage", len(bad))
		} else if !errors.As(err, new(*castore.NodeFormatError)) {
			t.Fatalf("damage error = %T, want *NodeFormatError", err)
		}
	}
}

// The action key must move with every semantic ingredient and nothing
// else.
func TestActionKeySensitivity(t *testing.T) {
	hash := map[string]castore.Key{
		"a": castore.KeyOf([]byte("1")),
		"b": castore.KeyOf([]byte("2")),
	}
	base := &Task{ID: "t", Action: "derive", Args: []string{"x"}, Inputs: []string{"a", "b"}, Outputs: []string{"o"}}
	k0 := actionKey(base, hash, 1<<20)

	if k := actionKey(base, hash, 1<<20); k != k0 {
		t.Fatal("key not stable")
	}
	// Input declaration order must not matter (sorted into the key).
	swapped := *base
	swapped.Inputs = []string{"b", "a"}
	if k := actionKey(&swapped, hash, 1<<20); k != k0 {
		t.Fatal("key depends on input declaration order")
	}
	// The task ID must not matter: same action + inputs = same result.
	renamed := *base
	renamed.ID = "renamed"
	if k := actionKey(&renamed, hash, 1<<20); k != k0 {
		t.Fatal("key depends on task ID")
	}
	for name, variant := range map[string]func() castore.Key{
		"action": func() castore.Key {
			v := *base
			v.Action = "other"
			return actionKey(&v, hash, 1<<20)
		},
		"args": func() castore.Key {
			v := *base
			v.Args = []string{"y"}
			return actionKey(&v, hash, 1<<20)
		},
		"input content": func() castore.Key {
			h2 := map[string]castore.Key{"a": castore.KeyOf([]byte("changed")), "b": hash["b"]}
			return actionKey(base, h2, 1<<20)
		},
		"outputs": func() castore.Key {
			v := *base
			v.Outputs = []string{"p"}
			return actionKey(&v, hash, 1<<20)
		},
		"image size": func() castore.Key {
			return actionKey(base, hash, 2<<20)
		},
	} {
		if variant() == k0 {
			t.Fatalf("key insensitive to %s", name)
		}
	}
}

func TestDirIndex(t *testing.T) {
	dir := t.TempDir()
	idx, err := OpenDirIndex(filepath.Join(dir, "actions"))
	if err != nil {
		t.Fatal(err)
	}
	action := castore.KeyOf([]byte("some action"))
	man := castore.KeyOf([]byte("its manifest"))
	if _, ok, err := idx.Lookup(action); ok || err != nil {
		t.Fatalf("empty lookup = %v, %v", ok, err)
	}
	if err := idx.Record(action, man); err != nil {
		t.Fatal(err)
	}
	got, ok, err := idx.Lookup(action)
	if err != nil || !ok || got != man {
		t.Fatalf("lookup = %v %v %v", got, ok, err)
	}
	// Reopen: entries persist.
	idx2, err := OpenDirIndex(filepath.Join(dir, "actions"))
	if err != nil {
		t.Fatal(err)
	}
	if got, ok, _ := idx2.Lookup(action); !ok || got != man {
		t.Fatal("entry lost on reopen")
	}
	roots, err := idx2.Roots()
	if err != nil || len(roots) != 1 || roots[0] != man {
		t.Fatalf("roots = %v, %v", roots, err)
	}
	// A torn entry reads as a miss, not an error.
	if err := os.WriteFile(filepath.Join(dir, "actions", action.String()), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := idx2.Lookup(action); ok || err != nil {
		t.Fatalf("torn lookup = %v, %v", ok, err)
	}
}

// End-to-end over the on-disk store: a second build in a fresh process
// (modeled by fresh handles over the same directory) is fully warm,
// and GC over index roots keeps every cached result alive.
func TestDirStoreBuildCache(t *testing.T) {
	dir := t.TempDir()
	g, srcs := compileGraphStandalone(t)

	open := func() (castore.Store, ActionIndex) {
		store, err := castore.OpenDirStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := OpenDirIndex(filepath.Join(dir, "actions"))
		if err != nil {
			t.Fatal(err)
		}
		return store, idx
	}
	store, idx := open()
	cold, err := Build(Config{Graph: g, Sources: srcs, Store: store, Index: idx})
	if err != nil {
		t.Fatal(err)
	}
	store2, idx2 := open()
	warm, err := Build(Config{Graph: g, Sources: srcs, Store: store2, Index: idx2})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.CacheHits != 3 || warm.Stats.Executed != 0 {
		t.Fatalf("warm-across-process stats = %+v", warm.Stats)
	}
	if warm.TreeDigest != cold.TreeDigest || warm.Checksum != cold.Checksum {
		t.Fatal("on-disk warm build differs in bits")
	}

	// GC with the index's manifests as roots must not collect anything
	// a warm build needs.
	roots, err := idx2.Roots()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := castore.Collect(store2, roots); err != nil {
		t.Fatal(err)
	}
	store3, idx3 := open()
	again, err := Build(Config{Graph: g, Sources: srcs, Store: store3, Index: idx3})
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats.CacheHits != 3 {
		t.Fatalf("post-GC stats = %+v, want all hits", again.Stats)
	}
}

func compileGraphStandalone(t *testing.T) (*Graph, map[string][]byte) {
	t.Helper()
	g, err := NewGraph([]*Task{
		mkTask("cc-main", "upper", []string{"main.o"}, []string{"main.c"}),
		mkTask("cc-util", "upper", []string{"util.o"}, []string{"util.c"}),
		mkTask("link", "concat", []string{"a.out"}, []string{"main.o", "util.o"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, map[string][]byte{
		"main.c": []byte("int main;\n"),
		"util.c": []byte("int util;\n"),
	}
}
