package detmake

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/castore"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/vm"
)

// Address-space layout of a build. The master replica is the build
// tree's committed truth; the other regions are per-task scratch in
// the root space, reused between tasks and waves.
const (
	// masterBase holds the committed build tree (sources + outputs of
	// committed waves) in the root space.
	masterBase vm.Addr = fs.DefaultBase
	// stageBase is where the root assembles each task's hermetic input
	// image; the kernel Put copies it to the same address in the child,
	// so fork-time offsets match exactly.
	stageBase vm.Addr = 0xA000_0000
	// collectBase is where a finished child's image is Get-copied for
	// reconciliation (the parent-side scratch of §4.2).
	collectBase vm.Addr = 0xB000_0000
	// outboxBase holds the per-wave outbox replica sibling images
	// reconcile into before the wave commits to the master.
	outboxBase vm.Addr = 0xC000_0000

	// statusPath is the reserved control file a task writes its outcome
	// into before halting (same '#' convention as uproc's console files).
	statusPath = "#detmake-status"
)

// Defaults for Config's zero values.
const (
	DefaultJobs         = 8
	DefaultTaskFSSize   = uint64(4 << 20)
	DefaultMasterFSSize = fs.DefaultSize
)

// Config describes one build.
type Config struct {
	Graph   *Graph
	Actions *Actions          // nil means DefaultActions()
	Sources map[string][]byte // initial tree contents by path

	// Store and Index form the build cache. A nil Store disables
	// caching (every task executes); a nil Index with a non-nil Store
	// gets a fresh MemIndex, which still dedups within the build.
	Store castore.BlobStore
	Index ActionIndex

	// Jobs is the modeled CPU count tasks of one wave share
	// (kernel.Config.CPUsPerNode). Build results are bit-identical at
	// every setting; only virtual time (the modeled makespan) varies.
	Jobs int

	TaskFSSize   uint64 // hermetic image size per task
	MasterFSSize uint64 // master replica (and wave outbox) size
}

// TaskResult is the per-task outcome of a build, reported in sorted
// task-ID order.
type TaskResult struct {
	ID       string
	CacheHit bool   // result fetched (and hash-verified) from the store
	Fallback string // non-empty: a cached result was rejected ("chunk-hash", ...) and the task re-executed
	OutBytes int64  // total declared-output bytes
}

// Stats summarizes a build.
type Stats struct {
	Tasks     int
	Waves     int
	Executed  int // tasks that ran in a child space
	CacheHits int
	Fallbacks int   // rejected cache entries (counted under Executed too)
	Fetched   int64 // bytes fetched from the store on hits
	Stored    int64 // new chunk bytes written to the store
}

// Result is a completed (or aborted) build. On error the Result still
// describes the committed state: waves commit atomically at quiescent
// points, so a failed build's tree holds every wave before the failure
// and nothing of the failing wave — never a half-visible output.
type Result struct {
	Stats      Stats
	Tasks      []TaskResult
	Outputs    map[string][]byte // every declared output committed so far
	TreeDigest castore.Key       // content hash of the final tree (sorted path+bytes)
	Checksum   uint64            // fs.Checksum of the master image
	VT         int64             // root space virtual time (modeled makespan)
}

// Build runs the DAG to completion: deterministic wave order, hermetic
// per-task spaces, reconciliation into a per-wave outbox, atomic
// commits at quiescent points, and content-addressed caching of every
// task result.
func Build(cfg Config) (Result, error) {
	if cfg.Graph == nil {
		return Result{}, fmt.Errorf("%w: nil graph", ErrBadTask)
	}
	if cfg.Actions == nil {
		cfg.Actions = DefaultActions()
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = DefaultJobs
	}
	if cfg.TaskFSSize == 0 {
		cfg.TaskFSSize = DefaultTaskFSSize
	}
	if cfg.MasterFSSize == 0 {
		cfg.MasterFSSize = DefaultMasterFSSize
	}
	if cfg.Store != nil && cfg.Index == nil {
		cfg.Index = NewMemIndex()
	}
	sources := make(map[string]bool, len(cfg.Sources))
	for p := range cfg.Sources {
		sources[p] = true
	}
	for _, t := range cfg.Graph.Tasks() {
		if _, ok := cfg.Actions.Lookup(t.Action); !ok {
			return Result{}, fmt.Errorf("%w: %q (task %s)", ErrUnknownAction, t.Action, t.ID)
		}
		for _, out := range t.Outputs {
			if sources[out] {
				return Result{}, fmt.Errorf("%w: task %s output %q is also a source", ErrBadTask, t.ID, out)
			}
		}
	}
	plan, err := cfg.Graph.Plan(sources)
	if err != nil {
		return Result{}, err
	}

	b := &builder{cfg: cfg, plan: plan, tree: make(map[string][]byte), treeHash: make(map[string]castore.Key)}
	res := kernel.New(kernel.Config{CPUsPerNode: cfg.Jobs}).Run(b.run, 0)
	out := b.finish(res.VT)
	if b.err != nil {
		return out, b.err
	}
	if res.Status != kernel.StatusHalted {
		return out, fmt.Errorf("detmake: build machine stopped %v: %w", res.Status, res.Err)
	}
	return out, nil
}

// builder is the root program of one build.
type builder struct {
	cfg  Config
	plan *Plan

	// tree mirrors the master replica's committed file contents; the
	// image remains the deterministic truth (its checksum is asserted
	// bit-equal cold vs warm), the mirror serves staging and hashing.
	tree     map[string][]byte
	treeHash map[string]castore.Key

	stats         Stats
	results       []TaskResult
	finalChecksum uint64
	err           error
}

func (b *builder) fail(err error) { b.err = err }

func (b *builder) hashOf(p string) castore.Key {
	k, ok := b.treeHash[p]
	if !ok {
		k = castore.KeyOf(b.tree[p])
		b.treeHash[p] = k
	}
	return k
}

// run executes the build inside the machine's root space.
func (b *builder) run(env *kernel.Env) {
	cfg := b.cfg
	master := fs.Format(env, masterBase, cfg.MasterFSSize)
	srcs := make([]string, 0, len(cfg.Sources))
	for p := range cfg.Sources {
		srcs = append(srcs, p)
	}
	sort.Strings(srcs)
	for _, p := range srcs {
		if err := writeAll(master, p, cfg.Sources[p]); err != nil {
			b.fail(fmt.Errorf("detmake: writing source %q: %w", p, err))
			b.checksum(master)
			env.SetRet(1)
			return
		}
		b.tree[p] = cfg.Sources[p]
	}
	for _, wave := range b.plan.Waves {
		b.stats.Waves++
		if !b.runWave(env, master, wave) {
			// The failing wave never committed: the checksum below
			// covers exactly the waves before it.
			b.checksum(master)
			env.SetRet(1)
			return
		}
	}
	b.checksum(master)
	env.SetRet(0)
}

// runWave takes one wave from ready to committed. It returns false on
// failure, always before the wave's commit — the master never holds a
// partial wave.
func (b *builder) runWave(env *kernel.Env, master *fs.FS, wave []*Task) bool {
	cfg := b.cfg
	keys := make(map[string]castore.Key, len(wave))
	waveOut := make(map[string]map[string][]byte, len(wave))
	taskRes := make(map[string]*TaskResult, len(wave))
	var cold []*Task
	for _, t := range wave {
		b.stats.Tasks++
		tr := &TaskResult{ID: t.ID}
		taskRes[t.ID] = tr
		for _, in := range t.Inputs {
			b.hashOf(in) // memoize so actionKey sees every input hash
		}
		key := actionKey(t, b.treeHash, cfg.TaskFSSize)
		keys[t.ID] = key
		if cfg.Store == nil {
			cold = append(cold, t)
			continue
		}
		out, fetched, ok, err := fetchResult(cfg.Store, cfg.Index, key)
		switch {
		case ok:
			tr.CacheHit = true
			b.stats.CacheHits++
			b.stats.Fetched += fetched
			waveOut[t.ID] = out
		case err != nil:
			// A recorded result that fails verification is rejected
			// typed and re-executed — never silently reused.
			tr.Fallback = classifyFallback(err)
			b.stats.Fallbacks++
			cold = append(cold, t)
		default:
			cold = append(cold, t)
		}
	}

	if len(cold) > 0 {
		treeSnap := make(map[string]bool, len(b.tree))
		for p := range b.tree {
			treeSnap[p] = true
		}
		refs := make([]uint64, len(cold))
		for i, t := range cold {
			if err := b.stage(env, t); err != nil {
				b.fail(err)
				return false
			}
			refs[i] = uint64(i + 1)
			err := env.Put(refs[i], kernel.PutOpts{
				Regs:  &kernel.Regs{Entry: b.taskEntry(t, treeSnap)},
				Copy:  &kernel.CopyRange{Src: stageBase, Dst: stageBase, Size: cfg.TaskFSSize},
				Start: true,
			})
			if err != nil {
				b.fail(fmt.Errorf("detmake: forking task %s: %w", t.ID, err))
				return false
			}
		}
		env.WaitChildren(refs, 0)

		// Quiescent point: every sibling has halted. Reconcile their
		// images into a fresh outbox replica in task-ID order; genuine
		// divergence between siblings surfaces as fs conflicts here.
		outbox := fs.Format(env, outboxBase, cfg.MasterFSSize)
		firstWriter := make(map[string]string)
		for i, t := range cold {
			out, err := b.collect(env, refs[i], t, outbox, firstWriter)
			if err != nil {
				b.fail(err)
				return false
			}
			waveOut[t.ID] = out
			b.stats.Executed++
			if cfg.Store != nil {
				stored, err := b.storeTask(t, keys[t.ID], out, taskRes[t.ID].Fallback != "")
				if err != nil {
					b.fail(fmt.Errorf("detmake: caching task %s: %w", t.ID, err))
					return false
				}
				b.stats.Stored += stored
			}
		}
	}

	// Commit at the quiescent point, in task-ID order (wave order),
	// declared-output order within a task. Cold and warm builds issue
	// the exact same master writes here, which is what makes the final
	// image checksum bit-equal between them.
	for _, t := range wave {
		out := waveOut[t.ID]
		tr := taskRes[t.ID]
		for _, p := range t.Outputs {
			body := out[p]
			if err := writeAll(master, p, body); err != nil {
				b.fail(fmt.Errorf("detmake: committing %q (task %s): %w", p, t.ID, err))
				return false
			}
			b.tree[p] = body
			delete(b.treeHash, p)
			tr.OutBytes += int64(len(body))
		}
		b.results = append(b.results, *tr)
	}
	return true
}

// stage builds the hermetic input image for one task at stageBase.
func (b *builder) stage(env *kernel.Env, t *Task) error {
	img := fs.Format(env, stageBase, b.cfg.TaskFSSize)
	ins := append([]string{}, t.Inputs...)
	sort.Strings(ins)
	for _, in := range ins {
		if err := writeAll(img, in, b.tree[in]); err != nil {
			return fmt.Errorf("detmake: staging input %q for task %s: %w", in, t.ID, err)
		}
	}
	return nil
}

// taskEntry is the child-space program of one task: attach the
// hermetic image, stamp the fork, run the action, scrub scratch, and
// report through the status file.
func (b *builder) taskEntry(t *Task, treeSnap map[string]bool) func(*kernel.Env) {
	size := b.cfg.TaskFSSize
	action, _ := b.cfg.Actions.Lookup(t.Action)
	outputs := make(map[string]bool, len(t.Outputs))
	for _, p := range t.Outputs {
		outputs[p] = true
	}
	inputs := make(map[string]bool, len(t.Inputs))
	for _, p := range t.Inputs {
		inputs[p] = true
	}
	return func(env *kernel.Env) {
		img, err := fs.Attach(env, stageBase, size)
		if err != nil {
			panic(err) // hermetic image corrupt: fault the space
		}
		img.StampFork()
		ctx := &TaskCtx{task: t, img: img, env: env, inputs: inputs, tree: treeSnap}
		actErr := runAction(action, ctx)

		// Scrub: everything but declared inputs and outputs is scratch
		// and must not reach reconciliation. Inputs stay — unchanged
		// since the fork stamp, reconciliation skips them entirely
		// (scratch files are fresh, so their tombstones adopt away as
		// no-ops; a staged input's tombstone would not). On failure the
		// outputs go too (they will not be committed), which also
		// guarantees room for the status file even after ErrNoSpace.
		for _, info := range img.List() {
			if info.Dir || info.Name == statusPath || inputs[info.Name] {
				continue
			}
			if actErr == nil && ctx.violation == nil && outputs[info.Name] {
				continue
			}
			_ = img.Unlink(info.Name)
		}

		status := "ok"
		ret := uint64(0)
		switch {
		case ctx.violation != nil:
			status, ret = "undeclared "+ctx.violation.Path, 1
		case actErr != nil && errors.Is(actErr, fs.ErrNoSpace):
			status, ret = "nospace "+actErr.Error(), 1
		case actErr != nil:
			status, ret = "err "+actErr.Error(), 1
		}
		if err := img.WriteFile(statusPath, []byte(status)); err != nil {
			panic(err) // cannot even report: fault the space
		}
		env.SetRet(ret)
	}
}

// runAction invokes the action body, converting a panic into an error
// so one bad action fails its task, not the build machine.
func runAction(action ActionFunc, ctx *TaskCtx) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("action panicked: %v", r)
		}
	}()
	return action(ctx)
}

// collect pulls one finished child image back, checks its status, and
// reconciles it into the wave outbox. Returns the task's output bytes.
func (b *builder) collect(env *kernel.Env, ref uint64, t *Task, outbox *fs.FS, firstWriter map[string]string) (map[string][]byte, error) {
	size := b.cfg.TaskFSSize
	env.SetPerm(collectBase, size, vm.PermRW)
	info, err := env.Get(ref, kernel.GetOpts{
		Regs: true,
		Copy: &kernel.CopyRange{Src: stageBase, Dst: collectBase, Size: size},
	})
	if err != nil {
		return nil, fmt.Errorf("detmake: collecting task %s: %w", t.ID, err)
	}
	if info.Status != kernel.StatusHalted {
		return nil, &TaskError{Task: t.ID, Err: fmt.Errorf("space stopped %v: %v", info.Status, info.Err)}
	}
	img, err := fs.Attach(env, collectBase, size)
	if err != nil {
		return nil, &TaskError{Task: t.ID, Err: fmt.Errorf("result image corrupt: %w", err)}
	}
	raw, err := img.ReadFile(statusPath)
	if err != nil {
		return nil, &TaskError{Task: t.ID, Err: fmt.Errorf("no status report: %w", err)}
	}
	if err := img.Unlink(statusPath); err != nil {
		return nil, &TaskError{Task: t.ID, Err: err}
	}
	status := string(raw)
	switch {
	case status == "ok":
	case strings.HasPrefix(status, "undeclared "):
		return nil, &UndeclaredInputError{Task: t.ID, Path: strings.TrimPrefix(status, "undeclared ")}
	case strings.HasPrefix(status, "nospace "):
		return nil, &TaskError{Task: t.ID,
			Err: fmt.Errorf("%s: %w", strings.TrimPrefix(status, "nospace "), fs.ErrNoSpace)}
	default:
		return nil, &TaskError{Task: t.ID, Err: errors.New(strings.TrimPrefix(status, "err "))}
	}

	conflicts, err := outbox.ReconcileFrom(img)
	if err != nil {
		return nil, fmt.Errorf("detmake: reconciling task %s: %w", t.ID, err)
	}
	if len(conflicts) > 0 {
		// Deterministic attribution: collection runs in task-ID order,
		// so the recorded first writer and this task form the pair.
		p := conflicts[0].Name
		first := firstWriter[p]
		if first == "" {
			first = "(parent)"
		}
		return nil, &OutputConflictError{Path: p, Tasks: [2]string{first, t.ID}}
	}
	out := make(map[string][]byte, len(t.Outputs))
	for _, p := range t.Outputs {
		body, err := outbox.ReadFile(p)
		if err != nil {
			if errors.Is(err, fs.ErrNotFound) {
				return nil, &MissingOutputError{Task: t.ID, Path: p}
			}
			return nil, &TaskError{Task: t.ID, Err: err}
		}
		out[p] = body
		for q := p; q != ""; q = parentDir(q) {
			if firstWriter[q] == "" {
				firstWriter[q] = t.ID
			}
		}
	}
	return out, nil
}

func parentDir(p string) string {
	i := strings.LastIndexByte(p, '/')
	if i < 0 {
		return ""
	}
	return p[:i]
}

// storeTask records one executed task's result in the cache. heal
// marks a task whose previous cache entry was rejected: its chunks are
// rewritten rather than deduplicated against the damaged stored form.
func (b *builder) storeTask(t *Task, key castore.Key, out map[string][]byte, heal bool) (int64, error) {
	man, stored, err := storeResult(b.cfg.Store, key, t.Outputs, out, 0, heal)
	if err != nil {
		return stored, err
	}
	return stored, b.cfg.Index.Record(key, man)
}

// classifyFallback names the typed rejection that forced re-execution.
func classifyFallback(err error) string {
	var hashErr *castore.ChunkHashError
	var missErr *castore.ChunkMissingError
	var nodeErr *castore.NodeFormatError
	switch {
	case errors.As(err, &hashErr):
		return "chunk-hash"
	case errors.As(err, &missErr):
		return "chunk-missing"
	case errors.As(err, &nodeErr):
		return "node-format"
	default:
		return "index-error"
	}
}

// writeAll writes path (creating parent directories) into f.
func writeAll(f *fs.FS, path string, b []byte) error {
	if err := mkdirAll(f, path); err != nil {
		return err
	}
	return f.WriteFile(path, b)
}

// checksum records the master image checksum into the pending result.
func (b *builder) checksum(master *fs.FS) {
	b.finalChecksum = master.Checksum()
}

// finish assembles the Result after the machine has halted.
func (b *builder) finish(vt int64) Result {
	res := Result{
		Stats:   b.stats,
		Tasks:   b.results,
		Outputs: make(map[string][]byte),
		VT:      vt,
	}
	sort.Slice(res.Tasks, func(i, j int) bool { return res.Tasks[i].ID < res.Tasks[j].ID })
	for _, t := range b.cfg.Graph.Tasks() {
		for _, p := range t.Outputs {
			if body, ok := b.tree[p]; ok {
				res.Outputs[p] = body
			}
		}
	}
	res.TreeDigest = treeDigest(b.tree)
	res.Checksum = b.finalChecksum
	return res
}

// treeDigest hashes a whole tree: sorted paths, each with its content.
func treeDigest(tree map[string][]byte) castore.Key {
	paths := make([]string, 0, len(tree))
	for p := range tree {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var buf []byte
	for _, p := range paths {
		buf = append(buf, p...)
		buf = append(buf, 0)
		k := castore.KeyOf(tree[p])
		buf = append(buf, k[:]...)
	}
	return castore.KeyOf(buf)
}
