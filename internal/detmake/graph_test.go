package detmake

import (
	"errors"
	"reflect"
	"testing"
)

func mkTask(id, action string, outs, ins []string) *Task {
	return &Task{ID: id, Action: action, Inputs: ins, Outputs: outs}
}

func TestGraphValidation(t *testing.T) {
	cases := []struct {
		name  string
		tasks []*Task
		want  error
	}{
		{"empty id", []*Task{mkTask("", "gen", []string{"x"}, nil)}, ErrBadTask},
		{"no action", []*Task{{ID: "a", Outputs: []string{"x"}}}, ErrBadTask},
		{"no outputs", []*Task{{ID: "a", Action: "gen"}}, ErrBadTask},
		{"dup id", []*Task{mkTask("a", "gen", []string{"x"}, nil), mkTask("a", "gen", []string{"y"}, nil)}, ErrBadTask},
		{"reserved path", []*Task{mkTask("a", "gen", []string{"#x"}, nil)}, ErrBadTask},
		{"absolute path", []*Task{mkTask("a", "gen", []string{"/x"}, nil)}, ErrBadTask},
		{"dup input", []*Task{mkTask("a", "concat", []string{"x"}, []string{"s", "s"})}, ErrBadTask},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewGraph(tc.tasks); !errors.Is(err, tc.want) {
				t.Fatalf("NewGraph = %v, want %v", err, tc.want)
			}
		})
	}
}

// Two tasks declaring one output path conflict statically, attributed
// to the sorted pair regardless of declaration order.
func TestDuplicateOutputAttribution(t *testing.T) {
	for _, order := range [][]*Task{
		{mkTask("zz", "gen", []string{"x"}, nil), mkTask("aa", "gen", []string{"x"}, nil)},
		{mkTask("aa", "gen", []string{"x"}, nil), mkTask("zz", "gen", []string{"x"}, nil)},
	} {
		_, err := NewGraph(order)
		var dup *DuplicateOutputError
		if !errors.As(err, &dup) {
			t.Fatalf("NewGraph = %v, want *DuplicateOutputError", err)
		}
		if dup.Path != "x" || dup.Tasks != [2]string{"aa", "zz"} {
			t.Fatalf("attribution = %q %v, want x [aa zz]", dup.Path, dup.Tasks)
		}
	}
}

func TestCycleDetection(t *testing.T) {
	g, err := NewGraph([]*Task{
		mkTask("a", "upper", []string{"x"}, []string{"y"}),
		mkTask("b", "upper", []string{"y"}, []string{"x"}),
		mkTask("c", "gen", []string{"z"}, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = g.Plan(nil)
	var cyc *CycleError
	if !errors.As(err, &cyc) {
		t.Fatalf("Plan = %v, want *CycleError", err)
	}
	if !reflect.DeepEqual(cyc.Tasks, []string{"a", "b"}) {
		t.Fatalf("cycle tasks = %v, want [a b]", cyc.Tasks)
	}
}

func TestMissingInput(t *testing.T) {
	g, err := NewGraph([]*Task{mkTask("a", "upper", []string{"x"}, []string{"nowhere"})})
	if err != nil {
		t.Fatal(err)
	}
	_, err = g.Plan(map[string]bool{"elsewhere": true})
	var miss *MissingInputError
	if !errors.As(err, &miss) {
		t.Fatalf("Plan = %v, want *MissingInputError", err)
	}
	if miss.Task != "a" || miss.Path != "nowhere" {
		t.Fatalf("missing = %+v", miss)
	}
}

// Waves follow longest-path levels with task-ID order inside each wave.
func TestPlanWaves(t *testing.T) {
	g, err := NewGraph([]*Task{
		mkTask("link", "concat", []string{"a.out"}, []string{"m.o", "u.o"}),
		mkTask("cc-m", "upper", []string{"m.o"}, []string{"m.c"}),
		mkTask("cc-u", "upper", []string{"u.o"}, []string{"u.c"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := g.Plan(map[string]bool{"m.c": true, "u.c": true})
	if err != nil {
		t.Fatal(err)
	}
	var got [][]string
	for _, w := range plan.Waves {
		var ids []string
		for _, task := range w {
			ids = append(ids, task.ID)
		}
		got = append(got, ids)
	}
	want := [][]string{{"cc-m", "cc-u"}, {"link"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("waves = %v, want %v", got, want)
	}
}

func TestCone(t *testing.T) {
	g, err := NewGraph([]*Task{
		mkTask("c1", "upper", []string{"o1"}, []string{"s1"}),
		mkTask("c2", "upper", []string{"o2"}, []string{"s2"}),
		mkTask("link", "concat", []string{"bin"}, []string{"o1", "o2"}),
		mkTask("other", "upper", []string{"ox"}, []string{"sx"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Cone("s1"); !reflect.DeepEqual(got, []string{"c1", "link"}) {
		t.Fatalf("Cone(s1) = %v", got)
	}
	if got := g.Cone("sx"); !reflect.DeepEqual(got, []string{"other"}) {
		t.Fatalf("Cone(sx) = %v", got)
	}
	if got := g.Cone("bin"); len(got) != 0 {
		t.Fatalf("Cone(bin) = %v, want empty", got)
	}
}
