package detmake

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/castore"
	"repro/internal/fs"
)

// compileGraph is the shared three-stage pipeline: two "compiles" from
// sources, a "link" concatenating the objects.
func compileGraph(t *testing.T) (*Graph, map[string][]byte) {
	t.Helper()
	g, err := NewGraph([]*Task{
		mkTask("cc-main", "upper", []string{"main.o"}, []string{"main.c"}),
		mkTask("cc-util", "upper", []string{"util.o"}, []string{"util.c"}),
		mkTask("link", "concat", []string{"a.out"}, []string{"main.o", "util.o"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, map[string][]byte{
		"main.c": []byte("int main;\n"),
		"util.c": []byte("int util;\n"),
	}
}

func TestBuildBasic(t *testing.T) {
	g, srcs := compileGraph(t)
	res, err := Build(Config{Graph: g, Sources: srcs})
	if err != nil {
		t.Fatal(err)
	}
	if got := string(res.Outputs["a.out"]); got != "INT MAIN;\nINT UTIL;\n" {
		t.Fatalf("a.out = %q", got)
	}
	if res.Stats.Executed != 3 || res.Stats.CacheHits != 0 || res.Stats.Waves != 2 {
		t.Fatalf("stats = %+v", res.Stats)
	}
}

// Cold then warm over one store: the warm build fetches every result
// and the final tree — logical digest and raw image checksum — is
// bit-identical to the cold one.
func TestWarmBuildBitIdentical(t *testing.T) {
	g, srcs := compileGraph(t)
	store := castore.NewMemStore()
	idx := NewMemIndex()
	cold, err := Build(Config{Graph: g, Sources: srcs, Store: store, Index: idx})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Build(Config{Graph: g, Sources: srcs, Store: store, Index: idx})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.CacheHits != 3 || warm.Stats.Executed != 0 {
		t.Fatalf("warm stats = %+v, want 3 hits 0 executed", warm.Stats)
	}
	if warm.TreeDigest != cold.TreeDigest {
		t.Fatalf("tree digests differ: cold %s warm %s", cold.TreeDigest, warm.TreeDigest)
	}
	if warm.Checksum != cold.Checksum {
		t.Fatalf("image checksums differ: cold %#x warm %#x", cold.Checksum, warm.Checksum)
	}
	if warm.Stats.Fetched == 0 {
		t.Fatal("warm build fetched nothing")
	}
}

// Results are bit-identical at every Jobs setting; only the modeled
// makespan (VT) may differ.
func TestJobsInvariance(t *testing.T) {
	g, srcs := compileGraph(t)
	base, err := Build(Config{Graph: g, Sources: srcs, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{2, 8} {
		res, err := Build(Config{Graph: g, Sources: srcs, Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		if res.TreeDigest != base.TreeDigest || res.Checksum != base.Checksum {
			t.Fatalf("jobs=%d: result differs from jobs=1", jobs)
		}
	}
}

// An incremental change to one source re-executes exactly that
// source's cone and matches a from-scratch build of the same tree.
func TestIncrementalCone(t *testing.T) {
	g, srcs := compileGraph(t)
	store := castore.NewMemStore()
	idx := NewMemIndex()
	if _, err := Build(Config{Graph: g, Sources: srcs, Store: store, Index: idx}); err != nil {
		t.Fatal(err)
	}
	changed := map[string][]byte{"main.c": []byte("int main2;\n"), "util.c": srcs["util.c"]}
	inc, err := Build(Config{Graph: g, Sources: changed, Store: store, Index: idx})
	if err != nil {
		t.Fatal(err)
	}
	cone := g.Cone("main.c")
	if inc.Stats.Executed != len(cone) {
		t.Fatalf("incremental executed %d tasks, want cone %v", inc.Stats.Executed, cone)
	}
	fresh, err := Build(Config{Graph: g, Sources: changed})
	if err != nil {
		t.Fatal(err)
	}
	if inc.TreeDigest != fresh.TreeDigest || inc.Checksum != fresh.Checksum {
		t.Fatal("incremental result differs from from-scratch build")
	}
}

// An action reading a path that exists in the build tree but is not
// declared fails typed — even though the action swallows the error.
func TestUndeclaredInputRead(t *testing.T) {
	actions := DefaultActions()
	actions.Register("sneaky", func(c *TaskCtx) error {
		b, err := c.ReadFile("secret.txt") // present in tree, undeclared
		if err != nil {
			b = []byte("fallback")
		}
		return c.WriteFile(c.Outputs()[0], b)
	})
	g, err := NewGraph([]*Task{mkTask("spy", "sneaky", []string{"out"}, nil)})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Build(Config{
		Graph:   g,
		Actions: actions,
		Sources: map[string][]byte{"secret.txt": []byte("hidden")},
	})
	var undeclared *UndeclaredInputError
	if !errors.As(err, &undeclared) {
		t.Fatalf("Build = %v, want *UndeclaredInputError", err)
	}
	if undeclared.Task != "spy" || undeclared.Path != "secret.txt" {
		t.Fatalf("violation = %+v", undeclared)
	}
}

// Reading a genuinely absent path is a plain ErrNotFound, not a
// hermeticity violation.
func TestAbsentReadIsNotViolation(t *testing.T) {
	actions := DefaultActions()
	actions.Register("probe", func(c *TaskCtx) error {
		if _, err := c.ReadFile("no-such-file"); !errors.Is(err, fs.ErrNotFound) {
			return fmt.Errorf("probe saw %v, want ErrNotFound", err)
		}
		return c.WriteFile(c.Outputs()[0], []byte("ok"))
	})
	g, err := NewGraph([]*Task{mkTask("p", "probe", []string{"out"}, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(Config{Graph: g, Actions: actions}); err != nil {
		t.Fatal(err)
	}
}

// A task that fills its hermetic image fails with a typed error that
// unwraps to fs.ErrNoSpace, and the failing wave leaves nothing behind:
// the committed tree is exactly the pre-wave state.
func TestNoSpaceLeavesNoHalfVisibleOutputs(t *testing.T) {
	actions := DefaultActions()
	actions.Register("bloat", func(c *TaskCtx) error {
		if err := c.WriteFile("partial", []byte("written before running out")); err != nil {
			return err
		}
		// Fill the image in chunks until allocation fails for real.
		for i := 0; ; i++ {
			if err := c.WriteFile(fmt.Sprintf("fill/%03d", i), make([]byte, 64<<10)); err != nil {
				return err
			}
		}
	})
	g, err := NewGraph([]*Task{
		mkTask("gen-ok", "gen", []string{"stable"}, nil),
		mkTask("huge", "bloat", []string{"big", "partial"}, []string{"stable"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	srcOnly, err := Build(Config{
		Graph:   mustGraph(t, []*Task{mkTask("gen-ok", "gen", []string{"stable"}, nil)}),
		Actions: actions,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(Config{Graph: g, Actions: actions, TaskFSSize: 1 << 20})
	var taskErr *TaskError
	if !errors.As(err, &taskErr) || !errors.Is(err, fs.ErrNoSpace) {
		t.Fatalf("Build = %v, want *TaskError wrapping fs.ErrNoSpace", err)
	}
	if taskErr.Task != "huge" {
		t.Fatalf("failed task = %q", taskErr.Task)
	}
	// Wave 0 (gen-ok) committed; wave 1 (huge) must be invisible.
	if _, ok := res.Outputs["big"]; ok {
		t.Fatal("failed task's output committed")
	}
	if _, ok := res.Outputs["partial"]; ok {
		t.Fatal("failed task's partial output committed")
	}
	if string(res.Outputs["stable"]) == "" {
		t.Fatal("earlier wave's output missing from result")
	}
	if res.TreeDigest != srcOnly.TreeDigest {
		t.Fatal("failed build's tree differs from the committed prefix")
	}
}

// Sibling divergence the static check cannot see — one task's output
// file is another's output directory prefix — surfaces as a typed
// conflict with deterministic attribution at the reconciliation point.
func TestSiblingOutputConflict(t *testing.T) {
	actions := DefaultActions()
	actions.Register("mkfile", func(c *TaskCtx) error {
		return c.WriteFile(c.Outputs()[0], []byte("file"))
	})
	g, err := NewGraph([]*Task{
		mkTask("a-file", "mkfile", []string{"clash"}, nil),
		mkTask("b-nested", "mkfile", []string{"clash/deep.o"}, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Build(Config{Graph: g, Actions: actions})
	var conflict *OutputConflictError
	if !errors.As(err, &conflict) {
		t.Fatalf("Build = %v, want *OutputConflictError", err)
	}
	if conflict.Path != "clash" || conflict.Tasks != [2]string{"a-file", "b-nested"} {
		t.Fatalf("conflict = %+v", conflict)
	}
}

// A task that never writes a declared output fails typed.
func TestMissingOutput(t *testing.T) {
	actions := DefaultActions()
	actions.Register("lazy", func(c *TaskCtx) error {
		return c.WriteFile(c.Outputs()[0], []byte("only the first"))
	})
	g, err := NewGraph([]*Task{mkTask("l", "lazy", []string{"one", "two"}, nil)})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Build(Config{Graph: g, Actions: actions})
	var miss *MissingOutputError
	if !errors.As(err, &miss) {
		t.Fatalf("Build = %v, want *MissingOutputError", err)
	}
	if miss.Task != "l" || miss.Path != "two" {
		t.Fatalf("missing = %+v", miss)
	}
}

// Scratch files written by an action never escape its space, and two
// siblings may use the same scratch names without conflicting.
func TestScratchIsInvisible(t *testing.T) {
	actions := DefaultActions()
	actions.Register("scratchy", func(c *TaskCtx) error {
		if err := c.WriteFile("tmp/scratch.txt", []byte(c.TaskID())); err != nil {
			return err
		}
		b, err := c.ReadFile("tmp/scratch.txt")
		if err != nil {
			return err
		}
		return c.WriteFile(c.Outputs()[0], b)
	})
	g, err := NewGraph([]*Task{
		mkTask("s1", "scratchy", []string{"o1"}, nil),
		mkTask("s2", "scratchy", []string{"o2"}, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(Config{Graph: g, Actions: actions})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Outputs["o1"]) != "s1" || string(res.Outputs["o2"]) != "s2" {
		t.Fatalf("outputs = %q %q", res.Outputs["o1"], res.Outputs["o2"])
	}
	if _, ok := res.Outputs["tmp/scratch.txt"]; ok {
		t.Fatal("scratch escaped the task space")
	}
}

// Nested output paths work end to end (directories are created on
// stage, reconcile, and commit).
func TestNestedOutputPaths(t *testing.T) {
	g, err := NewGraph([]*Task{
		mkTask("c", "upper", []string{"obj/deep/x.o"}, []string{"src/x.c"}),
		mkTask("l", "concat", []string{"bin/a.out"}, []string{"obj/deep/x.o"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(Config{Graph: g, Sources: map[string][]byte{"src/x.c": []byte("zz\n")}})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Outputs["bin/a.out"]) != "ZZ\n" {
		t.Fatalf("bin/a.out = %q", res.Outputs["bin/a.out"])
	}
}

func mustGraph(t *testing.T, tasks []*Task) *Graph {
	t.Helper()
	g, err := NewGraph(tasks)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
