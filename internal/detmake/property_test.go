package detmake

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/castore"
)

// randomDAG builds a seeded random layered DAG: a few sources, then
// layers of derive/concat tasks whose inputs are drawn from everything
// produced so far. Task IDs and output paths are deterministic
// functions of position, so a (seed, size) pair names one exact graph.
func randomDAG(r *rand.Rand, layers, perLayer int) ([]*Task, map[string][]byte) {
	sources := map[string][]byte{
		"src/a.txt": []byte("alpha\n"),
		"src/b.txt": []byte("bravo\n"),
		"src/c.txt": []byte("charlie\n"),
	}
	avail := []string{"src/a.txt", "src/b.txt", "src/c.txt"}
	var tasks []*Task
	for l := 0; l < layers; l++ {
		var produced []string
		for i := 0; i < perLayer; i++ {
			id := fmt.Sprintf("t%02d-%02d", l, i)
			out := fmt.Sprintf("out/%s.dat", id)
			nIn := 1 + r.Intn(3)
			var ins []string
			seen := map[string]bool{}
			for len(ins) < nIn {
				p := avail[r.Intn(len(avail))]
				if !seen[p] {
					seen[p] = true
					ins = append(ins, p)
				}
			}
			action := "derive"
			if r.Intn(4) == 0 {
				action = "concat"
			}
			tasks = append(tasks, &Task{
				ID: id, Action: action, Args: []string{id},
				Inputs: ins, Outputs: []string{out},
			})
			produced = append(produced, out)
		}
		avail = append(avail, produced...)
	}
	return tasks, sources
}

func buildOrDie(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The determinism core: for each seeded DAG, (1) repeated cold runs
// are bit-identical in outputs, image checksum and virtual time;
// (2) a warm run over the cold run's store hits on every task and its
// tree is bit-identical to cold; (3) a partially evicted store falls
// back typed on the missing results and still converges to the same
// bits; (4) results are invariant across Jobs settings.
func TestPropertyColdWarmEviction(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many builds")
	}
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			tasks, sources := randomDAG(r, 3, 4)
			g, err := NewGraph(tasks)
			if err != nil {
				t.Fatal(err)
			}
			nTasks := len(tasks)

			// (1) Cold determinism, including VT.
			cold1 := buildOrDie(t, Config{Graph: g, Sources: sources})
			cold2 := buildOrDie(t, Config{Graph: g, Sources: sources})
			if cold1.TreeDigest != cold2.TreeDigest || cold1.Checksum != cold2.Checksum {
				t.Fatal("repeated cold builds differ in bits")
			}
			if cold1.VT != cold2.VT {
				t.Fatalf("repeated cold builds differ in VT: %d vs %d", cold1.VT, cold2.VT)
			}

			// (2) Warm: all hits, bit-identical, VT deterministic too.
			store := castore.NewMemStore()
			idx := NewMemIndex()
			cached := buildOrDie(t, Config{Graph: g, Sources: sources, Store: store, Index: idx})
			if cached.TreeDigest != cold1.TreeDigest || cached.Checksum != cold1.Checksum {
				t.Fatal("caching build differs from uncached build")
			}
			warm1 := buildOrDie(t, Config{Graph: g, Sources: sources, Store: store, Index: idx})
			warm2 := buildOrDie(t, Config{Graph: g, Sources: sources, Store: store, Index: idx})
			if warm1.Stats.CacheHits != nTasks || warm1.Stats.Executed != 0 {
				t.Fatalf("warm stats = %+v, want %d hits", warm1.Stats, nTasks)
			}
			if warm1.TreeDigest != cold1.TreeDigest || warm1.Checksum != cold1.Checksum {
				t.Fatal("warm build differs from cold build in bits")
			}
			if warm1.VT != warm2.VT || warm1.TreeDigest != warm2.TreeDigest {
				t.Fatal("repeated warm builds differ")
			}

			// (3) Mixed eviction: delete a seeded subset of chunks; the
			// affected tasks fall back typed (chunk-missing) and
			// re-execute; bits still converge.
			var keys []castore.Key
			if err := store.Keys(func(k castore.Key, _ castore.BlobInfo) error {
				keys = append(keys, k)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			evict := r.Intn(len(keys)/2) + 1
			for i := 0; i < evict; i++ {
				if err := store.Delete(keys[r.Intn(len(keys))]); err != nil {
					t.Fatal(err)
				}
			}
			mixed := buildOrDie(t, Config{Graph: g, Sources: sources, Store: store, Index: idx})
			if mixed.TreeDigest != cold1.TreeDigest || mixed.Checksum != cold1.Checksum {
				t.Fatal("mixed-eviction build differs in bits")
			}
			if mixed.Stats.CacheHits+mixed.Stats.Executed != nTasks {
				t.Fatalf("mixed stats don't cover the graph: %+v", mixed.Stats)
			}
			for _, tr := range mixed.Tasks {
				if tr.Fallback != "" && tr.Fallback != "chunk-missing" {
					t.Fatalf("eviction fallback = %q, want chunk-missing", tr.Fallback)
				}
			}

			// (4) Jobs invariance on the same DAG.
			j1 := buildOrDie(t, Config{Graph: g, Sources: sources, Jobs: 1})
			if j1.TreeDigest != cold1.TreeDigest || j1.Checksum != cold1.Checksum {
				t.Fatal("jobs=1 build differs in bits")
			}
		})
	}
}

// A corrupted cached chunk is rejected as a typed *ChunkHashError and
// the task re-executes — the final tree is bit-identical to cold, and
// the store heals (the re-executed result is re-recorded).
func TestPropertyCorruptChunkFallsBack(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	tasks, sources := randomDAG(r, 2, 3)
	g, err := NewGraph(tasks)
	if err != nil {
		t.Fatal(err)
	}
	store := castore.NewMemStore()
	idx := NewMemIndex()
	cold := buildOrDie(t, Config{Graph: g, Sources: sources, Store: store, Index: idx})

	// Corrupt one task's output chunk: resolve its manifest through the
	// index, then damage the first leaf.
	victim := tasks[r.Intn(len(tasks))]
	key := actionKeyFor(t, g, sources, victim)
	man, ok, err := idx.Lookup(key)
	if err != nil || !ok {
		t.Fatalf("victim result not indexed: %v %v", ok, err)
	}
	node, err := castore.GetNode(store, man)
	if err != nil {
		t.Fatal(err)
	}
	if !store.Corrupt(node.LeafRefs[0], []byte("rotten bits")) {
		t.Fatal("victim chunk not in store")
	}

	warm := buildOrDie(t, Config{Graph: g, Sources: sources, Store: store, Index: idx})
	if warm.TreeDigest != cold.TreeDigest || warm.Checksum != cold.Checksum {
		t.Fatal("post-corruption build differs from cold in bits")
	}
	var sawHashFallback bool
	for _, tr := range warm.Tasks {
		if tr.ID == victim.ID {
			if tr.CacheHit {
				t.Fatal("corrupted result was silently reused")
			}
			if tr.Fallback != "chunk-hash" {
				t.Fatalf("victim fallback = %q, want chunk-hash", tr.Fallback)
			}
			sawHashFallback = true
		}
	}
	if !sawHashFallback {
		t.Fatal("victim task not reported")
	}

	// Healed: the next build hits everywhere again.
	healed := buildOrDie(t, Config{Graph: g, Sources: sources, Store: store, Index: idx})
	if healed.Stats.CacheHits != len(tasks) {
		t.Fatalf("healed stats = %+v, want all hits", healed.Stats)
	}
}

// Conflict reports are deterministic: the same broken graph yields the
// same typed report, run after run.
func TestPropertyConflictReportsDeterministic(t *testing.T) {
	actions := DefaultActions()
	actions.Register("mkfile", func(c *TaskCtx) error {
		return c.WriteFile(c.Outputs()[0], []byte("x"))
	})
	g, err := NewGraph([]*Task{
		mkTask("p-file", "mkfile", []string{"prefix"}, nil),
		mkTask("q-under", "mkfile", []string{"prefix/sub"}, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	var reports []string
	for i := 0; i < 3; i++ {
		_, err := Build(Config{Graph: g, Actions: actions})
		var conflict *OutputConflictError
		if !errors.As(err, &conflict) {
			t.Fatalf("run %d: %v, want *OutputConflictError", i, err)
		}
		reports = append(reports, err.Error())
	}
	if !reflect.DeepEqual(reports[0], reports[1]) || !reflect.DeepEqual(reports[1], reports[2]) {
		t.Fatalf("conflict reports varied: %v", reports)
	}
}

// actionKeyFor recomputes a task's cache key against the given source
// tree by replaying input hashes through the graph (test helper).
func actionKeyFor(t *testing.T, g *Graph, sources map[string][]byte, victim *Task) castore.Key {
	t.Helper()
	res, err := Build(Config{Graph: g, Sources: sources})
	if err != nil {
		t.Fatal(err)
	}
	hash := make(map[string]castore.Key)
	for p, b := range sources {
		hash[p] = castore.KeyOf(b)
	}
	for p, b := range res.Outputs {
		hash[p] = castore.KeyOf(b)
	}
	return actionKey(victim, hash, DefaultTaskFSSize)
}
