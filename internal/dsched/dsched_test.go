package dsched

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/vm"
)

func TestMutexProtectsCounter(t *testing.T) {
	// Classic increment race: n threads × k increments under a mutex.
	// Deterministic scheduling must produce exactly n*k.
	const n, k = 4, 25
	res := core.Run(core.Options{Kernel: kernel.Config{CPUsPerNode: 4}}, func(rt *core.RT) uint64 {
		s := New(rt, Config{Quantum: 1000})
		counter := rt.Alloc(4, 4)
		mu := s.NewMutex()
		rt.Env().WriteU32(counter, 0)
		if err := s.Run(n, func(th *Thread) {
			for i := 0; i < k; i++ {
				th.Lock(mu)
				v := th.Env().ReadU32(counter)
				th.Env().Tick(10)
				th.Env().WriteU32(counter, v+1)
				th.Unlock(mu)
				th.Env().Tick(50)
			}
		}); err != nil {
			panic(err)
		}
		return uint64(rt.Env().ReadU32(counter))
	})
	if res.Status != kernel.StatusHalted {
		t.Fatalf("%v: %v", res.Status, res.Err)
	}
	if res.Ret != n*k {
		t.Errorf("counter = %d, want %d (lost updates)", res.Ret, n*k)
	}
}

func TestSchedulingIsDeterministic(t *testing.T) {
	// A racy-but-locked program must produce the identical result and
	// identical round count on every run.
	prog := func() (uint64, int64) {
		var rounds int64
		res := core.Run(core.Options{Kernel: kernel.Config{CPUsPerNode: 4}}, func(rt *core.RT) uint64 {
			s := New(rt, Config{Quantum: 500})
			slots := rt.Alloc(8*8, 8)
			mu := s.NewMutex()
			seq := rt.Alloc(8, 8)
			if err := s.Run(4, func(th *Thread) {
				for i := 0; i < 5; i++ {
					th.Lock(mu)
					// Record acquisition order: which thread got the
					// mutex at each step.
					pos := th.Env().ReadU64(seq)
					th.Env().WriteU64(seq, pos+1)
					if pos < 8 {
						th.Env().WriteU64(slots+vm.Addr(8*pos), uint64(th.ID+1))
					}
					th.Unlock(mu)
					th.Env().Tick(100 * int64(th.ID+1))
				}
			}); err != nil {
				panic(err)
			}
			rounds = s.Rounds()
			var sig uint64
			for i := 0; i < 8; i++ {
				sig = sig*31 + rt.Env().ReadU64(slots+vm.Addr(8*i))
			}
			return sig
		})
		if res.Status != kernel.StatusHalted {
			t.Fatalf("%v: %v", res.Status, res.Err)
		}
		return res.Ret, rounds
	}
	sig1, r1 := prog()
	for i := 0; i < 3; i++ {
		sig, r := prog()
		if sig != sig1 || r != r1 {
			t.Fatalf("run %d: signature/rounds %d/%d differ from %d/%d — nondeterministic",
				i, sig, r, sig1, r1)
		}
	}
}

func TestOwnerFastPathNeedsNoScheduler(t *testing.T) {
	// A single thread locking and unlocking its own mutex repeatedly
	// should finish in very few rounds: the owner fast path never traps.
	res := core.Run(core.Options{}, func(rt *core.RT) uint64 {
		s := New(rt, Config{Quantum: 100_000})
		mu := s.NewMutex()
		x := rt.Alloc(4, 4)
		if err := s.Run(1, func(th *Thread) {
			for i := 0; i < 100; i++ {
				th.Lock(mu)
				th.Env().WriteU32(x, uint32(i))
				th.Unlock(mu)
			}
		}); err != nil {
			panic(err)
		}
		return uint64(s.Rounds())
	})
	if res.Status != kernel.StatusHalted {
		t.Fatalf("%v: %v", res.Status, res.Err)
	}
	if res.Ret > 2 {
		t.Errorf("owner fast path trapped to the scheduler (%d rounds)", res.Ret)
	}
}

// TestCondVarHandshake: one producer fills a slot; one consumer drains
// it; a condvar in each direction. Checks wake-up and re-acquisition.
func TestCondVarHandshake(t *testing.T) {
	const items = 5
	res := core.Run(core.Options{Kernel: kernel.Config{CPUsPerNode: 2}}, func(rt *core.RT) uint64 {
		s := New(rt, Config{Quantum: 2000})
		mu := s.NewMutex()
		cvFull := s.NewCond()
		cvEmpty := s.NewCond()
		slot := rt.Alloc(8, 8)  // 0 = empty, else value
		total := rt.Alloc(8, 8) // consumer's sum
		if err := s.Run(2, func(th *Thread) {
			if th.ID == 0 { // producer
				for i := 1; i <= items; i++ {
					th.Lock(mu)
					for th.Env().ReadU64(slot) != 0 {
						th.Wait(cvEmpty, mu)
					}
					th.Env().WriteU64(slot, uint64(i))
					th.Unlock(mu)
					th.Signal(cvFull)
				}
			} else { // consumer
				got := 0
				for got < items {
					th.Lock(mu)
					for th.Env().ReadU64(slot) == 0 {
						th.Wait(cvFull, mu)
					}
					v := th.Env().ReadU64(slot)
					th.Env().WriteU64(slot, 0)
					th.Env().WriteU64(total, th.Env().ReadU64(total)+v)
					th.Unlock(mu)
					th.Signal(cvEmpty)
					got++
				}
			}
		}); err != nil {
			panic(err)
		}
		return rt.Env().ReadU64(total)
	})
	if res.Status != kernel.StatusHalted {
		t.Fatalf("%v: %v", res.Status, res.Err)
	}
	want := uint64(items * (items + 1) / 2)
	if res.Ret != want {
		t.Errorf("consumer total = %d, want %d", res.Ret, want)
	}
}

func TestBarrierSynchronizesPhases(t *testing.T) {
	const n = 4
	res := core.Run(core.Options{Kernel: kernel.Config{CPUsPerNode: 4}}, func(rt *core.RT) uint64 {
		s := New(rt, Config{Quantum: 5000})
		b := s.NewBarrier(n)
		arr := rt.Alloc(4*n, 4)
		ok := rt.Alloc(4, 4)
		rt.Env().WriteU32(ok, 1)
		if err := s.Run(n, func(th *Thread) {
			th.Env().WriteU32(arr+vm.Addr(4*th.ID), uint32(th.ID+1))
			th.BarrierWait(b)
			// After the barrier every thread must see all writes.
			for j := 0; j < n; j++ {
				if th.Env().ReadU32(arr+vm.Addr(4*j)) != uint32(j+1) {
					th.Env().WriteU32(ok, 0)
				}
			}
		}); err != nil {
			panic(err)
		}
		return uint64(rt.Env().ReadU32(ok))
	})
	if res.Status != kernel.StatusHalted {
		t.Fatalf("%v: %v", res.Status, res.Err)
	}
	if res.Ret != 1 {
		t.Error("a thread missed another's pre-barrier write")
	}
}

func TestRacyWritesAreRepeatableNotConflicting(t *testing.T) {
	// Two threads write the same word without locking. Under the
	// deterministic scheduler this must not raise a conflict, and the
	// (arbitrary) winner must be identical across runs (§4.5).
	prog := func() uint64 {
		res := core.Run(core.Options{Kernel: kernel.Config{CPUsPerNode: 2}}, func(rt *core.RT) uint64 {
			s := New(rt, Config{Quantum: 300})
			x := rt.Alloc(8, 8)
			if err := s.Run(2, func(th *Thread) {
				for i := 0; i < 10; i++ {
					th.Env().WriteU64(x, uint64(th.ID*1000+i))
					th.Env().Tick(100)
				}
			}); err != nil {
				panic(err)
			}
			return rt.Env().ReadU64(x)
		})
		if res.Status != kernel.StatusHalted {
			t.Fatalf("%v: %v", res.Status, res.Err)
		}
		return res.Ret
	}
	first := prog()
	for i := 0; i < 3; i++ {
		if got := prog(); got != first {
			t.Fatalf("racy program not repeatable: %d vs %d", got, first)
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	res := core.Run(core.Options{Kernel: kernel.Config{CPUsPerNode: 2}}, func(rt *core.RT) uint64 {
		s := New(rt, Config{Quantum: 1000})
		a := s.NewMutex()
		b := s.NewMutex()
		err := s.Run(2, func(th *Thread) {
			if th.ID == 0 {
				th.Lock(a)
				th.Yield()
				th.Lock(b)
			} else {
				th.Lock(b)
				th.Yield()
				th.Lock(a)
			}
		})
		if !errors.Is(err, ErrDeadlock) {
			panic("deadlock not detected: " + errString(err))
		}
		return 0
	})
	if res.Status != kernel.StatusHalted {
		t.Fatalf("%v: %v", res.Status, res.Err)
	}
}

func errString(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

func TestUnlockWithoutOwnershipPanics(t *testing.T) {
	res := core.Run(core.Options{Kernel: kernel.Config{CPUsPerNode: 2}}, func(rt *core.RT) uint64 {
		s := New(rt, Config{Quantum: 1000})
		mu := s.NewMutex()
		err := s.Run(2, func(th *Thread) {
			if th.ID == 1 {
				th.Unlock(mu) // thread 1 never acquired it
			}
		})
		if err == nil || !strings.Contains(err.Error(), "does not own") {
			panic("bogus unlock not caught")
		}
		return 0
	})
	if res.Status != kernel.StatusHalted {
		t.Fatalf("%v: %v", res.Status, res.Err)
	}
}

func TestCrashingThreadReported(t *testing.T) {
	res := core.Run(core.Options{Kernel: kernel.Config{CPUsPerNode: 2}}, func(rt *core.RT) uint64 {
		s := New(rt, Config{Quantum: 1000})
		err := s.Run(2, func(th *Thread) {
			if th.ID == 1 {
				panic("thread bug")
			}
		})
		if err == nil || !strings.Contains(err.Error(), "crashed") {
			panic("crash not reported")
		}
		return 0
	})
	if res.Status != kernel.StatusHalted {
		t.Fatalf("%v: %v", res.Status, res.Err)
	}
}

func TestSmallerQuantumMoreRounds(t *testing.T) {
	rounds := func(q int64) int64 {
		var r int64
		res := core.Run(core.Options{Kernel: kernel.Config{CPUsPerNode: 2}}, func(rt *core.RT) uint64 {
			s := New(rt, Config{Quantum: q})
			if err := s.Run(2, func(th *Thread) {
				th.Env().Tick(10_000)
			}); err != nil {
				panic(err)
			}
			r = s.Rounds()
			return 0
		})
		if res.Status != kernel.StatusHalted {
			t.Fatalf("%v: %v", res.Status, res.Err)
		}
		return r
	}
	small, large := rounds(500), rounds(100_000)
	if small <= large {
		t.Errorf("quantum 500 used %d rounds, quantum 100k used %d: expected more rounds for smaller quantum",
			small, large)
	}
}
