// Package dsched implements Determinator's deterministic scheduler for
// legacy, nondeterministic thread APIs (§4.5 of the paper): the pthreads
// compatibility path.
//
// The process's master space never runs application code. It creates one
// child space per application thread and quantizes execution: every
// round, each runnable thread receives a fresh snapshot of shared memory
// and an instruction limit of one quantum, runs concurrently with its
// peers, and is then collected in fixed thread order, its shared-memory
// writes merged back with deterministic last-writer-wins commit order.
// Writes therefore propagate only at quantum boundaries — the weak
// consistency model of DMP-B, totally ordering only synchronization.
//
// The round engine keeps that model while avoiding its naive cost.
// Collection first overlaps the physical waits for every started thread
// on a bounded pool (Config.CollectWorkers) and only then applies the
// merges, strictly in thread order, so stragglers stop serializing the
// wait without perturbing the commit order. Resynchronization is
// epoch-skipped: the master tracks a commit epoch for its shared region
// and each thread the epoch it last synchronized to, and a thread
// resuming into an unchanged region — no commits, no hand-off writes,
// and its own replica provably clean — is restarted with a bare
// Put{Start,Limit}: no Copy, no fresh snapshot, no dirty-bitmap churn.
// Both optimizations are result-invariant, including virtual times: the
// skip fires only when the kernel's (incremental) Copy and Snap would
// charge nothing and change nothing. Per-round telemetry (RoundStats,
// Stats) makes the savings observable.
//
// Synchronization primitives trap to the master instead of spinning.
// Each mutex is owned by some thread; the owner locks and unlocks it
// without scheduler interaction (writing a flag in its private replica,
// merged like any other write), while any other thread requests
// ownership, and the scheduler steals the mutex from its owner at the
// owner's next quantum boundary if it is unlocked — the protocol of
// §4.5. The owner's identity lives in shared memory too, written only by
// the master, so every thread's replica shows who owned each mutex as of
// its own quantum start; staleness is impossible because ownership only
// changes at boundaries, while threads are stopped.
//
// Condition variables and barriers queue threads in the master, FIFO in
// thread order, so wake-ups are deterministic. The result is repeatable
// execution for unmodified lock-based code, at the cost the paper
// measures: a fixed overhead that shrinks as the quantum grows, and a
// programming model that remains racy — only reproducibly so.
package dsched

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/vm"
)

// Scheduler service opcodes, passed in the Ret register.
const (
	opLockRequest   = iota + 1 // acquire ownership of a mutex
	opCondWait                 // atomically release mutex and wait on condvar
	opCondSignal               // wake one waiter
	opCondBroadcast            // wake all waiters
	opBarrier                  // wait at barrier
	opYield                    // voluntarily end the quantum
)

func encodeOp(op, arg int) uint64 { return uint64(op)<<32 | uint64(uint32(arg)) }
func decodeOp(v uint64) (op, arg int) {
	return int(v >> 32), int(uint32(v))
}

// Mutex names a scheduler-managed mutex. Create all mutexes before
// starting threads.
type Mutex int

// Cond names a condition variable.
type Cond int

// Barrier names a barrier.
type Barrier int

// Per-mutex shared-memory layout: two u64 words.
const (
	offFlag  = 0 // 1 = locked; written by the owning thread (and by the master at handoff)
	offOwner = 8 // owning thread id; written only by the master
)

// EpochGranularity selects how precisely commit epochs track changes to
// the master's shared region.
type EpochGranularity int

const (
	// EpochTable keeps one epoch per 4 MiB level-1 table (the default):
	// a commit bumps only the tables it actually changed — derived from
	// the merge's deterministic touched-table bits — so a resuming
	// thread re-copies only those tables, through the kernel's
	// whole-table COW fast path.
	EpochTable EpochGranularity = iota
	// EpochRegion keeps a single epoch for the whole shared region: any
	// commit invalidates every thread's sync state and a resync re-copies
	// the full region. This is the pre-table behavior, kept as the
	// ablation baseline; results, including virtual times, are identical
	// to EpochTable — only the host copy work differs.
	EpochRegion
)

// Config tunes the scheduler.
type Config struct {
	// Quantum is the instruction limit per scheduling round. The paper's
	// evaluation uses 10 million instructions.
	Quantum int64
	// CollectWorkers bounds the host parallelism used to overlap the
	// waits for the threads of one round before their merges are applied
	// (in thread order, as always). Like kernel.Config.MergeWorkers it is
	// a wall-clock knob only: checksums, conflict reports, round counts
	// and virtual times are identical at every setting. <= 0 selects
	// GOMAXPROCS.
	CollectWorkers int
	// AdaptiveQuantum enables the telemetry-driven quantum policy: the
	// scheduler scales the next round's quantum from the committed
	// RoundStats of the rounds before it. A round with a single runnable
	// thread doubles the scale (no peer to interleave with, so longer
	// quanta only cut scheduling overhead — the old fixed 8x boost,
	// generalized); a contended round that committed no shared-memory
	// changes grows it one step (read-mostly phases tolerate coarse
	// interleaving); a round that committed merge work collapses it back
	// toward the configured quantum (writes propagate only at quantum
	// boundaries, so commit-heavy phases need fine ones). The policy
	// reads only committed, deterministic round telemetry, so execution
	// remains repeatable — but round counts, virtual times and lock
	// hand-off order may differ from the fixed-quantum schedule. Result
	// bits of race-free (mutex-protected) programs do not: only the
	// schedule moves, never the synchronization order's outcome.
	AdaptiveQuantum bool
	// DisableEpochSkip turns off epoch-skipped resynchronization: every
	// runnable thread is re-copied and re-snapshotted each round even
	// when the engine can prove both are no-ops. Results — including
	// virtual times — are identical; the flag exists for the invariance
	// tests and as an ablation.
	DisableEpochSkip bool
	// Granularity selects per-table or whole-region commit epochs; see
	// EpochGranularity. The zero value is EpochTable.
	Granularity EpochGranularity
	// FullResync reproduces the pre-engine round loop: every resync
	// rebuilds the thread's snapshot from scratch (PutOpts.SnapFresh) and
	// epoch skipping is disabled. Checksums and schedules are identical;
	// virtual time and host work are not (that overhead is the point).
	// Kept as the benchmark baseline for the round engine.
	FullResync bool
	// OnRound, if non-nil, receives every completed round's statistics.
	OnRound func(RoundStats)
}

// DefaultQuantum matches the paper's choice.
const DefaultQuantum = 10_000_000

// adaptiveMaxScale caps the adaptive policy's quantum multiplier (the
// old one-runnable boost's value, now the ceiling the policy climbs to).
const adaptiveMaxScale = 8

// RoundStats describes one scheduling round.
type RoundStats struct {
	Round   int64 // 1-based round number
	Quantum int64 // instruction limit each runnable thread received
	Ran     int   // threads that ran a quantum this round
	Blocked int   // threads that sat blocked on a sync object
	// SyncSkipped counts threads resumed with a bare Put{Start,Limit}:
	// the epoch proof showed both the shared-region copy and the
	// re-snapshot would be no-ops, so neither was issued.
	SyncSkipped int
	// TablesResynced counts the 4 MiB shared-region tables re-copied
	// into resuming threads this round; TablesSkipped counts the tables
	// the per-table epoch proof showed current, so their copies were
	// never issued. A full (dirty or skip-disabled) resync counts every
	// region table as resynced.
	TablesResynced int
	TablesSkipped  int
	// Merge totals the reconciliation work of this round's collections.
	Merge vm.MergeStats
	// VT is the master's virtual clock after the round.
	VT int64
}

// Stats accumulates RoundStats over a scheduler's lifetime.
type Stats struct {
	Rounds         int64
	ThreadQuanta   int64 // total quanta executed across all threads
	SyncSkipped    int64 // quanta started without any resynchronization
	TablesResynced int64 // shared-region tables re-copied across all resyncs
	TablesSkipped  int64 // shared-region tables proven current and not copied
	Merge          vm.MergeStats
}

type mutexState struct {
	addr    vm.Addr
	waiters []int // FIFO ownership queue
}

type condState struct {
	waiters []int // FIFO
	mu      map[int]Mutex
}

type barrierState struct {
	need    int
	waiting []int
}

type threadState struct {
	id      int
	blocked bool
	done    bool
	crash   error
	// syncEpoch is the master commit epoch the thread's replica was last
	// synchronized to; dirty records that the thread has provably-unknown
	// (or known) divergence from its own snapshot since then. Together
	// they decide epoch-skipped resync: a thread with syncEpoch equal to
	// the master's commit epoch and a clean replica would receive a
	// no-op Copy (every table still pointer-shared) and a no-op Snap
	// (snapshot still exact), so the engine skips both.
	syncEpoch uint64
	dirty     bool
}

// Sched is the master-space scheduler.
type Sched struct {
	rt      *core.RT
	env     *kernel.Env
	cfg     Config
	quantum int64
	// scale is the adaptive policy's current quantum multiplier, a pure
	// function of the committed round history (see Config.AdaptiveQuantum).
	scale int64

	threads  []*threadState
	mutexes  []*mutexState
	conds    []*condState
	barriers []*barrierState
	stats    Stats

	// commitEpoch advances whenever the master's copy of the shared
	// region changes: a collection merged bytes or adopted pages, or the
	// master wrote shared memory during a mutex hand-off. Threads record
	// the epoch they last synchronized at; matching epochs prove the
	// master region is byte- and pointer-identical to what the thread
	// already holds.
	commitEpoch uint64
	// tableEpochs refines commitEpoch to level-1 table granularity:
	// tableEpochs[i] is the commit epoch at which region table epochLo+i
	// last changed. A table whose epoch is <= a thread's syncEpoch is
	// byte- and pointer-identical between master and that thread's
	// replica (the merge's touched-table bits are deterministic and any
	// divergence marks the table), so a resync need only copy the tables
	// whose epoch passed the thread's. Under EpochRegion every commit
	// stamps every table, collapsing this back to the scalar behavior.
	tableEpochs []uint64
	// epochLo is the level-1 index of the shared region's first table.
	epochLo int
}

// Thread is the handle application thread code receives. Synchronization
// methods interact with the scheduler; everything else is ordinary
// memory access on the thread's private replica via Env.
type Thread struct {
	ID  int
	env *kernel.Env
	mus []vm.Addr // mutex shared-memory addresses, by Mutex index
}

// Env exposes the thread's kernel environment.
func (t *Thread) Env() *kernel.Env { return t.env }

// New creates a scheduler in the master space managed by rt.
func New(rt *core.RT, cfg Config) *Sched {
	q := cfg.Quantum
	if q <= 0 {
		q = DefaultQuantum
	}
	if cfg.FullResync {
		cfg.DisableEpochSkip = true
	}
	base, size := rt.SharedRange()
	if uint64(base)%vm.TableSpan != 0 || size%vm.TableSpan != 0 {
		// Partial resyncs rely on table-aligned copies (the kernel's
		// whole-table COW fast path, which charges only pointer-different
		// tables). An unaligned region cannot use them; fall back to
		// whole-region epochs, which copy exactly as the scalar-epoch
		// engine did.
		cfg.Granularity = EpochRegion
	}
	return &Sched{
		rt: rt, env: rt.Env(), cfg: cfg, quantum: q, scale: 1, commitEpoch: 1,
		tableEpochs: make([]uint64, (size+vm.TableSpan-1)/vm.TableSpan),
		epochLo:     vm.TableOf(base),
	}
}

// NewMutex creates a mutex, initially unlocked and owned by thread 0.
func (s *Sched) NewMutex() Mutex {
	addr := s.rt.Alloc(16, 8)
	s.env.WriteU64(addr+offFlag, 0)
	s.env.WriteU64(addr+offOwner, 0)
	s.mutexes = append(s.mutexes, &mutexState{addr: addr})
	return Mutex(len(s.mutexes) - 1)
}

// NewCond creates a condition variable.
func (s *Sched) NewCond() Cond {
	s.conds = append(s.conds, &condState{mu: make(map[int]Mutex)})
	return Cond(len(s.conds) - 1)
}

// NewBarrier creates a barrier for n threads.
func (s *Sched) NewBarrier(n int) Barrier {
	s.barriers = append(s.barriers, &barrierState{need: n})
	return Barrier(len(s.barriers) - 1)
}

// Rounds reports how many scheduling rounds ran, for the quantum
// overhead experiment.
func (s *Sched) Rounds() int64 { return s.stats.Rounds }

// Stats reports the scheduler's accumulated round statistics.
func (s *Sched) Stats() Stats { return s.stats }

// ErrDeadlock is returned when every live thread is blocked on a
// synchronization object no runnable thread can release.
var ErrDeadlock = fmt.Errorf("dsched: all threads blocked (deadlock)")

// Run executes n application threads under deterministic scheduling and
// returns when all have exited (or one crashes, or the set deadlocks).
func (s *Sched) Run(n int, body func(t *Thread)) error {
	mus := make([]vm.Addr, len(s.mutexes))
	for i, m := range s.mutexes {
		mus[i] = m.addr
	}
	base, size := s.rt.SharedRange()
	s.threads = make([]*threadState, n)
	// Round zero: fork every thread with the quantum limit armed, then
	// collect, like any later round. The first resync is always full.
	rs := RoundStats{Round: s.stats.Rounds + 1, Quantum: s.quantum, Ran: n,
		TablesResynced: n * len(s.tableEpochs)}
	started := make([]bool, n)
	for i := 0; i < n; i++ {
		i := i
		s.threads[i] = &threadState{id: i, syncEpoch: s.commitEpoch}
		entry := func(env *kernel.Env) {
			body(&Thread{ID: i, env: env, mus: mus})
		}
		if err := s.env.Put(s.ref(i), kernel.PutOpts{
			Regs:      &kernel.Regs{Entry: entry, Arg: uint64(i)},
			Copy:      &kernel.CopyRange{Src: base, Dst: base, Size: size},
			Snap:      true,
			SnapFresh: s.cfg.FullResync,
			Start:     true,
			Limit:     s.quantum,
		}); err != nil {
			return err
		}
		started[i] = true
	}
	if err := s.collect(started, &rs); err != nil {
		return err
	}
	s.handoffs()
	s.finishRound(rs)
	for {
		alive := false
		for _, t := range s.threads {
			if !t.done {
				alive = true
				break
			}
		}
		if !alive {
			break
		}
		if err := s.round(); err != nil {
			return err
		}
	}
	for _, t := range s.threads {
		if t.crash != nil {
			return t.crash
		}
	}
	return nil
}

func (s *Sched) ref(id int) uint64 { return uint64(id + 1) }

// bumpTouched advances the commit epoch for a merge commit, stamping the
// region tables the merge's deterministic touched bits say it changed
// (every table under EpochRegion).
func (s *Sched) bumpTouched(tb *vm.TableBits) {
	s.commitEpoch++
	for i := range s.tableEpochs {
		if s.cfg.Granularity == EpochRegion || tb.Test(s.epochLo+i) {
			s.tableEpochs[i] = s.commitEpoch
		}
	}
}

// bumpAddrs advances the commit epoch for a master write to the given
// shared-memory addresses (mutex hand-off words), stamping the tables
// containing them (every table under EpochRegion).
func (s *Sched) bumpAddrs(addrs ...vm.Addr) {
	s.commitEpoch++
	for _, a := range addrs {
		if i := vm.TableOf(a) - s.epochLo; i >= 0 && i < len(s.tableEpochs) {
			s.tableEpochs[i] = s.commitEpoch
		}
	}
	if s.cfg.Granularity == EpochRegion {
		for i := range s.tableEpochs {
			s.tableEpochs[i] = s.commitEpoch
		}
	}
}

// get collects thread id: rendezvous plus shared-region merge with
// deterministic last-writer-wins commit.
func (s *Sched) get(id int) (kernel.ChildInfo, error) {
	base, size := s.rt.SharedRange()
	return s.env.Get(s.ref(id), kernel.GetOpts{
		Regs:       true,
		Merge:      true,
		MergeRange: &kernel.Range{Addr: base, Size: size},
		MergeLWW:   true,
	})
}

// round runs one scheduling quantum: resynchronize and start every
// runnable thread (skipping the resync when the epoch proof makes it a
// no-op), wait for all of them concurrently, then apply their merge
// commits strictly in thread order.
func (s *Sched) round() error {
	rs := RoundStats{Round: s.stats.Rounds + 1}
	base, size := s.rt.SharedRange()
	runnable := 0
	for _, t := range s.threads {
		switch {
		case t.done:
		case t.blocked:
			rs.Blocked++
		default:
			runnable++
		}
	}
	if runnable == 0 {
		return ErrDeadlock
	}
	limit := s.quantum
	if s.cfg.AdaptiveQuantum {
		limit *= s.scale
	}
	rs.Quantum = limit
	started := make([]bool, len(s.threads))
	for _, t := range s.threads {
		if t.done || t.blocked {
			continue
		}
		opts := kernel.PutOpts{Start: true, Limit: limit}
		regionTables := len(s.tableEpochs)
		if s.cfg.DisableEpochSkip || t.dirty {
			// The replica diverged from its own snapshot (or skipping is
			// disabled): re-copy the whole shared region and refresh the
			// snapshot. Both operations do — and charge — work only
			// proportional to the tables that actually diverged.
			opts.Copy = &kernel.CopyRange{Src: base, Dst: base, Size: size}
			opts.Snap = true
			opts.SnapFresh = s.cfg.FullResync
			rs.TablesResynced += regionTables
			t.syncEpoch = s.commitEpoch
			t.dirty = false
		} else if stale := s.staleRuns(t.syncEpoch, base); len(stale.runs) == 0 {
			// In sync: the thread's replica, and its snapshot, are still
			// byte- and pointer-identical to the master region, so Copy
			// and Snap would be no-ops. Resume bare.
			rs.SyncSkipped++
			rs.TablesSkipped += regionTables
			t.syncEpoch = s.commitEpoch
		} else {
			// Some tables committed past the thread's sync epoch; every
			// other table is byte- and pointer-identical on both sides, so
			// copying only the stale ones is exactly the whole-region copy
			// — same bytes, and same virtual time, because the kernel's
			// table-aligned copy fast path charges only pointer-different
			// tables and the current ones are already shared.
			if stale.count == regionTables {
				opts.Copy = &kernel.CopyRange{Src: base, Dst: base, Size: size}
			} else {
				opts.Copies = stale.runs
			}
			opts.Snap = true
			rs.TablesResynced += stale.count
			rs.TablesSkipped += regionTables - stale.count
			t.syncEpoch = s.commitEpoch
			t.dirty = false
		}
		if err := s.env.Put(s.ref(t.id), opts); err != nil {
			return err
		}
		started[t.id] = true
		rs.Ran++
	}
	if err := s.collect(started, &rs); err != nil {
		return err
	}
	s.handoffs()
	s.finishRound(rs)
	return nil
}

// staleSet describes the region tables whose epoch passed a thread's
// sync epoch, coalesced into maximal table-aligned copy ranges.
type staleSet struct {
	runs  []kernel.CopyRange
	count int
}

// staleRuns computes the stale set for a thread last synchronized at
// syncEpoch. Only called with table-aligned regions (New falls back to
// EpochRegion otherwise, and region mode resyncs stale sets whole).
func (s *Sched) staleRuns(syncEpoch uint64, base vm.Addr) staleSet {
	var out staleSet
	lo := -1
	flush := func(hi int) {
		if lo < 0 {
			return
		}
		addr := base + vm.Addr(uint64(lo)*vm.TableSpan)
		out.runs = append(out.runs, kernel.CopyRange{
			Src: addr, Dst: addr, Size: uint64(hi-lo) * vm.TableSpan,
		})
		lo = -1
	}
	for i, e := range s.tableEpochs {
		if e > syncEpoch {
			if lo < 0 {
				lo = i
			}
			out.count++
			continue
		}
		flush(i)
	}
	flush(len(s.tableEpochs))
	return out
}

// collect gathers every started thread: the physical waits overlap on a
// CollectWorkers-bounded pool, after which the merge commits are applied
// strictly in thread-id order — the order, not the waiting, is what the
// deterministic result depends on.
func (s *Sched) collect(started []bool, rs *RoundStats) error {
	refs := make([]uint64, 0, len(s.threads))
	for _, t := range s.threads {
		if started[t.id] {
			refs = append(refs, s.ref(t.id))
		}
	}
	s.env.WaitChildren(refs, s.cfg.CollectWorkers)
	for _, t := range s.threads {
		if !started[t.id] {
			continue
		}
		info, err := s.get(t.id)
		if err != nil {
			return err
		}
		if info.MergeTouched.Any() {
			// The master's region changed: every thread synchronized to
			// an earlier epoch must resync the touched tables before it
			// next runs.
			s.bumpTouched(&info.MergeTouched)
		}
		t.dirty = !info.MemClean
		rs.Merge.Add(info.Merge)
		if err := s.handleStop(t.id, info); err != nil {
			return err
		}
	}
	return nil
}

// handoffs runs the deferred mutex hand-offs: steal unlocked mutexes
// from their owners for queued requesters, in mutex order.
func (s *Sched) handoffs() {
	for _, m := range s.mutexes {
		s.handoff(m)
	}
}

// finishRound closes out one round's accounting and advances the
// adaptive-quantum policy from the round's committed telemetry.
func (s *Sched) finishRound(rs RoundStats) {
	rs.VT = s.env.VT()
	s.stats.Rounds++
	s.stats.ThreadQuanta += int64(rs.Ran)
	s.stats.SyncSkipped += int64(rs.SyncSkipped)
	s.stats.TablesResynced += int64(rs.TablesResynced)
	s.stats.TablesSkipped += int64(rs.TablesSkipped)
	s.stats.Merge.Add(rs.Merge)
	if s.cfg.AdaptiveQuantum {
		s.adapt(rs)
	}
	if s.cfg.OnRound != nil {
		s.cfg.OnRound(rs)
	}
}

// adapt recomputes the quantum scale for the next round. Inputs are the
// committed RoundStats only — deterministic by construction — so the
// schedule the policy produces is as repeatable as the fixed-quantum one.
func (s *Sched) adapt(rs RoundStats) {
	committed := rs.Merge.BytesMerged > 0 || rs.Merge.PagesAdopted > 0 ||
		rs.Merge.TablesAdopted > 0
	switch {
	case rs.Ran == 1:
		// Nothing to interleave with: race toward the ceiling.
		s.scale *= 2
	case !committed:
		// Contended but read-mostly: grow gently.
		s.scale++
	default:
		// Shared-memory commits this round: writes propagate only at
		// quantum boundaries, so fall back toward fine interleaving.
		s.scale /= 2
	}
	if s.scale > adaptiveMaxScale {
		s.scale = adaptiveMaxScale
	}
	if s.scale < 1 {
		s.scale = 1
	}
}

// handleStop processes one thread's stop reason after its merge.
func (s *Sched) handleStop(id int, info kernel.ChildInfo) error {
	t := s.threads[id]
	switch info.Status {
	case kernel.StatusHalted:
		t.done = true
		return nil
	case kernel.StatusInsnLimit:
		return nil // quantum expired; runnable next round
	case kernel.StatusRet:
		op, arg := decodeOp(info.Regs.Ret)
		return s.service(id, op, arg)
	case kernel.StatusFault, kernel.StatusExcept:
		t.done = true
		t.crash = fmt.Errorf("dsched: thread %d crashed (%v): %w", id, info.Status, info.Err)
		return nil
	default:
		return fmt.Errorf("dsched: thread %d in unexpected state %v", id, info.Status)
	}
}

// service handles an explicit scheduler request from thread id.
func (s *Sched) service(id, op, arg int) error {
	t := s.threads[id]
	switch op {
	case opYield:
		return nil
	case opLockRequest:
		m := s.mutexes[arg]
		m.waiters = append(m.waiters, id)
		t.blocked = true
		return nil
	case opCondWait:
		cv := s.conds[arg&0xffff]
		mu := Mutex(arg >> 16)
		cv.waiters = append(cv.waiters, id)
		cv.mu[id] = mu
		t.blocked = true
		return nil
	case opCondSignal, opCondBroadcast:
		cv := s.conds[arg]
		wake := 1
		if op == opCondBroadcast {
			wake = len(cv.waiters)
		}
		for wake > 0 && len(cv.waiters) > 0 {
			w := cv.waiters[0]
			cv.waiters = cv.waiters[1:]
			wake--
			// A woken thread must reacquire its mutex before returning
			// from wait: it joins the ownership queue.
			mu := cv.mu[w]
			delete(cv.mu, w)
			s.mutexes[mu].waiters = append(s.mutexes[mu].waiters, w)
		}
		return nil
	case opBarrier:
		b := s.barriers[arg]
		b.waiting = append(b.waiting, id)
		t.blocked = true
		if len(b.waiting) >= b.need {
			for _, w := range b.waiting {
				s.threads[w].blocked = false
			}
			b.waiting = nil
		}
		return nil
	default:
		return fmt.Errorf("dsched: thread %d issued unknown op %d", id, op)
	}
}

// handoff transfers an unlocked mutex to the head of its waiter queue.
// The master's replica holds the authoritative lock flag (the owner's
// writes were merged when the owner was last collected); the owner word
// is written only here, while every thread is stopped, so no thread can
// ever observe a stale owner.
func (s *Sched) handoff(m *mutexState) {
	for len(m.waiters) > 0 {
		owner := int(s.env.ReadU64(m.addr + offOwner))
		if !s.threads[owner].done && s.env.ReadU64(m.addr+offFlag) != 0 {
			return // still locked: steal at a later boundary
		}
		next := m.waiters[0]
		m.waiters = m.waiters[1:]
		// Hand over locked: the requester was acquiring it. The master
		// just changed the shared region, so every thread's sync epoch
		// is stale — in particular the woken requester resyncs before it
		// runs and cannot miss its own ownership.
		s.env.WriteU64(m.addr+offFlag, 1)
		s.env.WriteU64(m.addr+offOwner, uint64(next))
		s.bumpAddrs(m.addr+offFlag, m.addr+offOwner)
		s.threads[next].blocked = false
	}
}

// --- thread-side API ----------------------------------------------------------

// Lock acquires m. If the calling thread owns m it locks it with two
// memory accesses and no scheduler interaction; otherwise it traps to the
// master to request ownership and resumes once the mutex has been stolen
// for it.
func (t *Thread) Lock(m Mutex) {
	addr := t.mus[m]
	t.env.NoPreempt(func() {
		if t.env.ReadU64(addr+offOwner) == uint64(t.ID) {
			t.env.WriteU64(addr+offFlag, 1)
			return
		}
		t.env.SetRet(encodeOp(opLockRequest, int(m)))
		t.env.Ret()
		// Resumed: the master made us owner and set the flag for us.
	})
}

// Unlock releases m. The caller must own it (guaranteed if it called
// Lock); the release is a plain private write, merged at the next
// boundary, where the master may steal the mutex for a waiter.
func (t *Thread) Unlock(m Mutex) {
	addr := t.mus[m]
	t.env.NoPreempt(func() {
		if t.env.ReadU64(addr+offOwner) != uint64(t.ID) {
			panic(fmt.Sprintf("dsched: thread %d unlocking mutex %d it does not own", t.ID, m))
		}
		t.env.WriteU64(addr+offFlag, 0)
	})
}

// Wait atomically releases m and blocks on cv; on wake-up it has
// reacquired m.
func (t *Thread) Wait(cv Cond, m Mutex) {
	addr := t.mus[m]
	t.env.NoPreempt(func() {
		if t.env.ReadU64(addr+offOwner) != uint64(t.ID) {
			panic(fmt.Sprintf("dsched: thread %d waiting with mutex %d it does not own", t.ID, m))
		}
		t.env.WriteU64(addr+offFlag, 0)
		t.env.SetRet(encodeOp(opCondWait, int(cv)|int(m)<<16))
		t.env.Ret()
	})
}

// Signal wakes one thread waiting on cv (deterministically, the one that
// has waited longest, ties in thread order).
func (t *Thread) Signal(cv Cond) {
	t.env.NoPreempt(func() {
		t.env.SetRet(encodeOp(opCondSignal, int(cv)))
		t.env.Ret()
	})
}

// Broadcast wakes all threads waiting on cv.
func (t *Thread) Broadcast(cv Cond) {
	t.env.NoPreempt(func() {
		t.env.SetRet(encodeOp(opCondBroadcast, int(cv)))
		t.env.Ret()
	})
}

// BarrierWait blocks until all participants arrive.
func (t *Thread) BarrierWait(b Barrier) {
	t.env.NoPreempt(func() {
		t.env.SetRet(encodeOp(opBarrier, int(b)))
		t.env.Ret()
	})
}

// Yield ends the thread's quantum early.
func (t *Thread) Yield() {
	t.env.NoPreempt(func() {
		t.env.SetRet(encodeOp(opYield, 0))
		t.env.Ret()
	})
}
