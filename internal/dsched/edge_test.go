package dsched

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/vm"
)

// Edge cases of the deterministic scheduler's synchronization objects.

func TestBroadcastWakesAllWaiters(t *testing.T) {
	res := core.Run(core.Options{Kernel: kernel.Config{CPUsPerNode: 4}}, func(rt *core.RT) uint64 {
		s := New(rt, Config{Quantum: 2000})
		mu := s.NewMutex()
		cv := s.NewCond()
		ready := rt.Alloc(8, 8)
		woken := rt.Alloc(4*4, 4)
		if err := s.Run(4, func(th *Thread) {
			if th.ID == 0 {
				// Let the waiters queue up, then broadcast.
				th.Env().Tick(20_000)
				th.Lock(mu)
				th.Env().WriteU64(ready, 1)
				th.Unlock(mu)
				th.Broadcast(cv)
				return
			}
			th.Lock(mu)
			for th.Env().ReadU64(ready) == 0 {
				th.Wait(cv, mu)
			}
			th.Env().WriteU32(woken+vm.Addr(4*th.ID), 1)
			th.Unlock(mu)
		}); err != nil {
			panic(err)
		}
		var n uint64
		for i := 1; i < 4; i++ {
			n += uint64(rt.Env().ReadU32(woken + vm.Addr(4*i)))
		}
		return n
	})
	if res.Status != kernel.StatusHalted {
		t.Fatalf("%v: %v", res.Status, res.Err)
	}
	if res.Ret != 3 {
		t.Errorf("broadcast woke %d of 3 waiters", res.Ret)
	}
}

func TestSignalWithNoWaitersIsNoOp(t *testing.T) {
	res := core.Run(core.Options{Kernel: kernel.Config{CPUsPerNode: 2}}, func(rt *core.RT) uint64 {
		s := New(rt, Config{Quantum: 2000})
		cv := s.NewCond()
		if err := s.Run(1, func(th *Thread) {
			th.Signal(cv) // nobody waiting: must not wedge the scheduler
			th.Env().Tick(100)
		}); err != nil {
			panic(err)
		}
		return 1
	})
	if res.Status != kernel.StatusHalted || res.Ret != 1 {
		t.Fatalf("%v: %v", res.Status, res.Err)
	}
}

func TestMultipleMutexesIndependent(t *testing.T) {
	res := core.Run(core.Options{Kernel: kernel.Config{CPUsPerNode: 2}}, func(rt *core.RT) uint64 {
		s := New(rt, Config{Quantum: 1500})
		a, b := s.NewMutex(), s.NewMutex()
		ca := rt.Alloc(8, 8)
		cb := rt.Alloc(8, 8)
		if err := s.Run(2, func(th *Thread) {
			// Thread 0 works under a, thread 1 under b: no interference.
			m, ctr := a, ca
			if th.ID == 1 {
				m, ctr = b, cb
			}
			for i := 0; i < 20; i++ {
				th.Lock(m)
				th.Env().WriteU64(ctr, th.Env().ReadU64(ctr)+1)
				th.Unlock(m)
				th.Env().Tick(100)
			}
		}); err != nil {
			panic(err)
		}
		return rt.Env().ReadU64(ca)*100 + rt.Env().ReadU64(cb)
	})
	if res.Status != kernel.StatusHalted || res.Ret != 2020 {
		t.Fatalf("ret=%d err=%v", res.Ret, res.Err)
	}
}

func TestYieldEndsQuantumEarly(t *testing.T) {
	// A thread that yields constantly forces many rounds even though it
	// executes few instructions.
	rounds := func(yield bool) int64 {
		var r int64
		res := core.Run(core.Options{Kernel: kernel.Config{CPUsPerNode: 2}}, func(rt *core.RT) uint64 {
			s := New(rt, Config{Quantum: 1_000_000})
			if err := s.Run(1, func(th *Thread) {
				for i := 0; i < 20; i++ {
					th.Env().Tick(10)
					if yield {
						th.Yield()
					}
				}
			}); err != nil {
				panic(err)
			}
			r = s.Rounds()
			return 0
		})
		if res.Status != kernel.StatusHalted {
			t.Fatalf("%v: %v", res.Status, res.Err)
		}
		return r
	}
	if quiet, yielding := rounds(false), rounds(true); yielding <= quiet {
		t.Errorf("yield did not end quanta early: %d vs %d rounds", yielding, quiet)
	}
}

func TestZeroThreadsCompletesTrivially(t *testing.T) {
	res := core.Run(core.Options{}, func(rt *core.RT) uint64 {
		s := New(rt, Config{})
		if err := s.Run(0, func(th *Thread) {}); err != nil {
			panic(err)
		}
		return 1
	})
	if res.Status != kernel.StatusHalted || res.Ret != 1 {
		t.Fatalf("%v: %v", res.Status, res.Err)
	}
}
