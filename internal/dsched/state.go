package dsched

// Scheduler state export/attach: the dsched half of checkpoint/restore.
//
// A scheduler's synchronization *objects* (mutexes, condition variables,
// barriers) and its cross-run telemetry live in the master's Go heap,
// while the authoritative lock words live in shared memory — which the
// machine image already captures. Exporting the heap half lets a phased
// program carry one scheduler across a checkpoint: the resumed process
// attaches a new Sched whose mutexes point at the same shared-memory
// words (the allocator is deterministic, so the addresses are already
// reserved in the restored RT), whose commit epoch, adaptive-quantum
// scale and statistics continue from the recorded values, and whose next
// Run therefore schedules exactly as the uninterrupted run's would.
//
// Export is only valid between Runs, at a quiescent point: every thread
// collected, every waiter queue empty. Mid-round scheduler state cannot
// be serialized (thread quanta are live goroutines) — the same
// restriction the kernel's checkpoint enforces for spaces.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/vm"
)

// State is the serializable scheduler bookkeeping.
type State struct {
	Quantum     int64     `json:"quantum"`      // configured (base) quantum
	Scale       int64     `json:"scale"`        // adaptive-quantum multiplier
	CommitEpoch uint64    `json:"commit_epoch"` // shared-region commit epoch
	Stats       Stats     `json:"stats"`
	Mutexes     []vm.Addr `json:"mutexes"`  // shared-memory words, by Mutex index
	Conds       int       `json:"conds"`    // condition variable count
	Barriers    []int     `json:"barriers"` // participant count per barrier
}

// BusyError reports an ExportState attempted while the scheduler was not
// quiescent: threads still live or waiters queued on a sync object.
type BusyError struct{ Msg string }

func (e *BusyError) Error() string { return "dsched: export: " + e.Msg }

// BadConfigError reports an invalid scheduler configuration or state.
type BadConfigError struct {
	Field string
	Msg   string
}

func (e *BadConfigError) Error() string { return fmt.Sprintf("dsched: %s: %s", e.Field, e.Msg) }

// Validate checks a Config for values that would otherwise be silently
// replaced by defaults. Zero values remain valid (they select the
// documented defaults); negatives are programming errors.
func (c Config) Validate() error {
	if c.Quantum < 0 {
		return &BadConfigError{Field: "Quantum", Msg: fmt.Sprintf("negative quantum %d", c.Quantum)}
	}
	if c.CollectWorkers < 0 {
		return &BadConfigError{Field: "CollectWorkers", Msg: fmt.Sprintf("negative worker count %d", c.CollectWorkers)}
	}
	return nil
}

// NewChecked is New with configuration validation: the Session-era
// constructor. New keeps the historical silently-defaulting behavior for
// compatibility.
func NewChecked(rt *core.RT, cfg Config) (*Sched, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return New(rt, cfg), nil
}

// ExportState captures the scheduler's bookkeeping at a quiescent point.
func (s *Sched) ExportState() (State, error) {
	for _, t := range s.threads {
		if t != nil && !t.done {
			return State{}, &BusyError{Msg: fmt.Sprintf("thread %d still live", t.id)}
		}
	}
	for i, m := range s.mutexes {
		if len(m.waiters) > 0 {
			return State{}, &BusyError{Msg: fmt.Sprintf("mutex %d has queued waiters", i)}
		}
	}
	for i, cv := range s.conds {
		if len(cv.waiters) > 0 {
			return State{}, &BusyError{Msg: fmt.Sprintf("cond %d has queued waiters", i)}
		}
	}
	for i, b := range s.barriers {
		if len(b.waiting) > 0 {
			return State{}, &BusyError{Msg: fmt.Sprintf("barrier %d has waiting threads", i)}
		}
	}
	st := State{
		Quantum:     s.quantum,
		Scale:       s.scale,
		CommitEpoch: s.commitEpoch,
		Stats:       s.stats,
		Conds:       len(s.conds),
	}
	for _, m := range s.mutexes {
		st.Mutexes = append(st.Mutexes, m.addr)
	}
	for _, b := range s.barriers {
		st.Barriers = append(st.Barriers, b.need)
	}
	return st, nil
}

// AttachState rebuilds a scheduler from exported state over a restored
// runtime. The mutex words named in the state must lie inside rt's
// shared region (they do when rt was restored from the matching
// checkpoint); their contents — lock flags and owners — come from the
// restored memory image.
func AttachState(rt *core.RT, cfg Config, st State) (*Sched, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if st.Quantum <= 0 {
		return nil, &BadConfigError{Field: "State.Quantum", Msg: fmt.Sprintf("non-positive quantum %d", st.Quantum)}
	}
	if st.Scale < 1 || st.Scale > adaptiveMaxScale {
		return nil, &BadConfigError{Field: "State.Scale", Msg: fmt.Sprintf("scale %d outside [1,%d]", st.Scale, adaptiveMaxScale)}
	}
	base, size := rt.SharedRange()
	for i, a := range st.Mutexes {
		if uint64(a) < uint64(base) || uint64(a)+16 > uint64(base)+size {
			return nil, &BadConfigError{Field: "State.Mutexes",
				Msg: fmt.Sprintf("mutex %d word %#x outside shared region", i, a)}
		}
	}
	s := New(rt, cfg)
	s.quantum = st.Quantum
	s.scale = st.Scale
	s.commitEpoch = st.CommitEpoch
	s.stats = st.Stats
	for _, a := range st.Mutexes {
		s.mutexes = append(s.mutexes, &mutexState{addr: a})
	}
	for i := 0; i < st.Conds; i++ {
		s.conds = append(s.conds, &condState{mu: make(map[int]Mutex)})
	}
	for _, need := range st.Barriers {
		s.barriers = append(s.barriers, &barrierState{need: need})
	}
	return s, nil
}
