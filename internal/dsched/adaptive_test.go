package dsched

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/vm"
)

// The adaptive-quantum policy (telemetry-driven, replacing the fixed
// one-runnable boost): for race-free programs the policy may move the
// schedule — round counts, quanta, virtual times — but never the result
// bits; and whatever schedule it picks must be exactly repeatable.

// adaptiveWorkload is a race-free composite: a mutex-protected counter
// and slot log, a read-mostly scan phase, and a barrier — phases that
// exercise all three policy branches (single-runnable, contended
// read-mostly, commit-heavy).
func runAdaptiveWorkload(t *testing.T, adaptive bool) (uint64, Stats, int64, []RoundStats) {
	t.Helper()
	const n, iters = 4, 5
	var stats Stats
	var perRound []RoundStats
	res := core.Run(core.Options{
		Kernel: kernel.Config{CPUsPerNode: n},
	}, func(rt *core.RT) uint64 {
		s := New(rt, Config{
			Quantum:         700,
			AdaptiveQuantum: adaptive,
			OnRound:         func(rs RoundStats) { perRound = append(perRound, rs) },
		})
		mu := s.NewMutex()
		counter := rt.Alloc(8, 8)
		seq := rt.Alloc(8, 8)
		slots := rt.AllocPages(1)
		b := s.NewBarrier(n)
		if err := s.Run(n, func(th *Thread) {
			env := th.Env()
			for i := 0; i < iters; i++ {
				th.Lock(mu)
				v := env.ReadU64(counter)
				env.Tick(1500) // critical section spans quanta: single-runnable rounds
				env.WriteU64(counter, v+1)
				pos := env.ReadU64(seq)
				env.WriteU64(seq, pos+1)
				if pos < 512 {
					env.WriteU64(slots+vm.Addr(8*pos), uint64(th.ID+1)*1000+uint64(i))
				}
				th.Unlock(mu)
			}
			th.BarrierWait(b)
			// Read-mostly contended phase: everyone scans, nobody writes.
			var sum uint64
			for rep := 0; rep < 6; rep++ {
				for j := 0; j < 512; j++ {
					sum += env.ReadU64(slots + vm.Addr(8*j))
				}
				env.Tick(400)
			}
			th.Lock(mu)
			env.WriteU64(counter, env.ReadU64(counter)+sum%89)
			th.Unlock(mu)
		}); err != nil {
			panic(err)
		}
		stats = s.Stats()
		env := rt.Env()
		sig := env.ReadU64(counter)
		for j := 0; j < 512; j++ {
			sig = sig*1099511628211 + env.ReadU64(slots+vm.Addr(8*j))
		}
		return sig
	})
	if res.Status != kernel.StatusHalted {
		t.Fatalf("adaptive=%v: %v %v", adaptive, res.Status, res.Err)
	}
	return res.Ret, stats, res.VT, perRound
}

func TestAdaptivePolicyPreservesResultBits(t *testing.T) {
	fixedSig, fixedStats, fixedVT, _ := runAdaptiveWorkload(t, false)
	adaptSig, adaptStats, adaptVT, adaptRounds := runAdaptiveWorkload(t, true)

	if adaptSig != fixedSig {
		t.Errorf("adaptive policy changed result bits: %#x vs %#x", adaptSig, fixedSig)
	}
	if adaptStats.Rounds >= fixedStats.Rounds {
		t.Errorf("adaptive policy did not reduce rounds: %d vs %d",
			adaptStats.Rounds, fixedStats.Rounds)
	}
	// The policy must actually vary the quantum with telemetry, not just
	// apply a constant boost: both boosted and baseline quanta appear.
	seen := map[int64]bool{}
	for _, rs := range adaptRounds {
		seen[rs.Quantum] = true
	}
	if len(seen) < 2 {
		t.Errorf("adaptive schedule used a single quantum %v: policy never adapted", seen)
	}
	if !seen[700] {
		t.Errorf("adaptive schedule never returned to the base quantum: %v", seen)
	}

	// Repeatability: the adaptive schedule is a deterministic function
	// of the program, bit for bit — VT and per-round telemetry included.
	sig2, stats2, vt2, rounds2 := runAdaptiveWorkload(t, true)
	if sig2 != adaptSig || stats2 != adaptStats || vt2 != adaptVT {
		t.Fatalf("adaptive schedule not repeatable: (%#x,%+v,%d) vs (%#x,%+v,%d)",
			sig2, stats2, vt2, adaptSig, adaptStats, adaptVT)
	}
	if len(rounds2) != len(adaptRounds) {
		t.Fatalf("round counts differ across reruns: %d vs %d", len(rounds2), len(adaptRounds))
	}
	for i := range rounds2 {
		if rounds2[i] != adaptRounds[i] {
			t.Fatalf("round %d telemetry differs across reruns: %+v vs %+v",
				i+1, rounds2[i], adaptRounds[i])
		}
	}
	_ = fixedVT
}
