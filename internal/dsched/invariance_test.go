package dsched

import (
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/vm"
)

// engineResult captures everything the round engine promises to keep
// invariant across its host-parallelism and skip knobs.
type engineResult struct {
	checksum uint64
	vt       int64
	rounds   int64
	quanta   int64
	merge    vm.MergeStats
	resynced int64 // Stats.TablesResynced
	skipped  int64 // Stats.TablesSkipped
	perRound []RoundStats
}

// runEngineWorkload executes a composite synchronization workload — a
// mutex-protected counter, deliberately racy (LWW) writes, a condvar
// handshake and a barrier — under the given scheduler and kernel merge
// configuration, and returns the invariants.
func runEngineWorkload(t *testing.T, cfg Config, mergeWorkers int, byteKernel bool) engineResult {
	t.Helper()
	const n, iters = 4, 6
	var out engineResult
	cfg.Quantum = 900
	cfg.OnRound = func(rs RoundStats) { out.perRound = append(out.perRound, rs) }
	res := core.Run(core.Options{
		Kernel: kernel.Config{CPUsPerNode: n, MergeWorkers: mergeWorkers,
			MergeByteKernel: byteKernel},
	}, func(rt *core.RT) uint64 {
		s := New(rt, cfg)
		mu := s.NewMutex()
		counter := rt.Alloc(8, 8)
		racy := rt.Alloc(8, 8)
		seq := rt.Alloc(8, 8)
		slots := rt.AllocPages(1)
		b := s.NewBarrier(n)
		if err := s.Run(n, func(th *Thread) {
			env := th.Env()
			for i := 0; i < iters; i++ {
				th.Lock(mu)
				v := env.ReadU64(counter)
				env.Tick(25)
				env.WriteU64(counter, v+1)
				pos := env.ReadU64(seq)
				env.WriteU64(seq, pos+1)
				if pos < 512 {
					env.WriteU64(slots+vm.Addr(8*pos), uint64(th.ID+1))
				}
				th.Unlock(mu)
				env.WriteU64(racy, uint64(th.ID)*1_000_003+uint64(i)) // racy on purpose
				env.Tick(int64(60 * (th.ID + 1)))
			}
			th.BarrierWait(b)
			// Post-barrier read-mostly phase: scan the slot table for
			// several quanta without writing, then record one result.
			var sum uint64
			for rep := 0; rep < 4; rep++ {
				for j := 0; j < 512; j++ {
					sum += env.ReadU64(slots + vm.Addr(8*j))
				}
				env.Tick(300)
			}
			th.Lock(mu)
			env.WriteU64(counter, env.ReadU64(counter)+sum%97)
			th.Unlock(mu)
		}); err != nil {
			panic(err)
		}
		env := rt.Env()
		sig := env.ReadU64(counter)*31 + env.ReadU64(racy)
		for j := 0; j < 512; j++ {
			sig = sig*1099511628211 + env.ReadU64(slots+vm.Addr(8*j))
		}
		out.rounds = s.Rounds()
		st := s.Stats()
		out.quanta = st.ThreadQuanta
		out.merge = st.Merge
		out.resynced = st.TablesResynced
		out.skipped = st.TablesSkipped
		return sig
	})
	if res.Status != kernel.StatusHalted {
		t.Fatalf("%v: %v", res.Status, res.Err)
	}
	out.checksum = res.Ret
	out.vt = res.VT
	return out
}

// TestRoundEngineInvariance is the PR's acceptance gate: checksums,
// conflict behavior (the LWW merges must never raise one), round counts,
// merge statistics and virtual times are identical for CollectWorkers in
// {1, 2, GOMAXPROCS}, for MergeWorkers 1 vs parallel, with epoch-skipped
// resynchronization on and off, at both epoch granularities, and under
// both merge kernels.
func TestRoundEngineInvariance(t *testing.T) {
	base := runEngineWorkload(t, Config{}, 1, false)
	if base.rounds < 8 {
		t.Fatalf("workload too small to exercise the engine: %d rounds", base.rounds)
	}
	type variant struct {
		name         string
		cfg          Config
		mergeWorkers int
		byteKernel   bool
	}
	variants := []variant{
		{"collect2", Config{CollectWorkers: 2}, 1, false},
		{"collectMax", Config{CollectWorkers: runtime.GOMAXPROCS(0)}, 1, false},
		{"mergeParallel", Config{}, runtime.GOMAXPROCS(0), false},
		{"noSkip", Config{DisableEpochSkip: true}, 1, false},
		{"noSkipCollect2", Config{DisableEpochSkip: true, CollectWorkers: 2}, 2, false},
		{"epochRegion", Config{Granularity: EpochRegion}, 1, false},
		{"epochRegionNoSkip", Config{Granularity: EpochRegion, DisableEpochSkip: true}, 1, false},
		{"byteKernel", Config{}, 1, true},
		{"byteKernelParallel", Config{}, runtime.GOMAXPROCS(0), true},
		{"byteKernelRegion", Config{Granularity: EpochRegion}, 1, true},
	}
	for _, v := range variants {
		got := runEngineWorkload(t, v.cfg, v.mergeWorkers, v.byteKernel)
		if got.checksum != base.checksum {
			t.Errorf("%s: checksum %#x != base %#x", v.name, got.checksum, base.checksum)
		}
		if got.vt != base.vt {
			t.Errorf("%s: virtual time %d != base %d", v.name, got.vt, base.vt)
		}
		if got.rounds != base.rounds || got.quanta != base.quanta {
			t.Errorf("%s: rounds/quanta %d/%d != base %d/%d",
				v.name, got.rounds, got.quanta, base.rounds, base.quanta)
		}
		if got.merge != base.merge {
			t.Errorf("%s: merge stats %+v != base %+v", v.name, got.merge, base.merge)
		}
		if len(got.perRound) != len(base.perRound) {
			t.Errorf("%s: %d per-round records != base %d",
				v.name, len(got.perRound), len(base.perRound))
			continue
		}
		for i := range got.perRound {
			g, b := got.perRound[i], base.perRound[i]
			// SyncSkipped and the resync-table counts legitimately differ
			// across skip and epoch-granularity settings (that telemetry
			// measures exactly what those knobs change); everything else
			// must match round for round.
			g.SyncSkipped, b.SyncSkipped = 0, 0
			g.TablesResynced, b.TablesResynced = 0, 0
			g.TablesSkipped, b.TablesSkipped = 0, 0
			if g != b {
				t.Errorf("%s: round %d stats %+v != base %+v", v.name, i+1,
					got.perRound[i], base.perRound[i])
				break
			}
		}
	}
}

// TestEpochSkipFiresOnReadMostlyPhases proves the skip is real: the
// workload's post-barrier scan phase runs quanta that write nothing, and
// the engine must resume those threads without resynchronization.
func TestEpochSkipFiresOnReadMostlyPhases(t *testing.T) {
	got := runEngineWorkload(t, Config{}, 1, false)
	if got.perRound[len(got.perRound)-1].VT == 0 {
		t.Fatal("round telemetry missing VT")
	}
	var skipped int64
	for _, rs := range got.perRound {
		skipped += int64(rs.SyncSkipped)
	}
	if skipped == 0 {
		t.Fatal("no quantum was resumed via epoch skip on a read-mostly workload")
	}
	off := runEngineWorkload(t, Config{DisableEpochSkip: true}, 1, false)
	var offSkipped int64
	for _, rs := range off.perRound {
		offSkipped += int64(rs.SyncSkipped)
	}
	if offSkipped != 0 {
		t.Fatalf("DisableEpochSkip still skipped %d resyncs", offSkipped)
	}
}

// TestFullResyncBaselineMatchesResults: the pre-engine loop (from-scratch
// snapshots, no skipping) must produce the same checksum and the same
// schedule (round count); only its cost differs.
func TestFullResyncBaselineMatchesResults(t *testing.T) {
	base := runEngineWorkload(t, Config{}, 1, false)
	legacy := runEngineWorkload(t, Config{FullResync: true}, 1, false)
	if legacy.checksum != base.checksum {
		t.Errorf("legacy checksum %#x != engine %#x", legacy.checksum, base.checksum)
	}
	if legacy.rounds != base.rounds || legacy.quanta != base.quanta {
		t.Errorf("legacy rounds/quanta %d/%d != engine %d/%d",
			legacy.rounds, legacy.quanta, base.rounds, base.quanta)
	}
	if legacy.vt < base.vt {
		t.Errorf("legacy VT %d below engine VT %d: incremental resync must not cost more",
			legacy.vt, base.vt)
	}
}

// TestTableEpochsResyncFewerTables pins the tentpole win: per-table
// epochs must re-copy strictly fewer shared-region tables than the
// whole-region baseline on this workload (its read-mostly phase and its
// localized mutex/counter writes leave most tables untouched per commit),
// with every result invariant — checksum, VT, rounds, merge stats —
// bit-identical, and the two telemetries accounting for the same total
// table population.
func TestTableEpochsResyncFewerTables(t *testing.T) {
	table := runEngineWorkload(t, Config{}, 1, false)
	region := runEngineWorkload(t, Config{Granularity: EpochRegion}, 1, false)
	if table.checksum != region.checksum || table.vt != region.vt ||
		table.rounds != region.rounds || table.merge != region.merge {
		t.Fatalf("granularity changed results: table %+v vs region %+v", table, region)
	}
	if table.resynced >= region.resynced {
		t.Errorf("per-table epochs resynced %d tables, not below region granularity's %d",
			table.resynced, region.resynced)
	}
	if table.skipped <= region.skipped {
		t.Errorf("per-table epochs skipped %d tables, not above region granularity's %d",
			table.skipped, region.skipped)
	}
	if table.resynced+table.skipped != region.resynced+region.skipped {
		t.Errorf("table accounting differs: %d+%d vs %d+%d",
			table.resynced, table.skipped, region.resynced, region.skipped)
	}
}

// TestAdaptiveQuantumReducesRounds: with one runnable thread and the rest
// blocked behind a mutex, boosting the quantum must cut round count while
// the mutex-protected result stays exact.
func TestAdaptiveQuantumReducesRounds(t *testing.T) {
	run := func(adaptive bool) (uint64, int64) {
		const n, k = 4, 8
		var rounds int64
		res := core.Run(core.Options{Kernel: kernel.Config{CPUsPerNode: n}}, func(rt *core.RT) uint64 {
			s := New(rt, Config{Quantum: 400, AdaptiveQuantum: adaptive})
			mu := s.NewMutex()
			counter := rt.Alloc(8, 8)
			if err := s.Run(n, func(th *Thread) {
				for i := 0; i < k; i++ {
					th.Lock(mu)
					v := th.Env().ReadU64(counter)
					th.Env().Tick(900) // long critical section spanning quanta
					th.Env().WriteU64(counter, v+1)
					th.Unlock(mu)
				}
			}); err != nil {
				panic(err)
			}
			rounds = s.Rounds()
			return rt.Env().ReadU64(counter)
		})
		if res.Status != kernel.StatusHalted {
			t.Fatalf("adaptive=%v: %v %v", adaptive, res.Status, res.Err)
		}
		return res.Ret, rounds
	}
	fixedVal, fixedRounds := run(false)
	adaptVal, adaptRounds := run(true)
	if fixedVal != 4*8 || adaptVal != 4*8 {
		t.Fatalf("counter lost updates: fixed %d, adaptive %d", fixedVal, adaptVal)
	}
	if adaptRounds >= fixedRounds {
		t.Errorf("adaptive quantum did not reduce rounds: %d vs %d", adaptRounds, fixedRounds)
	}
	// Determinism of the adaptive policy itself.
	againVal, againRounds := run(true)
	if againVal != adaptVal || againRounds != adaptRounds {
		t.Errorf("adaptive schedule not repeatable: %d/%d vs %d/%d",
			againVal, againRounds, adaptVal, adaptRounds)
	}
}
