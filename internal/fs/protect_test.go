package fs

import (
	"errors"
	"testing"

	"repro/internal/kernel"
	"repro/internal/vm"
)

// TestProtectStopsWildWrites exercises the §4.2 hardening: with
// protection on, a stray memory write into the file system region faults
// instead of corrupting the image, while the file API keeps working.
func TestProtectStopsWildWrites(t *testing.T) {
	m := kernel.New(kernel.Config{})
	res := m.Run(func(env *kernel.Env) {
		env.SetPerm(testBase, testSize, vm.PermRW)
		f := Format(env, testBase, testSize)
		if err := f.Create("precious"); err != nil {
			panic(err)
		}
		if err := f.WriteAt("precious", 0, []byte("data")); err != nil {
			panic(err)
		}
		f.SetProtect(true)

		// The file API still works (each op unlocks around itself)...
		if err := f.WriteAt("precious", 0, []byte("DATA")); err != nil {
			panic(err)
		}
		got, err := f.ReadFile("precious")
		if err != nil || string(got) != "DATA" {
			panic("protected fs not usable through the API")
		}

		// ...but a wild write must fault. Run it in a child space so the
		// fault is observable as a trap status.
		if err := env.Put(1, kernel.PutOpts{
			Regs: &kernel.Regs{Entry: func(c *kernel.Env) {
				// Inherit the parent's memory (including protection bits),
				// then scribble over the superblock.
				c.WriteU32(testBase, 0xDEAD)
			}},
			CopyAll: true,
			Start:   true,
		}); err != nil {
			panic(err)
		}
		info, err := env.Get(1, kernel.GetOpts{})
		if err != nil {
			panic(err)
		}
		if info.Status != kernel.StatusFault {
			panic("wild write into protected fs did not fault: " + info.Status.String())
		}
		var ae *vm.AccessError
		if !errors.As(info.Err, &ae) || !ae.Write {
			panic("fault cause wrong")
		}

		// Protection off restores direct writability.
		f.SetProtect(false)
		env.WriteU32(testBase+vm.PageSize*2, 1) // somewhere harmless in the image
	}, 0)
	if res.Status != kernel.StatusHalted {
		t.Fatalf("%v: %v", res.Status, res.Err)
	}
}

// TestProtectSurvivesReconcile checks reconciliation under protection.
func TestProtectSurvivesReconcile(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.Create("x"); err != nil {
			panic(err)
		}
		child := forkImage(t, env, f)
		f.SetProtect(true)
		if err := child.WriteFile("x", []byte("child")); err != nil {
			panic(err)
		}
		conflicts, err := f.ReconcileFrom(child)
		if err != nil || len(conflicts) != 0 {
			panic("reconcile under protection failed")
		}
		got, err := f.ReadFile("x")
		if err != nil || string(got) != "child" {
			panic("reconcile result wrong under protection")
		}
	})
}
