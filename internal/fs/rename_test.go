package fs

import (
	"errors"
	"sort"
	"testing"

	"repro/internal/kernel"
)

// Transitive rename: moving a non-empty directory decomposes per entry
// (tombstone old path, fresh entry at the new one), parents before
// children, so it propagates through reconciliation with no extra
// protocol.

func namesOf(f *FS) []string {
	var out []string
	for _, in := range f.List() {
		out = append(out, in.Name)
	}
	sort.Strings(out)
	return out
}

func TestRenameNonEmptyDirectory(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		mustNoErr := func(err error) {
			t.Helper()
			if err != nil {
				t.Fatal(err)
			}
		}
		mustNoErr(f.Mkdir("src"))
		mustNoErr(f.Mkdir("src/lib"))
		mustNoErr(f.WriteFile("src/main.go", []byte("package main")))
		mustNoErr(f.WriteFile("src/lib/a.go", []byte("package a")))
		mustNoErr(f.WriteFile("src/lib/b.go", []byte("package b")))

		if err := f.Rename("src", "pkg"); err != nil {
			t.Fatalf("rename non-empty dir: %v", err)
		}
		want := []string{"pkg", "pkg/lib", "pkg/lib/a.go", "pkg/lib/b.go", "pkg/main.go"}
		if got := namesOf(f); len(got) != len(want) {
			t.Fatalf("post-rename listing %v, want %v", got, want)
		} else {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("post-rename listing %v, want %v", got, want)
				}
			}
		}
		for path, body := range map[string]string{
			"pkg/main.go":  "package main",
			"pkg/lib/a.go": "package a",
			"pkg/lib/b.go": "package b",
		} {
			got, err := f.ReadFile(path)
			if err != nil || string(got) != body {
				t.Fatalf("read %s = %q, %v", path, got, err)
			}
		}
		if _, err := f.Stat("src"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("old root still visible: %v", err)
		}
		if _, err := f.ReadFile("src/lib/a.go"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("old nested path still visible: %v", err)
		}
	})
}

func TestRenameDirIntoOwnSubtreeRejected(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.Mkdir("a"); err != nil {
			t.Fatal(err)
		}
		if err := f.Mkdir("a/b"); err != nil {
			t.Fatal(err)
		}
		if err := f.WriteFile("a/f", []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := f.Rename("a", "a/b/c"); !errors.Is(err, ErrBadName) {
			t.Fatalf("rename into own subtree: %v, want ErrBadName", err)
		}
		if err := f.Rename("a", "a"); !errors.Is(err, ErrExists) {
			t.Fatalf("rename onto itself: %v, want ErrExists", err)
		}
	})
}

func TestRenameDirOntoLiveEntryRejected(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		for _, err := range []error{
			f.Mkdir("a"), f.WriteFile("a/f", []byte("x")), f.WriteFile("taken", []byte("y")),
		} {
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := f.Rename("a", "taken"); !errors.Is(err, ErrExists) {
			t.Fatalf("rename onto live file: %v, want ErrExists", err)
		}
		// The failed rename mutated nothing.
		if _, err := f.ReadFile("a/f"); err != nil {
			t.Fatalf("source damaged by failed rename: %v", err)
		}
	})
}

// A child replica renames a populated directory; the parent adopts the
// move through ordinary per-entry reconciliation.
func TestRenameDirPropagatesThroughReconcile(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		for _, err := range []error{
			f.Mkdir("data"), f.WriteFile("data/one", []byte("1")),
			f.Mkdir("data/sub"), f.WriteFile("data/sub/two", []byte("22")),
		} {
			if err != nil {
				t.Fatal(err)
			}
		}
		child := forkImage(t, env, f)
		if err := child.Rename("data", "archive"); err != nil {
			t.Fatalf("child rename: %v", err)
		}
		conflicts, err := f.ReconcileFrom(child)
		if err != nil {
			t.Fatalf("reconcile: %v", err)
		}
		if len(conflicts) != 0 {
			t.Fatalf("unexpected conflicts: %v", conflicts)
		}
		for path, body := range map[string]string{
			"archive/one": "1", "archive/sub/two": "22",
		} {
			got, err := f.ReadFile(path)
			if err != nil || string(got) != body {
				t.Fatalf("parent %s = %q, %v", path, got, err)
			}
		}
		if _, err := f.Stat("data"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("parent still sees old dir: %v", err)
		}
		if _, err := f.ReadFile("data/sub/two"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("parent still sees old nested file: %v", err)
		}
	})
}

// A concurrent parent-side edit under the old path surfaces as the
// ordinary modify/delete conflict — rename adds no new semantics.
func TestRenameDirReconcileConflictOnConcurrentEdit(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		for _, err := range []error{
			f.Mkdir("d"), f.WriteFile("d/f", []byte("base")),
		} {
			if err != nil {
				t.Fatal(err)
			}
		}
		child := forkImage(t, env, f)
		if err := child.Rename("d", "e"); err != nil {
			t.Fatalf("child rename: %v", err)
		}
		// Parent edits the file at its old path after the fork.
		if err := f.WriteFile("d/f", []byte("edited")); err != nil {
			t.Fatal(err)
		}
		conflicts, err := f.ReconcileFrom(child)
		if err != nil {
			t.Fatalf("reconcile: %v", err)
		}
		found := false
		for _, c := range conflicts {
			if c.Name == "d/f" {
				found = true
			}
		}
		if !found {
			t.Fatalf("expected modify/delete conflict at d/f, got %v", conflicts)
		}
		// The moved copy still arrived at the new path with fork-time bytes.
		got, err := f.ReadFile("e/f")
		if err != nil || string(got) != "base" {
			t.Fatalf("e/f = %q, %v", got, err)
		}
	})
}

// Renames of sibling subtrees from two replicas compose: each is just
// per-entry tombstones and creations.
func TestRenameTwoReplicasDisjointDirs(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		for _, err := range []error{
			f.Mkdir("a"), f.WriteFile("a/x", []byte("ax")),
			f.Mkdir("b"), f.WriteFile("b/y", []byte("by")),
		} {
			if err != nil {
				t.Fatal(err)
			}
		}
		childA := forkImage(t, env, f)
		childB := forkImage(t, env, f)
		if err := childA.Rename("a", "a2"); err != nil {
			t.Fatal(err)
		}
		if err := childB.Rename("b", "b2"); err != nil {
			t.Fatal(err)
		}
		if _, err := f.ReconcileFrom(childA); err != nil {
			t.Fatal(err)
		}
		childB.StampFork()
		if _, err := f.ReconcileFrom(childB); err != nil {
			t.Fatal(err)
		}
		for path, body := range map[string]string{"a2/x": "ax", "b2/y": "by"} {
			got, err := f.ReadFile(path)
			if err != nil || string(got) != body {
				t.Fatalf("%s = %q, %v", path, got, err)
			}
		}
		for _, gone := range []string{"a", "b", "a/x", "b/y"} {
			if _, err := f.Stat(gone); !errors.Is(err, ErrNotFound) {
				t.Fatalf("%s still visible: %v", gone, err)
			}
		}
	})
}

func TestRenameEmptyDirStillWorks(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.Mkdir("empty"); err != nil {
			t.Fatal(err)
		}
		if err := f.Rename("empty", "renamed"); err != nil {
			t.Fatalf("empty dir rename: %v", err)
		}
		info, err := f.Stat("renamed")
		if err != nil || !info.Dir {
			t.Fatalf("stat renamed: %+v, %v", info, err)
		}
	})
}
