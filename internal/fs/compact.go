package fs

// Compact rewrites the image's extent area into its canonical layout:
// every live file's data is re-placed in inode order at the lowest
// offsets the region chain allows, every extent capacity is reset to the
// canonical capacity for the file's current size, and all other data
// bytes are zeroed. Because the layout afterwards is a pure function of
// the inode table's contents, every replica that performed the same
// operation history computes a bit-identical image — which is what lets
// the benchmarks assert whole-image checksums across configurations.
//
// Compact is meant for synchronization points: after a replica has
// reconciled (or stamped) and no forked child is still working against
// the old layout. It moves no logical state — versions, sizes and bytes
// are untouched — so running it between a fork and the matching
// reconcile is harmless for correctness, merely pointless.
//
// With ReclaimTombstones set it also frees tombstone slots (scrubbing
// their names). That is safe only when no outstanding child replica
// might still need the deletion propagated — the master of a fork round
// calls it after collecting every child, never between forks.
func (f *FS) Compact(o CompactOptions) (CompactStats, error) {
	defer f.unlock()()
	var st CompactStats
	for _, e := range f.readFreeList() {
		st.FreeBytesBefore += int64(e.length)
	}

	// Gather every live file's extent, in inode order, into host
	// memory. The image is bounded by the address space, so this is the
	// simple, obviously-overlap-free way to relocate extents.
	type item struct {
		ino       int
		oldOff    uint32
		size, cap uint32
		data      []byte
	}
	var items []item
	var caps []uint32
	for ino := 1; ino < NumInodes; ino++ {
		fl := f.iGet(ino, iFlags)
		if fl&flagExists == 0 || fl&flagDir != 0 {
			continue
		}
		size := f.iGet(ino, iSize)
		it := item{ino: ino, oldOff: f.iGet(ino, iExtOff), size: size, cap: f.canonicalCap(size)}
		if size > 0 {
			it.data = make([]byte, size)
			f.gbytes(it.oldOff, it.data)
		}
		items = append(items, it)
		caps = append(caps, it.cap)
	}

	// Lay the extents out before mutating anything: placement is pure
	// arithmetic over the (unchanged) region chain, and canonical
	// capacities never exceed the extents' old ones, so failure here
	// means a corrupt image — guard rather than destroy.
	regs := f.regions()
	offs, gaps, cursor, ok := placeSeq(regs, caps)
	if !ok {
		return st, ErrNoSpace
	}

	if o.ReclaimTombstones {
		for ino := 1; ino < NumInodes; ino++ {
			if f.iGet(ino, iFlags)&flagTomb != 0 {
				f.freeSlot(ino) // tombstones hold no extent by invariant
				st.Tombs++
			}
		}
	}

	// Zero every region's data area, then write the live data back at
	// its canonical offsets. Zero-first makes freed space, extent tails
	// and region remainders all read as zeros — the canonical image.
	zero := make([]byte, 64<<10)
	for i, r := range regs {
		end := r.off + r.length
		for off := regionDataStart(i, r); off < end; {
			n := uint32(len(zero))
			if off+n > end {
				n = end - off
			}
			f.pbytes(off, zero[:n])
			off += n
		}
	}
	for k, it := range items {
		if it.size > 0 {
			f.pbytes(offs[k], it.data)
		}
		if offs[k] != it.oldOff || it.cap != f.iGet(it.ino, iExtCap) {
			st.Moved++
			st.MovedBytes += int64(it.size)
		}
		f.iPut(it.ino, iExtOff, offs[k])
		f.iPut(it.ino, iExtCap, it.cap)
		st.Live++
	}

	f.writeFreeList(gaps)
	f.pu32(sbCursor, cursor)
	f.pu32(sbCompacts, f.gu32(sbCompacts)+1)
	for _, e := range gaps {
		st.FreeBytesAfter += int64(e.length)
	}
	return st, nil
}

// CompactOptions configures a Compact pass.
type CompactOptions struct {
	// ReclaimTombstones frees deletion-record slots too. Only safe at a
	// quiescent sync point: a child replica forked before the deletion
	// would otherwise lose the propagation record.
	ReclaimTombstones bool
}

// CompactStats reports what a Compact pass did.
type CompactStats struct {
	Live            int   // live extents laid out
	Moved           int   // extents whose offset or capacity changed
	MovedBytes      int64 // bytes rewritten because of moves
	Tombs           int   // tombstone slots reclaimed
	FreeBytesBefore int64 // free-list bytes before the pass
	FreeBytesAfter  int64 // free-list bytes after (region remainders only)
}

// placeSeq computes the canonical layout: each capacity in order is
// placed best-fit into a gap left by an earlier region remainder, else
// bump-allocated; a region tail too small for the next extent becomes a
// gap. It mirrors allocExtent's rules minus growth, so the canonical
// layout is reachable by the ordinary allocator too.
func placeSeq(regs []extent, caps []uint32) (offs []uint32, gaps []extent, cursor uint32, ok bool) {
	region := 0
	cursor = regionDataStart(0, regs[0])
	offs = make([]uint32, len(caps))
	for k, c := range caps {
		if c == 0 {
			continue
		}
		best := -1
		for i, g := range gaps {
			if g.length >= c && (best < 0 || g.length < gaps[best].length) {
				best = i
			}
		}
		if best >= 0 {
			offs[k] = gaps[best].off
			if gaps[best].length == c {
				gaps = append(gaps[:best], gaps[best+1:]...)
			} else {
				gaps[best].off += c
				gaps[best].length -= c
			}
			continue
		}
		for {
			end := regs[region].off + regs[region].length
			if uint64(cursor)+uint64(c) <= uint64(end) {
				break
			}
			if region+1 >= len(regs) {
				return nil, nil, 0, false
			}
			if end > cursor {
				gaps = append(gaps, extent{cursor, end - cursor})
			}
			region++
			cursor = regionDataStart(region, regs[region])
		}
		offs[k] = cursor
		cursor += c
	}
	return offs, gaps, cursor, true
}
