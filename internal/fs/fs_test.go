package fs

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/kernel"
	"repro/internal/vm"
)

const (
	testBase vm.Addr = 0x0100_0000
	testSize uint64  = 4 << 20
	scratch  vm.Addr = 0x0200_0000
)

// withFS runs fn in a root space with a freshly formatted image.
func withFS(t *testing.T, fn func(env *kernel.Env, f *FS)) {
	t.Helper()
	m := kernel.New(kernel.Config{})
	res := m.Run(func(env *kernel.Env) {
		env.SetPerm(testBase, testSize, vm.PermRW)
		f := Format(env, testBase, testSize)
		fn(env, f)
	}, 0)
	if res.Status != kernel.StatusHalted {
		t.Fatalf("fs program stopped with %v: %v", res.Status, res.Err)
	}
}

// forkImage simulates fork for the FS image inside a single space: copy
// the image to a scratch address and stamp it, returning the child handle.
func forkImage(t *testing.T, env *kernel.Env, f *FS) *FS {
	env.SetPerm(scratch, testSize, vm.PermRW)
	buf := make([]byte, testSize)
	env.Read(testBase, buf)
	env.Write(scratch, buf)
	child, err := Attach(env, scratch, testSize)
	if err != nil {
		t.Errorf("attach child: %v", err)
		panic(err)
	}
	child.StampFork()
	return child
}

func TestCreateWriteRead(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.Create("hello.txt"); err != nil {
			panic(err)
		}
		if err := f.WriteAt("hello.txt", 0, []byte("hello world")); err != nil {
			panic(err)
		}
		got, err := f.ReadFile("hello.txt")
		if err != nil {
			panic(err)
		}
		if string(got) != "hello world" {
			panic("content mismatch: " + string(got))
		}
		info, err := f.Stat("hello.txt")
		if err != nil || info.Size != 11 {
			panic("stat mismatch")
		}
	})
}

func TestCreateDuplicateFails(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.Create("a"); err != nil {
			panic(err)
		}
		if err := f.Create("a"); !errors.Is(err, ErrExists) {
			panic("duplicate create allowed")
		}
	})
}

func TestBadNamesRejected(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.Create(""); !errors.Is(err, ErrBadName) {
			panic("empty name accepted")
		}
		long := make([]byte, MaxNameLen)
		for i := range long {
			long[i] = 'x'
		}
		if err := f.Create(string(long)); !errors.Is(err, ErrBadName) {
			panic("overlong name accepted")
		}
	})
}

func TestUnlinkAndRecreate(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.Create("f"); err != nil {
			panic(err)
		}
		if err := f.WriteAt("f", 0, []byte("data")); err != nil {
			panic(err)
		}
		if err := f.Unlink("f"); err != nil {
			panic(err)
		}
		if _, err := f.Stat("f"); !errors.Is(err, ErrNotFound) {
			panic("unlinked file still visible")
		}
		if err := f.Create("f"); err != nil {
			panic(err)
		}
		got, err := f.ReadFile("f")
		if err != nil || len(got) != 0 {
			panic("revived file not empty")
		}
	})
}

func TestGrowAcrossExtents(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.Create("big"); err != nil {
			panic(err)
		}
		var want []byte
		for i := 0; i < 20; i++ {
			chunk := bytes.Repeat([]byte{byte('a' + i)}, 1000)
			if err := f.Append("big", chunk); err != nil {
				panic(err)
			}
			want = append(want, chunk...)
		}
		got, err := f.ReadFile("big")
		if err != nil || !bytes.Equal(got, want) {
			panic("content lost across extent growth")
		}
	})
}

func TestTruncate(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.Create("t"); err != nil {
			panic(err)
		}
		if err := f.WriteAt("t", 0, []byte("abcdef")); err != nil {
			panic(err)
		}
		if err := f.Truncate("t", 3); err != nil {
			panic(err)
		}
		got, _ := f.ReadFile("t")
		if string(got) != "abc" {
			panic("shrink failed")
		}
		if err := f.Truncate("t", 6); err != nil {
			panic(err)
		}
		got, _ = f.ReadFile("t")
		if !bytes.Equal(got, []byte{'a', 'b', 'c', 0, 0, 0}) {
			panic("grow did not zero-fill")
		}
	})
}

func TestListSortedAndComplete(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		for _, n := range []string{"zeta", "alpha", "mid"} {
			if err := f.Create(n); err != nil {
				panic(err)
			}
		}
		l := f.List()
		if len(l) != 3 || l[0].Name != "alpha" || l[1].Name != "mid" || l[2].Name != "zeta" {
			panic("list not sorted or incomplete")
		}
	})
}

func TestInodeExhaustion(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		var err error
		for i := 0; i < NumInodes+1; i++ {
			err = f.Create(string(rune('A'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260)))
			if err != nil {
				break
			}
		}
		if !errors.Is(err, ErrNameTaken) {
			panic("inode exhaustion not detected")
		}
	})
}

// --- reconciliation ---------------------------------------------------------

func TestReconcileChildOnlyChange(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.Create("out.o"); err != nil {
			panic(err)
		}
		child := forkImage(t, env, f)
		if err := child.WriteFile("out.o", []byte("object code")); err != nil {
			panic(err)
		}
		conflicts, err := f.ReconcileFrom(child)
		if err != nil || len(conflicts) != 0 {
			panic("unexpected conflicts")
		}
		got, err := f.ReadFile("out.o")
		if err != nil || string(got) != "object code" {
			panic("child write did not propagate")
		}
	})
}

func TestReconcileChildCreatesFile(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		child := forkImage(t, env, f)
		if err := child.Create("new.txt"); err != nil {
			panic(err)
		}
		if err := child.WriteAt("new.txt", 0, []byte("fresh")); err != nil {
			panic(err)
		}
		if _, err := f.ReconcileFrom(child); err != nil {
			panic(err)
		}
		got, err := f.ReadFile("new.txt")
		if err != nil || string(got) != "fresh" {
			panic("created file did not propagate")
		}
	})
}

func TestReconcileChildDeletion(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.Create("tmp"); err != nil {
			panic(err)
		}
		child := forkImage(t, env, f)
		if err := child.Unlink("tmp"); err != nil {
			panic(err)
		}
		if _, err := f.ReconcileFrom(child); err != nil {
			panic(err)
		}
		if _, err := f.Stat("tmp"); !errors.Is(err, ErrNotFound) {
			panic("deletion did not propagate")
		}
	})
}

func TestReconcileParentOnlyChangeStands(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.Create("cfg"); err != nil {
			panic(err)
		}
		child := forkImage(t, env, f)
		if err := f.WriteFile("cfg", []byte("parent")); err != nil {
			panic(err)
		}
		conflicts, err := f.ReconcileFrom(child)
		if err != nil || len(conflicts) != 0 {
			panic("phantom conflict")
		}
		got, _ := f.ReadFile("cfg")
		if string(got) != "parent" {
			panic("parent change lost")
		}
	})
}

func TestReconcileConflictKeepsParentAndFlags(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.Create("shared"); err != nil {
			panic(err)
		}
		child := forkImage(t, env, f)
		if err := f.WriteFile("shared", []byte("parent ver")); err != nil {
			panic(err)
		}
		if err := child.WriteFile("shared", []byte("child ver")); err != nil {
			panic(err)
		}
		conflicts, err := f.ReconcileFrom(child)
		if err != nil {
			panic(err)
		}
		if len(conflicts) != 1 || conflicts[0].Name != "shared" {
			panic("conflict not reported")
		}
		// Subsequent opens fail (§4.2)...
		if _, err := f.ReadFile("shared"); !errors.Is(err, ErrConflict) {
			panic("conflicted file still readable")
		}
		// ...until the file is re-created, which resolves the conflict.
		if err := f.Create("shared"); err != nil {
			panic(err)
		}
		if _, err := f.ReadFile("shared"); err != nil {
			panic("recreate did not clear conflict")
		}
	})
}

func TestReconcileAppendOnlyMergesBothSides(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.CreateAppendOnly("log"); err != nil {
			panic(err)
		}
		if err := f.Append("log", []byte("base|")); err != nil {
			panic(err)
		}
		child := forkImage(t, env, f)
		if err := f.Append("log", []byte("parent|")); err != nil {
			panic(err)
		}
		if err := child.Append("log", []byte("child|")); err != nil {
			panic(err)
		}
		conflicts, err := f.ReconcileFrom(child)
		if err != nil || len(conflicts) != 0 {
			panic("append-only writes conflicted")
		}
		got, _ := f.ReadFile("log")
		if string(got) != "base|parent|child|" {
			panic("append merge wrong: " + string(got))
		}
	})
}

func TestReconcileTwoChildrenDisjointFiles(t *testing.T) {
	// The parallel-make scenario: every child compiles its own .o file.
	withFS(t, func(env *kernel.Env, f *FS) {
		childA := forkImage(t, env, f)
		// Second child image at a different scratch address.
		env.SetPerm(scratch+0x0100_0000, testSize, vm.PermRW)
		buf := make([]byte, testSize)
		env.Read(testBase, buf)
		env.Write(scratch+0x0100_0000, buf)
		childB, err := Attach(env, scratch+0x0100_0000, testSize)
		if err != nil {
			panic(err)
		}
		childB.StampFork()

		if err := childA.Create("a.o"); err != nil {
			panic(err)
		}
		if err := childA.WriteAt("a.o", 0, []byte("AAA")); err != nil {
			panic(err)
		}
		if err := childB.Create("b.o"); err != nil {
			panic(err)
		}
		if err := childB.WriteAt("b.o", 0, []byte("BBB")); err != nil {
			panic(err)
		}
		if _, err := f.ReconcileFrom(childA); err != nil {
			panic(err)
		}
		if _, err := f.ReconcileFrom(childB); err != nil {
			panic(err)
		}
		a, _ := f.ReadFile("a.o")
		b, _ := f.ReadFile("b.o")
		if string(a) != "AAA" || string(b) != "BBB" {
			panic("disjoint outputs did not both propagate")
		}
	})
}

func TestReconcileTwoChildrenSameFileConflict(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.Create("x.o"); err != nil {
			panic(err)
		}
		childA := forkImage(t, env, f)
		env.SetPerm(scratch+0x0100_0000, testSize, vm.PermRW)
		buf := make([]byte, testSize)
		env.Read(testBase, buf)
		env.Write(scratch+0x0100_0000, buf)
		childB, _ := Attach(env, scratch+0x0100_0000, testSize)
		childB.StampFork()

		if err := childA.WriteFile("x.o", []byte("A")); err != nil {
			panic(err)
		}
		if err := childB.WriteFile("x.o", []byte("B")); err != nil {
			panic(err)
		}
		c1, _ := f.ReconcileFrom(childA)
		c2, _ := f.ReconcileFrom(childB)
		if len(c1) != 0 {
			panic("first child should merge cleanly")
		}
		if len(c2) != 1 || c2[0].Name != "x.o" {
			panic("second child's divergent write not flagged")
		}
	})
}

func TestAttachRejectsUnformatted(t *testing.T) {
	m := kernel.New(kernel.Config{})
	res := m.Run(func(env *kernel.Env) {
		env.SetPerm(testBase, testSize, vm.PermRW)
		if _, err := Attach(env, testBase, testSize); err == nil {
			panic("attach to unformatted region succeeded")
		}
	}, 0)
	if res.Status != kernel.StatusHalted {
		t.Fatalf("%v: %v", res.Status, res.Err)
	}
}
