package fs

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/kernel"
	"repro/internal/vm"
)

// imageBytes snapshots the whole image so tests can assert that a
// rejected operation changed nothing at all — not just the file it
// named.
func imageBytes(env *kernel.Env) []byte {
	buf := make([]byte, testSize)
	env.Read(testBase, buf)
	return buf
}

// TestBadOffsetsRejectedAndHarmless is the PR's regression table: every
// operation that used to convert a caller-supplied offset with uint32()
// must now reject negative and image-exceeding offsets with ErrBadOffset
// and leave the image byte-identical. On the pre-fix code these calls
// wrapped — WriteAt(-4096) landed in the previous file's extent,
// ReadAt(-4096) leaked it, and the ensureCap doubling loop spun forever
// once the wrapped end crossed 2³¹.
func TestBadOffsetsRejectedAndHarmless(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		victim := bytes.Repeat([]byte{0xAB}, 256)
		if err := f.Create("victim"); err != nil {
			panic(err)
		}
		if err := f.WriteAt("victim", 0, victim); err != nil {
			panic(err)
		}
		if err := f.Create("target"); err != nil {
			panic(err)
		}
		if err := f.WriteAt("target", 0, []byte("safe")); err != nil {
			panic(err)
		}
		before := imageBytes(env)

		cases := []struct {
			name string
			op   func() error
		}{
			// victim's extent sits exactly one extent stride before
			// target's: the classic wrap target.
			{"writeat-neg-page", func() error { return f.WriteAt("target", -vm.PageSize, []byte("evil")) }},
			{"writeat-neg-1", func() error { return f.WriteAt("target", -1, []byte{1}) }},
			{"writeat-min-int", func() error { return f.WriteAt("target", math.MinInt, []byte{1}) }},
			{"writeat-past-image", func() error { return f.WriteAt("target", int(testSize), []byte{1}) }},
			{"writeat-end-overflow", func() error { return f.WriteAt("target", math.MaxInt, []byte{1}) }},
			{"truncate-neg", func() error { return f.Truncate("target", -1) }},
			{"truncate-min-int", func() error { return f.Truncate("target", math.MinInt) }},
			{"truncate-past-image", func() error { return f.Truncate("target", int(testSize)+1) }},
			{"readat-neg-1", func() error { _, err := f.ReadAt("target", -1, make([]byte, 8)); return err }},
			{"readat-neg-page", func() error {
				_, err := f.ReadAt("target", -vm.PageSize, make([]byte, 64))
				return err
			}},
		}
		for _, tc := range cases {
			if err := tc.op(); !errors.Is(err, ErrBadOffset) {
				t.Errorf("%s: err = %v, want ErrBadOffset", tc.name, err)
			}
			if !bytes.Equal(imageBytes(env), before) {
				t.Fatalf("%s: rejected operation modified the image", tc.name)
			}
		}

		// A wrapped ReadAt must not leak the victim's bytes either: the
		// pre-fix code returned 0xAB..., the fixed code refuses.
		leak := make([]byte, 16)
		if n, err := f.ReadAt("target", -vm.PageSize, leak); err == nil || n != 0 {
			t.Errorf("negative ReadAt returned %d bytes, err %v", n, err)
		}
		for _, b := range leak {
			if b == 0xAB {
				t.Fatal("negative ReadAt leaked the victim's bytes")
			}
		}
	})
}

// TestHugeGrowthFailsWithNoSpace: sizes that fit the offset rules but
// not the image must fail fast with ErrNoSpace — the doubling loop may
// not wrap, spin, or allocate past the extent area.
func TestHugeGrowthFailsWithNoSpace(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.Create("big"); err != nil {
			panic(err)
		}
		// In range for the image, but the extent area can't hold it: the
		// power-of-two growth is capped at the image size and the bump
		// allocator refuses.
		if err := f.Truncate("big", int(testSize)-vm.PageSize); !errors.Is(err, ErrNoSpace) {
			t.Errorf("Truncate near image size: err = %v, want ErrNoSpace", err)
		}
		// Appending to a file whose end would cross the image boundary.
		if err := f.WriteAt("big", int(testSize)-4, make([]byte, 64)); !errors.Is(err, ErrBadOffset) {
			t.Errorf("WriteAt crossing image end: err = %v, want ErrBadOffset", err)
		}
		// The file must still be usable after the failures.
		if err := f.WriteAt("big", 0, []byte("ok")); err != nil {
			t.Errorf("write after failed growth: %v", err)
		}
		got, err := f.ReadFile("big")
		if err != nil || string(got) != "ok" {
			t.Errorf("ReadFile = %q, %v", got, err)
		}
	})
}

// TestAppendAtomicWithProtection: with SetProtect enabled, Append must
// perform its size lookup and write inside one unlock window and stay
// correct across many appends interleaved with truncates.
func TestAppendAtomicWithProtection(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		f.SetProtect(true)
		defer f.SetProtect(false)
		if err := f.CreateAppendOnly("log"); err != nil {
			panic(err)
		}
		var want []byte
		for i := 0; i < 20; i++ {
			chunk := bytes.Repeat([]byte{byte('a' + i)}, i+1)
			if err := f.Append("log", chunk); err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
			want = append(want, chunk...)
			if i == 9 {
				if err := f.Truncate("log", len(want)-5); err != nil {
					t.Fatalf("truncate: %v", err)
				}
				want = want[:len(want)-5]
			}
		}
		got, err := f.ReadFile("log")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("log = %q, want %q", got, want)
		}
		// The image must be read-only again after every operation: a wild
		// write from a child inheriting this memory has to fault.
		if err := env.Put(1, kernel.PutOpts{
			Regs: &kernel.Regs{Entry: func(c *kernel.Env) {
				c.WriteU32(testBase+vm.Addr(dataStart), 0xDEAD)
			}},
			CopyAll: true,
			Start:   true,
		}); err != nil {
			t.Fatal(err)
		}
		info, err := env.Get(1, kernel.GetOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if info.Status != kernel.StatusFault {
			t.Fatalf("wild write after Append did not fault: image left writable (%v)", info.Status)
		}
	})
}

// TestNoOperationEscapesItsExtent is the property test: a deterministic
// random mix of valid and invalid operations over several files, checked
// against an in-memory model after every step. Any operation that wrote
// or read outside its own file's extent — the corruption mode of the
// wrapped offsets — diverges from the model immediately.
func TestNoOperationEscapesItsExtent(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		rng := rand.New(rand.NewSource(0x0FF5E7))
		names := []string{"a", "b", "c", "d"}
		model := map[string][]byte{}
		for _, n := range names {
			if err := f.Create(n); err != nil {
				panic(err)
			}
			model[n] = nil
		}
		const maxLen = 9000
		for step := 0; step < 1500; step++ {
			name := names[rng.Intn(len(names))]
			switch rng.Intn(5) {
			case 0: // valid write at random offset
				off := rng.Intn(maxLen)
				p := make([]byte, rng.Intn(200))
				for i := range p {
					p[i] = byte(rng.Intn(256))
				}
				if err := f.WriteAt(name, off, p); err != nil {
					t.Fatalf("step %d: WriteAt(%s, %d, %d bytes): %v", step, name, off, len(p), err)
				}
				cur := model[name]
				if need := off + len(p); need > len(cur) {
					grown := make([]byte, need)
					copy(grown, cur)
					cur = grown
				}
				copy(cur[off:], p)
				model[name] = cur
			case 1: // valid append
				p := bytes.Repeat([]byte{byte(step)}, rng.Intn(64))
				if err := f.Append(name, p); err != nil {
					t.Fatalf("step %d: Append(%s): %v", step, name, err)
				}
				model[name] = append(model[name], p...)
			case 2: // valid truncate
				n := rng.Intn(maxLen)
				if err := f.Truncate(name, n); err != nil {
					t.Fatalf("step %d: Truncate(%s, %d): %v", step, name, n, err)
				}
				cur := model[name]
				if n <= len(cur) {
					model[name] = cur[:n]
				} else {
					grown := make([]byte, n)
					copy(grown, cur)
					model[name] = grown
				}
			case 3: // hostile offset: must be rejected, must change nothing
				bad := [...]int{-1, -vm.PageSize, -rng.Intn(1 << 30), math.MinInt,
					int(testSize) + rng.Intn(1<<20), math.MaxInt - rng.Intn(1<<10)}
				off := bad[rng.Intn(len(bad))]
				var err error
				switch rng.Intn(3) {
				case 0:
					err = f.WriteAt(name, off, []byte{0xEE})
				case 1:
					_, err = f.ReadAt(name, off, make([]byte, 32))
				case 2:
					err = f.Truncate(name, off)
				}
				if !errors.Is(err, ErrBadOffset) {
					t.Fatalf("step %d: hostile offset %d on %s: err = %v, want ErrBadOffset",
						step, off, name, err)
				}
			case 4: // valid read of a random slice
				off := rng.Intn(maxLen)
				p := make([]byte, rng.Intn(128))
				n, err := f.ReadAt(name, off, p)
				if err != nil {
					t.Fatalf("step %d: ReadAt(%s, %d): %v", step, name, off, err)
				}
				cur := model[name]
				wantN := 0
				if off < len(cur) {
					wantN = min(len(p), len(cur)-off)
				}
				if n != wantN {
					t.Fatalf("step %d: ReadAt(%s, %d) = %d bytes, model has %d", step, name, off, n, wantN)
				}
				if n > 0 && !bytes.Equal(p[:n], cur[off:off+n]) {
					t.Fatalf("step %d: ReadAt(%s, %d) bytes diverge from model", step, name, off)
				}
			}
			// Cross-file invariant: every OTHER file still matches the
			// model exactly — nothing escaped its extent.
			if step%100 == 99 {
				for _, other := range names {
					got, err := f.ReadFile(other)
					if err != nil {
						t.Fatalf("step %d: ReadFile(%s): %v", step, other, err)
					}
					if !bytes.Equal(got, model[other]) {
						t.Fatalf("step %d: file %s diverged from model (len %d vs %d)",
							step, other, len(got), len(model[other]))
					}
				}
			}
		}
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
