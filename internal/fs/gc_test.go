package fs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/kernel"
	"repro/internal/vm"
)

// The free-list/Compact property test: a ~2000-step deterministic random
// mix of create/write/append/truncate/unlink/compact against an
// in-memory model, checking after every mutation that
//
//   - no live extent overlaps another live extent, a free-list entry,
//     the metadata pages or a chained-region header;
//   - every file still reads back exactly as the model says;
//
// and at every Compact that the space accounting closes: live canonical
// capacities + free-list bytes + the bump-cursor tail cover the data
// area exactly — no leaked extent, which is precisely the defect the
// paper's prototype kept.
//
// The whole run is replayed on a second machine and the final images
// must be byte-identical (checksummed), the determinism Compact exists
// to provide.

const gcSteps = 2000

// gcRun executes the scripted operation mix on a fresh machine and
// returns the final image checksum. With check set it verifies the
// invariants as it goes (the replay pass skips them for speed).
func gcRun(t *testing.T, seed int64, check bool) uint64 {
	t.Helper()
	var sum uint64
	m := kernel.New(kernel.Config{})
	res := m.Run(func(env *kernel.Env) {
		// Small initial image with headroom to grow: growth, region
		// chaining and boundary gaps are all on the tested path.
		f := FormatGrowable(env, testBase, 64<<10, testSize)
		rng := rand.New(rand.NewSource(seed))
		if err := f.Mkdir("d"); err != nil {
			panic(err)
		}
		names := []string{"a", "b", "c", "d/x", "d/y", "d/z"}
		model := map[string][]byte{}

		for step := 0; step < gcSteps; step++ {
			name := names[rng.Intn(len(names))]
			cur, exists := model[name]
			switch rng.Intn(12) {
			case 0, 1: // create
				if exists {
					continue
				}
				if err := f.Create(name); err != nil {
					panic(fmt.Sprintf("step %d create %s: %v", step, name, err))
				}
				model[name] = []byte{}
			case 2, 3, 4: // write at random offset
				if !exists {
					continue
				}
				off := rng.Intn(3 * vm.PageSize)
				data := make([]byte, rng.Intn(2*vm.PageSize)+1)
				rng.Read(data)
				if err := f.WriteAt(name, off, data); err != nil {
					panic(fmt.Sprintf("step %d write %s: %v", step, name, err))
				}
				for len(cur) < off+len(data) {
					cur = append(cur, 0)
				}
				copy(cur[off:], data)
				model[name] = cur
			case 5, 6: // append
				if !exists {
					continue
				}
				data := make([]byte, rng.Intn(vm.PageSize)+1)
				rng.Read(data)
				if err := f.Append(name, data); err != nil {
					panic(fmt.Sprintf("step %d append %s: %v", step, name, err))
				}
				model[name] = append(cur, data...)
			case 7, 8: // truncate (shrink frees extent tails)
				if !exists {
					continue
				}
				n := rng.Intn(2 * vm.PageSize)
				if err := f.Truncate(name, n); err != nil {
					panic(fmt.Sprintf("step %d truncate %s: %v", step, name, err))
				}
				for len(cur) < n {
					cur = append(cur, 0)
				}
				model[name] = cur[:n]
			case 9, 10: // unlink (frees the whole extent)
				if !exists {
					continue
				}
				if err := f.Unlink(name); err != nil {
					panic(fmt.Sprintf("step %d unlink %s: %v", step, name, err))
				}
				delete(model, name)
			case 11: // compact, sometimes reclaiming tombstones
				st, err := f.Compact(CompactOptions{ReclaimTombstones: rng.Intn(2) == 0})
				if err != nil {
					panic(fmt.Sprintf("step %d compact: %v", step, err))
				}
				if check {
					gcCheckAccounting(f, st, step)
				}
			}
			if check {
				gcCheckLayout(f, step)
				if step%97 == 0 {
					gcCheckContents(f, model, step)
				}
			}
		}
		if _, err := f.Compact(CompactOptions{ReclaimTombstones: true}); err != nil {
			panic(err)
		}
		if check {
			gcCheckContents(f, model, gcSteps)
			gcCheckAccounting(f, CompactStats{}, gcSteps)
		}
		sum = f.Checksum()
	}, 0)
	if res.Status != kernel.StatusHalted {
		t.Fatalf("gc property run stopped: %v %v", res.Status, res.Err)
	}
	return sum
}

// gcCheckLayout asserts that live extents, free-list entries, metadata
// and region headers are pairwise disjoint and inside the image.
func gcCheckLayout(f *FS, step int) {
	type span struct {
		off, end uint32
		what     string
	}
	regs := f.regions()
	var spans []span
	for i, r := range regs {
		spans = append(spans, span{r.off, regionDataStart(i, r), fmt.Sprintf("region %d metadata", i)})
	}
	for ino := 1; ino < NumInodes; ino++ {
		if f.iGet(ino, iFlags)&flagExists == 0 {
			if f.inUse(ino) && f.iGet(ino, iExtCap) != 0 {
				panic(fmt.Sprintf("step %d: tombstone %d still holds an extent", step, ino))
			}
			continue
		}
		c := f.iGet(ino, iExtCap)
		if c == 0 {
			continue
		}
		off := f.iGet(ino, iExtOff)
		if f.iGet(ino, iSize) > c {
			panic(fmt.Sprintf("step %d: ino %d size exceeds cap", step, ino))
		}
		spans = append(spans, span{off, off + c, fmt.Sprintf("ino %d (%s)", ino, f.pathOf(ino))})
	}
	for _, e := range f.readFreeList() {
		spans = append(spans, span{e.off, e.off + e.length, "free extent"})
	}
	size := uint32(f.size())
	sort.Slice(spans, func(i, j int) bool { return spans[i].off < spans[j].off })
	for i, s := range spans {
		if s.end > size || s.end < s.off {
			panic(fmt.Sprintf("step %d: %s [%d,%d) outside image (%d)", step, s.what, s.off, s.end, size))
		}
		if i > 0 && spans[i-1].end > s.off {
			panic(fmt.Sprintf("step %d: %s [%d,%d) overlaps %s [%d,%d)", step,
				s.what, s.off, s.end, spans[i-1].what, spans[i-1].off, spans[i-1].end))
		}
	}
}

// gcCheckAccounting asserts the post-Compact identity: canonical live
// capacities + free bytes + the cursor tail == the whole data area.
func gcCheckAccounting(f *FS, _ CompactStats, step int) {
	regs := f.regions()
	var total, used, free, tail int64
	for i, r := range regs {
		total += int64(r.off + r.length - regionDataStart(i, r))
	}
	for ino := 1; ino < NumInodes; ino++ {
		if f.iGet(ino, iFlags)&flagExists != 0 {
			c := f.iGet(ino, iExtCap)
			if want := f.canonicalCap(f.iGet(ino, iSize)); c != want {
				panic(fmt.Sprintf("step %d: ino %d cap %d not canonical (%d) after compact", step, ino, c, want))
			}
			used += int64(c)
		}
	}
	for _, e := range f.readFreeList() {
		free += int64(e.length)
	}
	// The unallocated tail: from the cursor to the end of its region,
	// plus the whole data area of any region the cursor never reached.
	cursor := f.gu32(sbCursor)
	for i, r := range regs {
		ds, end := regionDataStart(i, r), r.off+r.length
		switch {
		case cursor >= ds && cursor <= end:
			tail += int64(end - cursor)
		case cursor < ds:
			tail += int64(end - ds)
		}
	}
	if used+free+tail != total {
		panic(fmt.Sprintf("step %d: leak after compact: used %d + free %d + tail %d != data area %d",
			step, used, free, tail, total))
	}
}

func gcCheckContents(f *FS, model map[string][]byte, step int) {
	for name, want := range model {
		got, err := f.ReadFile(name)
		if err != nil || !bytes.Equal(got, want) {
			panic(fmt.Sprintf("step %d: %s diverged from model (%d vs %d bytes, err %v)",
				step, name, len(got), len(want), err))
		}
	}
	var live int
	for _, info := range f.List() {
		if !info.Dir {
			live++
		}
	}
	if live != len(model) {
		panic(fmt.Sprintf("step %d: List shows %d files, model has %d", step, live, len(model)))
	}
}

func TestFreeListPropertyAndReplayDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 0x6F5, 0xDECAF} {
		sum := gcRun(t, seed, true)
		if replay := gcRun(t, seed, false); replay != sum {
			t.Fatalf("seed %d: replayed image checksum %#x != original %#x", seed, replay, sum)
		}
	}
}

// TestCompactReclaimsSpace pins the headline behaviour: space freed by
// unlink is actually reusable, where the paper's prototype leaked it.
// Writing and deleting a large file repeatedly must not exhaust the
// image (pre-GC it ran out after a handful of iterations).
func TestCompactReclaimsSpace(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		big := bytes.Repeat([]byte{0xCC}, int(testSize)/8)
		for i := 0; i < 20; i++ {
			name := fmt.Sprintf("blob%d", i%2)
			if err := f.WriteFile(name, big); err != nil {
				t.Fatalf("iteration %d: %v (space leaked?)", i, err)
			}
			if err := f.Unlink(name); err != nil {
				t.Fatal(err)
			}
			if i%5 == 4 {
				if _, err := f.Compact(CompactOptions{ReclaimTombstones: true}); err != nil {
					t.Fatal(err)
				}
			}
		}
		gc := f.GC()
		if gc.Reused == 0 {
			t.Error("no allocation was ever served from the free list")
		}
		if gc.Compactions != 4 {
			t.Errorf("compactions = %d, want 4", gc.Compactions)
		}
	})
}

// TestGrowthChainsRegions exercises the soft ErrNoSpace limit: an image
// formatted small but growable chains new regions on demand, and the
// hard ceiling still refuses.
func TestGrowthChainsRegions(t *testing.T) {
	m := kernel.New(kernel.Config{})
	res := m.Run(func(env *kernel.Env) {
		f := FormatGrowable(env, testBase, 64<<10, 4<<20)
		payload := bytes.Repeat([]byte{7}, 200<<10) // far beyond the initial 64K
		if err := f.WriteFile("big", payload); err != nil {
			panic(fmt.Sprintf("growable write: %v", err))
		}
		got, err := f.ReadFile("big")
		if err != nil || !bytes.Equal(got, payload) {
			panic("content lost across growth")
		}
		if f.GC().Grows == 0 {
			panic("image never chained a region")
		}
		// Attach still validates the grown chain.
		if _, err := Attach(env, testBase, 4<<20); err != nil {
			panic(fmt.Sprintf("attach grown image: %v", err))
		}
		// The ceiling is a hard stop.
		if err := f.Truncate("big", 4<<20-vm.PageSize); !errors.Is(err, ErrNoSpace) {
			panic(fmt.Sprintf("past-ceiling truncate: %v", err))
		}
		// And the image remains usable after the refusal.
		if err := f.Append("big", []byte("tail")); err != nil {
			panic(fmt.Sprintf("append after refusal: %v", err))
		}
	}, 0)
	if res.Status != kernel.StatusHalted {
		t.Fatalf("%v: %v", res.Status, res.Err)
	}
}
