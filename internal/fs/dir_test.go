package fs

import (
	"errors"
	"testing"

	"repro/internal/kernel"
)

// Directory semantics: hierarchical names over the parent-ino field.

func TestMkdirAndNestedFiles(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.Mkdir("src"); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := f.Mkdir("src/lib"); err != nil {
			t.Fatalf("nested mkdir: %v", err)
		}
		if err := f.WriteFile("src/lib/a.go", []byte("package a")); err != nil {
			t.Fatalf("write nested: %v", err)
		}
		got, err := f.ReadFile("src/lib/a.go")
		if err != nil || string(got) != "package a" {
			t.Fatalf("read nested = %q, %v", got, err)
		}
		info, err := f.Stat("src/lib")
		if err != nil || !info.Dir || info.Name != "src/lib" {
			t.Fatalf("stat dir = %+v, %v", info, err)
		}
		// Leading slash is tolerated.
		if _, err := f.Stat("/src/lib/a.go"); err != nil {
			t.Fatalf("leading-slash stat: %v", err)
		}
	})
}

func TestPathErrors(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.Create("nosuchdir/f"); !errors.Is(err, ErrNotFound) {
			t.Errorf("create under missing dir: %v", err)
		}
		if err := f.WriteFile("plain", []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := f.Create("plain/child"); !errors.Is(err, ErrNotDir) {
			t.Errorf("create under a file: %v", err)
		}
		if err := f.Mkdir("d"); err != nil {
			t.Fatal(err)
		}
		if err := f.WriteAt("d", 0, []byte("x")); !errors.Is(err, ErrIsDir) {
			t.Errorf("write to dir: %v", err)
		}
		if _, err := f.ReadFile("d"); !errors.Is(err, ErrIsDir) {
			t.Errorf("read dir: %v", err)
		}
		for _, bad := range []string{"", "/", "a//b", "./x", "a/../b"} {
			if err := f.Create(bad); !errors.Is(err, ErrBadName) {
				t.Errorf("create(%q): %v, want ErrBadName", bad, err)
			}
		}
	})
}

func TestReadDirSortedAndScoped(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		must := func(err error) {
			if err != nil {
				t.Fatal(err)
			}
		}
		must(f.Mkdir("d"))
		must(f.Create("d/zz"))
		must(f.Create("d/aa"))
		must(f.Mkdir("d/mid"))
		must(f.Create("top"))
		ents, err := f.ReadDir("d")
		must(err)
		if len(ents) != 3 || ents[0].Name != "d/aa" || ents[1].Name != "d/mid" || ents[2].Name != "d/zz" {
			t.Fatalf("ReadDir(d) = %+v", ents)
		}
		if !ents[1].Dir || ents[0].Dir {
			t.Fatalf("Dir bits wrong: %+v", ents)
		}
		root, err := f.ReadDir("")
		must(err)
		if len(root) != 2 || root[0].Name != "d" || root[1].Name != "top" {
			t.Fatalf("ReadDir(root) = %+v", root)
		}
		// List is the recursive view.
		if l := f.List(); len(l) != 5 {
			t.Fatalf("List = %+v", l)
		}
	})
}

func TestUnlinkDirectory(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.Mkdir("d"); err != nil {
			t.Fatal(err)
		}
		if err := f.WriteFile("d/f", []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := f.Unlink("d"); !errors.Is(err, ErrDirNotEmpty) {
			t.Fatalf("unlink non-empty dir: %v", err)
		}
		if err := f.Unlink("d/f"); err != nil {
			t.Fatal(err)
		}
		if err := f.Unlink("d"); err != nil {
			t.Fatalf("unlink emptied dir: %v", err)
		}
		if _, err := f.Stat("d"); !errors.Is(err, ErrNotFound) {
			t.Fatal("deleted dir still visible")
		}
		// The path below a deleted dir is gone too.
		if _, err := f.Stat("d/f"); !errors.Is(err, ErrNotFound) {
			t.Fatal("path under deleted dir resolvable")
		}
		// Revival as a file works (type may change across a deletion).
		if err := f.Create("d"); err != nil {
			t.Fatalf("revive as file: %v", err)
		}
		if info, _ := f.Stat("d"); info.Dir {
			t.Fatal("revived entry kept the dir bit")
		}
	})
}

func TestRenameFileAcrossDirectories(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		must := func(err error) {
			if err != nil {
				t.Fatal(err)
			}
		}
		must(f.Mkdir("a"))
		must(f.Mkdir("b"))
		must(f.WriteFile("a/f", []byte("payload")))
		must(f.Rename("a/f", "b/g"))
		if _, err := f.Stat("a/f"); !errors.Is(err, ErrNotFound) {
			t.Fatal("old path still live after rename")
		}
		got, err := f.ReadFile("b/g")
		if err != nil || string(got) != "payload" {
			t.Fatalf("renamed content = %q, %v", got, err)
		}
		// Onto an existing live entry: refused.
		must(f.WriteFile("a/f", []byte("again")))
		if err := f.Rename("a/f", "b/g"); !errors.Is(err, ErrExists) {
			t.Fatalf("rename onto live target: %v", err)
		}
		// Directories rename whether empty or not — a non-empty one
		// decomposes transitively (see rename_test.go for the semantics).
		must(f.Mkdir("empty"))
		must(f.Rename("empty", "moved"))
		if info, err := f.Stat("moved"); err != nil || !info.Dir {
			t.Fatalf("renamed dir = %+v, %v", info, err)
		}
		must(f.Rename("b", "c"))
		if got, err := f.ReadFile("c/g"); err != nil || string(got) != "payload" {
			t.Fatalf("moved dir content = %q, %v", got, err)
		}
	})
}

// --- reconciliation over the hierarchy ---------------------------------------

func TestReconcileChildBuildsTree(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		child := forkImage(t, env, f)
		if err := child.Mkdir("out"); err != nil {
			t.Fatal(err)
		}
		if err := child.Mkdir("out/obj"); err != nil {
			t.Fatal(err)
		}
		if err := child.WriteFile("out/obj/a.o", []byte("AAA")); err != nil {
			t.Fatal(err)
		}
		conflicts, err := f.ReconcileFrom(child)
		if err != nil || len(conflicts) != 0 {
			t.Fatalf("conflicts %v, err %v", conflicts, err)
		}
		got, err := f.ReadFile("out/obj/a.o")
		if err != nil || string(got) != "AAA" {
			t.Fatalf("adopted tree file = %q, %v", got, err)
		}
		if info, err := f.Stat("out"); err != nil || !info.Dir {
			t.Fatalf("adopted dir = %+v, %v", info, err)
		}
	})
}

func TestReconcileBothCreateSameDirNoConflict(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		child := forkImage(t, env, f)
		if err := f.Mkdir("shared"); err != nil {
			t.Fatal(err)
		}
		if err := f.WriteFile("shared/p", []byte("P")); err != nil {
			t.Fatal(err)
		}
		if err := child.Mkdir("shared"); err != nil {
			t.Fatal(err)
		}
		if err := child.WriteFile("shared/c", []byte("C")); err != nil {
			t.Fatal(err)
		}
		conflicts, err := f.ReconcileFrom(child)
		if err != nil || len(conflicts) != 0 {
			t.Fatalf("same-dir creation conflicted: %v, %v", conflicts, err)
		}
		p, _ := f.ReadFile("shared/p")
		c, _ := f.ReadFile("shared/c")
		if string(p) != "P" || string(c) != "C" {
			t.Fatalf("dir union wrong: %q %q", p, c)
		}
	})
}

func TestReconcileTypeClashConflicts(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		child := forkImage(t, env, f)
		if err := f.WriteFile("x", []byte("file")); err != nil {
			t.Fatal(err)
		}
		if err := child.Mkdir("x"); err != nil {
			t.Fatal(err)
		}
		conflicts, err := f.ReconcileFrom(child)
		if err != nil || len(conflicts) != 1 || conflicts[0].Name != "x" {
			t.Fatalf("type clash not reported: %v, %v", conflicts, err)
		}
		// Parent's file stands, flagged.
		if _, err := f.ReadFile("x"); !errors.Is(err, ErrConflict) {
			t.Fatalf("clashed file readable: %v", err)
		}
	})
}

func TestReconcileRenamePropagates(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.Mkdir("d"); err != nil {
			t.Fatal(err)
		}
		if err := f.WriteFile("d/old", []byte("data")); err != nil {
			t.Fatal(err)
		}
		child := forkImage(t, env, f)
		if err := child.Rename("d/old", "d/new"); err != nil {
			t.Fatal(err)
		}
		conflicts, err := f.ReconcileFrom(child)
		if err != nil || len(conflicts) != 0 {
			t.Fatalf("rename reconciliation: %v, %v", conflicts, err)
		}
		if _, err := f.Stat("d/old"); !errors.Is(err, ErrNotFound) {
			t.Fatal("old path survived the adopted rename")
		}
		got, err := f.ReadFile("d/new")
		if err != nil || string(got) != "data" {
			t.Fatalf("new path = %q, %v", got, err)
		}
	})
}

func TestReconcileChildDeletesTree(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		must := func(err error) {
			if err != nil {
				t.Fatal(err)
			}
		}
		must(f.Mkdir("tmp"))
		must(f.Mkdir("tmp/deep"))
		must(f.WriteFile("tmp/deep/f", []byte("x")))
		child := forkImage(t, env, f)
		must(child.Unlink("tmp/deep/f"))
		must(child.Unlink("tmp/deep"))
		must(child.Unlink("tmp"))
		conflicts, err := f.ReconcileFrom(child)
		if err != nil || len(conflicts) != 0 {
			t.Fatalf("tree deletion: %v, %v", conflicts, err)
		}
		if _, err := f.Stat("tmp"); !errors.Is(err, ErrNotFound) {
			t.Fatal("deleted tree root survived")
		}
	})
}

func TestReconcileDirDeletionVsParentAddConflicts(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.Mkdir("d"); err != nil {
			t.Fatal(err)
		}
		child := forkImage(t, env, f)
		// Parent adds a file into d; child deletes d.
		if err := f.WriteFile("d/keep", []byte("k")); err != nil {
			t.Fatal(err)
		}
		if err := child.Unlink("d"); err != nil {
			t.Fatal(err)
		}
		conflicts, err := f.ReconcileFrom(child)
		if err != nil || len(conflicts) != 1 || conflicts[0].Name != "d" {
			t.Fatalf("dir deletion under parent adds: %v, %v", conflicts, err)
		}
		// The parent's content is preserved.
		if got, err := f.ReadFile("d/keep"); err != nil || string(got) != "k" {
			t.Fatalf("parent file lost: %q, %v", got, err)
		}
	})
}

// TestReconcileDivergentTreeDeletionConflictsCleanly: the parent
// creates and deletes a tree after the fork while the child
// independently creates the same paths — a genuine divergence. The
// conflict must land on the divergent directory itself (the path the
// documented re-create recovery can actually target), the hidden
// tombstones under the dead directory must not be duplicated or
// silently revived (which would launder the parent's deletion away),
// and the recovery path must leave a working image.
func TestReconcileDivergentTreeDeletionConflictsCleanly(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		child := forkImage(t, env, f)
		// Parent creates and deletes d/y after the fork: tombstones for
		// both survive, y's hidden under the dead directory.
		if err := f.Mkdir("d"); err != nil {
			t.Fatal(err)
		}
		if err := f.WriteFile("d/y", []byte("gone")); err != nil {
			t.Fatal(err)
		}
		if err := f.Unlink("d/y"); err != nil {
			t.Fatal(err)
		}
		if err := f.Unlink("d"); err != nil {
			t.Fatal(err)
		}
		// Child independently creates the same paths.
		if err := child.Mkdir("d"); err != nil {
			t.Fatal(err)
		}
		if err := child.WriteFile("d/y", []byte("child")); err != nil {
			t.Fatal(err)
		}
		conflicts, err := f.ReconcileFrom(child)
		if err != nil {
			t.Fatal(err)
		}
		// Every reported conflict sits at "d" — the divergent entry —
		// never at "d/y", where nothing exists to re-create.
		if len(conflicts) == 0 {
			t.Fatal("divergent delete-vs-create reported no conflict")
		}
		for _, c := range conflicts {
			if c.Name != "d" {
				t.Fatalf("conflict reported at %q, want d", c.Name)
			}
		}
		// The parent's deletion stands: nothing was silently revived or
		// adopted, and no duplicate slot exists for any name.
		if _, err := f.Stat("d"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("divergent dir silently revived: %v", err)
		}
		slots := 0
		for ino := 1; ino < NumInodes; ino++ {
			if f.inUse(ino) && f.name(ino) == "y" {
				slots++
			}
		}
		if slots != 1 {
			t.Fatalf("%d slots named y, want 1 (the parent's tombstone)", slots)
		}
		// The documented recovery targets the reported path and works.
		if err := f.Mkdir("d"); err != nil {
			t.Fatalf("recovery Mkdir(d): %v", err)
		}
		if err := f.WriteFile("d/y", []byte("fresh")); err != nil {
			t.Fatalf("recovery write d/y: %v", err)
		}
		got, _ := f.ReadFile("d/y")
		if string(got) != "fresh" {
			t.Fatalf("recovered d/y = %q", got)
		}
	})
}

// TestConflictedDirRecoveryKeepsChildren: re-creating a conflicted
// directory that still has live entries must keep it a directory —
// Create (as a file) refuses, Mkdir clears the conflict in place.
func TestConflictedDirRecoveryKeepsChildren(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.Mkdir("d"); err != nil {
			t.Fatal(err)
		}
		child := forkImage(t, env, f)
		if err := f.WriteFile("d/x", []byte("keep")); err != nil {
			t.Fatal(err)
		}
		if err := child.Unlink("d"); err != nil { // diverges: parent grew d
			t.Fatal(err)
		}
		conflicts, err := f.ReconcileFrom(child)
		if err != nil || len(conflicts) != 1 || conflicts[0].Name != "d" {
			t.Fatalf("setup conflicts = %v, %v", conflicts, err)
		}
		// The blanket "re-create to resolve" recovery must not be able
		// to orphan d/x behind a file.
		if err := f.Create("d"); !errors.Is(err, ErrDirNotEmpty) {
			t.Fatalf("Create over conflicted non-empty dir: %v", err)
		}
		if err := f.Mkdir("d"); err != nil {
			t.Fatalf("Mkdir to clear the dir conflict: %v", err)
		}
		got, err := f.ReadFile("d/x")
		if err != nil || string(got) != "keep" {
			t.Fatalf("d/x after recovery = %q, %v", got, err)
		}
	})
}

// TestReconcileAncestorClashReportedAtAncestor: a child file blocked by
// a type clash at an ancestor must be reported at the ancestor (the
// entry actually flagged) — the blanket "Create every reported name"
// recovery must never be handed a path it cannot re-create.
func TestReconcileAncestorClashReportedAtAncestor(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.WriteFile("a", []byte("file")); err != nil {
			t.Fatal(err)
		}
		child := forkImage(t, env, f)
		if err := child.Unlink("a"); err != nil {
			t.Fatal(err)
		}
		if err := child.Mkdir("a"); err != nil {
			t.Fatal(err)
		}
		if err := child.WriteFile("a/b", []byte("under")); err != nil {
			t.Fatal(err)
		}
		conflicts, err := f.ReconcileFrom(child)
		if err != nil || len(conflicts) == 0 {
			t.Fatalf("conflicts %v, err %v", conflicts, err)
		}
		for _, c := range conflicts {
			if c.Name != "a" {
				t.Fatalf("conflict at %q, want every report at the clashed ancestor a", c.Name)
			}
		}
		// Every reported path is re-creatable — the documented recovery.
		for _, c := range conflicts {
			if err := f.Create(c.Name); err != nil && !errors.Is(err, ErrExists) {
				t.Fatalf("recovery Create(%s): %v", c.Name, err)
			}
		}
		if _, err := f.ReadFile("a"); err != nil {
			t.Fatalf("a after recovery: %v", err)
		}
	})
}

// TestRenameRefusesConflictedEntry: conflicted entries fail later opens
// until explicitly re-created; Rename must not launder the mark.
func TestRenameRefusesConflictedEntry(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.Create("shared"); err != nil {
			t.Fatal(err)
		}
		child := forkImage(t, env, f)
		if err := f.WriteFile("shared", []byte("parent")); err != nil {
			t.Fatal(err)
		}
		if err := child.WriteFile("shared", []byte("child")); err != nil {
			t.Fatal(err)
		}
		if conflicts, err := f.ReconcileFrom(child); err != nil || len(conflicts) != 1 {
			t.Fatalf("setup: %v, %v", conflicts, err)
		}
		if err := f.Rename("shared", "laundered"); !errors.Is(err, ErrConflict) {
			t.Fatalf("rename of conflicted file: %v, want ErrConflict", err)
		}
		if _, err := f.ReadFile("shared"); !errors.Is(err, ErrConflict) {
			t.Fatalf("conflict mark lost: %v", err)
		}
	})
}

// TestReconcileHiddenTombstoneVersionEvidenceConflicts: a tombstone
// resurfacing behind a revived directory chain whose version does not
// match the child's fork stamp proves the parent changed the path too
// (create+delete behind the dead directory) — that is a both-sides
// divergence and must conflict, exactly as if lookup had seen the slot,
// never silently adopt and regress the version.
func TestReconcileHiddenTombstoneVersionEvidenceConflicts(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		must := func(err error) {
			if err != nil {
				t.Fatal(err)
			}
		}
		// d exists at fork time, so the child's own d entry stays
		// unchanged and never shields the hidden tombstone below it.
		must(f.Mkdir("d"))
		child := forkImage(t, env, f)
		// Parent, after the fork: create d/f (several versions), delete
		// it and the directory — tombstones with high versions, f's
		// hidden under the dead d.
		must(f.WriteFile("d/f", []byte("v1")))
		must(f.WriteFile("d/f", []byte("v2")))
		must(f.Unlink("d/f"))
		must(f.Unlink("d"))
		// Child independently creates the same file.
		must(child.WriteFile("d/f", []byte("child")))
		conflicts, err := f.ReconcileFrom(child)
		if err != nil {
			t.Fatal(err)
		}
		if len(conflicts) == 0 {
			t.Fatal("concurrent create+delete vs create adopted silently")
		}
		// Nothing was silently adopted behind the conflict.
		if _, err := f.ReadFile("d/f"); err == nil {
			t.Fatal("divergent d/f readable after conflicted reconcile")
		}
		// Versions never regress: every in-use slot named f keeps a
		// version at least as high as the parent's tombstone had.
		for ino := 1; ino < NumInodes; ino++ {
			if f.inUse(ino) && f.name(ino) == "f" && f.iGet(ino, iVersion) < 4 {
				t.Fatalf("slot %d version regressed to %d", ino, f.iGet(ino, iVersion))
			}
		}
	})
}
