package fs

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/kernel"
	"repro/internal/vm"
)

// Regression tests for freed-slot hygiene: inode slots can now actually
// be freed (tombstone reclamation at Compact, aborted adoptions), so
// every table scan must gate on the explicit in-use test and freed slots
// must be scrubbed — the old code iterated the raw table and would have
// reported whatever stale name bytes a freed slot still held.

// TestFailedAdoptionLeavesNoHalfEntry: reconciliation adopts a child
// file into a parent whose image cannot hold the data. The adoption must
// fail cleanly — no live entry, no stale-named slot, parent still
// consistent. The pre-fix ordering set the name and flags before
// allocating the extent, so the failure left a live file whose extent
// fields were garbage.
func TestFailedAdoptionLeavesNoHalfEntry(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		child := forkImage(t, env, f)
		// After the fork, the parent claims half its image (a canonical
		// half-image extent)...
		filler := bytes.Repeat([]byte{1}, int(testSize)/2)
		if err := f.WriteFile("filler", filler); err != nil {
			t.Fatal(err)
		}
		// ...while the child writes a file whose canonical extent no
		// longer fits next to the filler.
		if err := child.WriteFile("big", bytes.Repeat([]byte{2}, int(testSize)/2)); err != nil {
			t.Fatal(err)
		}
		_, err := f.ReconcileFrom(child)
		if !errors.Is(err, ErrNoSpace) {
			t.Fatalf("reconcile into a full image: err = %v, want ErrNoSpace", err)
		}
		// No half-adopted entry may be visible through any read path.
		if _, err := f.Stat("big"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("half-adopted file is statable: %v", err)
		}
		for _, info := range f.List() {
			if info.Name == "big" {
				t.Fatal("half-adopted file shows up in List")
			}
		}
		// The slot went back to the pool with its name scrubbed.
		for ino := 1; ino < NumInodes; ino++ {
			if !f.inUse(ino) && f.name(ino) != "" {
				t.Fatalf("freed slot %d still holds name %q", ino, f.name(ino))
			}
		}
		// The parent's own state is untouched and the image still works.
		got, err := f.ReadFile("filler")
		if err != nil || !bytes.Equal(got, filler) {
			t.Fatal("filler damaged by failed adoption")
		}
		if err := f.Create("empty-still-fits"); err != nil {
			t.Fatalf("image unusable after failed adoption: %v", err)
		}
	})
}

// TestReclaimedTombstoneInvisible: Compact with ReclaimTombstones frees
// deletion records; the freed slots must be undetectable afterwards and
// a re-created file starts a fresh history (version 1, not a revival of
// the scrubbed slot's).
func TestReclaimedTombstoneInvisible(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.WriteFile("doomed", []byte("payload")); err != nil {
			t.Fatal(err)
		}
		if err := f.Unlink("doomed"); err != nil {
			t.Fatal(err)
		}
		st, err := f.Compact(CompactOptions{ReclaimTombstones: true})
		if err != nil {
			t.Fatal(err)
		}
		if st.Tombs != 1 {
			t.Fatalf("reclaimed %d tombstones, want 1", st.Tombs)
		}
		for ino := 1; ino < NumInodes; ino++ {
			if f.name(ino) == "doomed" {
				t.Fatalf("slot %d still names the reclaimed file", ino)
			}
		}
		if err := f.Create("doomed"); err != nil {
			t.Fatal(err)
		}
		info, err := f.Stat("doomed")
		if err != nil || info.Version != 1 {
			t.Fatalf("re-created file version = %d, want a fresh history (1)", info.Version)
		}
	})
}

// TestStaleNameBytesInFreeSlotIgnored plants name bytes directly into a
// free slot — the torn state a crash mid-create could leave — and
// asserts every lookup path treats the slot as free: the explicit
// in-use gate, not the name bytes, decides visibility.
func TestStaleNameBytesInFreeSlotIgnored(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.Create("real"); err != nil {
			t.Fatal(err)
		}
		ino := f.freeInode()
		f.setName(ino, "ghost") // flags stay zero: the slot is free
		if _, err := f.Stat("ghost"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("free slot with stale name is statable: %v", err)
		}
		if got := f.lookupAny("ghost"); got >= 0 {
			t.Fatalf("lookupAny found the free slot (%d)", got)
		}
		if l := f.List(); len(l) != 1 || l[0].Name != "real" {
			t.Fatalf("List = %+v, want only the real file", l)
		}
		// Creating the name claims a slot normally (possibly that one)
		// and the entry behaves as brand new.
		if err := f.Create("ghost"); err != nil {
			t.Fatal(err)
		}
		info, err := f.Stat("ghost")
		if err != nil || info.Version != 1 || info.Size != 0 {
			t.Fatalf("created-over-stale entry = %+v, %v", info, err)
		}
	})
}

// TestReviveResetsForkSize is the append-only revive regression: a
// child that deletes and re-creates an append-only file severs its
// relation to the fork-time content, so its whole new content must
// merge as appended bytes. With the stale fork size the merge dropped
// the revived content entirely (or grafted a mid-file slice).
func TestReviveResetsForkSize(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		base := bytes.Repeat([]byte{'B'}, 100)
		if err := f.CreateAppendOnly("log"); err != nil {
			t.Fatal(err)
		}
		if err := f.Append("log", base); err != nil {
			t.Fatal(err)
		}
		child := forkImage(t, env, f)
		// Parent appends too, forcing the append-only merge branch.
		if err := f.Append("log", []byte("-parent")); err != nil {
			t.Fatal(err)
		}
		if err := child.Unlink("log"); err != nil {
			t.Fatal(err)
		}
		if err := child.CreateAppendOnly("log"); err != nil {
			t.Fatal(err)
		}
		if err := child.Append("log", []byte("revived")); err != nil {
			t.Fatal(err)
		}
		conflicts, err := f.ReconcileFrom(child)
		if err != nil || len(conflicts) != 0 {
			t.Fatalf("append-only revive: %v, %v", conflicts, err)
		}
		got, err := f.ReadFile("log")
		want := string(base) + "-parent" + "revived"
		if err != nil || string(got) != want {
			t.Fatalf("merged log = %q, want %q", got, want)
		}
	})
}

// TestRenameOntoTombstoneResetsForkSize: the rename fast path reuses a
// tombstone slot at the destination; none of the moved bytes existed at
// that path at fork time, so the whole content must merge as appended.
func TestRenameOntoTombstoneResetsForkSize(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.CreateAppendOnly("b"); err != nil {
			t.Fatal(err)
		}
		if err := f.Append("b", bytes.Repeat([]byte{'B'}, 100)); err != nil {
			t.Fatal(err)
		}
		child := forkImage(t, env, f)
		if err := f.Append("b", []byte("-parent")); err != nil {
			t.Fatal(err)
		}
		if err := child.CreateAppendOnly("a"); err != nil {
			t.Fatal(err)
		}
		if err := child.Append("a", []byte("moved")); err != nil {
			t.Fatal(err)
		}
		if err := child.Unlink("b"); err != nil { // tombstone with old fork size
			t.Fatal(err)
		}
		if err := child.Rename("a", "b"); err != nil { // reuses the tombstone slot
			t.Fatal(err)
		}
		conflicts, err := f.ReconcileFrom(child)
		if err != nil || len(conflicts) != 0 {
			t.Fatalf("rename onto tombstone: %v, %v", conflicts, err)
		}
		got, err := f.ReadFile("b")
		want := string(bytes.Repeat([]byte{'B'}, 100)) + "-parent" + "moved"
		if err != nil || string(got) != want {
			t.Fatalf("merged file = %q, want %q", got, want)
		}
	})
}

// TestAttachRejectsDamagedAllocatorState: a corrupt cursor or free
// entry must be refused at Attach, not crash or corrupt metadata later.
func TestAttachRejectsDamagedAllocatorState(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.WriteFile("x", []byte("data")); err != nil {
			t.Fatal(err)
		}
		cursor := f.gu32(sbCursor)
		f.pu32(sbCursor, 17) // inside the superblock page
		if _, err := Attach(env, testBase, testSize); err == nil {
			t.Fatal("attach accepted a cursor pointing at the superblock")
		}
		f.pu32(sbCursor, cursor)
		if _, err := Attach(env, testBase, testSize); err != nil {
			t.Fatalf("restored image rejected: %v", err)
		}
		f.pu32(sbFreeCount, 1)
		f.pu32(freeTable, 0)             // off 0: the superblock itself
		f.pu32(freeTable+4, vm.PageSize) // one page "free" over metadata
		if _, err := Attach(env, testBase, testSize); err == nil {
			t.Fatal("attach accepted a free extent over the metadata pages")
		}
	})
}

// TestRenameRefusesConflictedTombstoneDestination: a conflicted
// deletion record at the rename destination is a recorded divergence;
// moving an entry onto it must not launder the mark.
func TestRenameRefusesConflictedTombstoneDestination(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.WriteFile("p", []byte("x")); err != nil {
			t.Fatal(err)
		}
		child := forkImage(t, env, f)
		if err := f.Unlink("p"); err != nil { // parent deletes...
			t.Fatal(err)
		}
		if err := child.WriteFile("p", []byte("child")); err != nil { // ...child rewrites
			t.Fatal(err)
		}
		conflicts, err := f.ReconcileFrom(child)
		if err != nil || len(conflicts) != 1 {
			t.Fatalf("setup: %v, %v", conflicts, err)
		}
		if err := f.WriteFile("q", []byte("mover")); err != nil {
			t.Fatal(err)
		}
		if err := f.Rename("q", "p"); !errors.Is(err, ErrConflict) {
			t.Fatalf("rename onto conflicted tombstone: %v, want ErrConflict", err)
		}
	})
}

// TestAppendOnlyMergeSkipsConflictedParent: once a type clash marks an
// append-only file conflicted, a later child's append in the same pass
// must surface as a reported conflict, not merge bytes into an entry
// whose recovery truncates them silently.
func TestAppendOnlyMergeSkipsConflictedParent(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.CreateAppendOnly("log"); err != nil {
			t.Fatal(err)
		}
		childA := forkImage(t, env, f)
		env.SetPerm(scratch+0x0100_0000, testSize, vm.PermRW)
		buf := make([]byte, testSize)
		env.Read(testBase, buf)
		env.Write(scratch+0x0100_0000, buf)
		childB, err := Attach(env, scratch+0x0100_0000, testSize)
		if err != nil {
			t.Fatal(err)
		}
		childB.StampFork()

		// Child A replaces the log with a directory: type clash flags
		// the parent's file.
		if err := childA.Unlink("log"); err != nil {
			t.Fatal(err)
		}
		if err := childA.Mkdir("log"); err != nil {
			t.Fatal(err)
		}
		if err := childB.Append("log", []byte("B-bytes")); err != nil {
			t.Fatal(err)
		}
		if conflicts, err := f.ReconcileFrom(childA); err != nil || len(conflicts) == 0 {
			t.Fatalf("clash setup: %v, %v", conflicts, err)
		}
		conflicts, err := f.ReconcileFrom(childB)
		if err != nil {
			t.Fatal(err)
		}
		if len(conflicts) != 1 || conflicts[0].Name != "log" {
			t.Fatalf("append into conflicted file not reported: %v", conflicts)
		}
	})
}

// TestAttachRejectsCorruptInodeExtent: a replica whose inode extent
// fields were trampled (the wild-write threat) must be refused at
// Attach rather than faulting the machine mid-reconcile.
func TestAttachRejectsCorruptInodeExtent(t *testing.T) {
	withFS(t, func(env *kernel.Env, f *FS) {
		if err := f.WriteFile("x", []byte("data")); err != nil {
			t.Fatal(err)
		}
		ino := f.lookup("x")
		good := f.iGet(ino, iExtOff)
		f.iPut(ino, iExtOff, 0xFFFF_0000) // far outside the image
		if _, err := Attach(env, testBase, testSize); err == nil {
			t.Fatal("attach accepted an out-of-chain inode extent")
		}
		f.iPut(ino, iExtOff, good)
		if _, err := Attach(env, testBase, testSize); err != nil {
			t.Fatalf("restored image rejected: %v", err)
		}
		f.iPut(ino, iSize, f.iGet(ino, iExtCap)+1)
		if _, err := Attach(env, testBase, testSize); err == nil {
			t.Fatal("attach accepted size > capacity")
		}
	})
}
