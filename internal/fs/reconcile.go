package fs

import "fmt"

// Conflict names a file whose reconciliation found changes on both sides.
type Conflict struct {
	Name string
}

func (c Conflict) String() string { return fmt.Sprintf("conflict(%s)", c.Name) }

// ReconcileFrom folds the changes a child replica made since its fork
// stamp into this (the parent's) replica. Both images must live in the
// same address space: the runtime Get-Copies the child's file system
// region into a scratch area of the parent space first, exactly as §4.2
// describes, then attaches an FS handle to the scratch copy.
//
// Per-file outcome, comparing each side's version against the child's
// recorded fork version (the common ancestor):
//
//   - child unchanged            → parent's copy stands;
//   - only child changed         → child's copy (or deletion) is adopted;
//   - both changed, append-only  → the child's appended tail is
//     concatenated onto the parent's copy; never a conflict;
//   - both changed otherwise     → the parent's copy stands, the file is
//     marked conflicted, and the conflict is reported.
//
// After reconciliation the parent either discards the child replica
// (wait) or pushes its merged image back to the child, which must then
// StampFork again (two-way sync).
func (f *FS) ReconcileFrom(child *FS) ([]Conflict, error) {
	defer f.unlock()()
	var conflicts []Conflict
	for ino := 0; ino < NumInodes; ino++ {
		cf := child.iGet(ino, iFlags)
		if cf&(flagExists|flagTomb) == 0 {
			continue
		}
		name := child.name(ino)
		childChanged := child.iGet(ino, iVersion) != child.iGet(ino, iForkVersion)
		if !childChanged {
			continue // parent's state stands, whatever it is
		}
		pIno := f.lookupAny(name)
		parentChanged := true
		if pIno >= 0 {
			parentChanged = f.iGet(pIno, iVersion) != child.iGet(ino, iForkVersion)
		} else if child.iGet(ino, iForkVersion) == 0 {
			// New in the child, never seen by the parent.
			parentChanged = false
		}

		switch {
		case !parentChanged:
			if err := f.adopt(pIno, child, ino); err != nil {
				return conflicts, err
			}
		case cf&flagExists != 0 && pIno >= 0 &&
			cf&flagAppendOnly != 0 && f.iGet(pIno, iFlags)&flagAppendOnly != 0 &&
			f.iGet(pIno, iFlags)&flagExists != 0:
			if err := f.mergeAppends(pIno, child, ino); err != nil {
				return conflicts, err
			}
		default:
			// True divergence: keep the parent's copy, flag the file.
			if pIno >= 0 {
				f.iPut(pIno, iFlags, f.iGet(pIno, iFlags)|flagConflict)
				f.bump(pIno)
			} else {
				// Parent deleted (slot gone entirely is impossible with
				// tombstones, but handle it): recreate as conflicted.
				if err := f.create(name, flagConflict); err != nil {
					return conflicts, err
				}
			}
			conflicts = append(conflicts, Conflict{Name: name})
		}
	}
	return conflicts, nil
}

// adopt replaces the parent's state for one file with the child's
// (including adoption of a deletion). pIno may be -1 if the parent has no
// slot for the name yet.
func (f *FS) adopt(pIno int, child *FS, cIno int) error {
	name := child.name(cIno)
	cf := child.iGet(cIno, iFlags)
	if cf&flagExists == 0 {
		// Child deleted the file.
		if pIno >= 0 && f.iGet(pIno, iFlags)&flagExists != 0 {
			f.iPut(pIno, iFlags, flagTomb)
			f.iPut(pIno, iSize, 0)
			f.iPut(pIno, iVersion, child.iGet(cIno, iVersion))
		}
		return nil
	}
	if pIno < 0 {
		pIno = f.freeInode()
		if pIno < 0 {
			return ErrNameTaken
		}
		f.setName(pIno, name)
		f.iPut(pIno, iExtOff, 0)
		f.iPut(pIno, iExtCap, 0)
		f.iPut(pIno, iForkVersion, 0)
		f.iPut(pIno, iForkSize, 0)
	}
	f.iPut(pIno, iFlags, flagExists|(cf&flagAppendOnly))
	size := child.iGet(cIno, iSize)
	if err := f.ensureCap(pIno, size); err != nil {
		return err
	}
	if size > 0 {
		buf := make([]byte, size)
		child.gbytes(child.iGet(cIno, iExtOff), buf)
		f.pbytes(f.iGet(pIno, iExtOff), buf)
	}
	f.iPut(pIno, iSize, size)
	f.iPut(pIno, iVersion, child.iGet(cIno, iVersion))
	return nil
}

// mergeAppends handles the append-only case of §4.3: both sides appended,
// so the parent keeps its own content and concatenates the bytes the
// child wrote since the fork. Each replica thus accumulates all writers'
// output, though different replicas may see different interleavings.
func (f *FS) mergeAppends(pIno int, child *FS, cIno int) error {
	forkSize := child.iGet(cIno, iForkSize)
	childSize := child.iGet(cIno, iSize)
	if childSize <= forkSize {
		return nil // nothing actually appended (e.g. metadata-only change)
	}
	tail := make([]byte, childSize-forkSize)
	child.gbytes(child.iGet(cIno, iExtOff)+forkSize, tail)
	pSize := f.iGet(pIno, iSize)
	if err := f.ensureCap(pIno, pSize+uint32(len(tail))); err != nil {
		return err
	}
	f.pbytes(f.iGet(pIno, iExtOff)+pSize, tail)
	f.iPut(pIno, iSize, pSize+uint32(len(tail)))
	v := f.iGet(pIno, iVersion)
	if cv := child.iGet(cIno, iVersion); cv > v {
		v = cv
	}
	f.iPut(pIno, iVersion, v+1)
	return nil
}
