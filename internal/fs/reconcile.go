package fs

import (
	"fmt"
	"sort"
	"strings"
)

// Conflict names an entry (by full path) whose reconciliation found
// changes on both sides.
type Conflict struct {
	Name string
}

func (c Conflict) String() string { return fmt.Sprintf("conflict(%s)", c.Name) }

// ReconcileFrom folds the changes a child replica made since its fork
// stamp into this (the parent's) replica. Both images must live in the
// same address space: the runtime Get-Copies the child's file system
// region into a scratch area of the parent space first, exactly as §4.2
// describes, then attaches an FS handle to the scratch copy.
//
// Reconciliation is keyed by full path, never by inode number — the two
// replicas may have laid out their tables and extents completely
// differently (each ran its own allocator, perhaps its own Compact).
// Per-entry outcome, comparing each side's version against the child's
// recorded fork version (the common ancestor):
//
//   - child unchanged            → parent's copy stands;
//   - only child changed         → child's entry (create, bytes, or
//     deletion) is adopted, intermediate directories created as needed;
//   - both changed, append-only  → the child's appended tail is
//     concatenated onto the parent's copy; never a conflict;
//   - both created a directory   → directories merge trivially;
//   - both changed otherwise     → the parent's copy stands, the entry
//     is marked conflicted, and the conflict is reported. Type clashes
//     (file vs directory at one path) count as divergence.
//
// Directory deletions are adopted only once the parent's directory is
// empty; they are processed after all other entries, deepest path
// first, so a child that emptied and removed a tree propagates cleanly
// in one pass.
//
// After reconciliation the parent either discards the child replica
// (wait) or pushes its merged image back to the child, which must then
// StampFork again (two-way sync).
func (f *FS) ReconcileFrom(child *FS) ([]Conflict, error) {
	defer f.unlock()()
	var conflicts []Conflict
	type dirTomb struct {
		ino   int
		path  string
		depth int
	}
	var dirTombs []dirTomb
	for ino := 1; ino < NumInodes; ino++ {
		cfl := child.iGet(ino, iFlags)
		if cfl&(flagExists|flagTomb) == 0 {
			continue
		}
		if child.iGet(ino, iVersion) == child.iGet(ino, iForkVersion) {
			continue // child unchanged: parent's state stands
		}
		path := child.pathOf(ino)
		if cfl&flagExists == 0 && cfl&flagDir != 0 {
			// Tombstones keep the directory bit exactly so deletions of
			// directories can be deferred behind their (tombstoned)
			// contents and ordered deepest-first.
			dirTombs = append(dirTombs, dirTomb{ino, path, strings.Count(path, "/")})
			continue
		}
		c, err := f.reconcileEntry(child, ino, path)
		if err != nil {
			return conflicts, err
		}
		conflicts = append(conflicts, c...)
	}
	sort.Slice(dirTombs, func(i, j int) bool {
		if dirTombs[i].depth != dirTombs[j].depth {
			return dirTombs[i].depth > dirTombs[j].depth
		}
		return dirTombs[i].path < dirTombs[j].path
	})
	for _, dt := range dirTombs {
		c, err := f.reconcileEntry(child, dt.ino, dt.path)
		if err != nil {
			return conflicts, err
		}
		conflicts = append(conflicts, c...)
	}
	return conflicts, nil
}

// reconcileEntry applies the three-way outcome for one child entry.
func (f *FS) reconcileEntry(child *FS, cIno int, path string) ([]Conflict, error) {
	cfl := child.iGet(cIno, iFlags)
	pIno := f.lookupAny(path)
	parentChanged := true
	if pIno >= 0 {
		parentChanged = f.iGet(pIno, iVersion) != child.iGet(cIno, iForkVersion)
	} else if child.iGet(cIno, iForkVersion) == 0 {
		// New in the child, never seen by the parent.
		parentChanged = false
	}

	switch {
	case !parentChanged:
		clashPath, err := f.adopt(pIno, child, cIno, path)
		if err != nil {
			return nil, err
		}
		if clashPath != "" {
			// The conflict flag sits on clashPath (the entry itself, or
			// the ancestor whose type blocked the adoption): report that
			// path, so the documented re-create recovery targets the
			// entry actually flagged.
			return []Conflict{{Name: clashPath}}, nil
		}
		return nil, nil

	case cfl&flagExists != 0 && pIno >= 0 &&
		cfl&flagAppendOnly != 0 && f.iGet(pIno, iFlags)&flagAppendOnly != 0 &&
		f.iGet(pIno, iFlags)&(flagExists|flagConflict) == flagExists:
		// Appending into an already-conflicted file would bury the
		// child's bytes in an entry whose documented recovery truncates
		// them away; a conflicted parent falls through to the
		// divergence branch so the change is reported instead.
		return nil, f.mergeAppends(pIno, child, cIno)

	case cfl&(flagExists|flagDir) == flagExists|flagDir && pIno >= 0 &&
		f.iGet(pIno, iFlags)&(flagExists|flagDir) == flagExists|flagDir:
		// Both sides hold a live directory at this path (e.g. both
		// created it since the fork): directories have no content of
		// their own, so they merge trivially. Keep versions monotone.
		if cv := child.iGet(cIno, iVersion); cv > f.iGet(pIno, iVersion) {
			f.iPut(pIno, iVersion, cv)
		}
		return nil, nil

	default:
		// True divergence: keep the parent's copy, flag the entry.
		if pIno >= 0 {
			f.iPut(pIno, iFlags, f.iGet(pIno, iFlags)|flagConflict)
			f.bump(pIno)
			return []Conflict{{Name: path}}, nil
		}
		// Parent has nothing at the path (e.g. it deleted an enclosing
		// directory): recreate as a conflicted file so the divergence
		// is visible and recoverable. An ancestor type clash along the
		// way is reported at the ancestor instead.
		clashPath, err := f.adoptPlaceholder(path)
		if err != nil {
			return nil, err
		}
		if clashPath != "" {
			return []Conflict{{Name: clashPath}}, nil
		}
		return []Conflict{{Name: path}}, nil
	}
}

// adopt replaces the parent's state for one entry with the child's
// (including adoption of a deletion). pIno may be -1 if the parent has
// no slot at the path yet. A type clash (adopting over a live entry of
// the other kind, over a non-empty directory, or under an ancestor that
// is not a traversable directory) flags the offending parent entry
// conflicted and returns its path as clashPath, so callers report a
// conflict at the entry that actually needs resolving.
func (f *FS) adopt(pIno int, child *FS, cIno int, path string) (clashPath string, err error) {
	cfl := child.iGet(cIno, iFlags)
	cVersion := child.iGet(cIno, iVersion)

	if cfl&flagExists == 0 {
		// Child deleted the entry.
		if pIno < 0 || f.iGet(pIno, iFlags)&flagExists == 0 {
			return "", nil
		}
		pfl := f.iGet(pIno, iFlags)
		if pfl&flagDir != 0 && f.dirHasLive(pIno) {
			// The parent still has live entries inside: deleting the
			// directory out from under them would orphan parent-side
			// state, so surface the divergence instead.
			f.iPut(pIno, iFlags, pfl|flagConflict)
			f.bump(pIno)
			return path, nil
		}
		f.freeExtent(f.iGet(pIno, iExtOff), f.iGet(pIno, iExtCap))
		f.iPut(pIno, iExtOff, 0)
		f.iPut(pIno, iExtCap, 0)
		f.iPut(pIno, iFlags, flagTomb|(pfl&flagDir))
		f.iPut(pIno, iSize, 0)
		f.iPut(pIno, iVersion, cVersion)
		return "", nil
	}

	if cfl&flagDir != 0 {
		// Child created (or revived) a directory.
		if pIno >= 0 {
			pfl := f.iGet(pIno, iFlags)
			if pfl&flagExists != 0 && pfl&flagDir == 0 {
				f.iPut(pIno, iFlags, pfl|flagConflict)
				f.bump(pIno)
				return path, nil
			}
			if pfl&flagConflict != 0 {
				// An earlier entry of this very pass flagged the slot
				// (e.g. a divergent deletion): reviving it would launder
				// the recorded conflict away.
				return path, nil
			}
			if pfl&flagTomb != 0 {
				f.iPut(pIno, iFlags, flagExists|flagDir)
				f.iPut(pIno, iSize, 0)
				f.iPut(pIno, iVersion, cVersion)
			}
			return "", nil
		}
		ino, clashPath, err := f.mkdirAllAdopt(path)
		if err != nil || clashPath != "" {
			return clashPath, err
		}
		f.iPut(ino, iVersion, cVersion)
		return "", nil
	}

	// Child created or rewrote a regular file.
	fresh := false
	if pIno >= 0 {
		pfl := f.iGet(pIno, iFlags)
		if pfl&flagExists != 0 && pfl&flagDir != 0 {
			f.iPut(pIno, iFlags, pfl|flagConflict)
			f.bump(pIno)
			return path, nil
		}
		if pfl&flagConflict != 0 {
			return path, nil // already flagged this pass: don't launder it
		}
	} else {
		var dir int
		var leaf string
		dir, leaf, clashPath, err = f.adoptParent(path)
		if err != nil || clashPath != "" {
			return clashPath, err
		}
		// lookupAny missed the path only because its directory chain
		// was dead; now that adoptParent revived it, a tombstone for
		// this very (dir, name) may have resurfaced — reuse it, or a
		// fresh slot would break the one-slot-per-entry invariant and
		// leave duplicate paths behind.
		if existing := f.childIn(dir, leaf, flagExists|flagTomb); existing >= 0 {
			if f.iGet(existing, iFlags)&flagConflict != 0 {
				return path, nil
			}
			if f.iGet(existing, iVersion) != child.iGet(cIno, iForkVersion) {
				// The resurfaced slot is version evidence that the
				// parent changed this path too (it created and deleted
				// it behind the dead directory): a genuine both-sides
				// divergence, which must conflict exactly as it would
				// have had lookupAny seen the slot — not silently adopt
				// and regress the version.
				f.iPut(existing, iFlags, f.iGet(existing, iFlags)|flagConflict)
				f.bump(existing)
				return path, nil
			}
			pIno = existing
		} else {
			pIno = f.freeInode()
			if pIno < 0 {
				return "", ErrNameTaken
			}
			fresh = true
			f.iPut(pIno, iParent, uint32(dir)) // parent before name: setName indexes under it
			f.setName(pIno, leaf)
			f.iPut(pIno, iExtOff, 0)
			f.iPut(pIno, iExtCap, 0)
			f.iPut(pIno, iForkVersion, 0)
			f.iPut(pIno, iForkSize, 0)
		}
	}
	size := child.iGet(cIno, iSize)
	if err := f.ensureCap(pIno, size); err != nil {
		if fresh {
			// Never leave a half-adopted entry behind: the slot was
			// invisible (flags still zero) and goes back to the pool.
			f.freeSlot(pIno)
		}
		return "", err
	}
	if size > 0 {
		buf := make([]byte, size)
		child.gbytes(child.iGet(cIno, iExtOff), buf)
		f.pbytes(f.iGet(pIno, iExtOff), buf)
	}
	f.iPut(pIno, iSize, size)
	f.iPut(pIno, iVersion, cVersion)
	// Flags last: the entry becomes visible only once fully formed.
	f.iPut(pIno, iFlags, flagExists|(cfl&flagAppendOnly))
	return "", nil
}

// adoptParent resolves path's parent directory for adoption, creating or
// reviving intermediate directories, and returns it with path's leaf.
func (f *FS) adoptParent(path string) (dir int, leaf string, clashPath string, err error) {
	leaf = path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		dir, clashPath, err = f.mkdirAllAdopt(path[:i])
		if err != nil || clashPath != "" {
			return 0, "", clashPath, err
		}
		leaf = path[i+1:]
	}
	return dir, leaf, "", nil
}

// adoptPlaceholder recreates a path as an empty conflicted file,
// creating intermediate directories as needed. An ancestor type clash
// is returned as that ancestor's path (already flagged); the
// placeholder is then skipped — the clash carries the conflict.
func (f *FS) adoptPlaceholder(path string) (clashPath string, err error) {
	dir, leaf, clashPath, err := f.adoptParent(path)
	if err != nil || clashPath != "" {
		return clashPath, err
	}
	return "", f.createIn(dir, leaf, flagConflict)
}

// mkdirAllAdopt walks path creating missing directories (reviving
// tombstones), for reconciliation's use. A component occupied by a live
// file is a type clash: the file is flagged conflicted and its path
// returned. A component whose slot is already marked conflicted —
// including a tombstone flagged earlier in the same pass — is a clash
// too: reviving it would erase the recorded divergence.
func (f *FS) mkdirAllAdopt(path string) (ino int, clashPath string, err error) {
	parts, err := splitPath(path)
	if err != nil {
		return -1, "", err
	}
	dir := 0
	for idx, c := range parts {
		next := f.childIn(dir, c, flagExists|flagTomb)
		switch {
		case next < 0:
			if err := f.createIn(dir, c, flagDir); err != nil {
				return -1, "", err
			}
			next = f.childIn(dir, c, flagExists)
		case f.iGet(next, iFlags)&flagConflict != 0:
			return -1, strings.Join(parts[:idx+1], "/"), nil
		case f.iGet(next, iFlags)&flagTomb != 0:
			f.iPut(next, iFlags, flagExists|flagDir)
			f.iPut(next, iSize, 0)
			f.bump(next)
		case f.iGet(next, iFlags)&flagDir == 0:
			f.iPut(next, iFlags, f.iGet(next, iFlags)|flagConflict)
			f.bump(next)
			return -1, strings.Join(parts[:idx+1], "/"), nil
		}
		dir = next
	}
	return dir, "", nil
}

// mergeAppends handles the append-only case of §4.3: both sides
// appended, so the parent keeps its own content and concatenates the
// bytes the child wrote since the fork. Each replica thus accumulates
// all writers' output, though different replicas may see different
// interleavings.
func (f *FS) mergeAppends(pIno int, child *FS, cIno int) error {
	forkSize := child.iGet(cIno, iForkSize)
	childSize := child.iGet(cIno, iSize)
	if childSize <= forkSize {
		return nil // nothing actually appended (e.g. metadata-only change)
	}
	tail := make([]byte, childSize-forkSize)
	child.gbytes(child.iGet(cIno, iExtOff)+forkSize, tail)
	pSize := f.iGet(pIno, iSize)
	// 64-bit first: both sides can hold near-ceiling files, and a
	// wrapped 32-bit sum would slip past ensureCap and write far beyond
	// the extent — the cross-extent corruption checkRange exists to stop.
	if uint64(pSize)+uint64(len(tail)) > f.maxSize() {
		return ErrNoSpace
	}
	if err := f.ensureCap(pIno, pSize+uint32(len(tail))); err != nil {
		return err
	}
	f.pbytes(f.iGet(pIno, iExtOff)+pSize, tail)
	f.iPut(pIno, iSize, pSize+uint32(len(tail)))
	v := f.iGet(pIno, iVersion)
	if cv := child.iGet(cIno, iVersion); cv > v {
		v = cv
	}
	f.iPut(pIno, iVersion, v+1)
	return nil
}
