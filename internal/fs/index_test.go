package fs

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/kernel"
)

// The per-directory entry index: lookups must agree with the full-table
// scan after any operation mix, across handles, and the namespace
// generation must keep a second handle's cache coherent.

func indexEnv(t testing.TB, fn func(env *kernel.Env)) {
	res := kernel.New(kernel.Config{}).Run(func(env *kernel.Env) { fn(env) }, 0)
	if res.Status != kernel.StatusHalted {
		t.Fatalf("%v: %v", res.Status, res.Err)
	}
}

func TestIndexMatchesScanUnderRandomOps(t *testing.T) {
	indexEnv(t, func(env *kernel.Env) {
		f := Format(env, DefaultBase, 1<<20)
		scan := Attach2(env, DefaultBase, 1<<20)
		scan.SetIndex(false)
		rng := rand.New(rand.NewSource(99))
		var live []string
		paths := func() []string {
			out := []string{"a", "b", "dir/x", "dir/y", "dir/sub/z", "w"}
			return out
		}()
		if err := f.Mkdir("dir"); err != nil {
			panic(err)
		}
		if err := f.Mkdir("dir/sub"); err != nil {
			panic(err)
		}
		for step := 0; step < 600; step++ {
			p := paths[rng.Intn(len(paths))]
			switch rng.Intn(4) {
			case 0:
				if f.Create(p) == nil {
					live = append(live, p)
				}
			case 1:
				f.Unlink(p)
			case 2:
				f.WriteAt(p, rng.Intn(64), []byte("data"))
			case 3:
				np := p + fmt.Sprintf("r%d", rng.Intn(3))
				f.Rename(p, np)
			}
			// Both handles, and both lookup paths, must agree on every
			// candidate path after every step.
			for _, q := range paths {
				a := f.lookup(q)
				b := scan.lookup(q)
				if a != b {
					panic(fmt.Sprintf("step %d: indexed lookup(%q)=%d, scan=%d", step, q, a, b))
				}
			}
		}
		_ = live
	})
}

func TestIndexCoherentAcrossHandles(t *testing.T) {
	indexEnv(t, func(env *kernel.Env) {
		a := Format(env, DefaultBase, 1<<20)
		b := Attach2(env, DefaultBase, 1<<20)
		if err := a.Create("one"); err != nil {
			panic(err)
		}
		if b.lookup("one") < 0 {
			panic("handle b does not see handle a's create")
		}
		// b's cache is now warm; a mutation through a must invalidate it.
		if err := a.Rename("one", "two"); err != nil {
			panic(err)
		}
		if b.lookup("one") >= 0 {
			panic("handle b still sees the old name after a's rename")
		}
		if b.lookup("two") < 0 {
			panic("handle b does not see the new name")
		}
		// And the other direction: mutate through b, read through a.
		if err := b.Unlink("two"); err != nil {
			panic(err)
		}
		if a.lookup("two") >= 0 {
			panic("handle a still sees an entry b unlinked")
		}
	})
}

// Attach2 attaches a second handle, failing the test on error.
func Attach2(env *kernel.Env, base uint32, size uint64) *FS {
	f, err := Attach(env, base, size)
	if err != nil {
		panic(err)
	}
	return f
}

// BenchmarkLookup measures path resolution at a full 128-slot inode
// table — the satellite's target case — with the per-directory index on
// and off. The tree is three levels deep, so every lookup resolves
// three components; the scan pays O(NumInodes) per component.
func BenchmarkLookup(b *testing.B) {
	for _, indexed := range []bool{true, false} {
		name := "indexed"
		if !indexed {
			name = "scan"
		}
		b.Run(name, func(b *testing.B) {
			indexEnv(b, func(env *kernel.Env) {
				f := Format(env, DefaultBase, 1<<20)
				f.SetIndex(indexed)
				// Fill the table: 2 dirs, 5 subdirs each, leaves under
				// them until the 128 slots run out.
				var leaves []string
				for d := 0; d < 2; d++ {
					dir := fmt.Sprintf("d%d", d)
					if err := f.Mkdir(dir); err != nil {
						panic(err)
					}
					for s := 0; s < 5; s++ {
						sub := fmt.Sprintf("%s/s%d", dir, s)
						if err := f.Mkdir(sub); err != nil {
							panic(err)
						}
					}
				}
				for i := 0; ; i++ {
					leaf := fmt.Sprintf("d%d/s%d/f%03d", i%2, (i/2)%5, i)
					if err := f.Create(leaf); err != nil {
						break // table full
					}
					leaves = append(leaves, leaf)
				}
				if len(leaves) < 100 {
					panic("table not full")
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := f.Stat(leaves[i%len(leaves)]); err != nil {
						panic(err)
					}
				}
			})
		})
	}
}
