// Package fs implements Determinator's user-level shared file system
// abstraction (§4.2–4.3 of the paper): every process holds a complete
// replica of a logically shared, weakly consistent file system inside its
// own address space, so the kernel's copy-on-write fork clones it for
// free. Processes operate only on their private replica; at
// synchronization points (wait, explicit sync) the parent runtime
// reconciles a child's replica into its own using per-file versioning
// in the style of Parker et al.'s mutual-inconsistency detection:
//
//   - files changed on only one side propagate to the other;
//   - files changed on both sides conflict — the runtime keeps the
//     parent's copy and marks the file conflicted, failing later opens;
//   - append-only files (console, logs) merge by concatenating both
//     sides' appended tails, so concurrent logging never conflicts.
//
// The on-"disk" format is a fixed-layout byte image (superblock, inode
// table, extent area) manipulated exclusively through the owning space's
// Env accessors: the file system is ordinary user-space memory, which is
// exactly what makes it replicable, and also why a wild pointer write can
// corrupt it — a trade-off the paper acknowledges.
//
// Like the paper's prototype, the file system is memory-only (no
// persistence), capped by its in-space image size, and never garbage
// collects freed extents.
package fs

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/kernel"
	"repro/internal/vm"
)

// Image geometry. All offsets are relative to the FS base address.
const (
	// Magic identifies a formatted image.
	Magic = 0xD37F5001

	// DefaultBase is where the uproc runtime places the FS image: a
	// 4 MiB-aligned address far from the shared-memory region.
	DefaultBase vm.Addr = 0x8000_0000
	// DefaultSize is the default image size (the paper's "file system
	// size limited by address space" constraint, in miniature).
	DefaultSize uint64 = 16 << 20

	// NumInodes is the fixed number of inode slots.
	NumInodes = 128
	// MaxNameLen is the longest file name, including the terminating NUL.
	MaxNameLen = 100

	inodeSize  = 128
	inodeTable = vm.PageSize // inode table starts at page 1
	dataStart  = inodeTable + NumInodes*inodeSize

	// Superblock field offsets.
	sbMagic  = 0
	sbCursor = 4 // extent bump cursor (relative to base)
	sbSize   = 8 // total image size

	// Inode field offsets.
	iFlags       = 0
	iVersion     = 4
	iForkVersion = 8
	iSize        = 12
	iForkSize    = 16
	iExtOff      = 20
	iExtCap      = 24
	iName        = 28
)

// Inode flag bits. A slot is in use if it is live or a tombstone;
// tombstones record deletions so that reconciliation can propagate them
// (they occupy their slot forever — a prototype limitation kept from the
// paper's no-garbage-collection design).
const (
	flagExists     = 1 << 0 // live file
	flagAppendOnly = 1 << 1
	flagConflict   = 1 << 2
	flagTomb       = 1 << 3 // deleted since some earlier version
)

// Errors returned by the file API.
var (
	ErrNotFound  = errors.New("fs: file not found")
	ErrExists    = errors.New("fs: file already exists")
	ErrConflict  = errors.New("fs: file has unresolved reconciliation conflict")
	ErrNoSpace   = errors.New("fs: image full")
	ErrNameTaken = errors.New("fs: no free inode")
	ErrBadName   = errors.New("fs: invalid file name")
	ErrBadOffset = errors.New("fs: offset out of range")
)

// FS is a handle on a file system image within the calling space's own
// memory. It holds no state outside the image itself (except the
// write-protection flag), so any number of handles may be attached to
// the same image.
type FS struct {
	env     *kernel.Env
	base    vm.Addr
	size    uint64
	protect bool
}

// SetProtect enables the hardening §4.2 suggests: the image is kept
// read-only between file system operations, so a wild pointer write in a
// buggy program faults instead of silently corrupting the file system —
// restoring the Unix property that corruption requires calling write().
func (f *FS) SetProtect(on bool) {
	f.protect = on
	if on {
		f.env.SetPerm(f.base, f.size, vm.PermR)
	} else {
		f.env.SetPerm(f.base, f.size, vm.PermRW)
	}
}

// unlock temporarily re-enables writes for one operation; the returned
// function restores protection.
func (f *FS) unlock() func() {
	if !f.protect {
		return func() {}
	}
	f.env.SetPerm(f.base, f.size, vm.PermRW)
	return func() { f.env.SetPerm(f.base, f.size, vm.PermR) }
}

// Format initializes an empty image at base and returns a handle. The
// caller must have mapped [base, base+size) read/write.
func Format(env *kernel.Env, base vm.Addr, size uint64) *FS {
	f := &FS{env: env, base: base, size: size}
	f.pu32(sbMagic, Magic)
	f.pu32(sbCursor, dataStart)
	f.pu32(sbSize, uint32(size))
	var zero [inodeSize]byte
	for i := 0; i < NumInodes; i++ {
		env.Write(base+vm.Addr(inodeTable+i*inodeSize), zero[:])
	}
	return f
}

// Attach returns a handle on an existing image (after fork or exec).
func Attach(env *kernel.Env, base vm.Addr, size uint64) (*FS, error) {
	f := &FS{env: env, base: base, size: size}
	if f.gu32(sbMagic) != Magic {
		return nil, fmt.Errorf("fs: no image at %#x", base)
	}
	return f, nil
}

// low-level image accessors (offsets relative to base)

func (f *FS) gu32(off uint32) uint32      { return f.env.ReadU32(f.base + vm.Addr(off)) }
func (f *FS) pu32(off uint32, v uint32)   { f.env.WriteU32(f.base+vm.Addr(off), v) }
func (f *FS) gbytes(off uint32, p []byte) { f.env.Read(f.base+vm.Addr(off), p) }
func (f *FS) pbytes(off uint32, p []byte) { f.env.Write(f.base+vm.Addr(off), p) }

func inodeOff(ino int) uint32 { return uint32(inodeTable + ino*inodeSize) }

func (f *FS) iGet(ino int, field uint32) uint32    { return f.gu32(inodeOff(ino) + field) }
func (f *FS) iPut(ino int, field uint32, v uint32) { f.pu32(inodeOff(ino)+field, v) }

func (f *FS) name(ino int) string {
	var buf [MaxNameLen]byte
	f.gbytes(inodeOff(ino)+iName, buf[:])
	if i := strings.IndexByte(string(buf[:]), 0); i >= 0 {
		return string(buf[:i])
	}
	return string(buf[:])
}

func (f *FS) setName(ino int, name string) {
	var buf [MaxNameLen]byte
	copy(buf[:], name)
	f.pbytes(inodeOff(ino)+iName, buf[:])
}

// lookup finds the inode holding a live file named name, or -1.
func (f *FS) lookup(name string) int {
	for i := 0; i < NumInodes; i++ {
		if f.iGet(i, iFlags)&flagExists != 0 && f.name(i) == name {
			return i
		}
	}
	return -1
}

// lookupAny finds the inode (live or tombstone) for name, or -1.
func (f *FS) lookupAny(name string) int {
	for i := 0; i < NumInodes; i++ {
		if f.iGet(i, iFlags)&(flagExists|flagTomb) != 0 && f.name(i) == name {
			return i
		}
	}
	return -1
}

func (f *FS) freeInode() int {
	for i := 0; i < NumInodes; i++ {
		if f.iGet(i, iFlags)&(flagExists|flagTomb) == 0 {
			return i
		}
	}
	return -1
}

// allocExtent reserves capacity bytes in the extent area using the bump
// cursor. Extents are never reclaimed (the prototype's documented leak).
func (f *FS) allocExtent(capacity uint32) (uint32, error) {
	cur := f.gu32(sbCursor)
	if uint64(cur)+uint64(capacity) > f.size {
		return 0, ErrNoSpace
	}
	f.pu32(sbCursor, cur+capacity)
	return cur, nil
}

func checkName(name string) error {
	if name == "" || len(name) >= MaxNameLen {
		return ErrBadName
	}
	return nil
}

// Create makes an empty regular file. Creating over a conflicted file
// clears the conflict (the "fix the bug and re-run" recovery path).
func (f *FS) Create(name string) error { return f.create(name, 0) }

// CreateAppendOnly makes an empty append-only file: concurrent appends
// from different processes merge rather than conflict (§4.3). The
// runtime uses these for console and log streams.
func (f *FS) CreateAppendOnly(name string) error { return f.create(name, flagAppendOnly) }

func (f *FS) create(name string, extra uint32) error {
	defer f.unlock()()
	if err := checkName(name); err != nil {
		return err
	}
	if ino := f.lookupAny(name); ino >= 0 {
		fl := f.iGet(ino, iFlags)
		switch {
		case fl&flagTomb != 0:
			// Revive a deleted file: keep the version history so the
			// re-creation reconciles as a change.
			f.iPut(ino, iFlags, flagExists|extra)
			f.iPut(ino, iSize, 0)
			f.bump(ino)
			return nil
		case fl&flagConflict != 0:
			// Re-creating a conflicted file resolves the conflict.
			f.iPut(ino, iFlags, fl&^flagConflict|extra)
			f.iPut(ino, iSize, 0)
			f.bump(ino)
			return nil
		default:
			return ErrExists
		}
	}
	ino := f.freeInode()
	if ino < 0 {
		return ErrNameTaken
	}
	f.setName(ino, name)
	f.iPut(ino, iFlags, flagExists|extra)
	f.iPut(ino, iVersion, 1)
	// ForkVersion 0 makes a freshly created file count as "changed since
	// fork", so it propagates to the parent at reconciliation.
	f.iPut(ino, iForkVersion, 0)
	f.iPut(ino, iSize, 0)
	f.iPut(ino, iForkSize, 0)
	f.iPut(ino, iExtOff, 0)
	f.iPut(ino, iExtCap, 0)
	return nil
}

// bump marks the file modified by this replica.
func (f *FS) bump(ino int) { f.iPut(ino, iVersion, f.iGet(ino, iVersion)+1) }

// Unlink removes a file, leaving a tombstone so the deletion propagates
// at reconciliation. Neither the slot nor the extent is reclaimed.
func (f *FS) Unlink(name string) error {
	defer f.unlock()()
	ino := f.lookup(name)
	if ino < 0 {
		return ErrNotFound
	}
	f.iPut(ino, iFlags, flagTomb)
	f.iPut(ino, iSize, 0)
	f.bump(ino)
	return nil
}

// Info describes a file.
type Info struct {
	Name       string
	Size       int
	Version    uint32
	AppendOnly bool
	Conflicted bool
}

// Stat reports a file's metadata. Conflicted files can be statted (the
// conflict flag is how the caller finds out).
func (f *FS) Stat(name string) (Info, error) {
	ino := f.lookup(name)
	if ino < 0 {
		return Info{}, ErrNotFound
	}
	return f.statIno(ino), nil
}

func (f *FS) statIno(ino int) Info {
	fl := f.iGet(ino, iFlags)
	return Info{
		Name:       f.name(ino),
		Size:       int(f.iGet(ino, iSize)),
		Version:    f.iGet(ino, iVersion),
		AppendOnly: fl&flagAppendOnly != 0,
		Conflicted: fl&flagConflict != 0,
	}
}

// List returns the names of all files, sorted (a deterministic order, in
// keeping with §2.4 — directory iteration must not leak timing).
func (f *FS) List() []Info {
	var out []Info
	for i := 0; i < NumInodes; i++ {
		if f.iGet(i, iFlags)&flagExists != 0 {
			out = append(out, f.statIno(i))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// checkRange validates a byte-range request before any of the 32-bit
// on-image arithmetic can wrap: negative offsets and ranges whose end
// exceeds the image geometry are rejected up front. It returns the
// validated start and end as image-safe uint32s. Prior to this check,
// uint32(off) silently wrapped a negative offset to a huge one, letting
// a single bad WriteAt trample other files' extents — the exact failure
// mode SetProtect exists to prevent from outside the API, happening
// from inside it.
func (f *FS) checkRange(off, n int) (uint32, uint32, error) {
	if off < 0 || n < 0 || uint64(off) > f.size {
		return 0, 0, ErrBadOffset
	}
	// off is now bounded by the image and n by a real slice length, so
	// the 64-bit sum cannot overflow.
	end := int64(off) + int64(n)
	if end > int64(f.size) || end > math.MaxUint32 {
		return 0, 0, ErrBadOffset
	}
	return uint32(off), uint32(end), nil
}

// ensureCap grows a file's extent to hold at least n bytes, copying the
// current contents into the new extent. Growth is computed in 64-bit
// space and capped at the image size: the former uint32 doubling loop
// wrapped to zero — and spun forever — once a requested size crossed
// 2³¹.
func (f *FS) ensureCap(ino int, n uint32) error {
	cap0 := f.iGet(ino, iExtCap)
	if n <= cap0 {
		return nil
	}
	if uint64(n) > f.size {
		return ErrNoSpace // could never fit even in an empty image
	}
	newCap := uint64(vm.PageSize)
	for newCap < uint64(n) {
		newCap *= 2
	}
	if newCap > f.size {
		newCap = f.size
	}
	if newCap > math.MaxUint32 {
		newCap = math.MaxUint32
	}
	off, err := f.allocExtent(uint32(newCap))
	if err != nil {
		return err
	}
	size := f.iGet(ino, iSize)
	if size > 0 {
		buf := make([]byte, size)
		f.gbytes(f.iGet(ino, iExtOff), buf)
		f.pbytes(off, buf)
	}
	f.iPut(ino, iExtOff, off)
	f.iPut(ino, iExtCap, uint32(newCap))
	return nil
}

// WriteAt writes p at byte offset off, growing the file as needed, and
// bumps the file's version. Offsets that are negative or whose end would
// exceed the image return ErrBadOffset before touching any byte.
func (f *FS) WriteAt(name string, off int, p []byte) error {
	defer f.unlock()()
	ino := f.lookup(name)
	if ino < 0 {
		return ErrNotFound
	}
	return f.writeAt(ino, off, p)
}

// writeAt is the locked core of WriteAt and Append: the caller holds the
// write-protection window and has resolved the inode.
func (f *FS) writeAt(ino int, off int, p []byte) error {
	if f.iGet(ino, iFlags)&flagConflict != 0 {
		return ErrConflict
	}
	start, end, err := f.checkRange(off, len(p))
	if err != nil {
		return err
	}
	if err := f.ensureCap(ino, end); err != nil {
		return err
	}
	if size := f.iGet(ino, iSize); start > size {
		// Writing past EOF leaves a hole, which must read as zeros even
		// if the extent holds stale bytes from before a truncate.
		zero := make([]byte, start-size)
		f.pbytes(f.iGet(ino, iExtOff)+size, zero)
	}
	f.pbytes(f.iGet(ino, iExtOff)+start, p)
	if end > f.iGet(ino, iSize) {
		f.iPut(ino, iSize, end)
	}
	f.bump(ino)
	return nil
}

// Append writes p at end of file. The size lookup and the write happen
// as one operation under a single write-protection window — the previous
// implementation read iSize outside the window and re-resolved the inode
// through WriteAt, leaving a gap in which the image was writable with a
// stale size.
func (f *FS) Append(name string, p []byte) error {
	defer f.unlock()()
	ino := f.lookup(name)
	if ino < 0 {
		return ErrNotFound
	}
	return f.writeAt(ino, int(f.iGet(ino, iSize)), p)
}

// ReadAt reads up to len(p) bytes at offset off, returning the count.
// Negative offsets return ErrBadOffset (the old code wrapped them to
// huge ones and read other files' bytes).
func (f *FS) ReadAt(name string, off int, p []byte) (int, error) {
	ino := f.lookup(name)
	if ino < 0 {
		return 0, ErrNotFound
	}
	if f.iGet(ino, iFlags)&flagConflict != 0 {
		return 0, ErrConflict
	}
	if _, _, err := f.checkRange(off, 0); err != nil {
		return 0, err
	}
	size := int(f.iGet(ino, iSize))
	if off >= size {
		return 0, nil
	}
	n := len(p)
	if off+n > size {
		n = size - off
	}
	f.gbytes(f.iGet(ino, iExtOff)+uint32(off), p[:n])
	return n, nil
}

// ReadFile returns a file's full contents.
func (f *FS) ReadFile(name string) ([]byte, error) {
	info, err := f.Stat(name)
	if err != nil {
		return nil, err
	}
	if info.Conflicted {
		return nil, ErrConflict
	}
	buf := make([]byte, info.Size)
	_, err = f.ReadAt(name, 0, buf)
	return buf, err
}

// WriteFile replaces a file's contents, creating it if needed.
func (f *FS) WriteFile(name string, p []byte) error {
	if f.lookup(name) < 0 {
		if err := f.Create(name); err != nil {
			return err
		}
	}
	if err := f.Truncate(name, 0); err != nil {
		return err
	}
	return f.WriteAt(name, 0, p)
}

// Truncate sets a file's size to n (growing zero-filled if needed).
// Negative or image-exceeding sizes return ErrBadOffset.
func (f *FS) Truncate(name string, n int) error {
	defer f.unlock()()
	ino := f.lookup(name)
	if ino < 0 {
		return ErrNotFound
	}
	if f.iGet(ino, iFlags)&flagConflict != 0 {
		return ErrConflict
	}
	size, _, err := f.checkRange(n, 0)
	if err != nil {
		return err
	}
	if err := f.ensureCap(ino, size); err != nil {
		return err
	}
	if old := f.iGet(ino, iSize); size > old {
		zero := make([]byte, size-old)
		f.pbytes(f.iGet(ino, iExtOff)+old, zero)
	}
	f.iPut(ino, iSize, size)
	f.bump(ino)
	return nil
}

// StampFork records, for every file, the version and size at this moment.
// The runtime calls it in a child immediately after fork (and again after
// a two-way sync); reconciliation later compares both replicas against
// these recorded fork-time values to decide which side changed (the
// degenerate two-replica version vector of Parker et al.).
func (f *FS) StampFork() {
	defer f.unlock()()
	for i := 0; i < NumInodes; i++ {
		if f.iGet(i, iFlags)&(flagExists|flagTomb) == 0 {
			continue
		}
		f.iPut(i, iForkVersion, f.iGet(i, iVersion))
		f.iPut(i, iForkSize, f.iGet(i, iSize))
	}
}
